// Package metrics provides the small measurement toolkit the experiment
// harness uses: time series of (time, value) samples, distribution
// summaries, and plain-text table rendering for regenerating the paper's
// figures as rows and columns.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns the sample values in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Summary describes a sample distribution.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Std     float64
	P50, P95, P99 float64
}

// Summarize computes a Summary of the values. An empty input yields a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	for _, v := range sorted {
		sq += (v - mean) * (v - mean)
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: mean,
		Std:  math.Sqrt(sq / float64(len(sorted))),
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
	}
}

// SummarizeSeries summarizes a series' values.
func (s *Series) Summary() Summary { return Summarize(s.Values()) }

// Pct returns the p-quantile (p in [0,1]) of the values, using the same
// nearest-rank rule as Summarize. An empty input yields 0.
func Pct(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// Table renders aligned plain-text tables, the medium in which the harness
// reports each figure's rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// MBps formats a bytes-per-second value as MB/s.
func MBps(v float64) string { return fmt.Sprintf("%.2f MB/s", v/1e6) }

// Ms formats a duration in milliseconds with two decimals.
func Ms(d sim.Time) string { return fmt.Sprintf("%.2f ms", float64(d)/1e6) }
