package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("mean = %f", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %f", s.Std)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %f", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizePercentilesSorted(t *testing.T) {
	var vals []float64
	for i := 100; i >= 1; i-- {
		vals = append(vals, float64(i))
	}
	s := Summarize(vals)
	if s.P95 < s.P50 || s.P99 < s.P95 || s.Max < s.P99 {
		t.Fatalf("percentiles out of order: %+v", s)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("p99 = %f", s.P99)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(time.Second, 1.5)
	s.Add(2*time.Second, 2.5)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	v := s.Values()
	if v[0] != 1.5 || v[1] != 2.5 {
		t.Fatalf("values = %v", v)
	}
	if s.Summary().Mean != 2 {
		t.Fatalf("series mean = %f", s.Summary().Mean)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "streams", "throughput", "note")
	tb.AddRow(1, 1.23456, "ok")
	tb.AddRow(25, 99.9, "long-note-value")
	out := tb.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "streams") || !strings.Contains(out, "long-note-value") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and separator have the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
	if !strings.Contains(out, "1.23") {
		t.Fatal("float not formatted with two decimals")
	}
}

func TestFormatters(t *testing.T) {
	if MBps(6.5e6) != "6.50 MB/s" {
		t.Fatalf("MBps = %q", MBps(6.5e6))
	}
	if Ms(sim.Time(8330*time.Microsecond)) != "8.33 ms" {
		t.Fatalf("Ms = %q", Ms(sim.Time(8330*time.Microsecond)))
	}
}
