package ufs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// smallDisk returns a ~43 MB disk, big enough for multi-group tests but
// fast to format.
func smallDisk(e *sim.Engine) *disk.Disk {
	g, p := disk.ST32550N()
	g.Cylinders = 200
	g.Heads = 4
	return disk.New(e, "sd0", g, p)
}

// withFS formats a small disk, mounts it, and runs fn inside a simulation
// process. The simulation runs to completion before withFS returns.
func withFS(t *testing.T, opts Options, fn func(p *sim.Proc, fs *FileSystem)) {
	t.Helper()
	e := sim.NewEngine(1)
	d := smallDisk(e)
	if _, err := Format(d, opts); err != nil {
		t.Fatalf("Format: %v", err)
	}
	e.Spawn("test", func(p *sim.Proc) {
		fs, err := Mount(p, d, opts)
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		fn(p, fs)
	})
	e.Run()
}

func TestFormatAndMount(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		sb := fs.Super()
		if sb.Magic != Magic || sb.Version != Version {
			t.Errorf("superblock = %+v", sb)
		}
		if sb.NGroups < 2 {
			t.Errorf("expected multiple groups, got %d", sb.NGroups)
		}
		st, err := fs.Stat(p, "/")
		if err != nil || !st.IsDir || st.Ino != RootIno {
			t.Errorf("root stat = %+v, %v", st, err)
		}
	})
}

func TestFormatTooSmall(t *testing.T) {
	e := sim.NewEngine(1)
	g, p := disk.ST32550N()
	g.Cylinders = 2
	g.Heads = 1
	d := disk.New(e, "tiny", g, p)
	if _, err := Format(d, Options{}); err != ErrTooSmall {
		t.Fatalf("Format on tiny disk = %v, want ErrTooSmall", err)
	}
}

func TestMountRejectsUnformattedDisk(t *testing.T) {
	e := sim.NewEngine(1)
	d := smallDisk(e)
	e.Spawn("test", func(p *sim.Proc) {
		if _, err := Mount(p, d, Options{}); err == nil {
			t.Error("Mount of unformatted disk succeeded")
		}
	})
	e.Run()
}

func TestCreateWriteReadRoundtrip(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, err := fs.Create(p, "/movie")
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		data := make([]byte, 3*BlockSize+1234)
		for i := range data {
			data[i] = byte(i % 251)
		}
		if n, err := f.WriteAt(p, data, 0); err != nil || n != len(data) {
			t.Fatalf("WriteAt = %d, %v", n, err)
		}
		if f.Size(p) != int64(len(data)) {
			t.Fatalf("Size = %d", f.Size(p))
		}
		buf := make([]byte, len(data))
		if n, err := f.ReadAt(p, buf, 0); err != nil || n != len(data) {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatal("read-back differs")
		}
	})
}

func TestPartialBlockReadModifyWrite(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/f")
		f.WriteAt(p, bytes.Repeat([]byte{1}, BlockSize), 0)
		f.WriteAt(p, []byte{9, 9, 9}, 100)
		buf := make([]byte, BlockSize)
		f.ReadAt(p, buf, 0)
		if buf[99] != 1 || buf[100] != 9 || buf[102] != 9 || buf[103] != 1 {
			t.Fatalf("read-modify-write corrupted block: %v", buf[98:105])
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/f")
		f.WriteAt(p, []byte("hello"), 0)
		buf := make([]byte, 100)
		n, err := f.ReadAt(p, buf, 0)
		if err != nil || n != 5 {
			t.Fatalf("short read = %d, %v", n, err)
		}
		n, err = f.ReadAt(p, buf, 1000)
		if err != nil || n != 0 {
			t.Fatalf("read past EOF = %d, %v", n, err)
		}
	})
}

func TestHolesReadAsZeros(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/sparse")
		f.WriteAt(p, []byte{0xFF}, 5*BlockSize) // blocks 0-4 are holes
		buf := make([]byte, BlockSize)
		f.ReadAt(p, buf, 2*BlockSize)
		for _, b := range buf {
			if b != 0 {
				t.Fatal("hole returned non-zero data")
			}
		}
		bm, _ := f.BlockMap(p)
		for i := 0; i < 5; i++ {
			if bm[i] != 0 {
				t.Fatalf("hole block %d mapped to %d", i, bm[i])
			}
		}
		if bm[5] == 0 {
			t.Fatal("written block not mapped")
		}
	})
}

func TestIndirectBlocks(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/big")
		// Write a marker into a block well beyond the direct range.
		marker := bytes.Repeat([]byte{0xAB}, 64)
		off := int64(NDirect+100) * BlockSize
		if _, err := f.WriteAt(p, marker, off); err != nil {
			t.Fatalf("indirect write: %v", err)
		}
		buf := make([]byte, 64)
		f.ReadAt(p, buf, off)
		if !bytes.Equal(buf, marker) {
			t.Fatal("indirect block readback differs")
		}
	})
}

func TestDoubleIndirectViaPreallocate(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/huge")
		// Cross into the double-indirect range: > (12 + 2048) blocks.
		size := int64(NDirect+PtrsPerBlock+10) * BlockSize
		if err := f.Preallocate(p, size); err != nil {
			t.Fatalf("Preallocate: %v", err)
		}
		if f.Size(p) != size {
			t.Fatalf("Size = %d, want %d", f.Size(p), size)
		}
		bm, err := f.BlockMap(p)
		if err != nil {
			t.Fatalf("BlockMap: %v", err)
		}
		if int64(len(bm)) != size/BlockSize {
			t.Fatalf("map has %d entries, want %d", len(bm), size/BlockSize)
		}
		for i, b := range bm {
			if b == 0 {
				t.Fatalf("preallocated block %d unmapped", i)
			}
		}
		// Preallocated-but-unwritten data reads as zeros (fresh disk).
		buf := make([]byte, 128)
		f.ReadAt(p, buf, size-256)
		for _, b := range buf {
			if b != 0 {
				t.Fatal("preallocated block returned non-zero data")
			}
		}
	})
}

func TestContiguousAllocationWhenTuned(t *testing.T) {
	withFS(t, Options{RotDelay: 0}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/seq")
		if err := f.Preallocate(p, 100*BlockSize); err != nil {
			t.Fatalf("Preallocate: %v", err)
		}
		bm, _ := f.BlockMap(p)
		breaks := 0
		for i := 1; i < len(bm); i++ {
			if bm[i] != bm[i-1]+1 {
				breaks++
			}
		}
		if breaks > 2 { // indirect block allocation may split the run once
			t.Fatalf("tuned layout has %d discontinuities in 100 blocks", breaks)
		}
	})
}

func TestRotDelayFragmentsLayout(t *testing.T) {
	withFS(t, Options{MaxContig: 4, RotDelay: 2}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/frag")
		f.Preallocate(p, 64*BlockSize)
		bm, _ := f.BlockMap(p)
		breaks := 0
		for i := 1; i < len(bm); i++ {
			if bm[i] != bm[i-1]+1 {
				breaks++
			}
		}
		if breaks < 10 {
			t.Fatalf("rotdelay layout has only %d discontinuities in 64 blocks", breaks)
		}
	})
}

func TestUnlinkFreesBlocks(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		// Warm the root directory so its own block allocation doesn't count.
		fs.Create(p, "/warmup")
		before := fs.FreeBlocks(p)
		f, _ := fs.Create(p, "/victim")
		f.Preallocate(p, int64(NDirect+50)*BlockSize) // includes an indirect block
		during := fs.FreeBlocks(p)
		if during >= before {
			t.Fatal("allocation did not consume blocks")
		}
		if err := fs.Unlink(p, "/victim"); err != nil {
			t.Fatalf("Unlink: %v", err)
		}
		after := fs.FreeBlocks(p)
		if after != before {
			t.Fatalf("free blocks: before=%d after=%d (leak of %d)", before, after, before-after)
		}
		if _, err := fs.Open(p, "/victim"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Open after unlink = %v", err)
		}
	})
}

func TestSyncPersistsAcrossRemount(t *testing.T) {
	e := sim.NewEngine(1)
	d := smallDisk(e)
	Format(d, Options{})
	data := bytes.Repeat([]byte{0x42}, 2*BlockSize)
	e.Spawn("writer", func(p *sim.Proc) {
		fs, _ := Mount(p, d, Options{})
		fs.Mkdir(p, "/dir")
		f, _ := fs.Create(p, "/dir/file")
		f.WriteAt(p, data, 0)
		fs.Sync(p)

		// Remount with a cold cache: everything must come from disk.
		fs2, err := Mount(p, d, Options{})
		if err != nil {
			t.Errorf("remount: %v", err)
			return
		}
		f2, err := fs2.Open(p, "/dir/file")
		if err != nil {
			t.Errorf("open after remount: %v", err)
			return
		}
		buf := make([]byte, len(data))
		n, _ := f2.ReadAt(p, buf, 0)
		if n != len(data) || !bytes.Equal(buf, data) {
			t.Error("data lost across sync+remount")
		}
	})
	e.Run()
}

func TestDirectoryOperations(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		if err := fs.Mkdir(p, "/a"); err != nil {
			t.Fatalf("Mkdir: %v", err)
		}
		if err := fs.Mkdir(p, "/a/b"); err != nil {
			t.Fatalf("nested Mkdir: %v", err)
		}
		if err := fs.Mkdir(p, "/a"); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate Mkdir = %v", err)
		}
		if _, err := fs.Create(p, "/a/b/f1"); err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := fs.Create(p, "/a/b/f2"); err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := fs.Create(p, "/a/b/f1"); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate Create = %v", err)
		}
		if _, err := fs.Create(p, "/nosuch/f"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Create in missing dir = %v", err)
		}
		ents, err := fs.ReadDir(p, "/a/b")
		if err != nil || len(ents) != 2 {
			t.Fatalf("ReadDir = %v, %v", ents, err)
		}
		if err := fs.Unlink(p, "/a/b"); !errors.Is(err, ErrExists) {
			t.Fatalf("Unlink of non-empty dir = %v", err)
		}
		fs.Unlink(p, "/a/b/f1")
		fs.Unlink(p, "/a/b/f2")
		if err := fs.Unlink(p, "/a/b"); err != nil {
			t.Fatalf("Unlink of empty dir = %v", err)
		}
		if _, err := fs.Stat(p, "/a/b"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Stat after rmdir = %v", err)
		}
	})
}

func TestDirEntryReuse(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		fs.Create(p, "/x")
		fs.Create(p, "/y")
		fs.Unlink(p, "/x")
		fs.Create(p, "/z") // should reuse x's slot
		st, _ := fs.Stat(p, "/")
		if st.Size != 2*dirEntSize {
			t.Fatalf("root dir size = %d, want %d (slot reuse)", st.Size, 2*dirEntSize)
		}
	})
}

func TestNameValidation(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		long := make([]byte, maxNameLen+1)
		for i := range long {
			long[i] = 'a'
		}
		if _, err := fs.Create(p, "/"+string(long)); err != ErrNameTooLong {
			t.Fatalf("overlong name = %v", err)
		}
		if _, err := fs.Open(p, "/no/such/path"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing path = %v", err)
		}
	})
}

func TestOpenDirectoryAsFileFails(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		fs.Mkdir(p, "/d")
		if _, err := fs.Open(p, "/d"); err != ErrIsDir {
			t.Fatalf("Open(dir) = %v", err)
		}
		if _, err := fs.ReadDir(p, "/d"); err != nil {
			t.Fatalf("ReadDir = %v", err)
		}
		fs.Create(p, "/f")
		if _, err := fs.ReadDir(p, "/f"); err != ErrNotDir {
			t.Fatalf("ReadDir(file) = %v", err)
		}
	})
}

func TestNoSpace(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/filler")
		free := fs.FreeBlocks(p)
		// Ask for more than the disk holds.
		err := f.Preallocate(p, (free+1000)*BlockSize)
		if err != ErrNoSpace {
			t.Fatalf("Preallocate beyond capacity = %v", err)
		}
	})
}

// Property: files never share blocks, and every mapped block is a valid
// data block (not superblock, group header, or inode area).
func TestPropertyAllocatorNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		ok := true
		withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
			seen := make(map[uint32]string)
			for i, s := range sizes {
				name := "/f" + string(rune('a'+i))
				fh, err := fs.Create(p, name)
				if err != nil {
					ok = false
					return
				}
				size := int64(s%2000) * 512
				if err := fh.Preallocate(p, size); err != nil {
					ok = false
					return
				}
				bm, _ := fh.BlockMap(p)
				for _, b := range bm {
					if b == 0 {
						continue
					}
					if prev, dup := seen[b]; dup {
						t.Logf("block %d shared by %s and %s", b, prev, name)
						ok = false
						return
					}
					seen[b] = name
					if b >= fs.sb.NBlocks {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAheadImprovesSequentialThroughput(t *testing.T) {
	run := func(ra int) sim.Time {
		e := sim.NewEngine(1)
		d := smallDisk(e)
		Format(d, Options{})
		var elapsed sim.Time
		e.Spawn("reader", func(p *sim.Proc) {
			fs, _ := Mount(p, d, Options{ReadAheadBlocks: ra, CacheBlocks: 64})
			f, _ := fs.Create(p, "/m")
			f.Preallocate(p, 256*BlockSize)
			start := e.Now()
			buf := make([]byte, BlockSize)
			for i := int64(0); i < 256; i++ {
				f.ReadAt(p, buf, i*BlockSize)
				p.Sleep(2 * time.Millisecond) // consumer pacing, lets prefetch win
			}
			elapsed = e.Now() - start
		})
		e.Run()
		return elapsed
	}
	with := run(8)
	// Read-ahead 1 still prefetches one block; compare against none by
	// using a degenerate cache that can't hold a window.
	without := run(1)
	if with >= without {
		t.Fatalf("read-ahead window did not help: with=%v without=%v", with, without)
	}
}

func TestCacheStatsCounting(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f, _ := fs.Create(p, "/f")
		f.WriteAt(p, bytes.Repeat([]byte{1}, BlockSize), 0)
		h0 := fs.Cache().Hits
		buf := make([]byte, BlockSize)
		f.ReadAt(p, buf, 0) // block is still cached from the write
		if fs.Cache().Hits <= h0 {
			t.Fatal("expected a cache hit on freshly written block")
		}
		if fs.Cache().Misses == 0 {
			t.Fatal("expected misses from metadata loads")
		}
	})
}
