package ufs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Format constants. The 8 KB block matches the FFS configuration the paper
// used; 16 sectors of 512 bytes make one block.
const (
	BlockSize       = 8192
	SectorsPerBlock = BlockSize / 512

	InodeSize      = 128
	InodesPerBlock = BlockSize / InodeSize // 64

	Magic   = 0x434d4653 // "CMFS"
	Version = 1

	// RootIno is the inode number of the root directory. Inode 0 is
	// reserved so that 0 can mean "no inode".
	RootIno = 1
)

// Inode modes.
const (
	ModeFree = 0
	ModeFile = 1
	ModeDir  = 2
)

// NDirect is the number of direct block pointers per inode.
const NDirect = 12

// PtrsPerBlock is the number of block pointers in an indirect block.
const PtrsPerBlock = BlockSize / 4 // 2048

// MaxFileBlocks is the largest file the format supports, in blocks.
const MaxFileBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

// Options configures mkfs. The MaxContig/RotDelay pair models the tunefs
// parameters the paper adjusted: with RotDelay 0 the allocator lays blocks
// out back-to-back without limit (the paper's "as contiguously as
// possible"); with RotDelay > 0 it inserts that many spare blocks after
// every MaxContig allocated ones, the historical FFS behaviour that
// fragments sequential files.
type Options struct {
	BlocksPerGroup  int // default 2048 (16 MB groups)
	InodeBlocksPerG int // default 4 (256 inodes per group)
	MaxContig       int // default 32 (256 KB clusters)
	RotDelay        int // default 0
	CacheBlocks     int // buffer cache capacity; default 256 (2 MB)
	ReadAheadBlocks int // sequential read-ahead window; default 8 (64 KB)
}

func (o *Options) fillDefaults() {
	if o.BlocksPerGroup == 0 {
		o.BlocksPerGroup = 2048
	}
	if o.InodeBlocksPerG == 0 {
		o.InodeBlocksPerG = 4
	}
	if o.MaxContig == 0 {
		o.MaxContig = 32
	}
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 256
	}
	if o.ReadAheadBlocks == 0 {
		o.ReadAheadBlocks = 8
	}
}

// Super is the superblock, stored in disk block 0.
type Super struct {
	Magic           uint32
	Version         uint32
	NBlocks         uint32 // total FS blocks on the disk (including block 0)
	BlocksPerGroup  uint32
	NGroups         uint32
	InodeBlocksPerG uint32
	InodesPerGroup  uint32
	MaxContig       uint32
	RotDelay        uint32
}

func (s *Super) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], s.Magic)
	le.PutUint32(buf[4:], s.Version)
	le.PutUint32(buf[8:], s.NBlocks)
	le.PutUint32(buf[12:], s.BlocksPerGroup)
	le.PutUint32(buf[16:], s.NGroups)
	le.PutUint32(buf[20:], s.InodeBlocksPerG)
	le.PutUint32(buf[24:], s.InodesPerGroup)
	le.PutUint32(buf[28:], s.MaxContig)
	le.PutUint32(buf[32:], s.RotDelay)
}

func (s *Super) decode(buf []byte) error {
	le := binary.LittleEndian
	s.Magic = le.Uint32(buf[0:])
	s.Version = le.Uint32(buf[4:])
	s.NBlocks = le.Uint32(buf[8:])
	s.BlocksPerGroup = le.Uint32(buf[12:])
	s.NGroups = le.Uint32(buf[16:])
	s.InodeBlocksPerG = le.Uint32(buf[20:])
	s.InodesPerGroup = le.Uint32(buf[24:])
	s.MaxContig = le.Uint32(buf[28:])
	s.RotDelay = le.Uint32(buf[32:])
	if s.Magic != Magic {
		return fmt.Errorf("ufs: bad magic %#x", s.Magic)
	}
	if s.Version != Version {
		return fmt.Errorf("ufs: unsupported version %d", s.Version)
	}
	return nil
}

// Inode is the in-memory form of an on-disk inode.
type Inode struct {
	Mode      uint16
	NLink     uint16
	Size      int64
	MTime     int64 // virtual nanoseconds
	Direct    [NDirect]uint32
	Indirect  uint32
	DIndirect uint32
}

func (in *Inode) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint16(buf[0:], in.Mode)
	le.PutUint16(buf[2:], in.NLink)
	le.PutUint64(buf[8:], uint64(in.Size))
	le.PutUint64(buf[16:], uint64(in.MTime))
	for i, d := range in.Direct {
		le.PutUint32(buf[24+4*i:], d)
	}
	le.PutUint32(buf[24+4*NDirect:], in.Indirect)
	le.PutUint32(buf[28+4*NDirect:], in.DIndirect)
}

func (in *Inode) decode(buf []byte) {
	le := binary.LittleEndian
	in.Mode = le.Uint16(buf[0:])
	in.NLink = le.Uint16(buf[2:])
	in.Size = int64(le.Uint64(buf[8:]))
	in.MTime = int64(le.Uint64(buf[16:]))
	for i := range in.Direct {
		in.Direct[i] = le.Uint32(buf[24+4*i:])
	}
	in.Indirect = le.Uint32(buf[24+4*NDirect:])
	in.DIndirect = le.Uint32(buf[28+4*NDirect:])
}

// Blocks returns the file size in blocks, rounded up.
func (in *Inode) Blocks() int64 { return (in.Size + BlockSize - 1) / BlockSize }

// group describes one cylinder group's location and bitmap state.
// The header block layout is: [freeBlocks u32][freeInodes u32]
// [inode bitmap][block bitmap].
type group struct {
	index      int
	start      uint32 // first block of the group (the header block)
	nblocks    uint32 // blocks in this group (may be short in the last group)
	freeBlocks uint32
	freeInodes uint32
	inodeBmp   []byte
	blockBmp   []byte
	dirty      bool
}

func (g *group) dataStart(sb *Super) uint32 {
	return g.start + 1 + sb.InodeBlocksPerG
}

func (g *group) encode(buf []byte, sb *Super) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], g.freeBlocks)
	le.PutUint32(buf[4:], g.freeInodes)
	off := 8
	copy(buf[off:], g.inodeBmp)
	off += len(g.inodeBmp)
	copy(buf[off:], g.blockBmp)
}

func (g *group) decode(buf []byte, sb *Super) {
	le := binary.LittleEndian
	g.freeBlocks = le.Uint32(buf[0:])
	g.freeInodes = le.Uint32(buf[4:])
	off := 8
	inodeBmpLen := (int(sb.InodesPerGroup) + 7) / 8
	blockBmpLen := (int(sb.BlocksPerGroup) + 7) / 8
	g.inodeBmp = append([]byte(nil), buf[off:off+inodeBmpLen]...)
	off += inodeBmpLen
	g.blockBmp = append([]byte(nil), buf[off:off+blockBmpLen]...)
}

func bmpGet(bmp []byte, i int) bool { return bmp[i/8]&(1<<(i%8)) != 0 }
func bmpSet(bmp []byte, i int)      { bmp[i/8] |= 1 << (i % 8) }
func bmpClear(bmp []byte, i int)    { bmp[i/8] &^= 1 << (i % 8) }

// ErrTooSmall is returned by Format when the disk cannot hold even one
// cylinder group.
var ErrTooSmall = errors.New("ufs: disk too small")

// Format writes a fresh file system onto the disk image offline (no disk
// timing), the way mkfs prepares a volume before it is ever mounted. It
// returns the resulting superblock.
func Format(d BlockDevice, opts Options) (*Super, error) {
	opts.fillDefaults()
	nblocks := uint32(d.Geometry().TotalSectors() / SectorsPerBlock)
	if int(nblocks) < opts.BlocksPerGroup+1 {
		return nil, ErrTooSmall
	}
	bpg := uint32(opts.BlocksPerGroup)
	ngroups := (nblocks - 1) / bpg // block 0 is the superblock
	if (nblocks-1)%bpg >= uint32(opts.InodeBlocksPerG+2) {
		ngroups++ // partial last group, if it can hold metadata plus data
	}
	sb := &Super{
		Magic:           Magic,
		Version:         Version,
		NBlocks:         nblocks,
		BlocksPerGroup:  bpg,
		NGroups:         ngroups,
		InodeBlocksPerG: uint32(opts.InodeBlocksPerG),
		InodesPerGroup:  uint32(opts.InodeBlocksPerG * InodesPerBlock),
		MaxContig:       uint32(opts.MaxContig),
		RotDelay:        uint32(opts.RotDelay),
	}

	// Superblock.
	buf := make([]byte, BlockSize)
	sb.encode(buf)
	pokeBlock(d, 0, buf)

	// Cylinder groups.
	for gi := uint32(0); gi < ngroups; gi++ {
		g := newEmptyGroup(sb, int(gi))
		// Metadata blocks (header + inode blocks) are in use.
		for b := uint32(0); b < 1+sb.InodeBlocksPerG; b++ {
			bmpSet(g.blockBmp, int(b))
			g.freeBlocks--
		}
		// In group 0, reserve inode 0 so it is never allocated.
		if gi == 0 {
			bmpSet(g.inodeBmp, 0)
			g.freeInodes--
		}
		hdr := make([]byte, BlockSize)
		g.encode(hdr, sb)
		pokeBlock(d, int64(g.start), hdr)
		// Zero the inode blocks.
		zero := make([]byte, BlockSize)
		for b := uint32(0); b < sb.InodeBlocksPerG; b++ {
			pokeBlock(d, int64(g.start+1+b), zero)
		}
	}

	// Root directory: inode RootIno in group 0, initially empty.
	if err := writeRoot(d, sb); err != nil {
		return nil, err
	}
	return sb, nil
}

// newEmptyGroup builds the in-memory state of a freshly formatted group.
func newEmptyGroup(sb *Super, gi int) *group {
	start := uint32(1) + uint32(gi)*sb.BlocksPerGroup
	n := sb.BlocksPerGroup
	if start+n > sb.NBlocks {
		n = sb.NBlocks - start
	}
	g := &group{
		index:      gi,
		start:      start,
		nblocks:    n,
		freeBlocks: n,
		freeInodes: sb.InodesPerGroup,
		inodeBmp:   make([]byte, (int(sb.InodesPerGroup)+7)/8),
		blockBmp:   make([]byte, (int(sb.BlocksPerGroup)+7)/8),
	}
	// Blocks beyond the (possibly short) group are unusable.
	for b := n; b < sb.BlocksPerGroup; b++ {
		bmpSet(g.blockBmp, int(b))
	}
	return g
}

// writeRoot writes the root inode into group 0's first inode block and marks
// it allocated. Separated from the main loop for clarity since group 0 is
// the only group with live contents at format time.
func writeRoot(d BlockDevice, sb *Super) error {
	g := loadGroupOffline(d, sb, 0)
	bmpSet(g.inodeBmp, RootIno)
	g.freeInodes--
	hdr := make([]byte, BlockSize)
	g.encode(hdr, sb)
	pokeBlock(d, int64(g.start), hdr)

	ib := make([]byte, BlockSize)
	root := Inode{Mode: ModeDir, NLink: 1}
	root.encode(ib[RootIno*InodeSize:])
	pokeBlock(d, int64(g.start+1), ib)
	return nil
}

func loadGroupOffline(d BlockDevice, sb *Super, gi int) *group {
	g := newEmptyGroup(sb, gi)
	buf := peekBlock(d, int64(g.start))
	g.decode(buf, sb)
	g.index = gi
	return g
}

func pokeBlock(d BlockDevice, blk int64, data []byte) {
	for s := 0; s < SectorsPerBlock; s++ {
		d.PokeSector(blk*SectorsPerBlock+int64(s), data[s*512:(s+1)*512])
	}
}

func peekBlock(d BlockDevice, blk int64) []byte {
	out := make([]byte, BlockSize)
	for s := 0; s < SectorsPerBlock; s++ {
		copy(out[s*512:], d.PeekSector(blk*SectorsPerBlock+int64(s)))
	}
	return out
}
