package ufs

import (
	"fmt"
	"time"

	"repro/internal/rtm"
	"repro/internal/sim"
)

// CPU cost model for the Unix server, scaled to the paper's 100 MHz
// Pentium: a fixed per-call overhead (trap, VFS dispatch, reply) and a
// per-block cost (copyout of 8 KB plus buffer bookkeeping).
const (
	CostSyscall  = 150 * time.Microsecond
	CostPerBlock = 150 * time.Microsecond
)

// Server is the single-threaded Unix file server (the paper's Lites
// server). All application file access funnels through its one request
// port, which is what makes the Unix path vulnerable to priority inversion:
// a high-priority client's request can sit behind a low-priority client's
// request that is already occupying the server and the disk.
type Server struct {
	fs   *FileSystem
	port *rtm.Port
	th   *rtm.Thread

	fds    map[int]*File
	nextFd int

	// Requests served, for experiment accounting.
	Calls int64
}

type (
	openReq   struct{ path string }
	createReq struct{ path string }
	mkdirReq  struct{ path string }
	readReq   struct {
		fd  int
		off int64
		n   int
	}
	writeReq struct {
		fd   int
		off  int64
		data []byte
	}
	preallocReq struct {
		fd   int
		size int64
	}
	blockMapReq struct{ fd int }
	statReq     struct{ path string }
	unlinkReq   struct{ path string }
	readDirReq  struct{ path string }
	closeReq    struct{ fd int }
	syncReq     struct{}

	fdResp struct {
		fd  int
		err error
	}
	readResp struct {
		data []byte
		err  error
	}
	writeResp struct {
		n   int
		err error
	}
	blockMapResp struct {
		blocks []uint32
		size   int64
		err    error
	}
	statResp struct {
		st  Stat
		err error
	}
	readDirResp struct {
		ents []DirEntry
		err  error
	}
	errResp struct{ err error }
)

// NewServer starts the Unix server thread at the given priority (typically
// rtm.PrioTS) and returns its handle.
func NewServer(k *rtm.Kernel, fs *FileSystem, prio int, quantum sim.Time) *Server {
	s := &Server{fs: fs, port: k.NewPort("unix-server"), fds: make(map[int]*File), nextFd: 3}
	s.th = k.NewThread("unix-server", prio, quantum, s.loop)
	return s
}

// Port returns the server's request port.
func (s *Server) Port() *rtm.Port { return s.port }

// Thread returns the server thread.
func (s *Server) Thread() *rtm.Thread { return s.th }

// FS returns the served file system (for out-of-band inspection in tests).
func (s *Server) FS() *FileSystem { return s.fs }

func (s *Server) loop(t *rtm.Thread) {
	for {
		req, reply := s.port.ReceiveCall(t)
		s.Calls++
		t.Compute(CostSyscall)
		reply(s.handle(t, req))
	}
}

func (s *Server) file(fd int) (*File, error) {
	f, ok := s.fds[fd]
	if !ok {
		return nil, fmt.Errorf("ufs: bad file descriptor %d", fd)
	}
	return f, nil
}

func (s *Server) handle(t *rtm.Thread, req any) any {
	p := t.Proc()
	switch r := req.(type) {
	case openReq:
		f, err := s.fs.Open(p, r.path)
		if err != nil {
			return fdResp{err: err}
		}
		fd := s.nextFd
		s.nextFd++
		s.fds[fd] = f
		return fdResp{fd: fd}
	case createReq:
		f, err := s.fs.Create(p, r.path)
		if err != nil {
			return fdResp{err: err}
		}
		fd := s.nextFd
		s.nextFd++
		s.fds[fd] = f
		return fdResp{fd: fd}
	case mkdirReq:
		return errResp{err: s.fs.Mkdir(p, r.path)}
	case readReq:
		f, err := s.file(r.fd)
		if err != nil {
			return readResp{err: err}
		}
		buf := make([]byte, r.n)
		n, err := f.ReadAt(p, buf, r.off)
		t.Compute(CostPerBlock * sim.Time(1+(n-1)/BlockSize))
		return readResp{data: buf[:n], err: err}
	case writeReq:
		f, err := s.file(r.fd)
		if err != nil {
			return writeResp{err: err}
		}
		t.Compute(CostPerBlock * sim.Time(1+(len(r.data)-1)/BlockSize))
		n, err := f.WriteAt(p, r.data, r.off)
		return writeResp{n: n, err: err}
	case preallocReq:
		f, err := s.file(r.fd)
		if err != nil {
			return errResp{err: err}
		}
		return errResp{err: f.Preallocate(p, r.size)}
	case blockMapReq:
		f, err := s.file(r.fd)
		if err != nil {
			return blockMapResp{err: err}
		}
		blocks, err := f.BlockMap(p)
		return blockMapResp{blocks: blocks, size: f.Size(p), err: err}
	case statReq:
		st, err := s.fs.Stat(p, r.path)
		return statResp{st: st, err: err}
	case unlinkReq:
		return errResp{err: s.fs.Unlink(p, r.path)}
	case readDirReq:
		ents, err := s.fs.ReadDir(p, r.path)
		return readDirResp{ents: ents, err: err}
	case closeReq:
		delete(s.fds, r.fd)
		return errResp{}
	case syncReq:
		s.fs.Sync(p)
		return errResp{}
	}
	return errResp{err: fmt.Errorf("ufs: unknown request %T", req)}
}

// Client is a thread-side stub for calling the Unix server.
type Client struct {
	srv *Server
	th  *rtm.Thread
}

// NewClient binds a calling thread to a server.
func NewClient(srv *Server, th *rtm.Thread) *Client { return &Client{srv: srv, th: th} }

// Open opens an existing file and returns its descriptor.
func (c *Client) Open(path string) (int, error) {
	r := c.srv.port.Call(c.th, openReq{path: path}).(fdResp)
	return r.fd, r.err
}

// Create makes a new file and returns its descriptor.
func (c *Client) Create(path string) (int, error) {
	r := c.srv.port.Call(c.th, createReq{path: path}).(fdResp)
	return r.fd, r.err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	return c.srv.port.Call(c.th, mkdirReq{path: path}).(errResp).err
}

// Read reads n bytes at off from an open file.
func (c *Client) Read(fd int, off int64, n int) ([]byte, error) {
	r := c.srv.port.Call(c.th, readReq{fd: fd, off: off, n: n}).(readResp)
	return r.data, r.err
}

// Write writes data at off.
func (c *Client) Write(fd int, off int64, data []byte) (int, error) {
	r := c.srv.port.Call(c.th, writeReq{fd: fd, off: off, data: data}).(writeResp)
	return r.n, r.err
}

// Preallocate extends a file with placed but unwritten blocks.
func (c *Client) Preallocate(fd int, size int64) error {
	return c.srv.port.Call(c.th, preallocReq{fd: fd, size: size}).(errResp).err
}

// BlockMap returns the file's physical block map and size.
func (c *Client) BlockMap(fd int) ([]uint32, int64, error) {
	r := c.srv.port.Call(c.th, blockMapReq{fd: fd}).(blockMapResp)
	return r.blocks, r.size, r.err
}

// Stat returns file metadata.
func (c *Client) Stat(path string) (Stat, error) {
	r := c.srv.port.Call(c.th, statReq{path: path}).(statResp)
	return r.st, r.err
}

// Unlink removes a file.
func (c *Client) Unlink(path string) error {
	return c.srv.port.Call(c.th, unlinkReq{path: path}).(errResp).err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]DirEntry, error) {
	r := c.srv.port.Call(c.th, readDirReq{path: path}).(readDirResp)
	return r.ents, r.err
}

// Close releases a descriptor.
func (c *Client) Close(fd int) error {
	return c.srv.port.Call(c.th, closeReq{fd: fd}).(errResp).err
}

// Sync flushes all dirty state to disk.
func (c *Client) Sync() error {
	return c.srv.port.Call(c.th, syncReq{}).(errResp).err
}
