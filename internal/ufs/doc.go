// Package ufs implements a small BSD-FFS-like file system on the simulated
// disk, plus the single-threaded "Unix server" (the paper's Lites server)
// that serves it to applications.
//
// CRAS's central layout decision is that it does NOT define its own format:
// it shares the Unix file system's on-disk layout, tuned (via tunefs, here
// the MaxContig/RotDelay format options) to allocate file blocks as
// contiguously as possible. This package therefore provides both halves of
// that bargain:
//
//   - the format: a superblock, cylinder groups with block/inode bitmaps,
//     inodes with direct/indirect/double-indirect pointers, directories,
//     and a contiguity-preferring block allocator;
//   - the non-real-time access path: a buffer cache with sequential
//     read-ahead behind a single server thread, which is the baseline CRAS
//     is compared against in Figures 6 and 7 (and the source of its
//     priority inversions).
//
// CRAS itself bypasses this read path: it asks the server for a file's
// block map (a non-real-time operation, done at open time), coalesces it
// into extents, and reads raw sectors on the disk's real-time queue.
//
// Differences from real FFS, chosen to keep the package small without
// changing the behaviour the paper depends on: no fragments (a file's tail
// occupies a whole 8 KB block), no triple-indirect blocks, fixed 64-byte
// directory entries, and cylinder groups measured in blocks rather than
// exact cylinder boundaries.
//
// Concurrency model: a FileSystem instance must only be used from one
// simulation process at a time. The Unix server enforces this by
// construction — it is one thread, and that single-threadedness is exactly
// what the paper blames for the Unix file system's priority inversion.
package ufs
