package ufs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Sentinel errors.
var (
	ErrNotFound    = errors.New("ufs: no such file or directory")
	ErrExists      = errors.New("ufs: file exists")
	ErrNoSpace     = errors.New("ufs: no space left on device")
	ErrNotDir      = errors.New("ufs: not a directory")
	ErrIsDir       = errors.New("ufs: is a directory")
	ErrNameTooLong = errors.New("ufs: name too long")
	ErrFileTooBig  = errors.New("ufs: file too big")
	ErrNoInodes    = errors.New("ufs: out of inodes")
)

// FileSystem is a mounted file system. Its methods must be called from a
// single simulation process at a time (the Unix server enforces this).
type FileSystem struct {
	eng   *sim.Engine
	dsk   BlockDevice
	sb    Super
	cache *Cache

	readAhead int

	groups      map[int]*group
	inodes      map[uint32]*Inode
	dirtyInodes map[uint32]bool

	lastAllocGroup int
}

// Mount reads the superblock (with disk timing, from the calling process)
// and returns a file system handle. opts supplies runtime parameters
// (cache size, read-ahead); on-disk parameters come from the superblock.
func Mount(p *sim.Proc, dsk BlockDevice, opts Options) (*FileSystem, error) {
	opts.fillDefaults()
	fs := &FileSystem{
		eng:         p.Engine(),
		dsk:         dsk,
		cache:       NewCache(dsk, opts.CacheBlocks),
		readAhead:   opts.ReadAheadBlocks,
		groups:      make(map[int]*group),
		inodes:      make(map[uint32]*Inode),
		dirtyInodes: make(map[uint32]bool),
	}
	buf := fs.cache.Get(p, 0)
	if err := fs.sb.decode(buf); err != nil {
		return nil, err
	}
	return fs, nil
}

// Super returns a copy of the superblock.
func (fs *FileSystem) Super() Super { return fs.sb }

// Cache exposes the buffer cache (for statistics).
func (fs *FileSystem) Cache() *Cache { return fs.cache }

// Disk returns the underlying disk.
func (fs *FileSystem) Disk() BlockDevice { return fs.dsk }

// ---- group and inode state ----

func (fs *FileSystem) groupStart(gi int) uint32 { return 1 + uint32(gi)*fs.sb.BlocksPerGroup }

func (fs *FileSystem) getGroup(p *sim.Proc, gi int) *group {
	if g, ok := fs.groups[gi]; ok {
		return g
	}
	g := newEmptyGroup(&fs.sb, gi)
	g.decode(fs.cache.Get(p, int64(g.start)), &fs.sb)
	g.index = gi
	fs.groups[gi] = g
	return g
}

func (fs *FileSystem) flushGroup(p *sim.Proc, g *group) {
	if !g.dirty {
		return
	}
	buf := fs.cache.Get(p, int64(g.start))
	g.encode(buf, &fs.sb)
	fs.cache.MarkDirty(int64(g.start))
	g.dirty = false
}

func (fs *FileSystem) inodeLoc(ino uint32) (blk int64, off int) {
	gi := int(ino / fs.sb.InodesPerGroup)
	idx := int(ino % fs.sb.InodesPerGroup)
	blk = int64(fs.groupStart(gi)) + 1 + int64(idx/InodesPerBlock)
	off = (idx % InodesPerBlock) * InodeSize
	return blk, off
}

func (fs *FileSystem) getInode(p *sim.Proc, ino uint32) *Inode {
	if in, ok := fs.inodes[ino]; ok {
		return in
	}
	blk, off := fs.inodeLoc(ino)
	in := &Inode{}
	in.decode(fs.cache.Get(p, blk)[off : off+InodeSize])
	fs.inodes[ino] = in
	return in
}

func (fs *FileSystem) flushInode(p *sim.Proc, ino uint32) {
	in, ok := fs.inodes[ino]
	if !ok {
		return
	}
	blk, off := fs.inodeLoc(ino)
	buf := fs.cache.Get(p, blk)
	in.encode(buf[off : off+InodeSize])
	fs.cache.MarkDirty(blk)
	delete(fs.dirtyInodes, ino)
}

func (fs *FileSystem) markInodeDirty(ino uint32) { fs.dirtyInodes[ino] = true }

// Sync flushes dirty inodes, groups and cached blocks to disk. Flush order
// is sorted so runs stay deterministic despite map-backed state.
func (fs *FileSystem) Sync(p *sim.Proc) {
	inos := make([]uint32, 0, len(fs.dirtyInodes))
	for ino := range fs.dirtyInodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		fs.flushInode(p, ino)
	}
	gis := make([]int, 0, len(fs.groups))
	for gi := range fs.groups {
		gis = append(gis, gi)
	}
	sort.Ints(gis)
	for _, gi := range gis {
		fs.flushGroup(p, fs.groups[gi])
	}
	fs.cache.Sync(p)
}

// ---- allocation ----

// allocBlockNear allocates a free block, preferring goal exactly, then the
// remainder of goal's group, then subsequent groups. goal 0 means "no
// preference" (the scan starts at the last allocation group).
func (fs *FileSystem) allocBlockNear(p *sim.Proc, goal uint32) (uint32, error) {
	ngroups := int(fs.sb.NGroups)
	startGroup := fs.lastAllocGroup
	startOff := -1
	if goal != 0 && goal < fs.sb.NBlocks {
		startGroup = int((goal - 1) / fs.sb.BlocksPerGroup)
		startOff = int((goal - 1) % fs.sb.BlocksPerGroup)
	}
	for gi := 0; gi < ngroups; gi++ {
		g := fs.getGroup(p, (startGroup+gi)%ngroups)
		if g.freeBlocks == 0 {
			continue
		}
		from := 0
		if gi == 0 && startOff >= 0 {
			from = startOff
		}
		for b := from; b < int(g.nblocks); b++ {
			if !bmpGet(g.blockBmp, b) {
				bmpSet(g.blockBmp, b)
				g.freeBlocks--
				g.dirty = true
				fs.lastAllocGroup = g.index
				return g.start + uint32(b), nil
			}
		}
		// Exact-goal group: also try before the goal offset.
		if gi == 0 && startOff > 0 {
			for b := 0; b < startOff; b++ {
				if !bmpGet(g.blockBmp, b) {
					bmpSet(g.blockBmp, b)
					g.freeBlocks--
					g.dirty = true
					fs.lastAllocGroup = g.index
					return g.start + uint32(b), nil
				}
			}
		}
	}
	return 0, ErrNoSpace
}

func (fs *FileSystem) freeBlock(p *sim.Proc, blk uint32) {
	if blk == 0 {
		return
	}
	gi := int((blk - 1) / fs.sb.BlocksPerGroup)
	off := int((blk - 1) % fs.sb.BlocksPerGroup)
	g := fs.getGroup(p, gi)
	if !bmpGet(g.blockBmp, off) {
		panic(fmt.Sprintf("ufs: double free of block %d", blk))
	}
	bmpClear(g.blockBmp, off)
	g.freeBlocks++
	g.dirty = true
	fs.cache.Invalidate(int64(blk))
}

func (fs *FileSystem) allocInode(p *sim.Proc, nearGroup int, mode uint16) (uint32, error) {
	ngroups := int(fs.sb.NGroups)
	for gi := 0; gi < ngroups; gi++ {
		g := fs.getGroup(p, (nearGroup+gi)%ngroups)
		if g.freeInodes == 0 {
			continue
		}
		for i := 0; i < int(fs.sb.InodesPerGroup); i++ {
			if !bmpGet(g.inodeBmp, i) {
				bmpSet(g.inodeBmp, i)
				g.freeInodes--
				g.dirty = true
				ino := uint32(g.index)*fs.sb.InodesPerGroup + uint32(i)
				fs.inodes[ino] = &Inode{Mode: mode, NLink: 1, MTime: int64(fs.eng.Now())}
				fs.markInodeDirty(ino)
				return ino, nil
			}
		}
	}
	return 0, ErrNoInodes
}

func (fs *FileSystem) freeInode(p *sim.Proc, ino uint32) {
	gi := int(ino / fs.sb.InodesPerGroup)
	idx := int(ino % fs.sb.InodesPerGroup)
	g := fs.getGroup(p, gi)
	bmpClear(g.inodeBmp, idx)
	g.freeInodes++
	g.dirty = true
	fs.inodes[ino] = &Inode{} // ModeFree
	fs.markInodeDirty(ino)
	fs.flushInode(p, ino)
	delete(fs.inodes, ino)
}

// FreeBlocks returns the number of free data blocks across all groups.
// It loads every group, so it carries real I/O cost on first use.
func (fs *FileSystem) FreeBlocks(p *sim.Proc) int64 {
	var total int64
	for gi := 0; gi < int(fs.sb.NGroups); gi++ {
		total += int64(fs.getGroup(p, gi).freeBlocks)
	}
	return total
}

// ---- block mapping ----

// bmap resolves file block fbn of inode in to a physical block. If
// allocGoal is non-zero and the slot is empty, a block is allocated near
// the goal and installed. Returns 0 for unallocated holes when not
// allocating.
func (fs *FileSystem) bmap(p *sim.Proc, ino uint32, fbn int64, allocGoal uint32) (uint32, error) {
	in := fs.getInode(p, ino)
	if fbn < 0 || fbn >= MaxFileBlocks {
		return 0, ErrFileTooBig
	}
	alloc := allocGoal != 0

	// Direct.
	if fbn < NDirect {
		if in.Direct[fbn] == 0 && alloc {
			blk, err := fs.allocBlockNear(p, allocGoal)
			if err != nil {
				return 0, err
			}
			in.Direct[fbn] = blk
			fs.markInodeDirty(ino)
		}
		return in.Direct[fbn], nil
	}
	fbn -= NDirect

	// Single indirect.
	if fbn < PtrsPerBlock {
		if in.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := fs.allocBlockNear(p, allocGoal)
			if err != nil {
				return 0, err
			}
			fs.cache.GetZero(p, int64(blk))
			fs.cache.MarkDirty(int64(blk))
			in.Indirect = blk
			fs.markInodeDirty(ino)
		}
		return fs.indirectSlot(p, in.Indirect, fbn, allocGoal, false)
	}
	fbn -= PtrsPerBlock

	// Double indirect.
	if in.DIndirect == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := fs.allocBlockNear(p, allocGoal)
		if err != nil {
			return 0, err
		}
		fs.cache.GetZero(p, int64(blk))
		fs.cache.MarkDirty(int64(blk))
		in.DIndirect = blk
		fs.markInodeDirty(ino)
	}
	outer, inner := fbn/PtrsPerBlock, fbn%PtrsPerBlock
	l1, err := fs.indirectSlot(p, in.DIndirect, outer, allocGoal, true)
	if err != nil || l1 == 0 {
		return l1, err
	}
	return fs.indirectSlot(p, l1, inner, allocGoal, false)
}

// indirectSlot reads slot idx of the indirect block at blk, allocating and
// installing a new block near allocGoal if the slot is empty and allocGoal
// is non-zero. zeroNew must be true when the new block will itself serve as
// an indirect block (it must read as zeros even if its sectors carried
// stale payload from a freed file); plain data blocks skip the zeroing and
// the write-back it would cost — their stale contents are never visible
// through reads, which are clipped to the file size and overwritten before
// extension.
func (fs *FileSystem) indirectSlot(p *sim.Proc, blk uint32, idx int64, allocGoal uint32, zeroNew bool) (uint32, error) {
	buf := fs.cache.Get(p, int64(blk))
	ptr := leUint32(buf[idx*4:])
	if ptr == 0 && allocGoal != 0 {
		nb, err := fs.allocBlockNear(p, allocGoal)
		if err != nil {
			return 0, err
		}
		if zeroNew {
			fs.cache.GetZero(p, int64(nb))
			fs.cache.MarkDirty(int64(nb))
		}
		// Re-fetch the parent block: the allocation (group load) or GetZero
		// above may have evicted it, in which case the old alias would write
		// into a dropped buffer.
		buf = fs.cache.Get(p, int64(blk))
		putLeUint32(buf[idx*4:], nb)
		fs.cache.MarkDirty(int64(blk))
		return nb, nil
	}
	return ptr, nil
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeUint32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
