package ufs

import (
	"fmt"

	"repro/internal/sim"
)

// CheckReport is the outcome of a consistency check.
type CheckReport struct {
	Files      int
	Dirs       int
	UsedBlocks int64
	FreeBlocks int64
	Problems   []string
}

// OK reports whether the volume is consistent.
func (r *CheckReport) OK() bool { return len(r.Problems) == 0 }

func (r *CheckReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Check is fsck: it walks the directory tree from the root, resolves every
// inode's block tree, and cross-checks four invariants against the
// allocation bitmaps:
//
//  1. every block referenced by a live inode is marked allocated;
//  2. no block is referenced twice (by one file or by two);
//  3. every allocated data block is referenced by some live inode
//     (no leaks);
//  4. inode bitmap state matches directory reachability.
//
// It must run on a quiescent file system (call Sync first if the instance
// has been active).
func (fs *FileSystem) Check(p *sim.Proc) *CheckReport {
	r := &CheckReport{}
	blockOwner := make(map[uint32]uint32) // block -> inode
	liveInodes := make(map[uint32]bool)

	var claim func(ino, blk uint32, what string)
	claim = func(ino, blk uint32, what string) {
		if blk == 0 {
			return
		}
		if blk >= fs.sb.NBlocks {
			r.problemf("inode %d references out-of-range %s block %d", ino, what, blk)
			return
		}
		if owner, dup := blockOwner[blk]; dup {
			r.problemf("block %d claimed by inode %d (%s) but already owned by inode %d", blk, ino, what, owner)
			return
		}
		blockOwner[blk] = ino
	}

	// Walk every reachable inode from the root.
	var walk func(ino uint32) error
	walk = func(ino uint32) error {
		if liveInodes[ino] {
			r.problemf("inode %d reachable twice (directory cycle or duplicate entry)", ino)
			return nil
		}
		liveInodes[ino] = true
		in := fs.getInode(p, ino)
		if in.Mode == ModeFree {
			r.problemf("directory references free inode %d", ino)
			return nil
		}
		// Claim the block tree.
		for _, blk := range in.Direct {
			claim(ino, blk, "direct")
		}
		scanIndirect := func(blk uint32, what string) []uint32 {
			if blk == 0 {
				return nil
			}
			claim(ino, blk, what)
			buf := fs.cache.Get(p, int64(blk))
			ptrs := make([]uint32, PtrsPerBlock)
			for i := range ptrs {
				ptrs[i] = leUint32(buf[i*4:])
			}
			return ptrs
		}
		for _, leaf := range scanIndirect(in.Indirect, "indirect") {
			claim(ino, leaf, "indirect-leaf")
		}
		for _, l1 := range scanIndirect(in.DIndirect, "dindirect") {
			for _, leaf := range scanIndirect(l1, "dindirect-l1") {
				claim(ino, leaf, "dindirect-leaf")
			}
		}
		// Block-tree sanity: every in-range file block must resolve.
		for fbn := int64(0); fbn < in.Blocks(); fbn++ {
			if _, err := fs.bmap(p, ino, fbn, 0); err != nil {
				r.problemf("inode %d: bmap(%d): %v", ino, fbn, err)
				break
			}
		}
		if in.Mode == ModeDir {
			r.Dirs++
			ents, err := fs.readDirEnts(p, ino)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if e.ino == 0 {
					continue
				}
				if err := walk(e.ino); err != nil {
					return err
				}
			}
		} else {
			r.Files++
		}
		return nil
	}
	if err := walk(RootIno); err != nil {
		r.problemf("walk failed: %v", err)
		return r
	}

	// Cross-check the bitmaps group by group.
	for gi := 0; gi < int(fs.sb.NGroups); gi++ {
		g := fs.getGroup(p, gi)
		metaBlocks := 1 + int(fs.sb.InodeBlocksPerG)
		for b := 0; b < int(g.nblocks); b++ {
			blk := g.start + uint32(b)
			marked := bmpGet(g.blockBmp, b)
			_, referenced := blockOwner[blk]
			isMeta := b < metaBlocks
			switch {
			case referenced && !marked:
				r.problemf("block %d in use by inode %d but free in bitmap", blk, blockOwner[blk])
			case marked && !referenced && !isMeta:
				r.problemf("block %d allocated but unreferenced (leak)", blk)
			}
			if marked {
				r.UsedBlocks++
			} else {
				r.FreeBlocks++
			}
		}
		// Free counters must match the bitmap.
		free := uint32(0)
		for b := 0; b < int(g.nblocks); b++ {
			if !bmpGet(g.blockBmp, b) {
				free++
			}
		}
		if free != g.freeBlocks {
			r.problemf("group %d: freeBlocks counter %d, bitmap says %d", gi, g.freeBlocks, free)
		}
		// Inode bitmap vs reachability.
		for i := 0; i < int(fs.sb.InodesPerGroup); i++ {
			ino := uint32(gi)*fs.sb.InodesPerGroup + uint32(i)
			marked := bmpGet(g.inodeBmp, i)
			if ino == 0 {
				continue // reserved
			}
			switch {
			case liveInodes[ino] && !marked:
				r.problemf("inode %d reachable but free in bitmap", ino)
			case marked && !liveInodes[ino]:
				r.problemf("inode %d allocated but unreachable (orphan)", ino)
			}
		}
	}
	return r
}
