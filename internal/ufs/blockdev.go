package ufs

import (
	"repro/internal/disk"
	"repro/internal/sim"
)

// BlockDevice is the disk surface the file system consumes: geometry for
// layout, asynchronous submission for cached I/O, synchronous helpers for
// metadata paths, and the offline peek/poke pair mkfs uses. Both a bare
// *disk.Disk and a striped *disk.Volume satisfy it, so a CMFS image formats
// and mounts identically on one spindle or an array.
type BlockDevice interface {
	Geometry() disk.Geometry
	Submit(r *disk.Request)
	ReadSync(p *sim.Proc, lba int64, count int, realTime bool) []byte
	WriteSync(p *sim.Proc, lba int64, count int, data []byte, realTime bool)
	PeekSector(lba int64) []byte
	PokeSector(lba int64, data []byte)
}

var (
	_ BlockDevice = (*disk.Disk)(nil)
	_ BlockDevice = (*disk.Volume)(nil)
)
