package ufs

import (
	"errors"
	"strings"

	"repro/internal/sim"
)

// Directory entries are fixed 64-byte records: inode number, file type,
// name length, then the name. An entry with inode 0 is free.
const (
	dirEntSize = 64
	maxNameLen = dirEntSize - 6
)

type dirEnt struct {
	ino   uint32
	ftype uint8
	name  string
}

func (e *dirEnt) encode(buf []byte) {
	putLeUint32(buf[0:], e.ino)
	buf[4] = e.ftype
	buf[5] = uint8(len(e.name))
	copy(buf[6:], e.name)
	for i := 6 + len(e.name); i < dirEntSize; i++ {
		buf[i] = 0
	}
}

func (e *dirEnt) decode(buf []byte) {
	e.ino = leUint32(buf[0:])
	e.ftype = buf[4]
	n := int(buf[5])
	if n > maxNameLen {
		n = maxNameLen
	}
	e.name = string(buf[6 : 6+n])
}

// DirEntry is a name/inode pair returned by ReadDir.
type DirEntry struct {
	Name  string
	Ino   uint32
	IsDir bool
}

// readDirEnts scans every entry of a directory inode.
func (fs *FileSystem) readDirEnts(p *sim.Proc, dirIno uint32) ([]dirEnt, error) {
	f := fs.openByIno(dirIno)
	size := f.Size(p)
	raw := make([]byte, size)
	if _, err := f.ReadAt(p, raw, 0); err != nil {
		return nil, err
	}
	var out []dirEnt
	for off := int64(0); off+dirEntSize <= size; off += dirEntSize {
		var e dirEnt
		e.decode(raw[off : off+dirEntSize])
		out = append(out, e)
	}
	return out, nil
}

// dirLookup finds name in the directory, returning its entry index and
// inode.
func (fs *FileSystem) dirLookup(p *sim.Proc, dirIno uint32, name string) (idx int, ino uint32, err error) {
	ents, err := fs.readDirEnts(p, dirIno)
	if err != nil {
		return 0, 0, err
	}
	for i, e := range ents {
		if e.ino != 0 && e.name == name {
			return i, e.ino, nil
		}
	}
	return 0, 0, ErrNotFound
}

// dirAdd inserts an entry, reusing a free slot if available.
func (fs *FileSystem) dirAdd(p *sim.Proc, dirIno uint32, name string, ino uint32, ftype uint8) error {
	if len(name) == 0 || len(name) > maxNameLen || strings.Contains(name, "/") {
		return ErrNameTooLong
	}
	ents, err := fs.readDirEnts(p, dirIno)
	if err != nil {
		return err
	}
	slot := int64(len(ents))
	for i, e := range ents {
		if e.ino == 0 {
			slot = int64(i)
			break
		}
	}
	buf := make([]byte, dirEntSize)
	(&dirEnt{ino: ino, ftype: ftype, name: name}).encode(buf)
	f := fs.openByIno(dirIno)
	_, err = f.WriteAt(p, buf, slot*dirEntSize)
	return err
}

// dirRemove clears the entry for name.
func (fs *FileSystem) dirRemove(p *sim.Proc, dirIno uint32, name string) error {
	idx, _, err := fs.dirLookup(p, dirIno, name)
	if err != nil {
		return err
	}
	buf := make([]byte, dirEntSize) // ino 0 = free slot
	f := fs.openByIno(dirIno)
	_, err = f.WriteAt(p, buf, int64(idx)*dirEntSize)
	return err
}

// splitPath splits "/a/b/c" into components. An empty or "/" path yields
// nil (the root itself).
func splitPath(path string) []string {
	var out []string
	for _, part := range strings.Split(path, "/") {
		if part != "" && part != "." {
			out = append(out, part)
		}
	}
	return out
}

// namei resolves a path to an inode number.
func (fs *FileSystem) namei(p *sim.Proc, path string) (uint32, error) {
	cur := uint32(RootIno)
	for _, part := range splitPath(path) {
		in := fs.getInode(p, cur)
		if in.Mode != ModeDir {
			return 0, ErrNotDir
		}
		_, next, err := fs.dirLookup(p, cur, part)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return cur, nil
}

// nameiParent resolves the directory containing the path's final component.
func (fs *FileSystem) nameiParent(p *sim.Proc, path string) (parent uint32, name string, err error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return 0, "", ErrExists // the root itself
	}
	name = parts[len(parts)-1]
	cur := uint32(RootIno)
	for _, part := range parts[:len(parts)-1] {
		in := fs.getInode(p, cur)
		if in.Mode != ModeDir {
			return 0, "", ErrNotDir
		}
		_, next, err := fs.dirLookup(p, cur, part)
		if err != nil {
			return 0, "", err
		}
		cur = next
	}
	return cur, name, nil
}

// Open returns a handle on an existing file.
func (fs *FileSystem) Open(p *sim.Proc, path string) (*File, error) {
	ino, err := fs.namei(p, path)
	if err != nil {
		return nil, err
	}
	if fs.getInode(p, ino).Mode == ModeDir {
		return nil, ErrIsDir
	}
	return fs.openByIno(ino), nil
}

// Create makes a new empty file. The inode is placed in the parent
// directory's group when possible, as FFS does.
func (fs *FileSystem) Create(p *sim.Proc, path string) (*File, error) {
	parent, name, err := fs.nameiParent(p, path)
	if err != nil {
		return nil, err
	}
	if _, _, err := fs.dirLookup(p, parent, name); err == nil {
		return nil, ErrExists
	}
	ino, err := fs.allocInode(p, int(parent/fs.sb.InodesPerGroup), ModeFile)
	if err != nil {
		return nil, err
	}
	if err := fs.dirAdd(p, parent, name, ino, ModeFile); err != nil {
		fs.freeInode(p, ino)
		return nil, err
	}
	return fs.openByIno(ino), nil
}

// Mkdir creates a directory. New directories spread across groups to
// balance allocation, following the FFS heuristic of placing directories in
// emptier groups — approximated here by round-robin on the name hash.
func (fs *FileSystem) Mkdir(p *sim.Proc, path string) error {
	parent, name, err := fs.nameiParent(p, path)
	if err != nil {
		return err
	}
	if _, _, err := fs.dirLookup(p, parent, name); err == nil {
		return ErrExists
	}
	near := 0
	for _, c := range name {
		near = (near + int(c)) % int(fs.sb.NGroups)
	}
	ino, err := fs.allocInode(p, near, ModeDir)
	if err != nil {
		return err
	}
	if err := fs.dirAdd(p, parent, name, ino, ModeDir); err != nil {
		fs.freeInode(p, ino)
		return err
	}
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FileSystem) MkdirAll(p *sim.Proc, path string) error {
	parts := splitPath(path)
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if err := fs.Mkdir(p, cur); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

// Unlink removes a file, releasing its blocks and inode. Directories must
// be empty.
func (fs *FileSystem) Unlink(p *sim.Proc, path string) error {
	parent, name, err := fs.nameiParent(p, path)
	if err != nil {
		return err
	}
	_, ino, err := fs.dirLookup(p, parent, name)
	if err != nil {
		return err
	}
	in := fs.getInode(p, ino)
	if in.Mode == ModeDir {
		ents, err := fs.readDirEnts(p, ino)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.ino != 0 {
				return ErrExists // directory not empty
			}
		}
	}
	if err := fs.dirRemove(p, parent, name); err != nil {
		return err
	}
	in.NLink--
	if in.NLink == 0 {
		fs.truncateToZero(p, ino)
		fs.freeInode(p, ino)
	} else {
		fs.markInodeDirty(ino)
	}
	return nil
}

// ReadDir lists a directory.
func (fs *FileSystem) ReadDir(p *sim.Proc, path string) ([]DirEntry, error) {
	ino, err := fs.namei(p, path)
	if err != nil {
		return nil, err
	}
	if fs.getInode(p, ino).Mode != ModeDir {
		return nil, ErrNotDir
	}
	ents, err := fs.readDirEnts(p, ino)
	if err != nil {
		return nil, err
	}
	var out []DirEntry
	for _, e := range ents {
		if e.ino != 0 {
			out = append(out, DirEntry{Name: e.name, Ino: e.ino, IsDir: e.ftype == ModeDir})
		}
	}
	return out, nil
}

// Stat describes a file for applications.
type Stat struct {
	Ino    uint32
	Size   int64
	IsDir  bool
	Blocks int64
}

// Stat returns file metadata.
func (fs *FileSystem) Stat(p *sim.Proc, path string) (Stat, error) {
	ino, err := fs.namei(p, path)
	if err != nil {
		return Stat{}, err
	}
	in := fs.getInode(p, ino)
	return Stat{Ino: ino, Size: in.Size, IsDir: in.Mode == ModeDir, Blocks: in.Blocks()}, nil
}
