package ufs

import (
	"repro/internal/sim"
)

// File is an open file handle. Handles carry per-open sequential-read state
// for read-ahead; all data state lives in the shared inode.
type File struct {
	fs  *FileSystem
	ino uint32

	lastFBN   int64 // last file block read, for sequential detection
	raCluster int64 // last cluster for which read-ahead was issued
}

// Ino returns the file's inode number.
func (f *File) Ino() uint32 { return f.ino }

// Size returns the current file size in bytes.
func (f *File) Size(p *sim.Proc) int64 { return f.fs.getInode(p, f.ino).Size }

// openByIno returns a handle on an existing inode.
func (fs *FileSystem) openByIno(ino uint32) *File {
	return &File{fs: fs, ino: ino, lastFBN: -2, raCluster: -1}
}

// allocGoalFor returns the allocator goal for file block fbn: right after
// the previous block (contiguous layout), plus the RotDelay gap after every
// MaxContig blocks when the file system is configured with the historical
// FFS interleave. For the first block, the goal is the start of the data
// area in the inode's own group.
func (f *File) allocGoalFor(p *sim.Proc, fbn int64) uint32 {
	fs := f.fs
	if fbn > 0 {
		prev, err := fs.bmap(p, f.ino, fbn-1, 0)
		if err == nil && prev != 0 {
			goal := prev + 1
			if fs.sb.RotDelay > 0 && fbn%int64(fs.sb.MaxContig) == 0 {
				goal += fs.sb.RotDelay
			}
			return goal
		}
	}
	gi := int(f.ino / fs.sb.InodesPerGroup)
	g := fs.getGroup(p, gi)
	return g.dataStart(&fs.sb)
}

// WriteAt writes data at the byte offset, allocating blocks as needed and
// extending the file size. It returns the number of bytes written.
func (f *File) WriteAt(p *sim.Proc, data []byte, off int64) (int, error) {
	fs := f.fs
	in := fs.getInode(p, f.ino)
	if in.Mode == ModeDir && off%dirEntSize != 0 {
		// Directories are written by the directory layer only.
		return 0, ErrIsDir
	}
	written := 0
	for written < len(data) {
		fbn := (off + int64(written)) / BlockSize
		bOff := int((off + int64(written)) % BlockSize)
		n := BlockSize - bOff
		if n > len(data)-written {
			n = len(data) - written
		}
		phys, err := fs.bmap(p, f.ino, fbn, f.allocGoalFor(p, fbn))
		if err != nil {
			return written, err
		}
		var buf []byte
		if bOff == 0 && n == BlockSize {
			buf = fs.cache.GetZero(p, int64(phys))
		} else {
			buf = fs.cache.Get(p, int64(phys))
		}
		copy(buf[bOff:], data[written:written+n])
		fs.cache.MarkDirty(int64(phys))
		written += n
	}
	if off+int64(written) > in.Size {
		in.Size = off + int64(written)
	}
	in.MTime = int64(fs.eng.Now())
	fs.markInodeDirty(f.ino)
	return written, nil
}

// Append writes data at the end of the file.
func (f *File) Append(p *sim.Proc, data []byte) (int, error) {
	return f.WriteAt(p, data, f.Size(p))
}

// Preallocate extends the file to newSize bytes by allocating blocks
// without writing their payloads. This is the extension the paper's
// conclusion calls for so that continuous media can later be *written* at a
// constant rate into already-placed blocks; it is also how experiments lay
// out multi-hundred-megabyte movie files without storing their bytes.
func (f *File) Preallocate(p *sim.Proc, newSize int64) error {
	fs := f.fs
	in := fs.getInode(p, f.ino)
	if newSize <= in.Size {
		return nil
	}
	first := in.Blocks()
	last := (newSize + BlockSize - 1) / BlockSize
	for fbn := first; fbn < last; fbn++ {
		if _, err := fs.bmap(p, f.ino, fbn, f.allocGoalFor(p, fbn)); err != nil {
			return err
		}
	}
	in.Size = newSize
	in.MTime = int64(fs.eng.Now())
	fs.markInodeDirty(f.ino)
	return nil
}

// ReadAt reads up to len(buf) bytes at the offset through the buffer cache,
// returning the count (short at end of file). Sequential reads trigger
// clustered read-ahead of the next window.
func (f *File) ReadAt(p *sim.Proc, buf []byte, off int64) (int, error) {
	fs := f.fs
	in := fs.getInode(p, f.ino)
	if off >= in.Size {
		return 0, nil
	}
	n := len(buf)
	if int64(n) > in.Size-off {
		n = int(in.Size - off)
	}
	read := 0
	for read < n {
		fbn := (off + int64(read)) / BlockSize
		bOff := int((off + int64(read)) % BlockSize)
		c := BlockSize - bOff
		if c > n-read {
			c = n - read
		}
		phys, err := fs.bmap(p, f.ino, fbn, 0)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			for i := 0; i < c; i++ {
				buf[read+i] = 0
			}
		} else {
			data := fs.cache.Get(p, int64(phys))
			copy(buf[read:read+c], data[bOff:])
		}
		sequential := fbn == f.lastFBN+1 || fbn == f.lastFBN
		f.lastFBN = fbn
		if sequential && fs.readAhead > 0 {
			f.readAheadFrom(p, fbn+1)
		}
		read += c
	}
	return read, nil
}

// readAheadFrom implements FFS-style clustered read-ahead: once per
// read-ahead cluster (ReadAheadBlocks blocks, 64 KB by default), it
// prefetches through the end of the *next* cluster with as few large disk
// requests as the physical layout allows. Firing once per cluster rather
// than once per block is what keeps sequential UFS reads in big transfers
// instead of a stream of 8 KB requests, each paying command and rotation
// costs.
func (f *File) readAheadFrom(p *sim.Proc, from int64) {
	fs := f.fs
	cluster := int64(fs.readAhead)
	if cluster <= 0 || from < 1 {
		return
	}
	cur := (from - 1) / cluster // cluster of the block just read
	if cur == f.raCluster {
		return
	}
	f.raCluster = cur
	end := (cur + 2) * cluster // through the end of the next cluster
	maxFBN := fs.getInode(p, f.ino).Blocks()
	if end > maxFBN {
		end = maxFBN
	}
	var runStart uint32
	var runLen int
	flush := func() {
		if runLen > 0 {
			fs.cache.Prefetch(int64(runStart), runLen)
			runStart, runLen = 0, 0
		}
	}
	for b := from; b < end; b++ {
		phys, err := fs.bmap(p, f.ino, b, 0)
		if err != nil || phys == 0 {
			break
		}
		if fs.cache.Contains(int64(phys)) {
			flush()
			continue
		}
		switch {
		case runLen == 0:
			runStart, runLen = phys, 1
		case phys == runStart+uint32(runLen):
			runLen++
		default:
			flush()
			runStart, runLen = phys, 1
		}
	}
	flush()
}

// BlockMap returns the physical block of every file block (0 for holes).
// CRAS calls this through the Unix server at open time and schedules its
// raw real-time reads from the result.
func (f *File) BlockMap(p *sim.Proc) ([]uint32, error) {
	fs := f.fs
	in := fs.getInode(p, f.ino)
	out := make([]uint32, in.Blocks())
	for i := range out {
		phys, err := fs.bmap(p, f.ino, int64(i), 0)
		if err != nil {
			return nil, err
		}
		out[i] = phys
	}
	return out, nil
}

// truncateToZero releases every data and indirect block of an inode.
func (fs *FileSystem) truncateToZero(p *sim.Proc, ino uint32) {
	in := fs.getInode(p, ino)
	for i, blk := range in.Direct {
		fs.freeBlock(p, blk)
		in.Direct[i] = 0
	}
	freeIndirect := func(blk uint32) {
		if blk == 0 {
			return
		}
		buf := fs.cache.Get(p, int64(blk))
		ptrs := make([]uint32, PtrsPerBlock)
		for i := range ptrs {
			ptrs[i] = leUint32(buf[i*4:])
		}
		for _, ptr := range ptrs {
			fs.freeBlock(p, ptr)
		}
		fs.freeBlock(p, blk)
	}
	if in.DIndirect != 0 {
		buf := fs.cache.Get(p, int64(in.DIndirect))
		l1s := make([]uint32, PtrsPerBlock)
		for i := range l1s {
			l1s[i] = leUint32(buf[i*4:])
		}
		for _, l1 := range l1s {
			freeIndirect(l1)
		}
		fs.freeBlock(p, in.DIndirect)
		in.DIndirect = 0
	}
	freeIndirect(in.Indirect)
	in.Indirect = 0
	in.Size = 0
	fs.markInodeDirty(ino)
}
