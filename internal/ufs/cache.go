package ufs

import (
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/sim"
)

// cacheEntry is one cached file-system block.
type cacheEntry struct {
	blk     int64
	data    []byte
	dirty   bool
	pending bool // a read is in flight filling this entry
	waiters *sim.Waiter
	lruSeq  uint64
}

// Cache is a write-back LRU buffer cache over file-system blocks. All
// blocking methods take the calling process; the cache itself performs the
// disk I/O (on the normal, non-real-time queue — CRAS never reads through
// it).
type Cache struct {
	dsk      BlockDevice
	capacity int
	entries  map[int64]*cacheEntry
	seq      uint64

	// Stats.
	Hits       int64
	Misses     int64
	Writebacks int64
	Prefetches int64
}

// NewCache creates a cache holding up to capacity blocks.
func NewCache(dsk BlockDevice, capacity int) *Cache {
	if capacity < 4 {
		capacity = 4
	}
	return &Cache{dsk: dsk, capacity: capacity, entries: make(map[int64]*cacheEntry)}
}

func (c *Cache) touch(e *cacheEntry) {
	c.seq++
	e.lruSeq = c.seq
}

// Get returns the contents of a block, reading it from disk on a miss. The
// returned slice aliases the cache entry: callers that modify it must call
// MarkDirty with the same block number before the next blocking operation.
func (c *Cache) Get(p *sim.Proc, blk int64) []byte {
	if e, ok := c.entries[blk]; ok {
		for e.pending {
			e.waiters.Wait(p)
		}
		c.Hits++
		c.touch(e)
		return e.data
	}
	c.Misses++
	c.evictFor(p, 1)
	e := &cacheEntry{blk: blk, pending: true, waiters: sim.NewWaiter(fmt.Sprintf("cache:%d", blk))}
	c.entries[blk] = e
	c.touch(e)
	data := c.dsk.ReadSync(p, blk*SectorsPerBlock, SectorsPerBlock, false)
	e.data = data
	e.pending = false
	e.waiters.WakeAll()
	return e.data
}

// GetZero returns a cache entry for a block that is about to be fully
// overwritten, without reading it from disk.
func (c *Cache) GetZero(p *sim.Proc, blk int64) []byte {
	if e, ok := c.entries[blk]; ok {
		for e.pending {
			e.waiters.Wait(p)
		}
		c.touch(e)
		for i := range e.data {
			e.data[i] = 0
		}
		return e.data
	}
	c.evictFor(p, 1)
	e := &cacheEntry{blk: blk, data: make([]byte, BlockSize), waiters: sim.NewWaiter(fmt.Sprintf("cache:%d", blk))}
	c.entries[blk] = e
	c.touch(e)
	return e.data
}

// MarkDirty flags a cached block as modified so eviction and Sync write it
// back.
func (c *Cache) MarkDirty(blk int64) {
	if e, ok := c.entries[blk]; ok {
		e.dirty = true
	} else {
		panic(fmt.Sprintf("ufs: MarkDirty of uncached block %d", blk))
	}
}

// Contains reports whether a block is resident (even if still being filled).
func (c *Cache) Contains(blk int64) bool {
	_, ok := c.entries[blk]
	return ok
}

// Prefetch starts an asynchronous read of count consecutive blocks starting
// at blk, skipping any that are already resident. It never blocks the
// caller. Runs of absent blocks are fetched with single multi-block disk
// requests, which is where FFS-style clustered read-ahead gets its
// throughput.
func (c *Cache) Prefetch(blk int64, count int) {
	i := 0
	for i < count {
		// Skip resident blocks.
		for i < count && c.Contains(blk+int64(i)) {
			i++
		}
		if i >= count {
			return
		}
		runStart := i
		for i < count && !c.Contains(blk+int64(i)) {
			i++
		}
		c.prefetchRun(blk+int64(runStart), i-runStart)
	}
}

func (c *Cache) prefetchRun(blk int64, count int) {
	// Room check: prefetch must not evict synchronously (no proc context);
	// drop clean LRU entries only, and shrink the run if the cache is tight.
	for len(c.entries)+count > c.capacity {
		if !c.evictCleanLRU() {
			break
		}
	}
	if len(c.entries)+count > c.capacity {
		count = c.capacity - len(c.entries)
		if count <= 0 {
			return
		}
	}
	entries := make([]*cacheEntry, count)
	for i := 0; i < count; i++ {
		e := &cacheEntry{blk: blk + int64(i), pending: true, waiters: sim.NewWaiter(fmt.Sprintf("cache:%d", blk+int64(i)))}
		c.entries[e.blk] = e
		c.touch(e)
		entries[i] = e
	}
	c.Prefetches += int64(count)
	c.dsk.Submit(&disk.Request{
		LBA:   blk * SectorsPerBlock,
		Count: count * SectorsPerBlock,
		Done: func(r *disk.Request, data []byte) {
			for i, e := range entries {
				e.data = append([]byte(nil), data[i*BlockSize:(i+1)*BlockSize]...)
				e.pending = false
				e.waiters.WakeAll()
			}
		},
	})
}

// evictCleanLRU drops the least-recently-used clean, non-pending entry,
// reporting whether one was found.
func (c *Cache) evictCleanLRU() bool {
	var victim *cacheEntry
	for _, e := range c.entries {
		if e.pending || e.dirty {
			continue
		}
		if victim == nil || e.lruSeq < victim.lruSeq {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(c.entries, victim.blk)
	return true
}

// evictFor makes room for n new entries, writing back dirty victims.
func (c *Cache) evictFor(p *sim.Proc, n int) {
	for len(c.entries)+n > c.capacity {
		var victim *cacheEntry
		for _, e := range c.entries {
			if e.pending {
				continue
			}
			if victim == nil || e.lruSeq < victim.lruSeq {
				victim = e
			}
		}
		if victim == nil {
			return // everything pending; allow temporary overshoot
		}
		if victim.dirty {
			c.Writebacks++
			c.dsk.WriteSync(p, victim.blk*SectorsPerBlock, SectorsPerBlock, victim.data, false)
		}
		delete(c.entries, victim.blk)
	}
}

// Sync writes back every dirty block.
func (c *Cache) Sync(p *sim.Proc) {
	// Deterministic order: ascending block number.
	var dirty []int64
	for blk, e := range c.entries {
		if e.dirty && !e.pending {
			dirty = append(dirty, blk)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	for _, blk := range dirty {
		e := c.entries[blk]
		c.Writebacks++
		c.dsk.WriteSync(p, blk*SectorsPerBlock, SectorsPerBlock, e.data, false)
		e.dirty = false
	}
}

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.entries) }

// Invalidate drops a block from the cache, discarding dirty data. Used when
// freeing blocks.
func (c *Cache) Invalidate(blk int64) { delete(c.entries, blk) }
