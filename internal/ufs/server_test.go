package ufs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/rtm"
	"repro/internal/sim"
)

// withServer builds a kernel, a formatted disk, a mounted FS, and the Unix
// server, then runs client bodies as threads.
func withServer(t *testing.T, fn func(k *rtm.Kernel, srv *Server)) {
	t.Helper()
	e := sim.NewEngine(1)
	d := smallDisk(e)
	if _, err := Format(d, Options{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	k := rtm.NewKernel(e)
	e.Spawn("setup", func(p *sim.Proc) {
		fs, err := Mount(p, d, Options{})
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		srv := NewServer(k, fs, rtm.PrioTS, 0)
		fn(k, srv)
	})
	e.Run()
}

func TestServerCreateWriteRead(t *testing.T) {
	withServer(t, func(k *rtm.Kernel, srv *Server) {
		data := bytes.Repeat([]byte{7}, 3*BlockSize)
		k.NewThread("app", rtm.PrioTS, 0, func(th *rtm.Thread) {
			c := NewClient(srv, th)
			fd, err := c.Create("/file")
			if err != nil {
				t.Errorf("Create: %v", err)
				return
			}
			if n, err := c.Write(fd, 0, data); err != nil || n != len(data) {
				t.Errorf("Write = %d, %v", n, err)
				return
			}
			got, err := c.Read(fd, BlockSize, BlockSize)
			if err != nil || !bytes.Equal(got, data[BlockSize:2*BlockSize]) {
				t.Errorf("Read mismatch: %v", err)
			}
			if err := c.Close(fd); err != nil {
				t.Errorf("Close: %v", err)
			}
			if _, err := c.Read(fd, 0, 1); err == nil {
				t.Error("Read on closed fd succeeded")
			}
		})
	})
}

func TestServerBlockMapAndPreallocate(t *testing.T) {
	withServer(t, func(k *rtm.Kernel, srv *Server) {
		k.NewThread("app", rtm.PrioTS, 0, func(th *rtm.Thread) {
			c := NewClient(srv, th)
			fd, _ := c.Create("/movie")
			if err := c.Preallocate(fd, 40*BlockSize); err != nil {
				t.Errorf("Preallocate: %v", err)
				return
			}
			blocks, size, err := c.BlockMap(fd)
			if err != nil || size != 40*BlockSize || len(blocks) != 40 {
				t.Errorf("BlockMap = %d blocks, size %d, %v", len(blocks), size, err)
			}
		})
	})
}

func TestServerSerializesClients(t *testing.T) {
	withServer(t, func(k *rtm.Kernel, srv *Server) {
		// Two clients interleave many operations; the single server thread
		// must keep state consistent and reply to each correctly.
		mk := func(name, path string) {
			k.NewThread(name, rtm.PrioTS, 0, func(th *rtm.Thread) {
				c := NewClient(srv, th)
				fd, err := c.Create(path)
				if err != nil {
					t.Errorf("%s Create: %v", name, err)
					return
				}
				payload := bytes.Repeat([]byte(name[:1]), 512)
				for i := 0; i < 10; i++ {
					if _, err := c.Write(fd, int64(i*512), payload); err != nil {
						t.Errorf("%s Write: %v", name, err)
						return
					}
				}
				got, _ := c.Read(fd, 0, 512)
				if len(got) != 512 || got[0] != name[0] {
					t.Errorf("%s read back wrong data", name)
				}
			})
		}
		mk("a", "/fa")
		mk("b", "/fb")
	})
}

func TestServerStatUnlinkDirOps(t *testing.T) {
	withServer(t, func(k *rtm.Kernel, srv *Server) {
		k.NewThread("app", rtm.PrioTS, 0, func(th *rtm.Thread) {
			c := NewClient(srv, th)
			if err := c.Mkdir("/docs"); err != nil {
				t.Errorf("Mkdir: %v", err)
			}
			fd, _ := c.Create("/docs/x")
			c.Write(fd, 0, []byte("data"))
			st, err := c.Stat("/docs/x")
			if err != nil || st.Size != 4 {
				t.Errorf("Stat = %+v, %v", st, err)
			}
			ents, err := c.ReadDir("/docs")
			if err != nil || len(ents) != 1 || ents[0].Name != "x" {
				t.Errorf("ReadDir = %v, %v", ents, err)
			}
			if err := c.Sync(); err != nil {
				t.Errorf("Sync: %v", err)
			}
			if err := c.Unlink("/docs/x"); err != nil {
				t.Errorf("Unlink: %v", err)
			}
			if _, err := c.Open("/docs/x"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Open after unlink = %v", err)
			}
		})
	})
}

func TestServerTracksCallCount(t *testing.T) {
	withServer(t, func(k *rtm.Kernel, srv *Server) {
		k.NewThread("app", rtm.PrioTS, 0, func(th *rtm.Thread) {
			c := NewClient(srv, th)
			c.Stat("/")
			c.Stat("/")
			if srv.Calls != 2 {
				t.Errorf("Calls = %d, want 2", srv.Calls)
			}
		})
	})
}

// A high-priority client's request can be delayed by a low-priority
// client's request already occupying the single server thread — the
// priority inversion the paper attributes to the Unix file system.
func TestServerPriorityInversionExists(t *testing.T) {
	withServer(t, func(k *rtm.Kernel, srv *Server) {
		var hiStart, hiEnd sim.Time
		k.NewThread("lowprio-cat", rtm.PrioTS, 0, func(th *rtm.Thread) {
			c := NewClient(srv, th)
			fd, _ := c.Create("/bulk")
			c.Write(fd, 0, make([]byte, 32*BlockSize))
			for i := 0; i < 50; i++ {
				c.Read(fd, int64(i%32)*BlockSize, BlockSize)
			}
		})
		k.NewThread("rt-player", rtm.PrioRT, 0, func(th *rtm.Thread) {
			th.Sleep(5 * time.Millisecond)
			c := NewClient(srv, th)
			hiStart = k.Now()
			c.Stat("/")
			hiEnd = k.Now()
		})
		_ = hiStart
		_ = hiEnd
	})
	// No assertion on magnitude here (that is Figure 7's job); the
	// measured delay just must exist and the run must terminate.
}
