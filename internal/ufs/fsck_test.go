package ufs

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCheckCleanVolume(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		r := fs.Check(p)
		if !r.OK() {
			t.Fatalf("fresh volume inconsistent: %v", r.Problems)
		}
		if r.Dirs != 1 || r.Files != 0 {
			t.Fatalf("fresh volume: %d dirs %d files", r.Dirs, r.Files)
		}
	})
}

func TestCheckAfterActivity(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		fs.Mkdir(p, "/a")
		fs.Mkdir(p, "/a/b")
		f1, _ := fs.Create(p, "/a/f1")
		f1.WriteAt(p, bytes.Repeat([]byte{1}, 3*BlockSize), 0)
		f2, _ := fs.Create(p, "/a/b/f2")
		f2.Preallocate(p, int64(NDirect+100)*BlockSize) // indirect blocks
		fs.Create(p, "/tmp1")
		fs.Unlink(p, "/tmp1")
		fs.Sync(p)
		r := fs.Check(p)
		if !r.OK() {
			t.Fatalf("volume inconsistent after activity: %v", r.Problems)
		}
		if r.Files != 2 || r.Dirs != 3 {
			t.Fatalf("counted %d files %d dirs", r.Files, r.Dirs)
		}
		if r.UsedBlocks == 0 || r.FreeBlocks == 0 {
			t.Fatal("block accounting empty")
		}
	})
}

func TestCheckDetectsLeak(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		// Allocate a block and drop it on the floor.
		if _, err := fs.allocBlockNear(p, 0); err != nil {
			t.Fatal(err)
		}
		r := fs.Check(p)
		if r.OK() {
			t.Fatal("leaked block not detected")
		}
	})
}

func TestCheckDetectsDoubleClaim(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		f1, _ := fs.Create(p, "/x")
		f1.WriteAt(p, []byte{1}, 0)
		f2, _ := fs.Create(p, "/y")
		f2.WriteAt(p, []byte{1}, 0)
		// Corrupt: point y's first block at x's.
		in1 := fs.getInode(p, f1.ino)
		in2 := fs.getInode(p, f2.ino)
		fs.freeBlock(p, in2.Direct[0])
		in2.Direct[0] = in1.Direct[0]
		fs.markInodeDirty(f2.ino)
		r := fs.Check(p)
		if r.OK() {
			t.Fatal("cross-linked block not detected")
		}
	})
}

func TestCheckDetectsOrphanInode(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		// Allocate an inode with no directory entry.
		if _, err := fs.allocInode(p, 0, ModeFile); err != nil {
			t.Fatal(err)
		}
		r := fs.Check(p)
		if r.OK() {
			t.Fatal("orphan inode not detected")
		}
	})
}

func TestCheckDetectsBadFreeCount(t *testing.T) {
	withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
		g := fs.getGroup(p, 0)
		g.freeBlocks-- // counter now disagrees with the bitmap
		r := fs.Check(p)
		if r.OK() {
			t.Fatal("free-count mismatch not detected")
		}
	})
}

// Property: any sequence of create/write/preallocate/unlink operations
// leaves a consistent volume.
func TestPropertyFSConsistentUnderOps(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		ok := true
		withFS(t, Options{}, func(p *sim.Proc, fs *FileSystem) {
			var files []string
			for i, op := range ops {
				name := "/f" + string(rune('a'+i%26))
				switch op % 4 {
				case 0:
					if _, err := fs.Create(p, name); err == nil {
						files = append(files, name)
					}
				case 1:
					if len(files) > 0 {
						fh, err := fs.Open(p, files[int(op)%len(files)])
						if err == nil {
							fh.WriteAt(p, bytes.Repeat([]byte{byte(op)}, int(op%5000)+1), int64(op%3)*BlockSize)
						}
					}
				case 2:
					if len(files) > 0 {
						fh, err := fs.Open(p, files[int(op)%len(files)])
						if err == nil {
							fh.Preallocate(p, int64(op%200)*BlockSize)
						}
					}
				case 3:
					if len(files) > 0 {
						idx := int(op) % len(files)
						if fs.Unlink(p, files[idx]) == nil {
							files = append(files[:idx], files[idx+1:]...)
						}
					}
				}
			}
			fs.Sync(p)
			r := fs.Check(p)
			if !r.OK() {
				t.Logf("problems: %v", r.Problems)
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
