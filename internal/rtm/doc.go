// Package rtm models the Real-Time Mach kernel facilities that CRAS depends
// on: preemptive fixed-priority thread scheduling, round-robin timesharing,
// ports for inter-thread communication, mutexes with optional priority
// inheritance, and periodic threads with deadline notification.
//
// The model runs on the deterministic virtual clock of internal/sim. A
// single simulated CPU is shared by all threads of a Kernel. CPU contention
// exists only inside Thread.Compute: code between Compute calls executes in
// zero virtual time, so every cost an experiment cares about must be modeled
// as an explicit Compute (or as device time in internal/disk). This is the
// usual level of abstraction for OS scheduling studies — what matters for
// the paper's claims (Figs 6, 7, 10) is who gets the CPU and the disk when,
// not instruction-accurate timing.
//
// Scheduling model. Each thread has a priority (larger is more urgent) and
// a quantum. A zero quantum gives classic fixed-priority preemptive
// scheduling: the thread runs until its burst completes or a higher-priority
// thread wakes. A positive quantum gives round-robin behaviour at that
// priority level: the thread is requeued at the tail of its level when the
// quantum expires. The paper's Figure 10 compares exactly these two
// policies. A preempted thread returns to the head of its level, a
// quantum-expired thread to the tail, matching conventional kernel behaviour.
//
// Interrupt context. Device completion callbacks run as plain sim events
// and may call Port.Send to wake a handler thread; this corresponds to the
// paper's device-driver interrupt notifying CRAS's I/O-done manager thread.
package rtm
