package rtm

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// Receivers that blocked first must be served first: wakeup order is the
// order in which threads queued on the port, regardless of send timing.
func TestPortReceiverWakeupFIFO(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	p := k.NewPort("fifo")
	type delivery struct {
		who string
		msg int
	}
	var got []delivery
	rx := func(name string, startDelay sim.Time) {
		k.NewThread(name, PrioTS, 0, func(th *Thread) {
			th.Sleep(startDelay)
			got = append(got, delivery{name, p.Receive(th).(int)})
		})
	}
	rx("r1", ms(1))
	rx("r2", ms(2))
	rx("r3", ms(3))
	e.At(ms(10), func() { p.Send(100); p.Send(200); p.Send(300) })
	e.Run()
	want := []delivery{{"r1", 100}, {"r2", 200}, {"r3", 300}}
	if len(got) != 3 {
		t.Fatalf("deliveries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v (wakeup order not FIFO)", i, got[i], want[i])
		}
	}
}

// A message handed to a woken receiver belongs to that receiver: a
// TryReceive racing in between the wakeup and the receiver actually running
// must not steal it.
func TestPortTryReceiveCannotStealHandoff(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	p := k.NewPort("handoff")
	var got int
	k.NewThread("rx", PrioTS, 0, func(th *Thread) {
		got = p.Receive(th).(int)
	})
	e.At(ms(5), func() {
		p.Send(42)
		// The receiver has been woken but has not run yet; the message is
		// in its hand, not in the queue.
		if m, ok := p.TryReceive(); ok {
			t.Errorf("TryReceive stole handed-off message %v", m)
		}
	})
	e.Run()
	if got != 42 {
		t.Fatalf("receiver got %d, want 42", got)
	}
}

// Queued messages stay FIFO under interleaved Send and TryReceive from
// interrupt context.
func TestPortMessageFIFOInterleaved(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	p := k.NewPort("q")
	var got []int
	take := func() {
		if m, ok := p.TryReceive(); ok {
			got = append(got, m.(int))
		}
	}
	p.Send(1)
	p.Send(2)
	take() // 1
	p.Send(3)
	take() // 2
	take() // 3
	p.Send(4)
	take() // 4
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBoundedPortRejectsWhenFull(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	b := k.NewBoundedPort("bounded", 2)
	if !b.Send(1) || !b.Send(2) {
		t.Fatal("sends under capacity rejected")
	}
	if b.Send(3) {
		t.Fatal("send over capacity accepted")
	}
	if b.Rejected() != 1 || b.Len() != 2 {
		t.Fatalf("Rejected = %d, Len = %d; want 1, 2", b.Rejected(), b.Len())
	}
	// Draining one slot re-opens the queue.
	if m, ok := b.TryReceive(); !ok || m.(int) != 1 {
		t.Fatalf("TryReceive = %v,%v", m, ok)
	}
	if !b.Send(3) {
		t.Fatal("send after drain rejected")
	}
	_ = e
}

// A blocked receiver consumes a send immediately, so the capacity bound
// only applies to the queue: with a waiter parked on the port, Send
// succeeds even when Len had been at capacity moments before.
func TestBoundedPortWaiterBypassesQueueBound(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	b := k.NewBoundedPort("bounded", 1)
	var got []int
	k.NewThread("rx", PrioTS, 0, func(th *Thread) {
		for i := 0; i < 2; i++ {
			m, ok := b.Receive(th)
			if !ok {
				return
			}
			got = append(got, m.(int))
		}
	})
	e.At(ms(5), func() {
		if !b.Send(1) { // direct handoff to the blocked receiver
			t.Error("send to blocked receiver rejected")
		}
		if !b.Send(2) { // queued: capacity 1, queue empty
			t.Error("send into empty queue rejected")
		}
	})
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestBoundedPortCallFullAndDead(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	b := k.NewBoundedPort("svc", 1)
	b.Send("occupant") // fill the queue; no server is receiving
	var errFull, errDead error
	k.NewThread("client", PrioTS, 0, func(th *Thread) {
		_, errFull = b.Call(th, "req")
		b.Destroy()
		_, errDead = b.Call(th, "req")
	})
	e.Run()
	if !errors.Is(errFull, ErrPortFull) {
		t.Fatalf("call against full queue = %v, want ErrPortFull", errFull)
	}
	if !errors.Is(errDead, ErrPortDead) {
		t.Fatalf("call against destroyed port = %v, want ErrPortDead", errDead)
	}
	if b.Rejected() != 2 { // the plain Send that filled it was accepted
		t.Fatalf("Rejected = %d, want 2", b.Rejected())
	}
}

// Destroying a port with queued RPCs and blocked callers wakes every caller
// with ErrPortDead instead of leaving them blocked forever.
func TestBoundedPortDestroyWakesCallers(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	b := k.NewBoundedPort("svc", 8)
	errs := make([]error, 2)
	doneAt := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.NewThread("client", PrioTS, 0, func(th *Thread) {
			_, errs[i] = b.Call(th, i)
			doneAt[i] = k.Now()
		})
	}
	e.At(ms(30), func() { b.Destroy() })
	e.Run()
	for i := range errs {
		if !errors.Is(errs[i], ErrPortDead) {
			t.Fatalf("caller %d returned %v, want ErrPortDead", i, errs[i])
		}
		if doneAt[i] != ms(30) {
			t.Fatalf("caller %d woke at %v, want at Destroy (30ms)", i, doneAt[i])
		}
	}
}

// ReceiveCall reports destruction via ok=false — the server loop's exit
// signal — and a Receive on an already-destroyed plain port returns a
// DeadName message instead of blocking.
func TestReceiveOnDestroyedPort(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	b := k.NewBoundedPort("svc", 4)
	exited := false
	k.NewThread("server", PrioTS, 0, func(th *Thread) {
		for {
			_, reply, ok := b.ReceiveCall(th)
			if !ok {
				exited = true
				return
			}
			reply(nil)
		}
	})
	e.At(ms(10), func() { b.Destroy() })
	e.Run()
	if !exited {
		t.Fatal("server loop did not exit on Destroy")
	}

	p := k.NewPort("late")
	p.Destroy()
	var got any
	k.NewThread("rx", PrioTS, 0, func(th *Thread) { got = p.Receive(th) })
	e.Run()
	dn, ok := got.(DeadName)
	if !ok || dn.Port != p {
		t.Fatalf("Receive on destroyed port = %v, want DeadName", got)
	}
}

func TestDeadNameNotification(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	client := k.NewPort("client")
	mgr := k.NewPort("manager")
	client.NotifyDeadName(mgr)
	var got any
	var at sim.Time
	k.NewThread("manager", PrioTS, 0, func(th *Thread) {
		got = mgr.Receive(th)
		at = k.Now()
	})
	e.At(ms(25), func() { client.Destroy() })
	e.Run()
	dn, ok := got.(DeadName)
	if !ok || dn.Port != client {
		t.Fatalf("manager received %v, want DeadName{client}", got)
	}
	if at != ms(25) {
		t.Fatalf("notification arrived at %v, want 25ms", at)
	}
	if !client.Dead() {
		t.Fatal("Dead() = false after Destroy")
	}
}
