package rtm

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPortSendReceive(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	p := k.NewPort("msgs")
	var got []int
	k.NewThread("rx", PrioTS, 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Receive(th).(int))
		}
	})
	e.At(ms(10), func() { p.Send(1) }) // interrupt-context send
	e.At(ms(20), func() { p.Send(2); p.Send(3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestPortReceiveBlocksUntilSend(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	p := k.NewPort("p")
	var at sim.Time
	k.NewThread("rx", PrioTS, 0, func(th *Thread) {
		p.Receive(th)
		at = k.Now()
	})
	e.At(ms(77), func() { p.Send("x") })
	e.Run()
	if at != ms(77) {
		t.Fatalf("receive returned at %v, want 77ms", at)
	}
}

func TestPortTryReceive(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	p := k.NewPort("p")
	if _, ok := p.TryReceive(); ok {
		t.Fatal("TryReceive on empty port reported ok")
	}
	p.Send(7)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if v, ok := p.TryReceive(); !ok || v.(int) != 7 {
		t.Fatalf("TryReceive = %v,%v", v, ok)
	}
}

func TestPortRPC(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	svc := k.NewPort("service")
	k.NewThread("server", PrioTS, 0, func(th *Thread) {
		for i := 0; i < 2; i++ {
			req, reply := svc.ReceiveCall(th)
			th.Compute(ms(5))
			reply(req.(int) * 10)
		}
	})
	var answers []int
	k.NewThread("client", PrioTS, 0, func(th *Thread) {
		answers = append(answers, svc.Call(th, 1).(int))
		answers = append(answers, svc.Call(th, 2).(int))
	})
	e.Run()
	if len(answers) != 2 || answers[0] != 10 || answers[1] != 20 {
		t.Fatalf("answers = %v", answers)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	m := k.NewMutex("m", false)
	inside := 0
	maxInside := 0
	worker := func(name string) {
		k.NewThread(name, PrioTS, 0, func(th *Thread) {
			for i := 0; i < 5; i++ {
				m.Lock(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Sleep(ms(3)) // hold across a blocking point
				inside--
				m.Unlock(th)
				th.Sleep(ms(1))
			}
		})
	}
	worker("w1")
	worker("w2")
	worker("w3")
	e.Run()
	if maxInside != 1 {
		t.Fatalf("critical section held by %d threads at once", maxInside)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	m := k.NewMutex("m", false)
	k.NewThread("a", PrioTS, 0, func(th *Thread) { m.Lock(th) })
	k.NewThread("b", PrioTS, 0, func(th *Thread) {
		th.Sleep(ms(1))
		defer func() {
			if recover() == nil {
				t.Error("unlock by non-owner did not panic")
			}
		}()
		m.Unlock(th)
	})
	e.Run()
}

func TestMutexHandoffToHighestPriorityWaiter(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	m := k.NewMutex("m", false)
	var order []string
	k.NewThread("holder", PrioTS, 0, func(th *Thread) {
		m.Lock(th)
		th.Sleep(ms(20))
		m.Unlock(th)
	})
	waiter := func(name string, prio int, startDelay sim.Time) {
		k.NewThread(name, prio, 0, func(th *Thread) {
			th.Sleep(startDelay)
			m.Lock(th)
			order = append(order, name)
			m.Unlock(th)
		})
	}
	waiter("low", PrioTS, ms(1))
	waiter("high", PrioRT, ms(2))
	e.Run()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("lock handoff order = %v, want [high low]", order)
	}
}

// The canonical priority-inversion scenario: without inheritance the
// high-priority thread is delayed by an unrelated medium thread; with
// inheritance the low holder is boosted and the inversion is bounded.
func TestPriorityInversionBoundedByInheritance(t *testing.T) {
	run := func(inherit bool) sim.Time {
		e := sim.NewEngine(1)
		k := NewKernel(e)
		m := k.NewMutex("res", inherit)
		var hiLockAt sim.Time
		k.NewThread("low", PrioTS, 0, func(th *Thread) {
			m.Lock(th)
			th.Compute(ms(10)) // inside critical section
			m.Unlock(th)
		})
		k.NewThread("med", PrioTS+10, 0, func(th *Thread) {
			th.Sleep(ms(2))
			th.Compute(ms(200)) // CPU-bound, unrelated to the lock
		})
		k.NewThread("high", PrioRT, 0, func(th *Thread) {
			th.Sleep(ms(1))
			m.Lock(th)
			hiLockAt = k.Now()
			m.Unlock(th)
		})
		e.Run()
		return hiLockAt
	}
	without := run(false)
	with := run(true)
	if with > ms(15) {
		t.Fatalf("with inheritance, high acquired at %v; inversion not bounded", with)
	}
	if without < ms(200) {
		t.Fatalf("without inheritance, high acquired at %v; expected unbounded inversion behind medium", without)
	}
}

// Transitive inheritance: H blocks on m2 held by M, which blocks on m1
// held by L — the boost must reach L through the chain, or an unrelated
// medium-priority hog starves the whole pile.
func TestPriorityInheritanceTransitive(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	m1 := k.NewMutex("m1", true)
	m2 := k.NewMutex("m2", true)
	var hiLockAt sim.Time
	k.NewThread("low", PrioTS, 0, func(th *Thread) {
		m1.Lock(th)
		th.Compute(ms(10))
		m1.Unlock(th)
	})
	k.NewThread("mid-chain", PrioTS+5, 0, func(th *Thread) {
		th.Sleep(ms(1))
		m2.Lock(th)
		m1.Lock(th) // blocks on low
		m1.Unlock(th)
		m2.Unlock(th)
	})
	k.NewThread("hog", PrioTS+20, 0, func(th *Thread) {
		th.Sleep(ms(3))
		th.Compute(ms(500)) // would starve low and mid-chain
	})
	k.NewThread("high", PrioRT, 0, func(th *Thread) {
		th.Sleep(ms(2))
		m2.Lock(th) // boost must propagate m2->mid-chain->m1->low
		hiLockAt = k.Now()
		m2.Unlock(th)
	})
	e.Run()
	if hiLockAt > ms(20) {
		t.Fatalf("high acquired m2 at %v; transitive inheritance failed", hiLockAt)
	}
}

func TestPeriodicThreadReleases(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var releases []sim.Time
	k.NewPeriodicThread(PeriodicConfig{
		Name: "tick", Priority: PrioRT, Period: ms(100), Offset: ms(50),
	}, func(th *Thread, cycle int) bool {
		releases = append(releases, k.Now())
		return cycle < 3
	})
	e.Run()
	want := []sim.Time{ms(50), ms(150), ms(250), ms(350)}
	if len(releases) != len(want) {
		t.Fatalf("releases = %v", releases)
	}
	for i := range want {
		if releases[i] != want[i] {
			t.Fatalf("release %d at %v, want %v", i, releases[i], want[i])
		}
	}
}

func TestPeriodicDeadlineMissNotification(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	dp := k.NewPort("deadline")
	k.NewPeriodicThread(PeriodicConfig{
		Name: "worker", Priority: PrioRT, Period: ms(100), Deadline: ms(50), DeadlinePort: dp,
	}, func(th *Thread, cycle int) bool {
		if cycle == 1 {
			th.Compute(ms(80)) // overruns the 50ms deadline
		} else {
			th.Compute(ms(10))
		}
		return cycle < 2
	})
	var misses []DeadlineMiss
	k.NewThread("manager", PrioInterrupt, 0, func(th *Thread) {
		misses = append(misses, dp.Receive(th).(DeadlineMiss))
	})
	e.Run()
	if len(misses) != 1 {
		t.Fatalf("misses = %d, want 1", len(misses))
	}
	if misses[0].Cycle != 1 || misses[0].LateBy != ms(30) {
		t.Fatalf("miss = %+v, want cycle 1 late by 30ms", misses[0])
	}
}

func TestPeriodicResynchronizesAfterOverrun(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var releases []sim.Time
	k.NewPeriodicThread(PeriodicConfig{
		Name: "slow", Priority: PrioRT, Period: ms(100),
	}, func(th *Thread, cycle int) bool {
		releases = append(releases, k.Now())
		if cycle == 0 {
			th.Compute(ms(250)) // blows through two periods
		}
		return cycle < 2
	})
	e.Run()
	// Cycle 0 releases at 0 and finishes at 250; next release resyncs to 300.
	if len(releases) != 3 || releases[1] != ms(300) || releases[2] != ms(400) {
		t.Fatalf("releases = %v, want [0 300ms 400ms]", releases)
	}
}

func TestPeriodicQuantumPropagates(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	th := k.NewPeriodicThread(PeriodicConfig{
		Name: "rr", Priority: PrioTS, Quantum: ms(10), Period: ms(100),
	}, func(th *Thread, cycle int) bool { return false })
	e.RunUntil(time.Second)
	if th.quantum != ms(10) {
		t.Fatalf("quantum = %v, want 10ms", th.quantum)
	}
}
