package rtm

import (
	"fmt"

	"repro/internal/sim"
)

// Priority levels. Larger values are more urgent. The bands mirror the
// conventional split between interrupt-level handlers, real-time threads,
// and timesharing activity.
const (
	PrioIdle      = 0
	PrioTS        = 32  // default timesharing level (Unix server, cat, hogs)
	PrioRTLow     = 64  // real-time band
	PrioRT        = 96  // CRAS worker threads
	PrioInterrupt = 127 // I/O-done handling
)

// Kernel is one simulated machine: a CPU scheduler plus the kernel objects
// (threads, ports, mutexes) living on it.
type Kernel struct {
	eng *sim.Engine

	current    *Thread
	burstStart sim.Time
	burstTimer *sim.Timer
	burstSlice sim.Time
	ready      []*Thread // dispatch order list; selection scans for max prio

	// Stats.
	preemptions   int
	dispatches    int
	quantumRounds int
}

// NewKernel returns a kernel on the given engine.
func NewKernel(eng *sim.Engine) *Kernel { return &Kernel{eng: eng} }

// Engine returns the underlying simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// Preemptions returns how many times a running thread was preempted.
func (k *Kernel) Preemptions() int { return k.preemptions }

// ThreadState describes where a thread is in its lifecycle.
type ThreadState int

const (
	StateNew ThreadState = iota
	StateRunnable
	StateBlocked
	StateDone
)

func (s ThreadState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	}
	return "invalid"
}

// Thread is a simulated kernel thread.
type Thread struct {
	k       *Kernel
	proc    *sim.Proc
	name    string
	base    int // assigned priority
	boost   int // inherited priority (0 = none); effective = max(base, boost)
	quantum sim.Time

	state     ThreadState
	remaining sim.Time // CPU still owed for the current Compute
	inReady   bool
	blockedOn *Mutex // the inheriting mutex this thread waits on, if any

	// Stats.
	cpuUsed      sim.Time
	enqueuedAt   sim.Time
	totalWait    sim.Time // time spent runnable but not running
	maxWait      sim.Time
	computeCalls int
}

// NewThread creates and starts a thread. A quantum of zero selects
// fixed-priority run-to-completion scheduling; a positive quantum selects
// round-robin at the thread's priority level. The body starts executing at
// the current virtual time.
func (k *Kernel) NewThread(name string, prio int, quantum sim.Time, body func(t *Thread)) *Thread {
	if prio < PrioIdle || prio > PrioInterrupt {
		panic(fmt.Sprintf("rtm: priority %d out of range", prio))
	}
	t := &Thread{k: k, name: name, base: prio, quantum: quantum, state: StateNew}
	t.proc = k.eng.Spawn(name, func(p *sim.Proc) {
		t.state = StateRunnable
		body(t)
		t.state = StateDone
	})
	return t
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Kernel returns the thread's kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// Proc exposes the underlying sim process.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// State returns the thread's lifecycle state.
func (t *Thread) State() ThreadState { return t.state }

// Priority returns the assigned (base) priority.
func (t *Thread) Priority() int { return t.base }

// EffectivePriority returns the priority used for scheduling, including any
// inherited boost.
func (t *Thread) EffectivePriority() int {
	if t.boost > t.base {
		return t.boost
	}
	return t.base
}

// CPUUsed returns the total CPU time the thread has consumed.
func (t *Thread) CPUUsed() sim.Time { return t.cpuUsed }

// MaxDispatchWait returns the longest time the thread spent runnable before
// being granted the CPU.
func (t *Thread) MaxDispatchWait() sim.Time { return t.maxWait }

// TotalDispatchWait returns the cumulative time spent waiting for the CPU.
func (t *Thread) TotalDispatchWait() sim.Time { return t.totalWait }

// SetPriority changes the base priority and re-evaluates scheduling.
func (t *Thread) SetPriority(prio int) {
	if prio < PrioIdle || prio > PrioInterrupt {
		panic(fmt.Sprintf("rtm: priority %d out of range", prio))
	}
	t.base = prio
	t.k.dispatch()
}

// setBoost installs an inherited priority (0 clears it).
func (t *Thread) setBoost(boost int) {
	t.boost = boost
	t.k.dispatch()
}

// Compute consumes d of CPU time, contending with other threads under the
// kernel's scheduling policy. It returns when the full amount has been
// granted. A non-positive d is a no-op.
func (t *Thread) Compute(d sim.Time) {
	if d <= 0 {
		return
	}
	t.computeCalls++
	t.remaining = d
	t.enqueuedAt = t.k.eng.Now()
	t.k.pushBack(t)
	t.k.dispatch()
	t.proc.Block("cpu:" + t.name)
}

// Sleep suspends the thread for d; it holds no CPU while sleeping.
func (t *Thread) Sleep(d sim.Time) {
	t.state = StateBlocked
	t.proc.Sleep(d)
	t.state = StateRunnable
}

// SleepUntil suspends the thread until absolute virtual time at.
func (t *Thread) SleepUntil(at sim.Time) {
	t.state = StateBlocked
	t.proc.SleepUntil(at)
	t.state = StateRunnable
}

// block parks the thread until woken by kernel objects (ports, mutexes).
func (t *Thread) block(reason string) {
	t.state = StateBlocked
	t.proc.Block(reason)
	t.state = StateRunnable
}

// wake makes a thread blocked via block runnable again.
func (t *Thread) wake() { t.proc.Unblock() }

// ---- scheduler core ----

func (k *Kernel) pushBack(t *Thread) {
	if t.inReady {
		return
	}
	t.inReady = true
	k.ready = append(k.ready, t) //crasvet:allow hotalloc -- ready-queue backing array stabilizes at the thread population's high-water mark
}

func (k *Kernel) pushFront(t *Thread) {
	if t.inReady {
		return
	}
	t.inReady = true
	// Grow by one in place and slide the queue right: reuses the backing
	// array once it has reached the thread population, where the old
	// prepend-by-copy allocated a fresh slice on every call.
	k.ready = append(k.ready, nil) //crasvet:allow hotalloc -- ready-queue backing array stabilizes at the thread population's high-water mark
	copy(k.ready[1:], k.ready)
	k.ready[0] = t
}

// peekBest returns the front-most ready thread with maximal effective
// priority, without removing it.
func (k *Kernel) peekBest() *Thread {
	var best *Thread
	for _, t := range k.ready {
		if best == nil || t.EffectivePriority() > best.EffectivePriority() {
			best = t
		}
	}
	return best
}

func (k *Kernel) popBest() *Thread {
	bestIdx := -1
	for i, t := range k.ready {
		if bestIdx < 0 || t.EffectivePriority() > k.ready[bestIdx].EffectivePriority() {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return nil
	}
	t := k.ready[bestIdx]
	k.ready = append(k.ready[:bestIdx], k.ready[bestIdx+1:]...) //crasvet:allow hotalloc -- slide-down remove within the existing backing array; this append never grows
	t.inReady = false
	return t
}

// dispatch re-evaluates who should hold the CPU. It preempts the current
// thread if a strictly higher-priority thread is ready, then grants the CPU
// if it is free.
func (k *Kernel) dispatch() {
	if k.current != nil {
		best := k.peekBest()
		if best != nil && best.EffectivePriority() > k.current.EffectivePriority() {
			k.preempt()
		}
	}
	if k.current == nil {
		if next := k.popBest(); next != nil {
			k.startBurst(next)
		}
	}
}

// preempt stops the current burst and returns the thread to the head of the
// ready list with its remaining CPU debt.
func (k *Kernel) preempt() {
	t := k.current
	consumed := k.eng.Now() - k.burstStart
	k.burstTimer.Cancel()
	k.burstTimer = nil
	k.current = nil
	t.remaining -= consumed
	t.cpuUsed += consumed
	t.enqueuedAt = k.eng.Now()
	k.preemptions++
	if t.remaining <= 0 {
		// Preempted exactly at completion: finish rather than requeue.
		t.wake()
		return
	}
	k.pushFront(t)
}

func (k *Kernel) startBurst(t *Thread) {
	k.current = t
	k.burstStart = k.eng.Now()
	k.dispatches++
	wait := k.eng.Now() - t.enqueuedAt
	t.totalWait += wait
	if wait > t.maxWait {
		t.maxWait = wait
	}
	slice := t.remaining
	if t.quantum > 0 && t.quantum < slice {
		slice = t.quantum
	}
	k.burstSlice = slice
	k.burstTimer = k.eng.After(slice, k.burstEnd)
}

func (k *Kernel) burstEnd() {
	t := k.current
	consumed := k.eng.Now() - k.burstStart
	k.current = nil
	k.burstTimer = nil
	t.remaining -= consumed
	t.cpuUsed += consumed
	if t.remaining <= 0 {
		t.wake() // Compute returns
	} else {
		// Quantum expired: rotate to the tail of the ready list.
		k.quantumRounds++
		t.enqueuedAt = k.eng.Now()
		k.pushBack(t)
	}
	k.dispatch()
}

// Running returns the thread currently holding the CPU, or nil.
func (k *Kernel) Running() *Thread { return k.current }

// ReadyCount returns the number of threads waiting for the CPU.
func (k *Kernel) ReadyCount() int { return len(k.ready) }
