package rtm

import (
	"errors"

	"repro/internal/sim"
)

// portWaiter is one blocked receiver. Send hands the message directly into
// the waiter's slot before waking it, so delivery order is the order in
// which receivers blocked: a receiver that shows up between the wakeup and
// the woken thread actually running cannot barge in and steal the message.
type portWaiter struct {
	t     *Thread
	msg   any
	given bool
}

// Port is a Mach-style message queue: sends never block, receives block the
// calling thread until a message arrives. Sends are legal from interrupt
// context (plain sim events), which is how device completion reaches the
// I/O-done manager thread.
type Port struct {
	name    string
	msgs    []any
	waiters []*portWaiter
	dead    bool
	notify  *Port // receives DeadName when this port is destroyed
}

// NewPort returns an empty port.
func (k *Kernel) NewPort(name string) *Port { return &Port{name: name} }

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Send enqueues a message, or hands it directly to the longest-waiting
// receiver if one is blocked. Sends to a destroyed port vanish, like writes
// to a Mach dead name.
func (p *Port) Send(msg any) {
	if p.dead {
		return
	}
	if len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		w.msg, w.given = msg, true
		w.t.wake()
		return
	}
	p.msgs = append(p.msgs, msg) //crasvet:allow hotalloc -- port queue backing array stabilizes at the high-water mark of queued messages
}

// receive dequeues the oldest message, blocking while the port is empty.
// ok is false when the port is (or becomes) destroyed.
func (p *Port) receive(t *Thread) (msg any, ok bool) {
	if len(p.msgs) > 0 {
		m := p.msgs[0]
		p.msgs[0] = nil
		p.msgs = p.msgs[1:]
		return m, true
	}
	if p.dead {
		return nil, false
	}
	w := &portWaiter{t: t}
	p.waiters = append(p.waiters, w)
	for !w.given {
		if p.dead {
			return nil, false
		}
		t.block("port:" + p.name)
	}
	return w.msg, true
}

// Receive dequeues the oldest message, blocking the calling thread while the
// port is empty. On a destroyed port it returns a DeadName message instead
// of blocking forever.
func (p *Port) Receive(t *Thread) any {
	m, ok := p.receive(t)
	if !ok {
		return DeadName{Port: p}
	}
	return m
}

// TryReceive dequeues a message without blocking; ok reports availability.
// Only queued messages are visible: a message already handed to a woken
// receiver cannot be stolen from interrupt context.
func (p *Port) TryReceive() (msg any, ok bool) {
	if len(p.msgs) == 0 {
		return nil, false
	}
	m := p.msgs[0]
	p.msgs[0] = nil
	p.msgs = p.msgs[1:]
	return m, true
}

// Len returns the number of queued messages.
func (p *Port) Len() int { return len(p.msgs) }

// DeadName announces that a port was destroyed: delivered to the port
// registered with NotifyDeadName, and returned by Receive/Call on a
// destroyed port so event loops can tell destruction from a real message.
type DeadName struct{ Port *Port }

// NotifyDeadName registers a port to receive one DeadName message when this
// port is destroyed — the analogue of Mach's dead-name notification, which
// is how a server learns that a client's port vanished with the client.
func (p *Port) NotifyDeadName(n *Port) { p.notify = n }

// Dead reports whether Destroy has been called.
func (p *Port) Dead() bool { return p.dead }

// Destroy marks the port dead: queued messages are discarded (the reply
// ports of queued RPCs are destroyed in turn, so their blocked callers wake
// with an error instead of hanging), blocked receivers wake empty-handed,
// future sends vanish, and the NotifyDeadName port — if registered — gets a
// DeadName message.
func (p *Port) Destroy() {
	if p.dead {
		return
	}
	p.dead = true
	msgs := p.msgs
	p.msgs = nil
	for _, m := range msgs {
		if env, ok := m.(rpcEnvelope); ok {
			env.reply.Destroy()
		}
	}
	waiters := p.waiters
	p.waiters = nil
	for _, w := range waiters {
		w.t.wake()
	}
	if n := p.notify; n != nil {
		p.notify = nil
		n.Send(DeadName{Port: p})
	}
}

// rpcEnvelope carries a request and its reply port through a server port.
type rpcEnvelope struct {
	req   any
	reply *Port
}

// Call performs a synchronous RPC: it sends req to the server port together
// with a private reply port and blocks until the reply arrives. This is the
// shape of every client interaction with the Unix server and with CRAS's
// request manager. If the server port is destroyed — before the call or
// while the request is queued — Call returns a DeadName message.
func (p *Port) Call(t *Thread, req any) any {
	if p.dead {
		return DeadName{Port: p}
	}
	reply := &Port{name: p.name + ".reply"}
	p.Send(rpcEnvelope{req: req, reply: reply})
	m, ok := reply.receive(t)
	if !ok {
		return DeadName{Port: p}
	}
	return m
}

// ReceiveCall dequeues a request sent with Call, returning the request and a
// function that delivers the reply. Servers whose port can be destroyed
// should use BoundedPort.ReceiveCall, which reports destruction explicitly;
// here a destroyed port yields a DeadName request with a no-op reply.
func (p *Port) ReceiveCall(t *Thread) (req any, reply func(resp any)) {
	for {
		m, ok := p.receive(t)
		if !ok {
			return DeadName{Port: p}, func(any) {}
		}
		if env, ok := m.(rpcEnvelope); ok {
			return env.req, func(resp any) { env.reply.Send(resp) }
		}
		// Plain messages are not expected on an RPC port; drop them.
	}
}

// Port-level errors reported by bounded ports.
var (
	// ErrPortFull reports a send or call rejected because the port's queue
	// is at capacity.
	ErrPortFull = errors.New("rtm: port queue full")
	// ErrPortDead reports an operation against a destroyed port.
	ErrPortDead = errors.New("rtm: port destroyed")
)

// BoundedPort is a Port with a receive-queue capacity: Send and Call report
// rejection instead of letting a slow or wedged receiver grow the queue
// without limit — the analogue of a Mach port qlimit. It is a distinct type
// (not an option on Port) so that call sites which ignore the rejection
// result are statically detectable.
type BoundedPort struct {
	p        *Port
	cap      int
	rejected int64
}

// NewBoundedPort returns an empty port that holds at most capacity queued
// messages (minimum 1).
func (k *Kernel) NewBoundedPort(name string, capacity int) *BoundedPort {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedPort{p: &Port{name: name}, cap: capacity}
}

// Name returns the port name.
func (b *BoundedPort) Name() string { return b.p.name }

// Cap returns the queue capacity.
func (b *BoundedPort) Cap() int { return b.cap }

// Len returns the number of queued messages.
func (b *BoundedPort) Len() int { return b.p.Len() }

// Rejected returns how many sends and calls were turned away — at capacity,
// or attempted against the destroyed port.
func (b *BoundedPort) Rejected() int64 { return b.rejected }

// Dead reports whether Destroy has been called.
func (b *BoundedPort) Dead() bool { return b.p.dead }

// Destroy destroys the underlying port; see Port.Destroy.
func (b *BoundedPort) Destroy() { b.p.Destroy() }

// NotifyDeadName registers a dead-name notification; see Port.NotifyDeadName.
func (b *BoundedPort) NotifyDeadName(n *Port) { b.p.NotifyDeadName(n) }

// full reports whether a new message would exceed capacity. A blocked
// receiver consumes the message immediately, so the queue bound only
// applies when nobody is waiting.
func (b *BoundedPort) full() bool {
	return len(b.p.waiters) == 0 && len(b.p.msgs) >= b.cap
}

// Send enqueues a message and reports whether it was accepted; false means
// the queue was full or the port destroyed, and the message was dropped.
func (b *BoundedPort) Send(msg any) bool {
	if b.p.dead || b.full() {
		b.rejected++
		return false
	}
	b.p.Send(msg)
	return true
}

// Call performs the synchronous RPC of Port.Call, but reports rejection:
// ErrPortFull when the request queue is at capacity, ErrPortDead when the
// port is destroyed before or while the request waits.
func (b *BoundedPort) Call(t *Thread, req any) (any, error) {
	if b.p.dead {
		b.rejected++
		return nil, ErrPortDead
	}
	if b.full() {
		b.rejected++
		return nil, ErrPortFull
	}
	reply := &Port{name: b.p.name + ".reply"}
	b.p.Send(rpcEnvelope{req: req, reply: reply})
	m, ok := reply.receive(t)
	if !ok {
		return nil, ErrPortDead
	}
	return m, nil
}

// Receive dequeues the oldest message, blocking while the port is empty.
// ok is false when the port is destroyed.
func (b *BoundedPort) Receive(t *Thread) (msg any, ok bool) { return b.p.receive(t) }

// TryReceive dequeues a message without blocking; ok reports availability.
func (b *BoundedPort) TryReceive() (msg any, ok bool) { return b.p.TryReceive() }

// ReceiveCall dequeues a request sent with Call; ok is false when the port
// is destroyed, which is a server loop's signal to exit.
func (b *BoundedPort) ReceiveCall(t *Thread) (req any, reply func(resp any), ok bool) {
	for {
		m, ok := b.p.receive(t)
		if !ok {
			return nil, nil, false
		}
		if env, isEnv := m.(rpcEnvelope); isEnv {
			return env.req, func(resp any) { env.reply.Send(resp) }, true
		}
	}
}

// Mutex is a blocking lock with optional priority inheritance. Without
// inheritance it exhibits the classic unbounded priority inversion that
// Real-Time Mach's integrated protocols were built to avoid. Inheritance
// is transitive: boosting a holder that is itself blocked on another
// inheriting mutex re-boosts that mutex's holder, all the way down the
// chain.
type Mutex struct {
	name    string
	inherit bool
	owner   *Thread
	waiters []*Thread
}

// NewMutex returns an unlocked mutex. inherit enables priority inheritance.
func (k *Kernel) NewMutex(name string, inherit bool) *Mutex {
	return &Mutex{name: name, inherit: inherit}
}

// boostChain raises the holder's priority and follows the blocking chain.
func (m *Mutex) boostChain(prio int) {
	for cur := m; cur != nil && cur.inherit && cur.owner != nil; {
		if prio <= cur.owner.EffectivePriority() {
			return
		}
		owner := cur.owner
		owner.setBoost(prio)
		cur = owner.blockedOn
	}
}

// Lock acquires the mutex, blocking the calling thread while it is held.
func (m *Mutex) Lock(t *Thread) {
	for m.owner != nil {
		m.waiters = append(m.waiters, t)
		if m.inherit {
			m.boostChain(t.EffectivePriority())
		}
		t.blockedOn = m
		t.block("mutex:" + m.name)
		t.blockedOn = nil
	}
	m.owner = t
}

// Unlock releases the mutex and hands it to the highest-priority waiter.
// Only the owner may unlock.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		panic("rtm: unlock of mutex not held by caller")
	}
	m.owner = nil
	if m.inherit {
		t.setBoost(0)
	}
	if len(m.waiters) == 0 {
		return
	}
	// Wake the highest-priority waiter (FIFO among equals).
	best := 0
	for i, w := range m.waiters {
		if w.EffectivePriority() > m.waiters[best].EffectivePriority() {
			best = i
		}
	}
	next := m.waiters[best]
	m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
	next.wake()
}

// Owner returns the current holder, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

// DeadlineMiss is the message a periodic thread posts to its deadline port
// when a cycle overruns.
type DeadlineMiss struct {
	Thread *Thread
	Cycle  int
	LateBy sim.Time
}

// PeriodicConfig describes a periodic thread in the style of Real-Time
// Mach's rt_thread_create: a release every Period starting at Offset, an
// optional relative Deadline, and an optional port notified on misses.
type PeriodicConfig struct {
	Name         string
	Priority     int
	Quantum      sim.Time // 0 = fixed-priority, >0 = round-robin
	Period       sim.Time
	Offset       sim.Time
	Deadline     sim.Time // relative to each release; 0 = none
	DeadlinePort *Port    // receives DeadlineMiss messages; may be nil
}

// NewPeriodicThread starts a thread that runs body once per period. body
// returns false to terminate the thread. If a cycle overruns its period the
// next release is the first period boundary after completion (releases are
// skipped, not queued), matching the paper's request-scheduler behaviour of
// resynchronizing after a missed deadline.
func (k *Kernel) NewPeriodicThread(cfg PeriodicConfig, body func(t *Thread, cycle int) bool) *Thread {
	return k.NewThread(cfg.Name, cfg.Priority, cfg.Quantum, func(t *Thread) {
		release := cfg.Offset
		for cycle := 0; ; cycle++ {
			if k.Now() < release {
				t.SleepUntil(release)
			}
			if !body(t, cycle) {
				return
			}
			if cfg.Deadline > 0 && k.Now() > release+cfg.Deadline {
				if cfg.DeadlinePort != nil {
					cfg.DeadlinePort.Send(DeadlineMiss{Thread: t, Cycle: cycle, LateBy: k.Now() - (release + cfg.Deadline)})
				}
			}
			release += cfg.Period
			for release < k.Now() { // resynchronize after an overrun
				release += cfg.Period
			}
		}
	})
}
