package rtm

import "repro/internal/sim"

// Port is a Mach-style message queue: sends never block, receives block the
// calling thread until a message arrives. Sends are legal from interrupt
// context (plain sim events), which is how device completion reaches the
// I/O-done manager thread.
type Port struct {
	name    string
	msgs    []any
	waiters []*Thread
}

// NewPort returns an empty port.
func (k *Kernel) NewPort(name string) *Port { return &Port{name: name} }

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Send enqueues a message and wakes the longest-waiting receiver, if any.
func (p *Port) Send(msg any) {
	p.msgs = append(p.msgs, msg)
	if len(p.waiters) > 0 {
		t := p.waiters[0]
		p.waiters = p.waiters[1:]
		t.wake()
	}
}

// Receive dequeues the oldest message, blocking the calling thread while the
// port is empty.
func (p *Port) Receive(t *Thread) any {
	for len(p.msgs) == 0 {
		p.waiters = append(p.waiters, t)
		t.block("port:" + p.name)
	}
	m := p.msgs[0]
	p.msgs[0] = nil
	p.msgs = p.msgs[1:]
	return m
}

// TryReceive dequeues a message without blocking; ok reports availability.
func (p *Port) TryReceive() (msg any, ok bool) {
	if len(p.msgs) == 0 {
		return nil, false
	}
	m := p.msgs[0]
	p.msgs[0] = nil
	p.msgs = p.msgs[1:]
	return m, true
}

// Len returns the number of queued messages.
func (p *Port) Len() int { return len(p.msgs) }

// rpcEnvelope carries a request and its reply port through a server port.
type rpcEnvelope struct {
	req   any
	reply *Port
}

// Call performs a synchronous RPC: it sends req to the server port together
// with a private reply port and blocks until the reply arrives. This is the
// shape of every client interaction with the Unix server and with CRAS's
// request manager.
func (p *Port) Call(t *Thread, req any) any {
	reply := &Port{name: p.name + ".reply"}
	p.Send(rpcEnvelope{req: req, reply: reply})
	return reply.Receive(t)
}

// ReceiveCall dequeues a request sent with Call, returning the request and a
// function that delivers the reply.
func (p *Port) ReceiveCall(t *Thread) (req any, reply func(resp any)) {
	for {
		m := p.Receive(t)
		if env, ok := m.(rpcEnvelope); ok {
			return env.req, func(resp any) { env.reply.Send(resp) }
		}
		// Plain messages are not expected on an RPC port; drop them.
	}
}

// Mutex is a blocking lock with optional priority inheritance. Without
// inheritance it exhibits the classic unbounded priority inversion that
// Real-Time Mach's integrated protocols were built to avoid. Inheritance
// is transitive: boosting a holder that is itself blocked on another
// inheriting mutex re-boosts that mutex's holder, all the way down the
// chain.
type Mutex struct {
	name    string
	inherit bool
	owner   *Thread
	waiters []*Thread
}

// NewMutex returns an unlocked mutex. inherit enables priority inheritance.
func (k *Kernel) NewMutex(name string, inherit bool) *Mutex {
	return &Mutex{name: name, inherit: inherit}
}

// boostChain raises the holder's priority and follows the blocking chain.
func (m *Mutex) boostChain(prio int) {
	for cur := m; cur != nil && cur.inherit && cur.owner != nil; {
		if prio <= cur.owner.EffectivePriority() {
			return
		}
		owner := cur.owner
		owner.setBoost(prio)
		cur = owner.blockedOn
	}
}

// Lock acquires the mutex, blocking the calling thread while it is held.
func (m *Mutex) Lock(t *Thread) {
	for m.owner != nil {
		m.waiters = append(m.waiters, t)
		if m.inherit {
			m.boostChain(t.EffectivePriority())
		}
		t.blockedOn = m
		t.block("mutex:" + m.name)
		t.blockedOn = nil
	}
	m.owner = t
}

// Unlock releases the mutex and hands it to the highest-priority waiter.
// Only the owner may unlock.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		panic("rtm: unlock of mutex not held by caller")
	}
	m.owner = nil
	if m.inherit {
		t.setBoost(0)
	}
	if len(m.waiters) == 0 {
		return
	}
	// Wake the highest-priority waiter (FIFO among equals).
	best := 0
	for i, w := range m.waiters {
		if w.EffectivePriority() > m.waiters[best].EffectivePriority() {
			best = i
		}
	}
	next := m.waiters[best]
	m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
	next.wake()
}

// Owner returns the current holder, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

// DeadlineMiss is the message a periodic thread posts to its deadline port
// when a cycle overruns.
type DeadlineMiss struct {
	Thread *Thread
	Cycle  int
	LateBy sim.Time
}

// PeriodicConfig describes a periodic thread in the style of Real-Time
// Mach's rt_thread_create: a release every Period starting at Offset, an
// optional relative Deadline, and an optional port notified on misses.
type PeriodicConfig struct {
	Name         string
	Priority     int
	Quantum      sim.Time // 0 = fixed-priority, >0 = round-robin
	Period       sim.Time
	Offset       sim.Time
	Deadline     sim.Time // relative to each release; 0 = none
	DeadlinePort *Port    // receives DeadlineMiss messages; may be nil
}

// NewPeriodicThread starts a thread that runs body once per period. body
// returns false to terminate the thread. If a cycle overruns its period the
// next release is the first period boundary after completion (releases are
// skipped, not queued), matching the paper's request-scheduler behaviour of
// resynchronizing after a missed deadline.
func (k *Kernel) NewPeriodicThread(cfg PeriodicConfig, body func(t *Thread, cycle int) bool) *Thread {
	return k.NewThread(cfg.Name, cfg.Priority, cfg.Quantum, func(t *Thread) {
		release := cfg.Offset
		for cycle := 0; ; cycle++ {
			if k.Now() < release {
				t.SleepUntil(release)
			}
			if !body(t, cycle) {
				return
			}
			if cfg.Deadline > 0 && k.Now() > release+cfg.Deadline {
				if cfg.DeadlinePort != nil {
					cfg.DeadlinePort.Send(DeadlineMiss{Thread: t, Cycle: cycle, LateBy: k.Now() - (release + cfg.Deadline)})
				}
			}
			release += cfg.Period
			for release < k.Now() { // resynchronize after an overrun
				release += cfg.Period
			}
		}
	})
}
