package rtm

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

func TestSingleThreadComputeTakesExactTime(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var done sim.Time
	k.NewThread("solo", PrioTS, 0, func(th *Thread) {
		th.Compute(ms(42))
		done = k.Now()
	})
	e.Run()
	if done != ms(42) {
		t.Fatalf("compute finished at %v, want 42ms", done)
	}
}

func TestComputeZeroIsNoop(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var done sim.Time
	k.NewThread("z", PrioTS, 0, func(th *Thread) {
		th.Compute(0)
		th.Compute(-ms(5))
		done = k.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("zero compute advanced time to %v", done)
	}
}

func TestFixedPriorityPreemption(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var loDone, hiDone sim.Time
	k.NewThread("lo", PrioTS, 0, func(th *Thread) {
		th.Compute(ms(100))
		loDone = k.Now()
	})
	k.NewThread("hi", PrioRT, 0, func(th *Thread) {
		th.Sleep(ms(10))
		th.Compute(ms(20))
		hiDone = k.Now()
	})
	e.Run()
	if hiDone != ms(30) {
		t.Fatalf("hi finished at %v, want 30ms (instant preemption)", hiDone)
	}
	if loDone != ms(120) {
		t.Fatalf("lo finished at %v, want 120ms (100 work + 20 preempted)", loDone)
	}
	if k.Preemptions() != 1 {
		t.Fatalf("preemptions = %d, want 1", k.Preemptions())
	}
}

func TestEqualPriorityFIFORunToCompletion(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var first, second sim.Time
	k.NewThread("a", PrioTS, 0, func(th *Thread) {
		th.Compute(ms(30))
		first = k.Now()
	})
	k.NewThread("b", PrioTS, 0, func(th *Thread) {
		th.Compute(ms(30))
		second = k.Now()
	})
	e.Run()
	if first != ms(30) || second != ms(60) {
		t.Fatalf("a=%v b=%v, want 30ms/60ms (no time slicing at quantum 0)", first, second)
	}
}

func TestRoundRobinInterleaves(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var first, second sim.Time
	k.NewThread("a", PrioTS, ms(10), func(th *Thread) {
		th.Compute(ms(30))
		first = k.Now()
	})
	k.NewThread("b", PrioTS, ms(10), func(th *Thread) {
		th.Compute(ms(30))
		second = k.Now()
	})
	e.Run()
	// a: [0,10) [20,30) [40,50); b: [10,20) [30,40) [50,60)
	if first != ms(50) || second != ms(60) {
		t.Fatalf("a=%v b=%v, want 50ms/60ms under RR", first, second)
	}
	if k.quantumRounds == 0 {
		t.Fatal("no quantum expirations recorded")
	}
}

func TestRoundRobinDispatchLatencyExceedsFixedPriority(t *testing.T) {
	run := func(quantum sim.Time, prio int) sim.Time {
		e := sim.NewEngine(1)
		k := NewKernel(e)
		for i := 0; i < 3; i++ {
			k.NewThread("hog", PrioTS, quantum, func(th *Thread) {
				for j := 0; j < 100; j++ {
					th.Compute(ms(20))
				}
			})
		}
		var victim *Thread
		victim = k.NewThread("rt", prio, quantum, func(th *Thread) {
			for j := 0; j < 20; j++ {
				th.Sleep(ms(50))
				th.Compute(ms(1))
			}
		})
		e.RunUntil(sim.Time(3) * time.Second)
		return victim.MaxDispatchWait()
	}
	rr := run(ms(10), PrioTS)
	fp := run(0, PrioRT)
	if fp != 0 {
		t.Fatalf("fixed-priority RT thread waited %v for the CPU, want 0", fp)
	}
	if rr < ms(10) {
		t.Fatalf("round-robin victim max wait %v, want >= one quantum", rr)
	}
}

func TestPreemptedThreadResumesBeforeQueuedEquals(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var order []string
	k.NewThread("victim", PrioTS, 0, func(th *Thread) {
		th.Compute(ms(40))
		order = append(order, "victim")
	})
	k.NewThread("late-equal", PrioTS, 0, func(th *Thread) {
		th.Sleep(ms(5))
		th.Compute(ms(10))
		order = append(order, "late-equal")
	})
	k.NewThread("hi", PrioRT, 0, func(th *Thread) {
		th.Sleep(ms(10))
		th.Compute(ms(10))
		order = append(order, "hi")
	})
	e.Run()
	if len(order) != 3 || order[0] != "hi" || order[1] != "victim" || order[2] != "late-equal" {
		t.Fatalf("completion order = %v, want [hi victim late-equal]", order)
	}
}

func TestCPUAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	lo := k.NewThread("lo", PrioTS, 0, func(th *Thread) { th.Compute(ms(50)) })
	hi := k.NewThread("hi", PrioRT, 0, func(th *Thread) {
		th.Sleep(ms(10))
		th.Compute(ms(10))
	})
	e.Run()
	if lo.CPUUsed() != ms(50) {
		t.Fatalf("lo CPUUsed = %v, want 50ms", lo.CPUUsed())
	}
	if hi.CPUUsed() != ms(10) {
		t.Fatalf("hi CPUUsed = %v, want 10ms", hi.CPUUsed())
	}
}

func TestSetPriorityTriggersPreemption(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	var order []string
	low := k.NewThread("low", PrioTS, 0, func(th *Thread) {
		th.Compute(ms(100))
		order = append(order, "low")
	})
	k.NewThread("mid", PrioTS+1, 0, func(th *Thread) {
		th.Sleep(ms(10))
		th.Compute(ms(10))
		order = append(order, "mid")
	})
	e.At(ms(5), func() { low.SetPriority(PrioRT) })
	e.Run()
	if order[0] != "low" {
		t.Fatalf("order = %v; raised-priority thread should finish first", order)
	}
}

func TestRunningAndReadyCount(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	k.NewThread("a", PrioTS, 0, func(th *Thread) { th.Compute(ms(20)) })
	k.NewThread("b", PrioTS, 0, func(th *Thread) { th.Compute(ms(20)) })
	e.At(ms(5), func() {
		if k.Running() == nil || k.Running().Name() != "a" {
			t.Error("thread a should be running at 5ms")
		}
		if k.ReadyCount() != 1 {
			t.Errorf("ReadyCount = %d, want 1", k.ReadyCount())
		}
	})
	e.Run()
	if k.Running() != nil {
		t.Fatal("CPU should be idle at end")
	}
}

func TestInvalidPriorityPanics(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range priority did not panic")
		}
	}()
	k.NewThread("bad", 500, 0, func(th *Thread) {})
}

func TestThreadStateTransitions(t *testing.T) {
	e := sim.NewEngine(1)
	k := NewKernel(e)
	th := k.NewThread("s", PrioTS, 0, func(th *Thread) {
		th.Sleep(ms(20))
	})
	if th.State() != StateNew {
		t.Fatalf("state before start = %v, want new", th.State())
	}
	e.At(ms(10), func() {
		if th.State() != StateBlocked {
			t.Errorf("state during sleep = %v, want blocked", th.State())
		}
	})
	e.Run()
	if th.State() != StateDone {
		t.Fatalf("state at end = %v, want done", th.State())
	}
	if StateRunnable.String() != "runnable" || ThreadState(99).String() != "invalid" {
		t.Fatal("ThreadState.String misbehaves")
	}
}
