package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rtm"
)

// TestAccessorsAndHelpers exercises the session and cluster accessors and
// the error-classification helpers against a one-node cluster.
func TestAccessorsAndHelpers(t *testing.T) {
	movies := testMovies(1, 2*time.Second)
	var c *Cluster
	var s *Session
	c = New(testConfig(1, 120, movies), func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			var err error
			s, err = c.Open(th, "/m00", core.OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if err := s.Start(th); err != nil {
				t.Errorf("start: %v", err)
			}
			th.Sleep(time.Second)
			if s.LogicalNow() < 0 {
				t.Errorf("LogicalNow = %v before stop", s.LogicalNow())
			}
			if err := s.Stop(th); err != nil {
				t.Errorf("stop: %v", err)
			}
			if err := s.Close(th); err != nil {
				t.Errorf("close: %v", err)
			}
			if err := s.Close(th); err != nil {
				t.Errorf("second close not idempotent: %v", err)
			}
		})
	})
	c.Run(3 * time.Second)
	if c.Err() != nil {
		t.Fatalf("Err = %v", c.Err())
	}
	if c.Engine() == nil || c.Kernel() == nil || c.Machine(0) == nil {
		t.Fatalf("nil accessor on a booted cluster")
	}
	if s.Path() != "/m00" || s.NodeName() != "n0" {
		t.Errorf("Path/NodeName = %q/%q", s.Path(), s.NodeName())
	}
	if s.Orphaned() || s.Stranded() != nil || s.Handle() == nil {
		t.Errorf("fresh session reports orphaned=%v stranded=%v", s.Orphaned(), s.Stranded())
	}
	if effectiveRate(0) != 1 || effectiveRate(0.5) != 0.5 {
		t.Errorf("effectiveRate broken")
	}
	if hint, ok := capacityError(core.ErrDraining); !ok || hint != 0 {
		t.Errorf("ErrDraining not classified as capacity")
	}
	if hint, ok := capacityError(&core.OverloadError{RetryAfter: time.Second}); !ok || hint != time.Second {
		t.Errorf("OverloadError hint = %v, %v", hint, ok)
	}
	if _, ok := capacityError(errors.New("bad path")); ok {
		t.Errorf("generic error classified as capacity")
	}
	if hint, ok := capacityError(&FailoverError{RetryAfter: 2 * time.Second}); !ok || hint != 2*time.Second {
		t.Errorf("FailoverError hint = %v, %v", hint, ok)
	}
}

// TestBootErrorSurfaces: a node whose machine cannot boot (parity volume
// over two disks) never reports ready; Err returns the setup error and Run
// panics with it rather than letting the caller drive a half-built
// cluster.
func TestBootErrorSurfaces(t *testing.T) {
	cfg := testConfig(2, 121, testMovies(1, time.Second))
	cfg.Node.Disks = 2
	cfg.Node.Parity = true // parity needs >= 3 members: boot fails
	c := New(cfg, func(c *Cluster) {
		t.Errorf("ready invoked on a cluster with a failed node")
	})
	if c.Err() == nil {
		t.Fatalf("Err = nil for an unbootable node")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Run did not panic on the boot error")
		}
	}()
	c.Run(time.Second)
}

// TestFailoverSkipsFinishedAndClosed: when a node dies, closed sessions
// are not resurrected, and a session whose viewer already consumed the
// whole title is left alone (nothing to re-establish) — neither counts as
// a failover.
func TestFailoverSkipsFinishedAndClosed(t *testing.T) {
	movies := testMovies(1, 3*time.Second)
	var c *Cluster
	var watched, dropped *Session
	played := 0
	c = New(testConfig(2, 122, movies), func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			var err error
			watched, err = c.Open(th, "/m00", core.OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			dropped, err = c.Open(th, "/m00", core.OpenOptions{})
			if err != nil {
				t.Errorf("open second: %v", err)
				return
			}
			if dropped.NodeID() != watched.NodeID() {
				t.Errorf("placement split a hot title across nodes")
			}
			dropped.Close(th)
			watched.Start(th)
			info := movies[0].Info
			for i := range info.Chunks {
				ch := info.Chunks[i]
				for {
					due := watched.ClockStartsAt(ch.Timestamp)
					now := c.k.Now()
					if due >= 0 && now < due {
						th.Sleep(due - now)
						continue
					}
					if _, ok := watched.Get(ch.Timestamp); ok {
						played++
						break
					}
					th.Sleep(5 * time.Millisecond)
				}
			}
			// The title is fully consumed but the session stays open; now
			// kill its node.
			c.NodeCRAS(watched.NodeID()).Shutdown()
		})
	})
	c.Run(12 * time.Second)
	if played != len(movies[0].Info.Chunks) {
		t.Fatalf("played %d of %d chunks", played, len(movies[0].Info.Chunks))
	}
	st := c.Stats()
	if st.NodesDead != 1 {
		t.Fatalf("NodesDead = %d, want 1", st.NodesDead)
	}
	if st.Failovers != 0 || st.FailoversStranded != 0 {
		t.Errorf("failover resurrected a finished or closed session: %+v", st)
	}
	if watched.Orphaned() {
		t.Errorf("finished session left orphaned")
	}
	if watched.Gen() != 0 {
		t.Errorf("finished session was re-placed (gen %d)", watched.Gen())
	}
}

// TestDrainMigrationFailure: draining a node whose peers cannot admit the
// displaced streams (even at reduced rate) records the failures, strands
// the sessions with an honest verdict, and still rolls the node down —
// the drain-deadline eviction is the backstop.
func TestDrainMigrationFailure(t *testing.T) {
	movies := testMovies(6, 6*time.Second)
	cfg := testConfig(2, 123, movies)
	cfg.Node.CRAS.BufferBudget = 600 << 10 // 3 plain ~200KB streams per node
	cfg.Node.CRAS.CacheBudget = 0
	cfg.Node.CRAS.BatchWindow = 0
	cfg.Node.CRAS.PrefixBudget = 0
	var c *Cluster
	var sessions []*Session
	var drainErr error
	drainDone := false
	c = New(cfg, func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			// Fill both nodes with unstarted sessions: 6 distinct titles, 3
			// per node by capacity.
			for i := range movies {
				s, err := c.Open(th, movies[i].Path, core.OpenOptions{})
				if err != nil {
					t.Errorf("open %d: %v", i, err)
					return
				}
				sessions = append(sessions, s)
			}
			drainErr = c.DrainNode(th, 0, 5*time.Second)
			drainDone = true
		})
	})
	drive(c, func() bool { return drainDone }, 30*time.Second)
	if c.NodeSessions(0) == 0 {
		t.Skip("capacity routing left node 0 empty; nothing to exercise")
	}
	if drainErr != nil {
		t.Errorf("drain: %v (deadline eviction should still stop the node)", drainErr)
	}
	if !c.NodeCRAS(0).Stopped() {
		t.Errorf("drained node still running")
	}
	st := c.Stats()
	if st.MigrationsFailed == 0 {
		t.Errorf("MigrationsFailed = 0 draining onto a full peer")
	}
	if st.Migrations != 0 {
		t.Errorf("Migrations = %d, want 0: the peer had no room", st.Migrations)
	}
	strandedSeen := false
	for _, s := range sessions {
		if s.Stranded() != nil {
			strandedSeen = true
			if s.Stranded().RetryAfter <= 0 {
				t.Errorf("stranded verdict quotes RetryAfter %v", s.Stranded().RetryAfter)
			}
		}
	}
	if !strandedSeen {
		t.Errorf("no session carries a stranded verdict after failed migrations")
	}
}

// TestDrainRaceDestinationDies: a second node dying mid-drain — after the
// replacement stream was opened on it but before the handover swap — must
// not strand the migrating viewer on a dead handle. The swap notices the
// death and re-places the stream on the remaining survivor, still with zero
// frames lost.
func TestDrainRaceDestinationDies(t *testing.T) {
	movies := testMovies(1, 6*time.Second)
	cfg := testConfig(3, 125, movies)
	var c *Cluster
	var v *viewer
	var drainErr error
	drainDone := false
	victim, dest := -1, -1
	c = New(cfg, func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			s, err := c.Open(th, "/m00", core.OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			v = &viewer{sess: s, info: c.Movie("/m00")}
			c.k.NewThread("viewer", rtm.PrioRTLow, 0, func(vt *rtm.Thread) { v.play(c, vt) })
			victim = s.NodeID()
			th.SleepUntil(c.k.Now() + 2500*time.Millisecond)
			c.k.NewThread("killer", rtm.PrioRTLow, 0, func(kt *rtm.Thread) {
				// Fire inside the drain's anchor wait: the replacement is
				// open on the migration destination but not yet swapped in.
				kt.Sleep(time.Second)
				if err := c.DrainNode(kt, victim, time.Second); err == nil {
					t.Error("draining an already-draining node succeeded")
				}
				d := c.ringOwner("/m00", c.nodes[victim])
				if d == nil {
					t.Error("no migration destination to kill")
					return
				}
				dest = d.id
				c.NodeCRAS(dest).Shutdown()
			})
			drainErr = c.DrainNode(th, victim, 10*time.Second)
			drainDone = true
		})
	})
	drive(c, func() bool { return drainDone && v != nil && v.done }, 40*time.Second)
	if !drainDone {
		t.Fatal("DrainNode never returned")
	}
	if drainErr != nil {
		t.Fatalf("DrainNode: %v", drainErr)
	}
	if dest < 0 {
		t.Fatal("mid-drain kill never fired")
	}
	if !c.NodeCRAS(victim).Stopped() {
		t.Errorf("drained node still running")
	}
	st := c.Stats()
	if st.Migrations != 1 || st.MigrationsFailed != 0 {
		t.Errorf("Migrations = %d, MigrationsFailed = %d; want 1, 0 (re-place on the survivor)",
			st.Migrations, st.MigrationsFailed)
	}
	if c.NodeHealthOf(dest) != NodeDead {
		t.Errorf("killed destination %d is %v, want dead", dest, c.NodeHealthOf(dest))
	}
	if st.Failovers != 0 {
		t.Errorf("Failovers = %d; the dead destination held no registered session", st.Failovers)
	}
	if !v.done {
		t.Fatal("viewer never finished")
	}
	if v.lost != 0 || v.obtained != len(v.info.Chunks) {
		t.Errorf("viewer obtained %d, lost %d of %d frames across the raced drain",
			v.obtained, v.lost, len(v.info.Chunks))
	}
	if got := v.sess.NodeID(); got == victim || got == dest {
		t.Errorf("viewer ended on node %d (victim %d, dead destination %d)", got, victim, dest)
	}
	if v.sess.Gen() != 1 {
		t.Errorf("Gen = %d, want 1 (one handover)", v.sess.Gen())
	}
}

// TestWhiteboxEdges pins the defensive corners the black-box suite cannot
// reach: the single-node default, idempotent death pronouncements, the
// no-op health transition, the heartbeat catching a stopped server that the
// dead-name notification missed, and the nil guards on the registry.
func TestWhiteboxEdges(t *testing.T) {
	movies := testMovies(1, time.Second)
	cfg := testConfig(0, 126, movies) // Nodes <= 0 defaults to a 1-node cluster
	c := New(cfg, func(c *Cluster) {})
	if c.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want default 1", c.Nodes())
	}
	c.Run(time.Second)
	n := c.nodes[0]
	fired := false
	c.OnNodeHealth = func(NodeHealthEvent) { fired = true }
	c.setHealth(n, NodeHealthy, "noop")
	if fired {
		t.Errorf("no-op health transition fired an event")
	}
	// Pronouncing a dead node dead again is idempotent: the dead-name
	// notification and the heartbeat ladder race to the same verdict.
	c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
		c.NodeCRAS(0).Shutdown()
	})
	c.Run(time.Second)
	c.nodeDead(n, "second verdict")
	if got := c.Stats().NodesDead; got != 1 {
		t.Errorf("NodesDead = %d after a double pronouncement, want 1", got)
	}
	// The heartbeat also catches a stopped server whose dead-name
	// notification it lost the race to observe.
	n.health = NodeSuspect
	c.heartbeatStep()
	c.applyTransitions()
	if n.health != NodeDead {
		t.Errorf("heartbeat left a stopped server %v, want dead", n.health)
	}
	// Registry guards: an empty ring has no owner, and deregistering a
	// session that was never placed is harmless.
	empty := &Cluster{}
	if empty.ringOwner("/x", nil) != nil {
		t.Errorf("empty ring produced an owner")
	}
	c.deregister(&Session{c: c, path: "/m00"})
	// ignoreDown swallows only the server-death race, nothing else.
	s := &Session{}
	if s.ignoreDown(core.ErrServerDown) != nil {
		t.Errorf("ErrServerDown not swallowed")
	}
	if s.ignoreDown(errors.New("real failure")) == nil {
		t.Errorf("a real failure was swallowed")
	}
}

// TestOpenUnknownTitle: the front door rejects a path no node stores
// without burning an admission attempt.
func TestOpenUnknownTitle(t *testing.T) {
	movies := testMovies(1, time.Second)
	var openErr error
	c := New(testConfig(1, 124, movies), func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			_, openErr = c.Open(th, "/missing", core.OpenOptions{})
		})
	})
	c.Run(2 * time.Second)
	if openErr == nil {
		t.Fatalf("open of an unknown title succeeded")
	}
	if errors.Is(openErr, ErrFailover) {
		t.Errorf("unknown title classified as saturation: %v", openErr)
	}
	if c.Stats().Opens != 1 {
		t.Errorf("Opens = %d, want 1", c.Stats().Opens)
	}
}
