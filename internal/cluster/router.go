package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// ErrFailover is the sentinel every *FailoverError unwraps to.
var ErrFailover = errors.New("cluster: no node can serve the viewer")

// FailoverError reports that the cluster could not place a viewer: every
// usable node refused. RetryAfter is an honest wait — the largest hint any
// refusing node supplied (an overloaded control plane quotes its window;
// admission refusals fall back to the configured default), after which
// capacity has a real chance of having freed.
type FailoverError struct {
	Node       string // the node whose loss or drain displaced the viewer ("" for a fresh open)
	RetryAfter sim.Time
	Reason     string
}

func (e *FailoverError) Error() string {
	if e.Node == "" {
		return fmt.Sprintf("cluster: open refused (retry after %v): %s", e.RetryAfter, e.Reason)
	}
	return fmt.Sprintf("cluster: failover from %s refused (retry after %v): %s", e.Node, e.RetryAfter, e.Reason)
}

func (e *FailoverError) Unwrap() error { return ErrFailover }

// ringEntry is one virtual node on the consistent-hash ring.
type ringEntry struct {
	hash uint64
	n    *node
}

func (c *Cluster) buildRing() {
	c.ring = c.ring[:0]
	for _, n := range c.nodes {
		for v := 0; v < c.cfg.VirtualNodes; v++ {
			c.ring = append(c.ring, ringEntry{hash: fnv64a(fmt.Sprintf("%s#%d", n.name, v)), n: n})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool {
		if c.ring[i].hash != c.ring[j].hash {
			return c.ring[i].hash < c.ring[j].hash
		}
		return c.ring[i].n.id < c.ring[j].n.id
	})
}

// fnv64a hashes ring positions and path keys: FNV-1a with an avalanche
// finalizer. Raw FNV clusters short near-identical keys ("/m00", "/m01")
// into adjacent ring arcs; the finalizer spreads them uniformly.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// usable reports whether the router may hand new work to n. Suspect nodes
// keep their current viewers but take no new ones; draining and dead nodes
// take nothing.
func (c *Cluster) usable(n, excl *node) bool {
	return n != excl && n.health == NodeHealthy && !n.draining && !n.m.CRAS.Stopped()
}

// ringOwner returns the cold-tail owner for path: the first usable node at
// or clockwise of the path's hash.
func (c *Cluster) ringOwner(path string, excl *node) *node {
	if len(c.ring) == 0 {
		return nil
	}
	h := fnv64a(path)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	for i := 0; i < len(c.ring); i++ {
		e := c.ring[(start+i)%len(c.ring)]
		if c.usable(e.n, excl) {
			return e.n
		}
	}
	return nil
}

// routeKind classifies which rung of the placement ladder produced a
// candidate, for the stats.
type routeKind int

const (
	routePlacement routeKind = iota // node already serving the title
	routeRing                       // consistent-hash owner
	routeSpill                      // any other healthy node
)

type candidate struct {
	n    *node
	kind routeKind
}

// route builds the candidate ladder for path, excluding excl (the node a
// failover or drain is moving viewers off):
//
//  1. Placement: healthy nodes already serving the title, most sessions
//     first — a hot title lands where an interval-cache or multicast
//     leader already plays, so the open rides RAM (a cache or fan-out
//     attach) before any node spends disk bandwidth on it. This is the
//     cluster-wide admission order: shared-capacity attach on a peer is
//     tried before any node's disk capacity.
//  2. The consistent-hash ring owner: the cold tail spreads by path hash,
//     walking past unhealthy and draining nodes.
//  3. Every remaining healthy node, least-loaded first (spill).
func (c *Cluster) route(path string, excl *node) []candidate {
	out := make([]candidate, 0, len(c.nodes))
	seen := make(map[int]bool, len(c.nodes))
	var serving []*node
	for _, n := range c.nodes {
		if c.usable(n, excl) && n.serving[path] > 0 {
			serving = append(serving, n)
		}
	}
	sort.SliceStable(serving, func(i, j int) bool {
		if serving[i].serving[path] != serving[j].serving[path] {
			return serving[i].serving[path] > serving[j].serving[path]
		}
		return serving[i].id < serving[j].id
	})
	for _, n := range serving {
		out = append(out, candidate{n: n, kind: routePlacement})
		seen[n.id] = true
	}
	if n := c.ringOwner(path, excl); n != nil && !seen[n.id] {
		out = append(out, candidate{n: n, kind: routeRing})
		seen[n.id] = true
	}
	var rest []*node
	for _, n := range c.nodes {
		if c.usable(n, excl) && !seen[n.id] {
			rest = append(rest, n)
		}
	}
	sort.SliceStable(rest, func(i, j int) bool {
		if len(rest[i].sessions) != len(rest[j].sessions) {
			return len(rest[i].sessions) < len(rest[j].sessions)
		}
		return rest[i].id < rest[j].id
	})
	for _, n := range rest {
		out = append(out, candidate{n: n, kind: routeSpill})
	}
	return out
}

// capacityError classifies err as a capacity refusal (admission, control
// overload, drain) and extracts any RetryAfter hint the node supplied.
func capacityError(err error) (hint sim.Time, capacity bool) {
	var oe *core.OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	var ae *core.AdmissionError
	if errors.As(err, &ae) {
		return 0, true
	}
	if errors.Is(err, core.ErrDraining) {
		return 0, true
	}
	var fe *FailoverError
	if errors.As(err, &fe) {
		return fe.RetryAfter, true
	}
	return 0, false
}

// openOn walks the candidate ladder for path and opens on the first node
// that admits. Capacity refusals move on to the next candidate — admission
// is cluster-wide, a viewer is only turned away once every usable node has
// refused — and the refusal comes back as a typed *FailoverError carrying
// the best RetryAfter hint collected along the way. A node that turns out
// to be down mid-open is skipped (the health ladder will catch up to it).
func (c *Cluster) openOn(th *rtm.Thread, path string, info *media.StreamInfo, opts core.OpenOptions, excl *node) (*core.Handle, *node, error) {
	cands := c.route(path, excl)
	if len(cands) == 0 {
		return nil, nil, &FailoverError{RetryAfter: c.cfg.RetryAfter, Reason: "no usable node"}
	}
	var hint sim.Time
	var lastErr error
	for _, cand := range cands {
		h, err := cand.n.m.CRAS.Open(th, info, path, opts)
		if err == nil {
			switch cand.kind {
			case routePlacement:
				c.stats.PlacementOpens++
			case routeRing:
				c.stats.RingOpens++
			case routeSpill:
				c.stats.SpillOpens++
			}
			return h, cand.n, nil
		}
		if errors.Is(err, core.ErrServerDown) {
			continue // the ladder hasn't caught up with this death yet
		}
		if h, capacity := capacityError(err); capacity {
			if h > hint {
				hint = h
			}
			lastErr = err
			continue
		}
		return nil, nil, err // not a capacity problem: bad path, bad rate...
	}
	if hint <= 0 {
		hint = c.cfg.RetryAfter
	}
	reason := "every usable node refused admission"
	if lastErr != nil {
		reason = lastErr.Error()
	}
	return nil, nil, &FailoverError{RetryAfter: hint, Reason: reason}
}

// Open routes one viewer open through the placement ladder and wraps the
// admitted session for failover tracking. opts.At carries an initial
// position (a resume); opts.Rate a playback rate. On saturation the error
// is a typed *FailoverError whose RetryAfter is honest.
func (c *Cluster) Open(th *rtm.Thread, path string, opts core.OpenOptions) (*Session, error) {
	c.stats.Opens++
	info := c.movies[path]
	if info == nil {
		c.stats.OpenRejects++
		return nil, fmt.Errorf("cluster: open %s: no such title", path)
	}
	h, n, err := c.openOn(th, path, info, opts, nil)
	if err != nil {
		c.stats.OpenRejects++
		return nil, err
	}
	s := &Session{c: c, path: path, info: info, rate: opts.Rate, dr: opts.DeliveredRate, posT: opts.At, node: n, h: h}
	n.sessions = append(n.sessions, s)
	n.serving[path]++
	return s, nil
}
