package cluster

import (
	"errors"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// Session is a viewer's connection to the cluster: a core.Handle plus the
// failover state that lets the front door move it between nodes. The
// viewer reads through Get exactly as against a single server; across a
// failover or migration the previous handle's buffer stays readable, so
// the runway it holds bridges the gap while the replacement warms up.
type Session struct {
	c    *Cluster
	path string
	info *media.StreamInfo
	rate float64 // requested playback (clock) rate; 0 means 1.0
	dr   float64 // delivered frame fraction; thinned on degraded re-admits, 0 means 1.0

	node *node
	h    *core.Handle
	prev *core.Handle // previous incarnation, kept for its readable buffer
	gen  int          // bumped on every adopt/migrate; viewers recompute deadlines on change

	posT sim.Time // next timestamp the viewer has not consumed (resume point)

	started  bool
	closed   bool
	orphaned bool           // serving node died; failover in flight
	refused  bool           // failover retries exhausted; the cluster gave up
	stranded *FailoverError // last saturation verdict, nil when placed
	reduced  int            // times re-admitted at reduced rate
}

// Path returns the title the session plays.
func (s *Session) Path() string { return s.path }

// Info returns the title's stream metadata.
func (s *Session) Info() *media.StreamInfo { return s.info }

// NodeName returns the name of the node currently serving the session.
func (s *Session) NodeName() string { return s.node.name }

// NodeID returns the id of the node currently serving the session.
func (s *Session) NodeID() int { return s.node.id }

// Gen counts re-placements: it bumps every time the session is adopted by
// a new node, so a viewer that cached pacing state can detect the move.
func (s *Session) Gen() int { return s.gen }

// Orphaned reports a failover in flight: the serving node died and no
// replacement has been placed yet.
func (s *Session) Orphaned() bool { return s.orphaned }

// Refused reports that the cluster exhausted its failover retries.
func (s *Session) Refused() bool { return s.refused }

// Stranded returns the saturation verdict a displaced viewer is currently
// waiting out (nil when the session is placed): a typed *FailoverError
// whose RetryAfter says when capacity has a real chance of having freed.
func (s *Session) Stranded() *FailoverError { return s.stranded }

// Reduced returns how many times the session was re-admitted at reduced
// delivered rate.
func (s *Session) Reduced() int { return s.reduced }

// Rate returns the session's effective delivered rate: the playback clock
// rate scaled by the delivered frame fraction. A degraded re-admission
// thins the fraction, never the clock — the viewer's timeline keeps full
// pace and frames are skipped instead.
func (s *Session) Rate() float64 { return effectiveRate(s.rate) * s.deliveredRate() }

// DeliveredRate returns the fraction of frames the serving node delivers
// (1.0 until a degraded re-admission thins it).
func (s *Session) DeliveredRate() float64 { return s.deliveredRate() }

func (s *Session) deliveredRate() float64 {
	if s.dr <= 0 || s.dr > 1 {
		return 1
	}
	return s.dr
}

// Handle exposes the current core handle (measurements; may change across
// failovers).
func (s *Session) Handle() *core.Handle { return s.h }

// CacheBacked reports whether the current incarnation rides the interval
// cache.
func (s *Session) CacheBacked() bool { return s.h.CacheBacked() }

// MulticastMember reports whether the current incarnation rides a
// multicast group's fan-out.
func (s *Session) MulticastMember() bool { return s.h.MulticastMember() }

// pos returns the viewer's resume point: the earliest timestamp it has
// not consumed.
func (s *Session) pos() sim.Time { return s.posT }

// note advances the resume point past a consumed chunk.
func (s *Session) note(ch core.BufferedChunk) {
	if t := ch.Timestamp + ch.Duration; t > s.posT {
		s.posT = t
	}
}

// Get returns the chunk covering logical if it is resident, trying the
// current incarnation first and the previous one second — after a node
// death or migration the old shared buffer is plain memory and its runway
// is still readable. Consuming advances the session's resume point, which
// is where a failover re-opens.
func (s *Session) Get(logical sim.Time) (core.BufferedChunk, bool) {
	if s.h != nil {
		if ch, ok := s.h.Get(logical); ok {
			s.note(ch)
			return ch, true
		}
	}
	if s.prev != nil {
		if ch, ok := s.prev.Get(logical); ok {
			s.note(ch)
			return ch, true
		}
	}
	return core.BufferedChunk{}, false
}

// ClockStartsAt returns the real time the current incarnation's clock
// reaches logical, or -1 when unknowable (clock stopped). While a failover
// is in flight this is the dead incarnation's clock — still valid
// arithmetic, and exactly the pacing the viewer consumed its runway under;
// adoption bumps Gen and re-anchors deadlines on the replacement's clock.
func (s *Session) ClockStartsAt(logical sim.Time) sim.Time {
	return s.h.ClockStartsAt(logical)
}

// LogicalNow returns the current incarnation's logical clock position.
func (s *Session) LogicalNow() sim.Time { return s.h.LogicalNow() }

// Start arms playback; a later failover re-arms the replacement.
func (s *Session) Start(th *rtm.Thread) error {
	s.started = true
	return s.ignoreDown(s.h.Start(th))
}

// Stop freezes playback.
func (s *Session) Stop(th *rtm.Thread) error {
	s.started = false
	return s.ignoreDown(s.h.Stop(th))
}

// Close ends the session cluster-wide: the front door stops tracking it
// and no failover will resurrect it.
func (s *Session) Close(th *rtm.Thread) error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.c.deregister(s)
	return s.ignoreDown(s.h.Close(th))
}

// ignoreDown swallows ErrServerDown: an RPC that raced the serving node's
// death is moot — the failover path owns the session's fate now.
func (s *Session) ignoreDown(err error) error {
	if err != nil && errors.Is(err, core.ErrServerDown) {
		return nil
	}
	return err
}
