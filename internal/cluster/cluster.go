// Package cluster is a front door over N independent CRAS instances: each
// node is a complete simulated machine — its own RT-Mach kernel, volume,
// Unix server and CRAS — booted on one shared engine so the whole cluster
// lives on a single virtual timeline. The front door routes opens by path
// (popularity-aware placement first, consistent hashing for the cold
// tail), watches node health through dead-name notifications and cycle
// heartbeats, fails displaced viewers over to surviving replicas at their
// stamp point, and migrates streams off a node before planned shutdown.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// Config sizes and seeds a cluster build.
type Config struct {
	// Nodes is the replica count; every node is built from the Node
	// template and stores every movie (full replication — the paper's
	// server is a single machine, so the cluster keeps placement decisions
	// in the routing layer rather than the storage layer).
	Nodes int

	// Seed seeds the one shared engine.
	Seed int64

	// Node is the per-node machine template. Engine, Name and Movies are
	// overwritten per node; everything else (disk geometry, CRAS config,
	// FS options) applies to all nodes alike.
	Node lab.Setup

	// Movies are replicated to every node during setup.
	Movies []lab.Movie

	// HeartbeatEvery is the health monitor's sampling period; 0 uses the
	// CRAS cycle interval — one observation per scheduler cycle.
	HeartbeatEvery sim.Time

	// SuspectAfter / DeadAfter are the missed-heartbeat counts that move a
	// node Healthy→Suspect and →Dead. Defaults 2 and 4.
	SuspectAfter int
	DeadAfter    int

	// FailoverJitterMin/Max bound the per-viewer backoff drawn before a
	// displaced viewer re-opens elsewhere, decorrelating the reopen wave a
	// node death would otherwise aim at one survivor in a single cycle.
	// Defaults 20ms and 200ms.
	FailoverJitterMin sim.Time
	FailoverJitterMax sim.Time

	// JitterSeed folds into the jitter RNG stream name so chaos runs can
	// rotate the failover schedule independently of the engine seed.
	JitterSeed int64

	// DegradedRate scales a displaced viewer's delivered frame fraction
	// when no survivor can re-admit it at full rate: the replacement keeps
	// the playback clock at full pace and skips frames (core's
	// DeliveredRate thinning) instead of stretching the timeline. 0.75 by
	// default; a value >= 1 or <= 0 disables reduced-rate re-admission.
	DegradedRate float64

	// FailoverRetries bounds how many RetryAfter waits a stranded viewer
	// sits through before the cluster gives up on it. Default 3.
	FailoverRetries int

	// RetryAfter is the wait quoted to a stranded viewer when no refusing
	// node supplied a better hint; 0 uses the CRAS initial delay.
	RetryAfter sim.Time

	// VirtualNodes is the consistent-hash replication factor. Default 16.
	VirtualNodes int
}

// NodeHealth is the cluster's per-node ladder. Dead is terminal: a node
// pronounced dead keeps its verdict even if its cycles resume, because its
// viewers have already been failed over.
type NodeHealth int

const (
	NodeHealthy NodeHealth = iota
	NodeSuspect
	NodeDead
)

func (h NodeHealth) String() string {
	switch h {
	case NodeHealthy:
		return "healthy"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// NodeHealthEvent records one ladder transition.
type NodeHealthEvent struct {
	Node   string
	ID     int
	From   NodeHealth
	To     NodeHealth
	At     sim.Time
	Reason string
}

// pending transition values the hot heartbeat step hands to the applier.
const (
	pendNone = iota
	pendHealthy
	pendSuspect
	pendDead
)

// node is one cluster member and the routing state hung off it.
type node struct {
	id   int
	name string
	m    *lab.Machine

	health   NodeHealth
	draining bool

	// Heartbeat counters (hot path: plain ints, no allocation).
	lastCycle  int
	missed     int
	pend       int
	pendReason string

	sessions []*Session     // sessions this node currently serves, in open order
	serving  map[string]int // open-session count per path (placement routing)
}

// Stats counts cluster-level events.
type Stats struct {
	Opens          int // viewer opens through the front door
	OpenRejects    int // opens no node could admit
	PlacementOpens int // routed to a node already serving the title
	RingOpens      int // routed to the consistent-hash owner
	SpillOpens     int // routed past placement and owner to any healthy node

	NodesSuspected int
	NodesDead      int
	NodesRecovered int // Suspect→Healthy transitions

	Failovers          int // displaced viewers re-established on a peer
	FailoversReduced   int // of those, re-admitted at reduced rate
	FailoversStranded  int // RetryAfter waits served by displaced viewers
	FailoversRefused   int // viewers the cluster gave up on
	Migrations         int // drain-time stream moves, zero-loss handovers
	MigrationsFailed   int // drain moves no peer could admit
	DrainsStarted      int
	HeartbeatsObserved int //crasvet:allow hotalloc -- counter only
}

// Cluster is the front door.
type Cluster struct {
	cfg    Config
	eng    *sim.Engine
	k      *rtm.Kernel // front-door kernel, distinct from every node's
	nodes  []*node
	ring   []ringEntry
	movies map[string]*media.StreamInfo
	rng    *sim.RNG
	stats  Stats

	booted bool

	// OnNodeHealth, if set, observes every node ladder transition. Set it
	// from the ready callback, before the first heartbeat.
	OnNodeHealth func(NodeHealthEvent)
}

// New boots the cluster. Setup runs in simulated time; once every node is
// up, ready is invoked from engine context with the heartbeat and
// dead-name monitors already armed. The caller then drives the engine
// through Run.
func New(cfg Config, ready func(c *Cluster)) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 2
	}
	if cfg.FailoverJitterMin <= 0 {
		cfg.FailoverJitterMin = 20 * time.Millisecond
	}
	if cfg.FailoverJitterMax <= cfg.FailoverJitterMin {
		cfg.FailoverJitterMax = cfg.FailoverJitterMin + 180*time.Millisecond
	}
	if cfg.DegradedRate == 0 {
		cfg.DegradedRate = 0.75
	}
	if cfg.FailoverRetries <= 0 {
		cfg.FailoverRetries = 3
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 16
	}
	c := &Cluster{
		cfg:    cfg,
		eng:    sim.NewEngine(cfg.Seed),
		movies: make(map[string]*media.StreamInfo, len(cfg.Movies)),
	}
	for _, mv := range cfg.Movies {
		c.movies[mv.Path] = mv.Info
	}
	remaining := cfg.Nodes
	for i := 0; i < cfg.Nodes; i++ {
		n := &node{id: i, name: fmt.Sprintf("n%d", i), serving: map[string]int{}}
		c.nodes = append(c.nodes, n)
		s := cfg.Node
		s.Engine = c.eng
		s.Name = n.name + "."
		s.Movies = cfg.Movies
		// lab.Build only invokes this on a successful boot; a failed node
		// surfaces through Err/Run scanning the machines instead.
		n.m = lab.Build(s, func(m *lab.Machine) {
			remaining--
			if remaining == 0 {
				c.finishBoot(ready)
			}
		})
	}
	return c
}

// finishBoot runs from engine context after the last node's setup: resolve
// the config defaults that depend on the node CRAS config, build the hash
// ring, and arm the monitors.
func (c *Cluster) finishBoot(ready func(*Cluster)) {
	ncfg := c.nodes[0].m.CRAS.Config()
	if c.cfg.HeartbeatEvery <= 0 {
		c.cfg.HeartbeatEvery = ncfg.Interval
	}
	if c.cfg.RetryAfter <= 0 {
		c.cfg.RetryAfter = ncfg.InitialDelay
	}
	c.k = rtm.NewKernel(c.eng)
	c.rng = c.eng.RNG(fmt.Sprintf("cluster.failover.jitter.%d", c.cfg.JitterSeed))
	c.buildRing()
	for _, n := range c.nodes {
		n.lastCycle = n.m.CRAS.CycleCount()
		notify := c.k.NewPort("cluster.notify." + n.name)
		n.m.CRAS.NotifyDown(notify)
		n := n
		c.k.NewThread("cluster.monitor."+n.name, rtm.PrioRT, 0, func(th *rtm.Thread) {
			if _, ok := notify.Receive(th).(rtm.DeadName); ok {
				c.nodeDead(n, "dead-name notification")
			}
		})
	}
	c.k.NewThread("cluster.heartbeat", rtm.PrioRT, 0, func(th *rtm.Thread) {
		for {
			th.Sleep(c.cfg.HeartbeatEvery)
			c.heartbeatStep()
			c.applyTransitions()
		}
	})
	c.booted = true
	ready(c)
}

// heartbeatStep is the per-cycle routing step: one cycle-count observation
// per node feeding the Healthy→Suspect→Dead ladder the router consults.
// It runs every heartbeat for every node, so it only moves counters;
// transitions (rare) are staged in pend and applied off this path.
//
//crasvet:hotpath
func (c *Cluster) heartbeatStep() {
	c.stats.HeartbeatsObserved++
	for _, n := range c.nodes {
		n.pend = pendNone
		if n.health == NodeDead {
			continue
		}
		if n.m.CRAS.Stopped() {
			n.pend, n.pendReason = pendDead, "server stopped"
			continue
		}
		cyc := n.m.CRAS.CycleCount()
		if cyc != n.lastCycle {
			n.lastCycle = cyc
			n.missed = 0
			if n.health == NodeSuspect {
				n.pend, n.pendReason = pendHealthy, "cycles resumed"
			}
			continue
		}
		n.missed++
		switch {
		case n.missed >= c.cfg.DeadAfter:
			n.pend, n.pendReason = pendDead, "missed cycle heartbeats"
		case n.missed >= c.cfg.SuspectAfter && n.health == NodeHealthy:
			n.pend, n.pendReason = pendSuspect, "missed cycle heartbeats"
		}
	}
}

// applyTransitions applies the transitions heartbeatStep staged. Runs on
// the monitor thread but off the hot path — transitions may allocate
// (events, failover threads).
func (c *Cluster) applyTransitions() {
	for _, n := range c.nodes {
		switch n.pend {
		case pendHealthy:
			c.stats.NodesRecovered++
			c.setHealth(n, NodeHealthy, n.pendReason)
		case pendSuspect:
			c.stats.NodesSuspected++
			c.setHealth(n, NodeSuspect, n.pendReason)
		case pendDead:
			c.nodeDead(n, n.pendReason)
		}
		n.pend = pendNone
	}
}

func (c *Cluster) setHealth(n *node, to NodeHealth, reason string) {
	if n.health == to {
		return
	}
	ev := NodeHealthEvent{Node: n.name, ID: n.id, From: n.health, To: to, At: c.k.Now(), Reason: reason}
	n.health = to
	if c.OnNodeHealth != nil {
		c.OnNodeHealth(ev)
	}
}

// nodeDead pronounces the node dead (idempotently — the dead-name
// notification and the heartbeat ladder race to deliver the same verdict)
// and fails over every viewer it served: each is re-opened on a surviving
// replica at its stamp point after a seed-deterministic jittered backoff,
// so the reopen wave spreads over the jitter window instead of landing on
// one survivor in a single cycle.
func (c *Cluster) nodeDead(n *node, reason string) {
	if n.health == NodeDead {
		return
	}
	c.stats.NodesDead++
	c.setHealth(n, NodeDead, reason)
	victims := n.sessions
	n.sessions = nil
	for path := range n.serving {
		delete(n.serving, path)
	}
	for _, s := range victims {
		if s.closed || s.refused {
			continue
		}
		s.orphaned = true
		s.stranded = nil
		// Jitters are drawn here, in victim order, so the failover schedule
		// is a pure function of engine seed + JitterSeed.
		jitter := c.rng.DurationRange(c.cfg.FailoverJitterMin, c.cfg.FailoverJitterMax)
		s := s
		c.k.NewThread(fmt.Sprintf("cluster.failover.%s.g%d", s.path, s.gen), rtm.PrioTS, 0,
			func(th *rtm.Thread) {
				th.Sleep(jitter)
				c.failoverSession(th, s, n)
			})
	}
}

// failoverSession re-establishes one displaced viewer: full rate first, a
// thinned delivered rate (frame skipping at full clock pace) when the
// survivors cannot fit the displaced population at full rate, and an
// honest typed *FailoverError with a RetryAfter wait
// when the cluster is saturated outright — retried a bounded number of
// times before the viewer is refused for good.
func (c *Cluster) failoverSession(th *rtm.Thread, s *Session, from *node) {
	for attempt := 0; ; attempt++ {
		if s.closed || s.refused {
			return
		}
		at := s.pos()
		if at >= s.info.TotalDuration() {
			// The viewer had already consumed the whole title; nothing to
			// re-establish. Leave the old buffer readable for the tail.
			s.orphaned = false
			return
		}
		h, n, err := c.openOn(th, s.path, s.info,
			core.OpenOptions{Rate: s.rate, At: at, DeliveredRate: s.dr}, from)
		if err == nil {
			c.adopt(th, s, h, n, s.rate)
			c.stats.Failovers++
			return
		}
		hint, capacity := capacityError(err)
		if capacity && c.cfg.DegradedRate > 0 && c.cfg.DegradedRate < 1 {
			// Re-admit with a thinned delivered rate: the replacement keeps
			// the clock at full pace and skips frames, instead of stretching
			// the viewer's timeline in slow motion.
			reduced := s.deliveredRate() * c.cfg.DegradedRate
			h, n, err2 := c.openOn(th, s.path, s.info,
				core.OpenOptions{Rate: s.rate, At: at, DeliveredRate: reduced}, from)
			if err2 == nil {
				s.dr = reduced
				s.reduced++
				c.adopt(th, s, h, n, s.rate)
				c.stats.Failovers++
				c.stats.FailoversReduced++
				return
			}
			if h2, ok := err2.(*FailoverError); ok {
				hint = h2.RetryAfter
			}
		}
		fe, ok := err.(*FailoverError)
		if !ok {
			fe = &FailoverError{Node: from.name, RetryAfter: c.cfg.RetryAfter, Reason: err.Error()}
		}
		if hint > fe.RetryAfter {
			fe.RetryAfter = hint
		}
		s.stranded = fe
		c.stats.FailoversStranded++
		if attempt >= c.cfg.FailoverRetries {
			s.refused = true
			c.stats.FailoversRefused++
			return
		}
		th.Sleep(fe.RetryAfter)
	}
}

// adopt swaps the session onto its replacement handle. The old handle is
// kept readable (prev): a dead server's shared buffers are plain memory,
// so the viewer keeps consuming its runway while the new node's clock
// holds the resume point through the initial delay — that overlap is what
// makes cache- and multicast-backed failover lossless.
func (c *Cluster) adopt(th *rtm.Thread, s *Session, h *core.Handle, n *node, rate float64) {
	s.prev = s.h
	s.h = h
	s.node = n
	s.gen++
	s.orphaned = false
	s.stranded = nil
	n.sessions = append(n.sessions, s)
	n.serving[s.path]++
	if s.started {
		h.Start(th)
	}
}

// DrainNode migrates every stream off the node to peers, then drains and
// shuts the node down — a planned roll with zero frames lost cluster-wide.
// Each migrated viewer gets a replacement session opened at a handover
// point just past the peer's initial delay; the old stream keeps serving
// until the replacement's clock reaches the handover point, so playback
// never gaps. Returns once the node has stopped or grace has run out.
func (c *Cluster) DrainNode(th *rtm.Thread, id int, grace sim.Time) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("cluster: drain node %d: no such node", id)
	}
	n := c.nodes[id]
	if n.health == NodeDead {
		return fmt.Errorf("cluster: drain node %s: already dead", n.name)
	}
	if n.draining {
		return fmt.Errorf("cluster: drain node %s: already draining", n.name)
	}
	n.draining = true
	c.stats.DrainsStarted++
	deadline := c.k.Now() + grace
	ncfg := n.m.CRAS.Config()

	type migration struct {
		s  *Session
		h  *core.Handle
		to *node
		at sim.Time
	}
	var moves []migration
	victims := append([]*Session(nil), n.sessions...)
	latest := c.k.Now()
	for _, s := range victims {
		if s.closed || s.refused {
			continue
		}
		// Handover point: where the old clock will be once the replacement
		// has sat out the peer's initial delay (plus one interval of edge
		// alignment slack). Until then the old stream keeps playing.
		at := s.h.LogicalNow() + ncfg.InitialDelay + 2*ncfg.Interval
		if !s.started {
			at = s.pos()
		}
		if at >= s.info.TotalDuration() {
			continue // runs out on the draining node before a peer could take over
		}
		h, peer, err := c.openOn(th, s.path, s.info,
			core.OpenOptions{Rate: s.rate, At: at, DeliveredRate: s.dr}, n)
		if err != nil {
			if _, capacity := capacityError(err); capacity && c.cfg.DegradedRate > 0 && c.cfg.DegradedRate < 1 {
				reduced := s.deliveredRate() * c.cfg.DegradedRate
				if h2, peer2, err2 := c.openOn(th, s.path, s.info,
					core.OpenOptions{Rate: s.rate, At: at, DeliveredRate: reduced}, n); err2 == nil {
					s.dr = reduced
					s.reduced++
					c.stats.FailoversReduced++
					h, peer, err = h2, peer2, nil
				}
			}
		}
		if err != nil {
			c.stats.MigrationsFailed++
			if fe, ok := err.(*FailoverError); ok {
				s.stranded = fe
			}
			continue
		}
		if s.started {
			if err := h.Start(th); err != nil {
				c.stats.MigrationsFailed++
				continue
			}
			if t := h.ClockStartsAt(at); t > latest {
				latest = t
			}
		}
		moves = append(moves, migration{s: s, h: h, to: peer, at: at})
	}

	// Wait for every replacement clock to reach its handover point, bounded
	// by the grace budget.
	target := latest + ncfg.Interval
	if target > deadline {
		target = deadline
	}
	if wait := target - c.k.Now(); wait > 0 {
		th.Sleep(wait)
	}

	for _, mv := range moves {
		s := mv.s
		if s.closed {
			mv.h.Close(th)
			continue
		}
		h, peer := mv.h, mv.to
		if peer.health == NodeDead || peer.m.CRAS.Stopped() {
			// The destination died between the replacement open and this
			// swap (a second failure racing the drain): abandon the dead
			// replacement and re-place the stream on whoever survives, at
			// the viewer's current consumption point.
			h2, peer2, err := c.openOn(th, s.path, s.info, core.OpenOptions{Rate: s.rate, At: s.pos()}, n)
			if err != nil {
				c.stats.MigrationsFailed++
				if fe, ok := err.(*FailoverError); ok {
					s.stranded = fe
				}
				continue
			}
			if s.started {
				h2.Start(th)
			}
			h, peer = h2, peer2
		}
		old := s.h
		c.deregister(s)
		s.prev = old
		s.h = h
		s.node = peer
		s.gen++
		peer.sessions = append(peer.sessions, s)
		peer.serving[s.path]++
		c.stats.Migrations++
		// Close the old stream explicitly so the draining node runs down;
		// frames before the handover point were consumed from it already.
		old.Close(th)
	}

	remaining := deadline - c.k.Now()
	if remaining < 0 {
		remaining = 0
	}
	n.m.CRAS.Drain(remaining)
	for !n.m.CRAS.Stopped() && c.k.Now() < deadline+ncfg.Interval {
		th.Sleep(ncfg.Interval)
	}
	if !n.m.CRAS.Stopped() {
		return fmt.Errorf("cluster: drain node %s: not stopped within grace", n.name)
	}
	return nil
}

func (c *Cluster) deregister(s *Session) {
	n := s.node
	if n == nil {
		return
	}
	for i, x := range n.sessions {
		if x == s {
			n.sessions = append(n.sessions[:i], n.sessions[i+1:]...)
			break
		}
	}
	if n.serving[s.path] > 0 {
		n.serving[s.path]--
	}
}

// Run advances the shared timeline by d, surfacing any node setup error.
func (c *Cluster) Run(d sim.Time) {
	c.eng.RunFor(d)
	if err := c.Err(); err != nil {
		panic(err)
	}
}

// Err returns the first node setup error, if any. A node whose boot
// failed never reports ready, so the cluster's monitors never arm; the
// caller sees the underlying error here (and Run panics on it).
func (c *Cluster) Err() error {
	for _, n := range c.nodes {
		if err := n.m.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Engine returns the shared engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Kernel returns the front-door kernel viewer threads run on.
func (c *Cluster) Kernel() *rtm.Kernel { return c.k }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// NodeCRAS returns node id's CRAS server (fault injection, measurements).
func (c *Cluster) NodeCRAS(id int) *core.Server { return c.nodes[id].m.CRAS }

// Machine returns node id's machine.
func (c *Cluster) Machine(id int) *lab.Machine { return c.nodes[id].m }

// NodeHealthOf returns node id's position on the ladder.
func (c *Cluster) NodeHealthOf(id int) NodeHealth { return c.nodes[id].health }

// NodeSessions returns the number of sessions the front door routes to
// node id right now.
func (c *Cluster) NodeSessions(id int) int { return len(c.nodes[id].sessions) }

// Stats returns a copy of the cluster counters.
//
//crasvet:snapshot
func (c *Cluster) Stats() Stats { return c.stats }

// Movie returns the replicated chunk table for path, or nil.
func (c *Cluster) Movie(path string) *media.StreamInfo { return c.movies[path] }

func effectiveRate(rate float64) float64 {
	if rate == 0 {
		return 1
	}
	return rate
}
