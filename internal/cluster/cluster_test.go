package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

const (
	tInterval = 500 * time.Millisecond
	tDelay    = 2 * time.Second
	tGiveUp   = 5 // frame durations of per-frame wait budget
)

// testMovies generates n distinct titles of the given duration.
func testMovies(n int, dur sim.Time) []lab.Movie {
	out := make([]lab.Movie, n)
	for i := range out {
		path := fmt.Sprintf("/m%02d", i)
		out[i] = lab.Movie{Path: path, Info: media.MPEG1().Generate(path, dur)}
	}
	return out
}

// testConfig is the baseline cluster the unit tests share: small nodes
// with cache and multicast enabled so placement attaches have something to
// ride.
func testConfig(nodes int, seed int64, movies []lab.Movie) Config {
	return Config{
		Nodes: nodes,
		Seed:  seed,
		Node: lab.Setup{
			CRAS: core.Config{
				Interval:     tInterval,
				InitialDelay: tDelay,
				BufferBudget: 64 << 20,
				CacheBudget:  32 << 20,
				BatchWindow:  time.Second,
				PrefixBudget: 16 << 20,
			},
		},
		Movies: movies,
	}
}

// viewer plays one session to completion, counting deliveries and losses
// with the same give-up budget the chaos campaign uses. Deadlines are
// recomputed every wait step, so a mid-play failover (which re-anchors the
// clock on the replacement node) turns into waiting, not loss.
type viewer struct {
	sess     *Session
	info     *media.StreamInfo
	obtained int
	lost     int
	done     bool
}

func (v *viewer) play(c *Cluster, th *rtm.Thread) {
	defer func() { v.done = true }()
	if err := v.sess.Start(th); err != nil {
		v.lost = len(v.info.Chunks)
		return
	}
	for i := range v.info.Chunks {
		ch := v.info.Chunks[i]
		for {
			if v.sess.Refused() {
				v.lost += len(v.info.Chunks) - i
				v.sess.Close(th)
				return
			}
			due := v.sess.ClockStartsAt(ch.Timestamp)
			now := c.k.Now()
			if due < 0 {
				th.Sleep(ch.Duration)
				v.lost++
				break
			}
			if now < due {
				wait := due - now
				if wait > 100*time.Millisecond {
					wait = 100 * time.Millisecond // re-check: a failover may move the deadline
				}
				th.Sleep(wait)
				continue
			}
			if _, ok := v.sess.Get(ch.Timestamp); ok {
				v.obtained++
				break
			}
			if now >= due+sim.Time(tGiveUp)*ch.Duration {
				v.lost++
				break
			}
			th.Sleep(2 * time.Millisecond)
		}
	}
	v.sess.Close(th)
}

func allViewersDone(vs []*viewer) bool {
	for _, v := range vs {
		if !v.done {
			return false
		}
	}
	return true
}

// drive runs the cluster until done reports true or the horizon passes.
// done is re-evaluated each interval: the viewer set fills in from the
// control thread after the engine starts.
func drive(c *Cluster, done func() bool, horizon sim.Time) {
	for ran := sim.Time(0); ran < horizon; ran += tInterval {
		c.Run(tInterval)
		if done() {
			break
		}
	}
	c.Run(time.Second) // cool-down
}

// TestPlacementAndRing: the first open of a title goes to its ring owner;
// subsequent opens of the same title land on the same node (placement) and
// ride its multicast group or interval cache; distinct cold titles spread
// over the ring.
func TestPlacementAndRing(t *testing.T) {
	movies := testMovies(4, 6*time.Second)
	var c *Cluster
	var sessions []*Session
	var hotShared []bool // mcast/cache attach, sampled at open time (idle leases reap later)
	var openErr error
	c = New(testConfig(4, 101, movies), func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			for i := 0; i < 3; i++ { // 3 viewers of the same hot title
				s, err := c.Open(th, "/m00", core.OpenOptions{})
				if err != nil {
					openErr = err
					return
				}
				sessions = append(sessions, s)
				hotShared = append(hotShared, s.MulticastMember() || s.CacheBacked())
				th.Sleep(200 * time.Millisecond) // inside the batch window
			}
			for i := 1; i < 4; i++ { // cold tail: one viewer per remaining title
				s, err := c.Open(th, fmt.Sprintf("/m%02d", i), core.OpenOptions{})
				if err != nil {
					openErr = err
					return
				}
				sessions = append(sessions, s)
			}
		})
	})
	c.Run(5 * time.Second)
	if openErr != nil {
		t.Fatalf("open: %v", openErr)
	}
	if len(sessions) != 6 {
		t.Fatalf("opened %d sessions, want 6", len(sessions))
	}
	hot := sessions[0].NodeID()
	for i, s := range sessions[:3] {
		if s.NodeID() != hot {
			t.Errorf("hot viewer %d on node %d, want the leader's node %d", i, s.NodeID(), hot)
		}
	}
	if !hotShared[1] {
		t.Errorf("second hot viewer rides neither multicast nor cache")
	}
	if !hotShared[2] {
		t.Errorf("third hot viewer rides neither multicast nor cache")
	}
	st := c.Stats()
	if st.PlacementOpens < 2 {
		t.Errorf("PlacementOpens = %d, want >= 2", st.PlacementOpens)
	}
	if st.RingOpens < 3 {
		t.Errorf("RingOpens = %d, want >= 3 (hot leader + cold titles)", st.RingOpens)
	}
	// Cold titles spread: not everything on the hot node.
	spread := map[int]bool{}
	for _, s := range sessions[3:] {
		spread[s.NodeID()] = true
	}
	if len(spread) < 2 {
		t.Errorf("cold tail all landed on one node; ring not spreading")
	}
	// Conservation: every session is routed to exactly one node.
	total := 0
	for i := 0; i < c.Nodes(); i++ {
		total += c.NodeSessions(i)
	}
	if total != len(sessions) {
		t.Errorf("session registry counts %d, want %d", total, len(sessions))
	}
	if c.Movie("/m00") == nil || c.Movie("/nope") != nil {
		t.Errorf("Movie lookup broken")
	}
}

// TestRingOwnerSkipsUnusable: the ring walk passes dead and draining
// nodes; with every node unusable there is no owner and open fails typed.
func TestRingOwnerSkipsUnusable(t *testing.T) {
	movies := testMovies(1, 2*time.Second)
	var c *Cluster
	c = New(testConfig(3, 102, movies), func(c *Cluster) {})
	c.Run(2 * time.Second)
	owner := c.ringOwner("/m00", nil)
	if owner == nil {
		t.Fatal("no ring owner on a healthy cluster")
	}
	owner.health = NodeDead
	second := c.ringOwner("/m00", nil)
	if second == nil || second == owner {
		t.Fatalf("ring walk did not skip the dead owner")
	}
	second.draining = true
	third := c.ringOwner("/m00", nil)
	if third == nil || third == owner || third == second {
		t.Fatalf("ring walk did not skip the draining node")
	}
	third.health = NodeSuspect
	if c.ringOwner("/m00", nil) != nil {
		t.Fatalf("ring owner found with no usable node")
	}
	// And the route ladder agrees: no candidates, typed refusal.
	var openErr error
	c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
		_, openErr = c.Open(th, "/m00", core.OpenOptions{})
	})
	c.Run(time.Second)
	var fe *FailoverError
	if !errors.As(openErr, &fe) || !errors.Is(openErr, ErrFailover) {
		t.Fatalf("open with no usable node = %v, want *FailoverError", openErr)
	}
	if fe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", fe.RetryAfter)
	}
}

// TestKillOneNodeFailover: killing a node mid-play fails every viewer it
// served over to a surviving replica at its stamp point — dead-name
// detection, jittered reopen, zero frames lost (the old buffer's runway
// bridges the replacement's initial delay).
func TestKillOneNodeFailover(t *testing.T) {
	movies := testMovies(2, 6*time.Second)
	var events []NodeHealthEvent
	var vs []*viewer
	var c *Cluster
	c = New(testConfig(2, 103, movies), func(c *Cluster) {
		c.OnNodeHealth = func(ev NodeHealthEvent) { events = append(events, ev) }
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			for i := 0; i < 2; i++ { // two viewers of the same title: leader + member
				s, err := c.Open(th, "/m00", core.OpenOptions{})
				if err != nil {
					t.Errorf("open viewer %d: %v", i, err)
					return
				}
				v := &viewer{sess: s, info: c.Movie("/m00")}
				vs = append(vs, v)
				c.k.NewThread(fmt.Sprintf("viewer%d", i), rtm.PrioRTLow, 0, func(vt *rtm.Thread) {
					v.play(c, vt)
				})
				th.Sleep(200 * time.Millisecond)
			}
			victim := vs[0].sess.NodeID()
			th.SleepUntil(c.k.Now() + 2500*time.Millisecond)
			c.NodeCRAS(victim).Shutdown()
		})
	})
	drive(c, func() bool { return len(vs) == 2 && allViewersDone(vs) }, 30*time.Second)
	if !allViewersDone(vs) {
		t.Fatal("viewers never finished")
	}
	deadSeen := false
	for _, ev := range events {
		if ev.To == NodeDead && ev.Reason == "dead-name notification" {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Errorf("no dead-name death pronounced; events: %v", events)
	}
	st := c.Stats()
	if st.Failovers != 2 {
		t.Errorf("Failovers = %d, want 2", st.Failovers)
	}
	for i, v := range vs {
		if v.lost != 0 {
			t.Errorf("viewer %d lost %d frames across the failover", i, v.lost)
		}
		if v.obtained != len(v.info.Chunks) {
			t.Errorf("viewer %d obtained %d of %d", i, v.obtained, len(v.info.Chunks))
		}
		if v.sess.Gen() == 0 {
			t.Errorf("viewer %d was never re-placed", i)
		}
	}
}

// TestWedgeDetectedByHeartbeat: a node whose scheduler freezes while its
// request manager keeps answering is caught by the missed-cycle ladder —
// Suspect, then Dead — and its viewers fail over. The server must NOT be
// Stopped when pronounced: that is exactly what distinguishes the
// heartbeat path from the dead-name path.
func TestWedgeDetectedByHeartbeat(t *testing.T) {
	movies := testMovies(1, 6*time.Second)
	cfg := testConfig(2, 104, movies)
	cfg.SuspectAfter = 2
	cfg.DeadAfter = 3
	var events []NodeHealthEvent
	stoppedAtDead := true
	var vs []*viewer
	var c *Cluster
	c = New(cfg, func(c *Cluster) {
		c.OnNodeHealth = func(ev NodeHealthEvent) {
			events = append(events, ev)
			if ev.To == NodeDead {
				stoppedAtDead = c.nodes[ev.ID].m.CRAS.Stopped()
			}
		}
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			s, err := c.Open(th, "/m00", core.OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			v := &viewer{sess: s, info: c.Movie("/m00")}
			vs = append(vs, v)
			c.k.NewThread("viewer", rtm.PrioRTLow, 0, func(vt *rtm.Thread) { v.play(c, vt) })
			victim := s.NodeID()
			th.SleepUntil(c.k.Now() + 2500*time.Millisecond)
			c.NodeCRAS(victim).Wedge()
		})
	})
	drive(c, func() bool { return len(vs) == 1 && allViewersDone(vs) }, 30*time.Second)
	var suspect, dead bool
	for _, ev := range events {
		if ev.To == NodeSuspect {
			suspect = true
		}
		if ev.To == NodeDead {
			if !suspect {
				t.Errorf("Dead pronounced before Suspect")
			}
			if ev.Reason != "missed cycle heartbeats" {
				t.Errorf("death reason = %q, want missed cycle heartbeats", ev.Reason)
			}
			dead = true
		}
	}
	if !suspect || !dead {
		t.Fatalf("ladder never reached Dead: events %v", events)
	}
	if stoppedAtDead {
		t.Errorf("server was Stopped at pronouncement — dead-name beat the heartbeat, wedge not exercised")
	}
	st := c.Stats()
	if st.NodesSuspected == 0 || st.NodesDead == 0 {
		t.Errorf("stats: suspected=%d dead=%d", st.NodesSuspected, st.NodesDead)
	}
	if st.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", st.Failovers)
	}
	if !allViewersDone(vs) {
		t.Fatal("viewer never finished")
	}
}

// TestWedgeRecovery: a node that resumes its cycles while merely Suspect
// recovers to Healthy; nobody is failed over.
func TestWedgeRecovery(t *testing.T) {
	movies := testMovies(1, 4*time.Second)
	cfg := testConfig(2, 105, movies)
	cfg.SuspectAfter = 2
	cfg.DeadAfter = 8
	var events []NodeHealthEvent
	var c *Cluster
	c = New(cfg, func(c *Cluster) {
		c.OnNodeHealth = func(ev NodeHealthEvent) { events = append(events, ev) }
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			srv := c.NodeCRAS(0)
			th.Sleep(time.Second)
			srv.Wedge()
			th.Sleep(2 * time.Second) // past SuspectAfter, short of DeadAfter
			srv.Unwedge()
		})
	})
	c.Run(6 * time.Second)
	var suspect, healthy bool
	for _, ev := range events {
		if ev.To == NodeSuspect {
			suspect = true
		}
		if ev.To == NodeHealthy && ev.From == NodeSuspect {
			healthy = true
		}
		if ev.To == NodeDead {
			t.Errorf("node pronounced dead during a recoverable wedge")
		}
	}
	if !suspect || !healthy {
		t.Fatalf("no Suspect→Healthy recovery: events %v", events)
	}
	st := c.Stats()
	if st.NodesRecovered != 1 {
		t.Errorf("NodesRecovered = %d, want 1", st.NodesRecovered)
	}
	if st.Failovers != 0 {
		t.Errorf("Failovers = %d for a recovered node, want 0", st.Failovers)
	}
	if c.NodeHealthOf(0) != NodeHealthy {
		t.Errorf("node health = %v after recovery", c.NodeHealthOf(0))
	}
}

// TestDrainNodeMigratesZeroLoss: DrainNode moves every stream to peers and
// rolls the node with zero frames lost cluster-wide. The drained node ends
// Stopped and its death pronouncement finds no sessions left to fail over.
func TestDrainNodeMigratesZeroLoss(t *testing.T) {
	movies := testMovies(2, 6*time.Second)
	var vs []*viewer
	var drainErr error
	drainDone := false
	var c *Cluster
	var victim int
	c = New(testConfig(2, 106, movies), func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			for i := 0; i < 2; i++ {
				s, err := c.Open(th, "/m00", core.OpenOptions{})
				if err != nil {
					t.Errorf("open viewer %d: %v", i, err)
					return
				}
				v := &viewer{sess: s, info: c.Movie("/m00")}
				vs = append(vs, v)
				c.k.NewThread(fmt.Sprintf("viewer%d", i), rtm.PrioRTLow, 0, func(vt *rtm.Thread) {
					v.play(c, vt)
				})
				th.Sleep(200 * time.Millisecond)
			}
			victim = vs[0].sess.NodeID()
			th.SleepUntil(c.k.Now() + 2500*time.Millisecond)
			drainErr = c.DrainNode(th, victim, 10*time.Second)
			drainDone = true
		})
	})
	drive(c, func() bool { return drainDone && len(vs) == 2 && allViewersDone(vs) }, 40*time.Second)
	if !drainDone {
		t.Fatal("DrainNode never returned")
	}
	if drainErr != nil {
		t.Fatalf("DrainNode: %v", drainErr)
	}
	if !c.NodeCRAS(victim).Stopped() {
		t.Errorf("drained node not stopped")
	}
	st := c.Stats()
	if st.Migrations != 2 {
		t.Errorf("Migrations = %d, want 2", st.Migrations)
	}
	if st.Failovers != 0 {
		t.Errorf("Failovers = %d during a planned drain, want 0", st.Failovers)
	}
	for i, v := range vs {
		if v.lost != 0 {
			t.Errorf("viewer %d lost %d frames across the drain", i, v.lost)
		}
		if v.sess.NodeID() == victim {
			t.Errorf("viewer %d still routed to the drained node", i)
		}
	}
	// Double drain and draining a dead node are refused.
	var again, deadDrain error
	c.k.NewThread("ctl2", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
		again = c.DrainNode(th, victim, time.Second)
		deadDrain = c.DrainNode(th, 99, time.Second)
	})
	c.Run(3 * time.Second)
	if again == nil {
		t.Errorf("draining a dead node succeeded")
	}
	if deadDrain == nil {
		t.Errorf("draining a bogus node id succeeded")
	}
}

// TestSaturatedClusterHonestRetryAfter: when the cluster cannot place a
// viewer the refusal is a typed *FailoverError with RetryAfter > 0, and a
// displaced viewer stranded by saturation is re-admitted once capacity
// frees within its retry budget — the RetryAfter quote is honest.
func TestSaturatedClusterHonestRetryAfter(t *testing.T) {
	movies := testMovies(8, 6*time.Second)
	cfg := testConfig(2, 107, movies)
	cfg.Node.CRAS.BufferBudget = 600 << 10 // 3 plain ~200KB streams per node
	cfg.Node.CRAS.CacheBudget = 0
	cfg.Node.CRAS.BatchWindow = 0
	cfg.Node.CRAS.PrefixBudget = 0
	cfg.DegradedRate = 1 // disable reduced-rate re-admission: force the strand
	cfg.FailoverRetries = 3
	cfg.RetryAfter = time.Second
	var sessions []*Session
	var rejectErr error
	var c *Cluster
	c = New(cfg, func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			// Fill the cluster: distinct titles, no sharing to ride.
			for i := 0; i < len(movies); i++ {
				s, err := c.Open(th, movies[i].Path, core.OpenOptions{})
				if err != nil {
					rejectErr = err
					break
				}
				sessions = append(sessions, s)
			}
		})
	})
	c.Run(3 * time.Second)
	if rejectErr == nil {
		t.Fatalf("cluster admitted all %d viewers; budget not saturating", len(movies))
	}
	var fe *FailoverError
	if !errors.As(rejectErr, &fe) {
		t.Fatalf("saturated open = %v (%T), want *FailoverError", rejectErr, rejectErr)
	}
	if fe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", fe.RetryAfter)
	}
	if len(sessions) < 2 {
		t.Fatalf("only %d sessions admitted; cannot exercise failover", len(sessions))
	}
	st0 := c.Stats()
	if st0.OpenRejects == 0 {
		t.Errorf("OpenRejects = 0 after a refused open")
	}

	// Kill one node: its viewers cannot fit on the saturated survivor, so
	// they strand with the typed verdict; freeing a survivor session lets
	// one land within the retry budget.
	victim := sessions[0].NodeID()
	var victims, survivors []*Session
	for _, s := range sessions {
		if s.NodeID() == victim {
			victims = append(victims, s)
		} else {
			survivors = append(survivors, s)
		}
	}
	if len(victims) == 0 || len(survivors) == 0 {
		t.Fatalf("placement put everything on one node: %d victims, %d survivors", len(victims), len(survivors))
	}
	c.k.NewThread("ctl2", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
		c.NodeCRAS(victim).Shutdown()
		th.Sleep(1500 * time.Millisecond) // let the first full-rate attempts strand
		if err := survivors[0].Close(th); err != nil {
			t.Errorf("close survivor: %v", err)
		}
	})
	c.Run(10 * time.Second)
	st := c.Stats()
	if st.FailoversStranded == 0 {
		t.Errorf("no viewer stranded on a saturated cluster")
	}
	strandedSeen := false
	for _, s := range victims {
		if s.Refused() {
			strandedSeen = true
			if s.Stranded() == nil || s.Stranded().RetryAfter <= 0 {
				t.Errorf("refused viewer carries no honest RetryAfter verdict")
			}
		}
	}
	if st.Failovers == 0 {
		t.Errorf("no stranded viewer landed after capacity freed; RetryAfter was dishonest")
	}
	if len(victims) > 1 && !strandedSeen && st.FailoversRefused == 0 {
		t.Logf("note: all %d victims eventually placed", len(victims))
	}
}

// TestFailoverErrorShape: the typed error unwraps to the sentinel and
// formats both the fresh-open and the displaced forms.
func TestFailoverErrorShape(t *testing.T) {
	fresh := &FailoverError{RetryAfter: time.Second, Reason: "full"}
	disp := &FailoverError{Node: "n1", RetryAfter: 2 * time.Second, Reason: "full"}
	if !errors.Is(fresh, ErrFailover) || !errors.Is(disp, ErrFailover) {
		t.Fatal("FailoverError does not unwrap to ErrFailover")
	}
	if fresh.Error() == disp.Error() {
		t.Errorf("fresh and displaced errors format identically")
	}
	if got, want := NodeHealthy.String(), "healthy"; got != want {
		t.Errorf("NodeHealthy = %q", got)
	}
	if NodeSuspect.String() != "suspect" || NodeDead.String() != "dead" {
		t.Errorf("health strings wrong")
	}
	if NodeHealth(7).String() == "" {
		t.Errorf("out-of-range health formats empty")
	}
}

// TestDegradedRateReadmission: when the survivors cannot fit a displaced
// viewer at full rate, failover re-admits it at the configured reduced
// delivered rate instead of stranding it. The replacement keeps the
// playback clock at full pace and skips frames — the viewer's timeline is
// never stretched, and every frame the node promises still arrives.
func TestDegradedRateReadmission(t *testing.T) {
	movies := testMovies(2, 6*time.Second)
	cfg := testConfig(2, 108, movies)
	// One full-rate ~200KB stream fits per node; a second full-rate stream
	// (400000 bytes) does not, but full + 0.75-delivered (~353KB) does —
	// the delivered-rate thinning scales the same B_i term the admission
	// test charges.
	cfg.Node.CRAS.BufferBudget = 360 << 10
	cfg.Node.CRAS.CacheBudget = 0
	cfg.Node.CRAS.BatchWindow = 0
	cfg.Node.CRAS.PrefixBudget = 0
	cfg.DegradedRate = 0.75
	var c *Cluster
	var vs []*viewer
	c = New(cfg, func(c *Cluster) {
		c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			for i := 0; i < 2; i++ {
				s, err := c.Open(th, movies[i].Path, core.OpenOptions{})
				if err != nil {
					t.Errorf("open %d: %v", i, err)
					return
				}
				v := &viewer{sess: s, info: movies[i].Info}
				vs = append(vs, v)
				c.k.NewThread(fmt.Sprintf("viewer%d", i), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
					v.play(c, th)
				})
			}
			if vs[0].sess.NodeID() == vs[1].sess.NodeID() {
				t.Errorf("capacity did not spread the two streams over two nodes")
				return
			}
			victim := vs[1].sess.NodeID()
			th.SleepUntil(c.k.Now() + 2500*time.Millisecond)
			c.NodeCRAS(victim).Shutdown()
		})
	})
	drive(c, func() bool { return len(vs) == 2 && allViewersDone(vs) }, 40*time.Second)
	st := c.Stats()
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
	if st.FailoversReduced != 1 {
		t.Errorf("FailoversReduced = %d, want 1 (full rate cannot fit beside the survivor)", st.FailoversReduced)
	}
	moved := vs[1]
	if moved.sess.Reduced() != 1 {
		t.Errorf("Reduced() = %d, want 1", moved.sess.Reduced())
	}
	if got := moved.sess.DeliveredRate(); got != 0.75 {
		t.Errorf("DeliveredRate after degraded re-admit = %v, want 0.75", got)
	}
	if got := moved.sess.Rate(); got != 0.75 {
		t.Errorf("effective session rate after degraded re-admit = %v, want 0.75", got)
	}
	// The thinning skips frames instead of stretching the timeline: the
	// moved viewer finishes on schedule, misses some frames past the
	// failover point (roughly the thinned quarter of the remainder), and
	// the frame accounting conserves.
	total := len(moved.info.Chunks)
	if moved.obtained+moved.lost != total {
		t.Errorf("moved viewer accounting leaked: obtained %d + lost %d != %d",
			moved.obtained, moved.lost, total)
	}
	if moved.lost == 0 {
		t.Errorf("moved viewer missed no frames; delivered-rate thinning never engaged")
	}
	if moved.lost > total*2/5 {
		t.Errorf("moved viewer lost %d of %d frames; thinning should only skip ~25%% of the remainder",
			moved.lost, total)
	}
	if vs[0].lost != 0 {
		t.Errorf("undisplaced viewer lost %d frames", vs[0].lost)
	}
	if vs[0].obtained != len(vs[0].info.Chunks) {
		t.Errorf("undisplaced viewer obtained %d of %d frames", vs[0].obtained, len(vs[0].info.Chunks))
	}
	if vs[0].sess.Gen() != 0 {
		t.Errorf("undisplaced viewer moved (gen %d)", vs[0].sess.Gen())
	}
}

// TestClusterProperties: randomized trials over node counts, title sets,
// viewer populations and one injected node fault per trial. Invariants:
// every viewer terminates; frame accounting conserves (obtained + lost
// covers the whole title, refused viewers included); quiet and drained
// clusters lose zero frames; the session registry drains to zero once
// every viewer closes. Seed overridable with CLUSTER_PROP_SEED.
func TestClusterProperties(t *testing.T) {
	seed := int64(20260807)
	if env := os.Getenv("CLUSTER_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CLUSTER_PROP_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("property seed %d (override with CLUSTER_PROP_SEED)", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 5; trial++ {
		trial := trial
		nodes := 2 + rng.Intn(3)
		titles := 2 + rng.Intn(3)
		dur := sim.Time(4+rng.Intn(3)) * time.Second
		nview := 3 + rng.Intn(4)
		fault := rng.Intn(4) // 0 none, 1 kill, 2 wedge, 3 drain
		faultAt := sim.Time(1500+rng.Intn(1500)) * time.Millisecond
		picks := make([]int, nview)
		stagger := make([]sim.Time, nview)
		for i := range picks {
			picks[i] = rng.Intn(titles)
			stagger[i] = sim.Time(rng.Intn(300)) * time.Millisecond
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			movies := testMovies(titles, dur)
			cfg := testConfig(nodes, seed+int64(trial)*7919, movies)
			cfg.JitterSeed = seed + int64(trial)
			var c *Cluster
			var vs []*viewer
			drainErr := error(nil)
			drainDone := fault != 3
			c = New(cfg, func(c *Cluster) {
				c.k.NewThread("ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
					for i := 0; i < nview; i++ {
						th.Sleep(stagger[i])
						s, err := c.Open(th, movies[picks[i]].Path, core.OpenOptions{})
						if err != nil {
							t.Errorf("open viewer %d: %v", i, err)
							continue
						}
						v := &viewer{sess: s, info: movies[picks[i]].Info}
						vs = append(vs, v)
						c.k.NewThread(fmt.Sprintf("viewer%d", i), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
							s.Start(th)
							v.play(c, th)
						})
					}
				})
				c.k.NewThread("fault", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
					th.SleepUntil(faultAt)
					switch fault {
					case 1:
						c.NodeCRAS(0).Shutdown()
					case 2:
						c.NodeCRAS(0).Wedge()
					case 3:
						drainErr = c.DrainNode(th, 0, 20*time.Second)
						drainDone = true
					}
				})
			})
			drive(c, func() bool { return drainDone && len(vs) > 0 && allViewersDone(vs) }, 60*time.Second)
			if !allViewersDone(vs) {
				t.Fatalf("viewers never finished (fault %d at %v)", fault, faultAt)
			}
			if fault == 3 {
				if drainErr != nil {
					t.Errorf("drain: %v", drainErr)
				}
				if !c.NodeCRAS(0).Stopped() {
					t.Errorf("drained node still running")
				}
			}
			for i, v := range vs {
				if got, want := v.obtained+v.lost, len(v.info.Chunks); got != want {
					t.Errorf("viewer %d accounting: obtained %d + lost %d != %d chunks",
						i, v.obtained, v.lost, want)
				}
				if (fault == 0 || fault == 3) && v.lost != 0 {
					t.Errorf("viewer %d lost %d frames with no unplanned fault", i, v.lost)
				}
				if v.sess.Refused() && v.sess.Stranded() == nil {
					t.Errorf("viewer %d refused without a stranded verdict", i)
				}
			}
			if fault == 1 && c.NodeHealthOf(0) != NodeDead {
				t.Errorf("killed node never pronounced dead")
			}
			total := 0
			for i := 0; i < c.Nodes(); i++ {
				total += c.NodeSessions(i)
			}
			if total != 0 {
				t.Errorf("session registry holds %d sessions after every viewer closed", total)
			}
		})
	}
}
