package chaos

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// clusterPlayer is one viewer against the sharded front door. It mirrors
// playerState one layer up: deadlines are recomputed every wait step, so a
// mid-play failover (which re-anchors the clock on the replacement node)
// turns into waiting, not loss, and a refused viewer forfeits the rest of
// its title honestly.
type clusterPlayer struct {
	sess     *cluster.Session
	path     string
	info     *media.StreamInfo
	shared   bool // rode a multicast group or the interval cache at open time
	obtained int
	lost     int
	done     bool
}

func (p *clusterPlayer) play(c *cluster.Cluster, th *rtm.Thread, res *Result) {
	defer func() { p.done = true }()
	if err := p.sess.Start(th); err != nil {
		res.violate("%s: start: %v", p.path, err)
		p.lost = len(p.info.Chunks)
		return
	}
	for i := range p.info.Chunks {
		ch := p.info.Chunks[i]
		for {
			if p.sess.Refused() {
				// The cluster gave this viewer its honest verdict: the rest
				// of the title is forfeit, and the accounting must say so.
				p.lost += len(p.info.Chunks) - i
				p.sess.Close(th)
				return
			}
			due := p.sess.ClockStartsAt(ch.Timestamp)
			now := c.Kernel().Now()
			if due < 0 {
				// Clock frozen (a wedged or dying node): the frame will not
				// come due here; count it lost at the frame cadence and let
				// the failover catch the session up.
				p.lost++
				th.Sleep(ch.Duration)
				break
			}
			if now < due {
				wait := due - now
				if wait > 100*time.Millisecond {
					wait = 100 * time.Millisecond // re-check: a failover may move the deadline
				}
				th.Sleep(wait)
				continue
			}
			if got, ok := p.sess.Get(ch.Timestamp); ok {
				if got.Timestamp > ch.Timestamp || ch.Timestamp >= got.Timestamp+got.Duration {
					res.violate("%s: frame %d: expired chunk delivered: asked t=%v, got [%v,%v)",
						p.path, i, ch.Timestamp, got.Timestamp, got.Timestamp+got.Duration)
				}
				p.obtained++
				break
			}
			if now >= due+sim.Time(playerGiveUp)*ch.Duration {
				p.lost++
				break
			}
			th.Sleep(2 * time.Millisecond)
		}
	}
	p.sess.Close(th)
}

// runCluster executes a Cluster scenario: Streams viewers split between one
// hot title (batched opens that ride a fan-out group or the interval cache)
// and distinct cold titles spread by the hash ring, with the scripted
// node-level fault landing on the hot viewers' node.
func runCluster(sc Scenario, res *Result) {
	dur := sc.MovieDur
	if dur == 0 {
		dur = movieDur
	}
	nHot := sc.Streams/2 + sc.Streams%2
	hotPath := "/h00"
	movies := []lab.Movie{{Path: hotPath, Info: media.MPEG1().Generate(hotPath, dur)}}
	paths := make([]string, sc.Streams)
	for i := range paths {
		if i < nHot {
			paths[i] = hotPath
			continue
		}
		paths[i] = fmt.Sprintf("/c%02d", i)
		movies = append(movies, lab.Movie{Path: paths[i], Info: media.MPEG1().Generate(paths[i], dur)})
	}

	cfg := cluster.Config{
		Nodes:      sc.Cluster,
		Seed:       sc.Seed,
		JitterSeed: sc.Seed,
		Node: lab.Setup{
			CRAS: core.Config{
				Interval:     interval,
				InitialDelay: initialDelay,
				BufferBudget: 64 << 20,
				CacheBudget:  32 << 20,
				BatchWindow:  time.Second,
				PrefixBudget: 16 << 20,
			},
		},
		Movies: movies,
	}

	var players []*clusterPlayer
	var clusterStart sim.Time
	stoppedAtDead := map[int]bool{}
	faultVictim, kill2Victim := -1, -1
	kill2HadSessions := false
	drainDone := sc.NodeDrainAt == 0

	var c *cluster.Cluster
	c = cluster.New(cfg, func(c *cluster.Cluster) {
		clusterStart = c.Engine().Now()
		c.OnNodeHealth = func(ev cluster.NodeHealthEvent) {
			res.NodeEvents = append(res.NodeEvents, ev)
			if ev.To == cluster.NodeDead {
				// Record whether the server was already stopped when the
				// ladder pronounced it: the wedge scenario demands it was
				// NOT — that is what distinguishes the heartbeat path from
				// the dead-name path.
				stoppedAtDead[ev.ID] = c.NodeCRAS(ev.ID).Stopped()
			}
		}
		c.Kernel().NewThread("chaos.ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			for i := 0; i < sc.Streams; i++ {
				s, err := c.Open(th, paths[i], core.OpenOptions{})
				if err != nil {
					res.violate("open %s: %v", paths[i], err)
					return
				}
				p := &clusterPlayer{
					sess: s, path: paths[i], info: c.Movie(paths[i]),
					// Sampled at open time: idle sharing is reaped later.
					shared: s.MulticastMember() || s.CacheBacked(),
				}
				players = append(players, p)
				c.Kernel().NewThread(fmt.Sprintf("chaos.view%d:%s", i, paths[i]), rtm.PrioRTLow, 0, func(vt *rtm.Thread) {
					p.play(c, vt, res)
				})
				if i+1 < nHot {
					th.Sleep(200 * time.Millisecond) // keep the hot opens inside the batch window
				}
			}
		})
		c.Kernel().NewThread("chaos.fault", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			faultAt := sc.NodeKillAt
			if sc.NodeWedgeAt > 0 {
				faultAt = sc.NodeWedgeAt
			}
			if sc.NodeDrainAt > 0 {
				faultAt = sc.NodeDrainAt
			}
			if faultAt == 0 {
				return
			}
			th.SleepUntil(clusterStart + faultAt)
			if len(players) == 0 {
				res.violate("node fault scheduled at %v but no viewer had opened", faultAt)
				return
			}
			victim := players[0].sess.NodeID()
			faultVictim = victim
			switch {
			case sc.NodeKillAt > 0:
				c.NodeCRAS(victim).Shutdown()
			case sc.NodeWedgeAt > 0:
				c.NodeCRAS(victim).Wedge()
			case sc.NodeDrainAt > 0:
				if sc.NodeKill2At > 0 {
					c.Kernel().NewThread("chaos.kill2", rtm.PrioRTLow, 0, func(kt *rtm.Thread) {
						kt.SleepUntil(clusterStart + sc.NodeKill2At)
						// Kill the busiest node that is not the one draining.
						second := -1
						for id := 0; id < c.Nodes(); id++ {
							if id == victim || c.NodeHealthOf(id) != cluster.NodeHealthy {
								continue
							}
							if second < 0 || c.NodeSessions(id) > c.NodeSessions(second) {
								second = id
							}
						}
						if second < 0 {
							res.violate("no second node available for the mid-drain kill")
							return
						}
						kill2Victim = second
						kill2HadSessions = c.NodeSessions(second) > 0
						c.NodeCRAS(second).Shutdown()
					})
				}
				if err := c.DrainNode(th, victim, sc.NodeDrainGrace); err != nil {
					res.violate("DrainNode(%d): %v", victim, err)
				}
				drainDone = true
			}
		})
	})

	horizon := dur + initialDelay + 30*time.Second
	for ran := sim.Time(0); ran < horizon; ran += interval {
		c.Run(interval)
		if drainDone && len(players) == sc.Streams && clusterAllDone(players) {
			break
		}
	}
	c.Run(3 * time.Second) // cool-down: let late failovers and the drain settle

	res.Elapsed = c.Engine().Now() - clusterStart
	res.ClusterStats = c.Stats()
	for _, p := range players {
		res.Players = append(res.Players, PlayerOutcome{
			Path: p.path, Frames: len(p.info.Chunks), Obtained: p.obtained, Lost: p.lost,
		})
	}
	res.checkCluster(sc, c, players, nHot, faultVictim, kill2Victim, kill2HadSessions, stoppedAtDead)
}

func clusterAllDone(players []*clusterPlayer) bool {
	for _, p := range players {
		if !p.done {
			return false
		}
	}
	return true
}

// checkCluster is the cluster campaign's invariant block.
func (r *Result) checkCluster(sc Scenario, c *cluster.Cluster, players []*clusterPlayer,
	nHot, faultVictim, kill2Victim int, kill2HadSessions bool, stoppedAtDead map[int]bool) {

	if len(players) != sc.Streams {
		r.violate("only %d of %d viewers opened", len(players), sc.Streams)
	}
	sharedSeen := false
	for i, p := range players {
		if !p.done {
			r.violate("%s: viewer %d never finished (failover lost it?)", p.path, i)
		}
		if got, want := p.obtained+p.lost, len(p.info.Chunks); got != want {
			r.violate("%s: viewer %d accounting: obtained %d + lost %d != %d frames",
				p.path, i, p.obtained, p.lost, want)
		}
		if p.obtained == 0 {
			r.violate("%s: viewer %d obtained no frames at all", p.path, i)
		}
		if sc.ZeroLoss && p.lost != 0 {
			r.violate("%s: viewer %d lost %d frames in a zero-loss scenario", p.path, i, p.lost)
		}
		if p.shared {
			sharedSeen = true
			// The headline contract: a viewer that rode RAM-shared capacity
			// (fan-out group or interval cache) loses nothing to a node
			// death or a planned drain. A wedge is exempt — frames freeze
			// in place until the heartbeat ladder can even see the failure.
			if sc.NodeWedgeAt == 0 && p.lost != 0 {
				r.violate("%s: cache/multicast-backed viewer %d lost %d frames", p.path, i, p.lost)
			}
		}
		if p.sess.Refused() {
			if p.sess.Stranded() == nil || p.sess.Stranded().RetryAfter <= 0 {
				r.violate("%s: viewer %d refused without an honest RetryAfter verdict", p.path, i)
			}
		} else if p.sess.Orphaned() {
			r.violate("%s: viewer %d left orphaned with no verdict", p.path, i)
		}
	}
	if nHot >= 2 && !sharedSeen {
		r.violate("no hot viewer rode the multicast group or interval cache")
	}

	st := r.ClusterStats
	deadEvents := map[int][]cluster.NodeHealthEvent{}
	for _, ev := range r.NodeEvents {
		deadEvents[ev.ID] = append(deadEvents[ev.ID], ev)
	}

	if sc.NodeKillAt > 0 {
		if faultVictim < 0 {
			r.violate("kill scripted but no victim selected")
			return
		}
		if st.NodesDead == 0 {
			r.violate("node killed at %v but NodesDead = 0", sc.NodeKillAt)
		}
		if st.Failovers == 0 {
			r.violate("node killed mid-play but no viewer failed over")
		}
		deadName := false
		for _, ev := range deadEvents[faultVictim] {
			if ev.To == cluster.NodeDead && ev.Reason == "dead-name notification" {
				deadName = true
			}
		}
		if !deadName {
			r.violate("killed node %d not pronounced via dead-name notification: %v",
				faultVictim, deadEvents[faultVictim])
		}
	}

	if sc.NodeWedgeAt > 0 {
		if faultVictim < 0 {
			r.violate("wedge scripted but no victim selected")
			return
		}
		suspect, dead := false, false
		for _, ev := range deadEvents[faultVictim] {
			if ev.To == cluster.NodeSuspect {
				suspect = true
			}
			if ev.To == cluster.NodeDead {
				if !suspect {
					r.violate("wedged node %d pronounced Dead before Suspect", faultVictim)
				}
				if ev.Reason != "missed cycle heartbeats" {
					r.violate("wedged node %d death reason = %q, want missed cycle heartbeats",
						faultVictim, ev.Reason)
				}
				dead = true
			}
		}
		if !suspect || !dead {
			r.violate("wedged node %d never walked Suspect→Dead: %v", faultVictim, deadEvents[faultVictim])
		}
		if dead && stoppedAtDead[faultVictim] {
			r.violate("wedged node %d was Stopped at pronouncement — dead-name beat the heartbeat, gray failure not exercised", faultVictim)
		}
		if st.Failovers == 0 {
			r.violate("wedged node's viewers never failed over")
		}
	}

	if sc.NodeDrainAt > 0 {
		if faultVictim < 0 {
			r.violate("drain scripted but no victim selected")
			return
		}
		if !c.NodeCRAS(faultVictim).Stopped() {
			r.violate("drained node %d still running", faultVictim)
		}
		if st.DrainsStarted == 0 {
			r.violate("DrainsStarted = 0 after a scripted drain")
		}
		if st.Migrations == 0 {
			r.violate("drain moved no streams (Migrations = 0, MigrationsFailed = %d)", st.MigrationsFailed)
		}
		if sc.NodeKill2At > 0 {
			if kill2Victim < 0 {
				r.violate("mid-drain kill never fired")
			} else {
				if st.NodesDead == 0 {
					r.violate("second node killed mid-drain but NodesDead = 0")
				}
				if kill2HadSessions && st.Failovers == 0 {
					r.violate("killed node %d had sessions but no viewer failed over", kill2Victim)
				}
			}
		}
	}
}
