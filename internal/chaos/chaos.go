// Package chaos is the deterministic fault-injection campaign: seeded
// scenarios that combine the structured disk fault model with concurrent
// stream workloads, asserting the recovery engine's invariants — no expired
// chunk is ever delivered, the scheduler never wedges, and a faulty stream
// degrades without costing its healthy peers a single frame. Every scenario
// derives its randomness from the engine seed, so any failure replays
// bit-for-bit from the seed printed with it.
package chaos

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lab"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// Campaign shape. The interval is the paper's 500 ms; the initial delay is
// stretched to 2 s so the buffer lead absorbs recoverable disturbances —
// the same capacity-for-resilience trade the paper's 3-second-delay
// discussion makes.
const (
	interval     = 500 * time.Millisecond
	initialDelay = 2 * time.Second
	movieDur     = 6 * time.Second
	playerGiveUp = 5 // frame durations of per-frame wait budget
)

// Scenario is one seeded chaos run: a fault configuration against a number
// of concurrent streams.
type Scenario struct {
	Name    string
	Seed    int64
	Streams int

	// Faults is injected into the disk under all streams. RTOnly is forced
	// on, so file-system setup traffic stays clean.
	Faults disk.FaultConfig

	// Disks builds the machine on a striped volume with this many member
	// disks (0 or 1 = the single-disk machine). The fault model — and the
	// victim's bad region, projected through the stripe mapping — then
	// afflicts only member FaultDisk, and the invariants additionally
	// demand the healthy members' queues keep moving.
	Disks         int
	StripeSectors int64
	FaultDisk     int

	// Parity builds the volume with rotating parity (RAID-5 style). The
	// invariants then flip from confinement to recovery: faults on member
	// FaultDisk must be absorbed by XOR reconstruction — every stream ends
	// Healthy with zero lost frames, however sick the member gets.
	Parity bool

	// DiskCylinders/DiskHeads shrink the member disks (rebuild scenarios:
	// fewer stripe rows to stream back). 0 keeps the full geometry.
	DiskCylinders int
	DiskHeads     int

	// MovieDur overrides the campaign's 6 s movie length. The kill
	// scenario stretches it: real-time reads must still be in flight well
	// past KillAt, or the member detector has nothing to observe.
	MovieDur sim.Time

	// KillAt, when nonzero, fails member FaultDisk outright at this time
	// (a whole-member bad region): every real-time read on it errors until
	// ReplaceAt. The member detector must walk it Healthy→Suspect→Dead
	// while reconstruction keeps every admitted stream whole.
	KillAt sim.Time

	// ReplaceAt, when nonzero, clears the member's fault model and
	// attaches it as a replacement: the background rebuild must stream the
	// member back and return it to Healthy before the run ends.
	ReplaceAt sim.Time

	// Victim poisons stream 0's disk layout from its second extent to the
	// end of the file — a persistent bad-block region that must walk that
	// stream down the degradation ladder while its peers play untouched.
	// Under Share the region is bounded to extents [1..3] instead, so the
	// shared file keeps a clean warm-up head and tail for the followers.
	Victim bool

	// ZeroLoss asserts that no player loses any frame — for scenarios whose
	// faults the retry budget and buffer lead must fully absorb.
	ZeroLoss bool

	// Share turns the workload into viewers of one movie: stream 0 leads,
	// the rest open StaggerOpen apart and ride the interval cache (the
	// server gets a cache budget). The campaign then asserts the cache's
	// failure contract: followers fall back to disk rather than deliver an
	// expired chunk, and the scheduler survives losing the leader.
	Share       bool
	StaggerOpen sim.Time

	// Multicast turns the workload into a batched premiere of one movie:
	// every stream opens the same path back-to-back inside the batching
	// window (the server gets a prefix budget), so the opens coalesce into
	// one fan-out group led by stream 0. The campaign then asserts the
	// batching contract: the group actually formed, a dying feed promotes
	// its earliest member without costing survivors a frame, faults under
	// the group fall members back to disk rather than wedge them, and a
	// poisoned prefix is re-validated (truncated), never served.
	Multicast bool

	// LeaderCloseAt, when nonzero, closes stream 0 this long after the
	// control thread starts — mid-overlap, so a follower must be promoted.
	LeaderCloseAt sim.Time

	// Client-misbehavior drills (control-plane hardening). At most one of
	// CrashAt/GoSilentAt/SeekStorm is set, and it always afflicts stream 0;
	// the invariants then demand the misbehaving client costs only itself.

	// CrashAt makes player 0's client die without closing at this time: its
	// per-session port is destroyed and the dead-name path must reap the
	// session immediately.
	CrashAt sim.Time

	// GoSilentAt makes player 0 stop consuming (and renewing) at this time
	// while leaving the session open: the lease reaper must evict it within
	// the TTL, reclaiming its buffer and admission slot.
	GoSilentAt sim.Time

	// SeekStorm makes player 0 fire this many back-to-back seeks at
	// StormAt. With the control budget lowered to 4 the storm must be paced
	// across windows — never refused — without starving its peers.
	SeekStorm int
	StormAt   sim.Time

	// StormScatter turns the storm's seeks into real repositionings spread
	// across the title (a scrubbing viewer) instead of no-op seeks to the
	// current position: every one re-admits the stream and rebuilds its
	// runway, so the scrubber trades its own frames for the scrubbing while
	// its peers must still lose nothing.
	StormScatter bool

	// PauseFirst makes the GoSilentAt client pause its session before
	// falling silent: the paused-then-silent session holds pinned buffers
	// and a paused admission slot, and the lease reaper must reclaim it
	// through the standard eviction path like any other dead client.
	PauseFirst bool

	// RateLadder hands the server an adaptive delivered-rate ladder. The
	// victim's bad region is then bounded (extents [1..2]) and the failure
	// budget kept at the default: the invariants flip from degradation to
	// resilience — the victim must step its delivered rate down instead of
	// suspending, and recover to full rate once past the region.
	RateLadder []float64

	// OpenFlood launches this many one-shot no-op clients against the
	// server one second in, with the control budget at 4 and the request
	// queue capped at FloodQueueCap: a handful get admitted (and hang up),
	// the rest must be turned away as typed overload, splitting between the
	// shed gate and the bounded port.
	OpenFlood     int
	FloodQueueCap int

	// DrainAfter, when nonzero, calls Server.Drain(DrainGrace) at this
	// time. The run must end with the server stopped and no stream leaked,
	// no matter what the fault model was doing.
	DrainAfter sim.Time
	DrainGrace sim.Time

	// Cluster, when > 0, runs the scenario against a sharded cluster of
	// this many nodes instead of a single machine: Streams viewers split
	// between one hot title (batched opens that ride a multicast group or
	// the interval cache) and distinct cold titles spread by the hash ring.
	// The node-level fault kinds below then afflict whole nodes, and the
	// invariants move up a layer: displaced viewers must resume on a peer,
	// cache/multicast-backed viewers must lose zero frames, and a planned
	// drain must roll its node with nothing lost cluster-wide.
	Cluster int

	// NodeKillAt shuts the hot viewers' node down outright (dead-name
	// notification drives the failover, not the heartbeat).
	NodeKillAt sim.Time

	// NodeWedgeAt freezes the hot node's scheduler while its control plane
	// keeps answering — the gray failure only the missed-cycle heartbeat
	// ladder can see. The node must be pronounced dead by the heartbeat
	// while its server is demonstrably still un-stopped.
	NodeWedgeAt sim.Time

	// NodeDrainAt rolls the hot node via Cluster.DrainNode(NodeDrainGrace):
	// planned migration, zero frames lost. NodeKill2At, when also set,
	// kills a second (different) node mid-drain — the drain must still
	// complete while the failover path handles the unplanned death.
	NodeDrainAt    sim.Time
	NodeDrainGrace sim.Time
	NodeKill2At    sim.Time
}

// misbehaves reports whether stream 0 is scripted to abuse the server,
// which exempts it (and only it) from the delivery assertions.
func (sc Scenario) misbehaves() bool {
	return sc.CrashAt > 0 || sc.GoSilentAt > 0 || sc.SeekStorm > 0
}

// ReplayEnv returns the environment assignments (trailing space included)
// a replay command needs in front of `go run`: scenarios that exercise the
// multicast or cluster layers pin the matching property-test seeds, so the
// failure's whole seeded neighborhood — the scenario and the property
// sweeps around it — replays bit-for-bit from one printed line.
func (sc Scenario) ReplayEnv() string {
	var parts []string
	if sc.Multicast {
		parts = append(parts, fmt.Sprintf("MCAST_PROP_SEED=%d", sc.Seed))
	}
	if sc.Cluster > 0 {
		parts = append(parts, fmt.Sprintf("CLUSTER_PROP_SEED=%d", sc.Seed))
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, " ") + " "
}

// PlayerOutcome is one stream's delivery record.
type PlayerOutcome struct {
	Path     string
	Frames   int
	Obtained int
	Lost     int
	Health   core.StreamHealth
}

// Result is everything one scenario run produced, including the invariant
// violations (empty means the scenario passed).
type Result struct {
	Scenario Scenario
	Elapsed  sim.Time
	Server   core.Stats
	Disk     disk.Stats
	Faults   disk.FaultStats
	Players  []PlayerOutcome
	Ladder   []core.StreamHealthEvent

	// Member-ladder record (parity volumes): every transition, the final
	// position of each member, and each member's I/O counters — the
	// per-member stats that let an assertion name the dead member.
	Members      []core.MemberHealthEvent
	FinalMembers []core.MemberHealth
	MemberIO     []disk.Stats

	// Open-flood outcome split (OpenFlood scenarios only).
	FloodAdmitted   int
	FloodTurnedAway int

	// Cluster campaign record (Cluster > 0 scenarios).
	ClusterStats cluster.Stats
	NodeEvents   []cluster.NodeHealthEvent

	Violations []string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

func (r *Result) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// playerState is the live view a player thread fills in.
type playerState struct {
	h        *core.Handle
	path     string
	obtained int
	lost     int
	done     bool
	closeAt  sim.Time // nonzero: hang up at this time instead of finishing
	closed   bool
	crashAt  sim.Time // nonzero: die without closing (client crash)
	silentAt sim.Time // nonzero: stop consuming but leave the session open
	pause1st bool     // pause the session right before going silent
	stormAt  sim.Time // nonzero: fire stormN seeks at this time
	stormN   int
	scatter  bool // storm seeks scrub across the title instead of no-oping
}

// Run executes one scenario to completion and checks its invariants.
func Run(sc Scenario) *Result {
	res := &Result{Scenario: sc}
	if sc.Streams < 1 {
		res.violate("scenario has no streams")
		return res
	}
	if sc.Cluster > 0 {
		runCluster(sc, res)
		return res
	}

	dur := sc.MovieDur
	if dur == 0 {
		dur = movieDur
	}
	paths := make([]string, sc.Streams)
	infos := make([]*media.StreamInfo, sc.Streams)
	var movies []lab.Movie
	for i := range paths {
		if sc.Share || sc.Multicast {
			paths[i] = "/c00"
			infos[i] = infos[0]
			if i == 0 {
				infos[0] = media.MPEG1().Generate(paths[0], dur)
				movies = append(movies, lab.Movie{Path: paths[0], Info: infos[0]})
			}
			continue
		}
		paths[i] = fmt.Sprintf("/c%02d", i)
		infos[i] = media.MPEG1().Generate(paths[i], dur)
		movies = append(movies, lab.Movie{Path: paths[i], Info: infos[i]})
	}

	players := make([]*playerState, sc.Streams)
	for i := range players {
		players[i] = &playerState{path: paths[i]}
	}
	if sc.LeaderCloseAt > 0 {
		players[0].closeAt = sc.LeaderCloseAt
	}
	players[0].crashAt = sc.CrashAt
	players[0].silentAt = sc.GoSilentAt
	players[0].pause1st = sc.PauseFirst
	players[0].stormAt, players[0].stormN = sc.StormAt, sc.SeekStorm
	players[0].scatter = sc.StormScatter

	var model *disk.FaultModel
	var serverStart sim.Time
	cfg := core.Config{
		Interval:     interval,
		InitialDelay: initialDelay,
		BufferBudget: 64 << 20,
		// The 2 s delay enables whole-extent (256 KB) reads, so even a
		// fully poisoned file yields only a handful of hard failures;
		// two of them while already degraded is conclusive at this
		// scale, where the default (4) lets a short movie run out of
		// region before the ladder finishes.
		// The member ladder gets the same treatment: a 6 s movie stops
		// issuing reads a couple of seconds after the mid-play kill, so
		// the detector must pronounce a member dead within a few cycles
		// of its first errors or never get the chance. The watchdog runs
		// at one interval instead of two: an admitted batch completes
		// within its interval, and on a parity volume every cycle a stall
		// survives is a cycle XOR reconstruction cannot serve — with two
		// back-to-back stalls the default timeout chains past the buffer
		// lead.
		Recovery: core.RecoveryPolicy{
			SuspendAfter:       2,
			MemberSuspectAfter: 2,
			MemberDeadAfter:    3,
			WatchdogTimeout:    interval,
		},
	}
	if sc.Share {
		cfg.CacheBudget = 32 << 20
	}
	if len(sc.RateLadder) > 0 {
		cfg.RateLadder = sc.RateLadder
	}
	if sc.Multicast {
		// A window wide enough that the back-to-back opens batch, and a
		// prefix budget that funds both the fan-out reservations and the
		// pins the popularity tracker earns.
		cfg.BatchWindow = time.Second
		cfg.PrefixBudget = 16 << 20
	}
	if sc.OpenFlood > 0 || sc.SeekStorm > 0 {
		cfg.MaxRequestsPerCycle = 4 // make the shed gate / deferral bite
	}
	if sc.FloodQueueCap > 0 {
		cfg.RequestQueueCap = sc.FloodQueueCap
	}
	m := lab.Build(lab.Setup{
		Seed:          sc.Seed,
		Disks:         sc.Disks,
		StripeSectors: sc.StripeSectors,
		Parity:        sc.Parity,
		DiskCylinders: sc.DiskCylinders,
		DiskHeads:     sc.DiskHeads,
		CRAS:          cfg,
		Movies:        movies,
	}, func(m *lab.Machine) {
		serverStart = m.Eng.Now()
		m.CRAS.OnStreamHealth = func(ev core.StreamHealthEvent) {
			res.Ladder = append(res.Ladder, ev)
		}
		m.CRAS.OnMemberHealth = func(ev core.MemberHealthEvent) {
			res.Members = append(res.Members, ev)
		}
		m.App("chaos.ctl", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			spawn := func(i int) {
				ps := players[i]
				info := infos[i]
				m.Kernel.NewThread(fmt.Sprintf("chaos.play%d:%s", i, ps.path), rtm.PrioRTLow, 0, func(pt *rtm.Thread) {
					playStream(m, pt, ps, info, res)
				})
			}
			open := func(i int) bool {
				h, err := m.CRAS.Open(th, infos[i], paths[i], core.OpenOptions{})
				if err != nil {
					res.violate("open %s: %v", paths[i], err)
					return false
				}
				players[i].h = h
				return true
			}
			// Open stream 0 first: the victim region is carved from its
			// actual extent map, and installing the model after the open
			// keeps the resolver's metadata reads clean even before RTOnly
			// applies. (Follower opens under Share read metadata through
			// the Unix server, which RTOnly protects.)
			if !open(0) {
				return
			}
			fcfg := sc.Faults
			fcfg.RTOnly = true
			if sc.Victim {
				ext := players[0].h.ExtentMap().Extents
				from, last := ext[1], ext[len(ext)-1]
				if len(sc.RateLadder) > 0 && len(ext) > 4 {
					// The ladder must outlast the region, not the other way
					// around: three poisoned extents burn through one rung's
					// failure budget, and the clean tail funds the recovery
					// back to full rate.
					last = ext[3]
				} else if (sc.Share || sc.Multicast) && len(ext) > 4 {
					// Leave the shared file's tail clean: the leader must
					// die over the region while followers survive past it.
					// For a multicast group the bounded region also lands
					// squarely under the pinned prefix (the file's head).
					last = ext[3]
				}
				region := disk.BadRegion{
					LBA: from.LBA, Sectors: last.LBA + int64(last.Sectors) - from.LBA,
				}
				// On a striped volume the region is the victim's share of the
				// fault disk: project the logical range through the stripe
				// mapping. A RAID-0 range lands as one contiguous run per
				// member; a parity member can carry several runs (its parity
				// units interleave), so take the spanning region. Peers'
				// files project to disjoint member runs, so the poison is
				// exclusive to the victim by construction.
				lo, hi := int64(-1), int64(-1)
				for _, f := range m.Vol.Fragments(region.LBA, int(region.Sectors)) {
					if f.Disk != sc.FaultDisk {
						continue
					}
					if lo < 0 || f.LBA < lo {
						lo = f.LBA
					}
					if end := f.LBA + int64(f.Count); end > hi {
						hi = end
					}
				}
				if lo >= 0 {
					region = disk.BadRegion{LBA: lo, Sectors: hi - lo}
				}
				fcfg.BadRegions = append(fcfg.BadRegions, region)
			}
			model = disk.NewFaultModel(m.Eng.RNG("chaos:faults"), fcfg)
			m.Vol.Disk(sc.FaultDisk).SetFaultModel(model)
			spawn(0)
			for i := 1; i < len(players); i++ {
				if (sc.Share || sc.Multicast) && sc.StaggerOpen > 0 {
					th.Sleep(sc.StaggerOpen)
				}
				if !open(i) {
					return
				}
				spawn(i)
			}
			if sc.OpenFlood > 0 {
				th.SleepUntil(serverStart + sim.Time(time.Second))
				for f := 0; f < sc.OpenFlood; f++ {
					m.Kernel.NewThread(fmt.Sprintf("chaos.flood%d", f), rtm.PrioTS, 0, func(ft *rtm.Thread) {
						h, err := m.CRAS.Open(ft, infos[0], paths[0], core.OpenOptions{})
						switch {
						case err == nil:
							res.FloodAdmitted++
							h.Close(ft)
						case errors.Is(err, core.ErrOverloaded):
							res.FloodTurnedAway++
						default:
							res.violate("flood open failed with untyped error: %v", err)
						}
					})
				}
			}
			if sc.KillAt > 0 {
				// Member death, mid-play: a whole-member bad region makes
				// every real-time read on FaultDisk error from here on. The
				// member detector — not this script — must pronounce it dead.
				th.SleepUntil(serverStart + sc.KillAt)
				g := m.Vol.Disk(sc.FaultDisk).Geometry()
				kill := disk.NewFaultModel(m.Eng.RNG("chaos:kill"), disk.FaultConfig{
					RTOnly:     true,
					BadRegions: []disk.BadRegion{{LBA: 0, Sectors: g.TotalSectors()}},
				})
				m.Vol.Disk(sc.FaultDisk).SetFaultModel(kill)
			}
			if sc.ReplaceAt > 0 {
				// A fresh spindle arrives: clear the fault and hand the
				// member to the rebuild scavenger.
				th.SleepUntil(serverStart + sc.ReplaceAt)
				m.Vol.Disk(sc.FaultDisk).SetFaultModel(nil)
				m.CRAS.ReplaceMember(sc.FaultDisk)
			}
			if sc.DrainAfter > 0 {
				th.SleepUntil(serverStart + sc.DrainAfter)
				m.CRAS.Drain(sc.DrainGrace)
			}
		})
	})

	// Drive until every player finishes, then a short cool-down so the
	// watchdog clears any stall injected near the end.
	horizon := sim.Time(dur + initialDelay + 20*time.Second)
	for ran := sim.Time(0); ran < horizon; ran += interval {
		m.Run(interval)
		if allDone(players) {
			break
		}
	}
	m.Run(3 * time.Second)
	if err := m.Err(); err != nil {
		res.violate("machine setup failed: %v", err)
		return res
	}
	if sc.ReplaceAt > 0 {
		// The rebuild scavenger works in spare interval time; give it room
		// to finish streaming the replacement back before judging the run.
		for extra := sim.Time(0); extra < sim.Time(60*time.Second); extra += interval {
			if membersAllHealthy(m.CRAS.MemberHealths()) {
				break
			}
			m.Run(interval)
		}
	}

	res.Elapsed = m.Eng.Now() - serverStart
	res.Server = m.CRAS.Stats()
	res.Disk = m.Vol.Stats()
	res.FinalMembers = m.CRAS.MemberHealths()
	res.MemberIO = m.Vol.MemberStats()
	if model != nil {
		res.Faults = model.Stats()
	}
	for _, ps := range players {
		out := PlayerOutcome{Path: ps.path, Frames: len(infos[0].Chunks), Obtained: ps.obtained, Lost: ps.lost}
		if ps.h != nil {
			out.Health = ps.h.Health()
		}
		res.Players = append(res.Players, out)
	}

	res.checkInvariants(m, players)
	return res
}

func membersAllHealthy(hs []core.MemberHealth) bool {
	for _, h := range hs {
		if h != core.MemberHealthy {
			return false
		}
	}
	return true
}

func allDone(players []*playerState) bool {
	for _, ps := range players {
		if !ps.done {
			return false
		}
	}
	return true
}

// playStream consumes one stream frame by frame, recording deliveries and
// checking the freshness invariant on every obtained chunk.
func playStream(m *lab.Machine, pt *rtm.Thread, ps *playerState, info *media.StreamInfo, res *Result) {
	defer func() { ps.done = true }()
	h := ps.h
	if err := h.Start(pt); err != nil {
		res.violate("%s: start: %v", ps.path, err)
		return
	}
	for i := range info.Chunks {
		if ps.crashAt > 0 && m.Kernel.Now() >= ps.crashAt {
			// The client dies without closing: the kernel reclaims its
			// ports and the server must find out via dead-name.
			h.Crash()
			return
		}
		if ps.silentAt > 0 && m.Kernel.Now() >= ps.silentAt {
			// The client stops consuming and renewing but leaves the
			// session open; reclaiming it is the lease reaper's job. With
			// pause1st it freezes the frame on its way out — the paused
			// session holds pinned buffers and a paused admission slot, and
			// must be reaped through the very same path.
			if ps.pause1st {
				if err := h.Pause(pt); err != nil {
					res.violate("%s: pause before going silent: %v", ps.path, err)
				}
			}
			return
		}
		if ps.stormN > 0 && m.Kernel.Now() >= ps.stormAt {
			n := ps.stormN
			ps.stormN = 0
			for k := 0; k < n; k++ {
				target := h.LogicalNow()
				if ps.scatter {
					// A scrubbing viewer: hop across the title, every landing
					// a real re-admission. The frames it scrubs past are its
					// own to lose; peers must not notice.
					target = info.TotalDuration() * sim.Time(k%8) / 8
				}
				if err := h.Seek(pt, target); err != nil {
					res.violate("%s: seek %d of storm refused: %v", ps.path, k, err)
					return
				}
			}
		}
		if ps.closeAt > 0 && m.Kernel.Now() >= ps.closeAt {
			// Scenario says hang up mid-movie (a leader quitting under its
			// followers); the frames never played are not losses.
			if err := h.Close(pt); err != nil {
				res.violate("%s: close: %v", ps.path, err)
			}
			ps.closed = true
			return
		}
		c := info.Chunks[i]
		due := h.ClockStartsAt(c.Timestamp)
		if due < 0 {
			// Clock frozen: the stream was suspended or stopped. The frame
			// will never come due; count it lost and move on at the frame
			// cadence rather than spinning.
			ps.lost++
			pt.Sleep(c.Duration)
			continue
		}
		if m.Kernel.Now() < due {
			pt.SleepUntil(due)
		}
		limit := due + playerGiveUp*c.Duration
		for {
			if got, ok := h.Get(c.Timestamp); ok {
				// Invariant: the buffer never hands out an expired chunk —
				// whatever Get returns must cover the requested time.
				if got.Timestamp > c.Timestamp || c.Timestamp >= got.Timestamp+got.Duration {
					res.violate("%s: frame %d: expired chunk delivered: asked t=%v, got [%v,%v)",
						ps.path, i, c.Timestamp, got.Timestamp, got.Timestamp+got.Duration)
				}
				ps.obtained++
				break
			}
			if m.Kernel.Now() >= limit {
				ps.lost++
				break
			}
			pt.Sleep(2 * time.Millisecond)
		}
	}
	// A well-behaved client hangs up when the movie ends. The close may
	// lose the race against a ladder eviction or the drain deadline — that
	// duplicate-close error is not the player's problem.
	h.Close(pt)
}

// checkInvariants fills Result.Violations from the campaign's assertions.
func (r *Result) checkInvariants(m *lab.Machine, players []*playerState) {
	// Every player ran to completion: a wedged scheduler starves the
	// buffers and the players' bounded waits would still finish, so the
	// direct wedge signal is a player that never exited its loop.
	for _, ps := range players {
		if !ps.done {
			r.violate("%s: player never finished (scheduler wedged?)", ps.path)
		}
	}

	// The periodic scheduler kept its cadence for the whole run — or, when
	// a drain was scripted, until the drain shut it down.
	minCycles := int(r.Elapsed/interval) - 3
	if r.Scenario.DrainAfter > 0 {
		if byDrain := int((r.Scenario.DrainAfter+r.Scenario.DrainGrace)/interval) - 1; byDrain < minCycles {
			minCycles = byDrain
		}
	}
	if r.Server.Cycles < minCycles {
		r.violate("scheduler wedged: %d cycles over %v (want >= %d)", r.Server.Cycles, r.Elapsed, minCycles)
	}

	// No request may be left stalled: the cool-down gave the watchdog more
	// than its timeout to clear any late injection.
	if m.Vol.Stalled() {
		r.violate("disk left wedged on a stalled request")
	}
	if r.Faults.Stalls > 0 && r.Server.WatchdogCancels == 0 {
		r.violate("%d stalls injected but the watchdog never fired", r.Faults.Stalls)
	}

	// Striped-volume containment: whatever happened on the fault member,
	// every healthy member's real-time queue must have kept moving — one
	// sick spindle may not wedge the others. The per-member stats name
	// exactly which member misbehaved.
	if r.Scenario.Disks > 1 {
		for i, ds := range r.MemberIO {
			if ds.Served[0]+ds.Served[1] == 0 {
				r.violate("member disk %d served no requests on a %d-disk volume",
					i, m.Vol.NumDisks())
			}
			if i != r.Scenario.FaultDisk && m.Vol.Disk(i).Stalled() {
				r.violate("healthy member disk %d wedged by faults on member %d",
					i, r.Scenario.FaultDisk)
			}
		}
	}

	r.checkParity(m)

	if r.Scenario.Victim && !r.Scenario.Parity && len(r.Scenario.RateLadder) == 0 {
		victim := r.Players[0]
		if victim.Health == core.Healthy {
			r.violate("victim stream still healthy over a persistent bad region")
		}
		for _, p := range r.Players[1:] {
			// Under Share or Multicast the peers view the victim's own
			// poisoned file, so losing its bad region is their expected
			// fate too.
			if p.Lost != 0 && !r.Scenario.Share && !r.Scenario.Multicast {
				r.violate("%s: healthy peer lost %d frames while the victim degraded", p.Path, p.Lost)
			}
		}
		if r.Server.StreamsDegraded == 0 {
			r.violate("victim never entered Degraded")
		}
	}

	if r.Scenario.Share {
		// The followers must actually have ridden the cache...
		if r.Server.CacheAttached == 0 {
			r.violate("shared-movie scenario attached no cache followers")
		}
		// ...and must have come off it the contractual way.
		if r.Scenario.Victim && r.Server.CacheFallbacks == 0 {
			r.violate("leader failed over a bad region but no follower fell back to disk")
		}
		if r.Scenario.LeaderCloseAt > 0 {
			if !players[0].closed {
				r.violate("leader never closed at %v as scripted", r.Scenario.LeaderCloseAt)
			}
			if r.Server.CachePromotions == 0 && r.Server.CacheFallbacks == 0 {
				r.violate("leader closed mid-overlap but no follower was promoted or fell back")
			}
		}
	}

	r.checkVCR(m, players)

	for i, p := range r.Players {
		if r.Scenario.Victim && i == 0 && !r.Scenario.Parity {
			continue // the victim is expected to lose its poisoned range
		}
		if r.Scenario.misbehaves() && i == 0 {
			continue // the misbehaver pays its own price; peers are checked
		}
		if p.Obtained == 0 {
			r.violate("%s: no frames delivered at all", p.Path)
		}
		if r.Scenario.ZeroLoss && p.Lost != 0 {
			r.violate("%s: lost %d frames in a zero-loss scenario", p.Path, p.Lost)
		}
		if r.Scenario.DrainAfter > 0 {
			continue // frames past the drain deadline are forfeit by design
		}
		sharedVictim := (r.Scenario.Share || r.Scenario.Multicast) && r.Scenario.Victim
		if p.Lost > p.Frames/2 && !sharedVictim {
			r.violate("%s: lost %d/%d frames — server effectively down", p.Path, p.Lost, p.Frames)
		}
	}

	r.checkMulticast()
	r.checkMisbehavior(m)
}

// checkVCR asserts the interactive-viewer contracts: a scrubbing storm
// costs only its issuer, a paused-then-silent session is reaped with its
// pins, and over a bad region the delivered-rate ladder steps down instead
// of suspending and recovers once past it.
func (r *Result) checkVCR(m *lab.Machine, players []*playerState) {
	sc := r.Scenario
	if sc.StormScatter && sc.SeekStorm > 0 {
		if r.Server.Seeks < sc.SeekStorm {
			r.violate("scrub storm of %d but the server handled only %d seeks",
				sc.SeekStorm, r.Server.Seeks)
		}
		// The scrubber pays for its own scrubbing; the peers' zero frames
		// lost is the ZeroLoss assertion below. The issuer must still end
		// the run a live, healthy session — scrubbing is use, not abuse.
		if h := players[0].h; h != nil && h.Health() != core.Healthy {
			r.violate("scrubbing viewer ended %v; repositioning must not walk the ladder", h.Health())
		}
	}
	if sc.PauseFirst {
		if r.Server.Pauses == 0 {
			r.violate("pause-then-silent scenario recorded no pause")
		}
		if r.Server.Resumes != 0 {
			r.violate("nobody resumed, yet Resumes = %d", r.Server.Resumes)
		}
		// The reaped pause must have returned everything: with every player
		// done (closed or evicted), no session — and none of the paused
		// session's pinned memory or admission capacity — may linger.
		if n := m.CRAS.ActiveStreams(); n != 0 {
			r.violate("%d sessions still live after the paused client was reaped", n)
		}
		if sc.Share && r.Server.CachePromotions == 0 && r.Server.CacheFallbacks == 0 {
			r.violate("paused leader starved its follower: no promotion and no disk fallback")
		}
	}
	if len(sc.RateLadder) > 0 {
		if r.Server.RateStepDowns == 0 {
			r.violate("bad region under a rate ladder produced no step-down")
		}
		if r.Server.StreamsSuspended != 0 {
			r.violate("%d streams suspended; the ladder must absorb this region", r.Server.StreamsSuspended)
		}
		if r.Server.RateStepUps == 0 {
			r.violate("stream never recovered a rung after the region ended")
		}
		if h := players[0].h; h != nil {
			if h.Health() != core.Healthy {
				r.violate("victim ended %v under the ladder; want recovery to Healthy", h.Health())
			}
			if dr := h.DeliveredRate(); dr != 1 {
				r.violate("victim ended at delivered rate %v; want full-rate recovery", dr)
			}
		}
	}
}

// checkMulticast asserts the batching contract: the premiere workload really
// coalesced into a fan-out group, and the scripted disturbance came off the
// group the contractual way — promotion for a dying feed, disk fallback (and
// a re-validated prefix) for a fault under the shared supply, a bounded
// group census under an open flood.
func (r *Result) checkMulticast() {
	sc := r.Scenario
	if !sc.Multicast {
		return
	}
	if r.Server.MulticastGroups == 0 {
		r.violate("multicast scenario formed no group")
	}
	if r.Server.MulticastAttached == 0 {
		r.violate("multicast scenario attached no fan-out member")
	}
	if sc.CrashAt > 0 && r.Server.MulticastPromotions == 0 {
		r.violate("feed died at %v but no member was promoted", sc.CrashAt)
	}
	if sc.Victim {
		if r.Server.MulticastFallbacks == 0 {
			r.violate("fault under the group but no member fell back to disk")
		}
		if r.Server.PrefixPaths == 0 {
			r.violate("hot path never qualified for a pinned prefix")
		}
		if r.Server.PrefixTruncated == 0 {
			r.violate("producer lost chunks under the prefix head but the pin was never re-validated (truncated)")
		}
	}
	if sc.OpenFlood > 0 {
		// The flood hammers the one hot path; however many one-shot clients
		// trickle through admission, they must batch onto the playing title's
		// group generations rather than mint a group per open.
		if bound := 2 + r.FloodAdmitted/2; r.Server.MulticastGroups > bound {
			r.violate("open flood minted %d multicast groups (%d admitted; want <= %d)",
				r.Server.MulticastGroups, r.FloodAdmitted, bound)
		}
	}
}

// checkParity asserts the recovery contract of a rotating-parity volume:
// member faults are absorbed below the streams — reconstruction, not
// degradation — and a killed member comes all the way back.
func (r *Result) checkParity(m *lab.Machine) {
	sc := r.Scenario
	if !sc.Parity {
		return
	}
	// Recovery, not confinement: every stream ends Healthy with zero lost
	// frames, the old victim included — its poisoned member reads must have
	// been served from the survivors.
	for _, p := range r.Players {
		if p.Lost != 0 {
			r.violate("%s: lost %d frames on a parity volume (reconstruction must absorb member faults)",
				p.Path, p.Lost)
		}
		if p.Health != core.Healthy {
			r.violate("%s: ended %v on a parity volume; member faults must not walk streams down the ladder",
				p.Path, p.Health)
		}
	}
	if sc.Victim {
		if r.Server.ParityReconstructions == 0 {
			r.violate("victim's bad region never exercised XOR reconstruction")
		}
		if r.Server.StreamsDegraded != 0 {
			r.violate("%d streams degraded over a recoverable member fault", r.Server.StreamsDegraded)
		}
	}
	if sc.KillAt > 0 {
		if r.Server.MembersDead != 1 {
			r.violate("member %d was killed but MembersDead = %d", sc.FaultDisk, r.Server.MembersDead)
		}
		if r.Server.DegradedReads == 0 {
			r.violate("member died but no read was served degraded")
		}
		died := false
		for _, ev := range r.Members {
			if ev.Member == sc.FaultDisk && ev.To == core.MemberDead {
				died = true
			}
			if ev.Member != sc.FaultDisk && (ev.To == core.MemberDead || ev.To == core.MemberSuspect) {
				r.violate("healthy member %d walked the ladder (%v -> %v): the fault was on member %d",
					ev.Member, ev.From, ev.To, sc.FaultDisk)
			}
		}
		if !died {
			r.violate("member %d never pronounced Dead by the detector", sc.FaultDisk)
		}
	}
	if sc.ReplaceAt > 0 {
		if r.Server.RebuildUnits == 0 {
			r.violate("replacement attached but no stripe row was rebuilt")
		}
		if !membersAllHealthy(r.FinalMembers) {
			r.violate("members ended %v; the rebuild must return every member to Healthy", r.FinalMembers)
		}
		if row := m.Vol.VerifyParity(); row != -1 {
			r.violate("parity inconsistent at stripe row %d after rebuild", row)
		}
	}
}

// leaseTTL is the default the campaign's servers run with (8*T).
const leaseTTL = 8 * interval

// checkMisbehavior asserts the control-plane hardening contract: a
// misbehaving client is contained and billed, and only itself.
func (r *Result) checkMisbehavior(m *lab.Machine) {
	sc := r.Scenario
	if sc.CrashAt > 0 {
		if r.Server.SessionsReaped == 0 {
			r.violate("client crashed at %v but no session was reaped", sc.CrashAt)
		}
		if r.Server.LeasesExpired != 0 {
			r.violate("crash was reaped via lease expiry (%d), not the dead-name fast path",
				r.Server.LeasesExpired)
		}
	}
	if sc.GoSilentAt > 0 {
		if r.Server.LeasesExpired == 0 || r.Server.SessionsReaped == 0 {
			r.violate("client went silent at %v but LeasesExpired = %d, SessionsReaped = %d",
				sc.GoSilentAt, r.Server.LeasesExpired, r.Server.SessionsReaped)
		}
		// Reclamation within the TTL: the eviction lands on the first cycle
		// boundary after the lease ran out (one interval of scan slack).
		reapBy := sc.GoSilentAt + leaseTTL + 2*interval
		reaped := false
		for _, ev := range r.Ladder {
			if ev.Path == r.Players[0].Path && ev.To == core.Evicted {
				reaped = true
				if at := sim.Time(ev.Cycle) * interval; at > reapBy {
					r.violate("silent client reaped at cycle %d (~%v), after the TTL bound %v",
						ev.Cycle, at, reapBy)
				}
			}
		}
		if !reaped {
			r.violate("silent client never evicted")
		}
	}
	if sc.SeekStorm > 0 {
		// The storm is paced, never refused, and the stream survives it.
		if r.Server.RequestsShed != 0 {
			r.violate("RequestsShed = %d; session ops must be deferred, not shed", r.Server.RequestsShed)
		}
		if r.Server.SessionsReaped != 0 {
			r.violate("storm client reaped mid-storm: a client blocked in an RPC is alive")
		}
	}
	if sc.OpenFlood > 0 {
		if got := r.FloodAdmitted + r.FloodTurnedAway; got != sc.OpenFlood {
			r.violate("flood outcomes %d (admitted %d + turned away %d) != %d launched",
				got, r.FloodAdmitted, r.FloodTurnedAway, sc.OpenFlood)
		}
		if r.FloodAdmitted == 0 || r.FloodAdmitted > 8 {
			r.violate("flood admitted %d of %d; want a trickle bounded by the budget",
				r.FloodAdmitted, sc.OpenFlood)
		}
		if r.Server.RequestsShed == 0 {
			r.violate("open flood produced no shed requests")
		}
		if r.Server.SendsRejected == 0 {
			r.violate("open flood never hit the bounded request queue")
		}
	}
	if sc.DrainAfter > 0 {
		if !m.CRAS.Stopped() {
			r.violate("server still running after drain")
		}
		if n := m.CRAS.ActiveStreams(); n != 0 {
			r.violate("%d streams leaked past the drain deadline", n)
		}
		if r.Server.DrainEvictions == 0 {
			r.violate("no drain evictions recorded for clients that never hang up")
		}
	}
}

// Campaign builds the full scenario sweep: every fault kind crossed with
// 1, 2 and 4 concurrent streams, scenario seeds derived deterministically
// from the base seed (so `-seed N` replays the exact campaign).
func Campaign(base int64) []Scenario {
	kinds := []struct {
		name     string
		faults   disk.FaultConfig
		victim   bool
		zeroLoss bool
	}{
		{"baseline", disk.FaultConfig{}, false, true},
		{"transient-light", disk.FaultConfig{TransientProb: 0.02}, false, true},
		{"transient-heavy", disk.FaultConfig{TransientProb: 0.15}, false, false},
		{"latency-mild", disk.FaultConfig{
			LatencyProb: 0.5, LatencyMin: time.Millisecond, LatencyMax: 10 * time.Millisecond,
		}, false, true},
		{"latency-spikes", disk.FaultConfig{
			LatencyProb: 0.1, LatencyMin: 30 * time.Millisecond, LatencyMax: 80 * time.Millisecond,
		}, false, false},
		{"stall-once", disk.FaultConfig{StallProb: 1, MaxStalls: 1}, false, false},
		{"stall-repeat", disk.FaultConfig{StallProb: 0.3, MaxStalls: 3}, false, false},
		{"bad-region-victim", disk.FaultConfig{}, true, false},
		{"victim-plus-transient", disk.FaultConfig{TransientProb: 0.05}, true, false},
		{"grab-bag", disk.FaultConfig{
			TransientProb: 0.05,
			LatencyProb:   0.2, LatencyMin: 5 * time.Millisecond, LatencyMax: 25 * time.Millisecond,
			StallProb: 0.1, MaxStalls: 2,
		}, false, false},
	}
	counts := []int{1, 2, 4}
	var out []Scenario
	for i, k := range kinds {
		for j, n := range counts {
			if k.victim && n == 1 {
				n = 3 // a victim needs healthy peers to endanger
			}
			out = append(out, Scenario{
				Name:     fmt.Sprintf("%s/s%d", k.name, n),
				Seed:     base*1000 + int64(i*len(counts)+j),
				Streams:  n,
				Faults:   k.faults,
				Victim:   k.victim,
				ZeroLoss: k.zeroLoss,
			})
		}
	}
	// Interval-cache failure drills: a leader dying over a bad region while
	// a follower rides its buffer, and a leader hanging up mid-overlap
	// under stall injection. Both run at two streams so Quick keeps them.
	out = append(out,
		Scenario{
			Name: "cache-victim-evict/s2", Seed: base*1000 + 100,
			Streams: 2, Victim: true,
			Share: true, StaggerOpen: 500 * time.Millisecond,
		},
		Scenario{
			Name: "cache-fallback-stall/s2", Seed: base*1000 + 101,
			Streams: 2,
			Faults:  disk.FaultConfig{StallProb: 0.5, MaxStalls: 2},
			Share:   true, StaggerOpen: 2 * time.Second,
			LeaderCloseAt: 3500 * time.Millisecond,
		},
	)
	// Client-misbehavior drills: the control-plane hardening contract under
	// a dead client, a consumer that stops consuming, a seek storm, a
	// 64-client open flood, and a drain racing the fault injector. All at
	// two streams so Quick keeps them.
	out = append(out,
		Scenario{
			Name: "client-crash-midplay/s2", Seed: base*1000 + 102,
			Streams: 2, ZeroLoss: true,
			CrashAt: 3500 * time.Millisecond,
		},
		Scenario{
			Name: "client-goes-silent/s2", Seed: base*1000 + 103,
			Streams: 2, ZeroLoss: true,
			GoSilentAt: 3 * time.Second,
		},
		Scenario{
			Name: "seek-storm/s2", Seed: base*1000 + 104,
			Streams: 2, ZeroLoss: true,
			SeekStorm: 24, StormAt: 3 * time.Second,
		},
		Scenario{
			Name: "open-flood/s2", Seed: base*1000 + 105,
			Streams: 2, ZeroLoss: true,
			OpenFlood: 64, FloodQueueCap: 4,
		},
		Scenario{
			Name: "drain-under-faults/s2", Seed: base*1000 + 106,
			Streams: 2,
			Faults: disk.FaultConfig{
				TransientProb: 0.05,
				LatencyProb:   0.2, LatencyMin: 5 * time.Millisecond, LatencyMax: 25 * time.Millisecond,
				StallProb: 0.1, MaxStalls: 2,
			},
			DrainAfter: 3 * time.Second, DrainGrace: 2 * time.Second,
		},
	)
	// Interactive-viewer (VCR) drills: a scrubbing viewer hammering real
	// repositionings pays only with its own frames, a client that pauses
	// and then falls silent is reaped through the standard eviction path
	// with its pins, and a bad region under the adaptive frame-rate ladder
	// steps the victim's delivered rate down instead of suspending it —
	// then recovers to full rate on the clean tail. All at two streams so
	// Quick keeps them.
	out = append(out,
		Scenario{
			Name: "seek-storm-isolation/s2", Seed: base*1000 + 116,
			Streams: 2, ZeroLoss: true,
			SeekStorm: 16, StormAt: 3 * time.Second, StormScatter: true,
		},
		Scenario{
			Name: "pause-lease-interaction/s2", Seed: base*1000 + 117,
			Streams: 2, ZeroLoss: true,
			Share: true, StaggerOpen: 500 * time.Millisecond,
			GoSilentAt: 3 * time.Second, PauseFirst: true,
		},
		Scenario{
			Name: "vcr-under-faults/s2", Seed: base*1000 + 118,
			Streams: 2, Victim: true,
			MovieDur:   16 * time.Second,
			RateLadder: []float64{1, 0.75, 0.5},
		},
	)
	// Striped-volume drills, upgraded from confinement to recovery by
	// rotating parity: a persistent bad region confined to one member of
	// four must be absorbed by XOR reconstruction — the victim stream ends
	// Healthy with zero loss instead of walking the ladder — and a stall on
	// one member must trip the watchdog and recover without costing a
	// frame. Both at two streams so Quick keeps them.
	out = append(out,
		Scenario{
			Name: "stripe-victim-1of4/s2", Seed: base*1000 + 107,
			Streams: 2, Victim: true, ZeroLoss: true,
			Disks: 4, FaultDisk: 1, Parity: true,
		},
		Scenario{
			Name: "stripe-stall-1of4/s2", Seed: base*1000 + 108,
			Streams: 2, ZeroLoss: true,
			Disks: 4, FaultDisk: 2, Parity: true,
			Faults: disk.FaultConfig{StallProb: 1, MaxStalls: 2},
		},
	)
	// Multicast batching drills: the batched-premiere contract under a
	// leader whose client dies mid-play (the earliest member must be
	// promoted and survivors lose nothing), an open flood of the hot title
	// (shedding stays honest and the group census stays bounded), and a
	// persistent bad region under the pinned prefix (members fall back to
	// disk and the poisoned pin is re-validated, never served). All at two
	// streams so Quick keeps them.
	out = append(out,
		Scenario{
			Name: "mcast-leader-crash/s2", Seed: base*1000 + 110,
			Streams: 2, ZeroLoss: true,
			Multicast: true,
			CrashAt:   3500 * time.Millisecond,
		},
		Scenario{
			Name: "mcast-open-flood/s2", Seed: base*1000 + 111,
			Streams: 2, ZeroLoss: true,
			Multicast: true,
			OpenFlood: 64, FloodQueueCap: 4,
		},
		Scenario{
			Name: "mcast-prefix-fault/s2", Seed: base*1000 + 112,
			Streams:   2,
			Multicast: true, Victim: true,
		},
	)
	// Member death and resurrection: one member of a four-disk parity
	// volume dies outright mid-play (the detector must pronounce it, not
	// the script), every admitted stream finishes with zero lost frames on
	// reconstruction, and after a replacement arrives the background
	// rebuild streams the member back to Healthy with consistent parity.
	// Small members keep the rebuild inside the run. At two streams so
	// Quick keeps it.
	out = append(out,
		Scenario{
			Name: "parity-kill-1of4/s2", Seed: base*1000 + 109,
			Streams: 2, ZeroLoss: true,
			Disks: 4, FaultDisk: 1, Parity: true,
			DiskCylinders: 64, DiskHeads: 2,
			MovieDur:  12 * time.Second,
			KillAt:    3 * time.Second,
			ReplaceAt: 8 * time.Second,
		},
	)
	// Node-level fault kinds against a sharded cluster: kill one node of
	// four mid-play (every displaced viewer resumes on a peer, the
	// multicast/cache-backed ones without losing a frame), wedge a node's
	// scheduler while its control plane keeps answering (only the heartbeat
	// ladder can see it), and roll a node through DrainNode while a second
	// node dies mid-drain. Cluster scenarios are always in Quick.
	out = append(out,
		Scenario{
			Name: "cluster-kill-1of4/n4", Seed: base*1000 + 113,
			Streams: 6, Cluster: 4, ZeroLoss: true,
			NodeKillAt: 2500 * time.Millisecond,
		},
		Scenario{
			Name: "cluster-wedge/n2", Seed: base*1000 + 114,
			Streams: 2, Cluster: 2,
			NodeWedgeAt: 2500 * time.Millisecond,
		},
		Scenario{
			Name: "cluster-drain-race/n3", Seed: base*1000 + 115,
			Streams: 4, Cluster: 3,
			NodeDrainAt: 2 * time.Second, NodeDrainGrace: 10 * time.Second,
			NodeKill2At: 2500 * time.Millisecond,
		},
	)
	return out
}

// Quick returns the CI subset: one stream count per fault kind plus every
// cluster scenario, small enough for a pull-request gate yet covering
// every fault path.
func Quick(base int64) []Scenario {
	all := Campaign(base)
	var out []Scenario
	for _, sc := range all {
		if sc.Streams == 2 || sc.Cluster > 0 {
			out = append(out, sc)
		}
	}
	return out
}
