package chaos

import (
	"reflect"
	"testing"
)

// TestQuickScenarios runs the CI subset end to end: every fault kind at two
// streams, each asserting the campaign's invariants.
func TestQuickScenarios(t *testing.T) {
	for _, sc := range Quick(1) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(sc)
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if t.Failed() {
				t.Logf("replay: go run ./cmd/craschaos -seed 1 -only '%s'", sc.Name)
			}
		})
	}
}

// TestCampaignShape pins the sweep's size and seed derivation: the
// acceptance bar is >= 20 seeded scenarios, and every scenario must carry a
// distinct (name, seed) pair so a printed failure replays exactly one run.
func TestCampaignShape(t *testing.T) {
	all := Campaign(7)
	if len(all) < 20 {
		t.Fatalf("campaign has %d scenarios, want >= 20", len(all))
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, sc := range all {
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		if seeds[sc.Seed] {
			t.Errorf("duplicate scenario seed %d (%s)", sc.Seed, sc.Name)
		}
		names[sc.Name] = true
		seeds[sc.Seed] = true
	}
	if got := Campaign(8)[0].Seed; got == all[0].Seed {
		t.Errorf("base seed does not reach scenario seeds: both bases derive %d", got)
	}
}

// TestRunIsDeterministic replays one faulty scenario twice and demands
// bit-identical results — the property that makes a printed seed a real
// repro and the whole campaign debuggable.
func TestRunIsDeterministic(t *testing.T) {
	var sc Scenario
	for _, c := range Campaign(3) {
		if c.Name == "grab-bag/s2" {
			sc = c
		}
	}
	if sc.Name == "" {
		t.Fatal("grab-bag/s2 not in campaign")
	}
	a, b := Run(sc), Run(sc)
	if a.Failed() || b.Failed() {
		t.Fatalf("scenario failed: %v / %v", a.Violations, b.Violations)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if !reflect.DeepEqual(a.Server, b.Server) {
		t.Errorf("server stats differ:\n%+v\n%+v", a.Server, b.Server)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Errorf("fault stats differ:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if !reflect.DeepEqual(a.Players, b.Players) {
		t.Errorf("player outcomes differ:\n%+v\n%+v", a.Players, b.Players)
	}
	if !reflect.DeepEqual(a.Ladder, b.Ladder) {
		t.Errorf("health ladders differ:\n%+v\n%+v", a.Ladder, b.Ladder)
	}
}
