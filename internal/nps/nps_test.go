package nps

import (
	"testing"
	"time"

	"repro/internal/rtm"
	"repro/internal/sim"
)

func testNet(seed int64) (*sim.Engine, *rtm.Kernel, *Network) {
	e := sim.NewEngine(seed)
	k := rtm.NewKernel(e)
	n := New(e, "eth0", Config{})
	return e, k, n
}

func TestConfigDefaults(t *testing.T) {
	_, _, n := testNet(1)
	cfg := n.Config()
	if cfg.BandwidthBps != 10e6/8 || cfg.MTU != 1472 || cfg.Latency != 500*time.Microsecond {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestSingleSendDelivers(t *testing.T) {
	e, k, n := testNet(1)
	dst := k.NewPort("rx")
	ch, err := n.NewChannel("v", 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	k.NewThread("rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		got = dst.Receive(th).(Packet)
	})
	k.NewThread("tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		if err := ch.Send(th, 1000, "hello"); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	e.Run()
	if got.Tag != "hello" || got.Bytes != 1000 {
		t.Fatalf("packet = %+v", got)
	}
	// Wire time for 1000+42 bytes at 1.25 MB/s is ~834µs, plus 500µs
	// latency.
	want := sim.Time(float64(1042)/1.25e6*1e9) + 500*time.Microsecond
	if diff := got.Arrived - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("arrival at %v, want ~%v", got.Arrived, want)
	}
}

func TestLargeSendFragments(t *testing.T) {
	e, k, n := testNet(1)
	dst := k.NewPort("rx")
	ch, _ := n.NewChannel("v", 0, dst)
	delivered := 0
	k.NewThread("rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		dst.Receive(th)
		delivered++
	})
	k.NewThread("tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		ch.Send(th, 6000, nil) // 5 frames at MTU 1472
	})
	e.Run()
	if delivered != 1 {
		t.Fatalf("one Send should deliver one Packet, got %d", delivered)
	}
	st := n.Stats()
	if st.FramesSent[qBestEffort] != 5 {
		t.Fatalf("frames = %d, want 5", st.FramesSent[qBestEffort])
	}
	if st.BytesSent[qBestEffort] != 6000 {
		t.Fatalf("bytes = %d", st.BytesSent[qBestEffort])
	}
}

func TestReservationAdmission(t *testing.T) {
	_, k, n := testNet(1)
	dst := k.NewPort("rx")
	// 10 Mb/s link, 90% reservable = 1.125e6 B/s.
	if _, err := n.NewChannel("a", 600e3, dst); err != nil {
		t.Fatalf("first reservation refused: %v", err)
	}
	if _, err := n.NewChannel("b", 600e3, dst); err == nil {
		t.Fatal("oversubscribing reservation accepted")
	}
	ch, err := n.NewChannel("c", 400e3, dst)
	if err != nil {
		t.Fatalf("fitting reservation refused: %v", err)
	}
	ch.Close()
	if _, err := n.NewChannel("d", 500e3, dst); err != nil {
		t.Fatalf("reservation after close refused: %v", err)
	}
	if _, err := n.NewChannel("bad", -1, dst); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestTokenBucketPacesSender(t *testing.T) {
	e, k, n := testNet(1)
	dst := k.NewPort("rx")
	ch, _ := n.NewChannel("v", 100e3, dst) // 100 KB/s
	k.NewThread("rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for i := 0; i < 20; i++ {
			dst.Receive(th)
		}
	})
	var sendDone sim.Time
	k.NewThread("tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for i := 0; i < 20; i++ {
			ch.Send(th, 50_000, i) // 1 MB total at 100 KB/s -> ~10s
		}
		sendDone = e.Now()
	})
	e.Run()
	if sendDone < 9*time.Second {
		t.Fatalf("sender finished in %v; token bucket did not pace to 100 KB/s", sendDone)
	}
	if ch.Throttled == 0 {
		t.Fatal("no throttling recorded")
	}
}

func TestReservedBypassesBestEffort(t *testing.T) {
	e, k, n := testNet(1)
	rtDst := k.NewPort("rt")
	beDst := k.NewPort("be")
	rtCh, _ := n.NewChannel("rt", 200e3, rtDst)
	beCh, _ := n.NewChannel("be", 0, beDst)

	var rtArrive, beArrive sim.Time
	k.NewThread("rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		rtArrive = rtDst.Receive(th).(Packet).Arrived
	})
	k.NewThread("rx2", rtm.PrioTS, 0, func(th *rtm.Thread) {
		beArrive = beDst.Receive(th).(Packet).Arrived
	})
	k.NewThread("be-tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		beCh.Send(th, 100_000, nil) // 68 frames of best-effort bulk
	})
	k.NewThread("rt-tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		th.Sleep(time.Millisecond) // arrive while the bulk is queued
		rtCh.Send(th, 2000, nil)
	})
	e.Run()
	if rtArrive == 0 || beArrive == 0 {
		t.Fatal("missing deliveries")
	}
	if rtArrive >= beArrive {
		t.Fatalf("reserved packet arrived at %v, after best-effort bulk at %v", rtArrive, beArrive)
	}
}

func TestSendOnClosedChannelFails(t *testing.T) {
	e, k, n := testNet(1)
	dst := k.NewPort("rx")
	ch, _ := n.NewChannel("v", 0, dst)
	ch.Close()
	ch.Close() // idempotent
	k.NewThread("tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		if err := ch.Send(th, 100, nil); err == nil {
			t.Error("send on closed channel succeeded")
		}
		if err := ch.Send(th, 0, nil); err == nil {
			t.Error("empty send succeeded")
		}
	})
	e.Run()
}

func TestLinkSerializesAndAccountsBusyTime(t *testing.T) {
	e, k, n := testNet(1)
	dst := k.NewPort("rx")
	a, _ := n.NewChannel("a", 0, dst)
	b, _ := n.NewChannel("b", 0, dst)
	k.NewThread("rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		dst.Receive(th)
		dst.Receive(th)
	})
	k.NewThread("tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		a.Send(th, 1472, nil)
		b.Send(th, 1472, nil)
	})
	e.Run()
	st := n.Stats()
	wantBusy := sim.Time(float64(2*(1472+42)) / 1.25e6 * 1e9)
	if diff := st.BusyTime - wantBusy; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("busy = %v, want ~%v", st.BusyTime, wantBusy)
	}
}

func TestBackpressureBoundsInflight(t *testing.T) {
	e, k, n := testNet(1)
	dst := k.NewPort("rx")
	ch, _ := n.NewChannel("bulk", 0, dst)
	k.NewThread("rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for {
			dst.Receive(th)
		}
	})
	sent := 0
	k.NewThread("tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for i := 0; i < 100; i++ {
			ch.Send(th, 64_000, i)
			sent++
		}
	})
	e.RunUntil(2 * time.Second)
	// 2s at 1.25 MB/s moves ~2.4 MB = ~39 sends; without backpressure all
	// 100 would have been queued instantly at t=0.
	if sent > 50 {
		t.Fatalf("sender queued %d sends in 2s; backpressure not applied", sent)
	}
	if ch.Throttled == 0 {
		t.Fatal("no buffer throttling recorded")
	}
}

// A stream at its reserved rate arrives with bounded jitter even when a
// best-effort bulk transfer saturates the link — NPS's reason to exist.
func TestReservedJitterBoundedUnderBulkLoad(t *testing.T) {
	e, k, n := testNet(1)
	videoDst := k.NewPort("video")
	bulkDst := k.NewPort("bulk")
	video, _ := n.NewChannel("video", 187500, videoDst)
	bulk, _ := n.NewChannel("bulk", 0, bulkDst)

	k.NewThread("bulk-rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for {
			bulkDst.Receive(th)
		}
	})
	k.NewThread("bulk-tx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for {
			bulk.Send(th, 64_000, nil)
		}
	})
	var worst sim.Time
	k.NewThread("video-rx", rtm.PrioTS, 0, func(th *rtm.Thread) {
		for i := 0; i < 90; i++ {
			p := videoDst.Receive(th).(Packet)
			if lat := p.Arrived - p.SentAt; lat > worst {
				worst = lat
			}
		}
	})
	k.NewThread("video-tx", rtm.PrioRT, 0, func(th *rtm.Thread) {
		for i := 0; i < 90; i++ {
			video.Send(th, 6250, i) // one 30fps frame
			th.Sleep(sim.Time(time.Second) / 30)
		}
	})
	e.RunUntil(5 * time.Second)
	// A 6250-byte frame is 5 wire frames (~21ms at 1.25MB/s... actually
	// ~5.3ms) plus at most one best-effort frame ahead per wire frame.
	if worst > 25*time.Millisecond {
		t.Fatalf("reserved stream saw %v latency under bulk load", worst)
	}
	if worst == 0 {
		t.Fatal("no video packets measured")
	}
}
