// Package nps models NPS, the user-level real-time network engine the
// paper's QtPlay application uses to ship streams from the storage machine
// to the playback machine (Figure 11; Nakajima's "NPS: User-Level
// Real-Time Network Engine on Real-Time Mach").
//
// The model is a shared link — 10 Mb/s Ethernet on the paper's hardware —
// that serializes frame transmissions, plus rate-reserved channels on top:
//
//   - A channel reserves a data rate at creation; channel admission keeps
//     the sum of reservations under the link's capacity, mirroring CRAS's
//     disk admission.
//   - Reserved (real-time) channels are token-bucket paced to their rate
//     and their frames bypass best-effort traffic at the link, the same
//     two-queue structure the modified disk driver uses.
//   - Best-effort channels take whatever is left.
//
// Delivery posts a Packet to the receiver's port on the destination
// kernel; with one engine hosting several kernels, this is how the two
// machines of Figure 11 talk.
package nps

import (
	"fmt"
	"time"

	"repro/internal/rtm"
	"repro/internal/sim"
)

// Config describes a link.
type Config struct {
	BandwidthBps float64  // payload bandwidth, bytes/second (10 Mb/s Ethernet ~ 1.25e6 minus framing)
	Latency      sim.Time // propagation + interrupt delivery
	MTU          int      // payload bytes per frame; default 1472
	HeaderBytes  int      // per-frame overhead on the wire; default 42
	// ReservableFraction caps total reservations; default 0.9.
	ReservableFraction float64
}

func (c *Config) fillDefaults() {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 10e6 / 8
	}
	if c.MTU == 0 {
		c.MTU = 1472
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 42
	}
	if c.ReservableFraction == 0 {
		c.ReservableFraction = 0.9
	}
	if c.Latency == 0 {
		c.Latency = 500 * time.Microsecond
	}
}

// Packet is what a receiver's port gets per application send (one message
// per Send call, delivered when its last wire frame arrives).
type Packet struct {
	Channel  string
	Tag      any
	Bytes    int
	SentAt   sim.Time // when Send was called
	QueuedAt sim.Time // when the last frame entered the link queue
	Arrived  sim.Time // when delivery fired
}

// Stats aggregates link activity.
type Stats struct {
	FramesSent  [2]int64 // [best-effort, reserved]
	BytesSent   [2]int64 // payload bytes
	BusyTime    sim.Time
	MaxQueueLen [2]int
	TotalQueue  sim.Time // frame queue waits
}

type frame struct {
	ch       *Channel
	bytes    int // payload bytes in this frame
	last     bool
	pkt      *Packet
	queuedAt sim.Time
}

// Network is one shared link.
type Network struct {
	eng  *sim.Engine
	name string
	cfg  Config

	queues   [2][]*frame // [bestEffort, reserved]
	busy     bool
	reserved float64

	stats Stats
}

const (
	qBestEffort = 0
	qReserved   = 1
)

// New creates a link.
func New(eng *sim.Engine, name string, cfg Config) *Network {
	cfg.fillDefaults()
	return &Network{eng: eng, name: name, cfg: cfg}
}

// Config returns the effective link configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a copy of the link statistics.
func (n *Network) Stats() Stats { return n.stats }

// Reserved returns the sum of active reservations in bytes/second.
func (n *Network) Reserved() float64 { return n.reserved }

// Channel is one flow across the link.
type Channel struct {
	net  *Network
	name string
	dst  *rtm.Port

	reserved float64 // bytes/second; 0 = best-effort
	tokens   float64
	burst    float64
	refilled sim.Time

	// Socket-buffer backpressure: Send blocks while this many payload
	// bytes are queued on the link for the channel.
	bufCap   int
	inflight int
	waiters  *sim.Waiter

	// Stats.
	PacketsSent int64
	BytesQueued int64
	Throttled   sim.Time // time senders spent waiting for tokens or buffer
	closed      bool
}

// NewChannel opens a channel delivering to dst. A non-zero reservation
// makes it a real-time channel: admission-checked, token-paced, and served
// ahead of best-effort traffic.
func (n *Network) NewChannel(name string, reservedBps float64, dst *rtm.Port) (*Channel, error) {
	if reservedBps < 0 {
		return nil, fmt.Errorf("nps: negative reservation")
	}
	if reservedBps > 0 &&
		n.reserved+reservedBps > n.cfg.BandwidthBps*n.cfg.ReservableFraction {
		return nil, fmt.Errorf("nps: reservation %.0f B/s refused: %.0f of %.0f B/s already reserved",
			reservedBps, n.reserved, n.cfg.BandwidthBps*n.cfg.ReservableFraction)
	}
	n.reserved += reservedBps
	ch := &Channel{
		net: n, name: name, dst: dst, reserved: reservedBps,
		refilled: n.eng.Now(),
		bufCap:   128 << 10,
		waiters:  sim.NewWaiter("nps:" + name),
	}
	if reservedBps > 0 {
		// Allow a burst of two MTUs plus 50 ms of rate.
		ch.burst = float64(2*n.cfg.MTU) + reservedBps*0.05
		ch.tokens = ch.burst
	}
	return ch, nil
}

// Close releases the channel's reservation.
func (ch *Channel) Close() {
	if !ch.closed {
		ch.net.reserved -= ch.reserved
		ch.closed = true
	}
}

// Name returns the channel name.
func (ch *Channel) Name() string { return ch.name }

// Send transmits a payload. For reserved channels the calling thread is
// paced by the token bucket (this is how NPS holds a session to its rate);
// the call returns once every wire frame is queued on the link. Delivery
// of the Packet to the destination port happens when the last frame
// arrives.
func (ch *Channel) Send(th *rtm.Thread, bytes int, tag any) error {
	if ch.closed {
		return fmt.Errorf("nps: send on closed channel %s", ch.name)
	}
	if bytes <= 0 {
		return fmt.Errorf("nps: empty send")
	}
	n := ch.net
	if ch.reserved > 0 {
		ch.refill()
		need := float64(bytes)
		if ch.tokens < need {
			wait := sim.Time((need - ch.tokens) / ch.reserved * 1e9)
			ch.Throttled += wait
			th.Sleep(wait)
			ch.refill()
		}
		ch.tokens -= need
	}
	// Socket-buffer backpressure: block while the channel has a full
	// buffer's worth of frames queued on the link.
	for ch.inflight+bytes > ch.bufCap && ch.inflight > 0 {
		before := n.eng.Now()
		ch.waiters.Wait(th.Proc())
		ch.Throttled += n.eng.Now() - before
	}
	ch.inflight += bytes
	pkt := &Packet{Channel: ch.name, Tag: tag, Bytes: bytes, SentAt: n.eng.Now()}
	remaining := bytes
	for remaining > 0 {
		sz := remaining
		if sz > n.cfg.MTU {
			sz = n.cfg.MTU
		}
		remaining -= sz
		ch.enqueue(&frame{ch: ch, bytes: sz, last: remaining == 0, pkt: pkt})
	}
	pkt.QueuedAt = n.eng.Now()
	ch.PacketsSent++
	ch.BytesQueued += int64(bytes)
	return nil
}

func (ch *Channel) refill() {
	now := ch.net.eng.Now()
	ch.tokens += ch.reserved * (now - ch.refilled).Seconds()
	if ch.tokens > ch.burst {
		ch.tokens = ch.burst
	}
	ch.refilled = now
}

func (ch *Channel) enqueue(f *frame) {
	n := ch.net
	q := qBestEffort
	if ch.reserved > 0 {
		q = qReserved
	}
	f.queuedAt = n.eng.Now()
	n.queues[q] = append(n.queues[q], f)
	if len(n.queues[q]) > n.stats.MaxQueueLen[q] {
		n.stats.MaxQueueLen[q] = len(n.queues[q])
	}
	if !n.busy {
		n.transmitNext()
	}
}

func (n *Network) transmitNext() {
	var f *frame
	var q int
	for _, q = range []int{qReserved, qBestEffort} {
		if len(n.queues[q]) > 0 {
			f = n.queues[q][0]
			n.queues[q] = n.queues[q][1:]
			break
		}
	}
	if f == nil {
		return
	}
	n.busy = true
	n.stats.TotalQueue += n.eng.Now() - f.queuedAt
	wire := float64(f.bytes + n.cfg.HeaderBytes)
	txTime := sim.Time(wire / n.cfg.BandwidthBps * 1e9)
	n.stats.BusyTime += txTime
	n.stats.FramesSent[q]++
	n.stats.BytesSent[q] += int64(f.bytes)
	n.eng.After(txTime, func() {
		f.ch.inflight -= f.bytes
		f.ch.waiters.WakeAll()
		if f.last {
			pkt := *f.pkt
			n.eng.After(n.cfg.Latency, func() {
				pkt.Arrived = n.eng.Now()
				f.ch.dst.Send(pkt)
			})
		}
		n.busy = false
		n.transmitNext()
	})
}
