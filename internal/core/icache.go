package core

import (
	"fmt"

	"repro/internal/sim"
)

// Interval caching (after Jayarekha & Nair): when a stream opens a path an
// active stream is already playing, the pair's temporal gap is an interval
// of media the leader has played and the follower has not. Instead of
// discarding the leader's chunks at the time-driven rule, the server pins
// them in a per-path cache until the follower has consumed them, so the
// follower's prefetch cycles are served from RAM and charge the admission
// test buffer bytes but zero disk operations.
//
// The one part of a follower's stream the cache can never supply is the
// prefix the leader consumed before the follower arrived — those chunks
// were discarded before any interval existed. The follower fetches that
// prefix (chunks below cacheFrom) from the real-time disk queue like any
// stream, riding the admission slack, and is cache-served from cacheFrom
// on. A follower that opens while the leader's buffer still holds chunk 0
// (gap smaller than the buffer window) never touches the disk at all.
//
// Fallback is one-way and within one interval T: on a cache miss at a
// chunk the leader should have supplied (leader closed, evicted, suspended,
// or the pin budget refused the chunk), the follower reverts to plain disk
// fetching at its stamp point during the same scheduler cycle, so the
// next interval's batch already contains its reads. Already-stamped chunks
// stay in its buffer; the time-driven discard rule still guards Get, so an
// expired chunk is never delivered across the switch.

// pathCache is the per-path pin set: one leader producing chunks, the
// followers consuming them oldest-first, and the pinned interval between
// the leader's discard horizon and the slowest follower's.
type pathCache struct {
	path      string
	leader    *stream
	followers []*stream // open order: descending logical clock
	pins      []BufferedChunk
	bytes     int64 // pinned bytes in this path
	createdAt int   // scheduler cycle, for deterministic eviction ties
}

// pinSearch is sort.Search specialized to the pin set: the first index
// whose pin timestamp is >= ts. Hand-rolled because the closure a generic
// sort.Search call captures would allocate on the per-cycle path.
func (pc *pathCache) pinSearch(ts sim.Time) int {
	lo, hi := 0, len(pc.pins)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pc.pins[mid].Timestamp < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pinAt reports whether a pin with exactly the given timestamp exists.
func (pc *pathCache) pinAt(ts sim.Time) bool {
	at := pc.pinSearch(ts)
	return at < len(pc.pins) && pc.pins[at].Timestamp == ts
}

// pinInsert adds a chunk to the pin set, keeping it sorted by timestamp.
// Duplicates (a promoted leader re-popping a chunk the old leader pinned)
// are refused.
func (pc *pathCache) pinInsert(c BufferedChunk) bool {
	at := pc.pinSearch(c.Timestamp)
	if at < len(pc.pins) && pc.pins[at].Timestamp == c.Timestamp {
		return false
	}
	pc.pins = append(pc.pins, BufferedChunk{}) //crasvet:allow hotalloc -- pin-set insert; capacity retained, bounded by the cache budget
	copy(pc.pins[at+1:], pc.pins[at:])
	pc.pins[at] = c
	pc.bytes += c.Size
	return true
}

// discardBefore frees pins every follower has consumed (their playback end
// is at or before the horizon) and returns the bytes released.
func (pc *pathCache) discardBefore(horizon sim.Time) int64 {
	n := 0
	var freed int64
	for n < len(pc.pins) && pc.pins[n].Timestamp+pc.pins[n].Duration <= horizon {
		freed += pc.pins[n].Size
		n++
	}
	if n > 0 {
		pc.pins = append(pc.pins[:0], pc.pins[n:]...) //crasvet:allow hotalloc -- append into pc.pins[:0]; capacity retained by construction
		pc.bytes -= freed
	}
	return freed
}

// intervalCache is the server-wide state: the pinned-byte budget, the live
// per-path caches, and the reservation total that gates new attachments.
type intervalCache struct {
	budget    int64
	bytes     int64 // pinned bytes across all paths
	committed int64 // sum of attached followers' pin reservations
	paths     []*pathCache
}

// ramBudget is the admission test's memory bound: the stream buffer budget
// plus the interval cache's plus the multicast prefix budget, since
// TotalBuffer charges cache-backed streams their pinned interval and
// fan-out members their FanoutBytes against the same pool.
func (s *Server) ramBudget() int64 {
	return s.cfg.BufferBudget + s.cfg.CacheBudget + s.cfg.PrefixBudget
}

// cacheCandidate finds the stream a new open on path could follow: the
// path's existing cache leader, or any open playback stream on the path.
// Returns nil when the cache is disabled or no eligible leader exists.
func (s *Server) cacheCandidate(r openReq) *stream {
	if s.cfg.CacheBudget <= 0 || r.record {
		return nil
	}
	if r.dr > 0 && r.dr < 1 {
		// Reduced-delivered-rate viewers skip frames; a follower must
		// consume the leader's full stamp sequence, so they read alone.
		return nil
	}
	for _, pc := range s.icache.paths {
		if pc.path == r.path {
			if s.cacheEligible(pc.leader, r) {
				return pc.leader
			}
			return nil
		}
	}
	for _, st := range s.streams {
		if st.closed || st.record || st.cached || st.mcastMember || st.name != r.path {
			continue
		}
		if s.cacheEligible(st, r) {
			return st
		}
	}
	return nil
}

// cachePlan evaluates the interval-cache option for an open: the leader to
// follow, the pin reservation to hold, and par with the Cached charge
// applied — or (nil, 0, par) unchanged when no eligible leader fits the
// budget. handleOpen calls it directly and again when the multicast rung
// of the admission ladder fails.
func (s *Server) cachePlan(r openReq, now sim.Time, par StreamParams) (*stream, int64, StreamParams) {
	leader := s.cacheCandidate(r)
	if leader == nil {
		return nil, 0, par
	}
	// A reopen at a later stamp point trails the leader by that much less;
	// a non-positive gap means the opener would run ahead of the leader.
	gap := s.cacheGap(leader, now) - r.at
	reservation := s.cachePinReservation(gap, par)
	if gap <= 0 || s.icache.committed+reservation > s.icache.budget || s.cacheGap(leader, now) >= r.info.TotalDuration() {
		return nil, 0, par
	}
	par.Cached = true
	par.CacheBytes = s.cacheCharge(gap, par)
	return leader, reservation, par
}

// cacheEligible checks that a leader can supply the follower described by
// the request: healthy enough to keep producing, same playback rate, and a
// structurally identical chunk table (timestamps must line up for pins to
// be meaningful).
func (s *Server) cacheEligible(leader *stream, r openReq) bool {
	if leader == nil || leader.closed || leader.health >= Suspended {
		return false
	}
	if leader.dr < 1 || leader.paused || leader.rev != nil {
		// A thinned, frozen, or rewinding leader does not produce the full
		// forward stamp sequence followers ride on.
		return false
	}
	rate := r.rate
	if rate == 0 {
		rate = 1
	}
	if leader.clock.Rate() != rate {
		return false
	}
	if leader.info != r.info &&
		(len(leader.info.Chunks) != len(r.info.Chunks) || leader.info.TotalSize() != r.info.TotalSize()) {
		return false
	}
	return true
}

// cacheFloor is the oldest media time the cache can still supply for a
// path: the leader's discard horizon, or the oldest pin if the path cache
// already reaches further back.
func (s *Server) cacheFloor(leader *stream, now sim.Time) sim.Time {
	floor := leader.clock.At(now) - leader.buf.Jitter()
	if pc := leader.pc; pc != nil && len(pc.pins) > 0 && pc.pins[0].Timestamp < floor {
		floor = pc.pins[0].Timestamp
	}
	return floor
}

// cacheGap is the steady-state logical gap a follower opened now will
// trail its leader by: the leader's current clock plus the follower's
// initial delay (the leader keeps advancing while the follower's clock
// waits to start). A follower that postpones its Start call widens the
// real gap beyond this estimate; the pin-budget backstop and the fallback
// path absorb that case.
func (s *Server) cacheGap(leader *stream, now sim.Time) sim.Time {
	return leader.clock.At(now) + s.cfg.InitialDelay
}

// cacheCharge computes the follower's admission charge (CacheBytes): the
// gap interval plus a double-buffer window, at the stream's rate. It is
// always at least B_i, so converting a follower back to a plain stream
// never increases the memory the admission test sees.
func (s *Server) cacheCharge(gap sim.Time, par StreamParams) int64 {
	return int64((gap+2*s.cfg.Interval).Seconds()*par.Rate) + 2*par.Chunk
}

// cachePinReservation is the pin bytes a follower at the given gap will
// hold in steady state; attachments are refused when the sum of
// reservations would exceed the cache budget, keeping pin refusals (and
// the fallbacks they force) an edge case rather than the steady state.
func (s *Server) cachePinReservation(gap sim.Time, par StreamParams) int64 {
	return int64((gap+s.cfg.Jitter).Seconds()*par.Rate) + par.Chunk
}

// cacheAttach joins a newly opened stream to its leader's path cache,
// creating the cache on first use. Called from handleOpen after the stream
// exists; par already carries the Cached admission charge.
func (s *Server) cacheAttach(st *stream, leader *stream, reservation int64, now sim.Time) {
	pc := leader.pc
	if pc == nil {
		pc = &pathCache{path: leader.name, leader: leader, createdAt: s.cycle}
		leader.pc = pc
		s.icache.paths = append(s.icache.paths, pc)
	}
	pc.followers = append(pc.followers, st)
	st.pc = pc
	st.cached = true
	st.cachePinCharge = reservation
	s.icache.committed += reservation

	// The first chunk the cache can supply: everything from the leader's
	// current discard horizon (or the existing pin floor) onward will be
	// pinned; everything before it is the follower's disk-fetched prefix.
	floor := s.cacheFloor(leader, now)
	from := 0
	if floor > 0 {
		from = st.info.ChunkAt(floor)
		if from < 0 {
			from = len(st.info.Chunks)
		} else if st.info.Chunks[from].Timestamp < floor {
			from++ // chunk straddling the floor is already gone
		}
	}
	st.cacheFrom = from
	// Keep the warm-up prefix reads tight: whole-extent overshoot past
	// cacheFrom would fetch bytes the cache is about to supply.
	st.wholeExtents = false

	s.stats.CacheAttached++
	s.k.Engine().Tracef("cras: cache attach stream %d to leader %d on %s (gap %v, prefix %d chunks)",
		st.id, leader.id, pc.path, leader.clock.At(now), from)
}

// cacheFromTs is the media time of the first cache-supplied chunk — the
// bound on the follower's disk prefetch horizon during warm-up.
func (st *stream) cacheFromTs() sim.Time {
	if st.cacheFrom >= len(st.info.Chunks) {
		return st.info.TotalDuration()
	}
	return st.info.Chunks[st.cacheFrom].Timestamp
}

// cacheLookup reports whether the chunk with the given index is resident
// in the path's pin set or the leader's buffer.
func (s *Server) cacheLookup(st *stream, idx int) bool {
	pc := st.pc
	if pc == nil {
		return false
	}
	ts := st.info.Chunks[idx].Timestamp
	if pc.pinAt(ts) {
		return true
	}
	if pc.leader != nil && !pc.leader.closed {
		if _, ok := pc.leader.buf.At(ts); ok {
			return true
		}
	}
	return false
}

// cacheLeaderGone reports that the follower's supply has dried up for
// good: no leader, or a leader that stopped producing (closed, suspended
// or worse — a suspended leader's clock is frozen and it fetches nothing).
func (s *Server) cacheLeaderGone(st *stream) bool {
	pc := st.pc
	return pc == nil || pc.leader == nil || pc.leader.closed || pc.leader.health >= Suspended
}

// cacheAdvance is the follower's phase-2 step, the cache-side counterpart
// of fetchTargets: advance the promise pointer over every chunk the cache
// covers up to the horizon. A chunk is covered when it is resident (pinned
// or in the leader's buffer) or promised — the leader has scheduled its
// fetch (nextChunk past it) and not yet stamped past it. An uncovered
// chunk inside the horizon is a miss, and the follower falls back to disk
// immediately so its reads join this same cycle's batch.
func (s *Server) cacheAdvance(st *stream, horizon sim.Time) {
	chunks := st.info.Chunks
	if st.nextChunk < st.cacheFrom {
		return // warm-up prefix still owned by the disk path
	}
	for st.nextChunk < len(chunks) && chunks[st.nextChunk].Timestamp < horizon {
		idx := st.nextChunk
		covered := s.cacheLookup(st, idx)
		if !covered && !s.cacheLeaderGone(st) {
			leader := st.pc.leader
			covered = leader.nextStamp <= idx && leader.nextChunk > idx
		}
		if !covered {
			s.stats.CacheMisses++
			s.cacheFallback(st, fmt.Sprintf("chunk %d not covered", idx)) //crasvet:allow hotalloc -- formats once per cache fallback, not per cycle
			return
		}
		st.nextChunk++
	}
}

// cacheStamp is the follower's phase-1 step, the cache-side counterpart of
// absorbCompletions: stamp every promised chunk that is now resident in
// the cache into the follower's own time-driven buffer. It mirrors the
// disk path's late-chunk handling so delivery timing is identical. A
// promised chunk that never arrived means the leader failed or the pin
// budget refused it; if it is due within the next interval or the leader
// cannot supply it anymore, the follower falls back to disk now (phase 2
// of this same cycle issues the reads).
func (s *Server) cacheStamp(st *stream, now sim.Time) {
	if st.nextStamp < st.cacheFrom {
		return // warm-up prefix chunks arrive through absorbCompletions
	}
	chunks := st.info.Chunks
	logical := st.clock.At(now)
	tdiscard := logical - st.buf.Jitter()
	for st.nextStamp < st.nextChunk && st.nextStamp < len(chunks) {
		c := chunks[st.nextStamp]
		if !s.cacheLookup(st, st.nextStamp) {
			leaderPassed := !s.cacheLeaderGone(st) && st.pc.leader.nextStamp > st.nextStamp
			if s.cacheLeaderGone(st) || leaderPassed || c.Timestamp <= logical+s.cfg.Interval {
				s.stats.CacheMisses++
				s.cacheFallback(st, fmt.Sprintf("chunk %d missing at stamp time", st.nextStamp)) //crasvet:allow hotalloc -- formats once per cache fallback, not per cycle
			}
			return // else: the leader has not produced it yet; wait a cycle
		}
		if c.Timestamp < logical && !st.record {
			st.stats.ChunksLate++
			if c.Timestamp+c.Duration <= tdiscard {
				st.nextStamp++
				continue
			}
		}
		st.buf.Insert(BufferedChunk{
			Index: st.nextStamp, Timestamp: c.Timestamp, Duration: c.Duration,
			Size: c.Size, StampedAt: now,
		})
		st.stats.ChunksStamped++
		st.stats.ChunksFromCache++
		s.stats.CacheHits++
		s.stats.CacheBytesServed += c.Size
		st.nextStamp++
	}
}

// cachePinDiscard is the leader's phase-1 discard step: chunks falling
// behind the leader's horizon are pinned for the followers (budget
// permitting) instead of dropped, and pins every follower has consumed
// are freed.
func (s *Server) cachePinDiscard(leader *stream, horizon sim.Time, now sim.Time) {
	pc := leader.pc
	popped := leader.buf.PopBefore(horizon)

	// The pin horizon: the slowest follower's discard line. Pins wholly
	// behind it will never be read again.
	pinH := horizon
	for _, f := range pc.followers {
		if h := f.clock.At(now) - f.buf.Jitter(); h < pinH {
			pinH = h
		}
	}

	for _, c := range popped {
		if c.Timestamp+c.Duration <= pinH {
			continue // already behind every follower
		}
		if s.icache.bytes+c.Size > s.icache.budget {
			s.stats.CachePinRefused++
			continue
		}
		if pc.pinInsert(c) {
			s.icache.bytes += c.Size
		}
	}
	s.icache.bytes -= pc.discardBefore(pinH)
	if s.icache.bytes > s.stats.CachePinnedPeak {
		s.stats.CachePinnedPeak = s.icache.bytes
	}
}

// cacheFallback converts a follower to plain disk fetching: restore the
// disk-charging admission parameters, roll the promise pointer back to the
// stamp point and reposition the byte-fetch machinery there, so phase 2 of
// the current cycle issues its reads. In-flight warm-up reads are
// invalidated by the generation bump; already-stamped chunks stay in the
// buffer. One-way: the stream never reattaches.
func (s *Server) cacheFallback(st *stream, reason string) {
	s.cacheDetach(st)
	st.gen++
	st.pending = st.pending[:0]
	st.failedRanges = nil
	st.nextChunk = st.nextStamp
	st.setFetchPoint(st.nextStamp)
	s.stats.CacheFallbacks++
	s.k.Engine().Tracef("cras: cache fallback stream %d on %s at chunk %d: %s", //crasvet:allow hotalloc -- formats once per fallback, not per cycle
		st.id, st.name, st.nextStamp, reason)
}

// cacheDetach removes a follower from its path cache without touching the
// fetch machinery (close and fallback share it), dissolving the cache when
// no followers remain.
func (s *Server) cacheDetach(st *stream) {
	pc := st.pc
	st.cached = false
	st.pc = nil
	st.par = StreamParams{Rate: st.par.Rate, Chunk: st.par.Chunk}
	s.icache.committed -= st.cachePinCharge
	st.cachePinCharge = 0
	if pc == nil {
		return
	}
	for i, f := range pc.followers {
		if f == st {
			pc.followers = append(pc.followers[:i], pc.followers[i+1:]...) //crasvet:allow hotalloc -- shrink-only splice; never grows past capacity
			break
		}
	}
	if len(pc.followers) == 0 {
		s.cacheDissolve(pc)
	}
}

// cacheDissolve frees a path cache's pins and unlinks its leader.
func (s *Server) cacheDissolve(pc *pathCache) {
	s.icache.bytes -= pc.bytes
	pc.bytes = 0
	pc.pins = nil
	if pc.leader != nil && pc.leader.pc == pc {
		pc.leader.pc = nil
	}
	pc.leader = nil
	for i, p := range s.icache.paths {
		if p == pc {
			s.icache.paths = append(s.icache.paths[:i], s.icache.paths[i+1:]...) //crasvet:allow hotalloc -- shrink-only splice; never grows past capacity
			break
		}
	}
}

// cacheOnClose handles a cache participant leaving (crs_close or a
// recovery eviction). A closing leader's remaining buffer is pinned so the
// promotion is seamless: the earliest-opened follower — the one furthest
// ahead, keeping the leader-before-followers stream order — takes over as
// leader, repositions its fetch machinery at its stamp point and produces
// from disk for the rest.
func (s *Server) cacheOnClose(st *stream, now sim.Time) {
	pc := st.pc
	if pc == nil {
		return
	}
	if pc.leader != st {
		s.cacheDetach(st)
		return
	}

	// Pin whatever the leader still held; followers keep consuming it
	// while the promoted leader's first disk batch is in flight.
	pinH := st.info.TotalDuration() + 1
	for _, f := range pc.followers {
		if h := f.clock.At(now) - f.buf.Jitter(); h < pinH {
			pinH = h
		}
	}
	for _, c := range st.buf.PopBefore(st.info.TotalDuration() + 1) {
		if c.Timestamp+c.Duration <= pinH {
			continue
		}
		if s.icache.bytes+c.Size > s.icache.budget {
			s.stats.CachePinRefused++
			continue
		}
		if pc.pinInsert(c) {
			s.icache.bytes += c.Size
		}
	}
	st.pc = nil

	if len(pc.followers) == 0 {
		s.cacheDissolve(pc)
		return
	}
	next := pc.followers[0]
	pc.followers = pc.followers[1:]
	pc.leader = next
	next.cached = false
	next.pc = pc
	next.par = StreamParams{Rate: next.par.Rate, Chunk: next.par.Chunk}
	s.icache.committed -= next.cachePinCharge
	next.cachePinCharge = 0
	next.gen++
	next.pending = next.pending[:0]
	next.failedRanges = nil
	next.nextChunk = next.nextStamp
	next.setFetchPoint(next.nextStamp)
	s.stats.CachePromotions++
	s.k.Engine().Tracef("cras: cache promote stream %d to leader on %s (leader %d closed, %d followers remain)", //crasvet:allow hotalloc -- formats once per promotion, not per cycle
		next.id, pc.path, st.id, len(pc.followers))
	if len(pc.followers) == 0 && pc.bytes == 0 {
		s.cacheDissolve(pc)
	}
}

// cacheDetachAll detaches every follower of a path cache (leader seek,
// leader rate change, or eviction under admission pressure): each falls
// back to disk fetching, and the cache dissolves.
func (s *Server) cacheDetachAll(pc *pathCache, reason string) {
	for len(pc.followers) > 0 {
		s.cacheFallback(pc.followers[0], reason)
	}
}

// cacheEvictLargest implements the deterministic eviction order when a new
// non-cacheable stream is refused for buffer memory: the path cache
// spanning the largest interval (leader clock minus slowest follower
// clock) frees the most pinned RAM per follower converted back to disk.
// Ties break to the oldest cache, then the lowest leader id. Returns false
// when there is nothing to evict.
func (s *Server) cacheEvictLargest(now sim.Time) bool {
	var victim *pathCache
	var victimSpan sim.Time
	for _, pc := range s.icache.paths {
		if len(pc.followers) == 0 || pc.leader == nil {
			continue
		}
		lead := pc.leader.clock.At(now)
		slowest := lead
		for _, f := range pc.followers {
			if h := f.clock.At(now); h < slowest {
				slowest = h
			}
		}
		span := lead - slowest
		if victim == nil || span > victimSpan ||
			(span == victimSpan && (pc.createdAt < victim.createdAt ||
				(pc.createdAt == victim.createdAt && pc.leader.id < victim.leader.id))) {
			victim = pc
			victimSpan = span
		}
	}
	if victim == nil {
		return false
	}
	s.stats.CacheEvictions++
	s.k.Engine().Tracef("cras: cache evict path %s (span %v, %d followers) for admission pressure",
		victim.path, victimSpan, len(victim.followers))
	s.cacheDetachAll(victim, "cache evicted for admission pressure")
	return true
}
