package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func frameChunk(i int, size int64) BufferedChunk {
	fd := sim.Time(time.Second) / 30
	return BufferedChunk{Index: i, Timestamp: sim.Time(i) * fd, Duration: fd, Size: size}
}

func TestTDBufferInsertGet(t *testing.T) {
	b := NewTDBuffer(1<<20, 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		if !b.Insert(frameChunk(i, 1000)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if b.Len() != 10 || b.Bytes() != 10000 {
		t.Fatalf("Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	fd := sim.Time(time.Second) / 30
	c, ok := b.Get(3 * fd)
	if !ok || c.Index != 3 {
		t.Fatalf("Get(3*fd) = %+v, %v", c, ok)
	}
	// Mid-frame time still maps to the frame.
	c, ok = b.Get(3*fd + fd/2)
	if !ok || c.Index != 3 {
		t.Fatalf("Get mid-frame = %+v, %v", c, ok)
	}
	if _, ok := b.Get(100 * fd); ok {
		t.Fatal("Get beyond buffered range succeeded")
	}
	if b.GetHits != 2 || b.GetMisses != 1 {
		t.Fatalf("hits=%d misses=%d", b.GetHits, b.GetMisses)
	}
}

func TestTDBufferOverflowRefused(t *testing.T) {
	b := NewTDBuffer(2500, 0)
	if !b.Insert(frameChunk(0, 1000)) || !b.Insert(frameChunk(1, 1000)) {
		t.Fatal("inserts within capacity failed")
	}
	if b.Insert(frameChunk(2, 1000)) {
		t.Fatal("insert beyond capacity succeeded")
	}
	if b.Overflowed != 1 {
		t.Fatalf("Overflowed = %d, want 1", b.Overflowed)
	}
}

func TestTDBufferDiscardBefore(t *testing.T) {
	b := NewTDBuffer(1<<20, 0)
	fd := sim.Time(time.Second) / 30
	for i := 0; i < 30; i++ {
		b.Insert(frameChunk(i, 1000))
	}
	n := b.DiscardBefore(10 * fd) // frames 0-9 are obsolete
	if n != 10 {
		t.Fatalf("discarded %d, want 10", n)
	}
	if b.Len() != 20 || b.Bytes() != 20000 {
		t.Fatalf("after discard: Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	if _, ok := b.Get(5 * fd); ok {
		t.Fatal("discarded frame still readable")
	}
	if c, ok := b.Get(10 * fd); !ok || c.Index != 10 {
		t.Fatal("first surviving frame not readable")
	}
}

func TestTDBufferJitterWindow(t *testing.T) {
	// The discard rule is timestamp < Tnow - J; the caller computes that,
	// so a frame exactly J behind the clock survives.
	b := NewTDBuffer(1<<20, 100*time.Millisecond)
	fd := sim.Time(time.Second) / 30
	b.Insert(frameChunk(0, 100))
	logicalNow := 2 * fd
	b.DiscardBefore(logicalNow - b.Jitter())
	if b.Len() != 1 {
		t.Fatal("frame within jitter allowance was discarded")
	}
	b.DiscardBefore(4*fd - b.Jitter())
	if b.Len() != 0 {
		t.Fatal("frame beyond jitter allowance survived")
	}
}

func TestTDBufferLateDiscardCountsUnreadOnly(t *testing.T) {
	b := NewTDBuffer(1<<20, 0)
	fd := sim.Time(time.Second) / 30
	b.Insert(frameChunk(0, 100))
	b.Insert(frameChunk(1, 100))
	b.Get(0) // read frame 0
	b.DiscardBefore(2 * fd)
	if b.LateDiscard != 1 {
		t.Fatalf("LateDiscard = %d, want 1 (only the unread frame)", b.LateDiscard)
	}
	if b.Discarded != 2 {
		t.Fatalf("Discarded = %d, want 2", b.Discarded)
	}
}

func TestTDBufferReset(t *testing.T) {
	b := NewTDBuffer(1<<20, 0)
	for i := 0; i < 5; i++ {
		b.Insert(frameChunk(i, 500))
	}
	b.Reset()
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatal("Reset did not empty the buffer")
	}
	if _, ok := b.Get(0); ok {
		t.Fatal("Get after Reset succeeded")
	}
}

func TestTDBufferPeakBytes(t *testing.T) {
	b := NewTDBuffer(1<<20, 0)
	fd := sim.Time(time.Second) / 30
	for i := 0; i < 8; i++ {
		b.Insert(frameChunk(i, 1000))
	}
	b.DiscardBefore(8 * fd)
	if b.PeakBytes != 8000 {
		t.Fatalf("PeakBytes = %d, want 8000", b.PeakBytes)
	}
	if b.Bytes() != 0 {
		t.Fatal("buffer should be empty after full discard")
	}
}

func TestTDBufferPeekDoesNotCount(t *testing.T) {
	b := NewTDBuffer(1<<20, 0)
	b.Insert(frameChunk(0, 100))
	if !b.Peek(0) {
		t.Fatal("Peek missed resident chunk")
	}
	if b.Peek(sim.Time(time.Hour)) {
		t.Fatal("Peek found non-resident chunk")
	}
	if b.GetHits != 0 || b.GetMisses != 0 {
		t.Fatal("Peek affected hit/miss counters")
	}
}

// Property: Bytes always equals the sum of resident chunk sizes, under any
// interleaving of insert/discard, and never exceeds capacity.
func TestPropertyTDBufferAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewTDBuffer(50000, 0)
		fd := sim.Time(time.Second) / 30
		next := 0
		var model []BufferedChunk
		for _, op := range ops {
			if op%3 != 0 { // insert twice as often as discard
				c := frameChunk(next, int64(op%4000)+1)
				next++
				if b.Insert(c) {
					model = append(model, c)
				}
			} else {
				cut := sim.Time(op%64) * fd
				b.DiscardBefore(cut)
				keep := model[:0]
				for _, c := range model {
					if c.Timestamp >= cut {
						keep = append(keep, c)
					}
				}
				model = keep
			}
			var sum int64
			for _, c := range model {
				sum += c.Size
			}
			if b.Bytes() != sum || b.Len() != len(model) || b.Bytes() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
