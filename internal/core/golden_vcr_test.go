package core

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// goldenVCRResult captures one fixed-seed run of the VCR workload: the
// delivered digest per stream plus the counters the no-op equivalence
// cares about.
type goldenVCRResult struct {
	digests   [3]uint64 // leader, follower, solo
	lost      [3]int
	stats     Stats
	folCached bool
	soloDR    float64
	soloRev   bool
	soloPause bool
}

// goldenVCRPlay is goldenPlay with a mid-play hook: disturb runs on the
// player's own thread just before frame disturbAt, so its position in the
// delivered sequence is deterministic.
func goldenVCRPlay(b *bed, th *rtm.Thread, h *Handle, frames, disturbAt int,
	disturb func(*rtm.Thread)) (uint64, int) {
	sum := fnv.New64a()
	word := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		sum.Write(buf[:])
	}
	info := h.Info()
	if frames > len(info.Chunks) {
		frames = len(info.Chunks)
	}
	const poll = 2 * time.Millisecond
	lost := 0
	for i := 0; i < frames; i++ {
		if disturb != nil && i == disturbAt {
			disturb(th)
		}
		want := info.Chunks[i]
		due := h.ClockStartsAt(want.Timestamp)
		if due < 0 {
			lost++
			continue
		}
		if b.k.Now() < due {
			th.SleepUntil(due)
		}
		deadline := due + 3*want.Duration
		for {
			if c, ok := h.Get(want.Timestamp); ok {
				word(int64(c.Index))
				word(int64(c.Timestamp))
				word(c.Size)
				break
			}
			if b.k.Now() >= deadline {
				lost++
				word(-1)
				word(int64(i))
				break
			}
			th.Sleep(poll)
		}
	}
	return sum.Sum64(), lost
}

// runGoldenVCRScenario plays the three-stream golden workload — cache
// leader, follower, and a solo viewer — with optional mid-play no-op VCR
// operations on the leader and the solo stream, all other knobs and the
// seed held constant.
func runGoldenVCRScenario(t *testing.T, leadOps func(*bed, *Handle) func(*rtm.Thread),
	soloOps func(*bed, *Handle) func(*rtm.Thread)) goldenVCRResult {
	t.Helper()
	shared := media.MPEG1().Generate("/shared", 10*time.Second)
	solo := media.MPEG1().Generate("/solo", 10*time.Second)
	var res goldenVCRResult
	newBed(t, 7, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/shared": shared, "/solo": solo},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(1 * time.Second)
			fol, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			one, err := b.cras.Open(th, solo, "/solo", OpenOptions{})
			if err != nil {
				t.Errorf("open solo: %v", err)
				return
			}
			if !fol.CacheBacked() {
				t.Error("follower not cache-backed at open")
			}
			fol.Start(th)
			one.Start(th)

			var leadDisturb, soloDisturb func(*rtm.Thread)
			if leadOps != nil {
				leadDisturb = leadOps(b, lead)
			}
			if soloOps != nil {
				soloDisturb = soloOps(b, one)
			}
			done := [2]bool{}
			b.k.NewThread("fol-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				res.digests[1], res.lost[1] = goldenVCRPlay(b, th2, fol, 200, -1, nil)
				done[0] = true
			})
			b.k.NewThread("solo-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				res.digests[2], res.lost[2] = goldenVCRPlay(b, th2, one, 200, 100, soloDisturb)
				done[1] = true
			})
			res.digests[0], res.lost[0] = goldenVCRPlay(b, th, lead, 200, 100, leadDisturb)
			for !done[0] || !done[1] {
				th.Sleep(100 * time.Millisecond)
			}
			res.stats = b.cras.Stats()
			res.folCached = fol.CacheBacked()
			res.soloDR = one.DeliveredRate()
			res.soloRev = one.Reversed()
			res.soloPause = one.Paused()
		})
	return res
}

// The VCR no-ops must be invisible to delivery: SetRate to the current
// rate, Seek to the current position, and Pause+Resume at the same
// instant deliver the byte-identical chunk sequence as an undisturbed run
// and trigger none of the re-admission machinery — no detaches, no
// fallbacks, no buffer resets.
//
// The no-op SetRate is issued on the cache LEADER while its follower
// rides the pins: any accidental detach shows up as a fallback. The
// pause/resume/seek triple runs on the solo stream; the seek samples the
// clock while paused, because on a running clock the position moves
// between the client's read and the server's processing — frozen-frame
// scrubbing is also how a real viewer UI issues "seek to here".
func TestGoldenVCRNoOps(t *testing.T) {
	base := runGoldenVCRScenario(t, nil, nil)
	dist := runGoldenVCRScenario(t,
		func(b *bed, h *Handle) func(*rtm.Thread) {
			return func(th *rtm.Thread) {
				if err := h.SetRate(th, 1.0); err != nil {
					t.Errorf("leader no-op SetRate: %v", err)
				}
			}
		},
		func(b *bed, h *Handle) func(*rtm.Thread) {
			return func(th *rtm.Thread) {
				if err := h.SetRate(th, 1.0); err != nil {
					t.Errorf("solo no-op SetRate: %v", err)
				}
				if err := h.Pause(th); err != nil {
					t.Errorf("solo Pause: %v", err)
				}
				if !h.Paused() {
					t.Error("solo not paused after Pause")
				}
				if err := h.Seek(th, h.LogicalNow()); err != nil {
					t.Errorf("solo seek-to-current: %v", err)
				}
				if err := h.Resume(th); err != nil {
					t.Errorf("solo Resume: %v", err)
				}
			}
		})
	if t.Failed() {
		return
	}

	for i, name := range []string{"leader", "follower", "solo"} {
		if base.lost[i] != 0 || dist.lost[i] != 0 {
			t.Errorf("%s lost frames: undisturbed %d, disturbed %d", name, base.lost[i], dist.lost[i])
		}
		if base.digests[i] != dist.digests[i] {
			t.Errorf("%s delivered sequence diverged: undisturbed %016x, disturbed %016x",
				name, base.digests[i], dist.digests[i])
		}
	}
	if !base.folCached || !dist.folCached {
		t.Errorf("follower detached: undisturbed cached=%v, disturbed cached=%v",
			base.folCached, dist.folCached)
	}
	if dist.soloDR != 1 || dist.soloRev || dist.soloPause {
		t.Errorf("solo stream state disturbed: dr=%g reversed=%v paused=%v",
			dist.soloDR, dist.soloRev, dist.soloPause)
	}

	// The no-ops left no re-admission footprint: the side-effect counters
	// match the undisturbed run exactly (all zero in both), and only the
	// VCR op counters record that the calls happened at all.
	type sideEffects struct {
		fallbacks, detaches, rejects, rateChanges, revalidations, refused int
	}
	side := func(s Stats) sideEffects {
		return sideEffects{
			fallbacks:     s.CacheFallbacks + s.MulticastFallbacks,
			detaches:      s.CacheEvictions,
			rejects:       s.AdmissionRejects,
			rateChanges:   s.RateChanges,
			revalidations: s.SeekRevalidations,
			refused:       s.SeeksRefused + s.RateRefused + s.ResumesRefused,
		}
	}
	if side(base.stats) != side(dist.stats) {
		t.Errorf("re-admission side effects diverged: undisturbed %+v, disturbed %+v",
			side(base.stats), side(dist.stats))
	}
	if dist.stats.Pauses != 1 || dist.stats.Resumes != 1 || dist.stats.Seeks != 1 {
		t.Errorf("VCR op counters = pauses %d, resumes %d, seeks %d; want 1, 1, 1",
			dist.stats.Pauses, dist.stats.Resumes, dist.stats.Seeks)
	}
	if dist.stats.RateChanges != 0 {
		t.Errorf("no-op SetRate recorded %d rate changes, want 0", dist.stats.RateChanges)
	}
}

// Pausing mid-rewind freezes the frame; Resume plays forward from the
// rewind head. A paused stream costs zero disk operations while frozen.
func TestVCRPauseFreezesDiskTraffic(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(2 * time.Second)
			if err := h.Pause(th); err != nil {
				t.Errorf("pause: %v", err)
			}
			frozen := h.LogicalNow()
			reads := h.StreamStats().ReadsIssued
			// The paused frame must stay resident and the disk must stay
			// silent for the whole paused span.
			th.Sleep(3 * time.Second)
			if got := h.LogicalNow(); got != frozen {
				t.Errorf("clock moved while paused: %v -> %v", frozen, got)
			}
			if !h.Available(frozen - 1) {
				t.Error("paused frame not resident")
			}
			if got := h.StreamStats().ReadsIssued; got != reads {
				t.Errorf("paused stream issued %d disk reads", got-reads)
			}
			if err := h.Resume(th); err != nil {
				t.Errorf("resume: %v", err)
			}
			th.Sleep(1 * time.Second)
			if got := h.LogicalNow(); got <= frozen {
				t.Errorf("clock did not advance after resume: %v", got)
			}
			if got, want := h.LogicalNow(), frozen+sim.Time(1*time.Second); got > want+sim.Time(50*time.Millisecond) {
				t.Errorf("resume jumped the timeline: logical %v, want about %v", got, want)
			}
			h.Close(th)
		})
}
