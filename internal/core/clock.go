package core

import "repro/internal/sim"

// LogicalClock is the per-stream clock of Section 2.4: distinct from the
// system clock, set to zero when the stream opens, advancing at a rate
// derived from the stream's recording rate while started. CRAS schedules
// pre-fetches against it and discards buffered data that falls behind it.
type LogicalClock struct {
	logical sim.Time // logical value at the anchor
	anchor  sim.Time // real time of the last start/seek/rate change
	rate    float64  // logical seconds per real second while running
	running bool

	// Pause/Resume state (crs_pause): a paused clock is frozen like a
	// stopped one, but remembers it was running — and how much of a pending
	// initial delay had not elapsed — so Resume restores the exact timeline
	// shifted by the paused span.
	paused    bool
	pauseLead sim.Time
}

// NewLogicalClock returns a stopped clock at logical zero with unit rate.
func NewLogicalClock() *LogicalClock { return &LogicalClock{rate: 1} }

// Now returns the logical time at real time real.
func (c *LogicalClock) Now(real sim.Time) sim.Time { return c.At(real) }

// At returns the logical time at the given real time. For a stopped clock
// it is the frozen logical value. Real times before the anchor saturate at
// the anchor's logical value (the clock has not started advancing yet).
func (c *LogicalClock) At(real sim.Time) sim.Time {
	if !c.running || real <= c.anchor {
		return c.logical
	}
	return c.logical + sim.Time(float64(real-c.anchor)*c.rate)
}

// Start begins (or resumes) the clock at real time startAt, as observed at
// real time now. A future startAt implements the initial delay: the clock
// holds its current logical value until then. Starting an already-running
// clock freezes it at its value at now and resumes at startAt — it never
// rewinds (a rewind would suspend the time-driven discard while deliveries
// continue, overflowing the shared buffer).
func (c *LogicalClock) Start(now, startAt sim.Time) {
	c.logical = c.At(now)
	c.anchor = startAt
	c.running = true
	c.paused = false
	c.pauseLead = 0
}

// PendingStart reports whether the clock is armed but not yet advancing:
// running with its anchor still in the future — the initial-delay window
// between crs_play and the first frame's deadline.
func (c *LogicalClock) PendingStart(now sim.Time) bool {
	return c.running && now < c.anchor
}

// Stop freezes the clock at its value at real time now.
func (c *LogicalClock) Stop(now sim.Time) {
	c.logical = c.At(now)
	c.anchor = now
	c.running = false
	c.paused = false
	c.pauseLead = 0
}

// Pause freezes a running clock at its value at now, preserving any
// un-elapsed initial-delay lead so Resume restores the same frame deadlines
// shifted by exactly the paused span. Pausing a stopped clock is a no-op on
// the clock (the stream still marks itself paused); pausing an already
// paused clock keeps the original lead.
func (c *LogicalClock) Pause(now sim.Time) {
	if !c.running {
		return
	}
	c.pauseLead = 0
	if now < c.anchor {
		c.pauseLead = c.anchor - now
	}
	c.logical = c.At(now)
	c.anchor = now
	c.running = false
	c.paused = true
}

// Resume restarts a paused clock at now plus whatever initial-delay lead
// the pause preserved. A clock that was not running when paused stays
// stopped — the client's Start arms it as usual.
func (c *LogicalClock) Resume(now sim.Time) {
	if !c.paused {
		return
	}
	c.anchor = now + c.pauseLead
	c.paused = false
	c.pauseLead = 0
	c.running = true
}

// Seek sets the logical value at real time now, preserving the running
// state (crs_seek).
func (c *LogicalClock) Seek(now, logical sim.Time) {
	c.logical = logical
	c.anchor = now
}

// SetRate changes the advance rate at real time now (2x for the paper's
// retrieve-everything fast-forward, 0.5x for slow motion).
func (c *LogicalClock) SetRate(now sim.Time, rate float64) {
	c.logical = c.At(now)
	c.anchor = now
	c.rate = rate
}

// Rate returns the current advance rate.
func (c *LogicalClock) Rate() float64 { return c.rate }

// Running reports whether the clock is advancing.
func (c *LogicalClock) Running() bool { return c.running }

// RealTimeFor returns the real time at which the clock will reach the
// logical time, or -1 if it never will (stopped, or already past with the
// clock running backwards — which this clock cannot do, so only stopped).
func (c *LogicalClock) RealTimeFor(logical sim.Time) sim.Time {
	if logical <= c.logical {
		return c.anchor
	}
	if !c.running || c.rate <= 0 {
		return -1
	}
	return c.anchor + sim.Time(float64(logical-c.logical)/c.rate)
}
