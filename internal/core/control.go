package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/rtm"
	"repro/internal/sim"
)

// Control-plane hardening: overload shedding and graceful drain. The
// request manager is the server's only non-periodic thread, and before this
// layer a flood of opens could occupy it — and the resolver behind it — for
// entire intervals. The shed gate bounds how many control RPCs do real work
// per interval; everything past the budget is answered immediately with a
// typed overload error carrying a retry hint, so a thundering herd costs
// only itself.

var (
	// ErrServerDown reports a client RPC attempted after the signal handler
	// shut the server down: the request port is destroyed, so the call
	// fails instead of blocking on a request manager that is gone.
	ErrServerDown = errors.New("cras: server is down")

	// ErrDraining reports an open refused because the server is draining.
	ErrDraining = errors.New("cras: server is draining")

	// ErrOverloaded is the sentinel errors.Is matches for control-plane
	// shedding; the concrete error is *OverloadError.
	ErrOverloaded = errors.New("cras: control plane overloaded")
)

// OverloadError is the typed shed response. RetryAfter is derived from the
// admission model's view of the control plane: the budget replenishes once
// per interval, so a shed request's turn is the remainder of the current
// window plus one window per budget-sized batch already shed ahead of it.
type OverloadError struct {
	RetryAfter sim.Time
	Reason     string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cras: control plane overloaded (%s); retry after %v", e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) work.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// costShed is the manager CPU charged to refuse a request without doing its
// work — the cheapness is the point of shedding.
const costShed = 20 * time.Microsecond

// ctlBudgetFloor keeps the control plane live even when force-opens have
// consumed every bit of slack: closes and renewals must always get through,
// and a trickle of opens with them.
const ctlBudgetFloor = 4

// ctlBudget is how many control RPCs may do real work this interval: the
// configured MaxRequestsPerCycle, further capped by the same
// spare-interval-time accounting the recovery engine charges retries
// against — manager work above the disk schedule's slack is work that can
// push an admitted batch past its deadline.
func (s *Server) ctlBudget() int {
	budget := s.cfg.MaxRequestsPerCycle
	if bySpare := int(s.retrySpare() / costManagerOp); bySpare < budget {
		budget = bySpare
	}
	if budget < ctlBudgetFloor {
		budget = ctlBudgetFloor
	}
	return budget
}

// ctlAction is the shed gate's verdict on one control RPC.
type ctlAction int

const (
	ctlAdmit ctlAction = iota // do the real work now
	ctlShed                   // answer with the prepared overload error
	ctlDefer                  // sleep to the window boundary and re-ask
)

// dispatchRequest is the request manager's per-RPC body: the shed gate
// first, then the real work. Shed requests cost costShed instead of
// costManagerOp, which together with deferral is what bounds the manager's
// occupancy per interval.
func (s *Server) dispatchRequest(t *rtm.Thread, req any) any {
	for {
		resp, action := s.shedGate(req)
		switch action {
		case ctlShed:
			t.Compute(costShed)
			return resp
		case ctlDefer:
			t.SleepUntil(s.ctlWindow + s.cfg.Interval)
			continue
		}
		t.Compute(costManagerOp)
		return s.handleRequest(t, req)
	}
}

// shedGate accounts the request against the current interval's control
// budget. Past the budget, new opens — the only request that adds load —
// are shed with the typed overload error; session operations of streams
// that already paid admission (start/stop/seek/setrate) are deferred to
// the next window, so a storm of them is paced rather than refused.
// Closes and renewals always pass: a close frees resources and a renewal
// is the lease heartbeat, and deferring either would turn overload into
// leaks or false reaps. Force opens sit outside the accounting entirely —
// they are the measurement backdoor that already bypasses admission.
func (s *Server) shedGate(req any) (resp any, action ctlAction) {
	if s.cfg.MaxRequestsPerCycle < 0 {
		return nil, ctlAdmit
	}
	now := s.k.Now()
	if win := now - now%s.cfg.Interval; win != s.ctlWindow {
		s.ctlWindow = win
		s.ctlOps, s.ctlShed = 0, 0
	}
	switch r := req.(type) {
	case closeReq, renewReq:
		s.ctlOps++
		return nil, ctlAdmit
	case openReq:
		if r.force {
			return nil, ctlAdmit
		}
		budget := s.ctlBudget()
		if s.ctlOps < budget {
			s.ctlOps++
			return nil, ctlAdmit
		}
		s.ctlShed++
		s.stats.RequestsShed++
		wait := s.ctlWindow + s.cfg.Interval - now // remainder of this window
		wait += sim.Time((s.ctlShed-1)/budget) * s.cfg.Interval
		return openResp{err: &OverloadError{
			RetryAfter: wait,
			Reason:     fmt.Sprintf("%d control requests this interval", s.ctlOps),
		}}, ctlShed
	default:
		if s.ctlOps < s.ctlBudget() {
			s.ctlOps++
			return nil, ctlAdmit
		}
		return nil, ctlDefer
	}
}

// Drain moves the server into graceful drain (usable from any engine
// context): new opens are refused with ErrDraining, active streams run
// down naturally — a closing cache leader hands its followers to the
// icache promotion path as usual — and whatever is still open when the
// grace budget expires is evicted before the old abrupt Shutdown runs. A
// zero or negative grace is an immediate evict-and-shutdown.
func (s *Server) Drain(grace sim.Time) {
	if s.draining || s.stopping {
		return
	}
	s.draining = true
	s.drainAt = s.k.Now() + grace
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining }

// NotifyDown registers n for a dead-name notification on the server's
// request port: when the signal handler destroys the port, n receives a
// single rtm.DeadName message. A cluster monitor uses this to learn of a
// node's death the instant it happens rather than on the next heartbeat.
func (s *Server) NotifyDown(n *rtm.Port) { s.reqPort.NotifyDeadName(n) }

// drainStep runs at the top of each scheduler cycle while draining. It
// reports true when the drain has handed over to Shutdown and the
// scheduler should exit.
func (s *Server) drainStep(now sim.Time) bool {
	if now >= s.drainAt {
		for _, st := range s.streams {
			if st.closed {
				continue
			}
			s.stats.DrainEvictions++
			s.evict(st, "drain deadline")
		}
	}
	if s.ActiveStreams() > 0 {
		return false
	}
	s.Shutdown()
	return true
}
