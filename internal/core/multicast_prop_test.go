package core

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

// Property-based exercise of the multicast batching + pinned prefix layer:
// seeded random viewer populations (open, close, seek, server-side crash)
// against one hot title, with the fan-out/prefix accounting and group
// structure verified after every operation and the delivered frame
// sequence of every undisturbed viewer verified at the end. The seed
// defaults to a fixed value so the suite is deterministic; CI (and anyone
// chasing a failure) overrides it with MCAST_PROP_SEED, and every failure
// message carries the seed so the exact sequence replays with
//
//	MCAST_PROP_SEED=<seed> go test ./internal/core -run TestMulticastProperties
func TestMulticastProperties(t *testing.T) {
	seed := int64(20260805)
	if env := os.Getenv("MCAST_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("MCAST_PROP_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("property seed %d (override with MCAST_PROP_SEED)", seed)
	root := rand.New(rand.NewSource(seed))
	for seq := 0; seq < 8; seq++ {
		runMcastSequence(t, seed, seq, rand.New(rand.NewSource(root.Int63())))
		if t.Failed() {
			return // one broken sequence is enough; later ones only add noise
		}
	}
}

// propViewer is one session under the random population: its handle, its
// player's progress, and whether a chaos op (seek, crash, early close)
// excused it from the zero-loss obligation.
type propViewer struct {
	h       *Handle
	stop    bool // tells the player to wind down
	done    bool // player exited
	excused bool // disturbed by a chaos op; losses tolerated
	losses  int
	lostAt  []int // frame indices that missed their deadline
	wrong   int   // frames delivered with the wrong chunk index
	played  int
}

// propPlay consumes frames in order from frame 0, goldenPlay-style but
// interruptible: the op driver raises v.stop before disturbing the session.
func propPlay(b *bed, th *rtm.Thread, v *propViewer, frames int) {
	info := v.h.Info()
	const poll = 2 * time.Millisecond
	for i := 0; i < frames && !v.stop; i++ {
		want := info.Chunks[i]
		due := v.h.ClockStartsAt(want.Timestamp)
		if due < 0 { // clock stopped: suspended or crashed under us
			break
		}
		for b.k.Now() < due {
			th.SleepUntil(due)
			// The server slides the start of a session disturbed during its
			// initial delay (multicast pre-start re-arm); ClockStartsAt is
			// the authoritative deadline source, so pick up the new value.
			if d := v.h.ClockStartsAt(want.Timestamp); d > due {
				due = d
			} else {
				break
			}
		}
		deadline := due + 3*want.Duration
		for !v.stop {
			if c, ok := v.h.Get(want.Timestamp); ok {
				if c.Index != i {
					v.wrong++
				}
				v.played++
				break
			}
			if b.k.Now() >= deadline {
				v.losses++
				v.lostAt = append(v.lostAt, i)
				break
			}
			th.Sleep(poll)
		}
	}
	v.done = true
}

// checkMcastInvariants sweeps the server's multicast state: group
// structure, reservation and pin accounting, budget bound, and prefix
// contiguity. Runs between operations, i.e. at arbitrary points of the
// cycle grid — the invariants hold at every edge, so they hold here too.
func checkMcastInvariants(t *testing.T, b *bed, seed int64, seq, op int) {
	s := b.cras
	fail := func(format string, args ...interface{}) {
		t.Errorf("seed %d seq %d op %d: "+format, append([]interface{}{seed, seq, op}, args...)...)
	}

	var fanout int64
	members := 0
	for _, st := range s.streams {
		if st.closed {
			if st.mcastMember || st.mg != nil {
				fail("closed stream %d still linked to a group", st.id)
			}
			continue
		}
		if st.mcastMember {
			members++
			fanout += st.mcastCharge
			if st.mg == nil {
				fail("member %d has no group", st.id)
			}
			if st.stats.ReadsIssued != 0 {
				fail("member %d issued %d disk reads (one feed per group)", st.id, st.stats.ReadsIssued)
			}
			if !st.par.Multicast || st.par.FanoutBytes != st.mcastCharge {
				fail("member %d admission params out of step: Multicast=%v FanoutBytes=%d charge=%d",
					st.id, st.par.Multicast, st.par.FanoutBytes, st.mcastCharge)
			}
		} else if st.mcastCharge != 0 {
			fail("non-member %d holds a fan-out charge of %d", st.id, st.mcastCharge)
		}
	}
	if fanout != s.mcast.fanout {
		fail("fan-out accounting drifted: committed %d, sum of member charges %d", s.mcast.fanout, fanout)
	}

	groupMembers := 0
	for _, g := range s.mcast.groups {
		if g.feed != nil {
			if g.feed.mcastMember {
				fail("group %s feed %d is itself a member", g.path, g.feed.id)
			}
			if g.feed.mg != g {
				fail("group %s feed %d not linked back", g.path, g.feed.id)
			}
		}
		for _, m := range g.members {
			groupMembers++
			if !m.mcastMember || m.mg != g {
				fail("group %s lists stream %d which is not its member", g.path, m.id)
			}
			if g.feed != nil && m.nextStamp > g.feed.nextStamp {
				fail("member %d stamped past its feed: %d > %d", m.id, m.nextStamp, g.feed.nextStamp)
			}
		}
		if g.feed == nil && len(g.members) == 0 {
			fail("empty group %s not dissolved", g.path)
		}
	}
	if groupMembers != members {
		fail("membership drifted: %d streams claim membership, groups list %d", members, groupMembers)
	}

	var pinned int64
	for _, pp := range s.mcast.prefixes {
		var bytes int64
		for i, c := range pp.pins {
			if c.Index != i {
				fail("prefix %s pins not contiguous from 0: pins[%d].Index=%d", pp.path, i, c.Index)
			}
			bytes += c.Size
		}
		if bytes != pp.bytes {
			fail("prefix %s byte count drifted: %d recorded, %d summed", pp.path, pp.bytes, bytes)
		}
		pinned += bytes
	}
	if pinned != s.mcast.pinned {
		fail("pin accounting drifted: committed %d, sum over titles %d", s.mcast.pinned, pinned)
	}
	if s.mcast.fanout+s.mcast.pinned > s.mcast.budget {
		fail("budget exceeded: fanout %d + pinned %d > %d", s.mcast.fanout, s.mcast.pinned, s.mcast.budget)
	}
}

// runMcastSequence drives one random viewer population against one hot
// title: opens dominate early, and closes, seeks and server-side crashes
// (the eviction path recovery uses) disturb the groups mid-play. Viewers
// no chaos op touched must deliver frames 0..n in order with zero losses.
func runMcastSequence(t *testing.T, seed int64, seq int, rng *rand.Rand) {
	const frames = 75
	movie := media.MPEG1().Generate("/hot", 12*time.Second)
	cfg := Config{
		BatchWindow:    time.Duration(500+rng.Intn(1500)) * time.Millisecond,
		PrefixBudget:   int64(2+rng.Intn(7)) << 20,
		PrefixMinOpens: 2,
	}
	if os.Getenv("MCAST_PROP_NOBATCH") != "" {
		cfg.BatchWindow = 0 // control: same ops, multicast off
	}
	newBed(t, seed^int64(seq*2654435761), ufs.Options{}, cfg,
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			var viewers []*propViewer
			prefixPinned := int64(0)

			for op := 0; op < 22 && !t.Failed(); op++ {
				live := func() []*propViewer {
					var out []*propViewer
					for _, v := range viewers {
						if !v.stop && !v.h.st.closed {
							out = append(out, v)
						}
					}
					return out
				}()
				switch k := rng.Intn(10); {
				case k < 5 && len(live) < 7: // open a new viewer
					h, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
					if err != nil {
						t.Logf("op %d @%v: open refused: %v", op, b.k.Now(), err)
						break // admission refusal is a legitimate outcome
					}
					feedID, feedNS := -1, -1
					if h.st.mg != nil && h.st.mg.feed != nil {
						feedID, feedNS = h.st.mg.feed.id, h.st.mg.feed.nextStamp
					}
					t.Logf("op %d @%v: open viewer %d (stream %d, member=%v feed=%d feedNS=%d ns=%d fromPrefix=%d fromGroup=%d)",
						op, b.k.Now(), len(viewers), h.st.id, h.st.mcastMember, feedID, feedNS, h.st.nextStamp,
						h.st.stats.ChunksFromPrefix, h.st.stats.ChunksFromGroup)
					h.Start(th)
					v := &propViewer{h: h}
					viewers = append(viewers, v)
					b.k.NewThread("viewer", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
						propPlay(b, th2, v, frames)
					})
				case k < 7 && len(live) > 0: // seek: breaks the fan-out contract
					v := live[rng.Intn(len(live))]
					v.stop = true
					v.excused = true
					t.Logf("op %d @%v: seek viewer (stream %d, member=%v feed=%v)", op, b.k.Now(), v.h.st.id, v.h.st.mcastMember, v.h.st.mg != nil && v.h.st.mg.feed == v.h.st)
					v.h.Seek(th, time.Duration(rng.Intn(8))*time.Second)
				case k < 9 && len(live) > 0: // crash: the recovery eviction path
					v := live[rng.Intn(len(live))]
					v.stop = true
					v.excused = true
					t.Logf("op %d @%v: crash viewer (stream %d, member=%v feed=%v)", op, b.k.Now(), v.h.st.id, v.h.st.mcastMember, v.h.st.mg != nil && v.h.st.mg.feed == v.h.st)
					b.cras.evict(v.h.st, "property-suite crash")
				default: // close a viewer whose player already finished
					for _, v := range live {
						if v.done {
							v.h.Close(th)
							break
						}
					}
				}
				th.Sleep(time.Duration(150+rng.Intn(300)) * time.Millisecond)
				checkMcastInvariants(t, b, seed, seq, op)
				if p := b.cras.mcast.pinned; p < prefixPinned {
					t.Errorf("seed %d seq %d op %d: prefix pins shrank %d -> %d (never evicted)",
						seed, seq, op, prefixPinned, p)
				} else {
					prefixPinned = p
				}
			}

			// Wind down: let every undisturbed player finish, then close all.
			for _, v := range viewers {
				for !v.done {
					th.Sleep(100 * time.Millisecond)
				}
			}
			for _, v := range viewers {
				if !v.h.st.closed {
					v.h.Close(th)
				}
			}
			checkMcastInvariants(t, b, seed, seq, 999)
			if got := b.cras.mcast.fanout; got != 0 {
				t.Errorf("seed %d seq %d: fan-out reservation leaked after all closes: %d", seed, seq, got)
			}
			if n := len(b.cras.mcast.groups); n != 0 {
				t.Errorf("seed %d seq %d: %d groups survive with every session closed", seed, seq, n)
			}

			// Survivors: frames 0..n delivered in order, nothing lost, nothing
			// duplicated or substituted.
			for i, v := range viewers {
				if v.excused {
					continue
				}
				if v.losses != 0 || v.wrong != 0 {
					t.Errorf("seed %d seq %d viewer %d: %d losses at %v, %d wrong-index frames (member=%v prefix=%v stats=%+v)",
						seed, seq, i, v.losses, v.lostAt, v.wrong, v.h.MulticastMember(), v.h.PrefixStarted(), v.h.StreamStats())
				}
				if v.played+v.losses != frames && v.h.ClockStartsAt(0) >= 0 {
					t.Errorf("seed %d seq %d viewer %d: played %d of %d frames without being disturbed",
						seed, seq, i, v.played, frames)
				}
			}
		})
}
