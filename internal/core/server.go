package core

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// CPU cost model for the server threads (100 MHz Pentium scale).
const (
	costCycleBase  = 300 * time.Microsecond // request scheduler fixed work per interval
	costPerRequest = 40 * time.Microsecond  // building and issuing one disk read
	costPerStamp   = 15 * time.Microsecond  // moving one chunk into a shared buffer
	costIODone     = 20 * time.Microsecond  // fielding one completion notification
	costManagerOp  = 500 * time.Microsecond // open/close/start/stop/seek bookkeeping
)

// Config parameterizes a CRAS instance.
type Config struct {
	Interval     sim.Time // T; default 500 ms (the evaluation's setting)
	BufferBudget int64    // total shared-buffer memory; default 8 MB
	Jitter       sim.Time // J of the time-driven buffer; default 100 ms
	MaxRead      int      // largest single disk read; default 256 KB
	InitialDelay sim.Time // default 2*Interval (the paper's 1 s at T=0.5 s)

	// CacheBudget enables the interval cache (icache.go): bytes of pinned
	// leader chunks the server may hold to serve trailing streams of the
	// same path from RAM. 0 (the default) disables caching entirely.
	CacheBudget int64

	// Multicast batching + pinned prefix cache (multicast.go), the third
	// resource class: playback opens for the same path arriving within
	// BatchWindow of an earlier one coalesce into one multicast group fed
	// by a single set of disk ops, and a popularity tracker pins the first
	// PrefixDuration of titles reaching PrefixMinOpens decayed opens
	// permanently in RAM, so latecomers start instantly from the prefix and
	// ride the in-flight group. Member fan-out buffers and prefix pins are
	// charged against PrefixBudget. BatchWindow 0 or PrefixBudget 0 (the
	// defaults) disable multicasting entirely.
	BatchWindow    sim.Time
	PrefixBudget   int64
	PrefixDuration sim.Time // default 2*InitialDelay
	PrefixMinOpens int      // default 2

	// Thread placement. Quantum 0 = fixed-priority (the paper's normal
	// configuration); a positive quantum with flattened priorities is the
	// round-robin configuration of Figure 10.
	SchedulerPrio int
	ManagerPrio   int
	IODonePrio    int
	DeadlinePrio  int
	SignalPrio    int
	Quantum       sim.Time

	// NoRTQueue is an ablation switch: CRAS submits its reads on the
	// normal queue instead of the real-time queue, undoing the paper's
	// first kernel modification. Background traffic then interleaves with
	// stream reads, which is exactly what Figures 6 and 7 blame for the
	// Unix file system's behaviour.
	NoRTQueue bool

	// Recovery tunes the deadline manager's recovery engine (retry budget,
	// I/O watchdog, degradation ladder); zero values select defaults.
	Recovery RecoveryPolicy

	// LeaseTTL is the session lease: a session no client call has touched
	// (Get, Renew, or any control RPC) for this long is presumed abandoned
	// and reaped through the eviction path, reclaiming its admission
	// capacity, buffer memory and cache pins. Default 8*Interval; negative
	// disables leasing.
	LeaseTTL sim.Time

	// MaxRequestsPerCycle caps how many control RPCs the request manager
	// drains per interval before shedding the excess with ErrOverloaded.
	// Closes and lease renewals are never shed. Default 32; negative
	// disables shedding.
	MaxRequestsPerCycle int

	// RequestQueueCap bounds the request port's queue; calls beyond it are
	// rejected outright instead of growing the queue without limit.
	// Default 64.
	RequestQueueCap int

	// RateLadder enables the adaptive frame-rate ladder (vcr.go): the
	// delivered rates a stream may serve at, e.g. {1, 0.75, 0.5}. With a
	// ladder configured, the recovery engine steps a failing stream's
	// delivered rate down instead of suspending it, admission walks a
	// refused open down the rungs (reduced-rate warm-up) instead of
	// rejecting it, and a once-per-cycle promotion pass steps reduced
	// streams back up when spare interval time reappears. nil (the
	// default) disables the ladder entirely: every stream delivers every
	// frame, exactly the pre-ladder behavior.
	RateLadder []float64

	Params AdmissionParams
}

func (c *Config) fillDefaults() {
	if c.Interval == 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.BufferBudget == 0 {
		c.BufferBudget = 8 << 20
	}
	if c.Jitter == 0 {
		c.Jitter = 100 * time.Millisecond
	}
	if c.MaxRead == 0 {
		c.MaxRead = 256 << 10
	}
	if c.InitialDelay == 0 {
		c.InitialDelay = 2 * c.Interval
	}
	if c.SchedulerPrio == 0 {
		c.SchedulerPrio = rtm.PrioRT
	}
	if c.ManagerPrio == 0 {
		c.ManagerPrio = rtm.PrioRTLow
	}
	if c.IODonePrio == 0 {
		c.IODonePrio = rtm.PrioRT + 1
	}
	if c.DeadlinePrio == 0 {
		c.DeadlinePrio = rtm.PrioRT + 2
	}
	if c.SignalPrio == 0 {
		c.SignalPrio = rtm.PrioRTLow
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 8 * c.Interval
	}
	if c.PrefixDuration == 0 {
		c.PrefixDuration = 2 * c.InitialDelay
	}
	if c.PrefixMinOpens == 0 {
		c.PrefixMinOpens = 2
	}
	if c.MaxRequestsPerCycle == 0 {
		c.MaxRequestsPerCycle = 32
	}
	if c.RequestQueueCap == 0 {
		c.RequestQueueCap = 64
	}
	c.Recovery.fillDefaults(c.Interval)
}

// diskCycle is one member disk's share of an interval batch. Each member
// runs its own C-SCAN queue, so the admission comparison is per member:
// the batch's actual I/O time is the slowest member's (the cycle-edge
// barrier), as is the calculated bound.
type diskCycle struct {
	ops        int
	bytes      int64
	serviceSum sim.Time // member mechanism time consumed by its fragments
	otherDelay sim.Time // non-real-time request in service at submit (O_other)
	calculated sim.Time
}

// cycleStat tracks one scheduler interval's disk batch for the admission
// accuracy experiments (Figures 8 and 9).
type cycleStat struct {
	cycle     int
	submitted sim.Time
	streams   int
	bytes     int64 // logical bytes
	reads     int   // logical reads
	remaining int   // fragments not yet finally absorbed
	lastDone  sim.Time
	disks     []diskCycle
}

// AccuracyRecord is the per-interval outcome used by Figures 8 and 9: the
// ratio of actual disk I/O time to the admission test's calculated time.
type AccuracyRecord struct {
	Cycle      int
	Streams    int
	Bytes      int64
	Actual     sim.Time
	Calculated sim.Time
}

// Ratio returns actual/calculated in percent (the figures' y-axis).
func (r AccuracyRecord) Ratio() float64 {
	if r.Calculated == 0 {
		return 0
	}
	return 100 * float64(r.Actual) / float64(r.Calculated)
}

// Stats aggregates server activity.
type Stats struct {
	Cycles             int
	BytesRead          int64
	ReadsIssued        int64
	ChunksStamped      int64
	ThreadDeadlineMiss int
	IODeadlineMiss     int
	AdmissionRejects   int
	ReadErrors         int64 // reads that failed even after the retry budget
	ReadRetries        int64 // re-issued reads, across all streams
	RetriesDenied      int64 // retries refused because the spare-time budget ran out
	WatchdogCancels    int64 // stalled reads the I/O watchdog abandoned
	StreamsDegraded    int   // ladder transitions into Degraded
	StreamsSuspended   int   // ladder transitions into Suspended
	StreamsEvicted     int   // ladder transitions into Evicted (sheds included)
	ShedEvictions      int   // evictions forced by server-wide load shedding

	// Interval-cache activity (icache.go).
	CacheAttached    int   // streams opened as cache-backed followers
	CacheHits        int64 // chunks stamped from the cache instead of disk
	CacheMisses      int64 // cache lookups that failed and forced a fallback
	CacheFallbacks   int   // followers converted back to disk fetching
	CachePromotions  int   // followers promoted to leader when theirs closed
	CacheEvictions   int   // path caches evicted under admission pressure
	CachePinRefused  int64 // pins refused because the cache budget was full
	CacheBytesServed int64
	CachePinnedPeak  int64

	// Multicast batching + pinned prefix (multicast.go).
	MulticastGroups     int   // groups formed
	MulticastAttached   int   // streams opened as fan-out members
	MulticastFanout     int64 // chunks copied from a feed to its members at the cycle edge
	MulticastPromotions int   // members promoted to feed when theirs closed
	MulticastFallbacks  int   // members converted back to disk fetching
	MulticastRefused    int64 // joins refused because the prefix budget was full
	PrefixPaths         int   // titles that qualified for a pinned prefix
	PrefixStarts        int   // members whose playback head came from prefix pins
	PrefixHits          int64 // chunks backfilled from prefix pins at join time
	PrefixRefused       int64 // pins refused because the prefix budget was full
	PrefixTruncated     int   // producers that left a hole under the prefix head
	PrefixPinnedPeak    int64

	// Control-plane hardening (control.go, lease.go).
	SendsRejected  int64 // calls the bounded request port turned away at capacity
	LeasesExpired  int   // sessions the lease scan found expired
	SessionsReaped int   // expired or dead-client sessions evicted
	RequestsShed   int   // control RPCs refused by the overload gate
	DrainEvictions int   // streams still open at the drain deadline

	// VCR operations and the adaptive frame-rate ladder (vcr.go).
	Pauses            int // sessions paused
	Resumes           int // sessions resumed (re-admitted)
	ResumesRefused    int // resumes refused by re-admission; the stream stays paused
	Seeks             int // seek requests handled (no-ops included)
	SeeksRefused      int // seeks refused by re-admission at the new position
	SeekRevalidations int // follower seeks that re-validated the gap contract and kept their pins
	RateChanges       int // rate changes applied (no-ops excluded)
	RateRefused       int // rate changes refused by re-admission at every rung
	RateStepDowns     int // delivered-rate ladder moves down instead of suspending
	RateStepUps       int // delivered-rate recoveries back toward full rate
	OpensReduced      int // opens admitted at reduced delivered rate (warm-up)

	// Rotating-parity survival (member.go, parity volumes only).
	DegradedReads         int64 // logical reads served with a member missing
	ParityReconstructions int64 // stripe rows rebuilt by XOR to serve those reads
	MembersDead           int   // member transitions into Dead
	RebuildUnits          int64 // stripe rows streamed onto a replacement member

	// Per-member-disk fan-out (striped volumes): raw operations and bytes
	// issued to each member. One entry per member; a single-disk server has
	// one entry matching ReadsIssued/BytesRead.
	DiskReads []int64
	DiskBytes []int64

	Accuracy []AccuracyRecord
}

// IOOverrun is sent to the deadline manager when an interval's disk batch
// finishes after the end of the interval.
type IOOverrun struct {
	Cycle  int
	LateBy sim.Time
}

// Server is a running CRAS instance: five threads on the kernel, a
// real-time claim on the disk volume, and the shared buffers of its open
// streams.
type Server struct {
	k   *rtm.Kernel
	vol *disk.Volume
	cfg Config

	resolver Resolver
	mgr      *rtm.Thread

	reqPort      *rtm.BoundedPort
	iodonePort   *rtm.Port
	deadlinePort *rtm.Port
	signalPort   *rtm.Port

	schedThread *rtm.Thread

	streams []*stream   //crasvet:confined
	nextID  int         //crasvet:confined
	doneQ   []*readFrag //crasvet:confined
	// submitted fragments awaiting completion (watchdog scan set)
	inflight []*readFrag    //crasvet:confined
	cycle    int            //crasvet:confined
	icache   intervalCache  //crasvet:confined
	mcast    multicastState //crasvet:confined

	// Member-death state machine (member.go); members is non-nil only over
	// a parity volume. rebuildQ is fed by the I/O-done manager and drained
	// by the scheduler, like doneQ.
	members  []memberState //crasvet:confined
	rebuild  *rebuildState //crasvet:confined
	rebuildQ []rebuildAck  //crasvet:confined

	// memberOps is deliberately not confined: FailMember/ReplaceMember
	// append from the caller's context (the draining precedent) and the
	// scheduler drains at the cycle edge.
	memberOps []memberOp

	// retrySpares scratch, sized to the member count at construction. Every
	// caller (watchdog scan, I/O-done absorption, rebuild pacing) runs
	// sequentially inside one scheduler pass and none retains the slice
	// across another retrySpares call, so one set of buffers serves them all.
	spareOps   []int      //crasvet:confined
	spareBytes []int64    //crasvet:confined
	spareTimes []sim.Time //crasvet:confined

	// Per-cycle allocation scratch: the logical batch list and the
	// per-member fragment lists are rebuilt every cycle into retained
	// capacity, and completed cycleStats are recycled through a free list
	// (safe at remaining==0: every fragment, retries included, has been
	// finally absorbed). fragDone is the one completion closure every
	// fragment shares — the fragment rides Request.Tag.
	batchScratch []*readTag    //crasvet:confined
	perDiskFrags [][]*readFrag //crasvet:confined
	csFree       []*cycleStat  //crasvet:confined
	fragDone     func(*disk.Request, []byte)

	// Consecutive-I/O-overrun tracking for server-wide shedding,
	// maintained by the deadline manager thread.
	overrunRun       int //crasvet:confined
	lastOverrunCycle int //crasvet:confined

	// Control-plane overload window (control.go), touched only by the
	// request manager thread.
	ctlWindow sim.Time //crasvet:confined
	ctlOps    int      //crasvet:confined
	ctlShed   int      //crasvet:confined

	// draining/drainAt are deliberately not confined: Drain() writes them
	// from the caller's context before the request manager observes them.
	draining bool
	drainAt  sim.Time
	stopping bool
	// wedged freezes the scheduler loop (fault injection: the gray-failure
	// node whose request manager still answers while cycles stop advancing).
	// Written from the injecting context, read by the scheduler thread.
	wedged bool
	stats  Stats //crasvet:confined

	// OnDeadlineMiss, if set, observes every deadline event (thread
	// overruns, I/O overruns, and watchdog-detected stalls). The default
	// recovery action matches the paper: note a warning and carry on.
	OnDeadlineMiss func(kind string, cycle int, lateBy sim.Time)

	// OnStreamHealth, if set, observes every transition on the per-stream
	// degradation ladder — the client-facing notification the deadline
	// manager emits alongside its miss warnings.
	OnStreamHealth func(StreamHealthEvent)

	// OnMemberHealth, if set, observes every transition on the per-member
	// ladder of a parity volume (member.go).
	OnMemberHealth func(MemberHealthEvent)
}

// NewServer starts CRAS on the kernel in the paper's standard
// configuration, resolving media files through the Unix server. Config
// zero-values select the paper's defaults.
func NewServer(k *rtm.Kernel, d *disk.Disk, unixServer *ufs.Server, cfg Config) *Server {
	return NewServerWith(k, d, UnixResolver(unixServer), cfg)
}

// NewServerWith starts CRAS with an explicit Resolver — the hook for the
// paper's Figure 5 alternative configurations (RTS, or CRAS linked into
// the application with no Unix server at all).
func NewServerWith(k *rtm.Kernel, d *disk.Disk, resolver Resolver, cfg Config) *Server {
	return NewVolumeServerWith(k, disk.SingleVolume(d), resolver, cfg)
}

// NewVolumeServer starts CRAS over a striped volume, resolving media files
// through the Unix server mounted on the same volume. With one member the
// server is bit-for-bit the single-disk configuration.
func NewVolumeServer(k *rtm.Kernel, vol *disk.Volume, unixServer *ufs.Server, cfg Config) *Server {
	return NewVolumeServerWith(k, vol, UnixResolver(unixServer), cfg)
}

// NewVolumeServerWith starts CRAS over a striped volume with an explicit
// Resolver. Construction runs before the kernel schedules any thread, so
// it may touch confined state freely.
//
//crasvet:init
func NewVolumeServerWith(k *rtm.Kernel, vol *disk.Volume, resolver Resolver, cfg Config) *Server {
	cfg.fillDefaults()
	if cfg.Params.D == 0 {
		// Calibrate the admission test from a member disk (NewVolume
		// enforces identical members), with the paper's 64 KB bound on
		// other traffic. The admission test then applies per member.
		cfg.Params = MeasureAdmissionParams(vol.Disk(0), 64<<10)
	}
	s := &Server{
		k: k, vol: vol, cfg: cfg, resolver: resolver,
		icache:       intervalCache{budget: cfg.CacheBudget},
		mcast:        multicastState{budget: cfg.PrefixBudget},
		reqPort:      k.NewBoundedPort("cras.request", cfg.RequestQueueCap),
		iodonePort:   k.NewPort("cras.iodone"),
		deadlinePort: k.NewPort("cras.deadline"),
		signalPort:   k.NewPort("cras.signal"),
	}
	s.stats.DiskReads = make([]int64, vol.NumDisks())
	s.stats.DiskBytes = make([]int64, vol.NumDisks())
	s.spareOps = make([]int, vol.NumDisks())
	s.spareBytes = make([]int64, vol.NumDisks())
	s.spareTimes = make([]sim.Time, vol.NumDisks())
	s.perDiskFrags = make([][]*readFrag, vol.NumDisks())
	s.fragDone = func(r *disk.Request, _ []byte) {
		fg := r.Tag.(*readFrag)
		fg.started = r.Started
		fg.completed = r.Completed
		fg.err = r.Err
		s.iodonePort.Send(fg)
	}
	if vol.Parity() {
		s.members = make([]memberState, vol.NumDisks())
	}

	// Request manager thread: accepts open/close/start/stop/seek and
	// resolves block maps at open time (the non-real-time path). The shed
	// gate in dispatchRequest bounds how much of an interval this thread
	// spends on real request work; the signal handler destroys the port, so
	// ok turning false is the shutdown signal.
	s.mgr = k.NewThread("cras.reqmgr", cfg.ManagerPrio, cfg.Quantum, func(t *rtm.Thread) {
		for !s.stopping {
			req, reply, ok := s.reqPort.ReceiveCall(t)
			if !ok {
				return
			}
			reply(s.dispatchRequest(t, req))
		}
	})

	// Request scheduler thread: the periodic heart of CRAS.
	s.schedThread = k.NewPeriodicThread(rtm.PeriodicConfig{
		Name: "cras.scheduler", Priority: cfg.SchedulerPrio, Quantum: cfg.Quantum,
		Period: cfg.Interval, Deadline: cfg.Interval, DeadlinePort: s.deadlinePort,
	}, s.scheduleCycle)

	// I/O-done manager thread: fields completion interrupts — stream
	// fragments and rebuild-scavenger rows alike.
	k.NewThread("cras.iodone", cfg.IODonePrio, cfg.Quantum, func(t *rtm.Thread) {
		for !s.stopping {
			switch m := s.iodonePort.Receive(t).(type) {
			case *readFrag:
				t.Compute(costIODone)
				s.doneQ = append(s.doneQ, m)
			case rebuildAck:
				t.Compute(costIODone)
				s.rebuildQ = append(s.rebuildQ, m)
			default:
				continue // shutdown wakeup
			}
		}
	})

	// Deadline manager thread: the paper's recovery action for overruns is
	// a warning; on top of that it runs the recovery engine's server-wide
	// policy — stream-health notification and shedding under sustained
	// aggregate overrun.
	k.NewThread("cras.deadline", cfg.DeadlinePrio, cfg.Quantum, func(t *rtm.Thread) {
		for !s.stopping {
			switch m := s.deadlinePort.Receive(t).(type) {
			case rtm.DeadlineMiss:
				s.stats.ThreadDeadlineMiss++
				s.notifyMiss("scheduler-overrun", m.Cycle, m.LateBy)
			case IOOverrun:
				if s.stopping {
					continue // shutdown wakeup, not a real overrun
				}
				s.stats.IODeadlineMiss++
				s.notifyMiss("io-overrun", m.Cycle, m.LateBy)
				if m.Cycle == s.lastOverrunCycle+1 {
					s.overrunRun++
				} else {
					s.overrunRun = 1
				}
				s.lastOverrunCycle = m.Cycle
				if s.overrunRun >= s.cfg.Recovery.ShedAfter && s.shedWorstStream(m.Cycle) {
					s.overrunRun = 0
				}
			case IOStall:
				s.notifyMiss("io-stall", m.Cycle, m.Age)
			case StreamHealthEvent:
				s.noteHealth(m)
			case MemberHealthEvent:
				s.noteMember(m)
			case LeaseExpired:
				s.reapLease(m)
			case rtm.DeadName:
				s.reapDeadName(m)
			}
		}
	})

	// Signal handler thread: shutdown and cleanup.
	k.NewThread("cras.signal", cfg.SignalPrio, cfg.Quantum, func(t *rtm.Thread) {
		s.signalPort.Receive(t)
		s.stopping = true
		for _, st := range s.streams {
			st.closed = true
		}
		// Destroying the request port wakes the request manager (and any
		// client blocked in an RPC, queued or future) with a port-dead
		// error that the client side translates to ErrServerDown.
		s.reqPort.Destroy()
		// Wake the remaining blocking loops so they observe the flag.
		s.deadlinePort.Send(IOOverrun{})
		s.iodonePort.Send(nil)
	})

	return s
}

func (s *Server) notifyMiss(kind string, cycle int, lateBy sim.Time) {
	if s.OnDeadlineMiss != nil {
		s.OnDeadlineMiss(kind, cycle, lateBy)
	} else {
		s.k.Engine().Tracef("cras: %s at cycle %d, late by %v", kind, cycle, lateBy)
	}
}

// noteHealth is the deadline manager's half of a ladder transition: count
// it and notify the client side.
func (s *Server) noteHealth(ev StreamHealthEvent) {
	switch ev.To {
	case Degraded:
		s.stats.StreamsDegraded++
	case Suspended:
		s.stats.StreamsSuspended++
	case Evicted:
		s.stats.StreamsEvicted++
	}
	if s.OnStreamHealth != nil {
		s.OnStreamHealth(ev)
	} else {
		s.k.Engine().Tracef("cras: stream %d (%s) %s -> %s at cycle %d: %s",
			ev.StreamID, ev.Path, ev.From, ev.To, ev.Cycle, ev.Reason)
	}
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns a copy of the server statistics. This is the documented
// cross-thread read path: the engine is cooperative, so a snapshot taken
// between quanta observes a consistent state.
//
//crasvet:snapshot
func (s *Server) Stats() Stats {
	out := s.stats
	out.SendsRejected = s.reqPort.Rejected()
	out.DiskReads = append([]int64(nil), s.stats.DiskReads...)
	out.DiskBytes = append([]int64(nil), s.stats.DiskBytes...)
	out.Accuracy = append([]AccuracyRecord(nil), s.stats.Accuracy...)
	return out
}

// Volume returns the disk volume the server schedules.
func (s *Server) Volume() *disk.Volume { return s.vol }

// FixedFootprint models the server's code-and-static-data size, which the
// paper reports as about 250 KB; CRAS wires all of its memory down, so
// total pinned memory is this plus the shared buffers.
const FixedFootprint = 250 << 10

// MemoryFootprint returns the wired memory the server currently holds:
// the fixed footprint plus every open stream's shared buffer. The paper's
// compactness argument rests on this staying small enough to wire without
// starving other applications.
//
//crasvet:snapshot
func (s *Server) MemoryFootprint() int64 {
	total := int64(FixedFootprint) + s.icache.bytes + s.mcast.pinned
	for _, st := range s.streams {
		if !st.closed {
			total += st.buf.Capacity()
		}
	}
	return total
}

// ActiveStreams returns the number of open sessions.
//
//crasvet:snapshot
func (s *Server) ActiveStreams() int {
	n := 0
	for _, st := range s.streams {
		if !st.closed {
			n++
		}
	}
	return n
}

// startAnchor is the playback anchor for a clock armed at now: the initial
// delay measured from the next cycle edge rather than from the request
// instant. Quantizing the start to the scheduler grid keeps a fresh
// stream's prefill at exactly one interval's fetch per cycle — the load
// the admission test models — where an unaligned start crams up to two
// intervals of media into the first batch, and a wave of simultaneous
// opens (batched arrivals) overruns those cycles and starves established
// streams. Costs at most one extra interval of startup latency, announced
// to the client through ClockStartsAt.
func (s *Server) startAnchor(now sim.Time) sim.Time {
	t := s.cfg.Interval
	edge := ((now + t - 1) / t) * t
	return edge + s.cfg.InitialDelay
}

// Shutdown signals the server to stop (usable from any engine context).
func (s *Server) Shutdown() { s.signalPort.Send("shutdown") }

// Stopped reports whether the signal handler has run.
func (s *Server) Stopped() bool { return s.stopping }

// CycleCount returns the number of scheduler cycles the server has
// completed. A cluster's health monitor compares successive snapshots as a
// heartbeat: a server whose request manager still answers but whose cycle
// count has stopped advancing is wedged, not healthy.
//
//crasvet:snapshot
func (s *Server) CycleCount() int { return s.stats.Cycles }

// Wedge freezes the scheduler loop at its next cycle edge without touching
// the request manager: the gray failure where the control plane answers but
// no data moves. Usable from any engine context (fault injection).
func (s *Server) Wedge() { s.wedged = true }

// Unwedge releases a Wedge; the scheduler resumes on its next period.
func (s *Server) Unwedge() { s.wedged = false }

// scheduleCycle is one run of the request scheduler thread: stamp the data
// retrieved during the previous interval into the shared buffers, discard
// obsolete data, then issue the next interval's reads in cylinder order.
//
//crasvet:hotpath
func (s *Server) scheduleCycle(t *rtm.Thread, cycle int) bool {
	if s.stopping {
		return false
	}
	for s.wedged && !s.stopping { // injected gray failure: heartbeat stops, RPCs don't
		t.Sleep(s.cfg.Interval)
	}
	if s.stopping {
		return false
	}
	now := s.k.Now()
	s.cycle = cycle
	s.stats.Cycles++

	// Drain check: once every stream has run down — or the drain deadline
	// has evicted the stragglers — hand over to the abrupt shutdown path.
	if s.draining && s.drainStep(now) {
		return false
	}

	// Phase 0: the I/O watchdog. A request whose completion interrupt is
	// overdue is canceled; the abort completes through the normal I/O-done
	// path, so the cycle accounting below unwedges without special cases.
	s.watchdogScan(now, cycle)

	// Phase 1: absorb completions delivered by the I/O-done manager. On a
	// plain striped volume a failed fragment of a healthy stream is
	// re-issued on its member disk while that disk's share of the
	// interval's spare time allows (the deadline-budgeted retry policy);
	// past that budget the fragment is surrendered, and when its tag's
	// last fragment lands the stream drops the affected chunks and plays
	// on. On a parity volume retrying first would cost a full cycle per
	// attempt — enough to miss the play-out deadline — so a failed read
	// fragment goes straight to XOR reconstruction from the survivors,
	// and every raw failure feeds the member health ladder immediately.
	stamped := int64(0)
	budgets := s.retrySpares()
	for _, fg := range s.doneQ {
		s.removeInflight(fg)
		tag := fg.tag
		live := tag.gen == tag.s.gen && !tag.s.closed
		if fg.replaced {
			// The watchdog counted the error and dispatched reconstruction
			// when it canceled this fragment; its abort is just bookkeeping.
			fg.err = nil
		}
		if fg.err != nil && s.members != nil {
			s.noteMemberErr(fg.disk)
			if live && s.reconstructFrag(fg, budgets) {
				// Served by XOR from the survivors, inside this same
				// barrier: the stream never sees the failure.
				fg.err = nil
			}
		}
		if live && fg.err != nil && s.retryAllowed(fg, budgets) {
			fg.retries++
			fg.err = nil
			tag.s.stats.ReadRetries++
			s.stats.ReadRetries++
			s.submitFrag(fg)
			continue // final accounting happens when the retry completes
		}
		if fg.err != nil && tag.err == nil {
			tag.err = fg.err
		}
		if tag.cyc != nil {
			dc := &tag.cyc.disks[fg.disk]
			tag.cyc.remaining--
			dc.serviceSum += fg.completed - fg.started
			if fg.completed > tag.cyc.lastDone {
				tag.cyc.lastDone = fg.completed
			}
			if tag.cyc.remaining == 0 {
				s.finishCycleStat(tag.cyc)
			}
		}
		tag.fragsLeft--
		if tag.fragsLeft > 0 {
			continue // barrier: the tag completes with its slowest fragment
		}
		if live {
			tag.done = true
			if tag.err != nil {
				tag.failed = true
				tag.s.stats.ReadErrors++
				tag.s.cycleErrs++
				s.stats.ReadErrors++
			}
		}
	}
	s.doneQ = s.doneQ[:0]
	for _, st := range s.streams {
		if st.closed {
			continue
		}
		before := st.stats.ChunksStamped
		if st.rev != nil {
			s.absorbReverse(st, now)
		} else {
			st.absorbCompletions(now, s.mcastStampFloor(st, now))
		}
		if st.cached {
			// The open order guarantees the leader was processed earlier in
			// this loop, so chunks it discarded this cycle are already pinned.
			s.cacheStamp(st, now)
		}
		stamped += st.stats.ChunksStamped - before
		if st.mg != nil && st.mg.feed == st {
			// Fan the feed's freshly stamped chunks out to its members at this
			// same edge; the members' own loop iterations (they open later, so
			// they come later in stream order) have nothing left to stamp.
			stamped += s.mcastFeedStep(st, now)
		}
		if st.ppin != nil && !st.record && !st.mcastMember {
			// Pin prefix chunks before the discard below can drop them.
			s.prefixAdvance(st, now)
		}
		horizon := st.clock.At(now) - st.buf.Jitter()
		if st.pc != nil && st.pc.leader == st {
			s.cachePinDiscard(st, horizon, now)
		} else {
			st.buf.DiscardBefore(horizon)
		}
	}
	s.stats.ChunksStamped += stamped

	// Advance the degradation ladder from the failures just absorbed, then
	// flag sessions whose client stopped touching them for the reaper.
	s.updateStreamHealth(now)
	s.scanLeases(now)
	s.ladderPromoteStep(now)

	// Member ladder and rebuild scavenger (parity volumes): operator ops,
	// health transitions, and the next spare-paced batch of rebuild rows.
	s.memberStep(now)

	// Phase 2: collect the reads for the next interval. Suspended streams
	// stopped their clock and fetch nothing; eviction released the rest.
	horizonAt := now + 2*s.cfg.Interval
	batch := s.batchScratch[:0]
	active := 0
	for _, st := range s.streams {
		if st.closed || st.paused || st.health >= Suspended {
			continue
		}
		if st.mcastMember && s.mcastFeedGone(st) {
			// The feed stopped producing: fall back to disk now, so the reads
			// join this same cycle's batch and the switch costs one interval.
			s.mcastFallback(st, now, "feed stopped producing")
		}
		if st.mcastMember {
			continue // the feed's disk ops cover the whole group
		}
		horizon := st.clock.At(horizonAt) + st.lead
		if st.record {
			// A recorder persists what has been captured up to now.
			horizon = st.clock.At(now)
		}
		issued := 0
		if st.cached {
			// The disk fetches only the warm-up prefix the cache cannot
			// supply; the rest of the horizon advances through the cache.
			diskH := st.cacheFromTs()
			if diskH > horizon {
				diskH = horizon
			}
			warm := st.fetchTargets(diskH)
			issued += len(warm)
			batch = append(batch, warm...) //crasvet:allow hotalloc -- append into per-cycle scratch; capacity retained across cycles
			s.cacheAdvance(st, horizon)
		}
		if !st.cached {
			// Plain stream — or a follower that fell back mid-advance, whose
			// reads must join this same cycle's batch so the switch to disk
			// costs at most one interval.
			var tags []*readTag
			switch {
			case st.rev != nil:
				tags = s.fetchReverse(st, horizonAt)
			case st.dr < 1 && !st.record:
				// Reduced delivered rate: walk the chunk table and skip the
				// frames the ladder dropped instead of reading whole ranges.
				tags = st.fetchTargetsSkip(horizon)
			default:
				tags = st.fetchTargets(horizon)
			}
			issued += len(tags)
			batch = append(batch, tags...) //crasvet:allow hotalloc -- append into per-cycle scratch; capacity retained across cycles
		}
		if issued > 0 {
			active++
		}
	}
	// The scratch keeps whatever capacity this cycle's batch grew to; the
	// tags themselves are owned by their streams' pending lists.
	s.batchScratch = batch

	// CPU cost of the scheduling work itself.
	t.Compute(costCycleBase + costPerRequest*sim.Time(len(batch)) + costPerStamp*sim.Time(stamped))

	if len(batch) == 0 {
		return !s.stopping
	}

	// Fan the logical batch out into per-member-disk fragment lists. Each
	// member's list is issued in cylinder order (the disk's RT queue also
	// C-SCANs, but CRAS hands over a sorted batch as the paper describes);
	// the members then service their queues in parallel, and the barrier in
	// phase 1 completes each tag with its slowest fragment.
	cs := s.newCycleStat(cycle, active)
	perDisk := s.perDiskFrags
	for d := range perDisk {
		perDisk[d] = perDisk[d][:0]
	}
	for _, tag := range batch {
		cs.bytes += tag.hi - tag.lo
		cs.reads++
		tag.cyc = cs
		s.stats.ReadsIssued++
		s.stats.BytesRead += tag.hi - tag.lo
		// Reads on a parity volume use the read-optimized fragment plan,
		// which widens to survivor full-row reads when a member is dead
		// (degraded mode — XOR reconstruction inside this batch's barrier).
		var frags []disk.Frag
		if !tag.s.record {
			var recon int
			frags, recon = s.vol.ReadFragments(tag.lba, tag.sectors)
			if recon > 0 {
				s.stats.DegradedReads++
				s.stats.ParityReconstructions += int64(recon)
			}
		} else {
			frags = s.vol.Fragments(tag.lba, tag.sectors)
		}
		for _, f := range frags {
			if s.vol.Dead(f.Disk) {
				// A recorder's units on the dead member are carried by the
				// row parity the surviving writes maintain.
				continue
			}
			fg := &readFrag{tag: tag, disk: f.Disk, lba: f.LBA, sectors: f.Count} //crasvet:allow hotalloc -- one record per issued fragment, alive across the disk round-trip; pooling would alias the retry and watchdog paths that retain it
			tag.frags = append(tag.frags, fg)                                     //crasvet:allow hotalloc -- bounded by one tag's member fan-out; the slice lives and dies with the tag
			perDisk[f.Disk] = append(perDisk[f.Disk], fg)                         //crasvet:allow hotalloc -- append into per-cycle scratch; capacity retained across cycles
			dc := &cs.disks[f.Disk]
			dc.ops++
			dc.bytes += fg.bytes()
		}
		tag.fragsLeft = len(tag.frags)
		cs.remaining += len(tag.frags)
		if tag.fragsLeft == 0 {
			// Every fragment landed on the dead member: the write is wholly
			// parity-carried and the tag is complete at zero disk cost.
			tag.done = true
		}
	}
	// The per-interval estimate counts each member's disk operations —
	// Appendix C's formula (10) says "when N reads are performed" — because
	// an interval's fetch for one stream can split across extents (and, on
	// a volume, across members). The a-priori admission test keeps the
	// paper's per-stream N, evaluated per member.
	for d := range cs.disks {
		if cs.disks[d].ops > 0 {
			cs.disks[d].calculated = s.cfg.Params.CalculatedIOTime(cs.disks[d].ops, cs.disks[d].bytes)
		}
	}
	for d, frags := range perDisk {
		if len(frags) == 0 {
			continue
		}
		sortFragsByLBA(frags)
		cs.disks[d].otherDelay = s.vol.Disk(d).ActiveNonRTRemaining()
		for _, fg := range frags {
			s.submitFrag(fg)
		}
	}
	//crasvet:allow hotalloc -- one trace summary per cycle, not per stream; keeping it is worth one boxed arg slice
	s.k.Engine().Tracef("cras: cycle %d: %d streams, %d ops (%d fragments), %d bytes, %d chunks stamped",
		cycle, active, len(batch), cs.remaining, cs.bytes, stamped)
	return !s.stopping
}

// newCycleStat takes a cycleStat off the free list (or allocates one on a
// pool miss), with its per-member accounting zeroed.
//
//crasvet:hotpath
func (s *Server) newCycleStat(cycle, active int) *cycleStat {
	var cs *cycleStat
	if n := len(s.csFree); n > 0 {
		cs, s.csFree = s.csFree[n-1], s.csFree[:n-1]
		disks := cs.disks
		for i := range disks {
			disks[i] = diskCycle{}
		}
		*cs = cycleStat{disks: disks}
	} else {
		cs = &cycleStat{disks: make([]diskCycle, s.vol.NumDisks())} //crasvet:allow hotalloc -- pool miss: allocates once per high-water mark of outstanding batches
	}
	cs.cycle = cycle
	cs.submitted = s.k.Now()
	cs.streams = active
	return cs
}

// sortFragsByLBA orders one member's fragment list in ascending LBA — the
// C-SCAN handoff order the paper describes. Stable insertion sort,
// hand-rolled because the comparator a sort.SliceStable call captures
// would allocate per cycle, and a member's batch is small (about one
// fragment per stream).
//
//crasvet:hotpath
func sortFragsByLBA(frags []*readFrag) {
	for i := 1; i < len(frags); i++ {
		f := frags[i]
		j := i - 1
		for j >= 0 && frags[j].lba > f.lba {
			frags[j+1] = frags[j]
			j--
		}
		frags[j+1] = f
	}
}

// submitFrag issues (or re-issues) one raw disk operation for a fragment on
// its member disk and registers it with the watchdog's in-flight set. The
// request lives inside the fragment (reused across retries: the disk is
// done with it before any re-issue) and carries the fragment on Tag, so
// every submission shares the one completion closure built at init.
//
//crasvet:hotpath
func (s *Server) submitFrag(fg *readFrag) {
	fg.reqS = disk.Request{
		LBA: fg.lba, Count: fg.sectors, RealTime: !s.cfg.NoRTQueue,
		Write: fg.tag.s.record, // sparse payload: placement is what matters
		Tag:   fg,
		Done:  s.fragDone,
	}
	fg.req = &fg.reqS
	fg.issuedAt = s.k.Now()
	s.inflight = append(s.inflight, fg) //crasvet:allow hotalloc -- append into the watchdog scan set; capacity retained across cycles
	s.stats.DiskReads[fg.disk]++
	s.stats.DiskBytes[fg.disk] += fg.bytes()
	s.vol.Disk(fg.disk).Submit(fg.req)
}

// removeInflight drops a completed fragment from the watchdog's scan set.
// The splice preserves issue order: the watchdog cancels (and thereby
// restarts) stalled members oldest-first, and that order must be stable for
// the deterministic replay the chaos scenarios depend on — a swap-remove
// would reshuffle which wedged spindle gets unblocked first.
//
//crasvet:hotpath
func (s *Server) removeInflight(fg *readFrag) {
	for i, f := range s.inflight {
		if f == fg {
			s.inflight = append(s.inflight[:i], s.inflight[i+1:]...) //crasvet:allow hotalloc -- slide-down remove within the existing backing array; this append never grows
			return
		}
	}
}

// finishCycleStat records a completed batch's accuracy and checks the
// I/O deadline (end of the interval that issued it). The "actual disk I/O
// time" compared against the estimate is, per member disk, the mechanism
// time the member's fragments consumed plus the delay from a non-real-time
// request that was in service when the batch was submitted — the
// quantities formulas (9)-(15) bound. The members work in parallel and the
// batch barriers on the slowest, so both the actual and the calculated
// batch time are the worst member's. Queueing behind a previous
// overrunning batch is deliberately excluded: that is a symptom of
// oversubscription, not estimation error.
//
//crasvet:hotpath
func (s *Server) finishCycleStat(cs *cycleStat) {
	var actual, calculated sim.Time
	for i := range cs.disks {
		dc := &cs.disks[i]
		if dc.ops == 0 {
			continue
		}
		if a := dc.otherDelay + dc.serviceSum; a > actual {
			actual = a
		}
		if dc.calculated > calculated {
			calculated = dc.calculated
		}
	}
	s.stats.Accuracy = append(s.stats.Accuracy, AccuracyRecord{ //crasvet:allow hotalloc -- the accuracy history is the experiment's product (Figures 8 and 9)
		Cycle: cs.cycle, Streams: cs.streams, Bytes: cs.bytes,
		Actual: actual, Calculated: calculated,
	})
	deadline := cs.submitted + s.cfg.Interval
	if cs.lastDone > deadline {
		s.deadlinePort.Send(IOOverrun{Cycle: cs.cycle, LateBy: cs.lastDone - deadline})
	}
	// remaining==0 means every fragment of every tag in this batch — retries
	// included, which keep remaining held until their final completion — has
	// been absorbed; nothing can touch the stat again, so it is recyclable.
	s.csFree = append(s.csFree, cs) //crasvet:allow hotalloc -- free-list push; capacity retained across cycles
}

// ---- request manager operations ----

type (
	openReq struct {
		info   *media.StreamInfo
		path   string
		rate   float64
		dr     float64  // requested delivered rate (0 = full)
		at     sim.Time // initial logical position (attach-at-stamp reopen)
		force  bool
		record bool
	}
	closeReq struct{ id int }
	startReq struct{ id int }
	stopReq  struct{ id int }
	seekReq  struct {
		id      int
		logical sim.Time
	}
	setRateReq struct {
		id   int
		rate float64
	}
	pauseReq  struct{ id int }
	resumeReq struct{ id int }
	renewReq  struct{ id int }

	openResp struct {
		st  *stream
		err error
	}
	opResp struct{ err error }
)

func (s *Server) findStream(id int) *stream {
	for _, st := range s.streams {
		if st.id == id && !st.closed {
			return st
		}
	}
	return nil
}

// session finds an open stream for a control RPC and renews its lease: any
// client call is proof of life.
func (s *Server) session(id int, now sim.Time) *stream {
	st := s.findStream(id)
	if st != nil {
		st.touch(now)
	}
	return st
}

// admit runs the admission test for a candidate stream set against the
// server's interval, memory budget and volume shape. On one disk it is
// exactly the paper's test; on a striped volume every member must pass,
// and on a degraded parity volume every stream is charged its full-row
// reconstruction load.
func (s *Server) admit(set []StreamParams) error {
	return s.cfg.Params.AdmitShape(s.cfg.Interval, s.ramBudget(), s.volShape(), set)
}

// admissionSet returns the StreamParams of all open streams plus extras.
func (s *Server) admissionSet(extra ...StreamParams) []StreamParams {
	var set []StreamParams
	for _, st := range s.streams {
		if !st.closed {
			set = append(set, st.par)
		}
	}
	return append(set, extra...)
}

func (s *Server) handleRequest(t *rtm.Thread, req any) any {
	now := s.k.Now()
	switch r := req.(type) {
	case openReq:
		return s.handleOpen(t, r)
	case closeReq:
		st := s.session(r.id, now)
		if st == nil {
			return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
		}
		st.closed = true
		st.gen++
		s.cacheOnClose(st, now)
		s.mcastOnClose(st, now)
		if st.clientPort != nil {
			// An orderly close needs no dead-name notification.
			st.clientPort.NotifyDeadName(nil)
			st.clientPort.Destroy()
		}
		return opResp{}
	case renewReq:
		if s.session(r.id, now) == nil {
			return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
		}
		return opResp{}
	case startReq:
		st := s.session(r.id, now)
		if st == nil {
			return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
		}
		st.clock.Start(now, s.startAnchor(now))
		return opResp{}
	case stopReq:
		st := s.session(r.id, now)
		if st == nil {
			return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
		}
		st.clock.Stop(now)
		return opResp{}
	case seekReq:
		return s.handleSeek(r, now)
	case setRateReq:
		return s.handleSetRate(r, now)
	case pauseReq:
		return s.handlePause(r, now)
	case resumeReq:
		return s.handleResume(r, now)
	}
	return opResp{err: fmt.Errorf("cras: unknown request %T", req)}
}

func (s *Server) handleOpen(t *rtm.Thread, r openReq) openResp {
	if s.draining {
		return openResp{err: ErrDraining}
	}
	if r.rate == 0 {
		r.rate = 1
	}
	if r.rate < 0 {
		return openResp{err: fmt.Errorf("cras: open %s: negative rate %g (open forward, then SetRate to rewind)", r.path, r.rate)}
	}
	if err := r.info.Validate(); err != nil {
		return openResp{err: err}
	}
	if r.at < 0 || r.record {
		r.at = 0
	}
	if r.at >= r.info.TotalDuration() {
		return openResp{err: fmt.Errorf("cras: open %s at %v: past the end of the media", r.path, r.at)}
	}
	now := s.k.Now()
	// The requested delivered rate, quantized to the configured ladder
	// (exact fractions pass through when no ladder is set — the cluster's
	// degraded re-admission relies on that).
	wantDr := 1.0
	if r.dr > 0 && r.dr < 1 && !r.record {
		wantDr = s.ladderSnap(r.dr)
	}
	dr := wantDr
	base := r.info.WorstCaseRate(s.cfg.Interval) * r.rate
	par := StreamParams{
		Rate:  base * dr,
		Chunk: maxChunkSize(r.info),
	}
	par = s.volParams(par)
	// Multicast batching: a playback open on a path a batchable stream is
	// already playing rides that stream's fan-out group, charging fan-out
	// RAM against the prefix budget and zero disk time — provided the
	// reservation fits beside the pinned prefixes. Every playback open
	// also feeds the popularity tracker that qualifies prefixes.
	var feed *stream
	var fanCharge int64
	if s.mcastEnabled() && !r.record {
		// The half-open tolerance absorbs the decay an instant of age already
		// applies: the Nth open inside the popularity window counts N-epsilon
		// decayed opens, and it is the Nth open that should qualify.
		if s.popNote(r.path, now)+0.5 >= float64(s.cfg.PrefixMinOpens) {
			s.prefixQualify(r.path)
		}
		feed = s.mcastCandidate(r, now)
		if feed != nil {
			// A reopen at a later stamp point trails the feed by that much
			// less; a non-positive gap means the opener would run ahead of
			// the feed, which the fan-out cannot supply.
			gap := s.mcastGap(feed, now) - r.at
			fanCharge = s.mcastFanoutCharge(gap, par)
			if gap <= 0 || s.mcast.fanout+s.mcast.pinned+fanCharge > s.mcast.budget || s.mcastGap(feed, now) >= r.info.TotalDuration() {
				s.stats.MulticastRefused++
				feed = nil
			} else {
				par.Multicast = true
				par.FanoutBytes = fanCharge
			}
		}
	}
	// Interval cache: a playback open on a path an active stream is already
	// playing can follow that stream, charging pinned RAM instead of disk
	// time — provided the steady-state pin reservation fits the budget.
	var leader *stream
	var reservation int64
	if feed == nil {
		leader, reservation, par = s.cachePlan(r, now, par)
	}
	if !r.force {
		for {
			err := s.admit(s.admissionSet(par))
			if err == nil {
				break
			}
			if par.Multicast {
				// A member whose fan-out charge does not fit may still be
				// admissible as a cache follower or a plain disk stream —
				// the same one-way ladder the running server walks.
				par.Multicast = false
				par.FanoutBytes = 0
				feed = nil
				s.stats.MulticastRefused++
				leader, reservation, par = s.cachePlan(r, now, par)
				continue
			}
			if par.Cached {
				// A follower whose pinned-interval charge does not fit may
				// still be admissible as a plain disk stream (B_i is never
				// larger than the cache charge, but adds disk time).
				par.Cached = false
				par.CacheBytes = 0
				leader = nil
				continue
			}
			// A non-cacheable stream refused for buffer memory reclaims
			// pinned RAM: evict the largest-interval path cache and retry.
			if ae, ok := err.(*AdmissionError); ok && ae.NeedBuffer > ae.Budget && s.cacheEvictLargest(now) {
				continue
			}
			// Reduced-rate warm-up (vcr.go): walk the frame-rate ladder
			// down before giving up — a viewer at fewer frames now, stepped
			// back to full rate by the promotion pass when capacity frees,
			// beats a refused open.
			if len(s.cfg.RateLadder) > 0 && !r.record {
				if next, ok := s.ladderBelow(dr); ok {
					dr = next
					par = s.volParams(StreamParams{Rate: base * dr, Chunk: par.Chunk})
					continue
				}
			}
			s.stats.AdmissionRejects++
			return openResp{err: err}
		}
	}

	// Non-real-time path: resolve the file's block map. Recording sessions
	// preallocate every block up front — the file-system modification the
	// paper's conclusion calls for — so the periodic writer never touches
	// the allocator.
	var blocks []uint32
	var size int64
	var err error
	if r.record {
		blocks, size, err = s.resolver.ResolveRecord(t, r.path, r.info.TotalSize())
	} else {
		blocks, size, err = s.resolver.ResolvePlayback(t, r.path)
	}
	if err != nil {
		return openResp{err: fmt.Errorf("cras: open %s: %w", r.path, err)}
	}
	if size < r.info.TotalSize() {
		return openResp{err: fmt.Errorf("cras: media file %s is %d bytes, chunk table needs %d", r.path, size, r.info.TotalSize())}
	}
	ext, err := BuildExtentMap(blocks, size, s.cfg.MaxRead)
	if err != nil {
		return openResp{err: err}
	}

	st := &stream{
		id:       s.nextID,
		name:     r.path,
		info:     r.info,
		par:      par,
		ext:      ext,
		record:   r.record,
		dr:       dr,
		baseRate: r.info.WorstCaseRate(s.cfg.Interval),
		clock:    NewLogicalClock(),
		buf:      NewTDBuffer(s.bufferCapacity(par), s.cfg.Jitter),
	}
	st.stepCycle = s.cycle
	if dr < wantDr {
		s.stats.OpensReduced++
	}
	if !r.record {
		// One interval of safety lead keeps the worst-case stamping margin
		// at half an interval instead of zero (the paper's Figure 4 shows
		// Tread_ahead running ahead of Tnow); any initial delay beyond the
		// minimum 2T adds further prefill on top.
		leadReal := s.cfg.Interval
		if extra := s.cfg.InitialDelay - 2*s.cfg.Interval; extra > 0 {
			leadReal += extra
		}
		st.lead = sim.Time(float64(leadReal) * r.rate)
		st.wholeExtents = dr >= 1 && int64(leadReal.Seconds()*par.Rate) >= int64(s.cfg.MaxRead)
	}
	// Spread any prefill over the startup window: at most twice the
	// steady-state amount per interval.
	st.cycleCap = 2 * (int64(s.cfg.Interval.Seconds()*par.Rate) + par.Chunk)
	st.clock.SetRate(s.k.Now(), r.rate)
	st.seekTo(r.at)
	if r.at > 0 {
		// Attach-at-stamp reopen: the clock holds the resume point until
		// Start arms it, and the fetch machinery is already positioned there.
		st.clock.Seek(now, r.at)
	}
	st.openedAt = now
	if feed != nil {
		s.mcastAttach(st, feed, fanCharge, now)
	} else if leader != nil {
		s.cacheAttach(st, leader, reservation, now)
	}
	if !r.record {
		st.ppin = s.prefixFor(r.path)
	}
	// The session lease starts now; the per-session client port is the
	// dead-name fast path that reaps the session the moment the client's
	// ports are reclaimed, without waiting out the TTL.
	st.leaseAt = now
	st.clientPort = s.k.NewPort(fmt.Sprintf("cras.client.%d", s.nextID))
	st.clientPort.NotifyDeadName(s.deadlinePort)
	s.nextID++
	s.streams = append(s.streams, st)
	return openResp{st: st}
}

// bufferCapacity sizes a stream's shared buffer. The admission test charges
// the paper's B_i = 2*(T*R_i + C_i); the actual allocation additionally
// covers the jitter window J that Figure 4 shows inside the buffer (data
// younger than Tdiscard = Tnow - J is retained), plus one chunk of
// stamping-granularity slack.
func (s *Server) bufferCapacity(par StreamParams) int64 {
	cap := BufferPerStream(s.cfg.Interval, par) +
		int64(s.cfg.Jitter.Seconds()*par.Rate) + par.Chunk
	// The fetch horizon leads consumption by one safety interval plus any
	// initial delay beyond 2T (see stream.lead); the buffer must hold it.
	lead := s.cfg.Interval
	if extra := s.cfg.InitialDelay - 2*s.cfg.Interval; extra > 0 {
		lead += extra
	}
	return cap + int64(lead.Seconds()*par.Rate)
}

func maxChunkSize(info *media.StreamInfo) int64 {
	var max int64
	for _, c := range info.Chunks {
		if c.Size > max {
			max = c.Size
		}
	}
	return max
}
