package core

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/ufs"
)

// Extent is a contiguous run of disk sectors backing a contiguous byte
// range of a media file. CRAS reads extents raw, on the real-time queue,
// with no file system in the loop.
type Extent struct {
	FileOff int64 // byte offset in the file of the first block in the run
	LBA     int64 // first sector
	Sectors int   // run length in sectors
}

// Bytes returns the extent length in bytes.
func (e Extent) Bytes() int64 { return int64(e.Sectors) * 512 }

// ExtentMap is a file's layout as CRAS sees it after open: contiguous
// physical runs, each capped at the configured maximum read size (256 KB in
// the paper), in file order.
type ExtentMap struct {
	Extents []Extent
	Size    int64 // file size in bytes
}

// BuildExtentMap converts a UFS block map into extents. maxReadBytes caps
// run length (the paper's 256 KB single-read optimum); holes (block 0) are
// rejected — a continuous media file must be fully allocated.
func BuildExtentMap(blocks []uint32, size int64, maxReadBytes int) (*ExtentMap, error) {
	if maxReadBytes < ufs.BlockSize {
		maxReadBytes = ufs.BlockSize
	}
	maxBlocks := maxReadBytes / ufs.BlockSize
	m := &ExtentMap{Size: size}
	for i := 0; i < len(blocks); {
		if blocks[i] == 0 {
			return nil, fmt.Errorf("core: media file has a hole at block %d", i)
		}
		runStart := i
		for i+1 < len(blocks) &&
			blocks[i+1] == blocks[i]+1 &&
			i+1-runStart < maxBlocks {
			i++
		}
		i++
		m.Extents = append(m.Extents, Extent{
			FileOff: int64(runStart) * ufs.BlockSize,
			LBA:     int64(blocks[runStart]) * ufs.SectorsPerBlock,
			Sectors: (i - runStart) * ufs.SectorsPerBlock,
		})
	}
	return m, nil
}

// AverageRunBytes reports the mean extent length — the fragmentation
// indicator behind the Section 3.2 editing discussion.
func (m *ExtentMap) AverageRunBytes() int64 {
	if len(m.Extents) == 0 {
		return 0
	}
	var total int64
	for _, e := range m.Extents {
		total += e.Bytes()
	}
	return total / int64(len(m.Extents))
}

// DiskFootprint maps the extent map onto a striped volume's members: entry
// d is the total sectors of the file resident on member d. The scheduler
// does the same projection per read via Volume.Fragments; this whole-file
// form backs diagnostics and the stripe tests (a fully striped file spreads
// within one stripe row of even; a file smaller than a stripe unit sits on
// one member).
func (m *ExtentMap) DiskFootprint(v *disk.Volume) []int64 {
	out := make([]int64, v.NumDisks())
	for _, e := range m.Extents {
		for _, f := range v.Fragments(e.LBA, e.Sectors) {
			out[f.Disk] += int64(f.Count)
		}
	}
	return out
}

// ExtentsFor returns the extents overlapping the byte range [lo, hi),
// clipped to whole extents (CRAS reads at block granularity; a range is
// covered by reading every extent it touches).
func (m *ExtentMap) ExtentsFor(lo, hi int64) []Extent {
	var out []Extent
	for _, e := range m.Extents {
		if e.FileOff+e.Bytes() <= lo {
			continue
		}
		if e.FileOff >= hi {
			break
		}
		out = append(out, e)
	}
	return out
}
