package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/sim"
)

// Property-based exercise of the time-driven buffer: seeded random op
// sequences with full-state invariant checks after every operation. The
// seed defaults to a fixed value so the suite is deterministic; CI (and
// anyone chasing a failure) overrides it with TDBUF_PROP_SEED, and every
// failure message carries the seed so the exact sequence replays with
//
//	TDBUF_PROP_SEED=<seed> go test ./internal/core -run TestTDBufferProperties
func TestTDBufferProperties(t *testing.T) {
	seed := int64(20260805)
	if env := os.Getenv("TDBUF_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("TDBUF_PROP_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("property seed %d (override with TDBUF_PROP_SEED)", seed)
	root := rand.New(rand.NewSource(seed))
	for seq := 0; seq < 40; seq++ {
		runTDBufferSequence(t, seed, seq, rand.New(rand.NewSource(root.Int63())))
		if t.Failed() {
			return // one broken sequence is enough; later ones only add noise
		}
	}
}

// runTDBufferSequence drives one buffer through a random op sequence. The
// generator leans on the same chunk grid the server uses — fixed duration,
// index == timestamp/duration — so Insert's overlap rule is exercised by
// duplicate timestamps rather than degenerate half-overlapping chunks,
// and a shadow model of the expected resident set stays trivial to keep.
func runTDBufferSequence(t *testing.T, seed int64, seq int, rng *rand.Rand) {
	const dur = 33 * time.Millisecond // one chunk of ~30 fps media
	capacity := int64(4000 + rng.Intn(16000))
	b := NewTDBuffer(capacity, 100*time.Millisecond)

	fail := func(op string, format string, args ...interface{}) {
		t.Errorf("seed %d seq %d after %s: %s", seed, seq, op, fmt.Sprintf(format, args...))
	}

	horizon := sim.Time(0) // high-water mark of every tdiscard passed in
	for op := 0; op < 400 && !t.Failed(); op++ {
		var desc string
		switch k := rng.Intn(10); {
		case k < 5: // Insert dominates: the server stamps far more than it seeks
			idx := rng.Intn(120)
			c := BufferedChunk{
				Index:     idx,
				Timestamp: sim.Time(idx) * dur,
				Duration:  dur,
				Size:      int64(200 + rng.Intn(800)),
				StampedAt: sim.Time(op) * time.Millisecond,
			}
			if c.Timestamp+c.Duration <= horizon {
				// The scheduler never stamps a fully expired chunk (the
				// ChunksLate skip rule); mirror that so the horizon
				// invariant below is meaningful.
				continue
			}
			wasAt, resident := b.At(c.Timestamp)
			ok := b.Insert(c)
			desc = fmt.Sprintf("Insert(idx %d, %d B) = %v", idx, c.Size, ok)
			if ok && resident {
				fail(desc, "insert accepted over resident chunk %+v", wasAt)
			}
			if !ok && !resident && b.Bytes()+c.Size <= b.Capacity() {
				fail(desc, "insert refused with %d/%d bytes free and no overlap",
					b.Capacity()-b.Bytes(), b.Capacity())
			}
		case k < 7: // DiscardBefore with a monotone or regressing horizon
			td := sim.Time(rng.Intn(140)) * dur
			n := b.DiscardBefore(td)
			desc = fmt.Sprintf("DiscardBefore(%v) = %d", td, n)
			if td > horizon {
				horizon = td
			}
			for i, c := range b.chunks {
				if c.Timestamp < td {
					fail(desc, "chunk %d stamped %v survives its own discard at %v", i, c.Timestamp, td)
				}
			}
		case k < 8:
			c := int64(2000 + rng.Intn(20000))
			b.SetCapacity(c)
			desc = fmt.Sprintf("SetCapacity(%d)", c)
			if b.Capacity() < b.Bytes() {
				fail(desc, "capacity %d shrank below resident %d", b.Capacity(), b.Bytes())
			}
		case k < 9:
			at := sim.Time(rng.Intn(120))*dur + sim.Time(rng.Intn(int(dur)))
			c, ok := b.Get(at)
			desc = fmt.Sprintf("Get(%v) = %v", at, ok)
			if ok && (c.Timestamp > at || at >= c.Timestamp+c.Duration) {
				fail(desc, "returned chunk [%v,%v) does not cover query", c.Timestamp, c.Timestamp+c.Duration)
			}
			if ok && c.Timestamp+c.Duration <= horizon {
				// A chunk may be stamped late — covering the horizon from
				// just behind it, within the jitter allowance — but one
				// wholly behind the discard horizon must never surface.
				fail(desc, "returned chunk [%v,%v), wholly before discard horizon %v",
					c.Timestamp, c.Timestamp+c.Duration, horizon)
			}
		default:
			at := sim.Time(rng.Intn(140)) * dur
			got := b.Peek(at)
			_, want := b.At(at)
			desc = fmt.Sprintf("Peek(%v) = %v", at, got)
			if got != want {
				fail(desc, "Peek disagrees with At = %v", want)
			}
		}
		checkTDBufferInvariants(t, b, horizon, fail, desc)
	}
}

// checkTDBufferInvariants asserts the structural properties that every
// TDBuffer operation must preserve: chunks sorted and non-overlapping in
// logical time, byte accounting exact and within capacity, and nothing
// fully expired (wholly behind the discard horizon) resident.
func checkTDBufferInvariants(t *testing.T, b *TDBuffer, horizon sim.Time,
	fail func(op, format string, args ...interface{}), desc string) {
	var sum int64
	for i, c := range b.chunks {
		sum += c.Size
		if c.Timestamp+c.Duration <= horizon {
			fail(desc, "chunk %d [%v,%v) survives wholly behind discard horizon %v",
				i, c.Timestamp, c.Timestamp+c.Duration, horizon)
		}
		if i == 0 {
			continue
		}
		prev := b.chunks[i-1]
		if prev.Timestamp >= c.Timestamp {
			fail(desc, "chunks %d,%d out of order: %v then %v", i-1, i, prev.Timestamp, c.Timestamp)
		}
		if prev.Timestamp+prev.Duration > c.Timestamp {
			fail(desc, "chunks %d,%d overlap: [%v,%v) then %v",
				i-1, i, prev.Timestamp, prev.Timestamp+prev.Duration, c.Timestamp)
		}
	}
	if sum != b.Bytes() {
		fail(desc, "Bytes() = %d but resident chunks sum to %d", b.Bytes(), sum)
	}
	if b.Bytes() > b.Capacity() {
		fail(desc, "Bytes() = %d exceeds capacity %d", b.Bytes(), b.Capacity())
	}
}
