package core

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

// mcastGoldenResult captures one fixed-seed four-viewer run: per-viewer
// delivery digests (chunk sequence + per-frame delay), losses, and the
// server counters the transparency comparison cares about.
type mcastGoldenResult struct {
	digests [4]uint64
	lost    [4]int
	stats   Stats
	member  [4]bool
	prefix  [4]bool
}

// mcastGoldenWorkload opens four viewers of one movie — three in a 600 ms
// burst (a batch) and a fourth 3 s in (a prefix latecomer) — and plays a
// fixed frame count of each, recording the delivered digests.
func mcastGoldenWorkload(t *testing.T, b *bed, th *rtm.Thread,
	movie *media.StreamInfo, res *mcastGoldenResult) {
	var hs [4]*Handle
	open := func(i int) {
		h, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
		if err != nil {
			t.Errorf("open viewer %d: %v", i, err)
			return
		}
		h.Start(th)
		hs[i] = h
	}
	open(0)
	th.Sleep(300 * time.Millisecond)
	open(1)
	th.Sleep(300 * time.Millisecond)
	open(2)
	if t.Failed() {
		return
	}

	done := [3]bool{}
	for i := 0; i < 3; i++ {
		i := i
		b.k.NewThread("player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
			res.digests[i], res.lost[i] = goldenPlay(b, th2, hs[i], 200)
			done[i] = true
		})
	}

	th.Sleep(2400 * time.Millisecond) // viewer 3 arrives 3 s after viewer 0
	open(3)
	if t.Failed() {
		return
	}
	for i, h := range hs {
		res.member[i] = h.MulticastMember()
		res.prefix[i] = h.PrefixStarted()
	}
	res.digests[3], res.lost[3] = goldenPlay(b, th, hs[3], 150)
	for !done[0] || !done[1] || !done[2] {
		th.Sleep(100 * time.Millisecond)
	}
	res.stats = b.cras.Stats()
	for _, h := range hs {
		h.Close(th)
	}
}

// runMcastGoldenScenario plays the four-viewer workload with the given
// multicast knobs, everything else (seed included) held constant.
func runMcastGoldenScenario(t *testing.T, window time.Duration, budget int64) mcastGoldenResult {
	t.Helper()
	movie := media.MPEG1().Generate("/hot", 12*time.Second)
	var res mcastGoldenResult
	newBed(t, 23, ufs.Options{},
		Config{BatchWindow: window, PrefixBudget: budget, PrefixMinOpens: 2},
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			mcastGoldenWorkload(t, b, th, movie, &res)
		})
	return res
}

// Multicast batching must be invisible to delivery: with batching on, every
// viewer — fan-out members and the prefix-started latecomer included —
// receives the byte-identical chunk sequence at the identical per-frame
// delays as the same four-viewer run served entirely from disk. Only the
// disk traffic and the multicast counters may differ.
func TestGoldenMulticastTransparency(t *testing.T) {
	off := runMcastGoldenScenario(t, 0, 0)
	on := runMcastGoldenScenario(t, 2*time.Second, 8<<20)
	if t.Failed() {
		return
	}

	for i := range off.digests {
		if off.lost[i] != 0 || on.lost[i] != 0 {
			t.Errorf("viewer %d lost frames: batch-off %d, batch-on %d", i, off.lost[i], on.lost[i])
		}
		if off.digests[i] != on.digests[i] {
			t.Errorf("viewer %d delivered sequence diverged: batch-off %016x, batch-on %016x",
				i, off.digests[i], on.digests[i])
		}
	}

	// The batched run must actually have batched: the two burst viewers ride
	// the first's group, and the latecomer starts from the pinned prefix.
	if !on.member[1] || !on.member[2] {
		t.Errorf("burst viewers not fanned out: member=%v", on.member)
	}
	if !on.member[3] || !on.prefix[3] {
		t.Errorf("latecomer member=%v prefix-started=%v, want both", on.member[3], on.prefix[3])
	}
	if on.stats.MulticastAttached < 3 || on.stats.PrefixStarts < 1 {
		t.Errorf("attached=%d prefixStarts=%d, want >=3 and >=1",
			on.stats.MulticastAttached, on.stats.PrefixStarts)
	}
	if off.stats.MulticastAttached != 0 || off.stats.PrefixStarts != 0 {
		t.Errorf("batch-off run recorded multicast activity: attached=%d starts=%d",
			off.stats.MulticastAttached, off.stats.PrefixStarts)
	}

	// One set of disk ops feeds the whole group: the batched run reads
	// strictly less from disk.
	if on.stats.BytesRead >= off.stats.BytesRead {
		t.Errorf("batch-on read %d disk bytes, want fewer than batch-off's %d",
			on.stats.BytesRead, off.stats.BytesRead)
	}
}

// A prefix-started viewer's delivery must also be byte-identical to a solo
// viewer of the same title on an idle server — from frame 0: the pinned
// head is real delivered data, not an approximation of it.
func TestGoldenPrefixStartSoloEquivalence(t *testing.T) {
	on := runMcastGoldenScenario(t, 2*time.Second, 8<<20)

	movie := media.MPEG1().Generate("/hot", 12*time.Second)
	var solo uint64
	var soloLost int
	newBed(t, 23, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			th.Sleep(3 * time.Second) // same arrival time as the latecomer
			h, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Errorf("solo open: %v", err)
				return
			}
			h.Start(th)
			solo, soloLost = goldenPlay(b, th, h, 150)
			h.Close(th)
		})
	if t.Failed() {
		return
	}
	if soloLost != 0 || on.lost[3] != 0 {
		t.Fatalf("lost frames: solo %d, prefix-started %d", soloLost, on.lost[3])
	}
	if !on.prefix[3] {
		t.Fatalf("latecomer was not prefix-started")
	}
	if solo != on.digests[3] {
		t.Errorf("prefix-started delivery diverged from the solo run: solo %016x, batched %016x",
			solo, on.digests[3])
	}
}
