package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// table4 returns admission parameters set directly to the paper's Table 4,
// for testing the formulas against hand-computed values.
func botherTime() sim.Time {
	v := float64(64<<10) / 6.5e6 * float64(time.Second)
	return sim.Time(v)
}

func table4() AdmissionParams {
	return AdmissionParams{
		D:        6.5e6,
		TseekMax: 17 * time.Millisecond,
		TseekMin: 4 * time.Millisecond,
		Trot:     8330 * time.Microsecond,
		Tcmd:     2 * time.Millisecond,
		Bother:   64 << 10,
	}
}

func mpeg1Params() StreamParams { return StreamParams{Rate: 1.5e6 / 8, Chunk: 6250} }
func mpeg2Params() StreamParams { return StreamParams{Rate: 6e6 / 8, Chunk: 25000} }

func approxDur(t *testing.T, got, want sim.Time, tol time.Duration, what string) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("%s = %v, want %v (+/- %v)", what, got, want, tol)
	}
}

func TestOtherOverheadFormula9(t *testing.T) {
	a := table4()
	// O_other = Tcmd + Tseek_max + Trot + Bother/D
	//         = 2 + 17 + 8.33 + 65536/6.5e6 s (~10.08 ms)
	want := 2*time.Millisecond + 17*time.Millisecond + 8330*time.Microsecond +
		botherTime()
	approxDur(t, a.OtherOverhead(), want, time.Microsecond, "O_other")
}

func TestSeekOverheadFormulas11And12(t *testing.T) {
	a := table4()
	if a.SeekOverhead(0) != 0 {
		t.Fatal("O_seek(0) should be 0")
	}
	if a.SeekOverhead(1) != 17*time.Millisecond {
		t.Fatalf("O_seek(1) = %v, want Tseek_max", a.SeekOverhead(1))
	}
	// O_seek(N) = 2*Tseek_max + (N-2)*Tseek_min
	if got, want := a.SeekOverhead(5), 2*17*time.Millisecond+3*4*time.Millisecond; got != want {
		t.Fatalf("O_seek(5) = %v, want %v", got, want)
	}
	if got, want := a.SeekOverhead(2), 2*17*time.Millisecond; got != want {
		t.Fatalf("O_seek(2) = %v, want %v", got, want)
	}
}

func TestTotalOverheadFormulas14And15(t *testing.T) {
	a := table4()
	// O_total(1) = Bother/D + 2*(Tseek_max + Trot + Tcmd)
	want1 := botherTime() +
		2*(17*time.Millisecond+8330*time.Microsecond+2*time.Millisecond)
	approxDur(t, a.TotalOverhead(1), want1, time.Microsecond, "O_total(1)")

	// O_total(N) = Bother/D + 3*Tseek_max + (N-2)*Tseek_min + (N+1)*(Trot+Tcmd)
	n := 7
	wantN := botherTime() +
		3*17*time.Millisecond + sim.Time(n-2)*4*time.Millisecond +
		sim.Time(n+1)*(8330*time.Microsecond+2*time.Millisecond)
	approxDur(t, a.TotalOverhead(n), wantN, time.Microsecond, "O_total(7)")
}

func TestRequiredIntervalMatchesFormula1(t *testing.T) {
	a := table4()
	streams := []StreamParams{mpeg1Params(), mpeg1Params(), mpeg1Params()}
	got, err := a.RequiredInterval(streams)
	if err != nil {
		t.Fatal(err)
	}
	// T >= (O_total*D + C_total) / (D - R_total), computed by hand.
	oTotal := a.TotalOverhead(3).Seconds()
	want := (oTotal*6.5e6 + 3*6250) / (6.5e6 - 3*187500)
	approxDur(t, got, sim.Time(want*float64(time.Second)), 10*time.Microsecond, "required interval")
}

func TestRequiredIntervalRejectsOversubscribedRate(t *testing.T) {
	a := table4()
	var streams []StreamParams
	for i := 0; i < 40; i++ { // 40 * 187.5 KB/s = 7.5 MB/s > 6.5 MB/s
		streams = append(streams, mpeg1Params())
	}
	if _, err := a.RequiredInterval(streams); err == nil {
		t.Fatal("aggregate rate above disk rate accepted")
	}
}

func TestBufferFormulas(t *testing.T) {
	tI := 500 * time.Millisecond
	s := mpeg1Params()
	// B_i = 2*(T*R_i + C_i) = 2*(93750 + 6250) = 200000
	if got := BufferPerStream(tI, s); got != 200000 {
		t.Fatalf("B_i = %d, want 200000", got)
	}
	if got := TotalBuffer(tI, []StreamParams{s, s, s}); got != 600000 {
		t.Fatalf("B_total = %d, want 600000", got)
	}
}

func TestAdmitBoundaries(t *testing.T) {
	a := table4()
	tI := 500 * time.Millisecond

	// A modest set passes with a generous budget.
	set := []StreamParams{mpeg1Params(), mpeg1Params()}
	if err := a.Admit(tI, 64<<20, set); err != nil {
		t.Fatalf("2 streams rejected: %v", err)
	}

	// Buffer budget rejection: need 400000 bytes for 2 streams.
	err := a.Admit(tI, 300000, set)
	ae, ok := err.(*AdmissionError)
	if !ok {
		t.Fatalf("expected AdmissionError, got %v", err)
	}
	if ae.NeedBuffer != 400000 || ae.Budget != 300000 {
		t.Fatalf("admission error fields: %+v", ae)
	}
	if ae.Error() == "" {
		t.Fatal("empty error string")
	}

	// Interval rejection: stuff in streams until T=0.5s is too short.
	var big []StreamParams
	for i := 0; i < 20; i++ {
		big = append(big, mpeg1Params())
	}
	if err := a.Admit(tI, 1<<30, big); err == nil {
		t.Fatal("20 MPEG1 streams admitted at T=0.5s; the paper's test is more pessimistic than that")
	}
}

// The paper-scale capacity check: at T=0.5s the admission test should admit
// roughly 14-15 MPEG1 streams (pessimistic vs the ~19 the disk really
// sustains) and about 5 MPEG2 streams (Figure 9 sweeps 1-5).
func TestMaxStreamsPaperScale(t *testing.T) {
	a := table4()
	tI := 500 * time.Millisecond
	n1 := a.MaxStreams(tI, 1<<30, mpeg1Params())
	if n1 < 12 || n1 > 17 {
		t.Fatalf("MaxStreams(MPEG1) = %d, want ~14", n1)
	}
	n2 := a.MaxStreams(tI, 1<<30, mpeg2Params())
	if n2 < 4 || n2 > 7 {
		t.Fatalf("MaxStreams(MPEG2) = %d, want ~5", n2)
	}
	if a.MaxStreams(tI, 100000, mpeg1Params()) >= n1 {
		t.Fatal("a tiny buffer budget should reduce capacity")
	}
}

func TestMeasureAdmissionParamsAgainstTable4(t *testing.T) {
	e := sim.NewEngine(1)
	g, p := disk.ST32550N()
	d := disk.New(e, "sd0", g, p)
	a := MeasureAdmissionParams(d, 64<<10)
	if a.D < 6.3e6 || a.D > 6.7e6 {
		t.Fatalf("measured D = %.2f MB/s, want ~6.5", a.D/1e6)
	}
	if a.TseekMin < 2*time.Millisecond || a.TseekMin > 6*time.Millisecond {
		t.Fatalf("measured Tseek_min = %v, want ~4ms", a.TseekMin)
	}
	if a.TseekMax < 15*time.Millisecond || a.TseekMax > 19*time.Millisecond {
		t.Fatalf("measured Tseek_max = %v, want ~17ms", a.TseekMax)
	}
	if a.Trot != p.RotTime || a.Tcmd != p.CmdOverhead {
		t.Fatal("rotation/command parameters not taken from the mechanism")
	}
	if a.Bother != 64<<10 {
		t.Fatal("Bother not recorded")
	}
}

func TestCalculatedIOTime(t *testing.T) {
	a := table4()
	got := a.CalculatedIOTime(3, 650000)
	want := a.TotalOverhead(3) + sim.Time(0.1*float64(time.Second))
	approxDur(t, got, want, time.Microsecond, "calculated I/O time")
}

// Property: RequiredInterval grows with both stream count and per-stream
// rate, and admitted sets remain admitted when a stream is removed.
func TestPropertyAdmissionMonotonic(t *testing.T) {
	a := table4()
	f := func(n uint8, rateRaw uint32) bool {
		count := int(n%10) + 1
		rate := 50000 + float64(rateRaw%100000)
		mk := func(c int, r float64) []StreamParams {
			set := make([]StreamParams, c)
			for i := range set {
				set[i] = StreamParams{Rate: r, Chunk: 8192}
			}
			return set
		}
		t1, err1 := a.RequiredInterval(mk(count, rate))
		t2, err2 := a.RequiredInterval(mk(count+1, rate))
		if err1 != nil || err2 != nil {
			return true // oversubscribed; nothing to compare
		}
		if t2 < t1 {
			return false
		}
		t3, err3 := a.RequiredInterval(mk(count, rate*1.5))
		if err3 != nil {
			return true
		}
		return t3 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the admitted interval is always sufficient — at T =
// RequiredInterval the per-interval work (overheads + transfer of T*R + C)
// fits within T.
func TestPropertyRequiredIntervalSelfConsistent(t *testing.T) {
	a := table4()
	f := func(n uint8) bool {
		count := int(n%8) + 1
		set := make([]StreamParams, count)
		for i := range set {
			set[i] = mpeg1Params()
		}
		tReq, err := a.RequiredInterval(set)
		if err != nil {
			return true
		}
		var bytes float64
		for _, s := range set {
			bytes += tReq.Seconds()*s.Rate + float64(s.Chunk)
		}
		work := a.TotalOverhead(count).Seconds() + bytes/a.D
		return work <= tReq.Seconds()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyRecordRatio(t *testing.T) {
	r := AccuracyRecord{Actual: 50 * time.Millisecond, Calculated: 200 * time.Millisecond}
	if math.Abs(r.Ratio()-25) > 1e-9 {
		t.Fatalf("Ratio = %f, want 25", r.Ratio())
	}
	if (AccuracyRecord{}).Ratio() != 0 {
		t.Fatal("zero calculated should give ratio 0")
	}
}
