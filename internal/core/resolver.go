package core

import (
	"fmt"

	"repro/internal/rtm"
	"repro/internal/ufs"
)

// Resolver provides the non-real-time file system services CRAS needs at
// open time: turning a path into the physical block map it will read raw,
// and (for recording) creating a fully preallocated file. Abstracting this
// is what enables the paper's Figure 5 configurations: the typical setup
// resolves through the Unix server, the RTS/embedded setups resolve against
// a file system linked directly into the same task, with no Unix server on
// the machine at all.
type Resolver interface {
	// ResolvePlayback returns the block map and byte size of an existing
	// media file.
	ResolvePlayback(th *rtm.Thread, path string) (blocks []uint32, size int64, err error)
	// ResolveRecord creates the media file, preallocates size bytes of
	// placed blocks, and returns the resulting block map.
	ResolveRecord(th *rtm.Thread, path string, size int64) (blocks []uint32, gotSize int64, err error)
}

// unixResolver resolves through the Unix server's RPC interface — the
// paper's standard configuration (Figure 5, left).
type unixResolver struct {
	srv *ufs.Server
}

// UnixResolver returns a Resolver backed by the Unix server.
func UnixResolver(srv *ufs.Server) Resolver { return unixResolver{srv: srv} }

func (r unixResolver) ResolvePlayback(th *rtm.Thread, path string) ([]uint32, int64, error) {
	c := ufs.NewClient(r.srv, th)
	fd, err := c.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer c.Close(fd) //crasvet:allow ioerrcheck -- read-only fd; close cannot lose data
	return c.BlockMap(fd)
}

func (r unixResolver) ResolveRecord(th *rtm.Thread, path string, size int64) (blocks []uint32, frag int64, err error) {
	c := ufs.NewClient(r.srv, th)
	fd, err := c.Create(path)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		// The fd was written through Create/Preallocate; a close failure
		// must surface or the caller records a layout the disk never got.
		if cerr := c.Close(fd); cerr != nil && err == nil {
			blocks, frag, err = nil, 0, cerr
		}
	}()
	if err := c.Preallocate(fd, size); err != nil {
		return nil, 0, err
	}
	return c.BlockMap(fd)
}

// directResolver resolves against a file system in the same task — the
// paper's embedded configurations (Figure 5, middle and right), where CRAS
// runs with RTS or linked into the application and no Unix server exists.
// The calling thread performs the metadata I/O itself.
type directResolver struct {
	fs *ufs.FileSystem
}

// DirectResolver returns a Resolver that reads the file system directly.
func DirectResolver(fs *ufs.FileSystem) Resolver { return directResolver{fs: fs} }

func (r directResolver) ResolvePlayback(th *rtm.Thread, path string) ([]uint32, int64, error) {
	p := th.Proc()
	f, err := r.fs.Open(p, path)
	if err != nil {
		return nil, 0, err
	}
	th.Compute(ufs.CostSyscall)
	blocks, err := f.BlockMap(p)
	if err != nil {
		return nil, 0, err
	}
	return blocks, f.Size(p), nil
}

func (r directResolver) ResolveRecord(th *rtm.Thread, path string, size int64) ([]uint32, int64, error) {
	p := th.Proc()
	f, err := r.fs.Create(p, path)
	if err != nil {
		return nil, 0, fmt.Errorf("cras: create %s: %w", path, err)
	}
	th.Compute(ufs.CostSyscall)
	if err := f.Preallocate(p, size); err != nil {
		return nil, 0, err
	}
	blocks, err := f.BlockMap(p)
	if err != nil {
		return nil, 0, err
	}
	return blocks, f.Size(p), nil
}
