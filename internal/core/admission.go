package core

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// AdmissionParams are the measured disk parameters of Table 4 that the
// admission test consumes. Times follow the paper's symbols.
type AdmissionParams struct {
	D        float64  // disk transfer rate, bytes/second
	TseekMax sim.Time // full-stroke seek (linear approximation at Ncyl)
	TseekMin sim.Time // linear-approximation intercept
	Trot     sim.Time // rotational latency (one revolution)
	Tcmd     sim.Time // command overhead per operation
	Bother   int64    // largest block of other (non-real-time) disk traffic
}

// StreamParams are the per-stream inputs to the admission test: the data
// rate R_i (worst case over an interval window, which for CBR equals the
// average) and the chunk size C_i (the largest single chunk, the slack term
// in A_i = T*R_i + C_i).
//
// A cache-backed stream (a follower served from the interval cache, see
// icache.go) is charged differently: it performs no disk operations — it
// contributes nothing to R_total, C_total or the per-operation overheads of
// RequiredInterval — and its buffer charge is CacheBytes, the pinned
// interval between it and its leader (gap × rate), instead of the
// double-buffer B_i. This asymmetry is the capacity win of interval
// caching: a trailing viewer of an already-playing movie costs RAM
// proportional to how far it trails, and no disk time at all.
// On a striped volume the per-interval fetch A_i = T*R_i + C_i splits
// across member disks, and the admission test runs per member (see
// AdmitVolume): the stream charges each member disk in Disks one operation
// and DiskBytes of transfer per interval. Both fields zero means the
// single-disk reading — the stream puts its whole A_i on every disk it
// touches (which on one disk is the paper's formula (1) exactly).
type StreamParams struct {
	Rate  float64 // bytes/second
	Chunk int64   // bytes

	Cached     bool  // served from the interval cache, not the disk
	CacheBytes int64 // pinned-interval charge while Cached

	// A multicast fan-out member (multicast.go) is charged like a cache
	// follower but from the group's feed: zero disk operations, and
	// FanoutBytes — the join lag plus a double-buffer window at its rate —
	// instead of B_i. FanoutBytes is never smaller than B_i, so a member
	// falling back to a plain stream never increases the admission memory.
	Multicast   bool  // served by group fan-out, not the disk
	FanoutBytes int64 // fan-out buffer charge while Multicast

	// A paused stream (vcr.go) is the fourth resource class: its buffers
	// stay pinned — it keeps its full memory charge so Resume never has to
	// fight for the RAM its buffered runway already occupies — but its
	// clock is frozen and it fetches nothing, so it contributes no rate, no
	// chunk slack and no per-operation overhead to the interval's disk
	// schedule. Resume is a fresh admission at the unpaused charge.
	Paused bool

	Disks     []int // member disks the stream loads (nil = all members)
	DiskBytes int64 // per-member bytes per interval when striped (0 = full A_i)
}

// MeasureAdmissionParams derives Table 4 from the disk, the way the authors
// ran microbenchmarks against theirs: the transfer rate from the geometry's
// media rate, rotational latency from the spindle speed, command overhead
// from the controller, and the seek parameters from a least-squares linear
// fit of the measured seek curve (Figure 12's "Approx." line).
func MeasureAdmissionParams(d *disk.Disk, bother int64) AdmissionParams {
	g, p := d.Geometry(), d.Params()
	alpha, beta := fitSeekCurve(d)
	return AdmissionParams{
		D:        disk.MediaRate(g, p),
		TseekMin: sim.Time(beta * float64(time.Second)),
		TseekMax: sim.Time((beta + alpha*float64(g.Cylinders)) * float64(time.Second)),
		Trot:     p.RotTime,
		Tcmd:     p.CmdOverhead,
		Bother:   bother,
	}
}

// fitSeekCurve samples the seek curve across the stroke and returns the
// least-squares line seconds(x) = alpha*x + beta.
func fitSeekCurve(d *disk.Disk) (alpha, beta float64) {
	ncyl := d.Geometry().Cylinders
	step := ncyl / 64
	if step < 1 {
		step = 1
	}
	var n, sx, sy, sxx, sxy float64
	for x := 1; x < ncyl; x += step {
		y := d.ProbeSeek(0, x).Seconds()
		fx := float64(x)
		n++
		sx += fx
		sy += y
		sxx += fx * fx
		sxy += fx * y
	}
	alpha = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	beta = (sy - alpha*sx) / n
	if beta < 0 {
		beta = 0
	}
	return alpha, beta
}

// OtherOverhead is O_other, formula (9): the worst-case delay one
// non-real-time request already in service imposes on the batch.
func (a AdmissionParams) OtherOverhead() sim.Time {
	return a.Tcmd + a.TseekMax + a.Trot + sim.Time(float64(a.Bother)/a.D*float64(time.Second))
}

// SeekOverhead is O_seek, formulas (11)-(12): the C-SCAN bound on total
// seek time for N streams sorted in cylinder order, assuming the worst-case
// full-stroke spread.
func (a AdmissionParams) SeekOverhead(n int) sim.Time {
	switch {
	case n <= 0:
		return 0
	case n == 1:
		return a.TseekMax
	default:
		return 2*a.TseekMax + sim.Time(n-2)*a.TseekMin
	}
}

// TotalOverhead is O_total, formulas (14)-(15): O_other + O_seek + O_rot +
// O_cmd for n streams.
func (a AdmissionParams) TotalOverhead(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return a.OtherOverhead() + a.SeekOverhead(n) + sim.Time(n)*a.Trot + sim.Time(n)*a.Tcmd
}

// RequiredInterval is formula (1) solved for the minimum interval time:
// T >= (O_total*D + C_total) / (D - R_total). It returns an error when the
// aggregate rate meets or exceeds the disk rate (no interval suffices).
func (a AdmissionParams) RequiredInterval(streams []StreamParams) (sim.Time, error) {
	// Cache-backed, fan-out-member and paused streams read nothing from the
	// disk: they contribute no rate, no chunk slack and no per-operation
	// overhead to the batch.
	n := 0
	var rTotal float64
	var cTotal int64
	for _, s := range streams {
		if s.Cached || s.Multicast || s.Paused {
			continue
		}
		n++
		rTotal += s.Rate
		cTotal += s.Chunk
	}
	if n == 0 {
		return 0, nil
	}
	if rTotal >= a.D {
		//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission, never in a clean cycle
		return 0, fmt.Errorf("core: aggregate rate %.0f B/s >= disk rate %.0f B/s", rTotal, a.D)
	}
	oTotal := a.TotalOverhead(n).Seconds()
	t := (oTotal*a.D + float64(cTotal)) / (a.D - rTotal)
	return sim.Time(t * float64(time.Second)), nil
}

// BufferPerStream is B_i, formula (7): 2*(T*R_i + C_i) — double-buffering
// one interval's worth of data.
func BufferPerStream(t sim.Time, s StreamParams) int64 {
	return 2 * (int64(t.Seconds()*s.Rate) + s.Chunk)
}

// TotalBuffer is B_total, formula (8), extended for the interval cache and
// multicast fan-out: a cache-backed stream charges its pinned interval
// (CacheBytes) and a fan-out member its group reservation (FanoutBytes)
// instead of the double-buffer B_i.
func TotalBuffer(t sim.Time, streams []StreamParams) int64 {
	var total int64
	for _, s := range streams {
		if s.Cached {
			total += s.CacheBytes
			continue
		}
		if s.Multicast {
			total += s.FanoutBytes
			continue
		}
		total += BufferPerStream(t, s)
	}
	return total
}

// AdmissionError reports why a stream was rejected.
type AdmissionError struct {
	NeedInterval sim.Time // minimum interval the set would require (0 if rate infeasible at any T)
	Interval     sim.Time // the server's configured interval
	NeedBuffer   int64
	Budget       int64
	Reason       string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("cras: admission failed: %s (need T>=%v have %v; need %d buffer bytes have %d)",
		e.Reason, e.NeedInterval, e.Interval, e.NeedBuffer, e.Budget)
}

// Admit runs the paper's admission test for the full stream set (existing
// plus candidate) against a configured interval time and buffer budget.
func (a AdmissionParams) Admit(t sim.Time, budget int64, streams []StreamParams) error {
	need, err := a.RequiredInterval(streams)
	if err != nil {
		//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
		return &AdmissionError{Interval: t, NeedBuffer: TotalBuffer(t, streams), Budget: budget, Reason: err.Error()}
	}
	buf := TotalBuffer(t, streams)
	if need > t {
		//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
		return &AdmissionError{NeedInterval: need, Interval: t, NeedBuffer: buf, Budget: budget,
			Reason: "interval time too short for stream set"}
	}
	if buf > budget {
		//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
		return &AdmissionError{NeedInterval: need, Interval: t, NeedBuffer: buf, Budget: budget,
			Reason: "buffer memory exhausted"}
	}
	return nil
}

// perDiskLoad bounds one member disk's share of an interval fetch of a
// bytes striped round-robin in stripeBytes units across n disks. The fetch
// window is not stripe-aligned, so it can touch one extra unit
// (ceil(a/stripe)+1), and the units spread across members as evenly as the
// rotation allows — the worst member serves ceil(units/n) of them.
func perDiskLoad(a, stripeBytes int64, n int) int64 {
	if n <= 1 || stripeBytes <= 0 {
		return a
	}
	units := (a+stripeBytes-1)/stripeBytes + 1
	perDisk := (units + int64(n) - 1) / int64(n)
	return perDisk * stripeBytes
}

// StripedParams converts a stream's admission parameters to their striped
// form for a volume of ndisks members with the given stripe unit: the
// stream touches every member (its fetch window rotates over all of them
// across its lifetime) and charges each the worst per-member share of its
// interval fetch. On a single disk it is the identity.
func StripedParams(t sim.Time, par StreamParams, ndisks int, stripeBytes int64) StreamParams {
	if ndisks <= 1 {
		return par
	}
	a := int64(t.Seconds()*par.Rate) + par.Chunk
	par.Disks = nil // all members
	par.DiskBytes = perDiskLoad(a, stripeBytes, ndisks)
	return par
}

// VolumeShape describes the volume the admission test runs against: member
// count, redundancy mode, and how many members are currently dead. The
// plain RAID-0 shape is {Disks: n} — AdmitVolume's historical signature.
type VolumeShape struct {
	Disks       int
	Parity      bool
	Dead        int   // dead members (0 or 1 under single parity)
	StripeBytes int64 // stripe unit (parity load model only)
}

// parityDiskLoad bounds one live member's byte share of an interval fetch
// of a bytes on an n-member rotating-parity volume. The scheduler issues at
// most ONE coalesced read per member per logical fetch, spanning the
// member's interleaved parity units (read-and-discard — cheaper than a
// second operation), so the bound is in stripe rows:
//
//	units = ceil(a/stripe) + 1          (window misalignment)
//	rows  = ceil(units/(n-1))           (n-1 data units per row)
//
// Healthy, the worst member's span holds its ceil(units/n) data share, up
// to one unit of boundary slack, and the parity holes the span crosses
// (one per n rows) — never more than the full row span. Degraded, every
// survivor reads the affected rows IN FULL, because reconstructing the
// dead member's units needs each survivor's whole unit for those rows:
// ceil-fragments on all n-1 survivors, the honest cost of losing a member.
func parityDiskLoad(a, stripeBytes int64, n int, degraded bool) int64 {
	if stripeBytes <= 0 {
		return a
	}
	units := (a+stripeBytes-1)/stripeBytes + 1
	rows := (units + int64(n-1) - 1) / int64(n-1)
	if degraded {
		return (rows + 1) * stripeBytes
	}
	load := ((units+int64(n)-1)/int64(n) + 1 + (rows+int64(n)-1)/int64(n)) * stripeBytes
	if max := (rows + 1) * stripeBytes; load > max {
		load = max
	}
	return load
}

// shapeLoad is the per-interval byte load the stream puts on one live
// member of the shaped volume. Parity recomputes from the rate so the same
// stream can be re-evaluated healthy or degraded; RAID-0 keeps the
// per-member share frozen at open time (DiskBytes).
func (s StreamParams) shapeLoad(t sim.Time, shape VolumeShape) int64 {
	if shape.Parity {
		a := int64(t.Seconds()*s.Rate) + s.Chunk
		return parityDiskLoad(a, shape.StripeBytes, shape.Disks, shape.Dead > 0)
	}
	return s.diskLoad(t)
}

// VolumeParams converts a stream's admission parameters for the given
// volume shape: plain striping via StripedParams, rotating parity via the
// coalesced parity load (charged healthy at open time — a member death
// re-evaluates the open set at the degraded charge). Identity on one disk.
func VolumeParams(t sim.Time, par StreamParams, shape VolumeShape) StreamParams {
	if !shape.Parity {
		return StripedParams(t, par, shape.Disks, shape.StripeBytes)
	}
	a := int64(t.Seconds()*par.Rate) + par.Chunk
	par.Disks = nil // the rotation touches every member
	par.DiskBytes = parityDiskLoad(a, shape.StripeBytes, shape.Disks, false)
	return par
}

// touchesDisk reports whether the stream loads member d of an n-member
// volume.
func (s StreamParams) touchesDisk(d int) bool {
	if s.Disks == nil {
		return true
	}
	for _, sd := range s.Disks {
		if sd == d {
			return true
		}
	}
	return false
}

// diskLoad is the per-interval byte load the stream puts on one member it
// touches.
func (s StreamParams) diskLoad(t sim.Time) int64 {
	if s.DiskBytes > 0 {
		return s.DiskBytes
	}
	return int64(t.Seconds()*s.Rate) + s.Chunk
}

// AdmitVolume runs the admission test over an ndisks-member striped
// volume: formulas (1)-(2) are evaluated per member disk against the
// operations and bytes assigned to that member, and the set is admitted
// iff every member has capacity (the interval batch barriers on the
// slowest member) and the aggregate buffer fits. With one member it is
// exactly Admit — the single-disk test, byte for byte.
func (a AdmissionParams) AdmitVolume(t sim.Time, budget int64, ndisks int, streams []StreamParams) error {
	return a.AdmitShape(t, budget, VolumeShape{Disks: ndisks}, streams)
}

// AdmitShape is AdmitVolume generalized to a shaped volume. For a parity
// shape each stream's per-member load is recomputed from its rate at the
// shape's current health — honest degraded charging: one dead member turns
// every logical fetch into full-row reads on all survivors, and the same
// open set that passed the healthy test can fail the degraded one (the
// caller then walks over-committed streams down the health ladder). Dead
// members receive no traffic and are skipped. A non-parity shape is
// AdmitVolume byte for byte.
func (a AdmissionParams) AdmitShape(t sim.Time, budget int64, shape VolumeShape, streams []StreamParams) error {
	ndisks := shape.Disks
	if ndisks <= 0 {
		//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
		return &AdmissionError{Interval: t, Budget: budget,
			Reason: fmt.Sprintf("volume has %d disks", ndisks)} //crasvet:allow hotalloc -- same rejection path
	}
	if ndisks == 1 {
		return a.Admit(t, budget, streams)
	}
	live := ndisks - shape.Dead
	for d := 0; d < ndisks; d++ {
		if shape.Parity && shape.Dead > 0 && d >= live {
			// One member is dead; which one does not matter to the bound —
			// every survivor carries the same full-row degraded load, so the
			// test runs over live "slots" rather than member identities.
			break
		}
		// Each member sees, per interval, one operation per stream that
		// touches it, moving that stream's per-member byte share: a
		// fixed-bytes load, expressed as Chunk with zero rate so
		// RequiredInterval solves formula (1) for this member.
		var sub []StreamParams
		for _, s := range streams {
			if s.Cached || s.Multicast || s.Paused || !s.touchesDisk(d) {
				continue
			}
			//crasvet:allow hotalloc -- admission test scratch, bounded by open streams; hot-reachable only via the once-per-member-death re-admission
			sub = append(sub, StreamParams{Chunk: s.shapeLoad(t, shape)})
		}
		need, err := a.RequiredInterval(sub)
		if err != nil {
			//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
			return &AdmissionError{Interval: t, NeedBuffer: TotalBuffer(t, streams), Budget: budget,
				Reason: fmt.Sprintf("disk %d: %v", d, err)} //crasvet:allow hotalloc -- same rejection path
		}
		if need > t {
			//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
			return &AdmissionError{NeedInterval: need, Interval: t,
				NeedBuffer: TotalBuffer(t, streams), Budget: budget,
				Reason: fmt.Sprintf("interval time too short for stream set (disk %d)", d)} //crasvet:allow hotalloc -- same rejection path
		}
	}
	if buf := TotalBuffer(t, streams); buf > budget {
		//crasvet:allow hotalloc -- rejection path; hot-reachable only via the once-per-member-death re-admission
		return &AdmissionError{Interval: t, NeedBuffer: buf, Budget: budget,
			Reason: "buffer memory exhausted"}
	}
	return nil
}

// CalculatedIOTime is the admission model's estimate of the disk time one
// interval's batch needs: O_total(N) + bytes/D. Figures 8 and 9 compare
// the actual per-interval disk time against this value.
func (a AdmissionParams) CalculatedIOTime(n int, bytes int64) sim.Time {
	return a.TotalOverhead(n) + sim.Time(float64(bytes)/a.D*float64(time.Second))
}

// OpCost bounds the disk time one extra operation of the given size can
// consume: worst-case seek, one rotation, command overhead, and the media
// transfer. The recovery engine charges this against the interval's spare
// time before re-issuing a failed read.
func (a AdmissionParams) OpCost(bytes int64) sim.Time {
	return a.TseekMax + a.Trot + a.Tcmd + sim.Time(float64(bytes)/a.D*float64(time.Second))
}

// MaxStreams returns how many identical streams the configuration admits —
// the capacity curves quoted in the evaluation (e.g. >25 MPEG1 streams at a
// 3 s initial delay).
func (a AdmissionParams) MaxStreams(t sim.Time, budget int64, s StreamParams) int {
	var set []StreamParams
	for {
		set = append(set, s)
		if a.Admit(t, budget, set) != nil {
			return len(set) - 1
		}
		if len(set) > 10000 {
			return len(set)
		}
	}
}
