package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// A burst of opens past the per-interval budget is shed with the typed
// overload error, whose RetryAfter is an honest hint: clients that wait it
// out all get admitted.
func TestOpenFloodShedsWithRetryAfter(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	const clients = 12
	newBed(t, 1, ufs.Options{}, Config{MaxRequestsPerCycle: 4, BufferBudget: 64 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			admitted := 0
			done := make(chan struct{}) // unused; engine is single-threaded
			_ = done
			for i := 0; i < clients; i++ {
				b.k.NewThread(fmt.Sprintf("client%d", i), rtm.PrioTS, 0, func(cth *rtm.Thread) {
					for {
						h, err := b.cras.Open(cth, movie, "/m1", OpenOptions{})
						if err == nil {
							admitted++
							h.Close(cth) // release the slot for the others
							return
						}
						var oe *OverloadError
						if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
							t.Errorf("open failed with %v, want *OverloadError", err)
							return
						}
						if oe.RetryAfter <= 0 {
							t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
							return
						}
						cth.Sleep(oe.RetryAfter)
					}
				})
			}
			th.Sleep(10 * time.Second)
			if admitted != clients {
				t.Errorf("admitted %d of %d clients after retrying", admitted, clients)
			}
			st := b.cras.Stats()
			if st.RequestsShed == 0 {
				t.Error("no requests shed by a 12-client burst against budget 4")
			}
		})
}

// Closes are never shed: even in a window whose budget is exhausted by a
// flood, every close goes through — refusing them would turn overload into
// resource leaks.
func TestClosesNeverShed(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{MaxRequestsPerCycle: 4, BufferBudget: 64 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			// Admit a handful of streams over a few windows.
			var handles []*Handle
			for i := 0; i < 6; i++ {
				h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
				if err != nil {
					th.Sleep(b.cras.Config().Interval)
					continue
				}
				handles = append(handles, h)
			}
			// Exhaust the current window's budget with a burst of opens
			// (the few that get admitted close themselves again)...
			for i := 0; i < 10; i++ {
				b.k.NewThread("flood", rtm.PrioTS, 0, func(cth *rtm.Thread) {
					if h, err := b.cras.Open(cth, movie, "/m1", OpenOptions{}); err == nil {
						h.Close(cth)
					}
				})
			}
			th.Sleep(10 * time.Millisecond)
			// ...and close everything inside that same overloaded window.
			for _, h := range handles {
				if err := h.Close(th); err != nil {
					t.Errorf("Close shed or failed under overload: %v", err)
				}
			}
			th.Sleep(time.Second) // let the flood's own closes drain
			if b.cras.ActiveStreams() != 0 {
				t.Errorf("ActiveStreams = %d after closes", b.cras.ActiveStreams())
			}
		})
}

// Session operations of already-admitted streams are deferred to the next
// window when the budget runs out — paced, not refused.
func TestSessionOpsDeferredNotShed(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 1, ufs.Options{}, Config{MaxRequestsPerCycle: 4},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			start := b.k.Now()
			for i := 0; i < 10; i++ {
				if err := h.Seek(th, time.Duration(i)*time.Second); err != nil {
					t.Errorf("seek %d refused: %v", i, err)
				}
			}
			elapsed := b.k.Now() - start
			if elapsed < b.cras.Config().Interval {
				t.Errorf("10 seeks against budget 4 took %v; expected deferral across windows", elapsed)
			}
			if shed := b.cras.Stats().RequestsShed; shed != 0 {
				t.Errorf("RequestsShed = %d; session ops must be deferred, not shed", shed)
			}
		})
}

// When even the bounded request queue is full, the call is rejected at the
// port itself and surfaces as overload; the port counts the rejection.
func TestRequestQueueFullRejectsSends(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{RequestQueueCap: 1, BufferBudget: 64 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			overloaded := 0
			for i := 0; i < 8; i++ {
				b.k.NewThread(fmt.Sprintf("burst%d", i), rtm.PrioTS, 0, func(cth *rtm.Thread) {
					_, err := b.cras.Open(cth, movie, "/m1", OpenOptions{})
					if err != nil && errors.Is(err, ErrOverloaded) {
						overloaded++
					}
				})
			}
			th.Sleep(time.Second)
			if b.cras.Stats().SendsRejected == 0 {
				t.Error("SendsRejected = 0; a cap-1 queue must reject an 8-call burst")
			}
			if overloaded == 0 {
				t.Error("no caller saw the queue-full overload error")
			}
		})
}

// Graceful drain: opens are refused, running streams finish and close
// naturally, and the server shuts itself down with no forced evictions.
func TestDrainGraceful(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 3*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(time.Second)
			b.cras.Drain(20 * time.Second)
			if _, err := b.cras.Open(th, movie, "/m1", OpenOptions{}); !errors.Is(err, ErrDraining) {
				t.Errorf("open during drain = %v, want ErrDraining", err)
			}
			// Play the stream out, then close like a well-behaved client.
			end := movie.TotalDuration()
			for h.LogicalNow() < end {
				th.Sleep(250 * time.Millisecond)
				h.Get(h.LogicalNow())
			}
			if err := h.Close(th); err != nil {
				t.Errorf("Close during drain: %v", err)
			}
			th.Sleep(time.Second)
			if !b.cras.Stopped() {
				t.Error("server did not shut down after its last stream closed")
			}
			if ev := b.cras.Stats().DrainEvictions; ev != 0 {
				t.Errorf("DrainEvictions = %d in a graceful run-down", ev)
			}
		})
}

// Drain with a deadline: whatever is still open when the grace budget
// expires is evicted, and the server still ends down.
func TestDrainDeadlineEvictsStragglers(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(time.Second)
			b.cras.Drain(2 * time.Second)
			deadline := b.k.Now() + 2*time.Second
			// The client keeps consuming right through the drain and never
			// closes; the deadline must take the stream from under it.
			for b.k.Now() < deadline+time.Second {
				th.Sleep(250 * time.Millisecond)
				h.Get(h.LogicalNow())
			}
			st := b.cras.Stats()
			if st.DrainEvictions != 1 {
				t.Errorf("DrainEvictions = %d, want 1", st.DrainEvictions)
			}
			if !b.cras.Stopped() {
				t.Error("server not stopped after drain deadline")
			}
			if b.cras.ActiveStreams() != 0 {
				t.Error("stream leaked past the drain deadline")
			}
		})
}

// Immediate drain (zero grace) is an orderly synchronous teardown: all
// streams evicted on the next cycle, then shutdown.
func TestDrainZeroGrace(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			var hs []*Handle
			for i := 0; i < 3; i++ {
				h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
				if err != nil {
					t.Errorf("Open %d: %v", i, err)
					return
				}
				h.Start(th)
				hs = append(hs, h)
			}
			b.cras.Drain(0)
			th.Sleep(2 * b.cras.Config().Interval)
			st := b.cras.Stats()
			if st.DrainEvictions != 3 {
				t.Errorf("DrainEvictions = %d, want 3", st.DrainEvictions)
			}
			if !b.cras.Stopped() || b.cras.ActiveStreams() != 0 {
				t.Errorf("Stopped = %v, ActiveStreams = %d after zero-grace drain",
					b.cras.Stopped(), b.cras.ActiveStreams())
			}
		})
}

var _ = sim.Time(0) // keep the import when assertions above change
