package core

import (
	"math"
	"time"

	"repro/internal/sim"
)

// Multicast batched opens + pinned prefix cache (after Jayarekha & Nair's
// multicast-prefix admission policy and Gopalakrishnan Nair & Jayarekha's
// dynamic-buffer prefix work): opens for the same path that arrive within
// the batching window coalesce into one multicast group fed by a single
// set of disk ops. The group's feed is an ordinary disk-fed stream; at the
// cycle edge, every chunk the feed stamps into its own time-driven buffer
// is fanned out into each member's buffer too, so K viewers of a hot title
// cost one stream's disk time. Each member keeps its own Handle, lease and
// health ladder; its admission charge is FanoutBytes — the join lag plus a
// double-buffer window at its rate — held against PrefixBudget, with zero
// disk operations.
//
// On top of the batch rides the pinned prefix: a popularity tracker
// (windowed open counts with exponential decay) qualifies the hottest
// titles, and the first PrefixDuration of a qualified title is pinned
// permanently in cache as it streams by. The prefix extends the batching
// window — a latecomer whose missing head is covered by the pins (plus the
// feed's still-resident chunks) is backfilled from RAM at open time, plays
// the prefix immediately, and rides the in-flight group's fan-out from
// there on. Prefix pins are a separate pool from the interval cache's and
// are exempt from its largest-interval-first eviction: once pinned, a
// prefix chunk is never released.
//
// Fallback mirrors the interval cache's one-way rule: a member whose feed
// stops producing (suspended), whose feed dropped a chunk the member still
// needs, whose fan-out buffer overflows, or that seeks or changes rate
// reverts to plain disk fetching at its stamp point
// within the same scheduler cycle. A closing or evicted feed promotes the
// earliest member — every member already holds every chunk the feed fanned
// out, so survivors lose nothing while the promoted feed's first disk
// batch is in flight.

// popHalfLife is the popularity tracker's decay half-life: an open counts
// half as much toward prefix qualification after this long.
const popHalfLife = 2 * time.Minute

// popEntry is one path's decayed open count. Decay is applied per entry
// from its own last-open time, so the bookkeeping involves no map
// iteration and stays deterministic.
type popEntry struct {
	path  string
	count float64
	at    sim.Time
}

// prefixPin is one title's pinned prefix: its first chunks, contiguous
// from index 0 (pins[i] is chunk i), held permanently once pinned.
type prefixPin struct {
	path  string
	pins  []BufferedChunk
	bytes int64
}

// mcastGroup is one batch: a disk-fed feed and the member sessions its
// stamped chunks fan out to at the cycle edge.
type mcastGroup struct {
	path      string
	feed      *stream
	members   []*stream // open order: the earliest member is promoted first
	createdAt int       // scheduler cycle, for trace context
}

// multicastState is the server-wide third resource class beside the
// stream-buffer and interval-cache budgets: fan-out reservations plus
// pinned prefix bytes may never exceed PrefixBudget.
type multicastState struct {
	budget   int64 // PrefixBudget
	fanout   int64 // committed member fan-out reservations
	pinned   int64 // pinned prefix bytes across all titles
	groups   []*mcastGroup
	prefixes []*prefixPin
	pop      []popEntry
}

// mcastEnabled reports whether the multicast machinery is configured on:
// batching needs a window, and both fan-out buffers and prefix pins need
// the budget they are charged against.
func (s *Server) mcastEnabled() bool {
	return s.cfg.BatchWindow > 0 && s.cfg.PrefixBudget > 0
}

// popNote records a playback open for the popularity tracker and returns
// the path's decayed open count.
func (s *Server) popNote(path string, now sim.Time) float64 {
	for i := range s.mcast.pop {
		pe := &s.mcast.pop[i]
		if pe.path != path {
			continue
		}
		age := now - pe.at
		pe.count = pe.count*math.Exp2(-float64(age)/float64(popHalfLife)) + 1
		pe.at = now
		return pe.count
	}
	s.mcast.pop = append(s.mcast.pop, popEntry{path: path, count: 1, at: now})
	return 1
}

// prefixFor returns the path's prefix entry, if the title has qualified.
func (s *Server) prefixFor(path string) *prefixPin {
	for _, pp := range s.mcast.prefixes {
		if pp.path == path {
			return pp
		}
	}
	return nil
}

// prefixQualify marks a title hot enough to deserve a pinned prefix,
// creating its (empty) entry and pointing every open stream of the path at
// it so their per-cycle stamping can grow the pins.
func (s *Server) prefixQualify(path string) *prefixPin {
	if pp := s.prefixFor(path); pp != nil {
		return pp
	}
	pp := &prefixPin{path: path}
	s.mcast.prefixes = append(s.mcast.prefixes, pp)
	for _, st := range s.streams {
		if !st.closed && !st.record && st.name == path {
			st.ppin = pp
		}
	}
	s.stats.PrefixPaths++
	return pp
}

// prefixAdvance pins the title's head chunks as they stream through one
// producer's buffer: contiguous from chunk 0 up to PrefixDuration of media
// time, charged against the prefix budget, never evicted once pinned. The
// contiguity rule is the re-validation that keeps every pinned byte a byte
// that was actually delivered: a producer whose stamp pointer passed the
// pin point without the chunk resident (discarded already, or its read
// failed) left a hole and stops contributing — the next fresh open on the
// hot path, which plays from chunk 0, picks the growth back up. Runs once
// per cycle per producing (non-member) stream on a qualified path.
//
//crasvet:hotpath
func (s *Server) prefixAdvance(st *stream, now sim.Time) {
	pp := st.ppin
	chunks := st.info.Chunks
	for len(pp.pins) < len(chunks) {
		idx := len(pp.pins)
		c := chunks[idx]
		if c.Timestamp >= s.cfg.PrefixDuration {
			st.ppin = nil // prefix complete; stop probing
			return
		}
		bc, ok := st.buf.At(c.Timestamp)
		if !ok {
			if st.nextStamp > idx {
				st.ppin = nil // this producer left a hole under the head
				s.stats.PrefixTruncated++
			}
			return // not stamped yet: retry next cycle
		}
		if s.mcast.fanout+s.mcast.pinned+c.Size > s.mcast.budget {
			s.stats.PrefixRefused++
			return
		}
		pp.pins = append(pp.pins, bc) //crasvet:allow hotalloc -- grows once per pinned chunk, bounded by PrefixDuration for the title's lifetime
		pp.bytes += c.Size
		s.mcast.pinned += c.Size
		if s.mcast.pinned > s.stats.PrefixPinnedPeak {
			s.stats.PrefixPinnedPeak = s.mcast.pinned
		}
	}
}

// mcastGap is the steady-state logical gap a member opened now will trail
// the feed by: the feed's current clock plus the member's initial delay —
// the interval cache's gap formula, reused because the trailing geometry
// is the same.
func (s *Server) mcastGap(feed *stream, now sim.Time) sim.Time {
	return feed.clock.At(now) + s.cfg.InitialDelay
}

// mcastFanoutCharge is a member's admission charge (FanoutBytes): the join
// lag it trails the feed by plus a double-buffer window, at its rate. It
// is always at least B_i, so converting a member back to a plain stream
// never increases the memory the admission test sees.
func (s *Server) mcastFanoutCharge(gap sim.Time, par StreamParams) int64 {
	return int64((gap+2*s.cfg.Interval).Seconds()*par.Rate) + 2*par.Chunk
}

// mcastHeadCovered reports whether every chunk the feed has already
// stamped past — from the joiner's start index onward — is still
// obtainable for a new member: pinned in the title's prefix, or resident
// in the feed's buffer. A hole (the feed dropped a chunk, or its discard
// horizon passed the prefix's reach) refuses the join — a member must be
// able to play every chunk from its start point.
func (s *Server) mcastHeadCovered(feed *stream, pp *prefixPin, from int) bool {
	if pp != nil && len(pp.pins) > from {
		from = len(pp.pins)
	}
	for idx := from; idx < feed.nextStamp; idx++ {
		if _, ok := feed.buf.At(feed.info.Chunks[idx].Timestamp); !ok {
			return false
		}
	}
	return true
}

// mcastJoinable reports whether a new open described by r can join a group
// fed by feed: the feed must be a healthy producer with a structurally
// identical chunk table at the same rate, the open must fall inside the
// batching window — or, past it, on a prefix-qualified title — and the
// head the feed has already stamped must be fully covered.
func (s *Server) mcastJoinable(feed *stream, r openReq, now sim.Time) bool {
	if feed == nil || feed.closed || feed.mcastMember || !s.cacheEligible(feed, r) {
		return false
	}
	pp := s.prefixFor(feed.name)
	if now-feed.openedAt > s.cfg.BatchWindow && pp == nil && r.at == 0 {
		return false
	}
	from := 0
	if r.at > 0 {
		// An attach-at-stamp reopen needs coverage only from its resume
		// point; it also joins outside the batching window — the group is
		// the displaced viewer's own, still in flight.
		if from = feed.info.ChunkAt(r.at); from < 0 {
			from = 0
		}
	}
	return s.mcastHeadCovered(feed, pp, from)
}

// mcastCandidate finds the stream a new playback open could ride as a
// fan-out member: the feed of an existing group on the path, or a plain
// disk stream a new group can form around. Among several joinable
// candidates (successive batch generations of a hot title) the youngest
// wins — it has the smallest head to backfill.
func (s *Server) mcastCandidate(r openReq, now sim.Time) *stream {
	if !s.mcastEnabled() || r.record {
		return nil
	}
	if r.dr > 0 && r.dr < 1 {
		// Reduced-delivered-rate viewers skip frames and cannot ride a
		// feed's full fan-out sequence.
		return nil
	}
	var best *stream
	for _, g := range s.mcast.groups {
		if g.path == r.path && s.mcastJoinable(g.feed, r, now) {
			if best == nil || g.feed.openedAt > best.openedAt {
				best = g.feed
			}
		}
	}
	if best != nil {
		return best
	}
	for _, st := range s.streams {
		if st.closed || st.record || st.cached || st.mg != nil || st.name != r.path {
			continue
		}
		if s.mcastJoinable(st, r, now) && (best == nil || st.openedAt > best.openedAt) {
			best = st
		}
	}
	return best
}

// mcastAttach joins a newly opened stream to the feed's group as a fan-out
// member, creating the group on first use, and backfills the member's
// buffer with the head the feed has already stamped: prefix pins first,
// the feed's still-resident chunks for the rest. handleOpen verified the
// head is covered and charged par.Multicast/par.FanoutBytes.
func (s *Server) mcastAttach(st, feed *stream, charge int64, now sim.Time) {
	g := feed.mg
	if g == nil {
		g = &mcastGroup{path: feed.name, feed: feed, createdAt: s.cycle}
		feed.mg = g
		s.mcast.groups = append(s.mcast.groups, g)
		s.stats.MulticastGroups++
	}
	g.members = append(g.members, st)
	st.mg = g
	st.mcastMember = true
	st.mcastCharge = charge
	s.mcast.fanout += charge

	// The member's buffer holds the backfilled head on top of the standard
	// window — it drains only as the member's own clock advances. A member
	// reopened at a stamp point trails by correspondingly less.
	gap := s.mcastGap(feed, now) - st.clock.At(now)
	st.buf.SetCapacity(st.buf.Capacity() + int64(gap.Seconds()*st.par.Rate) + st.par.Chunk)

	pp := s.prefixFor(st.name)
	backfilled := int64(0)
	for idx := st.nextStamp; idx < feed.nextStamp; idx++ {
		c := st.info.Chunks[idx]
		bc := BufferedChunk{Index: idx, Timestamp: c.Timestamp, Duration: c.Duration, Size: c.Size, StampedAt: now}
		fromPrefix := pp != nil && idx < len(pp.pins)
		if !fromPrefix {
			if _, ok := feed.buf.At(c.Timestamp); !ok {
				continue // unreachable: mcastJoinable verified coverage
			}
		}
		if !st.buf.Insert(bc) {
			continue
		}
		st.stats.ChunksStamped++
		backfilled++
		if fromPrefix {
			st.stats.ChunksFromPrefix++
			s.stats.PrefixHits++
			if !st.prefixStart {
				st.prefixStart = true
				s.stats.PrefixStarts++
			}
		} else {
			st.stats.ChunksFromGroup++
		}
	}
	s.stats.ChunksStamped += backfilled
	st.nextChunk = feed.nextStamp
	st.nextStamp = feed.nextStamp
	s.stats.MulticastAttached++
	s.k.Engine().Tracef("cras: mcast attach stream %d to feed %d on %s (gap %v, head %d chunks, %d members)",
		st.id, feed.id, g.path, feed.clock.At(now), feed.nextStamp, len(g.members))
}

// mcastFeedStep runs in phase 1 right after the feed's own stamping: fan
// the chunks the feed just stamped out to every member's buffer. Returns
// how many chunks were fanned out — they join the cycle's stamping cost.
// A member whose buffer refuses a chunk falls back to disk on the spot, so
// the loop re-checks the member list after each fan-out.
//
//crasvet:hotpath
func (s *Server) mcastFeedStep(feed *stream, now sim.Time) int64 {
	g := feed.mg
	fanned := int64(0)
	for i := 0; i < len(g.members); {
		m := g.members[i]
		if m.closed || m.health >= Suspended {
			i++
			continue
		}
		n, reason := s.mcastFanout(feed, m, now)
		fanned += n
		if reason != "" {
			s.mcastFallback(m, now, reason) // splices g.members[i]
			continue
		}
		i++
	}
	return fanned
}

// mcastFanout copies the feed's newly stamped chunks into one member's
// buffer, mirroring the disk path's late-chunk handling so delivery timing
// is identical to an unbatched stream. A chunk the feed dropped (read
// failure or its own late skip) is NOT dropped for the member: the member
// trails the feed by the join gap, so a plain disk stream in its place
// would still fetch the chunk in time — the member falls back and does
// exactly that. Only a chunk already behind the member's own discard line
// is skipped, as the disk path would skip it. Reports a non-empty reason
// when the member must leave the group — a hole under its stamp point, or
// its buffer refusing a chunk — and the caller falls it back to disk.
//
//crasvet:hotpath
func (s *Server) mcastFanout(feed, m *stream, now sim.Time) (int64, string) {
	chunks := m.info.Chunks
	logical := m.clock.At(now)
	tdiscard := logical - m.buf.Jitter()
	n := int64(0)
	for m.nextStamp < feed.nextStamp {
		idx := m.nextStamp
		c := chunks[idx]
		if c.Timestamp < logical {
			m.stats.ChunksLate++
			if c.Timestamp+c.Duration <= tdiscard {
				m.nextStamp++
				continue
			}
		}
		if _, ok := feed.buf.At(c.Timestamp); !ok {
			m.nextChunk = m.nextStamp
			return n, "feed dropped a chunk still due for the member"
		}
		if !m.buf.Insert(BufferedChunk{
			Index: idx, Timestamp: c.Timestamp, Duration: c.Duration,
			Size: c.Size, StampedAt: now,
		}) {
			m.nextChunk = m.nextStamp
			return n, "fan-out buffer overflow"
		}
		m.stats.ChunksStamped++
		m.stats.ChunksFromGroup++
		s.stats.MulticastFanout++
		n++
		m.nextStamp++
	}
	m.nextChunk = m.nextStamp
	return n, ""
}

// mcastStampFloor is the logical clock a stream's late-skip decision
// measures against when stamping. A plain stream skips chunks its own
// clock has passed; a feed's buffer supplies the whole group, so it may
// skip a chunk only when EVERY participant's clock has passed it — members
// trail the feed by their join gap, and a chunk late for the feed is often
// still comfortably early for them. Without the floor, a feed running
// behind schedule (a promoted or fallen-back stream refilling its debt)
// would drop head chunks its members still need, punching holes into the
// fan-out that force them to disk.
//
//crasvet:hotpath
func (s *Server) mcastStampFloor(st *stream, now sim.Time) sim.Time {
	logical := st.clock.At(now)
	g := st.mg
	if g == nil || g.feed != st {
		return logical
	}
	for _, m := range g.members {
		if ml := m.clock.At(now); ml < logical {
			logical = ml
		}
	}
	return logical
}

// mcastFeedGone reports that a member's supply has dried up: no group, no
// feed, or a feed that stopped producing (closed or suspended — a
// suspended feed's clock is frozen and it fetches nothing).
func (s *Server) mcastFeedGone(st *stream) bool {
	g := st.mg
	return g == nil || g.feed == nil || g.feed.closed || g.feed.health >= Suspended
}

// mcastDetach removes a member from its group, releasing its fan-out
// reservation and restoring disk-charging admission parameters (close and
// fallback share it). The group dissolves when the feed is gone and no
// members remain.
func (s *Server) mcastDetach(st *stream) {
	g := st.mg
	st.mg = nil
	st.mcastMember = false
	s.mcast.fanout -= st.mcastCharge
	st.mcastCharge = 0
	st.par = StreamParams{Rate: st.par.Rate, Chunk: st.par.Chunk}
	if g == nil {
		return
	}
	for i, m := range g.members {
		if m == st {
			g.members = append(g.members[:i], g.members[i+1:]...) //crasvet:allow hotalloc -- shrink-only splice; never grows past capacity
			break
		}
	}
	if len(g.members) == 0 && (g.feed == nil || g.feed.closed) {
		s.mcastDissolve(g)
	}
}

// mcastDissolve unlinks a group's feed and drops the group. Prefix pins
// are untouched: they belong to the title, not the group, and are never
// released.
func (s *Server) mcastDissolve(g *mcastGroup) {
	if g.feed != nil && g.feed.mg == g {
		g.feed.mg = nil
	}
	g.feed = nil
	for i, x := range s.mcast.groups {
		if x == g {
			s.mcast.groups = append(s.mcast.groups[:i], s.mcast.groups[i+1:]...) //crasvet:allow hotalloc -- shrink-only splice; never grows past capacity
			break
		}
	}
}

// mcastRearm restores a disturbed session's prefill window. A group
// participant whose supply is cut during its initial delay has consumed no
// frames yet, but part of its delay budget is gone — the disk refetch
// (wait for the edge, read, stamp at the next edge) can take the full
// InitialDelay, which only an undisturbed fresh open has left. Sliding the
// start gives it exactly a fresh open's window again: the client sees a
// slightly longer startup, never a mid-play glitch. A session already
// playing keeps its clock — it holds a join-gap-plus-double-buffer window
// of fanned-out runway, which covers the one-interval switch.
func (s *Server) mcastRearm(st *stream, now sim.Time) {
	if st.clock.PendingStart(now) {
		st.clock.Start(now, s.startAnchor(now))
	}
}

// mcastFallback converts a member to plain disk fetching, mirroring the
// interval cache's one-way fallback: roll the promise pointer back to the
// stamp point and reposition the byte-fetch machinery there, so phase 2 of
// the current cycle issues its reads and the switch costs at most one
// interval. Already-stamped chunks stay in the buffer. The stream never
// rejoins a group.
//
//crasvet:hotpath
func (s *Server) mcastFallback(st *stream, now sim.Time, reason string) {
	s.mcastDetach(st)
	s.mcastRearm(st, now)
	st.gen++
	st.pending = st.pending[:0]
	st.failedRanges = nil
	st.nextChunk = st.nextStamp
	st.setFetchPoint(st.nextStamp)
	s.stats.MulticastFallbacks++
	s.k.Engine().Tracef("cras: mcast fallback stream %d on %s at chunk %d: %s", //crasvet:allow hotalloc -- formats once per member fallback, not per cycle
		st.id, st.name, st.nextStamp, reason)
}

// mcastBreakup falls every member of a group back to disk and dissolves
// the group (feed seek, feed rate change): the members' clocks no longer
// trail the feed's stamp flow, so the fan-out contract is broken.
func (s *Server) mcastBreakup(g *mcastGroup, now sim.Time, reason string) {
	for len(g.members) > 0 {
		s.mcastFallback(g.members[0], now, reason)
	}
	s.mcastDissolve(g)
}

// mcastOnClose handles a group participant leaving (crs_close or a
// recovery eviction). A member detaches; a feed promotes the earliest
// member — every member already holds every chunk the feed fanned out, so
// survivors lose nothing while the promoted feed's first disk batch is in
// flight.
func (s *Server) mcastOnClose(st *stream, now sim.Time) {
	g := st.mg
	if g == nil {
		return
	}
	if g.feed != st {
		s.mcastDetach(st)
		return
	}
	g.feed = nil
	st.mg = nil
	if len(g.members) == 0 {
		s.mcastDissolve(g)
		return
	}
	s.mcastPromote(g, st, now)
}

// mcastPromote hands a feedless group to its earliest member: the member
// releases its fan-out reservation, restores plain disk-charging admission
// parameters (the departed feed freed its own B_i and disk time — the
// interval-cache promotion precedent), and repositions its fetch machinery
// at its stamp point so its first disk batch joins the next cycle.
func (s *Server) mcastPromote(g *mcastGroup, old *stream, now sim.Time) {
	next := g.members[0]
	g.members = g.members[1:]
	g.feed = next
	next.mg = g
	next.mcastMember = false
	s.mcast.fanout -= next.mcastCharge
	next.mcastCharge = 0
	next.par = StreamParams{Rate: next.par.Rate, Chunk: next.par.Chunk}
	next.gen++
	next.pending = next.pending[:0]
	next.failedRanges = nil
	next.nextChunk = next.nextStamp
	next.setFetchPoint(next.nextStamp)
	s.mcastRearm(next, now)
	for _, m := range g.members {
		// The group coasts on its fanned-out runway while the new feed's
		// first batch is in flight; a member still inside its initial delay
		// has no such runway, so its window is re-armed like the feed's.
		s.mcastRearm(m, now)
	}
	s.stats.MulticastPromotions++
	s.k.Engine().Tracef("cras: mcast promote stream %d to feed on %s (feed %d left, %d members remain)", //crasvet:allow hotalloc -- formats once per promotion, not per cycle
		next.id, g.path, old.id, len(g.members))
}
