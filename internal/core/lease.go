package core

import (
	"fmt"

	"repro/internal/rtm"
	"repro/internal/sim"
)

// Session leases. Every Handle carries an implicit lease: any client call —
// Get against the shared buffer, any control RPC, or an explicit Renew —
// renews it (stream.touch). The scheduler's per-cycle scan flags sessions
// whose lease has run out, and the deadline manager reaps them through the
// same eviction path the degradation ladder uses, so a dead client's
// admission capacity, buffer memory and cache pins are all reclaimed within
// LeaseTTL of its last sign of life. Reaping a cache leader hands its
// followers to the icache promotion path like any other leader close.
//
// Next to the lease there is a fast path: the per-session client port. Its
// destruction (the client died and the kernel cleaned up its ports) delivers
// a dead-name notification to the deadline manager, which reaps the session
// immediately instead of waiting out the TTL.

// LeaseExpired is sent to the deadline manager when the scheduler's lease
// scan finds a session whose client has not touched it within LeaseTTL.
type LeaseExpired struct {
	StreamID int
	Cycle    int
	Idle     sim.Time // how long the session had gone untouched
}

// scanLeases flags expired sessions for the reaper. It runs in the
// scheduler once per cycle, which makes the reap time deterministic: the
// first cycle boundary at or after leaseAt+LeaseTTL.
func (s *Server) scanLeases(now sim.Time) {
	ttl := s.cfg.LeaseTTL
	if ttl <= 0 {
		return
	}
	for _, st := range s.streams {
		if st.closed || st.rpcInFlight > 0 || now-st.leaseAt < ttl {
			continue
		}
		idle := now - st.leaseAt
		s.stats.LeasesExpired++
		st.touch(now) // one notification per expiry; the reap lands first
		s.deadlinePort.Send(LeaseExpired{StreamID: st.id, Cycle: s.cycle, Idle: idle})
	}
}

// reapLease is the deadline manager's half of lease expiry: evict the
// session through the standard path.
func (s *Server) reapLease(ev LeaseExpired) {
	st := s.findStream(ev.StreamID)
	if st == nil {
		return // closed in the gap between scan and reap
	}
	s.stats.SessionsReaped++
	s.evict(st, fmt.Sprintf("lease expired after %v idle", ev.Idle))
}

// reapDeadName is the fast path: the client's per-session port was
// destroyed, so the client is gone for certain and the session is reaped
// without waiting out the lease.
func (s *Server) reapDeadName(dn rtm.DeadName) {
	for _, st := range s.streams {
		if st.closed || st.clientPort != dn.Port {
			continue
		}
		s.stats.SessionsReaped++
		s.evict(st, "client port destroyed")
		return
	}
}

// Renew explicitly renews the session lease without any other effect — the
// keep-alive for clients that legitimately go quiet (a paused viewer, a
// recorder waiting for its capture source).
func (h *Handle) Renew(th *rtm.Thread) error {
	return h.op(th, renewReq{id: h.st.id})
}

// Crash simulates the client dying without closing its session: the
// per-session client port is destroyed the way the kernel would reclaim a
// dead task's ports, which delivers the dead-name notification to the
// server. May be called from any engine context. The handle is unusable
// afterwards.
func (h *Handle) Crash() {
	if h.st.clientPort != nil {
		h.st.clientPort.Destroy()
	}
}
