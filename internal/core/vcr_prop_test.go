package core

import (
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Property-based exercise of the VCR layer: seeded random viewer
// populations — plain disk readers, cache followers, multicast members,
// reduced-rate viewers — disturbed by pause/resume/seek/rate-change/crash
// scripts, with the VCR state machine and the shared-resource accounting
// verified after every operation. The invariants:
//
//   - no expired chunk is ever delivered (late is allowed inside the
//     jitter window; past Tdiscard is not),
//   - the interval cache's committed counter equals the sum of the
//     per-stream pin charges after every attach, detach and eviction,
//   - a paused stream issues zero disk reads and its clock is frozen,
//   - DeliveredRate only ever sits on a ladder rung,
//   - every VCR refusal is typed (*VCRError wrapping ErrVCRRefused),
//   - the set of open streams is always admissible and the cache and
//     multicast budgets are never overcommitted.
//
// The seed defaults to a fixed value so the suite is deterministic; CI
// (and anyone chasing a failure) overrides it with VCR_PROP_SEED, and
// every failure message carries the seed so the exact script replays with
//
//	VCR_PROP_SEED=<seed> go test ./internal/core -run TestVCRProperties
func TestVCRProperties(t *testing.T) {
	seed := int64(20260807)
	if env := os.Getenv("VCR_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("VCR_PROP_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("property seed %d (override with VCR_PROP_SEED)", seed)
	root := rand.New(rand.NewSource(seed))
	for seq := 0; seq < 8; seq++ {
		runVCRSequence(t, seed, seq, rand.New(rand.NewSource(root.Int63())))
		if t.Failed() {
			return // one broken script is enough; later ones only add noise
		}
	}
}

// vcrViewer is one session under the random population. Any viewer a VCR
// op touches directly is excused from the zero-loss obligation (the op
// legitimately rewrites its timeline); everyone else must keep playing
// undisturbed — seeks and rate changes must not leak onto peers.
type vcrViewer struct {
	h       *Handle
	stop    bool
	done    bool
	excused bool
	losses  int
	played  int
	expired int // chunks delivered past their discard horizon
}

// pausedProbe freezes what a successful Pause promised: no further disk
// reads and a motionless clock, checked at every subsequent sweep until
// the stream resumes or is reaped.
type pausedProbe struct {
	v       *vcrViewer
	reads   int64
	logical sim.Time
}

func vcrPropPlay(b *bed, th *rtm.Thread, v *vcrViewer, frames int) {
	info := v.h.Info()
	jitter := b.cras.cfg.Jitter
	const poll = 2 * time.Millisecond
	for i := 0; i < frames && !v.stop; i++ {
		want := info.Chunks[i]
		due := v.h.ClockStartsAt(want.Timestamp)
		if due < 0 { // clock stopped: paused, suspended or crashed under us
			break
		}
		if b.k.Now() < due {
			th.SleepUntil(due)
		}
		deadline := due + 3*want.Duration
		for !v.stop {
			if c, ok := v.h.Get(want.Timestamp); ok {
				// Late delivery inside the jitter window is the contract;
				// delivery past the discard horizon never is.
				if c.Timestamp+c.Duration <= v.h.LogicalNow()-sim.Time(jitter) {
					v.expired++
				}
				v.played++
				break
			}
			if b.k.Now() >= deadline {
				v.losses++
				break
			}
			th.Sleep(poll)
		}
	}
	v.done = true
}

// checkVCRInvariants sweeps the server's whole session table: ladder
// discipline, pause promises, and the three shared-budget identities
// (admission, interval cache, multicast). Runs between operations, at
// arbitrary points of the cycle grid — the invariants hold at every
// edge, so they hold here too.
func checkVCRInvariants(t *testing.T, b *bed, rungs []float64, paused *[]pausedProbe, seed int64, seq, op int) {
	s := b.cras
	now := b.k.Now()
	fail := func(format string, args ...interface{}) {
		t.Errorf("seed %d seq %d op %d: "+format, append([]interface{}{seed, seq, op}, args...)...)
	}

	var pinCharges, fanout int64
	for _, st := range s.streams {
		if st.closed {
			if st.cachePinCharge != 0 {
				fail("closed stream %d still holds a pin charge of %d", st.id, st.cachePinCharge)
			}
			continue
		}
		pinCharges += st.cachePinCharge
		if st.mcastMember {
			fanout += st.mcastCharge
		}
		onRung := false
		for _, r := range rungs {
			if st.dr == r {
				onRung = true
			}
		}
		if !onRung {
			fail("stream %d delivered rate %g is not a ladder rung", st.id, st.dr)
		}
	}
	kept := (*paused)[:0]
	for _, probe := range *paused {
		st := probe.v.h.st
		if st.closed || !st.paused {
			continue // reaped while paused (the lease layer won) or resumed
		}
		if got := st.stats.ReadsIssued; got != probe.reads {
			fail("paused stream %d issued %d disk reads while frozen", st.id, got-probe.reads)
		}
		if got := st.clock.At(now); got != probe.logical {
			fail("paused stream %d clock moved: %v -> %v", st.id, probe.logical, got)
		}
		kept = append(kept, probe)
	}
	*paused = kept
	if pinCharges != s.icache.committed {
		fail("cache pin accounting drifted: committed %d, sum of stream charges %d",
			s.icache.committed, pinCharges)
	}
	if s.icache.committed > s.icache.budget {
		fail("cache reservations overcommitted: %d > budget %d", s.icache.committed, s.icache.budget)
	}
	var pinned int64
	for _, pc := range s.icache.paths {
		for _, c := range pc.pins {
			pinned += c.Size
		}
	}
	if pinned != s.icache.bytes {
		fail("cache pin bytes drifted: recorded %d, summed %d", s.icache.bytes, pinned)
	}
	if fanout != s.mcast.fanout {
		fail("fan-out accounting drifted: committed %d, sum of member charges %d", s.mcast.fanout, fanout)
	}
	if s.mcast.fanout+s.mcast.pinned > s.mcast.budget && s.mcast.budget > 0 {
		fail("multicast budget exceeded: fanout %d + pinned %d > %d",
			s.mcast.fanout, s.mcast.pinned, s.mcast.budget)
	}
	// Every open stream got in through admission, and every VCR transition
	// re-admits — so the live set must be admissible at all times.
	if err := s.admit(s.admissionSet()); err != nil {
		fail("open session set no longer admissible: %v", err)
	}
}

// vcrOpErr enforces the typed-refusal contract on a VCR verb's result:
// the only error a live session may see is a *VCRError carrying
// ErrVCRRefused and a retry hint. (A session reaped by the lease layer
// mid-script answers "no such stream", which is not a refusal.)
func vcrOpErr(t *testing.T, v *vcrViewer, seed int64, seq, op int, verb string, err error) {
	if err == nil || v.h.st.closed {
		return
	}
	var vcrErr *VCRError
	if !errors.As(err, &vcrErr) || !errors.Is(err, ErrVCRRefused) {
		t.Errorf("seed %d seq %d op %d: %s returned untyped error %v", seed, seq, op, verb, err)
		return
	}
	if vcrErr.RetryAfter <= 0 {
		t.Errorf("seed %d seq %d op %d: %s refusal carries no retry hint", seed, seq, op, verb)
	}
}

// runVCRSequence drives one random ~25-op script against a mixed
// population: a hot title that forms cache pairs and (in half the beds)
// multicast groups, a cold title read straight from disk, and occasional
// reduced-rate viewers. Pause, resume, seek, rate changes and server-side
// crashes disturb the sessions mid-play; the invariant sweep runs after
// every op and the undisturbed viewers must lose nothing.
func runVCRSequence(t *testing.T, seed int64, seq int, rng *rand.Rand) {
	const frames = 60
	rungs := []float64{1, 0.75, 0.5}
	hot := media.MPEG1().Generate("/hot", 12*time.Second)
	cold := media.MPEG1().Generate("/cold", 12*time.Second)
	cfg := Config{
		CacheBudget: 8 << 20,
		RateLadder:  rungs,
	}
	if rng.Intn(2) == 0 {
		cfg.BatchWindow = time.Duration(500+rng.Intn(1000)) * time.Millisecond
		cfg.PrefixBudget = 2 << 20
		cfg.PrefixMinOpens = 2
	}
	newBed(t, seed^int64(seq*2654435761), ufs.Options{}, cfg,
		map[string]*media.StreamInfo{"/hot": hot, "/cold": cold},
		func(b *bed, th *rtm.Thread) {
			var viewers []*vcrViewer
			var paused []pausedProbe

			for op := 0; op < 25 && !t.Failed(); op++ {
				var live []*vcrViewer
				for _, v := range viewers {
					if !v.stop && !v.h.st.closed {
						live = append(live, v)
					}
				}
				switch k := rng.Intn(12); {
				case k < 4 && len(live) < 8: // open a viewer
					path, info := "/hot", hot
					if rng.Intn(4) == 0 {
						path, info = "/cold", cold
					}
					opts := OpenOptions{}
					if rng.Intn(5) == 0 {
						opts.DeliveredRate = rungs[1+rng.Intn(len(rungs)-1)]
					}
					h, err := b.cras.Open(th, info, path, opts)
					if err != nil {
						t.Logf("op %d @%v: open refused: %v", op, b.k.Now(), err)
						break // admission refusal is a legitimate outcome
					}
					t.Logf("op %d @%v: open %s dr=%g (stream %d cached=%v member=%v)",
						op, b.k.Now(), path, h.DeliveredRate(), h.st.id, h.CacheBacked(), h.MulticastMember())
					h.Start(th)
					v := &vcrViewer{h: h}
					viewers = append(viewers, v)
					b.k.NewThread("viewer", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
						vcrPropPlay(b, th2, v, frames)
					})
				case k < 6 && len(live) > 0: // pause; half stay silent for the lease layer
					v := live[rng.Intn(len(live))]
					v.stop, v.excused = true, true
					err := v.h.Pause(th)
					t.Logf("op %d @%v: pause stream %d: %v", op, b.k.Now(), v.h.st.id, err)
					vcrOpErr(t, v, seed, seq, op, "pause", err)
					if err == nil {
						paused = append(paused, pausedProbe{
							v:       v,
							reads:   v.h.StreamStats().ReadsIssued,
							logical: v.h.LogicalNow(),
						})
					}
				case k < 7 && len(paused) > 0: // resume one of the frozen sessions
					probe := paused[rng.Intn(len(paused))]
					err := probe.v.h.Resume(th)
					t.Logf("op %d @%v: resume stream %d (frozen at %v): %v",
						op, b.k.Now(), probe.v.h.st.id, probe.logical, err)
					vcrOpErr(t, probe.v, seed, seq, op, "resume", err)
				case k < 9 && len(live) > 0: // seek: full re-admission or pin reuse
					v := live[rng.Intn(len(live))]
					v.stop, v.excused = true, true
					err := v.h.Seek(th, sim.Time(rng.Intn(8))*sim.Time(time.Second))
					t.Logf("op %d @%v: seek stream %d: %v", op, b.k.Now(), v.h.st.id, err)
					vcrOpErr(t, v, seed, seq, op, "seek", err)
				case k < 11 && len(live) > 0: // rate change, incl. rewind and ff
					v := live[rng.Intn(len(live))]
					v.stop, v.excused = true, true
					rate := []float64{0.5, 1, 2, -1}[rng.Intn(4)]
					err := v.h.SetRate(th, rate)
					t.Logf("op %d @%v: setrate stream %d to %g: %v", op, b.k.Now(), v.h.st.id, rate, err)
					vcrOpErr(t, v, seed, seq, op, "setrate", err)
				default: // crash: the recovery eviction path
					if len(live) == 0 {
						break
					}
					v := live[rng.Intn(len(live))]
					v.stop, v.excused = true, true
					t.Logf("op %d @%v: crash stream %d (cached=%v member=%v)",
						op, b.k.Now(), v.h.st.id, v.h.CacheBacked(), v.h.MulticastMember())
					b.cras.evict(v.h.st, "property-suite crash")
				}
				th.Sleep(time.Duration(150+rng.Intn(300)) * time.Millisecond)
				checkVCRInvariants(t, b, rungs, &paused, seed, seq, op)
			}

			// Wind down: let every player finish, then close what survived.
			for _, v := range viewers {
				v.stop = true
			}
			for _, v := range viewers {
				for !v.done {
					th.Sleep(50 * time.Millisecond)
				}
			}
			for _, v := range viewers {
				if !v.h.st.closed {
					v.h.Close(th)
				}
			}
			checkVCRInvariants(t, b, rungs, &paused, seed, seq, 999)
			if got := b.cras.icache.committed; got != 0 {
				t.Errorf("seed %d seq %d: cache reservations leaked after all closes: %d", seed, seq, got)
			}
			if got := b.cras.mcast.fanout; got != 0 {
				t.Errorf("seed %d seq %d: fan-out reservations leaked after all closes: %d", seed, seq, got)
			}

			for i, v := range viewers {
				if v.expired != 0 {
					t.Errorf("seed %d seq %d viewer %d: %d chunks delivered past their discard horizon",
						seed, seq, i, v.expired)
				}
				if !v.excused && v.losses != 0 {
					t.Errorf("seed %d seq %d viewer %d: %d losses without being disturbed (stats=%+v)",
						seed, seq, i, v.losses, v.h.StreamStats())
				}
			}
		})
}
