package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// A VBR variant of the session fuzzer: bursty chunk sizes stress the
// worst-case-sized buffer through seeks, rate changes and pauses.
func TestPropertyVBRSessionOpsNeverWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f := func(ops []uint8, seedRaw uint8) bool {
		if len(ops) > 10 {
			ops = ops[:10]
		}
		ok := true
		profile := media.VBRProfile{FrameRate: 30, MeanRate: 300000, Jitter: 0.35}
		// Seed-varied VBR stream per case.
		rng := sim.NewEngine(31 + int64(seedRaw)).RNG("vbr")
		movie := profile.Generate("/v", 15*time.Second, rng)
		newBed(t, 7, ufs.Options{}, Config{BufferBudget: 32 << 20},
			map[string]*media.StreamInfo{"/v": movie},
			func(b *bed, th *rtm.Thread) {
				h, err := b.cras.Open(th, movie, "/v", OpenOptions{})
				if err != nil {
					return // admission may refuse high worst-case rates; fine
				}
				for _, op := range ops {
					switch op % 5 {
					case 0:
						h.Start(th)
					case 1:
						h.Stop(th)
					case 2:
						h.Seek(th, time.Duration(op%14)*time.Second)
					case 3:
						h.SetRate(th, []float64{0.5, 1, 2}[int(op)%3])
					case 4:
						th.Sleep(time.Duration(op%4) * 400 * time.Millisecond)
					}
				}
				th.Sleep(2 * time.Second)
				if h.BufferStats().Overflowed != 0 {
					t.Logf("VBR overflow after %v (seed %d)", ops, seedRaw)
					ok = false
				}
				h.Close(th)
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
