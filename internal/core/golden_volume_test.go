package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// runGoldenVolumeScenario plays the golden workload on a machine built three
// ways: ndisks == 0 uses the legacy single-disk constructor (NewServer on a
// bare *disk.Disk), ndisks == 1 a one-member striped volume with a real
// 64-sector stripe unit, ndisks > 1 a striped volume over that many members.
// Seed, geometry, movies and knobs are held constant.
func runGoldenVolumeScenario(t *testing.T, ndisks int) goldenResult {
	t.Helper()
	shared := media.MPEG1().Generate("/shared", 10*time.Second)
	solo := media.MPEG1().Generate("/solo", 8*time.Second)
	movies := map[string]*media.StreamInfo{"/shared": shared, "/solo": solo}

	e := sim.NewEngine(7)
	g, p := disk.ST32550N()
	g.Cylinders = 600
	var dev ufs.BlockDevice
	var vol *disk.Volume
	d := disk.New(e, "sd0", g, p)
	if ndisks == 0 {
		dev = d
	} else {
		members := []*disk.Disk{d}
		for i := 1; i < ndisks; i++ {
			members = append(members, disk.New(e, "sd"+string(rune('0'+i)), g, p))
		}
		v, err := disk.NewVolume("vol0", members, 64)
		if err != nil {
			t.Fatalf("NewVolume: %v", err)
		}
		vol = v
		dev = v
	}
	if _, err := ufs.Format(dev, ufs.Options{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	var res goldenResult
	b := &bed{e: e, d: d}
	e.Spawn("setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, dev, ufs.Options{})
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		for _, m := range sortedMovies(movies) {
			if err := media.Store(pr, fs, m.path, m.info); err != nil {
				t.Errorf("Store %s: %v", m.path, err)
				return
			}
		}
		fs.Sync(pr)

		b.k = rtm.NewKernel(e)
		b.unix = ufs.NewServer(b.k, fs, rtm.PrioTS, 0)
		cfg := Config{Params: MeasureAdmissionParams(d, 64<<10)}
		if ndisks == 0 {
			b.cras = NewServer(b.k, d, b.unix, cfg)
		} else {
			b.cras = NewVolumeServer(b.k, vol, b.unix, cfg)
		}
		b.k.NewThread("app", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			goldenWorkload(t, b, th, shared, solo, &res)
		})
	})
	e.RunUntil(10 * time.Minute)
	return res
}

// TestGoldenVolumeEquivalence is the N=1 equivalence gate for the striping
// layer: a one-member volume with a genuine stripe unit must be invisible —
// every stream receives the byte-identical chunk sequence at identical
// per-frame delays, and every server counter (cycle accounting, per-disk
// read tallies, deadline misses) matches the legacy single-disk path
// exactly.
func TestGoldenVolumeEquivalence(t *testing.T) {
	legacy := runGoldenVolumeScenario(t, 0)
	striped := runGoldenVolumeScenario(t, 1)
	if t.Failed() {
		return
	}
	for i, name := range []string{"leader", "follower", "solo"} {
		if legacy.lost[i] != 0 || striped.lost[i] != 0 {
			t.Errorf("%s lost frames: legacy %d, volume %d", name, legacy.lost[i], striped.lost[i])
		}
		if legacy.digests[i] != striped.digests[i] {
			t.Errorf("%s delivered sequence diverged: legacy %016x, volume %016x",
				name, legacy.digests[i], striped.digests[i])
		}
	}
	if !reflect.DeepEqual(legacy.stats, striped.stats) {
		t.Errorf("server stats diverged:\nlegacy: %+v\nvolume: %+v", legacy.stats, striped.stats)
	}
}

// TestGoldenMultiDiskDelivery runs the same workload on a four-member
// volume. Timing legitimately differs from the single-disk machine, but
// service must not: no frame is lost, and the read load demonstrably
// spreads — every member disk serves real-time reads.
func TestGoldenMultiDiskDelivery(t *testing.T) {
	res := runGoldenVolumeScenario(t, 4)
	if t.Failed() {
		return
	}
	for i, name := range []string{"leader", "follower", "solo"} {
		if res.lost[i] != 0 {
			t.Errorf("%s lost %d frames on the 4-disk volume", name, res.lost[i])
		}
	}
	if len(res.stats.DiskReads) != 4 {
		t.Fatalf("DiskReads has %d entries, want 4", len(res.stats.DiskReads))
	}
	var total int64
	for d, n := range res.stats.DiskReads {
		if n == 0 {
			t.Errorf("member %d served no real-time reads", d)
		}
		total += n
	}
	// Each logical read fans out into at least one member operation.
	if total < res.stats.ReadsIssued {
		t.Errorf("per-disk reads sum to %d, want at least ReadsIssued=%d", total, res.stats.ReadsIssued)
	}
}
