package core

import (
	"repro/internal/sim"
)

// BufferedChunk is one media chunk resident in a time-driven shared memory
// buffer: the data (represented by its size — payload bytes are sparse in
// the simulation) plus the timestamp CRAS stamped it with.
type BufferedChunk struct {
	Index     int      // chunk index in the stream's table
	Timestamp sim.Time // media time
	Duration  sim.Time
	Size      int64
	StampedAt sim.Time // real time the request scheduler delivered it
}

// TDBuffer is the time-driven shared memory buffer of Figure 4. The server
// inserts chunks with their timestamps; obsolete chunks (timestamp older
// than Tdiscard = Tnow - J on the stream's logical clock) are discarded
// automatically, so the buffer always has room for the data being
// retrieved and never pushes back on the producer the way a FIFO would.
type TDBuffer struct {
	capacity int64 // B: total buffer bytes for this stream
	jitter   sim.Time

	chunks []BufferedChunk // ordered by timestamp
	bytes  int64

	// Stats.
	Inserted    int64
	Discarded   int64 // by the time-driven rule
	Overflowed  int64 // inserts refused for lack of space (should not happen)
	PeakBytes   int64
	GetHits     int64
	GetMisses   int64
	LateDiscard int64 // chunks that were never read before discard
	read        map[int]bool
}

// NewTDBuffer creates a buffer with the given byte capacity and jitter
// allowance J.
func NewTDBuffer(capacity int64, jitter sim.Time) *TDBuffer {
	return &TDBuffer{capacity: capacity, jitter: jitter, read: make(map[int]bool)}
}

// Capacity returns B, the configured byte capacity.
func (b *TDBuffer) Capacity() int64 { return b.capacity }

// SetCapacity resizes the buffer (used when a rate change re-admits the
// stream with a different R_i). Resident data is kept even if it now
// exceeds the capacity; the time-driven discard drains it.
func (b *TDBuffer) SetCapacity(capacity int64) { b.capacity = capacity }

// Bytes returns the bytes currently resident.
func (b *TDBuffer) Bytes() int64 { return b.bytes }

// Len returns the number of resident chunks.
func (b *TDBuffer) Len() int { return len(b.chunks) }

// Insert stamps a chunk into the buffer. It reports whether the chunk fit;
// a false return is counted as an overflow (the admission test is supposed
// to make this impossible).
func (b *TDBuffer) Insert(c BufferedChunk) bool {
	if b.bytes+c.Size > b.capacity {
		b.Overflowed++
		return false
	}
	b.chunks = append(b.chunks, c)
	b.bytes += c.Size
	b.Inserted++
	if b.bytes > b.PeakBytes {
		b.PeakBytes = b.bytes
	}
	return true
}

// DiscardBefore applies the time-driven rule: every chunk whose timestamp
// is earlier than tdiscard is removed. The caller computes tdiscard as
// logicalNow - J.
func (b *TDBuffer) DiscardBefore(tdiscard sim.Time) int {
	n := 0
	for n < len(b.chunks) && b.chunks[n].Timestamp < tdiscard {
		b.bytes -= b.chunks[n].Size
		b.Discarded++
		if !b.read[b.chunks[n].Index] {
			b.LateDiscard++
		}
		delete(b.read, b.chunks[n].Index)
		n++
	}
	if n > 0 {
		b.chunks = append(b.chunks[:0], b.chunks[n:]...)
	}
	return n
}

// Get returns the chunk covering the given logical time, if resident —
// the crs_get operation, which involves no communication with the server.
func (b *TDBuffer) Get(logical sim.Time) (BufferedChunk, bool) {
	for i := range b.chunks {
		c := &b.chunks[i]
		if c.Timestamp <= logical && logical < c.Timestamp+c.Duration {
			b.GetHits++
			b.read[c.Index] = true
			return *c, true
		}
		if c.Timestamp > logical {
			break
		}
	}
	b.GetMisses++
	return BufferedChunk{}, false
}

// Peek reports whether a chunk covering the logical time is resident
// without recording a hit or miss.
func (b *TDBuffer) Peek(logical sim.Time) bool {
	for i := range b.chunks {
		c := &b.chunks[i]
		if c.Timestamp <= logical && logical < c.Timestamp+c.Duration {
			return true
		}
		if c.Timestamp > logical {
			return false
		}
	}
	return false
}

// Reset empties the buffer (used by crs_seek).
func (b *TDBuffer) Reset() {
	b.chunks = b.chunks[:0]
	b.bytes = 0
	b.read = make(map[int]bool)
}

// Jitter returns the configured jitter allowance J.
func (b *TDBuffer) Jitter() sim.Time { return b.jitter }
