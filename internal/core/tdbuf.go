package core

import (
	"repro/internal/sim"
)

// BufferedChunk is one media chunk resident in a time-driven shared memory
// buffer: the data (represented by its size — payload bytes are sparse in
// the simulation) plus the timestamp CRAS stamped it with.
type BufferedChunk struct {
	Index     int      // chunk index in the stream's table
	Timestamp sim.Time // media time
	Duration  sim.Time
	Size      int64
	StampedAt sim.Time // real time the request scheduler delivered it
}

// TDBuffer is the time-driven shared memory buffer of Figure 4. The server
// inserts chunks with their timestamps; obsolete chunks (timestamp older
// than Tdiscard = Tnow - J on the stream's logical clock) are discarded
// automatically, so the buffer always has room for the data being
// retrieved and never pushes back on the producer the way a FIFO would.
type TDBuffer struct {
	capacity int64 // B: total buffer bytes for this stream
	jitter   sim.Time

	chunks []BufferedChunk // ordered by timestamp
	bytes  int64

	// Stats.
	Inserted    int64
	Discarded   int64 // by the time-driven rule
	Overflowed  int64 // inserts refused for lack of space (should not happen)
	Overlapped  int64 // inserts refused because the logical interval was taken
	PeakBytes   int64
	GetHits     int64
	GetMisses   int64
	LateDiscard int64 // chunks that were never read before discard
	read        map[int]bool

	// popScratch backs PopBefore's return value: valid until the next
	// PopBefore call, which every caller respects (the popped chunks are
	// consumed inside one scheduler pass).
	popScratch []BufferedChunk
}

// NewTDBuffer creates a buffer with the given byte capacity and jitter
// allowance J.
func NewTDBuffer(capacity int64, jitter sim.Time) *TDBuffer {
	return &TDBuffer{capacity: capacity, jitter: jitter, read: make(map[int]bool)}
}

// Capacity returns B, the configured byte capacity.
func (b *TDBuffer) Capacity() int64 { return b.capacity }

// SetCapacity resizes the buffer (used when a rate change re-admits the
// stream with a different R_i). The capacity never shrinks below the bytes
// currently resident: evicting live data would drop chunks that are still
// needed, so a shrink takes effect only as the time-driven discard drains
// the excess.
func (b *TDBuffer) SetCapacity(capacity int64) {
	if capacity < b.bytes {
		capacity = b.bytes
	}
	b.capacity = capacity
}

// Bytes returns the bytes currently resident.
func (b *TDBuffer) Bytes() int64 { return b.bytes }

// search is sort.Search specialized to the resident set: the first index
// whose chunk timestamp is >= ts. Hand-rolled because the closure a generic
// sort.Search call captures would allocate on the per-cycle path.
func (b *TDBuffer) search(ts sim.Time) int {
	lo, hi := 0, len(b.chunks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.chunks[mid].Timestamp < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of resident chunks.
func (b *TDBuffer) Len() int { return len(b.chunks) }

// Insert stamps a chunk into the buffer, keeping the resident set ordered
// by timestamp and non-overlapping in logical time. It reports whether the
// chunk fit; a refusal for space is counted as an overflow (the admission
// test is supposed to make this impossible), a refusal because another
// chunk already covers part of the logical interval as an overlap.
func (b *TDBuffer) Insert(c BufferedChunk) bool {
	if b.bytes+c.Size > b.capacity {
		b.Overflowed++
		return false
	}
	at := b.search(c.Timestamp)
	if at < len(b.chunks) && b.chunks[at].Timestamp < c.Timestamp+c.Duration {
		b.Overlapped++
		return false
	}
	if at > 0 && b.chunks[at-1].Timestamp+b.chunks[at-1].Duration > c.Timestamp {
		b.Overlapped++
		return false
	}
	b.chunks = append(b.chunks, BufferedChunk{}) //crasvet:allow hotalloc -- resident-set insert; capacity retained, bounded by the buffer's byte capacity
	copy(b.chunks[at+1:], b.chunks[at:])
	b.chunks[at] = c
	b.bytes += c.Size
	b.Inserted++
	if b.bytes > b.PeakBytes {
		b.PeakBytes = b.bytes
	}
	return true
}

// DiscardBefore applies the time-driven rule: every chunk whose timestamp
// is earlier than tdiscard is removed. The caller computes tdiscard as
// logicalNow - J.
func (b *TDBuffer) DiscardBefore(tdiscard sim.Time) int {
	return len(b.PopBefore(tdiscard))
}

// PopBefore is DiscardBefore returning the removed chunks, oldest first —
// the hook the interval cache uses to pin a leader's obsolete chunks for a
// trailing stream instead of dropping them. Returns nil when nothing fell
// behind the horizon.
func (b *TDBuffer) PopBefore(tdiscard sim.Time) []BufferedChunk {
	n := 0
	for n < len(b.chunks) && b.chunks[n].Timestamp < tdiscard {
		b.bytes -= b.chunks[n].Size
		b.Discarded++
		if !b.read[b.chunks[n].Index] {
			b.LateDiscard++
		}
		delete(b.read, b.chunks[n].Index)
		n++
	}
	if n == 0 {
		return nil
	}
	b.popScratch = append(b.popScratch[:0], b.chunks[:n]...) //crasvet:allow hotalloc -- append into popScratch[:0]; capacity retained by construction
	b.chunks = append(b.chunks[:0], b.chunks[n:]...)         //crasvet:allow hotalloc -- append into b.chunks[:0]; capacity retained by construction
	return b.popScratch
}

// At returns the resident chunk with exactly the given timestamp, if any —
// the interval cache's residency probe, distinct from Get in that it does
// not count a hit or miss and does not mark the chunk read.
func (b *TDBuffer) At(timestamp sim.Time) (BufferedChunk, bool) {
	at := b.search(timestamp)
	if at < len(b.chunks) && b.chunks[at].Timestamp == timestamp {
		return b.chunks[at], true
	}
	return BufferedChunk{}, false
}

// Get returns the chunk covering the given logical time, if resident —
// the crs_get operation, which involves no communication with the server.
func (b *TDBuffer) Get(logical sim.Time) (BufferedChunk, bool) {
	for i := range b.chunks {
		c := &b.chunks[i]
		if c.Timestamp <= logical && logical < c.Timestamp+c.Duration {
			b.GetHits++
			b.read[c.Index] = true
			return *c, true
		}
		if c.Timestamp > logical {
			break
		}
	}
	b.GetMisses++
	return BufferedChunk{}, false
}

// Peek reports whether a chunk covering the logical time is resident
// without recording a hit or miss.
func (b *TDBuffer) Peek(logical sim.Time) bool {
	for i := range b.chunks {
		c := &b.chunks[i]
		if c.Timestamp <= logical && logical < c.Timestamp+c.Duration {
			return true
		}
		if c.Timestamp > logical {
			return false
		}
	}
	return false
}

// Reset empties the buffer (used by crs_seek).
func (b *TDBuffer) Reset() {
	b.chunks = b.chunks[:0]
	b.bytes = 0
	b.read = make(map[int]bool)
}

// Jitter returns the configured jitter allowance J.
func (b *TDBuffer) Jitter() sim.Time { return b.jitter }
