package core

import (
	"testing"

	"repro/internal/ufs"
)

func TestBuildExtentMapContiguous(t *testing.T) {
	// 100 contiguous blocks -> runs capped at 256 KB (32 blocks).
	blocks := make([]uint32, 100)
	for i := range blocks {
		blocks[i] = 1000 + uint32(i)
	}
	m, err := BuildExtentMap(blocks, 100*ufs.BlockSize, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Extents) != 4 { // 32+32+32+4
		t.Fatalf("extents = %d, want 4", len(m.Extents))
	}
	if m.Extents[0].Sectors != 32*ufs.SectorsPerBlock {
		t.Fatalf("first extent = %d sectors", m.Extents[0].Sectors)
	}
	if m.Extents[3].Sectors != 4*ufs.SectorsPerBlock {
		t.Fatalf("last extent = %d sectors", m.Extents[3].Sectors)
	}
	if m.Extents[1].FileOff != 32*ufs.BlockSize {
		t.Fatalf("second extent FileOff = %d", m.Extents[1].FileOff)
	}
	if m.Extents[1].LBA != int64(1032)*ufs.SectorsPerBlock {
		t.Fatalf("second extent LBA = %d", m.Extents[1].LBA)
	}
}

func TestBuildExtentMapFragmented(t *testing.T) {
	// Alternating blocks: every block its own extent.
	blocks := []uint32{10, 12, 14, 16}
	m, err := BuildExtentMap(blocks, 4*ufs.BlockSize, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Extents) != 4 {
		t.Fatalf("extents = %d, want 4", len(m.Extents))
	}
	if m.AverageRunBytes() != ufs.BlockSize {
		t.Fatalf("avg run = %d, want one block", m.AverageRunBytes())
	}
}

func TestBuildExtentMapRejectsHoles(t *testing.T) {
	if _, err := BuildExtentMap([]uint32{5, 0, 7}, 3*ufs.BlockSize, 256<<10); err == nil {
		t.Fatal("hole accepted")
	}
}

func TestBuildExtentMapMinimumCap(t *testing.T) {
	blocks := []uint32{100, 101}
	m, err := BuildExtentMap(blocks, 2*ufs.BlockSize, 1) // absurdly small cap
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Extents) != 2 {
		t.Fatalf("cap below block size should clamp to one block per extent, got %d extents", len(m.Extents))
	}
}

func TestExtentsFor(t *testing.T) {
	blocks := make([]uint32, 64)
	for i := range blocks {
		blocks[i] = 500 + uint32(i)
	}
	m, _ := BuildExtentMap(blocks, 64*ufs.BlockSize, 256<<10) // 2 extents of 32 blocks
	all := m.ExtentsFor(0, 64*ufs.BlockSize)
	if len(all) != 2 {
		t.Fatalf("full range = %d extents", len(all))
	}
	first := m.ExtentsFor(0, 10)
	if len(first) != 1 || first[0].FileOff != 0 {
		t.Fatalf("tiny range = %v", first)
	}
	second := m.ExtentsFor(33*ufs.BlockSize, 34*ufs.BlockSize)
	if len(second) != 1 || second[0].FileOff != 32*ufs.BlockSize {
		t.Fatalf("second-half range = %v", second)
	}
	if got := m.ExtentsFor(64*ufs.BlockSize, 65*ufs.BlockSize); len(got) != 0 {
		t.Fatalf("out-of-range = %v", got)
	}
	// Boundary: a range ending exactly at an extent start excludes it.
	if got := m.ExtentsFor(0, 32*ufs.BlockSize); len(got) != 1 {
		t.Fatalf("boundary range = %d extents, want 1", len(got))
	}
}

func TestExtentMapEmpty(t *testing.T) {
	m, err := BuildExtentMap(nil, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Extents) != 0 || m.AverageRunBytes() != 0 {
		t.Fatal("empty map should have no extents")
	}
}
