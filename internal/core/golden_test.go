package core

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

// goldenResult captures everything one fixed-seed run delivers to its
// players: a digest per stream of the exact chunk sequence (index,
// timestamp, size, and per-frame delivery delay), plus the server and
// follower counters the comparison cares about.
type goldenResult struct {
	digests [3]uint64
	lost    [3]int
	stats   Stats
	folFrom int64 // follower ChunksFromCache
}

// goldenPlay is playAndMeasure with the delivered sequence folded into a
// digest: any difference in which chunks arrive, in what order, or when
// relative to their due times changes the sum.
func goldenPlay(b *bed, th *rtm.Thread, h *Handle, frames int) (uint64, int) {
	sum := fnv.New64a()
	word := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		sum.Write(buf[:])
	}
	info := h.Info()
	if frames > len(info.Chunks) {
		frames = len(info.Chunks)
	}
	const poll = 2 * time.Millisecond
	lost := 0
	for i := 0; i < frames; i++ {
		want := info.Chunks[i]
		due := h.ClockStartsAt(want.Timestamp)
		if due < 0 {
			lost++
			continue
		}
		if b.k.Now() < due {
			th.SleepUntil(due)
		}
		deadline := due + 3*want.Duration
		for {
			if c, ok := h.Get(want.Timestamp); ok {
				word(int64(c.Index))
				word(int64(c.Timestamp))
				word(c.Size)
				word(int64(b.k.Now() - due))
				break
			}
			if b.k.Now() >= deadline {
				lost++
				word(-1)
				word(int64(i))
				break
			}
			th.Sleep(poll)
		}
	}
	return sum.Sum64(), lost
}

// goldenWorkload opens the fixed three-stream workload — two viewers of one
// movie a second apart plus one solo viewer of another — plays 200 frames
// of each, and records the delivered digests and server counters into res.
func goldenWorkload(t *testing.T, b *bed, th *rtm.Thread,
	shared, solo *media.StreamInfo, res *goldenResult) {
	lead, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
	if err != nil {
		t.Errorf("open leader: %v", err)
		return
	}
	lead.Start(th)
	th.Sleep(1 * time.Second)
	fol, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
	if err != nil {
		t.Errorf("open follower: %v", err)
		return
	}
	one, err := b.cras.Open(th, solo, "/solo", OpenOptions{})
	if err != nil {
		t.Errorf("open solo: %v", err)
		return
	}
	fol.Start(th)
	one.Start(th)

	done := [2]bool{}
	b.k.NewThread("fol-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
		res.digests[1], res.lost[1] = goldenPlay(b, th2, fol, 200)
		done[0] = true
	})
	b.k.NewThread("solo-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
		res.digests[2], res.lost[2] = goldenPlay(b, th2, one, 200)
		done[1] = true
	})
	res.digests[0], res.lost[0] = goldenPlay(b, th, lead, 200)
	for !done[0] || !done[1] {
		th.Sleep(100 * time.Millisecond)
	}
	res.stats = b.cras.Stats()
	res.folFrom = fol.StreamStats().ChunksFromCache
}

// runGoldenScenario plays the golden workload under the given cache budget,
// all other knobs and the seed held constant.
func runGoldenScenario(t *testing.T, cacheBudget int64) goldenResult {
	t.Helper()
	shared := media.MPEG1().Generate("/shared", 10*time.Second)
	solo := media.MPEG1().Generate("/solo", 8*time.Second)
	var res goldenResult
	newBed(t, 7, ufs.Options{}, Config{CacheBudget: cacheBudget},
		map[string]*media.StreamInfo{"/shared": shared, "/solo": solo},
		func(b *bed, th *rtm.Thread) {
			goldenWorkload(t, b, th, shared, solo, &res)
		})
	return res
}

// The interval cache must be invisible to delivery: with the cache on,
// every stream receives the byte-identical chunk sequence at the identical
// per-frame delays as with the cache off — only the disk traffic and the
// cache counters may differ.
func TestGoldenCacheTransparency(t *testing.T) {
	off := runGoldenScenario(t, 0)
	on := runGoldenScenario(t, 16<<20)
	if t.Failed() {
		return
	}

	for i, name := range []string{"leader", "follower", "solo"} {
		if off.lost[i] != 0 || on.lost[i] != 0 {
			t.Errorf("%s lost frames: cache-off %d, cache-on %d", name, off.lost[i], on.lost[i])
		}
		if off.digests[i] != on.digests[i] {
			t.Errorf("%s delivered sequence diverged: cache-off %016x, cache-on %016x",
				name, off.digests[i], on.digests[i])
		}
	}

	// Service counters identical...
	if off.stats.ChunksStamped != on.stats.ChunksStamped {
		t.Errorf("ChunksStamped: cache-off %d, cache-on %d", off.stats.ChunksStamped, on.stats.ChunksStamped)
	}
	if off.stats.ThreadDeadlineMiss != on.stats.ThreadDeadlineMiss ||
		off.stats.IODeadlineMiss != on.stats.IODeadlineMiss {
		t.Errorf("deadline misses diverged: cache-off (%d,%d), cache-on (%d,%d)",
			off.stats.ThreadDeadlineMiss, off.stats.IODeadlineMiss,
			on.stats.ThreadDeadlineMiss, on.stats.IODeadlineMiss)
	}

	// ...while the cache visibly absorbs disk traffic.
	if on.stats.BytesRead >= off.stats.BytesRead {
		t.Errorf("cache-on read %d disk bytes, want fewer than cache-off's %d",
			on.stats.BytesRead, off.stats.BytesRead)
	}
	if on.stats.CacheHits == 0 || on.folFrom == 0 {
		t.Errorf("cache-on run shows no cache service: hits %d, follower chunks %d",
			on.stats.CacheHits, on.folFrom)
	}
	if off.stats.CacheHits != 0 || off.stats.CacheAttached != 0 {
		t.Errorf("cache-off run recorded cache activity: hits %d, attached %d",
			off.stats.CacheHits, off.stats.CacheAttached)
	}
}
