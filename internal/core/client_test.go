package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

func TestOpsOnClosedStreamFail(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 4*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			if err := h.Close(th); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := h.Start(th); err == nil {
				t.Error("Start on closed stream succeeded")
			}
			if err := h.Stop(th); err == nil {
				t.Error("Stop on closed stream succeeded")
			}
			if err := h.Seek(th, time.Second); err == nil {
				t.Error("Seek on closed stream succeeded")
			}
			if err := h.SetRate(th, 2); err == nil {
				t.Error("SetRate on closed stream succeeded")
			}
			if err := h.Close(th); err == nil {
				t.Error("double Close succeeded")
			}
		})
}

func TestOpenMissingFile(t *testing.T) {
	movie := media.MPEG1().Generate("/nosuch", 2*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{},
		func(b *bed, th *rtm.Thread) {
			if _, err := b.cras.Open(th, movie, "/nosuch", OpenOptions{}); err == nil {
				t.Error("Open of missing file succeeded")
			}
		})
}

func TestOpenUndersizedFile(t *testing.T) {
	// Chunk table describes more bytes than the stored file holds.
	small := media.MPEG1().Generate("/m1", 2*time.Second)
	big := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": small},
		func(b *bed, th *rtm.Thread) {
			if _, err := b.cras.Open(th, big, "/m1", OpenOptions{}); err == nil {
				t.Error("Open with oversized chunk table succeeded")
			}
		})
}

func TestOpenInvalidChunkTable(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 2*time.Second)
	corrupt := media.MPEG1().Generate("/m1", 2*time.Second)
	corrupt.Chunks[5].Offset += 9
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			if _, err := b.cras.Open(th, corrupt, "/m1", OpenOptions{}); err == nil {
				t.Error("Open with corrupt chunk table succeeded")
			}
		})
}

func TestSeekBeyondEndStopsFetching(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 4*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, _ := b.cras.Open(th, movie, "/m1", OpenOptions{})
			h.Start(th)
			if err := h.Seek(th, time.Hour); err != nil {
				t.Errorf("Seek past end: %v", err)
			}
			th.Sleep(2 * time.Second)
			sched := h.StreamStats().BytesScheduled
			th.Sleep(2 * time.Second)
			if h.StreamStats().BytesScheduled != sched {
				t.Error("fetching continued past end of stream")
			}
		})
}

// Property: any sequence of session operations leaves the server
// consistent — no buffer overflows, no deadline machinery wedged, and the
// stream either playable or cleanly closed.
func TestPropertySessionOpsNeverWedge(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	f := func(ops []uint8) bool {
		if len(ops) > 12 {
			ops = ops[:12]
		}
		ok := true
		newBed(t, 7, ufs.Options{}, Config{BufferBudget: 32 << 20},
			map[string]*media.StreamInfo{"/m1": movie},
			func(b *bed, th *rtm.Thread) {
				h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
				if err != nil {
					ok = false
					return
				}
				closed := false
				for _, op := range ops {
					switch op % 5 {
					case 0:
						h.Start(th)
					case 1:
						h.Stop(th)
					case 2:
						h.Seek(th, time.Duration(op%18)*time.Second)
					case 3:
						h.SetRate(th, []float64{0.5, 1, 2}[int(op)%3])
					case 4:
						th.Sleep(time.Duration(op%4) * 300 * time.Millisecond)
					}
					if closed {
						break
					}
				}
				th.Sleep(2 * time.Second)
				buf := h.BufferStats()
				if buf.Overflowed != 0 {
					t.Logf("overflowed %d after ops %v", buf.Overflowed, ops)
					ok = false
				}
				if !closed {
					if err := h.Close(th); err != nil {
						ok = false
					}
				}
				if b.cras.ActiveStreams() != 0 {
					ok = false
				}
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
