package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// An idle client is reaped at exactly the first deadline-manager pass after
// its lease runs out, and every resource it held — admission capacity,
// buffer memory, cache pins — is reclaimed.
func TestIdleClientReapedAtLeaseTTL(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			var evictAt sim.Time
			var evictReason string
			b.cras.OnStreamHealth = func(ev StreamHealthEvent) {
				if ev.To == Evicted {
					evictAt = b.k.Now()
					evictReason = ev.Reason
				}
			}
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			lastTouch := b.k.Now() // Start's completion renewed the lease
			// ...and the client now goes silent: no Get, no Renew.
			ttl := b.cras.Config().LeaseTTL
			interval := b.cras.Config().Interval
			th.Sleep(ttl - interval)
			if b.cras.ActiveStreams() != 1 {
				t.Error("stream reaped before its lease expired")
			}
			th.Sleep(2 * interval)
			if b.cras.ActiveStreams() != 0 {
				t.Fatal("idle stream not reaped after LeaseTTL")
			}
			// Exactly the first scheduler pass at or after lastTouch+TTL.
			expect := (lastTouch + ttl + interval - 1) / interval * interval
			if evictAt != expect {
				t.Errorf("reaped at %v, want first cycle boundary %v", evictAt, expect)
			}
			if !strings.Contains(evictReason, "lease expired") {
				t.Errorf("eviction reason = %q", evictReason)
			}
			st := b.cras.Stats()
			if st.LeasesExpired != 1 || st.SessionsReaped != 1 {
				t.Errorf("LeasesExpired = %d, SessionsReaped = %d, want 1, 1",
					st.LeasesExpired, st.SessionsReaped)
			}
			// Buffer memory is back to the wired baseline and the admission
			// slot is reusable.
			if got := b.cras.MemoryFootprint(); got != FixedFootprint {
				t.Errorf("MemoryFootprint after reap = %d, want %d", got, FixedFootprint)
			}
			if _, err := b.cras.Open(th, movie, "/m1", OpenOptions{}); err != nil {
				t.Errorf("open after reap (capacity not reclaimed): %v", err)
			}
		})
}

// A client that never sends another control RPC but keeps reading the
// shared buffer is alive: Get renews the lease.
func TestConsumingClientNeverReaped(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			// Poll Get twice a second for 8 s — well past the 4 s TTL, with
			// gaps well inside it.
			for i := 0; i < 16; i++ {
				th.Sleep(500 * time.Millisecond)
				h.Get(h.LogicalNow())
			}
			st := b.cras.Stats()
			if st.LeasesExpired != 0 || st.SessionsReaped != 0 {
				t.Errorf("consuming client reaped: LeasesExpired = %d, SessionsReaped = %d",
					st.LeasesExpired, st.SessionsReaped)
			}
			if b.cras.ActiveStreams() != 1 {
				t.Error("consuming client's stream gone")
			}
		})
}

// Reaping a cache leader is a leader close like any other: its follower is
// promoted through the icache path and keeps playing.
func TestReapedLeaderPromotesFollower(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 32 << 20, CacheBudget: 8 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			// The leader's client dies silently here: no Get, no Close.
			th.Sleep(1 * time.Second)
			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			if !fol.CacheBacked() {
				t.Error("follower not cache-backed")
			}
			fol.Start(th)
			// The follower consumes normally; the leader is reaped at its
			// TTL (~4.5 s) while the follower is mid-play.
			for i := 0; i < 16; i++ {
				th.Sleep(500 * time.Millisecond)
				fol.Get(fol.LogicalNow())
			}
			st := b.cras.Stats()
			if st.SessionsReaped != 1 {
				t.Errorf("SessionsReaped = %d, want 1 (the leader)", st.SessionsReaped)
			}
			if st.CachePromotions != 1 {
				t.Errorf("CachePromotions = %d, want 1", st.CachePromotions)
			}
			if b.cras.ActiveStreams() != 1 {
				t.Fatalf("ActiveStreams = %d, want 1 (the promoted follower)", b.cras.ActiveStreams())
			}
			logical := fol.LogicalNow()
			if !fol.Available(logical) {
				t.Error("promoted follower has no data at its clock")
			}
		})
}

// Regression: a multicast feed whose client goes silent is reaped by the
// lease scan mid-play, and the reap must promote the group's earliest
// member through the same path Close takes — the race here is the lease
// scan evicting the feed in the same cycle the fan-out step walks the
// group. Survivors keep playing with zero frame loss.
func TestReapedFeedPromotesEarliestMember(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 10*time.Second)
	newBed(t, 16, ufs.Options{}, mcastConfig(),
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open feed: %v", err)
			}
			feed.Start(th)
			// The feed's client now goes silent: no Get, no Renew, no Close.
			th.Sleep(200 * time.Millisecond)
			m1, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open m1: %v", err)
			}
			if !m1.MulticastMember() {
				t.Fatal("m1 did not join the feed's group")
			}
			m1.Start(th)
			th.Sleep(200 * time.Millisecond)
			m2, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open m2: %v", err)
			}
			m2.Start(th)

			var lost [2]int
			done := [2]bool{}
			b.k.NewThread("m1-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, lost[0] = goldenPlay(b, th2, m1, 200)
				done[0] = true
			})
			b.k.NewThread("m2-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, lost[1] = goldenPlay(b, th2, m2, 200)
				done[1] = true
			})
			for !done[0] || !done[1] {
				th.Sleep(100 * time.Millisecond)
			}
			st := b.cras.Stats()
			if st.LeasesExpired != 1 || st.SessionsReaped != 1 {
				t.Errorf("LeasesExpired = %d, SessionsReaped = %d, want 1, 1 (the silent feed)",
					st.LeasesExpired, st.SessionsReaped)
			}
			if st.MulticastPromotions != 1 {
				t.Errorf("MulticastPromotions = %d, want 1 (reap must run the Close promotion path)",
					st.MulticastPromotions)
			}
			if lost[0] != 0 || lost[1] != 0 {
				t.Errorf("survivors lost frames across the feed reap: m1 %d, m2 %d", lost[0], lost[1])
			}
			if m1.MulticastMember() {
				t.Errorf("earliest member still reports fan-out membership after promotion")
			}
			m1.Close(th)
			m2.Close(th)
		})
}

// Crash destroys the client's per-session port; the dead-name notification
// reaps the session immediately instead of waiting out the lease.
func TestCrashedClientReapedByDeadName(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(time.Second)
			h.Crash()
			th.Sleep(50 * time.Millisecond) // just the notification hop, no TTL
			st := b.cras.Stats()
			if b.cras.ActiveStreams() != 0 || st.SessionsReaped != 1 {
				t.Errorf("ActiveStreams = %d, SessionsReaped = %d after crash",
					b.cras.ActiveStreams(), st.SessionsReaped)
			}
			if st.LeasesExpired != 0 {
				t.Errorf("LeasesExpired = %d; dead-name path must not wait for the TTL", st.LeasesExpired)
			}
		})
}

// Explicit Renew keeps a legitimately quiet client alive indefinitely.
func TestRenewKeepsQuietClientAlive(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			// Never started, never read — just renewed, for 3 TTLs.
			sleepRenewing(th, 12*time.Second, h)
			if b.cras.ActiveStreams() != 1 || b.cras.Stats().SessionsReaped != 0 {
				t.Error("renewing client was reaped")
			}
			if err := h.Close(th); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
}

// LeaseTTL < 0 disables the reaper entirely.
func TestLeaseDisabled(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{LeaseTTL: -1},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(10 * time.Second) // far past the default TTL
			if b.cras.ActiveStreams() != 1 || b.cras.Stats().LeasesExpired != 0 {
				t.Error("lease reaper ran with LeaseTTL < 0")
			}
		})
}

// Regression (issue: client RPCs after Shutdown blocked forever): a call
// against a stopped server returns ErrServerDown instead of blocking. The
// returned flag guards against the vacuous pass a silent block would give.
func TestCallAfterShutdownReturnsErrServerDown(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	returned := false
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			b.cras.Shutdown()
			th.Sleep(10 * time.Millisecond)
			if !b.cras.Stopped() {
				t.Fatal("server not stopped")
			}
			errClose := h.Close(th)
			errOpen := func() error { _, err := b.cras.Open(th, movie, "/m1", OpenOptions{}); return err }()
			returned = true
			if !errors.Is(errClose, ErrServerDown) {
				t.Errorf("Close after shutdown = %v, want ErrServerDown", errClose)
			}
			if !errors.Is(errOpen, ErrServerDown) {
				t.Errorf("Open after shutdown = %v, want ErrServerDown", errOpen)
			}
		})
	if !returned {
		t.Fatal("client still blocked after Shutdown — the RPC never returned")
	}
}
