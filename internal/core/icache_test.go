package core

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Two viewers of the same movie, the second trailing by a second: the
// follower must be served from the interval cache (no disk reads past its
// warm-up prefix) and both must play losslessly.
func TestIntervalCacheServesFollower(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(1 * time.Second)

			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			if !fol.CacheBacked() {
				t.Error("follower not cache-backed")
			}
			if !fol.Params().Cached {
				t.Error("follower admission params not Cached")
			}
			fol.Start(th)

			done := false
			var folDelays, folLost = 0, 0
			b.k.NewThread("fol-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				d, l := playAndMeasure(b, th2, fol, 200)
				folDelays, folLost = len(d), l
				done = true
			})
			_, leadLost := playAndMeasure(b, th, lead, 200)
			for !done {
				th.Sleep(100 * time.Millisecond)
			}

			if leadLost != 0 || folLost != 0 {
				t.Errorf("lost frames: leader %d follower %d", leadLost, folLost)
			}
			if folDelays != 200 {
				t.Errorf("follower measured %d/200 frames", folDelays)
			}
			st := b.cras.Stats()
			if st.CacheAttached != 1 {
				t.Errorf("CacheAttached = %d, want 1", st.CacheAttached)
			}
			if st.CacheHits == 0 {
				t.Error("no cache hits")
			}
			if st.CacheFallbacks != 0 {
				t.Errorf("CacheFallbacks = %d, want 0 in a healthy run", st.CacheFallbacks)
			}
			fs := fol.StreamStats()
			if fs.ChunksFromCache == 0 {
				t.Error("follower stamped no chunks from the cache")
			}
			// The follower's disk activity is bounded by its warm-up prefix:
			// roughly the 1 s gap of media, not the whole movie.
			if fs.BytesScheduled > movie.TotalSize()/4 {
				t.Errorf("follower scheduled %d disk bytes, want only the warm-up prefix", fs.BytesScheduled)
			}
			if !fol.CacheBacked() {
				t.Error("follower fell back to disk during a healthy run")
			}
		})
}

// A zero-gap follower (opened while the leader's buffer still holds chunk
// 0) must never touch the disk at all.
func TestIntervalCacheZeroGapFollowerNoDisk(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 6*time.Second)
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 8 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			lead.Start(th)
			fol.Start(th)

			done := false
			folLost := 0
			b.k.NewThread("fol-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, folLost = playAndMeasure(b, th2, fol, len(movie.Chunks))
				done = true
			})
			_, leadLost := playAndMeasure(b, th, lead, len(movie.Chunks))
			for !done {
				th.Sleep(100 * time.Millisecond)
			}

			if leadLost != 0 || folLost != 0 {
				t.Errorf("lost frames: leader %d follower %d", leadLost, folLost)
			}
			fs := fol.StreamStats()
			if fs.ReadsIssued != 0 || fs.BytesScheduled != 0 {
				t.Errorf("zero-gap follower issued %d reads (%d bytes), want none",
					fs.ReadsIssued, fs.BytesScheduled)
			}
			if fs.ChunksFromCache == 0 {
				t.Error("zero-gap follower stamped nothing from cache")
			}
		})
}

// Cache-aware admission: cache-backed followers charge no disk time, so a
// server saturated with distinct movies still admits extra viewers of an
// already-playing one — and rejects an extra distinct-movie stream.
func TestCacheAdmissionBeyondDiskBound(t *testing.T) {
	prof := media.MPEG2()
	movies := map[string]*media.StreamInfo{}
	var infos []*media.StreamInfo
	var paths []string
	for _, p := range []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"} {
		info := prof.Generate(p, 4*time.Second)
		movies[p] = info
		infos = append(infos, info)
		paths = append(paths, p)
	}
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 48 << 20, CacheBudget: 48 << 20},
		movies,
		func(b *bed, th *rtm.Thread) {
			// Saturate the disk with distinct movies.
			opened := 0
			for i := range paths {
				if _, err := b.cras.Open(th, infos[i], paths[i], OpenOptions{}); err != nil {
					break
				}
				opened++
			}
			if opened == 0 || opened == len(paths) {
				t.Fatalf("disk-bound open count = %d, want to saturate below %d", opened, len(paths))
			}
			// One more distinct movie must be refused...
			if _, err := b.cras.Open(th, infos[opened], paths[opened], OpenOptions{}); err == nil {
				t.Error("distinct movie admitted past the disk bound")
			}
			// ...but viewers of already-playing movies ride the cache.
			extra := 0
			for i := 0; i < opened; i++ {
				h, err := b.cras.Open(th, infos[i], paths[i], OpenOptions{})
				if err != nil {
					break
				}
				if !h.CacheBacked() {
					t.Errorf("extra viewer %d not cache-backed", i)
				}
				extra++
			}
			if extra == 0 {
				t.Error("no cache-backed viewers admitted past the disk bound")
			}
		})
}

// Closing the leader promotes the earliest follower to leader; remaining
// followers keep playing (from pins, then from the promoted leader's disk
// reads) without losing frames.
func TestCacheLeaderClosePromotesFollower(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(1500 * time.Millisecond)
			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			fol.Start(th)

			done := false
			folLost := 0
			b.k.NewThread("fol-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, folLost = playAndMeasure(b, th2, fol, 250)
				done = true
			})
			// Leader quits a third of the way in.
			th.Sleep(2 * time.Second)
			if err := lead.Close(th); err != nil {
				t.Errorf("close leader: %v", err)
			}
			for !done {
				th.Sleep(100 * time.Millisecond)
			}

			if folLost != 0 {
				t.Errorf("follower lost %d frames across leader close", folLost)
			}
			st := b.cras.Stats()
			if st.CachePromotions != 1 {
				t.Errorf("CachePromotions = %d, want 1", st.CachePromotions)
			}
			if fol.CacheBacked() {
				t.Error("promoted follower still marked cache-backed")
			}
			if fol.Params().Cached {
				t.Error("promoted follower still admission-charged as cached")
			}
		})
}

// A follower that seeks away breaks the overlap and must fall back to its
// own disk reads, still playing correctly from the new position.
func TestCacheFollowerSeekFallsBack(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(1 * time.Second)
			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			fol.Start(th)
			th.Sleep(1 * time.Second)
			if err := fol.Seek(th, 8*time.Second); err != nil {
				t.Errorf("seek: %v", err)
			}
			if fol.CacheBacked() {
				t.Error("follower still cache-backed after seek")
			}
			th.Sleep(2 * time.Second)
			logical := fol.LogicalNow()
			if !fol.Available(logical) {
				t.Error("no data at seek target after fallback refill")
			}
			if b.cras.Stats().CacheFallbacks == 0 {
				t.Error("no fallback counted")
			}
		})
}

// Admission pressure evicts the largest-interval path cache: after pinned
// RAM is reclaimed, a stream that was refused for buffer memory fits, and
// the detached followers keep playing from disk.
func TestCacheEvictionUnderAdmissionPressure(t *testing.T) {
	prof := media.MPEG1()
	shared := prof.Generate("/shared", 20*time.Second)
	solo := prof.Generate("/solo", 8*time.Second)
	// MPEG1: B_i = 200 KB; a follower trailing by 4 s (3 s of leader clock
	// plus its own initial delay) charges ~950 KB. The budget fits
	// leader+follower (~1150 KB) but not a second movie's 200 KB on top,
	// so the solo open is buffer-bound and must trigger the eviction.
	cfg := Config{BufferBudget: 400000, CacheBudget: 800000}
	newBed(t, 1, ufs.Options{},
		cfg,
		map[string]*media.StreamInfo{"/shared": shared, "/solo": solo},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			sleepRenewing(th, 4*time.Second, lead)
			fol, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			if !fol.CacheBacked() {
				t.Error("follower not cache-backed")
			}
			fol.Start(th)
			// Let pins accumulate across the 4 s gap, renewing both leases.
			sleepRenewing(th, 6*time.Second, lead, fol)

			// A distinct movie now needs the RAM back.
			h, err := b.cras.Open(th, solo, "/solo", OpenOptions{})
			if err != nil {
				t.Errorf("open under pressure failed (eviction did not free RAM): %v", err)
				return
			}
			st := b.cras.Stats()
			if st.CacheEvictions != 1 {
				t.Errorf("CacheEvictions = %d, want 1", st.CacheEvictions)
			}
			if fol.CacheBacked() {
				t.Error("follower still cache-backed after eviction")
			}
			h.Start(th)
			th.Sleep(1 * time.Second)
			// The detached follower keeps playing from disk.
			logical := fol.LogicalNow()
			if !fol.Available(logical) {
				t.Error("evicted follower has no data at its clock")
			}
		})
}

// Eligibility gates: a rate-mismatched viewer and a recording session must
// open as plain streams, while a structurally identical chunk table loaded
// through a different StreamInfo still qualifies as the same movie.
func TestCacheEligibilityGates(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 6*time.Second)
	twin := media.MPEG1().Generate("/m1", 6*time.Second) // equal table, distinct pointer
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 8 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)

			fast, err := b.cras.Open(th, movie, "/m1", OpenOptions{Rate: 2})
			if err != nil {
				t.Errorf("open fast viewer: %v", err)
				return
			}
			if fast.CacheBacked() {
				t.Error("rate-mismatched viewer attached to the cache")
			}
			fast.Close(th)

			same, err := b.cras.Open(th, twin, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open twin-info viewer: %v", err)
				return
			}
			if !same.CacheBacked() {
				t.Error("structurally identical chunk table not treated as the same movie")
			}
			same.Close(th)
		})
}

func TestStreamHealthString(t *testing.T) {
	want := map[StreamHealth]string{
		Healthy: "healthy", Degraded: "degraded", Suspended: "suspended",
		Evicted: "evicted", StreamHealth(9): "StreamHealth(9)",
	}
	for h, s := range want {
		if h.String() != s {
			t.Errorf("StreamHealth(%d).String() = %q, want %q", int(h), h.String(), s)
		}
	}
}

// Two followers at different gaps behind one leader: the second follower
// joins the existing path cache, an ineligible viewer on the same path is
// refused attachment without disturbing it, and when the leader hangs up
// its remaining buffer is carried into the pin set, the first follower is
// promoted, and the second keeps riding the cache against the new leader —
// nobody loses a frame.
func TestCacheTwoFollowersSurviveLeaderClose(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(500 * time.Millisecond)
			fol1, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower 1: %v", err)
				return
			}
			fol1.Start(th)
			th.Sleep(500 * time.Millisecond)
			fol2, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower 2: %v", err)
				return
			}
			fol2.Start(th)
			if !fol1.CacheBacked() || !fol2.CacheBacked() {
				t.Errorf("followers cache-backed = %v, %v, want both", fol1.CacheBacked(), fol2.CacheBacked())
			}
			// An ineligible viewer must not attach to the existing cache.
			fast, err := b.cras.Open(th, movie, "/m1", OpenOptions{Rate: 2})
			if err == nil {
				if fast.CacheBacked() {
					t.Error("rate-2 viewer attached to the existing path cache")
				}
				fast.Close(th)
			}

			done := [2]bool{}
			lost := [2]int{}
			b.k.NewThread("fol1-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, lost[0] = playAndMeasure(b, th2, fol1, 250)
				done[0] = true
			})
			b.k.NewThread("fol2-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, lost[1] = playAndMeasure(b, th2, fol2, 250)
				done[1] = true
			})
			th.Sleep(2 * time.Second)
			if err := lead.Close(th); err != nil {
				t.Errorf("close leader: %v", err)
			}
			for !done[0] || !done[1] {
				th.Sleep(100 * time.Millisecond)
			}

			if lost[0] != 0 || lost[1] != 0 {
				t.Errorf("lost frames across leader close: fol1 %d, fol2 %d", lost[0], lost[1])
			}
			st := b.cras.Stats()
			if st.CacheAttached != 2 {
				t.Errorf("CacheAttached = %d, want 2", st.CacheAttached)
			}
			if st.CachePromotions != 1 {
				t.Errorf("CachePromotions = %d, want 1", st.CachePromotions)
			}
			if fol1.CacheBacked() {
				t.Error("promoted follower still cache-backed")
			}
		})
}

// Seeks and rate changes break the temporal overlap the cache pairs rely
// on. A follower doing either falls back alone; a leader doing either
// strands every follower. Each detach must leave the stream a plain disk
// stream that can re-attach on a later open. (Seek-to-current and
// same-rate SetRate are exact no-ops that detach nothing — the golden
// VCR tests prove that side — so every operation here genuinely moves:
// seeks target positions outside the pinned interval and rate changes
// pick a new velocity.)
func TestCacheSeekAndRateChangeDetach(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 1, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(500 * time.Millisecond)

			openFollower := func(label string) *Handle {
				f, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
				if err != nil {
					t.Errorf("open %s: %v", label, err)
					return nil
				}
				if !f.CacheBacked() {
					t.Errorf("%s not cache-backed at open", label)
				}
				return f
			}

			// Follower rate change: only that follower falls back.
			f1 := openFollower("f1 (rate change)")
			if f1 == nil {
				return
			}
			if err := f1.SetRate(th, 2.0); err != nil {
				t.Errorf("f1 SetRate: %v", err)
			}
			if f1.CacheBacked() || f1.Params().Cached {
				t.Error("f1 still cache-backed after rate change")
			}

			// Follower seek outside the pinned interval: same contract (a
			// seek inside it re-validates and keeps the pins instead).
			f2 := openFollower("f2 (seek)")
			if f2 == nil {
				return
			}
			if err := f2.Seek(th, sim.Time(6*time.Second)); err != nil {
				t.Errorf("f2 seek: %v", err)
			}
			if f2.CacheBacked() {
				t.Error("f2 still cache-backed after seek")
			}

			// Leader seek: strands the attached follower, and the cache must
			// rebuild after.
			f3 := openFollower("f3 (leader seek)")
			if f3 == nil {
				return
			}
			if err := lead.Seek(th, sim.Time(2*time.Second)); err != nil {
				t.Errorf("leader seek: %v", err)
			}
			if f3.CacheBacked() {
				t.Error("f3 still cache-backed after leader seek")
			}

			// Leader rate change: same contract. Last, because a follower
			// can only attach to a leader whose clock rate matches its own.
			f4 := openFollower("f4 (leader rate change)")
			if f4 == nil {
				return
			}
			if err := lead.SetRate(th, 2.0); err != nil {
				t.Errorf("leader SetRate: %v", err)
			}
			if f4.CacheBacked() {
				t.Error("f4 still cache-backed after leader rate change")
			}

			st := b.cras.Stats()
			if st.CacheAttached != 4 {
				t.Errorf("CacheAttached = %d, want 4", st.CacheAttached)
			}
			if st.CacheFallbacks != 4 {
				t.Errorf("CacheFallbacks = %d, want 4", st.CacheFallbacks)
			}
			for _, h := range []*Handle{lead, f1, f2, f3, f4} {
				h.Close(th)
			}
		})
}

// A follower whose pinned-interval charge does not fit total RAM must be
// retried — and admitted — as a plain disk stream rather than refused.
func TestCacheFollowerRetriesAsPlainStream(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 150_000, CacheBudget: 300_000},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			th.Sleep(500 * time.Millisecond)

			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			if fol.CacheBacked() || fol.Params().Cached {
				t.Error("follower cache-backed despite an unaffordable pin charge")
			}
			if st := b.cras.Stats(); st.CacheAttached != 0 {
				t.Errorf("CacheAttached = %d, want 0", st.CacheAttached)
			}
			fol.Close(th)
			lead.Close(th)
		})
}
