package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Parity scenario modes: the same fixed-seed workload on a 4-member
// rotating-parity volume, healthy or with member 1 afflicted one way or
// another. Delivery must be indistinguishable across all of them.
const (
	parityHealthy = iota
	// parityKill force-fails member 1 mid-play (operator override), then
	// attaches a replacement after playback and waits out the rebuild.
	parityKill
	// parityFaulty poisons every real-time read on member 1 from the start:
	// the persistent-fault detector must walk it to Dead on its own.
	parityFaulty
	// parityAbort is parityKill with a replacement whose writes all fail:
	// the rebuild must give up after the per-row attempt budget and hand
	// the member back to Dead.
	parityAbort
)

// parityResult captures one parity-volume run: a content digest per stream
// (which chunks arrived, not when — reconstruction legitimately shifts
// timing inside the deadline), the member-ladder record, and the offline
// parity check.
type parityResult struct {
	digests   [3]uint64
	lost      [3]int
	stats     Stats
	events    []MemberHealthEvent
	healths   []MemberHealth
	parityBad int64 // Volume.VerifyParity at the end (-1 = consistent)
	rows      int64
}

// parityPlay is goldenPlay minus the delivery-delay word: the parity
// equivalence claim is about which frames arrive, byte for byte, not about
// microsecond-identical timing.
func parityPlay(b *bed, th *rtm.Thread, h *Handle, frames int) (uint64, int) {
	sum := fnv.New64a()
	word := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		sum.Write(buf[:])
	}
	info := h.Info()
	if frames > len(info.Chunks) {
		frames = len(info.Chunks)
	}
	const poll = 2 * time.Millisecond
	lost := 0
	for i := 0; i < frames; i++ {
		want := info.Chunks[i]
		due := h.ClockStartsAt(want.Timestamp)
		if due < 0 {
			lost++
			continue
		}
		if b.k.Now() < due {
			th.SleepUntil(due)
		}
		deadline := due + 3*want.Duration
		for {
			if c, ok := h.Get(want.Timestamp); ok {
				word(int64(c.Index))
				word(int64(c.Timestamp))
				word(c.Size)
				break
			}
			if b.k.Now() >= deadline {
				lost++
				word(-1)
				word(int64(i))
				break
			}
			th.Sleep(poll)
		}
	}
	return sum.Sum64(), lost
}

func membersAllHealthy(hs []MemberHealth) bool {
	for _, h := range hs {
		if h != MemberHealthy {
			return false
		}
	}
	return len(hs) > 0
}

// runParityScenario plays the golden three-stream workload on a 4-member
// rotating-parity volume under the given affliction mode. Seed, geometry,
// movies and knobs are held constant across modes.
func runParityScenario(t *testing.T, mode int) parityResult {
	t.Helper()
	shared := media.MPEG1().Generate("/shared", 10*time.Second)
	solo := media.MPEG1().Generate("/solo", 8*time.Second)
	movies := map[string]*media.StreamInfo{"/shared": shared, "/solo": solo}

	e := sim.NewEngine(7)
	g, p := disk.ST32550N()
	g.Cylinders, g.Heads = 64, 2 // few stripe rows: the rebuild fits the run
	members := make([]*disk.Disk, 4)
	for i := range members {
		members[i] = disk.New(e, fmt.Sprintf("sd%d", i), g, p)
	}
	vol, err := disk.NewParityVolume("vol0", members, 64)
	if err != nil {
		t.Fatalf("NewParityVolume: %v", err)
	}
	if _, err := ufs.Format(vol, ufs.Options{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	var res parityResult
	b := &bed{e: e, d: members[0]}
	e.Spawn("setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, vol, ufs.Options{})
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		for _, m := range sortedMovies(movies) {
			if err := media.Store(pr, fs, m.path, m.info); err != nil {
				t.Errorf("Store %s: %v", m.path, err)
				return
			}
		}
		fs.Sync(pr)

		b.k = rtm.NewKernel(e)
		b.unix = ufs.NewServer(b.k, fs, rtm.PrioTS, 0)
		cfg := Config{
			Params: MeasureAdmissionParams(members[0], 64<<10),
			// The 2 s delay buys the buffer lead that absorbs the extra
			// cycle a reconstructed fragment costs — the same
			// capacity-for-resilience trade the chaos campaign makes.
			InitialDelay: 2 * time.Second,
		}
		b.cras = NewVolumeServer(b.k, vol, b.unix, cfg)
		b.cras.OnMemberHealth = func(ev MemberHealthEvent) {
			res.events = append(res.events, ev)
		}
		if mode == parityFaulty {
			members[1].SetFaultModel(disk.NewFaultModel(e.RNG("test:parity"), disk.FaultConfig{
				RTOnly:     true,
				BadRegions: []disk.BadRegion{{LBA: 0, Sectors: g.TotalSectors()}},
			}))
		}
		if mode == parityKill || mode == parityAbort {
			b.k.NewThread("killer", rtm.PrioTS, 0, func(th *rtm.Thread) {
				th.Sleep(4500 * time.Millisecond) // mid-play for all three streams
				b.cras.FailMember(1)
			})
		}
		b.k.NewThread("app", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			parityWorkload(t, b, th, shared, solo, mode, &res)
		})
	})
	e.RunUntil(10 * time.Minute)
	res.parityBad = vol.VerifyParity()
	res.rows = vol.Rows()
	return res
}

// parityWorkload is the golden workload (two viewers of one movie a second
// apart plus one solo viewer), followed by the mode's epilogue: attaching a
// replacement and waiting out the rebuild (or its abort).
func parityWorkload(t *testing.T, b *bed, th *rtm.Thread,
	shared, solo *media.StreamInfo, mode int, res *parityResult) {
	lead, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
	if err != nil {
		t.Errorf("open leader: %v", err)
		return
	}
	lead.Start(th)
	th.Sleep(1 * time.Second)
	fol, err := b.cras.Open(th, shared, "/shared", OpenOptions{})
	if err != nil {
		t.Errorf("open follower: %v", err)
		return
	}
	one, err := b.cras.Open(th, solo, "/solo", OpenOptions{})
	if err != nil {
		t.Errorf("open solo: %v", err)
		return
	}
	fol.Start(th)
	one.Start(th)

	done := [2]bool{}
	b.k.NewThread("fol-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
		res.digests[1], res.lost[1] = parityPlay(b, th2, fol, 200)
		done[0] = true
	})
	b.k.NewThread("solo-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
		res.digests[2], res.lost[2] = parityPlay(b, th2, one, 200)
		done[1] = true
	})
	res.digests[0], res.lost[0] = parityPlay(b, th, lead, 200)
	for !done[0] || !done[1] {
		th.Sleep(100 * time.Millisecond)
	}

	switch mode {
	case parityKill:
		b.cras.ReplaceMember(1)
		deadline := b.k.Now() + 120*time.Second
		for !membersAllHealthy(b.cras.MemberHealths()) && b.k.Now() < deadline {
			th.Sleep(500 * time.Millisecond)
		}
	case parityAbort:
		// The replacement is a dud: every transfer on it fails, so the
		// rebuild must exhaust the per-row attempt budget and give up.
		deadline := b.k.Now() + 60*time.Second
		b.cras.Volume().Disk(1).SetFaultModel(disk.NewFaultModel(
			b.e.RNG("test:dud"), disk.FaultConfig{
				BadRegions: []disk.BadRegion{{LBA: 0, Sectors: 1 << 40}},
			}))
		b.cras.ReplaceMember(1)
		for b.k.Now() < deadline {
			hs := b.cras.MemberHealths()
			if len(hs) > 1 && hs[1] == MemberDead && b.cras.Stats().MembersDead == 1 {
				// back to Dead after the abort (MembersDead counts the
				// original death only)
				if hasAbortEvent(res.events) {
					break
				}
			}
			th.Sleep(500 * time.Millisecond)
		}
	}
	res.stats = b.cras.Stats()
	res.healths = b.cras.MemberHealths()
}

func hasAbortEvent(events []MemberHealthEvent) bool {
	for _, ev := range events {
		if ev.To == MemberDead && strings.Contains(ev.Reason, "rebuild aborted") {
			return true
		}
	}
	return false
}

// TestParityGoldenDegradedDelivery is the degraded-mode equivalence gate:
// the run that loses member 1 mid-play — whether by operator kill or by the
// detector walking a persistently failing member to Dead — delivers the
// byte-identical frame sequence of the healthy run, with zero lost frames,
// while the server visibly serves reads by XOR reconstruction.
func TestParityGoldenDegradedDelivery(t *testing.T) {
	healthy := runParityScenario(t, parityHealthy)
	killed := runParityScenario(t, parityKill)
	faulty := runParityScenario(t, parityFaulty)
	if t.Failed() {
		return
	}
	for i, name := range []string{"leader", "follower", "solo"} {
		for _, run := range []struct {
			mode string
			res  *parityResult
		}{{"healthy", &healthy}, {"killed", &killed}, {"faulty", &faulty}} {
			if run.res.lost[i] != 0 {
				t.Errorf("%s lost %d frames in the %s run", name, run.res.lost[i], run.mode)
			}
		}
		if healthy.digests[i] != killed.digests[i] {
			t.Errorf("%s delivered sequence diverged: healthy %016x, killed %016x",
				name, healthy.digests[i], killed.digests[i])
		}
		if healthy.digests[i] != faulty.digests[i] {
			t.Errorf("%s delivered sequence diverged: healthy %016x, faulty %016x",
				name, healthy.digests[i], faulty.digests[i])
		}
	}

	// The healthy run never touches the machinery.
	if healthy.stats.MembersDead != 0 || healthy.stats.DegradedReads != 0 ||
		healthy.stats.ParityReconstructions != 0 || len(healthy.events) != 0 {
		t.Errorf("healthy run shows member activity: dead=%d degraded=%d recon=%d events=%d",
			healthy.stats.MembersDead, healthy.stats.DegradedReads,
			healthy.stats.ParityReconstructions, len(healthy.events))
	}
	if !membersAllHealthy(healthy.healths) {
		t.Errorf("healthy run ended with members %v", healthy.healths)
	}

	// The killed run: operator death, degraded service, then a full online
	// rebuild back to Healthy with consistent parity.
	if killed.stats.MembersDead != 1 {
		t.Errorf("killed run: MembersDead = %d, want 1", killed.stats.MembersDead)
	}
	if killed.stats.DegradedReads == 0 {
		t.Errorf("killed run served no degraded reads")
	}
	if killed.stats.RebuildUnits != killed.rows {
		t.Errorf("killed run rebuilt %d rows, want all %d", killed.stats.RebuildUnits, killed.rows)
	}
	if !membersAllHealthy(killed.healths) {
		t.Errorf("killed run ended with members %v, want all healthy after rebuild", killed.healths)
	}
	if killed.parityBad != -1 {
		t.Errorf("killed run ended with inconsistent parity at row %d", killed.parityBad)
	}
	wantLadder := []MemberHealth{MemberDead, MemberRebuilding, MemberHealthy}
	for i, want := range wantLadder {
		if i >= len(killed.events) || killed.events[i].Member != 1 || killed.events[i].To != want {
			t.Errorf("killed run ladder event %d: got %+v, want member 1 -> %v",
				i, eventAt(killed.events, i), want)
		}
	}

	// The faulty run: the detector pronounces the member on its own —
	// Suspect first, Dead after further failures — and reconstruction
	// carries every read it condemned.
	if faulty.stats.MembersDead != 1 {
		t.Errorf("faulty run: MembersDead = %d, want 1", faulty.stats.MembersDead)
	}
	if faulty.stats.DegradedReads == 0 || faulty.stats.ParityReconstructions == 0 {
		t.Errorf("faulty run shows no reconstruction: degraded=%d recon=%d",
			faulty.stats.DegradedReads, faulty.stats.ParityReconstructions)
	}
	wantLadder = []MemberHealth{MemberSuspect, MemberDead}
	for i, want := range wantLadder {
		if i >= len(faulty.events) || faulty.events[i].Member != 1 || faulty.events[i].To != want {
			t.Errorf("faulty run ladder event %d: got %+v, want member 1 -> %v",
				i, eventAt(faulty.events, i), want)
		}
	}
	if len(faulty.healths) != 4 || faulty.healths[1] != MemberDead {
		t.Errorf("faulty run ended with members %v, want member 1 dead", faulty.healths)
	}
}

func eventAt(events []MemberHealthEvent, i int) MemberHealthEvent {
	if i < len(events) {
		return events[i]
	}
	return MemberHealthEvent{Member: -1}
}

// TestParityRebuildAbort feeds the rebuild a replacement whose every
// transfer fails: after the per-row attempt budget the rebuild must give
// up, return the member to Dead, and leave the server serving degraded.
func TestParityRebuildAbort(t *testing.T) {
	res := runParityScenario(t, parityAbort)
	if t.Failed() {
		return
	}
	for i := range res.lost {
		if res.lost[i] != 0 {
			t.Errorf("stream %d lost %d frames", i, res.lost[i])
		}
	}
	if !hasAbortEvent(res.events) {
		t.Fatalf("no rebuild-abort event; ladder: %+v", res.events)
	}
	if len(res.healths) != 4 || res.healths[1] != MemberDead {
		t.Errorf("members ended %v, want member 1 back to Dead", res.healths)
	}
	if res.stats.RebuildUnits != 0 {
		t.Errorf("aborted rebuild still counted %d rebuilt rows", res.stats.RebuildUnits)
	}
}

// TestMemberLadderNonParity pins the ladder's absence on plain volumes: no
// member state exists, and operator actions are no-ops.
func TestMemberLadderNonParity(t *testing.T) {
	plan := media.MPEG1().Generate("/m", 2*time.Second)
	newBed(t, 3, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m": plan},
		func(b *bed, th *rtm.Thread) {
			if hs := b.cras.MemberHealths(); hs != nil {
				t.Errorf("single-disk server has member ladder: %v", hs)
			}
			b.cras.FailMember(0) // must be absorbed as a no-op
			h, err := b.cras.Open(th, plan, "/m", OpenOptions{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			h.Start(th)
			th.Sleep(3 * time.Second)
			if got := b.cras.Stats().MembersDead; got != 0 {
				t.Errorf("MembersDead = %d on a non-parity volume", got)
			}
			h.Close(th)
		})
}

// TestMemberHealthString pins the ladder labels (they appear in events,
// traces and operator tooling).
func TestMemberHealthString(t *testing.T) {
	want := map[MemberHealth]string{
		MemberHealthy:    "healthy",
		MemberSuspect:    "suspect",
		MemberDead:       "dead",
		MemberRebuilding: "rebuilding",
		MemberHealth(99): "MemberHealth(99)",
	}
	for h, s := range want {
		if h.String() != s {
			t.Errorf("MemberHealth(%d).String() = %q, want %q", int(h), h.String(), s)
		}
	}
}
