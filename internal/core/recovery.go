package core

import (
	"fmt"

	"repro/internal/sim"
)

// StreamHealth is a stream's position on the graceful-degradation ladder.
// The ladder only ever protects the rest of the server: each step trades
// more of the sick stream's service for less interference with its peers.
type StreamHealth int

const (
	// Healthy streams get full service: failed reads are retried while the
	// interval's spare time allows.
	Healthy StreamHealth = iota

	// Degraded streams drop failed chunks immediately — no retries — but
	// keep their logical clock and keep fetching. Playback continues with
	// holes. A run of clean cycles promotes the stream back to Healthy.
	Degraded

	// Suspended streams stop fetching and their logical clock freezes; the
	// buffer keeps whatever had arrived. A stream that stays suspended is
	// evicted after RecoveryPolicy.EvictAfter.
	Suspended

	// Evicted streams are closed: their admission capacity and buffer
	// memory are released. Terminal.
	Evicted
)

func (h StreamHealth) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Suspended:
		return "suspended"
	case Evicted:
		return "evicted"
	}
	return fmt.Sprintf("StreamHealth(%d)", int(h))
}

// RecoveryPolicy tunes the deadline manager's recovery engine. Zero values
// select defaults; durations that depend on the interval T are resolved in
// Config.fillDefaults.
type RecoveryPolicy struct {
	// MaxRetries caps how often one read is re-issued. Default 3.
	MaxRetries int

	// WatchdogTimeout is how long a submitted request may go without a
	// completion before the watchdog cancels it. Default 2*Interval: an
	// admitted batch finishes within its interval, so a request twice that
	// old has lost its completion interrupt.
	WatchdogTimeout sim.Time

	// DegradeAfter is how many unrecovered (post-retry) read failures move
	// a Healthy stream to Degraded. Default 1: a healthy stream has none.
	DegradeAfter int

	// SuspendAfter is how many further failures while Degraded move the
	// stream to Suspended. Default 4.
	SuspendAfter int

	// RecoverCycles is how many consecutive clean cycles promote a
	// Degraded stream back to Healthy. Default 8.
	RecoverCycles int

	// EvictAfter is how long a stream may stay Suspended before it is
	// evicted and its resources released. Default 4*Interval.
	EvictAfter sim.Time

	// ShedAfter is how many consecutive interval batches must overrun
	// their I/O deadline before the server sheds load by evicting the
	// worst-health stream. Only streams already off the top of the ladder
	// are candidates: all-healthy overruns mean the operator force-opened
	// past admission (or background load spiked) and shedding would not
	// help the streams it is meant to protect. Default 3.
	ShedAfter int

	// MemberSuspectAfter is how many hard fragment failures (post-retry or
	// watchdog-canceled) within the error window promote a parity-volume
	// member from Healthy to Suspect. Suspect members stop receiving
	// C-SCAN read traffic — their fragments are served by reconstruction —
	// but keep their data. Default 3. Parity volumes only.
	MemberSuspectAfter int

	// MemberDeadAfter is how many hard failures promote a member all the
	// way to Dead: the volume drops it from placement entirely and a
	// rebuild must bring a replacement back. Default 6. Parity only.
	MemberDeadAfter int

	// MemberRecoverCycles is how many consecutive clean cycles demote a
	// Suspect member back to Healthy (the fault was transient). Default 8.
	MemberRecoverCycles int
}

func (p *RecoveryPolicy) fillDefaults(interval sim.Time) {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.WatchdogTimeout == 0 {
		p.WatchdogTimeout = 2 * interval
	}
	if p.DegradeAfter == 0 {
		p.DegradeAfter = 1
	}
	if p.SuspendAfter == 0 {
		p.SuspendAfter = 4
	}
	if p.RecoverCycles == 0 {
		p.RecoverCycles = 8
	}
	if p.EvictAfter == 0 {
		p.EvictAfter = 4 * interval
	}
	if p.ShedAfter == 0 {
		p.ShedAfter = 3
	}
	if p.MemberSuspectAfter == 0 {
		p.MemberSuspectAfter = 3
	}
	if p.MemberDeadAfter == 0 {
		p.MemberDeadAfter = 6
	}
	if p.MemberRecoverCycles == 0 {
		p.MemberRecoverCycles = 8
	}
}

// StreamHealthEvent is posted to the deadline manager (the miss-notification
// channel) whenever a stream moves on the degradation ladder, and is what
// the OnStreamHealth callback receives.
type StreamHealthEvent struct {
	StreamID int
	Path     string
	From, To StreamHealth
	Cycle    int
	Reason   string
}

// IOStall is sent to the deadline manager when the I/O watchdog cancels a
// request whose completion never arrived; Age is how long the request had
// been outstanding.
type IOStall struct {
	Cycle int
	Age   sim.Time
}

// retrySpares is the admission model's spare interval time, per member
// disk: T minus the calculated worst-case I/O time of the open set's
// steady-state batch on that member (formula (10) over N streams, each
// reading its per-member share of A_i = T*R_i + C_i). Retries may consume
// only this slack, so recovery can never take time the admission test
// promised to healthy streams — and a retry on one member can never take
// time promised to streams on another. An oversubscribed (force-opened)
// server has no slack and gets no retries.
//
// The returned slice is the Server's scratch buffer, refilled on every
// call: use it before the next retrySpares call, do not retain it.
func (s *Server) retrySpares() []sim.Time {
	n := s.vol.NumDisks()
	shape := s.volShape()
	ops, bytes := s.spareOps, s.spareBytes
	for d := 0; d < n; d++ {
		ops[d], bytes[d] = 0, 0
	}
	for _, st := range s.streams {
		if st.closed || st.par.Cached || st.par.Multicast || st.par.Paused {
			continue // cache followers, fan-out members, and paused streams issue no steady-state reads
		}
		a := int64(s.cfg.Interval.Seconds()*st.par.Rate) + st.par.Chunk
		if n > 1 {
			// A striped stream's interval fetch rotates over every member;
			// each carries the per-member share the admission test charged —
			// the parity charge (degraded when a member is down) on a parity
			// volume, the round-robin share on plain RAID-0.
			if shape.Parity {
				a = st.par.shapeLoad(s.cfg.Interval, shape)
			} else {
				a = perDiskLoad(a, s.vol.StripeBytes(), n)
			}
		}
		for d := 0; d < n; d++ {
			ops[d]++
			bytes[d] += a
		}
	}
	spares := s.spareTimes
	for d := 0; d < n; d++ {
		// Scratch reuse: a fully used (or overrun) member must land on an
		// explicit zero, not last call's leftover.
		spares[d] = 0
		if s.vol.Dead(d) {
			// A dead member gets no traffic, so it has no spare to spend:
			// nothing may be re-issued onto it.
			continue
		}
		if ops[d] == 0 {
			spares[d] = s.cfg.Interval
			continue
		}
		used := s.cfg.Params.CalculatedIOTime(ops[d], bytes[d])
		if used < s.cfg.Interval {
			spares[d] = s.cfg.Interval - used
		}
	}
	return spares
}

// retrySpare is the scalar spare time the control-plane budget draws on:
// the tightest member's (on one disk, exactly the single-disk spare).
func (s *Server) retrySpare() sim.Time {
	spares := s.retrySpares()
	min := spares[0]
	for _, sp := range spares[1:] {
		if sp < min {
			min = sp
		}
	}
	return min
}

// retryAllowed decides whether a failed fragment is re-issued, charging its
// worst-case cost against its member disk's remaining retry budget.
func (s *Server) retryAllowed(fg *readFrag, budgets []sim.Time) bool {
	if fg.tag.s.health != Healthy {
		return false // degraded and worse drop failed chunks immediately
	}
	if s.memberSick(fg.disk) {
		// The member itself is Suspect or worse: re-issuing onto it would
		// feed the fault. Parity reads reroute to reconstruction instead.
		return false
	}
	if fg.retries >= s.cfg.Recovery.MaxRetries {
		return false
	}
	cost := s.cfg.Params.OpCost(fg.bytes())
	if cost > budgets[fg.disk] {
		s.stats.RetriesDenied++
		return false
	}
	budgets[fg.disk] -= cost
	return true
}

// watchdogScan cancels in-flight fragments whose completion is overdue. A
// canceled request completes with disk.ErrAborted and flows through the
// normal I/O-done path, so the scheduler's bookkeeping (cycle accounting,
// retry policy, health ladder) sees it like any other failure — the cycle
// never wedges waiting for an interrupt that will not come. Each fragment
// is canceled on its own member disk, so one stalled spindle cannot wedge
// the others' queues.
func (s *Server) watchdogScan(now sim.Time, cycle int) {
	var budgets []sim.Time
	for _, fg := range s.inflight {
		age := now - fg.issuedAt
		if age < s.cfg.Recovery.WatchdogTimeout {
			continue
		}
		if fg.req == nil || !s.vol.Disk(fg.disk).Cancel(fg.req) {
			// Not that member's stalled in-service request: it is queued
			// behind one, and canceling the head is what unblocks it.
			continue
		}
		s.stats.WatchdogCancels++
		fg.tag.s.stats.WatchdogCancels++
		s.deadlinePort.Send(IOStall{Cycle: cycle, Age: age})
		// On a parity volume the abort cannot reach the I/O-done queue
		// until this scheduler pass yields, so waiting for it costs a full
		// cycle before reconstruction even starts — with back-to-back
		// stalls that chains past the buffer lead. Count the member error
		// and dispatch the XOR reconstruction now, in the same pass; the
		// abort is then absorbed as a no-op when it lands.
		if s.members != nil && fg.tag.gen == fg.tag.s.gen && !fg.tag.s.closed {
			if budgets == nil {
				budgets = s.retrySpares()
			}
			s.noteMemberErr(fg.disk)
			if s.reconstructFrag(fg, budgets) {
				fg.replaced = true
			}
		}
	}
}

// updateStreamHealth advances every stream's ladder position from the hard
// failures the cycle just absorbed. Runs once per scheduler cycle.
func (s *Server) updateStreamHealth(now sim.Time) {
	pol := s.cfg.Recovery
	for _, st := range s.streams {
		if st.closed {
			continue
		}
		errs := st.cycleErrs
		st.cycleErrs = 0
		switch st.health {
		case Healthy:
			if errs == 0 {
				if st.windowErrs > 0 {
					st.windowErrs-- // old failures age out
				}
				continue
			}
			st.windowErrs += errs
			if st.windowErrs >= pol.DegradeAfter {
				st.degradedErrs = 0
				st.cleanCycles = 0
				s.setHealth(st, Degraded, fmt.Sprintf("%d unrecovered read failures", st.windowErrs)) //crasvet:allow hotalloc -- formats once per health transition, not per cycle
			}
		case Degraded:
			if errs > 0 {
				st.degradedErrs += errs
				st.cleanCycles = 0
				if st.degradedErrs >= pol.SuspendAfter {
					// With a delivered-rate ladder configured, step the
					// stream down a rung instead of suspending: less disk
					// load, the viewer keeps (thinned) frames, and clean
					// cycles can promote it back. Only when no rung is
					// left does it suspend.
					if s.ladderStepDown(st, now) {
						continue
					}
					st.suspendedAt = now
					st.clock.Stop(now)
					s.setHealth(st, Suspended, fmt.Sprintf("%d failures while degraded", st.degradedErrs)) //crasvet:allow hotalloc -- formats once per health transition, not per cycle
				}
				continue
			}
			st.cleanCycles++
			if st.cleanCycles >= pol.RecoverCycles {
				st.windowErrs = 0
				s.setHealth(st, Healthy, fmt.Sprintf("%d clean cycles", st.cleanCycles)) //crasvet:allow hotalloc -- formats once per health transition, not per cycle
			}
		case Suspended:
			if now-st.suspendedAt >= pol.EvictAfter {
				s.evict(st, "suspension timed out")
			}
		}
	}
}

// setHealth moves a stream on the ladder and notifies the deadline manager.
func (s *Server) setHealth(st *stream, to StreamHealth, reason string) {
	from := st.health
	st.health = to
	s.deadlinePort.Send(StreamHealthEvent{
		StreamID: st.id, Path: st.name, From: from, To: to, Cycle: s.cycle, Reason: reason,
	})
}

// evict closes a stream from the server side: in-flight reads are
// invalidated, admission capacity and buffer memory are released.
func (s *Server) evict(st *stream, reason string) {
	st.closed = true
	st.gen++
	s.cacheOnClose(st, s.k.Now())
	s.mcastOnClose(st, s.k.Now())
	s.setHealth(st, Evicted, reason)
}

// shedWorstStream implements server-wide load shedding: when consecutive
// interval batches overrun their I/O deadline, the aggregate promise to
// every stream is at risk, and the deadline manager sacrifices the stream
// already in the worst health to protect the rest. Returns false when no
// stream is off the top of the ladder (nothing useful to shed).
func (s *Server) shedWorstStream(cycle int) bool {
	var worst *stream
	for _, st := range s.streams {
		if st.closed || st.health == Healthy {
			continue
		}
		if worst == nil ||
			st.health > worst.health ||
			(st.health == worst.health && st.stats.ReadErrors > worst.stats.ReadErrors) {
			worst = st
		}
	}
	if worst == nil {
		return false
	}
	s.stats.ShedEvictions++
	s.evict(worst, fmt.Sprintf("load shed after %d consecutive I/O overruns", s.cfg.Recovery.ShedAfter))
	return true
}
