package core

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Member health: the per-member-disk analogue of the stream ladder. A
// parity volume watches its members the way the deadline manager watches
// its streams — hard fragment failures (post-retry errors and watchdog
// cancels) accumulate per member, and a member that keeps producing them
// walks Healthy → Suspect → Dead. A Suspect member keeps its data but
// gets no retries (its reads are served by reconstruction when they fail);
// a Dead member is dropped from placement entirely and every read touching
// it is reconstructed from the survivors. ReplaceMember starts the online
// rebuild that brings a replacement back to Healthy. Non-parity volumes
// have no member ladder: losing a RAID-0 member is not survivable, so the
// stream ladder alone handles it (PR 5 behaviour, unchanged).
type MemberHealth int

const (
	// MemberHealthy members take normal C-SCAN traffic.
	MemberHealthy MemberHealth = iota

	// MemberSuspect members still hold valid data but are not trusted:
	// failed reads on them are never retried — reconstruction serves them
	// — and further failures promote to Dead. A run of clean cycles
	// demotes back to Healthy (the fault was transient).
	MemberSuspect

	// MemberDead members receive no traffic at all; the volume serves
	// every read degraded and writes rely on parity to carry the member's
	// units. Only ReplaceMember (a replacement disk) leaves this state.
	MemberDead

	// MemberRebuilding members are being filled by the background
	// scavenger; reads stay degraded until the rebuild completes.
	MemberRebuilding
)

func (h MemberHealth) String() string {
	switch h {
	case MemberHealthy:
		return "healthy"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	case MemberRebuilding:
		return "rebuilding"
	}
	return fmt.Sprintf("MemberHealth(%d)", int(h))
}

// MemberHealthEvent is posted to the deadline manager whenever a member
// moves on its ladder, and is what the OnMemberHealth callback receives.
type MemberHealthEvent struct {
	Member   int
	From, To MemberHealth
	Cycle    int
	Reason   string
}

// memberState is the scheduler's view of one member disk.
type memberState struct {
	health      MemberHealth
	windowErrs  int // hard failures in the sliding window
	cleanCycles int // consecutive clean cycles while Suspect
	cycleErrs   int // hard failures absorbed this cycle
}

// memberOp is an operator action on a member, queued from the caller's
// context and applied at the next cycle edge (the draining precedent:
// written outside the server's threads, observed by the scheduler).
type memberOp struct {
	member  int
	replace bool // false = fail, true = replace
}

// rebuildRow tracks one stripe row's in-flight rebuild I/O.
type rebuildRow struct {
	remaining int
	err       error
}

// rebuildAck is the completion message a rebuild I/O sends through the
// I/O-done port; the scheduler consumes them at the cycle edge.
type rebuildAck struct {
	row int64
	err error
}

// rebuildState is one in-progress member rebuild. Rows are reconstructed
// in order, a spare-paced batch per cycle, each row costing one stripe
// read on every surviving member plus one stripe write on the target —
// all on the normal (non-real-time) queue, so admitted streams' cycles
// are never stolen.
type rebuildState struct {
	member   int
	rows     int64
	next     int64 // next unissued row
	done     int64 // rows rebuilt
	inflight map[int64]*rebuildRow
	attempts map[int64]int
	retry    []int64
}

// rebuild abandons a member after this many failed attempts at one row.
const rebuildRowAttempts = 5

// rebuildRowsCap bounds how many rows one cycle may issue regardless of
// spare time, keeping the normal queue's depth (and the O_other exposure
// of consecutive cycles) small.
const rebuildRowsCap = 16

// MemberHealths returns a snapshot of every member's ladder position
// (nil for a non-parity volume — no member ladder exists).
//
//crasvet:snapshot
func (s *Server) MemberHealths() []MemberHealth {
	if s.members == nil {
		return nil
	}
	out := make([]MemberHealth, len(s.members))
	for i := range s.members {
		out[i] = s.members[i].health
	}
	return out
}

// FailMember force-kills a parity-volume member (the operator's — or a
// fault injector's — override of the detector). Takes effect at the next
// cycle edge. No-op on a non-parity volume or if another member is
// already dead.
func (s *Server) FailMember(i int) {
	s.memberOps = append(s.memberOps, memberOp{member: i})
}

// ReplaceMember announces a replacement disk for a dead member and starts
// the background rebuild. Takes effect at the next cycle edge; no-op
// unless the member is currently Dead.
func (s *Server) ReplaceMember(i int) {
	s.memberOps = append(s.memberOps, memberOp{member: i, replace: true})
}

// memberSick reports whether member d is Suspect or worse — the retry
// policy's signal to stop feeding it.
func (s *Server) memberSick(d int) bool {
	return s.members != nil && d < len(s.members) && s.members[d].health >= MemberSuspect
}

// volShape is the volume's current admission shape.
func (s *Server) volShape() VolumeShape {
	return VolumeShape{
		Disks: s.vol.NumDisks(), Parity: s.vol.Parity(),
		Dead: s.vol.NumDead(), StripeBytes: s.vol.StripeBytes(),
	}
}

// volParams converts a stream's raw admission parameters for this volume.
func (s *Server) volParams(par StreamParams) StreamParams {
	return VolumeParams(s.cfg.Interval, par, s.volShape())
}

// noteMemberErr counts a hard fragment failure against its member disk.
// Called from phase 1 for every fragment the retry policy surrendered.
//
//crasvet:hotpath
func (s *Server) noteMemberErr(d int) {
	if s.members == nil || d >= len(s.members) {
		return
	}
	s.members[d].cycleErrs++
}

// setMemberHealth moves a member on its ladder and notifies the deadline
// manager.
func (s *Server) setMemberHealth(i int, to MemberHealth, reason string) {
	from := s.members[i].health
	s.members[i].health = to
	s.deadlinePort.Send(MemberHealthEvent{
		Member: i, From: from, To: to, Cycle: s.cycle, Reason: reason,
	})
}

// noteMember is the deadline manager's half of a member transition.
func (s *Server) noteMember(ev MemberHealthEvent) {
	if s.OnMemberHealth != nil {
		s.OnMemberHealth(ev)
	} else {
		s.k.Engine().Tracef("cras: member %d %s -> %s at cycle %d: %s",
			ev.Member, ev.From, ev.To, ev.Cycle, ev.Reason)
	}
}

// killMember drops a member from placement: the volume marks it dead (all
// reads touching it now reconstruct from survivors), and the open set is
// re-evaluated at the degraded admission charge.
func (s *Server) killMember(i int, now sim.Time, reason string) {
	if s.vol.NumDead() > 0 {
		return // single parity: a second death is not survivable
	}
	s.vol.SetDead(i, true)
	s.stats.MembersDead++
	s.members[i].windowErrs = 0
	s.members[i].cleanCycles = 0
	s.setMemberHealth(i, MemberDead, reason)
	s.reevaluateAdmission(now)
}

// reevaluateAdmission re-runs the admission test at the volume's current
// (degraded) shape. Losing a member turns every logical fetch into
// full-row reads on all survivors; a set admitted healthy can exceed the
// degraded capacity, and the honest response is to suspend the newest
// streams — which walk the existing health ladder (and its eviction
// timeout) — until the remainder fits, instead of letting every stream
// silently miss deadlines.
func (s *Server) reevaluateAdmission(now sim.Time) {
	shape := s.volShape()
	for {
		var set []StreamParams
		for _, st := range s.streams {
			if st.closed || st.health >= Suspended {
				continue
			}
			//crasvet:allow hotalloc -- runs once per member death, bounded by open streams
			set = append(set, st.par)
		}
		if len(set) == 0 {
			return
		}
		if s.cfg.Params.AdmitShape(s.cfg.Interval, s.ramBudget(), shape, set) == nil {
			return
		}
		// Newest non-cached stream pays first: oldest-first is the
		// admission order the healthy test granted.
		var victim *stream
		for j := len(s.streams) - 1; j >= 0; j-- {
			st := s.streams[j]
			if st.closed || st.health >= Suspended || st.par.Cached {
				continue
			}
			victim = st
			break
		}
		if victim == nil {
			return
		}
		victim.suspendedAt = now
		victim.clock.Stop(now)
		s.setHealth(victim, Suspended, "over-committed in degraded mode")
	}
}

// reconstructFrag reroutes a hard-failed fragment of a parity volume to
// XOR reconstruction: one stripe read per surviving member covering the
// failed fragment's rows, issued into the SAME cycle-edge barrier — the
// tag simply gains fragments and still completes with its slowest one, so
// a member death mid-flight costs latency, never correctness. The extra
// reads were not admission-charged (the member was alive when the batch
// was planned), so each is charged against its member's spare-time budget;
// past that budget the fragment is surrendered and the stream ladder takes
// over. Returns false when reconstruction is not possible or not payable.
//
//crasvet:hotpath
func (s *Server) reconstructFrag(fg *readFrag, budgets []sim.Time) bool {
	if !s.vol.Parity() || fg.tag.s.record || fg.recon {
		return false
	}
	ss := s.vol.StripeBytes() / 512
	r0 := fg.lba / ss
	r1 := (fg.lba + int64(fg.sectors) - 1) / ss
	frags := s.vol.ReconstructFrags(fg.disk, r0, r1)
	if len(frags) == 0 {
		return false
	}
	for _, f := range frags {
		cost := s.cfg.Params.OpCost(int64(f.Count) * 512)
		if cost > budgets[f.Disk] {
			s.stats.RetriesDenied++
			return false
		}
	}
	tag := fg.tag
	s.stats.DegradedReads++
	s.stats.ParityReconstructions += r1 - r0 + 1
	for _, f := range frags {
		budgets[f.Disk] -= s.cfg.Params.OpCost(int64(f.Count) * 512)
		//crasvet:allow hotalloc -- fault path: allocates only when a member read hard-fails, never in a clean cycle
		nfg := &readFrag{tag: tag, disk: f.Disk, lba: f.LBA, sectors: f.Count, recon: true}
		tag.frags = append(tag.frags, nfg) //crasvet:allow hotalloc -- same fault path; bounded by surviving members
		tag.fragsLeft++
		if tag.cyc != nil {
			tag.cyc.remaining++
			dc := &tag.cyc.disks[f.Disk]
			dc.ops++
			dc.bytes += nfg.bytes()
		}
		s.submitFrag(nfg)
	}
	return true
}

// memberStep runs the member ladder and the rebuild scavenger once per
// cycle: apply queued operator actions, advance member health from the
// failures phase 1 absorbed, drain rebuild completions, and issue the
// next spare-paced batch of rebuild rows.
//
//crasvet:hotpath
func (s *Server) memberStep(now sim.Time) {
	if len(s.memberOps) > 0 {
		ops := s.memberOps
		s.memberOps = nil
		for _, op := range ops {
			s.applyMemberOp(op, now)
		}
	}
	if s.members == nil {
		return
	}
	s.updateMemberHealth(now)
	s.rebuildStep(now)
}

func (s *Server) applyMemberOp(op memberOp, now sim.Time) {
	if s.members == nil || op.member < 0 || op.member >= len(s.members) {
		return
	}
	m := &s.members[op.member]
	if op.replace {
		if m.health == MemberDead {
			s.startRebuild(op.member)
		}
		return
	}
	if m.health != MemberDead && m.health != MemberRebuilding {
		s.killMember(op.member, now, "operator fail")
	}
}

// updateMemberHealth advances every member's ladder position from the
// hard failures the cycle just absorbed — the same window/age-out shape
// as the stream ladder, with seed-deterministic thresholds from the
// recovery policy.
//
//crasvet:hotpath
func (s *Server) updateMemberHealth(now sim.Time) {
	pol := s.cfg.Recovery
	for i := range s.members {
		m := &s.members[i]
		errs := m.cycleErrs
		m.cycleErrs = 0
		switch m.health {
		case MemberHealthy:
			if errs == 0 {
				if m.windowErrs > 0 {
					m.windowErrs-- // old failures age out
				}
				continue
			}
			m.windowErrs += errs
			if m.windowErrs >= pol.MemberSuspectAfter {
				m.cleanCycles = 0
				s.setMemberHealth(i, MemberSuspect,
					//crasvet:allow hotalloc -- formats once per health transition, not per cycle
					fmt.Sprintf("%d hard failures", m.windowErrs))
			}
		case MemberSuspect:
			if errs > 0 {
				m.windowErrs += errs
				m.cleanCycles = 0
				if m.windowErrs >= pol.MemberDeadAfter && s.vol.NumDead() == 0 {
					//crasvet:allow hotalloc -- formats once per member death, not per cycle
					s.killMember(i, now, fmt.Sprintf("%d hard failures", m.windowErrs))
				}
				continue
			}
			m.cleanCycles++
			if m.cleanCycles >= pol.MemberRecoverCycles {
				m.windowErrs = 0
				s.setMemberHealth(i, MemberHealthy,
					//crasvet:allow hotalloc -- formats once per health transition, not per cycle
					fmt.Sprintf("%d clean cycles", m.cleanCycles))
			}
		}
	}
}

// startRebuild begins streaming reconstructed units onto the replacement.
func (s *Server) startRebuild(member int) {
	if s.rebuild != nil {
		return
	}
	//crasvet:allow hotalloc -- allocates once per rebuild start, not per cycle
	s.rebuild = &rebuildState{
		member: member, rows: s.vol.Rows(),
		inflight: make(map[int64]*rebuildRow), //crasvet:allow hotalloc -- same once-per-rebuild setup
		attempts: make(map[int64]int),         //crasvet:allow hotalloc -- same once-per-rebuild setup
	}
	s.setMemberHealth(member, MemberRebuilding, "replacement attached")
}

// rebuildStep drains the cycle's rebuild completions and, when the
// previous batch has fully landed, issues the next one. Pacing: the batch
// size is the tightest live member's spare interval time divided by the
// worst-case cost of one stripe operation — rebuild I/O only ever spends
// time the admission test left over, and a fully committed server makes
// no rebuild progress rather than stealing admitted cycles.
//
//crasvet:hotpath
func (s *Server) rebuildStep(now sim.Time) {
	rb := s.rebuild
	if rb == nil {
		if len(s.rebuildQ) > 0 {
			s.rebuildQ = s.rebuildQ[:0] // acks of an aborted rebuild
		}
		return
	}
	for _, ack := range s.rebuildQ {
		row := rb.inflight[ack.row]
		if row == nil {
			continue
		}
		if ack.err != nil && row.err == nil {
			row.err = ack.err
		}
		row.remaining--
		if row.remaining > 0 {
			continue
		}
		delete(rb.inflight, ack.row)
		if row.err == nil {
			rb.done++
			s.stats.RebuildUnits++
			continue
		}
		rb.attempts[ack.row]++
		if rb.attempts[ack.row] >= rebuildRowAttempts {
			//crasvet:allow hotalloc -- formats once per rebuild abort, not per cycle
			s.abortRebuild(fmt.Sprintf("row %d failed %d times: %v",
				ack.row, rb.attempts[ack.row], row.err))
			s.rebuildQ = s.rebuildQ[:0]
			return
		}
		rb.retry = append(rb.retry, ack.row) //crasvet:allow hotalloc -- rebuild fault path; bounded by rows in flight
	}
	s.rebuildQ = s.rebuildQ[:0]

	if rb.done == rb.rows {
		s.finishRebuild()
		return
	}
	if len(rb.inflight) > 0 {
		return // let the previous batch land before pacing the next
	}

	spares := s.retrySpares()
	spare := sim.Time(0)
	for d, sp := range spares {
		if d == rb.member {
			continue
		}
		if spare == 0 || sp < spare {
			spare = sp
		}
	}
	rowCost := s.cfg.Params.OpCost(s.vol.StripeBytes())
	n := int64(0)
	if rowCost > 0 {
		n = int64(spare / rowCost)
	}
	if n > rebuildRowsCap {
		n = rebuildRowsCap
	}
	for ; n > 0; n-- {
		var row int64
		if len(rb.retry) > 0 {
			row = rb.retry[0]
			rb.retry = rb.retry[1:]
		} else if rb.next < rb.rows {
			row = rb.next
			rb.next++
		} else {
			return
		}
		s.issueRebuildRow(row)
	}
}

// issueRebuildRow reconstructs one stripe row: a stripe-unit read on every
// surviving member and a stripe-unit write on the target, all on the
// normal queue. The content itself is materialized by the deterministic
// offline XOR when the rebuild completes; these requests make the rebuild
// pay its true I/O time on the members' arms.
func (s *Server) issueRebuildRow(row int64) {
	rb := s.rebuild
	ss := s.vol.StripeBytes() / 512
	n := s.vol.NumDisks()
	//crasvet:allow hotalloc -- rebuild scavenger: paced by spare interval time, never multiplied by admitted streams
	rb.inflight[row] = &rebuildRow{remaining: n}
	for d := 0; d < n; d++ {
		//crasvet:allow hotalloc -- same spare-time-paced rebuild path
		req := &disk.Request{
			LBA: row * ss, Count: int(ss),
			Write: d == rb.member, // survivors read, the target writes
			//crasvet:allow hotalloc -- same spare-time-paced rebuild path
			Done: func(r *disk.Request, _ []byte) {
				s.iodonePort.Send(rebuildAck{row: row, err: r.Err})
			},
		}
		s.vol.Disk(d).Submit(req)
	}
}

// abortRebuild gives up on the replacement: the member returns to Dead
// (reads stay degraded) and the operator must attach another disk.
func (s *Server) abortRebuild(reason string) {
	member := s.rebuild.member
	s.rebuild = nil
	s.setMemberHealth(member, MemberDead, "rebuild aborted: "+reason)
}

// finishRebuild materializes the reconstructed member (bit-identical by
// the parity invariant), returns it to placement, and re-admits at the
// healthy charge.
func (s *Server) finishRebuild() {
	member := s.rebuild.member
	rows := s.rebuild.done
	s.rebuild = nil
	s.vol.RebuildMember(member)
	s.vol.SetDead(member, false)
	s.members[member].windowErrs = 0
	s.members[member].cleanCycles = 0
	s.setMemberHealth(member, MemberHealthy,
		//crasvet:allow hotalloc -- formats once per rebuild completion, not per cycle
		fmt.Sprintf("rebuild complete (%d rows)", rows))
}
