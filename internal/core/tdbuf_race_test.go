package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestTDBufferConcurrentStress hammers one TDBuffer from two goroutines the
// way a shared-memory embedding would: a producer stamping chunks and
// advancing the logical clock, and a consumer issuing crs_get at a
// mismatched, drifting rate. The buffer itself is documented as
// engine-serialized, so the test guards it with one mutex — which is
// exactly what the test proves race-clean under `go test -race` — and it
// asserts the paper's time-driven invariant throughout: Get never delivers
// a chunk the logical clock has already expired.
func TestTDBufferConcurrentStress(t *testing.T) {
	const (
		chunks = 5000
		size   = 1000
	)
	var (
		dur    = sim.Time(time.Millisecond)
		jitter = sim.Time(50 * time.Millisecond)
	)
	buf := NewTDBuffer(1<<20, jitter)

	var (
		mu      sync.Mutex
		now     sim.Time // producer's logical clock; guarded by mu
		horizon sim.Time // last time-driven discard horizon; guarded by mu
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Producer: one chunk per tick, discarding obsolete chunks first, the
	// way the request scheduler stamps each interval's data.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < chunks; i++ {
			mu.Lock()
			now = sim.Time(i) * dur
			horizon = now - jitter
			buf.DiscardBefore(horizon)
			ok := buf.Insert(BufferedChunk{
				Index:     i,
				Timestamp: now,
				Duration:  dur,
				Size:      size,
				StampedAt: now,
			})
			mu.Unlock()
			if !ok {
				t.Errorf("insert %d refused: time-driven discard should always leave room", i)
				return
			}
		}
	}()

	// Consumer: reads around the producer's clock at a deliberately
	// mismatched rate — sweeping from inside the jitter window to ahead of
	// the producer — so it sees hits, misses, and near-expiry chunks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			logical := now - jitter + sim.Time(i%83)*dur
			if c, ok := buf.Get(logical); ok {
				if c.Timestamp < horizon {
					t.Errorf("expired chunk delivered: timestamp %v < horizon %v", c.Timestamp, horizon)
				}
				if logical < c.Timestamp || logical >= c.Timestamp+c.Duration {
					t.Errorf("chunk [%v,%v) does not cover requested logical time %v",
						c.Timestamp, c.Timestamp+c.Duration, logical)
				}
			}
			mu.Unlock()
		}
	}()

	wg.Wait()

	if buf.Inserted != chunks {
		t.Errorf("Inserted = %d, want %d", buf.Inserted, chunks)
	}
	if buf.Overflowed != 0 {
		t.Errorf("Overflowed = %d, want 0", buf.Overflowed)
	}
	// The newest chunk is still inside the jitter window and must be
	// resident once the goroutines have quiesced.
	last := sim.Time(chunks-1) * dur
	if _, ok := buf.Get(last); !ok {
		t.Errorf("newest chunk (timestamp %v) not resident after stress", last)
	}
}
