package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// TestDegradedOverCommitSuspends pins the honest admission response to a
// member death: a population force-opened past the degraded capacity is
// walked down to it — the newest streams are suspended with the
// over-commit reason, the oldest keep their service.
func TestDegradedOverCommitSuspends(t *testing.T) {
	movie := media.MPEG1().Generate("/m", 4*time.Second)

	e := sim.NewEngine(11)
	g, p := disk.ST32550N()
	g.Cylinders, g.Heads = 64, 2
	members := make([]*disk.Disk, 4)
	for i := range members {
		members[i] = disk.New(e, "sd"+string(rune('0'+i)), g, p)
	}
	vol, err := disk.NewParityVolume("vol0", members, 64)
	if err != nil {
		t.Fatalf("NewParityVolume: %v", err)
	}
	if _, err := ufs.Format(vol, ufs.Options{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	var suspended []string
	opened := 0
	e.Spawn("setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, vol, ufs.Options{})
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		if err := media.Store(pr, fs, "/m", movie); err != nil {
			t.Errorf("Store: %v", err)
			return
		}
		fs.Sync(pr)
		k := rtm.NewKernel(e)
		unix := ufs.NewServer(k, fs, rtm.PrioTS, 0)
		cras := NewVolumeServer(k, vol, unix, Config{
			Params:       MeasureAdmissionParams(members[0], 64<<10),
			InitialDelay: 2 * time.Second,
			BufferBudget: 1 << 30,
		})
		cras.OnStreamHealth = func(ev StreamHealthEvent) {
			if ev.To == Suspended {
				suspended = append(suspended, ev.Reason)
			}
		}
		k.NewThread("app", rtm.PrioRTLow, 0, func(th *rtm.Thread) {
			var handles []*Handle
			// Force far past what the degraded volume can carry, so the
			// re-evaluation after the kill must shed.
			for i := 0; i < 24; i++ {
				h, err := cras.Open(th, movie, "/m", OpenOptions{Force: true})
				if err != nil {
					t.Errorf("force-open %d: %v", i, err)
					return
				}
				h.Start(th)
				handles = append(handles, h)
			}
			opened = len(handles)
			th.Sleep(2 * time.Second)
			cras.FailMember(2)
			th.Sleep(2 * time.Second)
			for _, h := range handles {
				h.Close(th)
			}
		})
	})
	e.RunUntil(5 * time.Minute)

	if opened != 24 {
		t.Fatalf("opened %d streams, want 24", opened)
	}
	if len(suspended) == 0 {
		t.Fatalf("no stream was suspended after the member death")
	}
	for _, reason := range suspended {
		if reason != "over-committed in degraded mode" {
			t.Errorf("suspension reason = %q", reason)
		}
	}
	if len(suspended) >= 24 {
		t.Errorf("all %d streams suspended — the walk never re-admitted a fitting set", len(suspended))
	}
}

// TestDirectResolver pins the embedded-configuration path resolution: no
// Unix server, the calling thread reads the file system itself — both the
// playback block map and the preallocated record layout.
func TestDirectResolver(t *testing.T) {
	movie := media.MPEG1().Generate("/m", 2*time.Second)
	e := sim.NewEngine(5)
	g, p := disk.ST32550N()
	g.Cylinders = 600
	d := disk.New(e, "sd0", g, p)
	if _, err := ufs.Format(d, ufs.Options{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	ran := false
	e.Spawn("setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, d, ufs.Options{})
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		if err := media.Store(pr, fs, "/m", movie); err != nil {
			t.Errorf("Store: %v", err)
			return
		}
		fs.Sync(pr)
		k := rtm.NewKernel(e)
		k.NewThread("app", rtm.PrioTS, 0, func(th *rtm.Thread) {
			r := DirectResolver(fs)
			blocks, size, err := r.ResolvePlayback(th, "/m")
			if err != nil {
				t.Errorf("ResolvePlayback: %v", err)
				return
			}
			if size != movie.TotalSize() || len(blocks) == 0 {
				t.Errorf("ResolvePlayback: %d blocks, size %d (movie is %d)",
					len(blocks), size, movie.TotalSize())
			}
			if _, _, err := r.ResolvePlayback(th, "/absent"); err == nil {
				t.Errorf("ResolvePlayback of a missing file succeeded")
			}
			rblocks, _, err := r.ResolveRecord(th, "/rec", 256<<10)
			if err != nil {
				t.Errorf("ResolveRecord: %v", err)
				return
			}
			if want := (256 << 10) / ufs.BlockSize; len(rblocks) < want {
				t.Errorf("ResolveRecord preallocated %d blocks, want >= %d", len(rblocks), want)
			}
			ran = true
		})
	})
	e.RunUntil(time.Minute)
	if !ran {
		t.Fatalf("resolver thread never completed")
	}
}

// TestSmallSurfaces sweeps tiny accessors the larger scenarios never
// touch: the logical clock's Now alias, the drain flag, the overload
// error's message and unwrap target, and the whole-file stripe footprint.
func TestSmallSurfaces(t *testing.T) {
	c := NewLogicalClock()
	c.Start(2*time.Second, 2*time.Second)
	if got, want := c.Now(3*time.Second), 1*time.Second; got != want {
		t.Errorf("clock Now = %v, want %v", got, want)
	}

	oe := &OverloadError{RetryAfter: time.Second, Reason: "queue full"}
	if !errors.Is(oe, ErrOverloaded) {
		t.Errorf("OverloadError does not unwrap to ErrOverloaded")
	}
	if oe.Error() == "" {
		t.Errorf("OverloadError has empty message")
	}

	e := sim.NewEngine(9)
	g, p := disk.ST32550N()
	g.Cylinders, g.Heads = 64, 2
	members := []*disk.Disk{
		disk.New(e, "sd0", g, p), disk.New(e, "sd1", g, p),
		disk.New(e, "sd2", g, p), disk.New(e, "sd3", g, p),
	}
	vol, err := disk.NewVolume("vol0", members, 64)
	if err != nil {
		t.Fatalf("NewVolume: %v", err)
	}
	// 64 contiguous blocks: a fully striped file spreads within one stripe
	// row of even across the members.
	blocks := make([]uint32, 64)
	for i := range blocks {
		blocks[i] = uint32(100 + i)
	}
	m, err := BuildExtentMap(blocks, int64(len(blocks))*ufs.BlockSize, 256<<10)
	if err != nil {
		t.Fatalf("BuildExtentMap: %v", err)
	}
	fp := m.DiskFootprint(vol)
	if len(fp) != 4 {
		t.Fatalf("DiskFootprint has %d entries, want 4", len(fp))
	}
	var total, min, max int64
	min = 1 << 62
	for _, sectors := range fp {
		total += sectors
		if sectors < min {
			min = sectors
		}
		if sectors > max {
			max = sectors
		}
	}
	if want := int64(len(blocks)) * ufs.SectorsPerBlock; total != want {
		t.Errorf("DiskFootprint total %d sectors, want %d", total, want)
	}
	if max-min > 64 {
		t.Errorf("DiskFootprint uneven beyond a stripe unit: %v", fp)
	}
}
