package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// maxStripedStreams counts how many identical streams AdmitVolume accepts on
// an ndisks-member volume with the given stripe unit, mirroring MaxStreams
// but through the striped conversion.
func maxStripedStreams(t sim.Time, a AdmissionParams, budget int64,
	par StreamParams, ndisks int, stripeBytes int64) int {
	var set []StreamParams
	for {
		set = append(set, StripedParams(t, par, ndisks, stripeBytes))
		if a.AdmitVolume(t, budget, ndisks, set) != nil {
			return len(set) - 1
		}
		if len(set) > 10000 {
			return len(set)
		}
	}
}

// Striping multiplies capacity: with a generous buffer budget, the admitted
// count of identical MPEG2 streams must grow strictly from one disk to four
// and not shrink beyond, and the one-disk count must equal the single-disk
// test exactly (AdmitVolume(1) is Admit).
func TestAdmitVolumeCapacityScaling(t *testing.T) {
	a := table4()
	const interval = 500 * time.Millisecond
	const budget = 1 << 40 // effectively unbounded RAM: disk-time-limited
	const stripeBytes = 32 << 10
	par := mpeg2Params()

	counts := map[int]int{}
	for _, n := range []int{1, 2, 4, 8} {
		counts[n] = maxStripedStreams(interval, a, budget, par, n, stripeBytes)
		t.Logf("%d disks: %d streams", n, counts[n])
	}
	if counts[1] != a.MaxStreams(interval, budget, par) {
		t.Errorf("1-disk AdmitVolume admits %d, single-disk Admit admits %d",
			counts[1], a.MaxStreams(interval, budget, par))
	}
	if !(counts[1] < counts[2] && counts[2] < counts[4]) {
		t.Errorf("admitted counts not strictly increasing 1→4 disks: %d, %d, %d",
			counts[1], counts[2], counts[4])
	}
	if counts[8] < counts[4] {
		t.Errorf("8 disks admit fewer streams (%d) than 4 (%d)", counts[8], counts[4])
	}
	// Speedup stays sublinear: per-member shares round up to whole stripe
	// units and every member still pays full per-operation overheads.
	if counts[4] > 4*counts[1] {
		t.Errorf("4-disk capacity %d exceeds 4x the 1-disk capacity %d", counts[4], counts[1])
	}
}

// The per-disk bound is tight: saturating one member with pinned streams
// rejects any candidate touching that member — naming the member in the
// error — while the same candidate pinned elsewhere is admitted.
func TestAdmitVolumePerDiskTightness(t *testing.T) {
	a := table4()
	const interval = 500 * time.Millisecond
	const budget = 1 << 40
	const ndisks = 4

	// Fill member 2 to just below its interval capacity with fixed-byte
	// loads pinned to it alone.
	pinned := StreamParams{Chunk: 512 << 10, Disks: []int{2}, DiskBytes: 512 << 10}
	var set []StreamParams
	for a.AdmitVolume(interval, budget, ndisks, append(set, pinned)) == nil {
		set = append(set, pinned)
		if len(set) > 1000 {
			t.Fatal("member 2 never saturated")
		}
	}
	if len(set) == 0 {
		t.Fatal("not even one pinned stream admitted")
	}

	// One more identical candidate on the saturated member is refused (by
	// construction of the fill loop), and the error names the disk.
	err := a.AdmitVolume(interval, budget, ndisks, append(set, pinned))
	if err == nil {
		t.Fatal("candidate on the saturated member was admitted")
	}
	if !strings.Contains(err.Error(), "disk 2") {
		t.Errorf("rejection does not name the saturated member: %v", err)
	}

	// The identical candidate on an idle member sails through.
	onCold := pinned
	onCold.Disks = []int{0}
	if err := a.AdmitVolume(interval, budget, ndisks, append(set, onCold)); err != nil {
		t.Errorf("candidate on an idle member rejected: %v", err)
	}

	// Cached streams put no load on any member: marking the hot candidate
	// cache-backed admits it even on the saturated disk.
	cached := pinned
	cached.Cached = true
	if err := a.AdmitVolume(interval, budget, ndisks, append(set, cached)); err != nil {
		t.Errorf("cache-backed stream charged disk time: %v", err)
	}
}

// Degenerate inputs are rejected rather than admitted vacuously.
func TestAdmitVolumeDegenerate(t *testing.T) {
	a := table4()
	const interval = 500 * time.Millisecond

	for _, n := range []int{0, -3} {
		err := a.AdmitVolume(interval, 1<<30, n, []StreamParams{mpeg1Params()})
		if err == nil {
			t.Fatalf("AdmitVolume with %d disks accepted a stream", n)
		}
		if !strings.Contains(err.Error(), "disks") {
			t.Errorf("unhelpful degenerate-volume error: %v", err)
		}
	}

	// A stream faster than one member's transfer rate is infeasible on a
	// single disk but fits once striped wide enough.
	hot := StreamParams{Rate: a.D * 1.5, Chunk: 64 << 10}
	if a.Admit(interval, 1<<40, []StreamParams{hot}) == nil {
		t.Fatal("stream faster than the disk admitted on one disk")
	}
	striped := StripedParams(interval, hot, 8, 256<<10)
	if err := a.AdmitVolume(interval, 1<<40, 8, []StreamParams{striped}); err != nil {
		t.Errorf("1.5x-disk-rate stream rejected on 8 members: %v", err)
	}

	// The buffer budget stays global: a set that fits every member's disk
	// time is still refused when the aggregate double-buffer overflows RAM.
	par := StripedParams(interval, mpeg1Params(), 4, 32<<10)
	tiny := BufferPerStream(interval, par) - 1
	err := a.AdmitVolume(interval, tiny, 4, []StreamParams{par})
	if err == nil {
		t.Fatal("buffer overflow admitted on a striped volume")
	}
	if !strings.Contains(err.Error(), "buffer memory exhausted") {
		t.Errorf("wrong rejection reason: %v", err)
	}
}

// StripedParams and perDiskLoad: identity on one disk, whole-stripe-unit
// granularity beyond, monotone non-increasing in member count, and never
// below an even split of the fetch window.
func TestStripedParamsShape(t *testing.T) {
	const interval = 500 * time.Millisecond
	par := mpeg2Params()
	if got := StripedParams(interval, par, 1, 32<<10); !reflect.DeepEqual(got, par) {
		t.Fatalf("StripedParams on 1 disk is not the identity: %+v", got)
	}

	a := int64(interval.Seconds()*par.Rate) + par.Chunk
	const stripe = int64(32 << 10)
	prev := int64(1 << 62)
	for _, n := range []int{2, 3, 4, 8, 16} {
		sp := StripedParams(interval, par, n, stripe)
		if sp.Disks != nil {
			t.Fatalf("striped stream pinned to %v, want all members", sp.Disks)
		}
		load := sp.DiskBytes
		if load%stripe != 0 {
			t.Errorf("n=%d: per-disk load %d not in whole stripe units", n, load)
		}
		if load*int64(n) < a {
			t.Errorf("n=%d: members together carry %d < fetch window %d", n, load*int64(n), a)
		}
		if load > prev {
			t.Errorf("n=%d: per-disk load %d grew from %d with more members", n, load, prev)
		}
		prev = load
	}
}
