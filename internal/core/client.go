package core

import (
	"errors"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
)

// OpenOptions modify crs_open.
type OpenOptions struct {
	// Rate scales the retrieval rate (2.0 = the paper's retrieve-everything
	// fast-forward example). 0 means 1.0.
	Rate float64
	// Force bypasses the admission test. The evaluation uses this to
	// measure what the disk actually sustains beyond the (pessimistic)
	// admitted load; production callers should leave it false.
	Force bool
	// At opens the session at this logical media time instead of zero: the
	// clock, the fetch machinery and any cache or fan-out attach all start
	// from here. The cluster's failover and drain migration use it to
	// resume a displaced viewer at its stamp point.
	At sim.Time
	// DeliveredRate asks for a reduced fraction of the media's frames
	// (0 or 1 means all of them). The clock still advances at Rate — the
	// stream skips chunks instead of slowing down, so a 0.5 session reads
	// half the bytes and holds each delivered frame twice as long. With a
	// RateLadder configured the request is quantized to the nearest rung
	// at or below; the admission test may walk it further down. Ignored
	// for recording sessions.
	DeliveredRate float64
}

// Handle is an application's connection to one continuous media session.
// Open/Close/Start/Stop/Seek/SetRate are RPCs to the request manager
// thread; Get reads the time-driven shared memory buffer directly with no
// server communication, exactly as crs_get does.
type Handle struct {
	srv *Server
	st  *stream
}

// call performs one request-manager RPC, translating port-level failures
// into server-level errors: a destroyed request port means the signal
// handler has run (ErrServerDown); a full one means the control plane is
// saturated beyond even its queue, which is overload by another route.
func (s *Server) call(th *rtm.Thread, req any) (any, error) {
	resp, err := s.reqPort.Call(th, req)
	switch {
	case err == nil:
		return resp, nil
	case errors.Is(err, rtm.ErrPortDead):
		return nil, ErrServerDown
	case errors.Is(err, rtm.ErrPortFull):
		return nil, &OverloadError{RetryAfter: s.cfg.Interval, Reason: "request queue full"}
	}
	return nil, err
}

// op performs an RPC whose reply is a bare error.
func (s *Server) op(th *rtm.Thread, req any) error {
	resp, err := s.call(th, req)
	if err != nil {
		return err
	}
	return resp.(opResp).err
}

func (s *Server) open(th *rtm.Thread, r openReq) (*Handle, error) {
	resp, err := s.call(th, r)
	if err != nil {
		return nil, err
	}
	or := resp.(openResp)
	if or.err != nil {
		return nil, or.err
	}
	return &Handle{srv: s, st: or.st}, nil
}

// Open establishes a session for the media file at path using the supplied
// chunk table (which the application loaded from the control file via the
// Unix server), runs the admission test, and sets up the shared buffer.
// This is crs_open.
func (s *Server) Open(th *rtm.Thread, info *media.StreamInfo, path string, opts OpenOptions) (*Handle, error) {
	return s.open(th, openReq{info: info, path: path, rate: opts.Rate, at: opts.At, force: opts.Force, dr: opts.DeliveredRate})
}

// OpenRecord establishes a constant-rate recording session: the media file
// is created and fully preallocated through the Unix server, and the
// periodic scheduler then writes each interval's captured chunks into the
// placed blocks on the real-time queue. This implements the extension the
// paper's Conclusions describe. Start/Stop/Seek/Close behave as for
// playback; the logical clock models the capture source.
func (s *Server) OpenRecord(th *rtm.Thread, info *media.StreamInfo, path string, opts OpenOptions) (*Handle, error) {
	return s.open(th, openReq{info: info, path: path, rate: opts.Rate, force: opts.Force, record: true})
}

// op performs a session RPC for this handle. The in-flight window is
// tracked on the stream so the lease scan never reaps a session whose
// client is blocked in a queued call — a client waiting on the server is
// alive however long the backlog — and the lease is renewed when the call
// returns. The engine is single-threaded, so the counter is race-free.
func (h *Handle) op(th *rtm.Thread, req any) error {
	h.st.rpcInFlight++
	err := h.srv.op(th, req)
	h.st.rpcInFlight--
	h.st.touch(h.srv.k.Now())
	return err
}

// Close ends the session and releases its buffer memory (crs_close).
func (h *Handle) Close(th *rtm.Thread) error {
	return h.op(th, closeReq{id: h.st.id})
}

// Start starts the stream's logical clock after the configured initial
// delay and enables pre-fetching (crs_start).
func (h *Handle) Start(th *rtm.Thread) error {
	return h.op(th, startReq{id: h.st.id})
}

// Stop freezes the logical clock and suspends pre-fetching (crs_stop).
func (h *Handle) Stop(th *rtm.Thread) error {
	return h.op(th, stopReq{id: h.st.id})
}

// Seek sets the logical clock to the given media time and repositions
// pre-fetching (crs_seek). Buffered data is dropped.
func (h *Handle) Seek(th *rtm.Thread, logical sim.Time) error {
	return h.op(th, seekReq{id: h.st.id, logical: logical})
}

// SetRate changes the retrieval rate, re-running admission (the extension
// supporting the paper's 60 fps fast-forward discussion). A negative rate
// plays the media backwards at the given magnitude — frames are fetched in
// reverse chunk order and delivered on a forward timeline, the classic
// rewind scan. Rate 0 is refused: that is Pause's job.
func (h *Handle) SetRate(th *rtm.Thread, rate float64) error {
	return h.op(th, setRateReq{id: h.st.id, rate: rate})
}

// Pause freezes the session where it stands (crs_pause): the logical clock
// stops, buffered frames stay pinned so Get keeps returning the paused
// frame, pre-fetching ceases, and the admission slot converts to the
// paused resource class — buffer memory stays charged, disk bandwidth is
// released. The session lease keeps running; a paused client must still
// touch the session (Get on the frozen frame suffices) or be reaped like
// any other idle session. Pausing a cache follower or multicast member
// detaches it first; pausing a leader or feed hands its dependents off.
// Idempotent; refused for recording sessions.
func (h *Handle) Pause(th *rtm.Thread) error {
	return h.op(th, pauseReq{id: h.st.id})
}

// Resume restarts a paused session on the exact timeline Pause froze,
// shifted by the paused span: the next frame is due as far in the future
// as it was when the pause hit. Resuming re-runs the admission test to
// reclaim the disk slot — under load the refusal is a *VCRError carrying
// RetryAfter, and with a RateLadder configured the session may come back
// at a reduced delivered rate instead. Idempotent on a playing session.
func (h *Handle) Resume(th *rtm.Thread) error {
	return h.op(th, resumeReq{id: h.st.id})
}

// Get returns the chunk covering the given logical time if it is resident
// in the shared buffer (crs_get). It involves no communication with the
// server and may be called from any engine context. Reading the shared
// buffer renews the session lease: a consuming client is a live client.
func (h *Handle) Get(logical sim.Time) (BufferedChunk, bool) {
	h.st.touch(h.srv.k.Now())
	return h.st.buf.Get(logical)
}

// Available reports residency without recording a hit or miss. Like Get it
// renews the session lease.
func (h *Handle) Available(logical sim.Time) bool {
	h.st.touch(h.srv.k.Now())
	return h.st.buf.Peek(logical)
}

// LogicalNow returns the session's logical clock value at the current
// virtual time.
func (h *Handle) LogicalNow() sim.Time {
	return h.st.clock.At(h.srv.k.Now())
}

// ClockStartsAt returns the real time at which the logical clock reaches
// the given media time (for pacing a player), or -1 if the clock is
// stopped.
func (h *Handle) ClockStartsAt(logical sim.Time) sim.Time {
	return h.st.clock.RealTimeFor(logical)
}

// Info returns the session's chunk table.
func (h *Handle) Info() *media.StreamInfo { return h.st.info }

// Params returns the stream's admission parameters (R_i, C_i).
func (h *Handle) Params() StreamParams { return h.st.par }

// BufferStats exposes the shared buffer for measurements.
func (h *Handle) BufferStats() *TDBuffer { return h.st.buf }

// StreamStats returns a copy of the per-stream counters.
func (h *Handle) StreamStats() StreamStats { return h.st.stats }

// CacheBacked reports whether the session is currently served from the
// interval cache rather than its own disk reads. Like Get, it reads shared
// state directly; it turns false for good once the stream falls back.
func (h *Handle) CacheBacked() bool { return h.st.cached }

// MulticastMember reports whether the session is currently served by a
// multicast group's fan-out rather than its own disk reads. Like Get, it
// reads shared state directly; it turns false for good once the member
// falls back to disk or is promoted to the group's feed.
func (h *Handle) MulticastMember() bool { return h.st.mcastMember }

// Paused reports whether the session is paused. Like Get, it reads shared
// state directly and may be called from any engine context.
func (h *Handle) Paused() bool { return h.st.paused }

// DeliveredRate returns the fraction of the media's frames the session is
// currently delivering (1.0 = all of them). The adaptive ladder moves it
// down under sustained disk failures or admission pressure and back up
// after clean cycles.
func (h *Handle) DeliveredRate() float64 { return h.st.dr }

// Reversed reports whether the session is playing backwards (a negative
// SetRate).
func (h *Handle) Reversed() bool { return h.st.rev != nil }

// PrefixStarted reports whether the session's playback head was served
// from the pinned prefix cache at open time.
func (h *Handle) PrefixStarted() bool { return h.st.prefixStart }

// Health returns the session's position on the degradation ladder. Like
// Get, it reads shared state directly and may be called from any engine
// context; a ladder transition also arrives via Server.OnStreamHealth.
func (h *Handle) Health() StreamHealth { return h.st.health }

// ExtentMap returns the session's disk layout view.
func (h *Handle) ExtentMap() *ExtentMap { return h.st.ext }

// SessionState is a session's exportable migration state: everything a
// front door needs to re-establish the session elsewhere. The snapshot is
// pure memory reads, so it stays readable even after the serving node has
// shut down — exactly the situation failover needs it in.
type SessionState struct {
	Path          string
	Rate          float64  // playback rate (clock rate)
	DeliveredRate float64  // fraction of frames delivered (ladder position)
	Paused        bool     // frozen by Pause, resumable in place
	Started       bool     // the clock has been armed by Start
	Logical       sim.Time // logical clock position now
	StampPoint    sim.Time // media time of the next chunk to be stamped
	CacheBacked   bool
	Multicast     bool
	Health        StreamHealth
}

// SessionState snapshots the session for migration. Like Get it reads
// shared state directly and may be called from any engine context; unlike
// Get it works against a dead server too.
//
//crasvet:snapshot
func (h *Handle) SessionState() SessionState {
	st := h.st
	now := h.srv.k.Now()
	stamp := st.info.TotalDuration()
	if st.nextStamp < len(st.info.Chunks) {
		stamp = st.info.Chunks[st.nextStamp].Timestamp
	}
	return SessionState{
		Path:          st.name,
		Rate:          st.clock.Rate(),
		DeliveredRate: st.dr,
		Paused:        st.paused,
		Started:       st.clock.Running(),
		Logical:       st.clock.At(now),
		StampPoint:    stamp,
		CacheBacked:   st.cached,
		Multicast:     st.mcastMember,
		Health:        st.health,
	}
}
