package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// bed is a complete simulated machine: disk, file system, Unix server,
// kernel, and a CRAS instance, with movies already stored.
type bed struct {
	e    *sim.Engine
	k    *rtm.Kernel
	d    *disk.Disk
	unix *ufs.Server
	cras *Server
}

// newBed builds the testbed, stores the movies, then runs ready as an
// application thread. Engine runs until idle or 10 simulated minutes.
func newBed(t *testing.T, seed int64, fsOpts ufs.Options, cfg Config,
	movies map[string]*media.StreamInfo, ready func(b *bed, th *rtm.Thread)) *bed {
	t.Helper()
	e := sim.NewEngine(seed)
	g, p := disk.ST32550N()
	g.Cylinders = 600 // ~360 MB, plenty for test movies, fast to handle
	d := disk.New(e, "sd0", g, p)
	if _, err := ufs.Format(d, fsOpts); err != nil {
		t.Fatalf("Format: %v", err)
	}
	b := &bed{e: e, d: d}
	e.Spawn("setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, d, fsOpts)
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		for _, m := range sortedMovies(movies) {
			if err := media.Store(pr, fs, m.path, m.info); err != nil {
				t.Errorf("Store %s: %v", m.path, err)
				return
			}
		}
		fs.Sync(pr)

		b.k = rtm.NewKernel(e)
		b.unix = ufs.NewServer(b.k, fs, rtm.PrioTS, 0)
		if cfg.Params.D == 0 {
			cfg.Params = MeasureAdmissionParams(d, 64<<10)
		}
		b.cras = NewServer(b.k, d, b.unix, cfg)
		b.k.NewThread("app", rtm.PrioRTLow, cfg.Quantum, func(th *rtm.Thread) {
			ready(b, th)
		})
	})
	e.RunUntil(10 * time.Minute)
	return b
}

type namedMovie struct {
	path string
	info *media.StreamInfo
}

func sortedMovies(m map[string]*media.StreamInfo) []namedMovie {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	out := make([]namedMovie, len(keys))
	for i, k := range keys {
		out[i] = namedMovie{path: k, info: m[k]}
	}
	return out
}

// sleepRenewing sleeps for d in one-second slices, renewing the session
// lease each slice — the way a real client that is legitimately quiet (a
// recorder riding the capture clock, a paused viewer) keeps its session
// from being reaped.
func sleepRenewing(th *rtm.Thread, d time.Duration, hs ...*Handle) {
	for d > 0 {
		slice := time.Second
		if d < slice {
			slice = d
		}
		th.Sleep(slice)
		d -= slice
		for _, h := range hs {
			h.Renew(th)
		}
	}
}

// playAndMeasure consumes the stream frame by frame at its natural rate,
// polling the shared buffer, and returns per-frame delays (obtained time
// minus due time) and the count of frames that never arrived.
func playAndMeasure(b *bed, th *rtm.Thread, h *Handle, frames int) (delays []sim.Time, lost int) {
	info := h.Info()
	if frames > len(info.Chunks) {
		frames = len(info.Chunks)
	}
	const poll = 2 * time.Millisecond
	for i := 0; i < frames; i++ {
		c := info.Chunks[i]
		due := h.ClockStartsAt(c.Timestamp)
		if due < 0 {
			lost++
			continue
		}
		if b.k.Now() < due {
			th.SleepUntil(due)
		}
		// Poll until the frame shows up or its budget (anchored to the due
		// time, so losses don't push the player off the clock) runs out.
		deadline := due + 3*c.Duration
		for {
			if _, ok := h.Get(c.Timestamp); ok {
				delays = append(delays, b.k.Now()-due)
				break
			}
			if b.k.Now() >= deadline {
				lost++
				break
			}
			th.Sleep(poll)
		}
	}
	return delays, lost
}

func TestSingleStreamPlaybackOnTime(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 8*time.Second)
	var delays []sim.Time
	var lost int
	var h *Handle
	b := newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			var err error
			h, err = b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			if err := h.Start(th); err != nil {
				t.Errorf("Start: %v", err)
				return
			}
			delays, lost = playAndMeasure(b, th, h, 240)
		})
	if lost != 0 {
		t.Fatalf("lost %d frames", lost)
	}
	if len(delays) != 240 {
		t.Fatalf("measured %d frames", len(delays))
	}
	var max sim.Time
	for _, d := range delays {
		if d > max {
			max = d
		}
	}
	if max > 10*time.Millisecond {
		t.Fatalf("max frame delay %v, want <= 10ms for an unloaded single stream", max)
	}
	st := b.cras.Stats()
	if st.IODeadlineMiss != 0 || st.ThreadDeadlineMiss != 0 {
		t.Fatalf("deadline misses: io=%d thread=%d", st.IODeadlineMiss, st.ThreadDeadlineMiss)
	}
	if h.BufferStats().Overflowed != 0 {
		t.Fatal("time-driven buffer overflowed")
	}
	if st.BytesRead < movie.TotalSize()*8/10 {
		t.Fatalf("server read only %d bytes of a %d byte movie", st.BytesRead, movie.TotalSize())
	}
}

func TestAdmissionRejectsOverload(t *testing.T) {
	movie := media.MPEG2().Generate("/m2", 4*time.Second)
	movies := map[string]*media.StreamInfo{"/m2": movie}
	rejected := 0
	opened := 0
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 64 << 20},
		movies,
		func(b *bed, th *rtm.Thread) {
			for i := 0; i < 10; i++ {
				_, err := b.cras.Open(th, movie, "/m2", OpenOptions{})
				if err == nil {
					opened++
					continue
				}
				if _, ok := err.(*AdmissionError); !ok {
					t.Errorf("unexpected error type: %v", err)
				}
				rejected++
			}
			if opened < 4 || opened > 7 {
				t.Errorf("opened %d 6Mb/s streams, want ~5 (paper's Figure 9 range)", opened)
			}
			if rejected != 10-opened {
				t.Errorf("rejected %d", rejected)
			}
			if b.cras.Stats().AdmissionRejects != rejected {
				t.Errorf("stats.AdmissionRejects = %d, want %d", b.cras.Stats().AdmissionRejects, rejected)
			}
		})
}

func TestForceOpenBypassesAdmission(t *testing.T) {
	movie := media.MPEG2().Generate("/m2", 2*time.Second)
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 64 << 20},
		map[string]*media.StreamInfo{"/m2": movie},
		func(b *bed, th *rtm.Thread) {
			for i := 0; i < 8; i++ {
				if _, err := b.cras.Open(th, movie, "/m2", OpenOptions{Force: true}); err != nil {
					t.Errorf("forced open %d failed: %v", i, err)
				}
			}
			if got := b.cras.ActiveStreams(); got != 8 {
				t.Errorf("ActiveStreams = %d, want 8", got)
			}
		})
}

func TestStopSuspendsPrefetchAndClock(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(3 * time.Second)
			h.Stop(th)
			frozen := h.LogicalNow()
			bytesAtStop := h.StreamStats().BytesScheduled
			th.Sleep(3 * time.Second)
			if h.LogicalNow() != frozen {
				t.Error("logical clock advanced while stopped")
			}
			// One extra interval of scheduling may have been in flight at
			// the stop; beyond that, nothing new may be scheduled.
			growth := h.StreamStats().BytesScheduled - bytesAtStop
			if growth > 300000 {
				t.Errorf("prefetch continued while stopped: %d extra bytes", growth)
			}
			// Restart: playback resumes where it left off.
			h.Start(th)
			th.Sleep(2 * time.Second)
			if h.LogicalNow() <= frozen {
				t.Error("clock did not resume")
			}
		})
}

func TestSeekRepositionsStream(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 30*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(2 * time.Second)
			if err := h.Seek(th, 20*time.Second); err != nil {
				t.Errorf("Seek: %v", err)
				return
			}
			// After the pipeline refills, frames near 20s must be resident
			// and the old position must not be.
			th.Sleep(2 * time.Second)
			logical := h.LogicalNow()
			if logical < 20*time.Second {
				t.Errorf("clock after seek = %v, want >= 20s", logical)
			}
			if !h.Available(logical) {
				t.Error("no data at seek target after refill")
			}
			if h.Available(1 * time.Second) {
				t.Error("pre-seek data still buffered")
			}
		})
}

// Dynamic QoS: the application samples every third frame (10 fps from a
// 30 fps stream) without telling the server; unread frames are discarded by
// the time-driven rule and nothing overflows.
func TestQoSSubsampledConsumption(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			got := 0
			for i := 0; i < 240; i += 3 {
				c := movie.Chunks[i]
				due := h.ClockStartsAt(c.Timestamp)
				if b.k.Now() < due {
					th.SleepUntil(due)
				}
				deadline := b.k.Now() + 2*c.Duration
				for {
					if _, ok := h.Get(c.Timestamp); ok {
						got++
						break
					}
					if b.k.Now() >= deadline {
						break
					}
					th.Sleep(2 * time.Millisecond)
				}
			}
			if got < 78 {
				t.Errorf("sub-sampled player got %d/80 frames", got)
			}
			buf := h.BufferStats()
			if buf.Overflowed != 0 {
				t.Error("buffer overflowed under sub-sampled consumption")
			}
			if buf.LateDiscard == 0 {
				t.Error("expected unread frames to be discarded by the time-driven rule")
			}
		})
}

func TestSetRateDoubleSpeed(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 32 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			if err := h.SetRate(th, 2.0); err != nil {
				t.Errorf("SetRate: %v", err)
				return
			}
			h.Start(th)
			sleepRenewing(th, b.cras.Config().InitialDelay+5*time.Second, h)
			logical := h.LogicalNow()
			if logical < 9*time.Second || logical > 11*time.Second {
				t.Errorf("2x clock after 5s = %v, want ~10s", logical)
			}
			// The retrieval kept up: recent frames resident.
			if !h.Available(logical - 50*time.Millisecond) {
				t.Error("2x retrieval fell behind")
			}
		})
}

func TestCloseReleasesAdmissionCapacity(t *testing.T) {
	movie := media.MPEG2().Generate("/m2", 2*time.Second)
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 64 << 20},
		map[string]*media.StreamInfo{"/m2": movie},
		func(b *bed, th *rtm.Thread) {
			var handles []*Handle
			for {
				h, err := b.cras.Open(th, movie, "/m2", OpenOptions{})
				if err != nil {
					break
				}
				handles = append(handles, h)
			}
			if len(handles) == 0 {
				t.Error("no streams admitted")
				return
			}
			// Full: one more must fail; after a close, it must succeed.
			if _, err := b.cras.Open(th, movie, "/m2", OpenOptions{}); err == nil {
				t.Error("open succeeded on a full server")
			}
			if err := handles[0].Close(th); err != nil {
				t.Errorf("Close: %v", err)
			}
			if _, err := b.cras.Open(th, movie, "/m2", OpenOptions{}); err != nil {
				t.Errorf("open after close failed: %v", err)
			}
		})
}

func TestFragmentedFileDegradesExtents(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 5*time.Second)
	newBed(t, 1, ufs.Options{MaxContig: 4, RotDelay: 3}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			avg := h.ExtentMap().AverageRunBytes()
			if avg > 5*ufs.BlockSize {
				t.Errorf("fragmented layout has average run %d bytes, expected small runs", avg)
			}
			// It still plays — just with more, smaller reads.
			h.Start(th)
			delays, lost := playAndMeasure(b, th, h, 60)
			if lost > 1 {
				t.Errorf("lost %d frames on fragmented layout", lost)
			}
			_ = delays
			// ~2.5s of media is ~470KB; a tuned layout would cover that in
			// two 256KB reads, the fragmented one needs an extent per
			// small run.
			if h.StreamStats().ReadsIssued < 10 {
				t.Errorf("expected many small reads, got %d", h.StreamStats().ReadsIssued)
			}
		})
}

func TestRecordSessionWritesConstantRate(t *testing.T) {
	plan := media.MPEG1().Generate("/rec", 6*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{}, // no pre-stored movies
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.OpenRecord(th, plan, "/rec", OpenOptions{})
			if err != nil {
				t.Errorf("OpenRecord: %v", err)
				return
			}
			h.Start(th)
			sleepRenewing(th, b.cras.Config().InitialDelay+plan.TotalDuration()+2*time.Second, h)
			st := h.StreamStats()
			if st.BytesScheduled < plan.TotalSize() {
				t.Errorf("recorded %d of %d bytes", st.BytesScheduled, plan.TotalSize())
			}
			if st.ChunksStamped < int64(len(plan.Chunks))-5 {
				t.Errorf("persisted %d of %d chunks", st.ChunksStamped, len(plan.Chunks))
			}
			// The file exists with the full size and a dense block map.
			c := ufs.NewClient(b.unix, th)
			stat, err := c.Stat("/rec")
			if err != nil || stat.Size != plan.TotalSize() {
				t.Errorf("recorded file stat = %+v, %v", stat, err)
			}
			if b.cras.Stats().IODeadlineMiss != 0 {
				t.Error("record session missed I/O deadlines")
			}
		})
}

func TestAccuracyRecordsCollected(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 6*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, _ := b.cras.Open(th, movie, "/m1", OpenOptions{})
			h.Start(th)
			th.Sleep(8 * time.Second)
			recs := b.cras.Stats().Accuracy
			if len(recs) < 5 {
				t.Errorf("accuracy records = %d, want several", len(recs))
				return
			}
			for _, r := range recs {
				if r.Actual <= 0 || r.Calculated <= 0 {
					t.Errorf("degenerate record %+v", r)
				}
				if r.Ratio() >= 100 {
					t.Errorf("actual exceeded the pessimistic calculation: %+v (ratio %.1f%%)", r, r.Ratio())
				}
			}
		})
}

func TestShutdownStopsServer(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 4*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, _ := b.cras.Open(th, movie, "/m1", OpenOptions{})
			h.Start(th)
			th.Sleep(2 * time.Second)
			cycles := b.cras.Stats().Cycles
			b.cras.Shutdown()
			th.Sleep(2 * time.Second)
			if got := b.cras.Stats().Cycles; got > cycles+2 {
				t.Errorf("scheduler kept running after shutdown: %d -> %d cycles", cycles, got)
			}
			if b.cras.ActiveStreams() != 0 {
				t.Error("streams still active after shutdown")
			}
		})
}

// Section 2.6: "User-level implementation ... allows the system to execute
// multiple CRAS's simultaneously." Two servers on two disks share one
// kernel; each guarantees its own streams.
func TestMultipleCRASInstances(t *testing.T) {
	e := sim.NewEngine(8)
	k := rtm.NewKernel(e)
	movie := media.MPEG1().Generate("/m", 5*time.Second)

	type instance struct {
		cras *Server
		got  int
	}
	var insts [2]*instance
	for i := range insts {
		insts[i] = &instance{}
		inst := insts[i]
		g, pr := disk.ST32550N()
		g.Cylinders = 600
		d := disk.New(e, fmt.Sprintf("sd%d", i), g, pr)
		if _, err := ufs.Format(d, ufs.Options{}); err != nil {
			t.Fatal(err)
		}
		e.Spawn(fmt.Sprintf("setup%d", i), func(p *sim.Proc) {
			fs, err := ufs.Mount(p, d, ufs.Options{})
			if err != nil {
				t.Errorf("mount: %v", err)
				return
			}
			if err := media.Store(p, fs, "/m", movie); err != nil {
				t.Errorf("store: %v", err)
				return
			}
			fs.Sync(p)
			unix := ufs.NewServer(k, fs, rtm.PrioTS, 0)
			inst.cras = NewServer(k, d, unix, Config{})
			k.NewThread(fmt.Sprintf("app%d", i), rtm.PrioRTLow, 0, func(th *rtm.Thread) {
				h, err := inst.cras.Open(th, movie, "/m", OpenOptions{})
				if err != nil {
					t.Errorf("open on instance: %v", err)
					return
				}
				h.Start(th)
				for f := range movie.Chunks {
					c := movie.Chunks[f]
					due := h.ClockStartsAt(c.Timestamp)
					if k.Now() < due {
						th.SleepUntil(due)
					}
					limit := due + 3*c.Duration
					for {
						if _, ok := h.Get(c.Timestamp); ok {
							inst.got++
							break
						}
						if k.Now() >= limit {
							break
						}
						th.Sleep(2 * time.Millisecond)
					}
				}
			})
		})
	}
	e.RunUntil(12 * time.Second)
	for i, inst := range insts {
		if inst.got != len(movie.Chunks) {
			t.Errorf("instance %d delivered %d/%d frames", i, inst.got, len(movie.Chunks))
		}
		if inst.cras.Stats().IODeadlineMiss != 0 {
			t.Errorf("instance %d missed deadlines", i)
		}
	}
}

func TestMemoryFootprintTracksBuffers(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 4*time.Second)
	newBed(t, 1, ufs.Options{}, Config{BufferBudget: 64 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			if got := b.cras.MemoryFootprint(); got != FixedFootprint {
				t.Errorf("idle footprint = %d, want %d", got, FixedFootprint)
			}
			h1, _ := b.cras.Open(th, movie, "/m1", OpenOptions{})
			h2, _ := b.cras.Open(th, movie, "/m1", OpenOptions{})
			want := int64(FixedFootprint) + h1.BufferStats().Capacity() + h2.BufferStats().Capacity()
			if got := b.cras.MemoryFootprint(); got != want {
				t.Errorf("footprint with 2 streams = %d, want %d", got, want)
			}
			h1.Close(th)
			h2.Close(th)
			if got := b.cras.MemoryFootprint(); got != FixedFootprint {
				t.Errorf("footprint after close = %d, want %d", got, FixedFootprint)
			}
		})
}

// Both tracks of a QuickTime-style container play simultaneously from one
// media file: the rebased chunk tables (non-zero base offsets) drive
// CRAS's extent machinery into the shared file's two regions.
func TestContainerTracksPlayFromOneFile(t *testing.T) {
	e := sim.NewEngine(4)
	g, pr := disk.ST32550N()
	g.Cylinders = 600
	d := disk.New(e, "sd0", g, pr)
	if _, err := ufs.Format(d, ufs.Options{}); err != nil {
		t.Fatal(err)
	}
	cont := &media.Container{
		Name: "/movie",
		Tracks: []media.Track{
			{Kind: "video", Info: media.MPEG1().Generate("v", 6*time.Second)},
			{Kind: "audio", Info: media.CBRProfile{FrameRate: 30, Rate: 176400}.Generate("a", 6*time.Second)},
		},
	}
	e.Spawn("setup", func(p *sim.Proc) {
		fs, err := ufs.Mount(p, d, ufs.Options{})
		if err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		tracks, err := media.StoreContainer(p, fs, "/movie", cont)
		if err != nil {
			t.Errorf("store: %v", err)
			return
		}
		fs.Sync(p)
		k := rtm.NewKernel(e)
		unix := ufs.NewServer(k, fs, rtm.PrioTS, 0)
		cras := NewServer(k, d, unix, Config{})
		for i, info := range tracks {
			info := info
			kind := cont.Tracks[i].Kind
			k.NewThread("play-"+kind, rtm.PrioRTLow, 0, func(th *rtm.Thread) {
				h, err := cras.Open(th, info, "/movie", OpenOptions{})
				if err != nil {
					t.Errorf("open %s track: %v", kind, err)
					return
				}
				h.Start(th)
				got := 0
				for f := range info.Chunks {
					c := info.Chunks[f]
					due := h.ClockStartsAt(c.Timestamp)
					if k.Now() < due {
						th.SleepUntil(due)
					}
					limit := due + 3*c.Duration
					for {
						if _, ok := h.Get(c.Timestamp); ok {
							got++
							break
						}
						if k.Now() >= limit {
							break
						}
						th.Sleep(2 * time.Millisecond)
					}
				}
				if got != len(info.Chunks) {
					t.Errorf("%s track: %d/%d chunks", kind, got, len(info.Chunks))
				}
			})
		}
	})
	e.RunUntil(15 * time.Second)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int) {
		movie := media.MPEG1().Generate("/m1", 5*time.Second)
		var bytes int64
		var cycles int
		newBed(t, 77, ufs.Options{}, Config{},
			map[string]*media.StreamInfo{"/m1": movie},
			func(b *bed, th *rtm.Thread) {
				h, _ := b.cras.Open(th, movie, "/m1", OpenOptions{})
				h.Start(th)
				th.Sleep(7 * time.Second)
				bytes = b.cras.Stats().BytesRead
				cycles = b.cras.Stats().Cycles
			})
		return bytes, cycles
	}
	b1, c1 := run()
	b2, c2 := run()
	if b1 != b2 || c1 != c2 {
		t.Fatalf("identical runs diverged: (%d,%d) vs (%d,%d)", b1, c1, b2, c2)
	}
}
