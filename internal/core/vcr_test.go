package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Rewind: a negative SetRate delivers the media backwards on a forward
// delivery timeline — descending chunk indexes, ascending delivery
// timestamps — and a positive SetRate exits at the rewind head, like a
// deck coming out of REW.
func TestVCRReversePlayback(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(4 * time.Second)
			mark := h.LogicalNow()
			if err := h.SetRate(th, -1.0); err != nil {
				t.Errorf("SetRate(-1): %v", err)
				return
			}
			if !h.Reversed() {
				t.Error("stream not reversed after negative SetRate")
			}
			// Sample the delivered frames along the rewind: indexes must
			// descend while the delivery clock ascends.
			var indexes []int
			for i := 0; i < 20; i++ {
				th.Sleep(100 * time.Millisecond)
				if c, ok := h.Get(h.LogicalNow() - sim.Time(50*time.Millisecond)); ok {
					if c.Size == 0 {
						t.Errorf("rewind at full delivered rate stamped a zero-size hold (index %d)", c.Index)
					}
					if len(indexes) == 0 || c.Index != indexes[len(indexes)-1] {
						indexes = append(indexes, c.Index)
					}
				}
			}
			if len(indexes) < 3 {
				t.Fatalf("rewind delivered only %d distinct frames", len(indexes))
			}
			for i := 1; i < len(indexes); i++ {
				if indexes[i] >= indexes[i-1] {
					t.Fatalf("rewind indexes not descending: %v", indexes)
				}
			}
			if first := indexes[0]; sim.Time(first)*movie.Chunks[0].Duration > mark+sim.Time(time.Second) {
				t.Errorf("rewind started past the mark: first index %d, mark %v", indexes[0], mark)
			}

			// Play exits at the rewind head: strictly before the mark, and
			// forward delivery resumes from there.
			if err := h.SetRate(th, 1.0); err != nil {
				t.Errorf("SetRate(1) after rewind: %v", err)
				return
			}
			if h.Reversed() {
				t.Error("stream still reversed after positive SetRate")
			}
			head := h.LogicalNow()
			if head >= mark {
				t.Errorf("exit position %v did not rewind below the mark %v", head, mark)
			}
			deadline := b.k.Now() + sim.Time(3*time.Second)
			for !h.Available(head+sim.Time(200*time.Millisecond)) && b.k.Now() < deadline {
				th.Sleep(50 * time.Millisecond)
			}
			if !h.Available(head + sim.Time(200*time.Millisecond)) {
				t.Error("forward delivery never resumed after rewind")
			}
			if got := h.StreamStats().ChunksSkipped; got != 0 {
				t.Errorf("full-rate rewind skipped %d chunks", got)
			}
			h.Close(th)
		})
}

// A fast rewind that hits the start of the media parks there; Play
// resumes forward from position zero.
func TestVCRRewindToStart(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(3 * time.Second)
			if err := h.SetRate(th, -2.0); err != nil {
				t.Errorf("SetRate(-2): %v", err)
				return
			}
			// ~2s of media at 2x: the head reaches the start well within 4s.
			th.Sleep(4 * time.Second)
			if err := h.SetRate(th, 1.0); err != nil {
				t.Errorf("SetRate(1): %v", err)
				return
			}
			if got := h.LogicalNow(); got != 0 {
				t.Errorf("exit position after rewind-to-start = %v, want 0", got)
			}
			deadline := b.k.Now() + sim.Time(3*time.Second)
			for !h.Available(sim.Time(100*time.Millisecond)) && b.k.Now() < deadline {
				th.Sleep(50 * time.Millisecond)
			}
			if !h.Available(sim.Time(100 * time.Millisecond)) {
				t.Error("forward delivery never resumed from the start")
			}
			h.Close(th)
		})
}

// A session opened at DeliveredRate 0.5 reads about half the chunks and
// half the bytes, yet its delivery is continuous: every skipped frame is
// covered by a zero-size hold stamped in its place, so Get never goes
// dark. Reduced-rate viewers read alone — they never attach to the
// interval cache.
func TestVCRReducedDeliveredRate(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 10*time.Second)
	newBed(t, 7, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			full, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open full: %v", err)
				return
			}
			half, err := b.cras.Open(th, movie, "/m1", OpenOptions{DeliveredRate: 0.5})
			if err != nil {
				t.Errorf("open half: %v", err)
				return
			}
			if got := half.DeliveredRate(); got != 0.5 {
				t.Errorf("DeliveredRate = %g, want 0.5 (no ladder: exact fractions pass through)", got)
			}
			if half.CacheBacked() {
				t.Error("reduced-rate viewer attached to the interval cache")
			}
			full.Start(th)
			half.Start(th)

			info := half.Info()
			const frames = 250
			held, real, lost := 0, 0, 0
			for i := 0; i < frames; i++ {
				if i%30 == 0 {
					full.Renew(th) // only half is played; keep full's lease alive
				}
				want := info.Chunks[i]
				due := half.ClockStartsAt(want.Timestamp)
				if due < 0 {
					lost++
					continue
				}
				if b.k.Now() < due {
					th.SleepUntil(due)
				}
				deadline := due + 3*want.Duration
				got := false
				for b.k.Now() < deadline {
					if c, ok := half.Get(want.Timestamp); ok {
						got = true
						if c.Size == 0 {
							held++
						} else {
							real++
						}
						break
					}
					th.Sleep(2 * time.Millisecond)
				}
				if !got {
					lost++
				}
			}
			if lost != 0 {
				t.Errorf("reduced-rate delivery went dark for %d of %d frames", lost, frames)
			}
			// dr=0.5 retains every other chunk: roughly half held, half real.
			if held < frames/3 || real < frames/3 {
				t.Errorf("frame mix off a half-rate stream: %d real, %d held", real, held)
			}
			hs, fs := half.StreamStats(), full.StreamStats()
			if hs.ChunksSkipped == 0 {
				t.Error("half-rate stream skipped no chunks")
			}
			if hs.BytesScheduled >= fs.BytesScheduled*3/4 {
				t.Errorf("half-rate stream scheduled %d bytes vs full's %d; skipping saved no disk traffic",
					hs.BytesScheduled, fs.BytesScheduled)
			}
			half.Close(th)
			full.Close(th)
		})
}

// Under admission pressure with a rate ladder configured, an open that
// would be refused at full delivered rate is admitted a rung down
// (reduced-rate warm-up), and once capacity frees up the ladder promotes
// it back to full rate, one rung per RecoverCycles.
func TestVCRLadderWarmupOpenAndRecovery(t *testing.T) {
	movies := map[string]*media.StreamInfo{}
	var infos []*media.StreamInfo
	for i := 0; i < 20; i++ {
		path := "/m" + string(rune('a'+i))
		in := media.MPEG1().Generate(path, 6*time.Second)
		movies[path] = in
		infos = append(infos, in)
	}
	// The buffer budget is the binding constraint: B_i for an MPEG1 stream
	// is exactly 200000 bytes, so six full-rate streams fit and a seventh
	// does not — but a rung down (0.75 => B_i 153125) it does. The interval
	// constraint would never let the ladder help here: near disk capacity
	// the required interval is dominated by per-stream seek overhead, which
	// a reduced delivered rate cannot shed.
	newBed(t, 7, ufs.Options{}, Config{RateLadder: []float64{1, 0.75, 0.5}, BufferBudget: 1_370_000},
		movies,
		func(b *bed, th *rtm.Thread) {
			var handles []*Handle
			var reduced *Handle
			for i, in := range infos {
				h, err := b.cras.Open(th, in, in.Name, OpenOptions{})
				if err != nil {
					t.Errorf("open %d refused outright with a ladder configured: %v", i, err)
					break
				}
				if h.DeliveredRate() < 1 {
					reduced = h
					break
				}
				handles = append(handles, h)
			}
			if reduced == nil {
				t.Fatal("no open was admitted at reduced rate before the table ran out")
			}
			if got := b.cras.Stats().OpensReduced; got != 1 {
				t.Errorf("OpensReduced = %d, want 1", got)
			}
			want := reduced.DeliveredRate()
			if want != 0.75 && want != 0.5 {
				t.Errorf("reduced open landed off the ladder: dr = %g", want)
			}

			// Free the capacity: the ladder must walk the survivor back to
			// full rate, one rung per RecoverCycles (8 cycles = 4s each).
			for _, h := range handles {
				h.Close(th)
			}
			sleepRenewing(th, 12*time.Second, reduced)
			if got := reduced.DeliveredRate(); got != 1 {
				t.Errorf("DeliveredRate = %g after recovery window, want 1", got)
			}
			if got := b.cras.Stats().RateStepUps; got == 0 {
				t.Error("no RateStepUps recorded for the recovery")
			}
			reduced.Close(th)
		})
}

// On a saturated server every VCR upgrade refuses honestly: a typed
// *VCRError carrying a retry horizon and wrapping the admission error,
// with the session left exactly as it was. A paused session's disk slot
// is genuinely reusable — a new open takes it, and the pause's own
// resume then gets the same honest refusal until the slot frees again.
func TestVCRTypedRefusalsAndPausedSlotReuse(t *testing.T) {
	movies := map[string]*media.StreamInfo{}
	var infos []*media.StreamInfo
	for i := 0; i < 20; i++ {
		path := "/m" + string(rune('a'+i))
		in := media.MPEG1().Generate(path, 6*time.Second)
		movies[path] = in
		infos = append(infos, in)
	}
	newBed(t, 7, ufs.Options{}, Config{},
		movies,
		func(b *bed, th *rtm.Thread) {
			var handles []*Handle
			for _, in := range infos {
				h, err := b.cras.Open(th, in, in.Name, OpenOptions{})
				if err != nil {
					break
				}
				handles = append(handles, h)
			}
			if len(handles) == len(infos) {
				t.Fatal("server never saturated; cannot exercise refusals")
			}
			n := len(handles)

			// SetRate upgrade on a full server: typed refusal, rate kept.
			// (2x fits — admission is dominated by per-stream seek overhead,
			// not transfer rate, so one doubled stream costs less interval
			// time than a seventeenth stream would. 3x does not fit.)
			err := handles[0].SetRate(th, 3.0)
			var ve *VCRError
			if !errors.As(err, &ve) {
				t.Fatalf("SetRate on a full server returned %v, want *VCRError", err)
			}
			if !errors.Is(err, ErrVCRRefused) {
				t.Error("refusal does not match ErrVCRRefused")
			}
			if ve.RetryAfter <= 0 {
				t.Errorf("refusal carries no retry horizon: %+v", ve)
			}
			var ae *AdmissionError
			if !errors.As(err, &ae) {
				t.Error("refusal does not wrap the admission error")
			}
			if got := handles[0].SessionState().Rate; got != 1 {
				t.Errorf("refused SetRate changed the clock rate to %g", got)
			}
			if got := b.cras.Stats().RateRefused; got != 1 {
				t.Errorf("RateRefused = %d, want 1", got)
			}

			// Pause frees the disk slot: the open that was refused now fits.
			if err := handles[0].Pause(th); err != nil {
				t.Fatalf("pause: %v", err)
			}
			extra, err := b.cras.Open(th, infos[n], infos[n].Name, OpenOptions{})
			if err != nil {
				t.Fatalf("open into a paused slot refused: %v", err)
			}

			// ...and the resume is now the one refused, honestly and typed,
			// with the session still paused and resumable.
			err = handles[0].Resume(th)
			if !errors.As(err, &ve) || !errors.Is(err, ErrVCRRefused) {
				t.Fatalf("resume into a stolen slot returned %v, want *VCRError", err)
			}
			if !handles[0].Paused() {
				t.Error("refused resume unpaused the session")
			}
			if got := b.cras.Stats().ResumesRefused; got != 1 {
				t.Errorf("ResumesRefused = %d, want 1", got)
			}
			if err := extra.Close(th); err != nil {
				t.Errorf("close extra: %v", err)
			}
			if err := handles[0].Resume(th); err != nil {
				t.Errorf("resume after slot freed: %v", err)
			}
			if handles[0].Paused() {
				t.Error("session still paused after successful resume")
			}

			// Rate 0 and paused-stream rate changes refuse without touching
			// anything: Pause and Resume are first-class, not rate hacks.
			if err := handles[1].SetRate(th, 0); !errors.Is(err, ErrVCRRefused) {
				t.Errorf("SetRate(0) = %v, want ErrVCRRefused", err)
			}
			if err := handles[1].Pause(th); err != nil {
				t.Errorf("pause: %v", err)
			}
			if err := handles[1].SetRate(th, 2.0); !errors.Is(err, ErrVCRRefused) {
				t.Errorf("SetRate while paused = %v, want ErrVCRRefused", err)
			}
			if err := handles[1].Resume(th); err != nil {
				t.Errorf("resume: %v", err)
			}

			for _, h := range handles {
				h.Close(th)
			}
		})
}

// Recording sessions are exempt from every frame-dropping mechanism: no
// pause, no reverse, no delivered-rate reduction — a recorder that
// skipped frames would write a corrupt file.
func TestVCRRecordingRefusesFrameDropping(t *testing.T) {
	movie := media.MPEG1().Generate("/rec", 6*time.Second)
	newBed(t, 7, ufs.Options{}, Config{RateLadder: []float64{1, 0.5}},
		map[string]*media.StreamInfo{},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.OpenRecord(th, movie, "/rec", OpenOptions{})
			if err != nil {
				t.Errorf("open record: %v", err)
				return
			}
			if err := h.Pause(th); !errors.Is(err, ErrVCRRefused) {
				t.Errorf("record Pause = %v, want ErrVCRRefused", err)
			}
			if err := h.SetRate(th, -1.0); !errors.Is(err, ErrVCRRefused) {
				t.Errorf("record SetRate(-1) = %v, want ErrVCRRefused", err)
			}
			if got := h.DeliveredRate(); got != 1 {
				t.Errorf("recorder DeliveredRate = %g, want 1", got)
			}
			h.Close(th)
		})
}

// With a rate ladder configured, a stream that burns its Degraded failure
// budget over a bad disk region steps down a delivered-rate rung instead
// of suspending, keeps playing (thinned), and is promoted back to full
// rate after the region passes — the adaptive alternative to the
// suspend/evict ladder.
func TestVCRLadderStepsDownInsteadOfSuspending(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 20*time.Second)
	newBed(t, 13, ufs.Options{}, Config{
		RateLadder: []float64{1, 0.75, 0.5},
		Recovery:   RecoveryPolicy{MaxRetries: 1},
	},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			// Poison ~2s of media a few seconds in, carving one bad region
			// per overlapping extent so the whole span fails regardless of
			// how the file was laid out. The span must outlast the Degraded
			// failure budget (SuspendAfter errors) to force at least one
			// step-down, yet end before the bottom rung's budget burns too —
			// a fault that never stops would rightly suspend even a laddered
			// stream.
			info := h.Info()
			lo, hi := info.Chunks[120].Offset, info.Chunks[180].Offset
			var regions []disk.BadRegion
			for _, e := range h.ExtentMap().Extents {
				s0, s1 := lo, hi
				if s0 < e.FileOff {
					s0 = e.FileOff
				}
				if s1 > e.FileOff+e.Bytes() {
					s1 = e.FileOff + e.Bytes()
				}
				if s0 < s1 {
					regions = append(regions, disk.BadRegion{
						LBA:     e.LBA + (s0-e.FileOff)/512,
						Sectors: (s1 - s0) / 512,
					})
				}
			}
			if len(regions) == 0 {
				t.Fatal("could not carve a bad region from the extent map")
			}
			b.d.SetFaultModel(disk.NewFaultModel(b.e.RNG("faults:sd0"),
				disk.FaultConfig{BadRegions: regions, RTOnly: true}))
			h.Start(th)
			sleepRenewing(th, 9*time.Second, h)
			sv := b.cras.Stats()
			if sv.RateStepDowns == 0 {
				t.Fatal("ladder never stepped down over the bad region")
			}
			if sv.StreamsSuspended != 0 {
				t.Errorf("stream suspended despite the ladder: %d suspensions", sv.StreamsSuspended)
			}
			// Past the region: clean cycles promote back to Healthy and the
			// ladder walks the delivered rate home.
			sleepRenewing(th, 11*time.Second, h)
			if got := h.Health(); got != Healthy {
				t.Errorf("health = %v after the region passed, want Healthy", got)
			}
			if got := h.DeliveredRate(); got != 1 {
				t.Errorf("DeliveredRate = %g after recovery, want 1", got)
			}
			if got := b.cras.Stats().RateStepUps; got == 0 {
				t.Error("no RateStepUps recorded on the way back")
			}
			h.Close(th)
		})
}

// Regression for the pin-leak the gap-contract re-validation fixes: a
// follower seeking inside its leader's pinned interval changes its gap,
// and with it the pin bytes it holds in steady state. Reusing the old
// reservation would leave pinned bytes no reservation accounts for —
// crowding out other paths' pins until their followers miss and fall
// back. The seek must re-price the reservation at the new gap (keeping
// the pins and the zero-disk service), and the cache's committed counter
// must equal the sum of per-stream charges afterwards. A seek outside
// the pinned interval still detaches honestly.
func TestVCRCacheSeekRevalidatesGapContract(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 7, ufs.Options{}, Config{CacheBudget: 16 << 20},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			sleepRenewing(th, 3*time.Second, lead)
			fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open follower: %v", err)
				return
			}
			if !fol.CacheBacked() {
				t.Fatal("follower not cache-backed at open")
			}
			fol.Start(th)
			sleepRenewing(th, 1*time.Second, lead, fol)

			checkAccounting := func(when string) {
				var sum int64
				for _, st := range b.cras.streams {
					if !st.closed {
						sum += st.cachePinCharge
					}
				}
				if got := b.cras.icache.committed; got != sum {
					t.Errorf("%s: cache committed %d != sum of pin charges %d (leak of %d bytes)",
						when, got, sum, got-sum)
				}
			}
			checkAccounting("before seek")
			oldCharge := b.cras.icache.committed

			// Seek forward to just behind the leader: inside the pinned
			// interval, so the gap contract re-validates and the pins
			// survive. The interval starts at the leader's discard horizon
			// at ATTACH time — chunks the leader discarded before the
			// follower existed were never pinned — so the target must sit
			// near the leader, not at the arithmetic middle of the gap.
			target := lead.LogicalNow() - sim.Time(500*time.Millisecond)
			reads := fol.StreamStats().ReadsIssued
			if err := fol.Seek(th, target); err != nil {
				t.Fatalf("in-interval seek: %v", err)
			}
			if !fol.CacheBacked() {
				t.Fatal("follower detached by an in-interval seek")
			}
			sv := b.cras.Stats()
			if sv.SeekRevalidations != 1 {
				t.Errorf("SeekRevalidations = %d, want 1", sv.SeekRevalidations)
			}
			if sv.CacheFallbacks != 0 {
				t.Errorf("CacheFallbacks = %d after an in-interval seek, want 0", sv.CacheFallbacks)
			}
			checkAccounting("after in-interval seek")
			// Seeking toward the leader narrowed the gap: the re-priced
			// reservation must have shrunk with it, or the budget leaks the
			// difference on every such seek.
			if got := b.cras.icache.committed; got >= oldCharge {
				t.Errorf("narrowed gap did not shrink the pin reservation: committed %d, was %d",
					got, oldCharge)
			}

			// The follower keeps playing from the pins with no disk reads
			// of its own past the revalidated seek.
			sleepRenewing(th, 2*time.Second, lead, fol)
			if !fol.CacheBacked() {
				t.Error("follower fell back after the revalidated seek")
			}
			if got := fol.StreamStats().ReadsIssued; got != reads {
				t.Errorf("follower issued %d disk reads after a pin-preserving seek", got-reads)
			}
			if fol.StreamStats().ChunksFromCache == 0 {
				t.Error("follower served nothing from cache after the seek")
			}

			// A seek outside the pinned interval detaches honestly.
			if err := fol.Seek(th, lead.LogicalNow()+sim.Time(5*time.Second)); err != nil {
				t.Fatalf("out-of-interval seek: %v", err)
			}
			if fol.CacheBacked() {
				t.Error("follower still cache-backed after seeking outside the interval")
			}
			if got := b.cras.Stats().CacheFallbacks; got != 1 {
				t.Errorf("CacheFallbacks = %d after an out-of-interval seek, want 1", got)
			}
			checkAccounting("after detach")

			fol.Close(th)
			lead.Close(th)
		})
}
