package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func sec(n int) sim.Time { return sim.Time(n) * time.Second }

func TestClockStartsStopped(t *testing.T) {
	c := NewLogicalClock()
	if c.Running() {
		t.Fatal("new clock should be stopped")
	}
	if c.At(sec(100)) != 0 {
		t.Fatal("stopped clock should stay at zero")
	}
	if c.Rate() != 1 {
		t.Fatal("default rate should be 1")
	}
}

func TestClockAdvancesAfterStart(t *testing.T) {
	c := NewLogicalClock()
	c.Start(sec(2), sec(10))
	if c.At(sec(5)) != 0 {
		t.Fatal("clock advanced before its start time (initial delay)")
	}
	if c.At(sec(10)) != 0 {
		t.Fatal("clock should be zero exactly at start")
	}
	if got := c.At(sec(13)); got != sec(3) {
		t.Fatalf("At(start+3s) = %v, want 3s", got)
	}
}

func TestClockStopFreezes(t *testing.T) {
	c := NewLogicalClock()
	c.Start(0, 0)
	c.Stop(sec(4))
	if got := c.At(sec(100)); got != sec(4) {
		t.Fatalf("stopped clock reads %v, want 4s", got)
	}
	c.Start(sec(10), sec(10)) // resume
	if got := c.At(sec(12)); got != sec(6) {
		t.Fatalf("resumed clock reads %v, want 6s", got)
	}
}

func TestClockSeek(t *testing.T) {
	c := NewLogicalClock()
	c.Start(0, 0)
	c.Seek(sec(5), sec(60))
	if got := c.At(sec(7)); got != sec(62) {
		t.Fatalf("after seek, At = %v, want 62s", got)
	}
	c.Stop(sec(8))
	c.Seek(sec(9), sec(10))
	if got := c.At(sec(20)); got != sec(10) {
		t.Fatalf("seek on stopped clock should stay frozen, got %v", got)
	}
}

func TestClockRate(t *testing.T) {
	c := NewLogicalClock()
	c.Start(0, 0)
	c.SetRate(sec(10), 2.0) // logical = 10s here
	if got := c.At(sec(13)); got != sec(16) {
		t.Fatalf("2x clock reads %v, want 16s", got)
	}
	c.SetRate(sec(13), 0.5) // logical = 16s
	if got := c.At(sec(17)); got != sec(18) {
		t.Fatalf("0.5x clock reads %v, want 18s", got)
	}
}

func TestClockRealTimeFor(t *testing.T) {
	c := NewLogicalClock()
	c.Start(0, sec(10))
	if got := c.RealTimeFor(sec(5)); got != sec(15) {
		t.Fatalf("RealTimeFor(5s) = %v, want 15s", got)
	}
	if got := c.RealTimeFor(0); got != sec(10) {
		t.Fatalf("RealTimeFor(0) = %v, want start time", got)
	}
	c.Stop(sec(12))
	if got := c.RealTimeFor(sec(50)); got != -1 {
		t.Fatalf("RealTimeFor on stopped clock = %v, want -1", got)
	}
}

func TestClockRateAffectsRealTimeFor(t *testing.T) {
	c := NewLogicalClock()
	c.SetRate(0, 2.0)
	c.Start(0, 0)
	if got := c.RealTimeFor(sec(10)); got != sec(5) {
		t.Fatalf("RealTimeFor at 2x = %v, want 5s", got)
	}
}
