package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// testAdmission is a plausible mid-90s disk for admission math tests: no
// machinery, just the measured constants the formulas consume.
func testAdmission() AdmissionParams {
	return AdmissionParams{
		D:        4 << 20, // 4 MB/s media rate
		TseekMax: 20 * time.Millisecond,
		TseekMin: 2 * time.Millisecond,
		Trot:     6 * time.Millisecond,
		Tcmd:     1 * time.Millisecond,
		Bother:   64 << 10,
	}
}

// TestParityDiskLoad pins the coalesced parity load model: the degraded
// charge is exactly the full-row span (every survivor reads the affected
// rows whole), the healthy charge never exceeds it, and a zero stripe
// degenerates to the raw fetch.
func TestParityDiskLoad(t *testing.T) {
	const stripe = int64(32 << 10)
	for _, n := range []int{3, 4, 5, 8} {
		for _, a := range []int64{1, stripe / 2, stripe, 100 << 10, 320 << 10, 765 << 10} {
			units := (a+stripe-1)/stripe + 1
			rows := (units + int64(n-1) - 1) / int64(n-1)
			degraded := parityDiskLoad(a, stripe, n, true)
			healthy := parityDiskLoad(a, stripe, n, false)
			if want := (rows + 1) * stripe; degraded != want {
				t.Errorf("parityDiskLoad(%d, n=%d, degraded) = %d, want %d", a, n, degraded, want)
			}
			if healthy > degraded {
				t.Errorf("parityDiskLoad(%d, n=%d): healthy %d > degraded %d", a, n, healthy, degraded)
			}
			if healthy < a/int64(n) {
				t.Errorf("parityDiskLoad(%d, n=%d): healthy %d below even split %d", a, n, healthy, a/int64(n))
			}
		}
	}
	if got := parityDiskLoad(12345, 0, 4, false); got != 12345 {
		t.Errorf("zero stripe: got %d, want identity", got)
	}
}

// TestVolumeParams pins the conversion's two branches: a non-parity shape
// is StripedParams byte for byte, a parity shape charges the healthy
// coalesced parity load across all members.
func TestVolumeParams(t *testing.T) {
	const T = 500 * time.Millisecond
	par := StreamParams{Rate: 187 << 10, Chunk: 64 << 10}
	raid0 := VolumeParams(T, par, VolumeShape{Disks: 4, StripeBytes: 32 << 10})
	want := StripedParams(T, par, 4, 32<<10)
	if raid0.DiskBytes != want.DiskBytes || raid0.Rate != want.Rate ||
		raid0.Chunk != want.Chunk || len(raid0.Disks) != len(want.Disks) {
		t.Errorf("non-parity VolumeParams = %+v, want StripedParams %+v", raid0, want)
	}
	p := VolumeParams(T, par, VolumeShape{Disks: 4, Parity: true, StripeBytes: 32 << 10})
	if p.Disks != nil {
		t.Errorf("parity VolumeParams pinned Disks %v, want nil (rotation touches all)", p.Disks)
	}
	a := int64(T.Seconds()*par.Rate) + par.Chunk
	if want := parityDiskLoad(a, 32<<10, 4, false); p.DiskBytes != want {
		t.Errorf("parity VolumeParams DiskBytes = %d, want %d", p.DiskBytes, want)
	}
	// The parity charge per member can never be below the RAID-0 share of
	// the same fetch on one fewer member (n-1 data units per row).
	if p.DiskBytes < perDiskLoad(a, 32<<10, 4)-32<<10 {
		t.Errorf("parity DiskBytes %d implausibly low vs RAID-0 share %d", p.DiskBytes, perDiskLoad(a, 32<<10, 4))
	}
}

// maxShapeStreams is MaxStreams against AdmitShape: how many identical
// streams the shape admits.
func maxShapeStreams(a AdmissionParams, t sim.Time, budget int64, shape VolumeShape, s StreamParams) int {
	var set []StreamParams
	for {
		set = append(set, s)
		if a.AdmitShape(t, budget, shape, set) != nil {
			return len(set) - 1
		}
		if len(set) > 10000 {
			return len(set)
		}
	}
}

// TestAdmitShapeParity pins the honest degraded charge: with one member
// dead, the same stream population costs more per survivor, so the
// degraded shape admits no more streams than the healthy one — and the
// healthy parity shape admits no more than plain RAID-0 at equal member
// count (parity holes cost, redundancy is not free).
func TestAdmitShapeParity(t *testing.T) {
	a := testAdmission()
	const T = 500 * time.Millisecond
	const budget = 256 << 20
	mpeg1 := StreamParams{Rate: 187 << 10, Chunk: 64 << 10}
	shape := VolumeShape{Disks: 4, Parity: true, StripeBytes: 32 << 10}

	healthy := maxShapeStreams(a, T, budget, shape, VolumeParams(T, mpeg1, shape))
	degradedShape := shape
	degradedShape.Dead = 1
	degraded := maxShapeStreams(a, T, budget, degradedShape, VolumeParams(T, mpeg1, shape))
	raid0 := maxShapeStreams(a, T, budget, VolumeShape{Disks: 4, StripeBytes: 32 << 10},
		StripedParams(T, mpeg1, 4, 32<<10))

	if healthy < 1 || degraded < 1 {
		t.Fatalf("shapes admit nothing: healthy=%d degraded=%d", healthy, degraded)
	}
	if degraded > healthy {
		t.Errorf("degraded shape admits %d streams, healthy only %d", degraded, healthy)
	}
	if healthy > raid0 {
		t.Errorf("parity shape admits %d streams, RAID-0 %d — redundancy came out free", healthy, raid0)
	}
}

// TestAdmitShapeEdges pins the shape test's degenerate forms: no disks is
// a typed rejection, one disk is the single-disk test, and the RAID-0
// shape is AdmitVolume byte for byte.
func TestAdmitShapeEdges(t *testing.T) {
	a := testAdmission()
	const T = 500 * time.Millisecond
	mpeg1 := StreamParams{Rate: 187 << 10, Chunk: 64 << 10}
	set := []StreamParams{mpeg1, mpeg1}

	if err := a.AdmitShape(T, 1<<30, VolumeShape{}, set); err == nil {
		t.Errorf("zero-disk shape admitted")
	}
	one := a.AdmitShape(T, 1<<30, VolumeShape{Disks: 1}, set)
	plain := a.Admit(T, 1<<30, set)
	if (one == nil) != (plain == nil) {
		t.Errorf("one-disk shape %v, single-disk test %v", one, plain)
	}
	striped := []StreamParams{StripedParams(T, mpeg1, 4, 32<<10), StripedParams(T, mpeg1, 4, 32<<10)}
	av := a.AdmitVolume(T, 1<<30, 4, striped)
	as := a.AdmitShape(T, 1<<30, VolumeShape{Disks: 4}, striped)
	if (av == nil) != (as == nil) {
		t.Errorf("AdmitVolume %v, AdmitShape RAID-0 %v", av, as)
	}
	// Buffer exhaustion is still enforced under a shape.
	if err := a.AdmitShape(T, 1, VolumeShape{Disks: 4}, striped); err == nil {
		t.Errorf("1-byte budget admitted two streams")
	}
}
