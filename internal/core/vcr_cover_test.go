package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// The typed refusal renders its operation, reason and retry horizon; the
// ladder helpers handle their boundary inputs (full rate has no rung
// above; an empty ladder snaps nothing).
func TestVCRErrorAndLadderHelpers(t *testing.T) {
	e := &VCRError{Op: "seek", RetryAfter: sim.Time(time.Second), Reason: "no room"}
	msg := e.Error()
	for _, want := range []string{"seek", "no room", "1s"} {
		if !strings.Contains(msg, want) {
			t.Errorf("refusal message %q missing %q", msg, want)
		}
	}

	s := &Server{cfg: Config{RateLadder: []float64{1, 0.75, 0.5}}}
	if _, ok := s.ladderAbove(1.0); ok {
		t.Error("ladderAbove(1) found a rung above full rate")
	}
	if up, ok := s.ladderAbove(0.5); !ok || up != 0.75 {
		t.Errorf("ladderAbove(0.5) = %g, %v; want 0.75, true", up, ok)
	}

	bare := &Server{cfg: Config{}}
	if _, ok := bare.ladderBelow(1.0); ok {
		t.Error("empty ladder produced a rung below 1")
	}
	if got := bare.ladderSnap(0.6); got != 0.6 {
		t.Errorf("ladderSnap without a ladder = %g, want passthrough 0.6", got)
	}
}

// Pause and Resume are idempotent on a session already in the target
// state, seek-to-current is an exact no-op, and every VCR operation on a
// closed session answers with an error instead of resurrecting it.
func TestVCRIdempotentAndClosedSessionOps(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 8*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			h.Start(th)
			if err := h.Resume(th); err != nil {
				t.Errorf("Resume on a playing session = %v, want idempotent nil", err)
			}
			if err := h.Pause(th); err != nil {
				t.Errorf("pause: %v", err)
			}
			if err := h.Pause(th); err != nil {
				t.Errorf("Pause on a paused session = %v, want idempotent nil", err)
			}
			if got := b.cras.Stats().Pauses; got != 1 {
				t.Errorf("Pauses = %d after an idempotent re-pause, want 1", got)
			}
			if err := h.Resume(th); err != nil {
				t.Errorf("resume: %v", err)
			}
			if err := h.Seek(th, h.LogicalNow()); err != nil {
				t.Errorf("seek-to-current = %v, want no-op nil", err)
			}
			if err := h.Close(th); err != nil {
				t.Errorf("close: %v", err)
			}
			if err := h.Pause(th); err == nil {
				t.Error("Pause on a closed session succeeded")
			}
			if err := h.Resume(th); err == nil {
				t.Error("Resume on a closed session succeeded")
			}
			if err := h.Seek(th, 0); err == nil {
				t.Error("Seek on a closed session succeeded")
			}
			if err := h.SetRate(th, 2); err == nil {
				t.Error("SetRate on a closed session succeeded")
			}
		})
}

// Pausing a rewind freezes the picture at the rewind head — the stream
// leaves reverse mode — and Resume plays forward from there, like a deck
// pausing out of REW.
func TestVCRPauseWhileReversed(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(4 * time.Second)
			mark := h.LogicalNow()
			if err := h.SetRate(th, -1.0); err != nil {
				t.Errorf("SetRate(-1): %v", err)
				return
			}
			th.Sleep(time.Second)
			if err := h.Pause(th); err != nil {
				t.Errorf("Pause while reversed: %v", err)
				return
			}
			if h.Reversed() {
				t.Error("session still reversed after Pause")
			}
			if !h.Paused() {
				t.Error("session not paused after Pause")
			}
			if err := h.Resume(th); err != nil {
				t.Errorf("resume: %v", err)
				return
			}
			head := h.LogicalNow()
			if head > mark {
				t.Errorf("pause-out-of-rewind landed at %v, past the mark %v", head, mark)
			}
			// Forward delivery resumes from the frozen head: the clock moves
			// again and frames turn up behind it.
			got := 0
			for i := 0; i < 40; i++ {
				th.Sleep(100 * time.Millisecond)
				if _, ok := h.Get(h.LogicalNow() - sim.Time(50*time.Millisecond)); ok {
					got++
				}
			}
			if h.LogicalNow() <= head {
				t.Error("clock never restarted after pause-out-of-rewind")
			}
			if got == 0 {
				t.Error("forward delivery never resumed after pause-out-of-rewind")
			}
			h.Close(th)
		})
}

// Seeking a rewinding session repositions the rewind head in place: same
// velocity, same admission charge, still reversed. A seek to the current
// head is a no-op, a target past the end of the media parks the head on
// the last chunk, and Play exits at the repositioned head.
func TestVCRSeekWhileReversed(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 12*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(4 * time.Second)
			if err := h.SetRate(th, -1.0); err != nil {
				t.Errorf("SetRate(-1): %v", err)
				return
			}
			th.Sleep(500 * time.Millisecond)

			head := h.st.rev.mediaPos
			if err := h.Seek(th, head); err != nil {
				t.Errorf("seek-to-head while reversed = %v, want no-op nil", err)
			}
			if !h.Reversed() || h.st.rev.mediaPos != head {
				t.Errorf("no-op seek moved the rewind head: %v -> %v", head, h.st.rev.mediaPos)
			}

			past := movie.TotalDuration() + sim.Time(time.Second)
			if err := h.Seek(th, past); err != nil {
				t.Errorf("seek past the end while reversed: %v", err)
			}
			if got, want := h.st.rev.next, len(movie.Chunks)-1; got != want {
				t.Errorf("past-end rewind seek parked on chunk %d, want last chunk %d", got, want)
			}

			target := sim.Time(6 * time.Second)
			if err := h.Seek(th, target); err != nil {
				t.Errorf("reposition while reversed: %v", err)
			}
			if !h.Reversed() {
				t.Error("reposition exited reverse mode")
			}
			if got := h.st.rev.mediaPos; got != target {
				t.Errorf("rewind head at %v after reposition, want %v", got, target)
			}
			if got, want := h.st.rev.next, movie.ChunkAt(target); got != want {
				t.Errorf("rewind next chunk %d after reposition, want %d", got, want)
			}

			th.Sleep(time.Second)
			if err := h.SetRate(th, 1.0); err != nil {
				t.Errorf("SetRate(1): %v", err)
				return
			}
			if got := h.LogicalNow(); got > target {
				t.Errorf("exit position %v did not track the repositioned head (target %v)", got, target)
			}
			h.Close(th)
		})
}

// On a saturated server, a cache follower's out-of-interval seek — which
// must detach and re-admit as a plain disk stream — refuses honestly with
// a typed *VCRError and leaves the follower attached at its old position,
// still serving from the leader's pins. Once a slot frees, the same seek
// succeeds and detaches.
func TestVCRSeekRefusalKeepsFollowerAttached(t *testing.T) {
	movies := map[string]*media.StreamInfo{}
	hot := media.MPEG1().Generate("/hot", 12*time.Second)
	movies["/hot"] = hot
	var fillers []*media.StreamInfo
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/f%02d", i)
		in := media.MPEG1().Generate(path, 8*time.Second)
		movies[path] = in
		fillers = append(fillers, in)
	}
	newBed(t, 7, ufs.Options{}, Config{CacheBudget: 16 << 20},
		movies,
		func(b *bed, th *rtm.Thread) {
			lead, err := b.cras.Open(th, hot, "/hot", OpenOptions{})
			if err != nil {
				t.Errorf("open leader: %v", err)
				return
			}
			lead.Start(th)
			sleepRenewing(th, 3*time.Second, lead)

			// Fill the remaining disk slots with independent titles.
			var held []*Handle
			saturated := false
			for _, in := range fillers {
				h, err := b.cras.Open(th, in, in.Name, OpenOptions{})
				if err != nil {
					saturated = true
					break
				}
				held = append(held, h)
			}
			if !saturated {
				t.Fatal("server never saturated; cannot exercise the seek refusal")
			}

			// The follower still opens: served from the leader's pins, it
			// charges no disk time.
			fol, err := b.cras.Open(th, hot, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("cache-backed open on a disk-saturated server refused: %v", err)
			}
			if !fol.CacheBacked() {
				t.Fatal("follower not cache-backed")
			}
			fol.Start(th)
			all := append([]*Handle{lead, fol}, held...)
			sleepRenewing(th, 500*time.Millisecond, all...)

			target := lead.LogicalNow() + sim.Time(5*time.Second)
			err = fol.Seek(th, target)
			var ve *VCRError
			if !errors.As(err, &ve) || !errors.Is(err, ErrVCRRefused) {
				t.Fatalf("out-of-interval seek on a full server = %v, want *VCRError", err)
			}
			if ve.Op != "seek" || ve.RetryAfter <= 0 {
				t.Errorf("refusal malformed: %+v", ve)
			}
			var ae *AdmissionError
			if !errors.As(err, &ae) {
				t.Error("seek refusal does not wrap the admission error")
			}
			if !fol.CacheBacked() {
				t.Error("refused seek detached the follower")
			}
			if got := b.cras.Stats().SeeksRefused; got != 1 {
				t.Errorf("SeeksRefused = %d, want 1", got)
			}

			// A freed slot lets the same seek through, detaching honestly.
			held[len(held)-1].Close(th)
			held = held[:len(held)-1]
			if err := fol.Seek(th, target); err != nil {
				t.Fatalf("seek after a slot freed: %v", err)
			}
			if fol.CacheBacked() {
				t.Error("follower still cache-backed after the detaching seek")
			}

			fol.Close(th)
			lead.Close(th)
			for _, h := range held {
				h.Close(th)
			}
		})
}

// A 2x scan under memory pressure walks the whole ladder: full rate and
// the 0.75 rung both exceed the buffer budget at the doubled admission
// rate, so the scan is admitted thinned to 0.5 — the rung whose doubled
// rate charges exactly the old buffer. While the pressure holds, the
// recovery pass keeps attempting the promotion each window and is refused;
// dropping back to 1x restores full delivered rate. The bottom rung has
// nowhere further to step down.
func TestVCRSetRateLadderDescentUnderMemoryPressure(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 30*time.Second)
	newBed(t, 7, ufs.Options{}, Config{
		RateLadder: []float64{1, 0.75, 0.5},
		// One full-rate MPEG1 stream (B_i = 200000) fits with a sliver to
		// spare; 2x and 1.5x admission rates do not.
		BufferBudget: 210_000,
	},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if got := h.DeliveredRate(); got != 1 {
				t.Errorf("DeliveredRate at open = %g, want 1", got)
			}
			h.Start(th)
			th.Sleep(time.Second)
			if err := h.SetRate(th, 2.0); err != nil {
				t.Fatalf("SetRate(2) with a ladder = %v, want thinned admission", err)
			}
			if got := h.DeliveredRate(); got != 0.5 {
				t.Errorf("DeliveredRate = %g after the ladder walk, want 0.5", got)
			}
			if got := h.SessionState().Rate; got != 2 {
				t.Errorf("clock rate = %g, want 2", got)
			}
			if b.cras.ladderStepDown(h.st, b.k.Now()) {
				t.Error("ladderStepDown stepped below the bottom rung")
			}

			// The promotion pass runs every RecoverCycles but the budget
			// still refuses the 0.75 rung at 2x: the stream keeps its rung.
			sleepRenewing(th, 10*time.Second, h)
			if got := h.DeliveredRate(); got != 0.5 {
				t.Errorf("DeliveredRate = %g under sustained pressure, want 0.5", got)
			}
			if got := b.cras.Stats().RateStepUps; got != 0 {
				t.Errorf("RateStepUps = %d while every promotion should refuse, want 0", got)
			}

			if err := h.SetRate(th, 1.0); err != nil {
				t.Fatalf("SetRate(1): %v", err)
			}
			if got := h.DeliveredRate(); got != 1 {
				t.Errorf("DeliveredRate = %g back at 1x, want 1", got)
			}
			h.Close(th)
		})
}

// Pausing a cache leader hands its followers off to plain disk service,
// and pausing a multicast feed breaks up its group — dependents keep
// playing, nobody rides a frozen clock.
func TestVCRPauseDetachesDependents(t *testing.T) {
	t.Run("cache-leader", func(t *testing.T) {
		movie := media.MPEG1().Generate("/m1", 12*time.Second)
		newBed(t, 7, ufs.Options{}, Config{CacheBudget: 16 << 20},
			map[string]*media.StreamInfo{"/m1": movie},
			func(b *bed, th *rtm.Thread) {
				lead, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
				if err != nil {
					t.Errorf("open leader: %v", err)
					return
				}
				lead.Start(th)
				sleepRenewing(th, 3*time.Second, lead)
				fol, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
				if err != nil {
					t.Errorf("open follower: %v", err)
					return
				}
				if !fol.CacheBacked() {
					t.Fatal("follower not cache-backed")
				}
				fol.Start(th)
				if err := lead.Pause(th); err != nil {
					t.Fatalf("pause leader: %v", err)
				}
				if fol.CacheBacked() {
					t.Error("follower still cache-backed behind a paused leader")
				}
				if got := b.cras.Stats().CacheFallbacks; got == 0 {
					t.Error("no CacheFallbacks recorded for the handoff")
				}
				if err := lead.Resume(th); err != nil {
					t.Errorf("resume leader: %v", err)
				}
				fol.Close(th)
				lead.Close(th)
			})
	})

	t.Run("multicast-feed", func(t *testing.T) {
		movie := media.MPEG1().Generate("/hot", 12*time.Second)
		newBed(t, 7, ufs.Options{}, Config{
			BatchWindow:    2 * time.Second,
			PrefixBudget:   16 << 20,
			PrefixMinOpens: 99, // popularity off: plain batch groups only
		},
			map[string]*media.StreamInfo{"/hot": movie},
			func(b *bed, th *rtm.Thread) {
				feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
				if err != nil {
					t.Errorf("open feed: %v", err)
					return
				}
				feed.Start(th)
				th.Sleep(300 * time.Millisecond)
				var members [2]*Handle
				for i := range members {
					m, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
					if err != nil {
						t.Errorf("open member %d: %v", i, err)
						return
					}
					if !m.MulticastMember() {
						t.Fatalf("member %d did not join the batch group", i)
					}
					m.Start(th)
					members[i] = m
				}
				// Pausing a member detaches just that member...
				if err := members[0].Pause(th); err != nil {
					t.Fatalf("pause member: %v", err)
				}
				if members[0].MulticastMember() {
					t.Error("paused member still rides the fan-out group")
				}
				if !members[1].MulticastMember() {
					t.Error("sibling member detached by another member's pause")
				}
				// ...and pausing the feed breaks up what remains.
				if err := feed.Pause(th); err != nil {
					t.Fatalf("pause feed: %v", err)
				}
				if members[1].MulticastMember() {
					t.Error("member still attached to a paused feed")
				}
				if got := b.cras.Stats().MulticastFallbacks; got < 2 {
					t.Errorf("MulticastFallbacks = %d after both pauses, want >= 2", got)
				}
				for _, m := range members {
					m.Resume(th)
					m.Close(th)
				}
				feed.Resume(th)
				feed.Close(th)
			})
	})
}

// The cluster-facing control probes: the cycle counter is the heartbeat a
// monitor compares, Wedge freezes it (the gray failure: RPCs answer, no
// data moves), Unwedge releases it, and Draining/NotifyDown expose the
// drain state and the dead-name hook.
func TestServerControlProbes(t *testing.T) {
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{},
		func(b *bed, th *rtm.Thread) {
			if b.cras.Draining() {
				t.Error("server draining before Drain was called")
			}
			b.cras.NotifyDown(b.k.NewPort("watch"))

			c0 := b.cras.CycleCount()
			th.Sleep(1200 * time.Millisecond)
			c1 := b.cras.CycleCount()
			if c1 <= c0 {
				t.Errorf("cycle count stuck at %d on a healthy server", c1)
			}
			b.cras.Wedge()
			th.Sleep(1500 * time.Millisecond)
			c2 := b.cras.CycleCount()
			th.Sleep(1500 * time.Millisecond)
			if got := b.cras.CycleCount(); got != c2 {
				t.Errorf("cycle count advanced %d -> %d while wedged", c2, got)
			}
			b.cras.Unwedge()
			th.Sleep(1500 * time.Millisecond)
			if got := b.cras.CycleCount(); got <= c2 {
				t.Errorf("cycle count stuck at %d after Unwedge", got)
			}
		})
}
