package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// edgeParams is a hand-built Table 4 with round numbers, so the formula
// boundaries in the cases below are exact.
func edgeParams() AdmissionParams {
	return AdmissionParams{
		D:        4e6, // 4 MB/s
		TseekMax: sim.Time(20 * time.Millisecond),
		TseekMin: sim.Time(2 * time.Millisecond),
		Trot:     sim.Time(11 * time.Millisecond),
		Tcmd:     sim.Time(1 * time.Millisecond),
		Bother:   64 << 10,
	}
}

func TestAdmissionEdgeCases(t *testing.T) {
	p := edgeParams()
	second := sim.Time(time.Second)
	mpeg1 := StreamParams{Rate: 187500, Chunk: 64 << 10} // the paper's 1.5 Mb/s stream

	cases := []struct {
		name     string
		interval sim.Time
		budget   int64
		streams  []StreamParams
		admit    bool
		reason   string // substring of AdmissionError.Reason when !admit
	}{
		{
			// Formula (1) with no streams needs no interval and no buffer:
			// the empty server admits trivially even with nothing configured.
			name:     "zero streams, zero interval, zero budget",
			interval: 0,
			budget:   0,
			streams:  nil,
			admit:    true,
		},
		{
			// A zero interval cannot absorb the fixed per-batch overheads
			// of formula (15), whatever the stream asks for.
			name:     "zero interval, one modest stream",
			interval: 0,
			budget:   64 << 20,
			streams:  []StreamParams{mpeg1},
			admit:    false,
			reason:   "interval time too short",
		},
		{
			// Formula (2) requires R_total strictly below D: a stream at
			// exactly the disk rate leaves no time for overheads at any T.
			name:     "rate exactly at the formula-(2) bound",
			interval: 10 * second,
			budget:   1 << 30,
			streams:  []StreamParams{{Rate: 4e6, Chunk: 64 << 10}},
			admit:    false,
			reason:   "aggregate rate",
		},
		{
			// Split across two streams the aggregate still sits exactly on
			// the bound; the test is about the sum, not any one stream.
			name:     "aggregate rate exactly at the bound across streams",
			interval: 10 * second,
			budget:   1 << 30,
			streams:  []StreamParams{{Rate: 2e6, Chunk: 32 << 10}, {Rate: 2e6, Chunk: 32 << 10}},
			admit:    false,
			reason:   "aggregate rate",
		},
		{
			// Just below the bound the formula yields a finite (huge)
			// interval; a 10-minute T with a deep buffer really admits it.
			name:     "rate just below the bound",
			interval: 600 * second,
			budget:   1 << 40,
			streams:  []StreamParams{{Rate: 4e6 - 8e3, Chunk: 64 << 10}},
			admit:    true,
		},
		{
			// A sufficient interval but a starved buffer budget fails on
			// formula (8), not on the rate test.
			name:     "buffer budget exhausted",
			interval: second,
			budget:   100, // B_i alone is ~2*(T*R+C) ≫ 100
			streams:  []StreamParams{mpeg1},
			admit:    false,
			reason:   "buffer memory exhausted",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := p.Admit(tc.interval, tc.budget, tc.streams)
			if tc.admit {
				if err != nil {
					t.Fatalf("Admit = %v, want admit", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Admit succeeded, want rejection")
			}
			var ae *AdmissionError
			if !errors.As(err, &ae) {
				t.Fatalf("Admit error type %T, want *AdmissionError", err)
			}
			if !strings.Contains(ae.Reason, tc.reason) {
				t.Fatalf("Reason = %q, want substring %q", ae.Reason, tc.reason)
			}
		})
	}
}

func TestRequiredIntervalEdges(t *testing.T) {
	p := edgeParams()

	if got, err := p.RequiredInterval(nil); err != nil || got != 0 {
		t.Errorf("RequiredInterval(nil) = %v, %v; want 0, nil", got, err)
	}

	// At the bound the formula divides by zero; the implementation must
	// reject instead.
	if _, err := p.RequiredInterval([]StreamParams{{Rate: p.D, Chunk: 1}}); err == nil {
		t.Error("RequiredInterval at R_total == D should fail")
	}

	// The returned minimum interval is itself admissible, and shaving it
	// is not: T_min is tight.
	streams := []StreamParams{{Rate: 1e6, Chunk: 64 << 10}, {Rate: 5e5, Chunk: 32 << 10}}
	tmin, err := p.RequiredInterval(streams)
	if err != nil {
		t.Fatalf("RequiredInterval: %v", err)
	}
	if tmin <= 0 {
		t.Fatalf("RequiredInterval = %v, want > 0", tmin)
	}
	if err := p.Admit(tmin, 1<<40, streams); err != nil {
		t.Errorf("Admit at T_min: %v, want admit", err)
	}
	if err := p.Admit(tmin-sim.Time(time.Millisecond), 1<<40, streams); err == nil {
		t.Error("Admit just below T_min succeeded, want rejection")
	}
}

func TestOtherTrafficSaturatesInterval(t *testing.T) {
	p := edgeParams()
	second := sim.Time(time.Second)
	stream := []StreamParams{{Rate: 187500, Chunk: 64 << 10}}

	// With modest other traffic the one-second interval admits the stream.
	if err := p.Admit(second, 64<<20, stream); err != nil {
		t.Fatalf("baseline Admit: %v, want admit", err)
	}

	// Formula (9): O_other grows linearly in B_other. Blow it up until the
	// overhead alone consumes the whole interval — one 4 MB non-real-time
	// block takes a full second of disk time at D = 4 MB/s.
	p.Bother = 4 << 20
	if got := p.OtherOverhead(); got <= second {
		t.Fatalf("OtherOverhead = %v, want > 1s with saturating B_other", got)
	}
	err := p.Admit(second, 64<<20, stream)
	if err == nil {
		t.Fatal("Admit succeeded with other-traffic overhead exceeding the interval")
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || !strings.Contains(ae.Reason, "interval time too short") {
		t.Fatalf("error = %v, want interval-too-short AdmissionError", err)
	}
}

func TestOverheadFormulaEdges(t *testing.T) {
	p := edgeParams()

	// Formulas (11)-(12) at the batch-size corners.
	if got := p.SeekOverhead(0); got != 0 {
		t.Errorf("SeekOverhead(0) = %v, want 0", got)
	}
	if got := p.SeekOverhead(1); got != p.TseekMax {
		t.Errorf("SeekOverhead(1) = %v, want TseekMax %v", got, p.TseekMax)
	}
	if got, want := p.SeekOverhead(2), 2*p.TseekMax; got != want {
		t.Errorf("SeekOverhead(2) = %v, want %v", got, want)
	}
	if got, want := p.SeekOverhead(5), 2*p.TseekMax+3*p.TseekMin; got != want {
		t.Errorf("SeekOverhead(5) = %v, want %v", got, want)
	}

	if got := p.TotalOverhead(0); got != 0 {
		t.Errorf("TotalOverhead(0) = %v, want 0", got)
	}
	if p.TotalOverhead(2) <= p.TotalOverhead(1) {
		t.Error("TotalOverhead must grow with the batch")
	}

	// Formula (7): double-buffering one interval of data plus chunk slack.
	s := StreamParams{Rate: 1e6, Chunk: 1 << 16}
	tI := sim.Time(time.Second)
	if got, want := BufferPerStream(tI, s), int64(2*(1e6+1<<16)); got != want {
		t.Errorf("BufferPerStream = %d, want %d", got, want)
	}
	if got := TotalBuffer(tI, nil); got != 0 {
		t.Errorf("TotalBuffer(nil) = %d, want 0", got)
	}
}
