package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

// mcastConfig is the baseline multicast-enabled configuration the unit
// tests share: a 2-second batching window and a prefix budget generous
// enough that accounting refusals only happen when a test asks for them.
func mcastConfig() Config {
	return Config{
		BatchWindow:    2 * time.Second,
		PrefixBudget:   16 << 20,
		PrefixMinOpens: 99, // popularity off unless the test lowers it
	}
}

// TestMulticastBatchedJoin: a second open on the same path inside the
// batching window rides the first stream's group — one set of disk ops,
// fan-out at the cycle edge, and a delivered sequence with no losses.
func TestMulticastBatchedJoin(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 8*time.Second)
	newBed(t, 11, ufs.Options{}, mcastConfig(),
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open feed: %v", err)
			}
			feed.Start(th)
			th.Sleep(300 * time.Millisecond)
			mem, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open member: %v", err)
			}
			if !mem.MulticastMember() {
				t.Fatalf("second open inside the window is not a fan-out member")
			}
			if feed.MulticastMember() {
				t.Errorf("the feed itself reports fan-out membership")
			}
			mem.Start(th)

			done := false
			var memLost int
			b.k.NewThread("mem-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, memLost = goldenPlay(b, th2, mem, 150)
				done = true
			})
			if _, lost := goldenPlay(b, th, feed, 150); lost != 0 {
				t.Errorf("feed lost %d frames", lost)
			}
			for !done {
				th.Sleep(100 * time.Millisecond)
			}
			if memLost != 0 {
				t.Errorf("member lost %d frames", memLost)
			}

			ms := mem.StreamStats()
			if ms.ChunksFromGroup == 0 {
				t.Errorf("member stamped no chunks from the group fan-out")
			}
			if ms.ReadsIssued != 0 {
				t.Errorf("member issued %d disk reads while fanned out", ms.ReadsIssued)
			}
			st := b.cras.Stats()
			if st.MulticastGroups != 1 || st.MulticastAttached != 1 {
				t.Errorf("groups=%d attached=%d, want 1 and 1", st.MulticastGroups, st.MulticastAttached)
			}
			if st.MulticastFanout == 0 {
				t.Errorf("no cycle-edge fan-out recorded")
			}
			mem.Close(th)
			feed.Close(th)
			if got := b.cras.mcast.fanout; got != 0 {
				t.Errorf("fan-out reservation leaked after close: %d", got)
			}
			if n := len(b.cras.mcast.groups); n != 0 {
				t.Errorf("%d groups survive after every participant closed", n)
			}
		})
}

// TestMulticastWindowExpiry: past the batching window, with no pinned
// prefix to bridge the gap, an open on the same path is a plain stream.
func TestMulticastWindowExpiry(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 8*time.Second)
	cfg := mcastConfig()
	cfg.BatchWindow = 500 * time.Millisecond
	newBed(t, 12, ufs.Options{}, cfg,
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			a, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			a.Start(th)
			th.Sleep(2 * time.Second)
			late, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("late open: %v", err)
			}
			if late.MulticastMember() {
				t.Errorf("open %v past a %v window joined a group", 2*time.Second, cfg.BatchWindow)
			}
			late.Close(th)
			a.Close(th)
		})
}

// TestMulticastBudgetRefusal: a fan-out charge that does not fit beside the
// committed reservations is refused and the open falls through to plain
// disk admission — the member ladder never rejects a viewer it could serve
// the ordinary way.
func TestMulticastBudgetRefusal(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 8*time.Second)
	cfg := mcastConfig()
	cfg.PrefixBudget = 4 << 10 // far below one member's FanoutBytes
	newBed(t, 13, ufs.Options{}, cfg,
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			a, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			a.Start(th)
			th.Sleep(200 * time.Millisecond)
			c, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("refused open did not fall back to plain admission: %v", err)
			}
			if c.MulticastMember() {
				t.Errorf("member admitted past an exhausted prefix budget")
			}
			if got := b.cras.Stats().MulticastRefused; got == 0 {
				t.Errorf("no MulticastRefused recorded")
			}
			c.Close(th)
			a.Close(th)
		})
}

// TestMulticastPromotion: when the feed closes mid-play the earliest member
// is promoted to feed the group from disk, and every survivor plays on with
// zero frame loss.
func TestMulticastPromotion(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 10*time.Second)
	newBed(t, 14, ufs.Options{}, mcastConfig(),
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open feed: %v", err)
			}
			feed.Start(th)
			th.Sleep(200 * time.Millisecond)
			m1, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open m1: %v", err)
			}
			m1.Start(th)
			th.Sleep(200 * time.Millisecond)
			m2, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open m2: %v", err)
			}
			m2.Start(th)

			var lost [2]int
			done := [2]bool{}
			b.k.NewThread("m1-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, lost[0] = goldenPlay(b, th2, m1, 200)
				done[0] = true
			})
			b.k.NewThread("m2-player", rtm.PrioRTLow, 0, func(th2 *rtm.Thread) {
				_, lost[1] = goldenPlay(b, th2, m2, 200)
				done[1] = true
			})
			th.Sleep(2 * time.Second)
			feed.Close(th) // the group survives the feed
			for !done[0] || !done[1] {
				th.Sleep(100 * time.Millisecond)
			}
			if lost[0] != 0 || lost[1] != 0 {
				t.Errorf("survivors lost frames after feed close: m1 %d, m2 %d", lost[0], lost[1])
			}
			st := b.cras.Stats()
			if st.MulticastPromotions != 1 {
				t.Errorf("promotions=%d, want 1 (earliest member takes over)", st.MulticastPromotions)
			}
			if m1.MulticastMember() {
				t.Errorf("promoted member still reports fan-out membership")
			}
			if !m2.MulticastMember() && st.MulticastFallbacks == 0 {
				t.Errorf("second member left the group with no fallback recorded")
			}
			m1.Close(th)
			m2.Close(th)
		})
}

// TestMulticastSeekFallback: a member that seeks breaks the temporal
// overlap and falls back to disk, one-way; a feed that seeks breaks up the
// whole group the same way.
func TestMulticastSeekFallback(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 10*time.Second)
	newBed(t, 15, ufs.Options{}, mcastConfig(),
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open feed: %v", err)
			}
			feed.Start(th)
			th.Sleep(200 * time.Millisecond)
			m1, _ := b.cras.Open(th, movie, "/hot", OpenOptions{})
			m1.Start(th)
			th.Sleep(200 * time.Millisecond)
			m2, _ := b.cras.Open(th, movie, "/hot", OpenOptions{})
			m2.Start(th)

			m1.Seek(th, 3*time.Second)
			if m1.MulticastMember() {
				t.Errorf("seeking member still fanned out")
			}
			if got := b.cras.Stats().MulticastFallbacks; got != 1 {
				t.Errorf("fallbacks=%d after member seek, want 1", got)
			}

			feed.Seek(th, 4*time.Second)
			if m2.MulticastMember() {
				t.Errorf("member still fanned out after the feed seeked")
			}
			if n := len(b.cras.mcast.groups); n != 0 {
				t.Errorf("%d groups survive the feed's seek", n)
			}
			if got := b.cras.mcast.fanout; got != 0 {
				t.Errorf("fan-out reservation leaked after breakup: %d", got)
			}
			// One-way for members: a fallen-back stream may later feed a NEW
			// group (it is a plain disk stream again, like a promoted cache
			// follower), but it never re-enters one as a member.
			if cand := b.cras.mcastCandidate(openReq{path: "/hot", info: movie}, b.k.Now()); cand != nil && cand.mcastMember {
				t.Errorf("candidate feed %d is still a fan-out member", cand.id)
			}
			m1.Close(th)
			m2.Close(th)
			feed.Close(th)
		})
}

// TestMulticastRateChangeFallback: SetRate desynchronizes the clocks the
// fan-out relies on, member and feed alike.
func TestMulticastRateChangeFallback(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 10*time.Second)
	newBed(t, 16, ufs.Options{}, mcastConfig(),
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open feed: %v", err)
			}
			feed.Start(th)
			th.Sleep(200 * time.Millisecond)
			m1, _ := b.cras.Open(th, movie, "/hot", OpenOptions{})
			m1.Start(th)

			m1.SetRate(th, 2.0)
			if m1.MulticastMember() {
				t.Errorf("member still fanned out after its rate change")
			}
			if got := b.cras.Stats().MulticastFallbacks; got != 1 {
				t.Errorf("fallbacks=%d after member rate change, want 1", got)
			}
			m1.Close(th)
			feed.Close(th)
		})
}

// TestPrefixQualifyAndJoin: the popularity tracker qualifies a title at its
// second open, the producer pins the head as it streams by, and a viewer
// arriving past the batching window is backfilled from the pins and rides
// the in-flight group — the instant-start the prefix exists for.
func TestPrefixQualifyAndJoin(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 12*time.Second)
	cfg := mcastConfig()
	cfg.BatchWindow = 1 * time.Second
	cfg.PrefixMinOpens = 2
	newBed(t, 17, ufs.Options{}, cfg,
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			feed, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open feed: %v", err)
			}
			feed.Start(th)
			th.Sleep(300 * time.Millisecond)
			m1, err := b.cras.Open(th, movie, "/hot", OpenOptions{}) // 2nd open qualifies the title
			if err != nil {
				t.Fatalf("open m1: %v", err)
			}
			m1.Start(th)
			if got := b.cras.Stats().PrefixPaths; got != 1 {
				t.Fatalf("PrefixPaths=%d after the qualifying open, want 1", got)
			}

			th.Sleep(2 * time.Second) // well past the 1 s batching window
			late, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open late viewer: %v", err)
			}
			if !late.MulticastMember() {
				t.Fatalf("late viewer did not join via the pinned prefix")
			}
			if !late.PrefixStarted() {
				t.Errorf("late viewer's head was not served from prefix pins")
			}
			late.Start(th)
			if _, lost := goldenPlay(b, th, late, 120); lost != 0 {
				t.Errorf("prefix-started viewer lost %d frames", lost)
			}

			st := b.cras.Stats()
			if st.PrefixStarts == 0 || st.PrefixHits == 0 {
				t.Errorf("prefix service invisible: starts=%d hits=%d", st.PrefixStarts, st.PrefixHits)
			}
			if st.PrefixPinnedPeak == 0 {
				t.Errorf("nothing was ever pinned")
			}
			pinned := b.cras.mcast.pinned
			if pinned == 0 {
				t.Errorf("no pinned prefix bytes while the title is hot")
			}
			late.Close(th)
			m1.Close(th)
			feed.Close(th)
			// Pins outlive every session: they belong to the title.
			if b.cras.mcast.pinned != pinned {
				t.Errorf("prefix pins changed across closes: %d -> %d", pinned, b.cras.mcast.pinned)
			}
		})
}

// TestPrefixTruncation: a producer whose stamp pointer passed the pin point
// before the title qualified cannot vouch for the head; it stops
// contributing (PrefixTruncated) and the next fresh open on the path picks
// the pin growth back up from chunk 0.
func TestPrefixTruncation(t *testing.T) {
	movie := media.MPEG1().Generate("/hot", 12*time.Second)
	cfg := mcastConfig()
	cfg.BatchWindow = 200 * time.Millisecond
	cfg.PrefixMinOpens = 2
	newBed(t, 18, ufs.Options{}, cfg,
		map[string]*media.StreamInfo{"/hot": movie},
		func(b *bed, th *rtm.Thread) {
			a, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			a.Start(th)
			// Play far enough that chunk 0 has left a's buffer for good.
			if _, lost := goldenPlay(b, th, a, 120); lost != 0 {
				t.Errorf("viewer a lost %d frames", lost)
			}
			// The qualifying open arrives past the window: a plain stream
			// playing from chunk 0, which becomes the prefix's producer.
			fresh, err := b.cras.Open(th, movie, "/hot", OpenOptions{})
			if err != nil {
				t.Fatalf("fresh open: %v", err)
			}
			if fresh.MulticastMember() {
				t.Fatalf("fresh open joined a group despite the expired window")
			}
			fresh.Start(th)
			th.Sleep(3 * time.Second)
			st := b.cras.Stats()
			if st.PrefixTruncated == 0 {
				t.Errorf("the passed-by producer was never truncated")
			}
			if b.cras.mcast.pinned == 0 {
				t.Errorf("the fresh producer pinned nothing from chunk 0")
			}
			pp := b.cras.prefixFor("/hot")
			if pp == nil {
				t.Fatalf("no prefix entry for the qualified title")
			}
			for i, c := range pp.pins {
				if c.Index != i {
					t.Fatalf("pins not contiguous from 0: pins[%d].Index=%d", i, c.Index)
				}
			}
			fresh.Close(th)
			a.Close(th)
		})
}

// TestPopularityDecay exercises the tracker arithmetic directly: counts
// decay with the configured half-life and are kept per path.
func TestPopularityDecay(t *testing.T) {
	s := &Server{}
	if got := s.popNote("/a", 0); got != 1 {
		t.Errorf("first open count=%v, want 1", got)
	}
	if got := s.popNote("/b", 0); got != 1 {
		t.Errorf("paths share a counter: /b first open count=%v", got)
	}
	got := s.popNote("/a", popHalfLife)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("count after one half-life=%v, want 1.5", got)
	}
	got = s.popNote("/a", popHalfLife) // no time passed: no decay
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("immediate reopen count=%v, want 2.5", got)
	}
}

// TestFanoutChargeDominatesBuffer: FanoutBytes is never below B_i, so a
// member falling back to a plain stream never increases the admission
// memory — the invariant the one-way fallback depends on.
func TestFanoutChargeDominatesBuffer(t *testing.T) {
	s := &Server{cfg: Config{Interval: 500 * time.Millisecond}}
	for _, gap := range []time.Duration{0, 700 * time.Millisecond, 5 * time.Second} {
		par := StreamParams{Rate: 1.2e6, Chunk: 64 << 10}
		charge := s.mcastFanoutCharge(gap, par)
		if bi := BufferPerStream(s.cfg.Interval, par); charge < bi {
			t.Errorf("gap %v: FanoutBytes %d < B_i %d", gap, charge, bi)
		}
	}
}
