package core

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/ufs"
)

// First-class VCR operations and the adaptive frame-rate ladder.
//
// The paper punts interactivity: fast-forward is deferred to UFS frame
// skipping, and pause/seek are never modeled. This file makes them
// first-class server operations with honest admission semantics:
//
//   - Pause freezes the logical clock and the fetch machinery while the
//     buffers stay pinned. The stream drops into the paused resource class
//     (StreamParams.Paused): full memory charge, zero disk charge. Resume
//     is a fresh admission at the unpaused charge and can be refused.
//   - Seek and SetRate run full re-admission at the new position/rate. A
//     refusal is a typed *VCRError with a RetryAfter hint and leaves the
//     stream exactly as it was. A seek that lands inside a follower's
//     pinned cache interval re-validates the gap contract and keeps its
//     pins instead of falling back to disk.
//   - Negative rates deliver in reverse (rewind) by walking the chunk
//     table backwards over the extent map; super-unit and reduced rates
//     skip frames via the retainChunk subsequence, clustered into groups
//     whose holes are wide enough to skip whole filesystem blocks.
//   - The adaptive frame-rate ladder (Config.RateLadder, after Tan &
//     Chou's frame-rate optimization framework) gives every stream a
//     DeliveredRate: the fraction of frames actually fetched and stamped.
//     The recovery engine steps it down instead of suspending, admission
//     walks new opens down the rungs instead of rejecting (reduced-rate
//     warm-up), and a once-per-cycle promotion pass steps streams back up
//     when spare interval time reappears.

// ErrVCRRefused is the sentinel errors.Is matches for refused VCR
// operations; the concrete error is *VCRError.
var ErrVCRRefused = errors.New("cras: vcr operation refused")

// VCRError is the typed refusal for a pause/resume/seek/rate operation
// that failed re-admission. The stream is left untouched: the client keeps
// the service level it had and may retry after RetryAfter.
type VCRError struct {
	Op         string   // "pause", "resume", "seek", "setrate"
	RetryAfter sim.Time // when a retry has a chance: the next interval edge
	Reason     string
	Cause      error // the underlying *AdmissionError, when admission refused
}

func (e *VCRError) Error() string {
	return fmt.Sprintf("cras: %s refused (%s); retry after %v", e.Op, e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrVCRRefused) work and exposes the
// admission cause to errors.As.
func (e *VCRError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrVCRRefused}
	}
	return []error{ErrVCRRefused, e.Cause}
}

// vcrRefusal builds the typed refusal; RetryAfter is one interval — the
// admission picture can only change at a cycle edge.
func (s *Server) vcrRefusal(op, reason string, cause error) *VCRError {
	return &VCRError{Op: op, RetryAfter: s.cfg.Interval, Reason: reason, Cause: cause}
}

// ---- re-admission plumbing ----

// readmitSet is the admission set for re-admitting st at changed terms:
// every other open stream at its current charge, except participants this
// operation would strand — the followers of st-as-leader and the members
// of st-as-feed — which are priced as the plain disk streams the detach
// will leave them as (matching cacheDetach/mcastDetach exactly), so the
// test can never pass on charges the detach is about to change.
func (s *Server) readmitSet(st *stream) []StreamParams {
	var set []StreamParams
	for _, other := range s.streams {
		if other.closed || other == st {
			continue
		}
		par := other.par
		if s.strandedBy(st, other) {
			par = StreamParams{Rate: par.Rate, Chunk: par.Chunk}
		}
		set = append(set, par) //crasvet:allow hotalloc -- re-admission set built once per VCR op or promotion attempt, not per steady cycle
	}
	return set
}

// strandedBy reports whether a VCR operation on st detaches other: other
// follows st's path cache with st as leader, or rides st's fan-out group
// with st as feed.
func (s *Server) strandedBy(st, other *stream) bool {
	if st.pc != nil && st.pc.leader == st && other.pc == st.pc && other.cached {
		return true
	}
	if st.mg != nil && st.mg.feed == st && other.mg == st.mg && other.mcastMember {
		return true
	}
	return false
}

// ---- the delivered-rate ladder ----

// ladderBelow returns the highest configured rung strictly below dr.
func (s *Server) ladderBelow(dr float64) (float64, bool) {
	best, ok := 0.0, false
	for _, r := range s.cfg.RateLadder {
		if r < dr-1e-9 && r > best {
			best, ok = r, true
		}
	}
	return best, ok
}

// ladderAbove returns the next delivered rate above dr: the smallest
// configured rung greater than dr, or full rate if no rung is between.
func (s *Server) ladderAbove(dr float64) (float64, bool) {
	if dr >= 1-1e-9 {
		return 0, false
	}
	best := 1.0
	for _, r := range s.cfg.RateLadder {
		if r > dr+1e-9 && r < best {
			best = r
		}
	}
	return best, true
}

// ladderSnap quantizes a requested delivered rate to the configured
// ladder: the highest rung at or below want. With no ladder (or no rung
// at or below), want passes through unchanged — the cluster's degraded
// re-admission uses exact fractions without a ladder configured.
func (s *Server) ladderSnap(want float64) float64 {
	best := 0.0
	for _, r := range s.cfg.RateLadder {
		if r <= want+1e-9 && r > best {
			best = r
		}
	}
	if best > 0 {
		return best
	}
	return want
}

// admitLadder finds the highest delivered rate at or below want at which
// st fits the server at velocity vel (the clock-rate magnitude): want
// first, then every ladder rung below it. Recording sessions never skip
// frames, so they only ever try want. Returns the admitted plain params
// and the delivered rate, or the last admission error.
func (s *Server) admitLadder(st *stream, vel, want float64) (StreamParams, float64, error) {
	set := s.readmitSet(st)
	try := func(dr float64) (StreamParams, error) {
		par := s.volParams(StreamParams{Rate: st.baseRate * vel * dr, Chunk: st.par.Chunk})
		return par, s.admit(append(set, par))
	}
	par, err := try(want)
	if err == nil {
		return par, want, nil
	}
	if !st.record {
		dr := want
		for {
			next, ok := s.ladderBelow(dr)
			if !ok {
				break
			}
			dr = next
			if par, e := try(dr); e == nil {
				return par, dr, nil
			}
		}
	}
	return StreamParams{}, 0, err
}

// applyRateShape rescales the fetch machinery that depends on the stream's
// admission rate: buffer capacity (grow-only — shrinking under resident
// data from the faster rate would overflow until the window drains),
// per-cycle byte cap, horizon lead, and the whole-extent read policy
// (disabled below full delivered rate, where the skip holes are the point).
func (s *Server) applyRateShape(st *stream, vel float64) {
	if cp := s.bufferCapacity(st.par); cp > st.buf.Capacity() {
		st.buf.SetCapacity(cp)
	}
	st.cycleCap = 2 * (int64(s.cfg.Interval.Seconds()*st.par.Rate) + st.par.Chunk)
	leadReal := s.cfg.Interval
	if extra := s.cfg.InitialDelay - 2*s.cfg.Interval; extra > 0 {
		leadReal += extra
	}
	st.lead = sim.Time(float64(leadReal) * vel)
	st.wholeExtents = st.dr >= 1 && st.rev == nil &&
		int64(leadReal.Seconds()*st.par.Rate) >= int64(s.cfg.MaxRead)
}

// ladderStepDown is the recovery engine's alternative to suspension: a
// Degraded stream that has burned its failure budget drops one rung of
// delivered rate — fewer frames, less disk time over the bad region —
// instead of freezing. Plain forward playback only: cache followers and
// fan-out members issue no reads to shed, recorders must capture every
// frame, and paused/reversed streams are already off the steady path.
// Stepping down needs no admission test — it strictly reduces load.
func (s *Server) ladderStepDown(st *stream, now sim.Time) bool {
	if len(s.cfg.RateLadder) == 0 || st.record || st.paused || st.rev != nil ||
		st.cached || st.mcastMember || st.par.Cached || st.par.Multicast || st.par.Paused {
		return false
	}
	next, ok := s.ladderBelow(st.dr)
	if !ok {
		return false
	}
	vel := st.clock.Rate()
	st.par = s.volParams(StreamParams{Rate: st.baseRate * vel * next, Chunk: st.par.Chunk})
	st.dr = next
	st.stepCycle = s.cycle
	st.degradedErrs = 0
	st.cleanCycles = 0
	s.applyRateShape(st, vel)
	s.stats.RateStepDowns++
	s.k.Engine().Tracef("cras: stream %d (%s) delivered rate stepped down to %.2f instead of suspending", //crasvet:allow hotalloc -- formats once per ladder move, not per cycle
		st.id, st.name, next)
	return true
}

// ladderPromoteStep runs once per scheduler cycle: the first Healthy
// reduced-rate stream (in open order) that has held its rung for
// RecoverCycles is offered the rung above, if admission has room. One
// attempt per cycle keeps recovery paced — capacity that reappears is
// handed back a rung at a time, never as a thundering rebound.
func (s *Server) ladderPromoteStep(now sim.Time) {
	if len(s.cfg.RateLadder) == 0 {
		return
	}
	for _, st := range s.streams {
		if st.closed || st.paused || st.record || st.rev != nil ||
			st.cached || st.mcastMember || st.health != Healthy || st.dr >= 1-1e-9 {
			continue
		}
		if s.cycle-st.stepCycle < s.cfg.Recovery.RecoverCycles {
			continue
		}
		next, ok := s.ladderAbove(st.dr)
		if !ok {
			continue
		}
		vel := st.clock.Rate()
		par := s.volParams(StreamParams{Rate: st.baseRate * vel * next, Chunk: st.par.Chunk})
		if s.admit(append(s.readmitSet(st), par)) != nil { //crasvet:allow hotalloc -- one admission probe per cycle, only while a reduced stream awaits promotion
			return // no spare interval time this cycle; keep the rung
		}
		st.par = par
		st.dr = next
		st.stepCycle = s.cycle
		s.applyRateShape(st, vel)
		s.stats.RateStepUps++
		s.k.Engine().Tracef("cras: stream %d (%s) delivered rate recovered to %.2f", //crasvet:allow hotalloc -- formats once per ladder move, not per cycle
			st.id, st.name, next)
		return // one promotion attempt per cycle
	}
}

// ---- pause / resume ----

func (s *Server) handlePause(r pauseReq, now sim.Time) opResp {
	st := s.session(r.id, now)
	if st == nil {
		return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
	}
	if st.record {
		return opResp{err: s.vcrRefusal("pause", "recording sessions cannot pause", nil)}
	}
	if st.paused {
		return opResp{} // idempotent
	}
	if st.rev != nil {
		// Pausing a rewind freezes the picture; Resume plays forward from
		// the rewind head, like a deck coming out of REW.
		s.exitReverse(st, now)
	}
	// A paused clock breaks the temporal overlap cache pairs and fan-out
	// groups rely on: partners keep advancing while this stream stands
	// still, so the gap contract is gone the moment the clock freezes.
	if st.pc != nil && st.pc.leader == st {
		s.cacheDetachAll(st.pc, "leader paused")
	} else if st.cached {
		s.cacheFallback(st, "pause")
	}
	if st.mg != nil && st.mg.feed == st {
		s.mcastBreakup(st.mg, now, "feed paused")
	} else if st.mcastMember {
		s.mcastFallback(st, now, "pause")
	}
	st.paused = true
	st.par.Paused = true
	st.clock.Pause(now)
	s.stats.Pauses++
	return opResp{}
}

func (s *Server) handleResume(r resumeReq, now sim.Time) opResp {
	st := s.session(r.id, now)
	if st == nil {
		return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
	}
	if !st.paused {
		return opResp{} // idempotent
	}
	// Resume is a fresh admission at the unpaused charge: the paused
	// stream held its memory but gave up its slot in the interval's disk
	// schedule, and the server may have admitted others into it. The
	// ladder softens the refusal — a stream that no longer fits at its
	// old delivered rate may still fit a rung down.
	vel := st.clock.Rate()
	par, dr, err := s.admitLadder(st, vel, st.dr)
	if err != nil {
		s.stats.AdmissionRejects++
		s.stats.ResumesRefused++
		return opResp{err: s.vcrRefusal("resume", "re-admission failed; stream stays paused", err)}
	}
	st.par = par
	st.dr = dr
	st.paused = false
	st.clock.Resume(now)
	s.applyRateShape(st, vel)
	s.stats.Resumes++
	return opResp{}
}

// ---- seek ----

func (s *Server) handleSeek(r seekReq, now sim.Time) opResp {
	st := s.session(r.id, now)
	if st == nil {
		return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
	}
	s.stats.Seeks++
	// Seek-to-current is an exact no-op: no detach, no re-admission, no
	// buffer reset — the golden equivalence the test layer proves.
	if st.rev == nil && r.logical == st.clock.At(now) {
		return opResp{}
	}
	if st.rev != nil {
		if r.logical == st.rev.mediaPos {
			return opResp{}
		}
		// Repositioning a rewind: same velocity, same admission charge —
		// just move the head and drop the scheduled window.
		st.gen++
		st.pending = st.pending[:0]
		st.failedRanges = nil
		st.skipped = st.skipped[:0]
		st.buf.Reset()
		s.setReversePoint(st, r.logical)
		return opResp{}
	}
	// Fast path: a follower seeking inside its leader's pinned interval
	// re-validates the gap contract and keeps its pins.
	if st.cached && !st.paused {
		if resp, handled := s.cacheSeekRevalidate(st, r.logical, now); handled {
			return resp
		}
	}
	// Full path. The admission set only changes when the seek detaches
	// someone — this stream leaving a cache/group, or stranding its
	// dependents — so that is when re-admission must pass first; a plain
	// stream's charges are position-independent and its seek (today's
	// only case) always succeeds, force-opened streams included.
	plain := StreamParams{Rate: st.par.Rate, Chunk: st.par.Chunk, Paused: st.par.Paused}
	detaches := st.cached || st.mcastMember || st.par.Cached || st.par.Multicast ||
		(st.pc != nil && st.pc.leader == st && len(st.pc.followers) > 0) ||
		(st.mg != nil && st.mg.feed == st && len(st.mg.members) > 0)
	if detaches {
		if err := s.admit(append(s.readmitSet(st), plain)); err != nil {
			s.stats.AdmissionRejects++
			s.stats.SeeksRefused++
			return opResp{err: s.vcrRefusal("seek", "re-admission at the new position failed", err)}
		}
	}
	// A seek breaks the temporal overlap the cache relies on: a seeking
	// follower detaches, a seeking leader strands its followers. The
	// fan-out contract breaks the same way: a seeking member falls back
	// to disk through the one-cycle fallback path, a seeking feed breaks
	// up its group.
	if st.pc != nil && st.pc.leader == st {
		s.cacheDetachAll(st.pc, "leader seeked")
	} else if st.cached {
		s.cacheFallback(st, "seek")
	}
	if st.mg != nil && st.mg.feed == st {
		s.mcastBreakup(st.mg, now, "feed seeked")
	} else if st.mcastMember {
		s.mcastFallback(st, now, "seek")
	}
	if detaches {
		st.par = plain
	}
	st.clock.Seek(now, r.logical)
	st.seekTo(r.logical)
	// A disk-path seek is a new play point and pays the open's re-buffer
	// window again: the clock holds the target until the fetch pipeline has
	// had an initial delay to warm, exactly like crs_play. (The pin-backed
	// fast path above is instant — its data is already resident — and a
	// paused stream's clock stays frozen until Resume.)
	if !st.paused {
		st.clock.Start(now, now+s.cfg.InitialDelay)
	}
	return opResp{}
}

// cacheSeekRevalidate is the gap-contract re-validation a follower's seek
// must pass before reusing its pins — the latent bug class this layer
// fixes. A seek landing inside the leader's pinned interval changes the
// follower's gap, and with it the pin bytes the follower will hold in
// steady state: seeking backward widens the interval, and silently reusing
// the old (smaller) reservation would under-charge the cache budget by the
// difference — pinned bytes no reservation accounts for, crowding out
// other paths' pins until their followers miss and fall back. So the seek
// re-prices the reservation at the new gap, re-runs admission at the new
// CacheBytes charge, and only then moves the clock — keeping the pins and
// the zero-disk service. A target outside the pinned interval (or a
// reservation that no longer fits) falls through to the full seek path,
// which detaches honestly. Returns handled=false to request the full path.
func (s *Server) cacheSeekRevalidate(st *stream, target sim.Time, now sim.Time) (opResp, bool) {
	pc := st.pc
	if pc == nil || pc.leader == st || s.cacheLeaderGone(st) {
		return opResp{}, false
	}
	leader := pc.leader
	lead := leader.clock.At(now)
	if target < s.cacheFloor(leader, now) || target >= lead {
		return opResp{}, false // outside the pinned interval
	}
	gap := lead - target
	newRes := s.cachePinReservation(gap, st.par)
	if s.icache.committed-st.cachePinCharge+newRes > s.icache.budget {
		return opResp{}, false // widened interval does not fit the pin budget
	}
	par := st.par
	par.CacheBytes = s.cacheCharge(gap, par)
	if s.admit(append(s.readmitSet(st), par)) != nil {
		// The re-priced pinned interval does not fit the memory budget;
		// the full path decides between plain-stream service and refusal.
		return opResp{}, false
	}
	s.icache.committed += newRes - st.cachePinCharge
	st.cachePinCharge = newRes
	st.par = par
	st.clock.Seek(now, target)
	st.seekTo(target)
	idx := st.info.ChunkAt(target)
	if idx < 0 {
		idx = len(st.info.Chunks)
	}
	st.cacheFrom = idx
	// The repositioned follower has zero stamp slack: nextStamp now equals
	// the clock position, and the next cycle-edge stamp pass runs up to a
	// full interval from now — by which time the follower's own advancing
	// clock has let the leader's pin discard release exactly the chunks it
	// needs. A fresh attach hides this behind the initial delay; the instant
	// pin-backed seek instead advances the promise pointer and stamps the
	// resident window synchronously — the data is in memory, which is the
	// point of keeping the pins.
	s.cacheAdvance(st, st.clock.At(now+2*s.cfg.Interval)+st.lead)
	if st.cached {
		s.cacheStamp(st, now)
	}
	s.stats.SeekRevalidations++
	s.k.Engine().Tracef("cras: stream %d seek to %v re-validated gap contract (gap %v, reservation %d)", //crasvet:allow hotalloc -- formats once per revalidated seek, not per cycle
		st.id, target, gap, newRes)
	return opResp{}, true
}

// ---- rate changes (fast-forward, slow motion, rewind) ----

func (s *Server) handleSetRate(r setRateReq, now sim.Time) opResp {
	st := s.session(r.id, now)
	if st == nil {
		return opResp{err: fmt.Errorf("cras: no such stream %d", r.id)}
	}
	if r.rate == 0 {
		return opResp{err: s.vcrRefusal("setrate", "rate 0 is Pause, not a playback rate", nil)}
	}
	if st.paused {
		return opResp{err: s.vcrRefusal("setrate", "stream is paused; resume first", nil)}
	}
	if st.record && r.rate < 0 {
		return opResp{err: s.vcrRefusal("setrate", "recording sessions cannot run in reverse", nil)}
	}
	cur := st.clock.Rate()
	if st.rev != nil {
		cur = -st.rev.vel
	}
	// An exact no-op never detaches, never re-admits, never resets the
	// buffer — the golden equivalence the test layer proves.
	if r.rate == cur && st.dr >= 1 {
		return opResp{}
	}
	s.stats.RateChanges++
	vel := r.rate
	if vel < 0 {
		vel = -vel
	}
	par, dr, err := s.admitLadder(st, vel, 1)
	if err != nil {
		s.stats.AdmissionRejects++
		s.stats.RateRefused++
		return opResp{err: s.vcrRefusal("setrate",
			fmt.Sprintf("re-admission at rate %g failed", r.rate), err)} //crasvet:allow hotalloc -- formats once per refused rate change
	}
	// A rate change desynchronizes the clocks the cache pairs rely on: a
	// leader strands its followers, a follower can no longer trail.
	// Multicast groups desynchronize the same way.
	if st.pc != nil && st.pc.leader == st {
		s.cacheDetachAll(st.pc, "leader rate change")
	} else if st.cached {
		s.cacheFallback(st, "rate change")
	}
	if st.mg != nil && st.mg.feed == st {
		s.mcastBreakup(st.mg, now, "feed rate change")
	} else if st.mcastMember {
		s.mcastFallback(st, now, "rate change")
	}
	if r.rate > 0 {
		fromRev := st.rev != nil
		if fromRev {
			s.exitReverse(st, now)
		}
		st.par = par
		st.dr = dr
		st.clock.SetRate(now, r.rate)
		if fromRev {
			// Coming out of REW lands on a fresh play point with an empty
			// buffer; re-arm the initial delay so forward delivery resumes
			// from the head instead of permanently missing its first second.
			st.clock.Start(now, now+s.cfg.InitialDelay)
		}
		s.applyRateShape(st, r.rate)
	} else {
		s.enterReverse(st, now, -r.rate, par, dr)
	}
	return opResp{}
}

// ---- reverse delivery (rewind) ----

// revState is the scheduling head of a stream delivering in reverse. The
// logical clock cannot run backwards (a rewinding clock would suspend the
// time-driven discard while deliveries continue), so in reverse mode the
// clock runs FORWARD at unit rate as a pure delivery timeline: frames are
// stamped with ascending delivery timestamps while the media position
// walks the chunk table down. Get keys on delivery time as always; the
// chunk Index the viewer receives descends.
type revState struct {
	vel       float64  // media seconds rewound per delivery second (> 0)
	next      int      // next media chunk index to schedule (descending)
	mediaPos  sim.Time // media time of the rewind head (exit/seek anchor)
	deliverAt sim.Time // delivery-timeline due time of the next chunk
	done      bool     // the head reached the start of the media
	lowRead   int64    // lowest byte already scheduled in this descending run (-1: none)
}

// revRead links the disk reads covering one reverse-delivered chunk; the
// chunk stamps when its last read completes.
type revRead struct {
	idx     int      // media chunk index
	deliver sim.Time // delivery-timeline timestamp to stamp with
	dur     sim.Time // delivery-timeline hold (spans the skip holes behind it)
	size    int64
	left    int // covering reads not yet complete
	failed  bool
}

// enterReverse switches a forward stream to reverse delivery at velocity
// vel, starting from its current media position. par/dr were admitted by
// the caller. The fetch machinery is reset — reverse scheduling owns
// st.pending — and the clock becomes the delivery timeline.
func (s *Server) enterReverse(st *stream, now sim.Time, vel float64, par StreamParams, dr float64) {
	pos := st.clock.At(now)
	if st.rev != nil {
		pos = st.rev.mediaPos
	}
	st.gen++
	st.pending = st.pending[:0]
	st.failedRanges = nil
	st.skipped = st.skipped[:0]
	st.buf.Reset()
	st.par = par
	st.dr = dr
	st.rev = &revState{vel: vel}
	st.clock.SetRate(now, 1)
	// The rewind pays the same re-buffer window as any new play point: the
	// first reverse frame is due one initial delay out, so the pipeline is
	// warm before delivery starts instead of stamping the opening chunks
	// late.
	st.rev.deliverAt = st.clock.At(now) + s.cfg.InitialDelay
	s.setReversePoint(st, pos)
	s.applyRateShape(st, 1)
}

// setReversePoint positions the rewind head at the chunk covering the
// media time (seek-while-reversed shares it with enterReverse).
func (s *Server) setReversePoint(st *stream, pos sim.Time) {
	rev := st.rev
	idx := st.info.ChunkAt(pos)
	if idx < 0 {
		if pos >= st.info.TotalDuration() {
			idx = len(st.info.Chunks) - 1
		} else {
			idx = 0
		}
	}
	rev.next = idx
	rev.mediaPos = pos
	rev.done = idx < 0
	rev.lowRead = -1
}

// exitReverse returns the stream to forward mode at the rewind head — the
// deck keeps moving until Play lands — leaving the caller to set the new
// forward rate (Pause and positive SetRate both exit through here).
func (s *Server) exitReverse(st *stream, now sim.Time) {
	pos := st.rev.mediaPos
	st.rev = nil
	st.clock.Seek(now, pos)
	st.seekTo(pos)
}

// fetchReverse is the phase-2 step of a reversed stream: schedule
// block-aligned reads for every retained chunk whose delivery time falls
// before the horizon, walking the chunk table down. Skipped chunks
// (delivered rate below 1) consume delivery time — the rewind speed is
// vel regardless of how many frames survive — and the retained chunk
// behind each hole holds on screen across it.
func (s *Server) fetchReverse(st *stream, horizonAt sim.Time) []*readTag {
	rev := st.rev
	if rev.done {
		return nil
	}
	limit := st.clock.At(horizonAt) + st.lead
	chunks := st.info.Chunks
	fileEnd := alignUp(st.ext.Size, ufs.BlockSize)
	g := st.skipGroup()
	var tags []*readTag
	var cycleBytes int64
	for rev.deliverAt < limit && rev.next >= 0 {
		if st.cycleCap > 0 && cycleBytes >= st.cycleCap {
			break
		}
		idx := rev.next
		c := chunks[idx]
		step := sim.Time(float64(c.Duration) / rev.vel)
		if retainChunk(idx, st.dr, g) {
			// The frame holds until the next retained one: its delivery
			// window spans the skip holes below it, so Get never goes dark.
			dur := step
			for k := idx - 1; k >= 0 && !retainChunk(k, st.dr, g); k-- {
				dur += sim.Time(float64(chunks[k].Duration) / rev.vel)
			}
			rr := &revRead{idx: idx, deliver: rev.deliverAt, dur: dur, size: c.Size} //crasvet:allow hotalloc -- one record per reverse-delivered chunk, alive across the disk round-trip
			lo := c.Offset / ufs.BlockSize * ufs.BlockSize
			hi := alignUp(c.Offset+c.Size, ufs.BlockSize)
			if hi > fileEnd {
				hi = fileEnd
			}
			// The walk descends through contiguous media, so the block-aligned
			// read for the chunk above this one already covers the shared
			// boundary block. Clamp to the uncovered bytes — re-reading the
			// overlap would roughly double the per-cycle disk bytes when
			// chunks are smaller than a block, starving the cycle cap and
			// progressively dropping the rewind.
			if rev.lowRead >= 0 && hi > rev.lowRead {
				hi = rev.lowRead
			}
			if lo >= hi {
				// Every byte is already covered by reads in flight. A
				// pre-completed marker keeps the chunk's place in the
				// delivery-ordered pending queue without any disk work: it
				// stamps right after the covering read completes.
				st.pending = append(st.pending, &readTag{ //crasvet:allow hotalloc -- one marker per fully-covered reverse chunk, alive across the covering read's round-trip
					s: st, gen: st.gen, lo: lo, hi: lo, done: true, rev: rr,
				})
			} else {
				if rev.lowRead < 0 || lo < rev.lowRead {
					rev.lowRead = lo
				}
				ei := st.extentAt(lo)
				for lo < hi && ei < len(st.ext.Extents) {
					e := st.ext.Extents[ei]
					thi := e.FileOff + e.Bytes()
					if thi > hi {
						thi = hi
					}
					tag := &readTag{ //crasvet:allow hotalloc -- one tag per issued read, alive across the disk round-trip
						s: st, gen: st.gen,
						lo: lo, hi: thi,
						lba:     e.LBA + (lo-e.FileOff)/512,
						sectors: int((thi - lo) / 512),
						rev:     rr,
					}
					tags = append(tags, tag)             //crasvet:allow hotalloc -- per-cycle schedule list, handed to the batch scratch
					st.pending = append(st.pending, tag) //crasvet:allow hotalloc -- pending completion list; capacity retained across cycles
					rr.left++
					cycleBytes += thi - lo
					st.stats.BytesScheduled += thi - lo
					st.stats.ReadsIssued++
					lo = thi
					if lo == e.FileOff+e.Bytes() {
						ei++
					}
				}
			}
		} else {
			st.stats.ChunksSkipped++
		}
		rev.deliverAt += step
		rev.next--
		rev.mediaPos = c.Timestamp
	}
	if rev.next < 0 {
		rev.done = true
		rev.mediaPos = 0
	}
	return tags
}

// absorbReverse is the phase-1 step of a reversed stream: pop the
// completed prefix of the pending reads (issue order — the stamping
// cadence is the delivery order) and stamp each fully arrived chunk at
// its delivery timestamp. Late and failed chunks mirror the forward path.
func (s *Server) absorbReverse(st *stream, now sim.Time) {
	logical := st.clock.At(now)
	tdiscard := logical - st.buf.Jitter()
	for len(st.pending) > 0 && st.pending[0].done {
		head := st.pending[0]
		st.pending = st.pending[1:]
		if !head.failed {
			st.stats.BytesCompleted += head.hi - head.lo
		}
		rr := head.rev
		if rr == nil {
			continue
		}
		if head.failed {
			rr.failed = true
		}
		rr.left--
		if rr.left > 0 {
			continue
		}
		if rr.failed {
			st.stats.ChunksFailed++
			continue
		}
		if rr.deliver < logical {
			st.stats.ChunksLate++
			if rr.deliver+rr.dur <= tdiscard {
				continue
			}
		}
		st.buf.Insert(BufferedChunk{
			Index: rr.idx, Timestamp: rr.deliver, Duration: rr.dur,
			Size: rr.size, StampedAt: now,
		})
		st.stats.ChunksStamped++
	}
}

// extentAt returns the index of the extent covering file offset off.
func (st *stream) extentAt(off int64) int {
	i := 0
	for i < len(st.ext.Extents)-1 && st.ext.Extents[i+1].FileOff <= off {
		i++
	}
	return i
}
