package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

var errMedium = errors.New("medium error")

// faultScenario is one table entry over the structured fault model: a movie
// is opened, the model is installed, playback is measured, and the
// scenario's expectations are checked.
type faultScenario struct {
	name     string
	seed     int64
	secs     time.Duration
	frames   int
	recovery RecoveryPolicy
	// faults builds the fault configuration given the opened stream, so
	// bad regions can be carved from its actual disk layout.
	faults func(h *Handle) disk.FaultConfig
	check  func(t *testing.T, b *bed, h *Handle, got, lost int)
}

func TestFaultScenarios(t *testing.T) {
	scenarios := []faultScenario{
		{
			// Transient medium errors: the budgeted retry recovers every one
			// of them and nothing escalates to a hard failure.
			name: "transient-recovered-by-retry", seed: 11, secs: 8 * time.Second, frames: 230,
			faults: func(*Handle) disk.FaultConfig {
				return disk.FaultConfig{TransientProb: 0.05, RTOnly: true}
			},
			check: func(t *testing.T, b *bed, h *Handle, got, lost int) {
				st := h.StreamStats()
				if st.ReadRetries == 0 {
					t.Error("no retries recorded for transient faults")
				}
				if st.ReadErrors != 0 || st.ChunksFailed != 0 {
					t.Errorf("transient faults escalated to hard failures: %+v", st)
				}
				// A retry costs up to a scheduler cycle, so a few frames
				// around each fault may miss; the stream must not collapse.
				if lost > 20 {
					t.Errorf("lost %d frames; retries did not contain transient faults", lost)
				}
				if h.Health() != Healthy {
					t.Errorf("health = %v, want healthy", h.Health())
				}
				// Per-stream retries aggregate into the server-level stats.
				if sv := b.cras.Stats(); sv.ReadRetries != st.ReadRetries {
					t.Errorf("server ReadRetries = %d, stream recorded %d", sv.ReadRetries, st.ReadRetries)
				}
			},
		},
		{
			// Latency inflation alone: the interval slack and the buffer lead
			// absorb it without a single lost frame.
			name: "latency-absorbed-by-buffer", seed: 12, secs: 8 * time.Second, frames: 230,
			faults: func(*Handle) disk.FaultConfig {
				return disk.FaultConfig{
					LatencyProb: 0.5, LatencyMin: 2 * time.Millisecond, LatencyMax: 15 * time.Millisecond,
					RTOnly: true,
				}
			},
			check: func(t *testing.T, b *bed, h *Handle, got, lost int) {
				if lost != 0 {
					t.Errorf("lost %d frames to latency inflation", lost)
				}
				if b.d.Stats().FaultLatency == 0 {
					t.Error("no latency was actually injected")
				}
				if h.Health() != Healthy {
					t.Errorf("health = %v, want healthy", h.Health())
				}
			},
		},
		{
			// A small persistent bad region: the stream degrades, drops the
			// chunks over the region, keeps its clock, and plays the rest.
			name: "bad-region-degrades-and-drops", seed: 13, secs: 8 * time.Second, frames: 230,
			recovery: RecoveryPolicy{MaxRetries: 1},
			faults: func(h *Handle) disk.FaultConfig {
				ext := h.ExtentMap().Extents
				mid := ext[len(ext)/2]
				return disk.FaultConfig{
					BadRegions: []disk.BadRegion{{LBA: mid.LBA, Sectors: int64(mid.Sectors)}},
					RTOnly:     true,
				}
			},
			check: func(t *testing.T, b *bed, h *Handle, got, lost int) {
				st := h.StreamStats()
				if st.ReadErrors == 0 {
					t.Fatalf("no hard read errors recorded: %+v", st)
				}
				if st.ChunksFailed == 0 {
					t.Error("no chunks dropped for the failed region")
				}
				// Losses stay in the neighbourhood of the poisoned region
				// (the retry and the surrender each cost about a cycle of
				// stamping); the rest of the movie still played.
				if lost > int(st.ChunksFailed)+25 {
					t.Errorf("lost %d frames for %d failed chunks: failure not contained", lost, st.ChunksFailed)
				}
				if got < 100 {
					t.Errorf("only %d frames delivered; stream collapsed after the bad region", got)
				}
				sv := b.cras.Stats()
				if sv.StreamsDegraded == 0 {
					t.Error("stream never entered Degraded on a persistent region")
				}
				if sv.ReadErrors == 0 {
					t.Error("server-level error counter not updated")
				}
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			movie := media.MPEG1().Generate("/m1", sc.secs)
			newBed(t, sc.seed, ufs.Options{}, Config{Recovery: sc.recovery},
				map[string]*media.StreamInfo{"/m1": movie},
				func(b *bed, th *rtm.Thread) {
					h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
					if err != nil {
						t.Errorf("Open: %v", err)
						return
					}
					b.d.SetFaultModel(disk.NewFaultModel(b.e.RNG("faults:sd0"), sc.faults(h)))
					h.Start(th)
					delays, lost := playAndMeasure(b, th, h, sc.frames)
					sc.check(t, b, h, len(delays), lost)
				})
		})
	}
}

// Regression: a read whose completion interrupt never arrives must not wedge
// the request scheduler. The watchdog cancels the stalled request, the retry
// re-issues it, and playback resumes.
func TestWatchdogStallDoesNotWedgeScheduler(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 8*time.Second)
	newBed(t, 7, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			b.d.SetFaultModel(disk.NewFaultModel(b.e.RNG("faults:sd0"),
				disk.FaultConfig{StallProb: 1, MaxStalls: 1, RTOnly: true}))
			stalls := 0
			b.cras.OnDeadlineMiss = func(kind string, cycle int, lateBy time.Duration) {
				if kind == "io-stall" {
					stalls++
				}
			}
			h.Start(th)
			delays, lost := playAndMeasure(b, th, h, 230)
			sv := b.cras.Stats()
			if sv.WatchdogCancels == 0 {
				t.Fatal("watchdog never fired for the stalled request")
			}
			if stalls == 0 {
				t.Error("deadline manager was not notified of the stall")
			}
			if b.d.Stalled() {
				t.Fatal("disk still wedged on the stalled request")
			}
			if h.StreamStats().WatchdogCancels != sv.WatchdogCancels {
				t.Errorf("per-stream cancels %d != server %d",
					h.StreamStats().WatchdogCancels, sv.WatchdogCancels)
			}
			// The stall blocks everything for ~2 intervals plus a retry; the
			// frames due in that window are lost, the rest must arrive.
			if len(delays) < 150 {
				t.Fatalf("only %d frames delivered after the stall; scheduler wedged", len(delays))
			}
			if lost > 80 {
				t.Errorf("lost %d frames to a single recovered stall", lost)
			}
			if h.StreamStats().ReadRetries == 0 {
				t.Error("canceled request was never re-issued")
			}
		})
}

// Isolation: a persistent bad-block region under one stream walks that
// stream down the full ladder — degraded, suspended, evicted — while two
// concurrent healthy streams lose zero frames.
func TestFaultIsolationVictimEvictedPeersClean(t *testing.T) {
	victim := media.MPEG1().Generate("/bad", 8*time.Second)
	okA := media.MPEG1().Generate("/oka", 8*time.Second)
	okB := media.MPEG1().Generate("/okb", 8*time.Second)
	newBed(t, 5, ufs.Options{}, Config{BufferBudget: 32 << 20},
		map[string]*media.StreamInfo{"/bad": victim, "/oka": okA, "/okb": okB},
		func(b *bed, th *rtm.Thread) {
			hv, err := b.cras.Open(th, victim, "/bad", OpenOptions{})
			if err != nil {
				t.Errorf("Open victim: %v", err)
				return
			}
			// Poison the victim's layout from its second extent to the end of
			// the file: every fetch past the first ~256 KB fails, forever.
			ext := hv.ExtentMap().Extents
			from, last := ext[1], ext[len(ext)-1]
			b.d.SetFaultModel(disk.NewFaultModel(b.e.RNG("faults:sd0"), disk.FaultConfig{
				BadRegions: []disk.BadRegion{{
					LBA: from.LBA, Sectors: last.LBA + int64(last.Sectors) - from.LBA,
				}},
				RTOnly: true,
			}))
			var ladder []StreamHealth
			b.cras.OnStreamHealth = func(ev StreamHealthEvent) {
				if ev.Path == "/bad" {
					ladder = append(ladder, ev.To)
				}
			}

			type result struct {
				got, lost int
				done      bool
			}
			peers := []struct {
				path string
				info *media.StreamInfo
			}{{"/oka", okA}, {"/okb", okB}}
			results := make([]result, len(peers))
			handles := make([]*Handle, len(peers))
			for i, p := range peers {
				h, err := b.cras.Open(th, p.info, p.path, OpenOptions{})
				if err != nil {
					t.Errorf("Open %s: %v", p.path, err)
					return
				}
				handles[i] = h
			}
			for i := range peers {
				i := i
				b.k.NewThread(fmt.Sprintf("peer%d", i), rtm.PrioRTLow, 0, func(pt *rtm.Thread) {
					handles[i].Start(pt)
					delays, lost := playAndMeasure(b, pt, handles[i], 230)
					results[i] = result{got: len(delays), lost: lost, done: true}
				})
			}
			hv.Start(th)
			playAndMeasure(b, th, hv, 230)
			for w := 0; w < 600 && !(results[0].done && results[1].done); w++ {
				th.Sleep(100 * time.Millisecond)
			}

			for i, r := range results {
				if !r.done {
					t.Fatalf("peer %d never finished: scheduler wedged", i)
				}
				if r.lost != 0 {
					t.Errorf("healthy peer %d lost %d frames while the victim degraded", i, r.lost)
				}
				if r.got != 230 {
					t.Errorf("healthy peer %d delivered %d/230 frames", i, r.got)
				}
			}
			if hv.Health() != Evicted {
				t.Errorf("victim health = %v, want evicted", hv.Health())
			}
			want := []StreamHealth{Degraded, Suspended, Evicted}
			if len(ladder) != len(want) {
				t.Fatalf("victim ladder = %v, want %v", ladder, want)
			}
			for i := range want {
				if ladder[i] != want[i] {
					t.Fatalf("victim ladder = %v, want %v", ladder, want)
				}
			}
			sv := b.cras.Stats()
			if sv.StreamsDegraded != 1 || sv.StreamsSuspended != 1 || sv.StreamsEvicted != 1 {
				t.Errorf("ladder counters = %d/%d/%d, want 1/1/1",
					sv.StreamsDegraded, sv.StreamsSuspended, sv.StreamsEvicted)
			}
			if hv.StreamStats().ChunksFailed == 0 {
				t.Error("victim recorded no failed chunks")
			}
		})
}

// Faults on the record path, injected through the SetFaultInjector escape
// hatch (which must keep composing with the structured model): the writer
// retries and keeps its schedule.
func TestFaultDuringRecording(t *testing.T) {
	plan := media.MPEG1().Generate("/rec", 5*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{},
		func(b *bed, th *rtm.Thread) {
			failures := 1
			b.d.SetFaultInjector(func(r *disk.Request) error {
				if r.RealTime && r.Write && failures > 0 {
					failures--
					return errMedium
				}
				return nil
			})
			h, err := b.cras.OpenRecord(th, plan, "/rec", OpenOptions{})
			if err != nil {
				t.Errorf("OpenRecord: %v", err)
				return
			}
			h.Start(th)
			sleepRenewing(th, b.cras.Config().InitialDelay+plan.TotalDuration()+2*time.Second, h)
			st := h.StreamStats()
			if st.ReadRetries != 1 {
				t.Errorf("retries = %d, want 1", st.ReadRetries)
			}
			if st.ReadErrors != 0 {
				t.Errorf("hard errors = %d, want 0 (transient faults)", st.ReadErrors)
			}
			if st.BytesScheduled < plan.TotalSize() {
				t.Errorf("recording fell short: %d of %d", st.BytesScheduled, plan.TotalSize())
			}
		})
}
