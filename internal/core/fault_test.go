package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/ufs"
)

var errMedium = errors.New("medium error")

// One transient fault: the retry recovers it and playback is unharmed.
func TestFaultTransientRecoveredByRetry(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 6*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			failures := 1
			b.d.SetFaultInjector(func(r *disk.Request) error {
				if r.RealTime && failures > 0 {
					failures--
					return errMedium
				}
				return nil
			})
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			h.Start(th)
			delays, lost := playAndMeasure(b, th, h, 150)
			// The retry saves the data but costs up to two scheduler
			// cycles, so a handful of frames around the fault miss their
			// deadlines; the stream must recover rather than wedge.
			if lost > 15 {
				t.Errorf("lost %d frames; retry did not contain the fault", lost)
			}
			if len(delays) < 130 {
				t.Errorf("only %d frames delivered after transient fault", len(delays))
			}
			st := h.StreamStats()
			if st.ReadRetries != 1 {
				t.Errorf("ReadRetries = %d, want 1", st.ReadRetries)
			}
			if st.ReadErrors != 0 || st.ChunksFailed != 0 {
				t.Errorf("unexpected hard failures: %+v", st)
			}
		})
}

// A persistent fault on one region: the affected chunks are dropped, the
// stream keeps playing everything else, and the server does not wedge.
func TestFaultPersistentDropsRangeOnly(t *testing.T) {
	movie := media.MPEG1().Generate("/m1", 8*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{"/m1": movie},
		func(b *bed, th *rtm.Thread) {
			// Fail every RT read touching one sector region, forever.
			var failLo, failHi int64 = -1, -1
			b.d.SetFaultInjector(func(r *disk.Request) error {
				if !r.RealTime {
					return nil
				}
				if failLo < 0 {
					// Victimize the third RT read's region.
					return nil
				}
				if r.LBA < failHi && r.LBA+int64(r.Count) > failLo {
					return errMedium
				}
				return nil
			})
			h, err := b.cras.Open(th, movie, "/m1", OpenOptions{})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			// Target a region in the middle of the file.
			ext := h.ExtentMap().Extents
			mid := ext[len(ext)/2]
			failLo, failHi = mid.LBA, mid.LBA+int64(mid.Sectors)
			h.Start(th)
			_, lost := playAndMeasure(b, th, h, 230)
			st := h.StreamStats()
			if st.ReadErrors == 0 {
				t.Fatalf("no hard read errors recorded: %+v", st)
			}
			if st.ChunksFailed == 0 {
				t.Errorf("no chunks dropped for the failed range")
			}
			// The dropped chunks are bounded by the failed region; the rest
			// of the movie still played.
			if lost > int(st.ChunksFailed)+5 {
				t.Errorf("lost %d frames for %d failed chunks: failure not contained", lost, st.ChunksFailed)
			}
			if lost == 230 {
				t.Error("stream wedged after the fault")
			}
			if b.cras.Stats().ReadErrors == 0 {
				t.Error("server-level error counter not updated")
			}
		})
}

// Faults on the record path: the writer retries and keeps its schedule.
func TestFaultDuringRecording(t *testing.T) {
	plan := media.MPEG1().Generate("/rec", 5*time.Second)
	newBed(t, 1, ufs.Options{}, Config{},
		map[string]*media.StreamInfo{},
		func(b *bed, th *rtm.Thread) {
			failures := 1
			b.d.SetFaultInjector(func(r *disk.Request) error {
				if r.RealTime && r.Write && failures > 0 {
					failures--
					return errMedium
				}
				return nil
			})
			h, err := b.cras.OpenRecord(th, plan, "/rec", OpenOptions{})
			if err != nil {
				t.Errorf("OpenRecord: %v", err)
				return
			}
			h.Start(th)
			th.Sleep(b.cras.Config().InitialDelay + plan.TotalDuration() + 2*time.Second)
			st := h.StreamStats()
			if st.ReadRetries != 1 {
				t.Errorf("retries = %d, want 1", st.ReadRetries)
			}
			if st.ReadErrors != 0 {
				t.Errorf("hard errors = %d, want 0 (transient faults)", st.ReadErrors)
			}
			if st.BytesScheduled < plan.TotalSize() {
				t.Errorf("recording fell short: %d of %d", st.BytesScheduled, plan.TotalSize())
			}
		})
}
