package core

import (
	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// StreamStats aggregates per-stream activity.
type StreamStats struct {
	BytesScheduled   int64
	BytesCompleted   int64
	ChunksStamped    int64
	ChunksLate       int64 // stamped after the logical clock had passed them
	ChunksFailed     int64 // never stamped because their disk read failed
	ReadsIssued      int64
	ReadRetries      int64
	ReadErrors       int64 // reads that failed even after the retry budget
	WatchdogCancels  int64 // stalled reads the I/O watchdog abandoned
	ChunksFromCache  int64 // chunks stamped from the interval cache, not disk
	ChunksFromGroup  int64 // chunks fanned out from a multicast feed, not disk
	ChunksFromPrefix int64 // chunks backfilled from the pinned prefix at join
	ChunksSkipped    int64 // chunks never fetched because DeliveredRate < 1
}

// stream is the server-side state of one open continuous media session.
type stream struct {
	id   int
	name string
	info *media.StreamInfo
	par  StreamParams
	ext  *ExtentMap

	clock *LogicalClock
	buf   *TDBuffer

	// record marks a constant-rate recording session (the extension from
	// the paper's Conclusions): the same periodic machinery runs, but the
	// per-interval disk operations are writes into preallocated blocks and
	// the horizon is the data already captured rather than the data about
	// to be consumed.
	record bool

	gen int // bumped by seek/close; stale completions are dropped

	// lead extends the fetch horizon beyond the standard two intervals, in
	// logical time. It is how an initial delay longer than 2T turns into
	// prefilled buffer: the clock sits still during the delay while the
	// horizon is already lead ahead, and the extra data rides out intervals
	// whose disk batch overruns (the paper's 3-second-delay capacity claim).
	lead sim.Time

	// cycleCap bounds the bytes scheduled per interval so the prefill
	// spreads over the startup window instead of landing as one burst.
	cycleCap int64

	// wholeExtents selects full-extent (up to 256 KB) reads even past the
	// horizon target. This is the paper's "reads up to 256 KB at a time"
	// optimization: it amortizes command, seek and rotation costs over big
	// transfers, and is enabled when the initial delay provides enough
	// buffer lead to absorb the overshoot.
	wholeExtents bool

	// Fetch bookkeeping, all in file bytes / chunk indices.
	nextChunk   int   // next chunk whose timestamp has not crossed the horizon
	nextStamp   int   // next chunk to stamp when data arrives
	targetByte  int64 // exclusive high byte the horizon requires
	fetchedUpTo int64 // exclusive high byte covered by scheduled reads
	extIdx      int   // extent whose FileOff == fetchedUpTo
	pending     []*readTag

	// failedRanges are file byte ranges whose reads failed after retry;
	// chunks overlapping them are dropped rather than stamped.
	failedRanges [][2]int64

	// Interval-cache state (see icache.go). A cache-backed follower fetches
	// nothing from disk past cacheFrom while the leader's buffer and the
	// pinned interval cover its horizon; cached turns false forever once the
	// stream falls back to disk. pc is set while the stream participates in
	// a path cache, as leader or follower.
	cached         bool
	pc             *pathCache
	cacheFrom      int   // first chunk index the cache can supply
	cachePinCharge int64 // pin-byte reservation held against the cache budget

	// Multicast-batching state (see multicast.go). A fan-out member fetches
	// nothing from disk while its group's feed copies every chunk it stamps
	// into the member's buffer at the cycle edge; mcastMember turns false
	// forever once the member falls back to disk or is promoted to feed. mg
	// is set while the stream participates in a group, as feed or member.
	// ppin is the producer-side hook growing the title's pinned prefix;
	// openedAt anchors the batching window.
	mg          *mcastGroup
	mcastMember bool
	mcastCharge int64 // fan-out reservation held against the prefix budget
	prefixStart bool  // playback head was backfilled from prefix pins
	ppin        *prefixPin
	openedAt    sim.Time

	// VCR state (see vcr.go). paused freezes the clock and the fetch
	// machinery while the buffers stay pinned; dr is the delivered rate —
	// the fraction of chunks the clock passes that are actually fetched and
	// stamped (1 = every chunk, the adaptive frame-rate ladder steps it
	// down instead of suspending); baseRate is the unscaled worst-case media
	// rate at open time, the honest basis for every re-admission charge;
	// stepCycle is the scheduler cycle of the last ladder move (promotion
	// pacing); skipped is the FIFO of chunk indices the skip-mode fetch
	// decided not to read, consumed in order by the stamping side so a
	// ladder move between fetch and stamp can never desynchronize them;
	// rev is non-nil while the stream delivers in reverse (rewind).
	paused    bool
	dr        float64
	baseRate  float64
	stepCycle int
	skipped   []int
	rev       *revState

	// Degradation-ladder state, advanced once per cycle by the recovery
	// engine (see recovery.go for the ladder semantics).
	health       StreamHealth
	cycleErrs    int      // hard read failures absorbed this cycle
	windowErrs   int      // recent hard failures while Healthy (ages out)
	degradedErrs int      // hard failures since entering Degraded
	cleanCycles  int      // consecutive clean cycles while Degraded
	suspendedAt  sim.Time // when the stream entered Suspended

	// Session-lease state (see lease.go): leaseAt is the last time any
	// client call touched the session; rpcInFlight counts the client's
	// control RPCs currently queued or executing, because a client blocked
	// in a synchronous call is alive no matter how long the queue is;
	// clientPort is the per-session port whose destruction announces that
	// the client died.
	leaseAt     sim.Time
	rpcInFlight int
	clientPort  *rtm.Port

	stats  StreamStats
	closed bool
}

// touch renews the session lease: any client call is proof of life. The
// engine is single-threaded, so the plain write is race-free even from
// Get, which runs on the client's thread.
func (s *stream) touch(now sim.Time) {
	if now > s.leaseAt {
		s.leaseAt = now
	}
}

// readTag links a logical read back to the stream bytes it covers. On a
// striped volume one logical read fans out into one raw operation per
// member disk it touches (a readFrag each); the tag completes — and its
// bytes become stampable — only when every fragment has completed, the
// cycle-edge barrier. On a single disk a tag has exactly one fragment and
// the machinery degenerates to the paper's one-queue scheduler.
type readTag struct {
	s         *stream
	gen       int
	cyc       *cycleStat
	lo, hi    int64 // file byte range
	lba       int64 // logical volume LBA
	sectors   int
	done      bool
	failed    bool  // read failed even after the retry budget
	err       error // first fragment failure
	frags     []*readFrag
	fragsLeft int      // fragments not yet finally absorbed
	rev       *revRead // reverse-delivery chunk this read belongs to (nil forward)
}

// readFrag is one member disk's share of a logical read: the unit the
// per-disk C-SCAN queues, the retry budget and the I/O watchdog operate on.
// Retries re-issue only the failed fragment, on its own disk.
type readFrag struct {
	tag       *readTag
	disk      int   // member index
	lba       int64 // member LBA
	sectors   int
	retries   int  // times this fragment has been re-issued
	recon     bool // XOR-reconstruction read replacing a failed member's fragment
	replaced  bool // reconstruction dispatched at watchdog-cancel time; the abort absorbs as a no-op
	err       error
	req       *disk.Request // outstanding raw operation (for the watchdog)
	reqS      disk.Request  // the request's storage: one embedded struct per fragment, reused across retries
	issuedAt  sim.Time      // when req was (last) submitted
	started   sim.Time
	completed sim.Time
}

func (f *readFrag) bytes() int64 { return int64(f.sectors) * 512 }

// seekTo repositions the fetch machinery at the chunk covering the logical
// time and clears buffered data; in-flight reads are invalidated by the
// generation bump.
func (s *stream) seekTo(logical sim.Time) {
	s.gen++
	s.pending = s.pending[:0]
	s.failedRanges = nil
	s.skipped = s.skipped[:0]
	s.buf.Reset()
	idx := s.info.ChunkAt(logical)
	if idx < 0 {
		if logical >= s.info.TotalDuration() {
			idx = len(s.info.Chunks)
		} else {
			idx = 0
		}
	}
	s.nextChunk = idx
	s.nextStamp = idx
	s.setFetchPoint(idx)
}

// setFetchPoint positions the byte-fetch machinery at the chunk with the
// given index, leaving the buffer, clock, generation and stamp pointers
// alone. Used by seekTo and by the interval cache's disk fallback.
func (s *stream) setFetchPoint(idx int) {
	var off int64
	if idx < len(s.info.Chunks) {
		off = s.info.Chunks[idx].Offset
	} else {
		off = s.info.TotalSize()
	}
	// Snap the fetch point to the block containing the chunk and find the
	// extent that covers it.
	off = off / ufs.BlockSize * ufs.BlockSize
	s.extIdx = 0
	for s.extIdx < len(s.ext.Extents)-1 && s.ext.Extents[s.extIdx+1].FileOff <= off {
		s.extIdx++
	}
	s.fetchedUpTo = off
	s.targetByte = off
}

// fetchTargets returns the reads needed to cover every chunk that becomes
// current before the horizon, as whole extents from the current fetch
// point, bounded by the per-cycle byte cap. It advances the bookkeeping;
// the caller submits the reads.
func (s *stream) fetchTargets(horizon sim.Time) []*readTag {
	chunks := s.info.Chunks
	for s.nextChunk < len(chunks) && chunks[s.nextChunk].Timestamp < horizon {
		end := chunks[s.nextChunk].Offset + chunks[s.nextChunk].Size
		if end > s.targetByte {
			s.targetByte = end
		}
		s.nextChunk++
	}
	// Reads cover exactly the blocks the horizon requires (the interval's
	// worth of data), sliced out of the extent map at block granularity.
	// An extent bounds a single read at 256 KB of contiguous disk; it does
	// not force fetching ahead of the horizon.
	target := alignUp(s.targetByte, ufs.BlockSize)
	if target > s.ext.Size {
		target = alignUp(s.ext.Size, ufs.BlockSize)
	}
	var tags []*readTag
	var cycleBytes int64
	for s.fetchedUpTo < target && s.extIdx < len(s.ext.Extents) {
		if s.cycleCap > 0 && cycleBytes >= s.cycleCap {
			break
		}
		e := s.ext.Extents[s.extIdx]
		lo := s.fetchedUpTo
		hi := e.FileOff + e.Bytes()
		if hi > target && !s.wholeExtents {
			hi = target
		}
		// Respect the per-cycle cap at block granularity (whole-extent mode
		// deliberately trades this precision for 256 KB transfers).
		if s.cycleCap > 0 && !s.wholeExtents {
			if room := s.cycleCap - cycleBytes; hi-lo > room {
				capped := lo + room/ufs.BlockSize*ufs.BlockSize
				if capped > lo {
					hi = capped
				} else {
					hi = lo + ufs.BlockSize // always make progress
				}
			}
		}
		tags = append(tags, &readTag{
			s: s, gen: s.gen,
			lo: lo, hi: hi,
			lba:     e.LBA + (lo-e.FileOff)/512,
			sectors: int((hi - lo) / 512),
		})
		s.fetchedUpTo = hi
		if hi == e.FileOff+e.Bytes() {
			s.extIdx++
		}
		cycleBytes += hi - lo
		s.stats.BytesScheduled += hi - lo
		s.stats.ReadsIssued++
	}
	s.pending = append(s.pending, tags...)
	return tags
}

func alignUp(v, to int64) int64 { return (v + to - 1) / to * to }

// retainChunk reports whether chunk idx survives skip-mode delivery at
// fraction f of the full frame rate, with skips clustered into groups of g
// chunks. The cumulative count floor(i*f) keeps exactly a fraction f of
// all chunks retained, the first chunk always survives (a viewer sees the
// scene cut immediately), and the decision depends only on (idx, f, g) so
// the fetch and stamp sides can never disagree about the same chunk. g==1
// is the evenly spread subsequence floor(i*f) != floor((i-1)*f); larger g
// retains the head of each group and drops the tail, trading delivery
// smoothness for skip holes wide enough to free whole filesystem blocks
// (see stream.skipGroup).
func retainChunk(idx int, f float64, g int) bool {
	if idx <= 0 || f >= 1 {
		return true
	}
	if g <= 1 {
		return int64(float64(idx)*f) != int64(float64(idx-1)*f)
	}
	base := idx - idx%g
	keep := int64(float64(base+g)*f) - int64(float64(base)*f)
	return int64(idx-base) < keep
}

// skipGroup is the retention group size for skip-mode delivery. With
// chunks smaller than a filesystem block, an evenly spread skip pattern
// saves no disk time — every block still holds a retained byte, so the
// block-aligned reads cover the whole file anyway. Clustering the skips
// into per-group runs whose hole spans several blocks makes the reduced
// delivered rate a real reduction in disk load, which is what the ladder's
// admission charge promises.
func (s *stream) skipGroup() int {
	if s.dr >= 1 {
		return 1
	}
	hole := (1 - s.dr) * float64(s.par.Chunk)
	if hole <= 0 {
		return 1
	}
	g := int(float64(4*ufs.BlockSize)/hole) + 1
	if g > 64 {
		g = 64
	}
	return g
}

// jumpTo advances the byte-fetch machinery past a skip hole to the given
// file offset without scheduling any reads, leaving fetchedUpTo on the
// block boundary the next read starts at.
func (s *stream) jumpTo(off int64) {
	if off <= s.fetchedUpTo {
		return
	}
	s.fetchedUpTo = off
	if off > s.targetByte {
		s.targetByte = off
	}
	for s.extIdx < len(s.ext.Extents)-1 && s.ext.Extents[s.extIdx+1].FileOff <= off {
		s.extIdx++
	}
}

// fetchTargetsSkip is the skip-mode counterpart of fetchTargets, used while
// the delivered rate is below 1: it walks chunks individually, reads only
// the retained ones (block-aligned, sliced per extent), jumps the fetch
// point over the holes, and records every skipped index in the FIFO the
// stamping side consumes. Whole-extent reads are pointless here — the holes
// are what saves the disk time — so reads cover exactly the retained blocks.
func (s *stream) fetchTargetsSkip(horizon sim.Time) []*readTag {
	f := s.dr
	g := s.skipGroup()
	chunks := s.info.Chunks
	fileEnd := alignUp(s.ext.Size, ufs.BlockSize)
	var tags []*readTag
	var cycleBytes int64
	for s.nextChunk < len(chunks) && chunks[s.nextChunk].Timestamp < horizon {
		if s.cycleCap > 0 && cycleBytes >= s.cycleCap {
			break
		}
		idx := s.nextChunk
		c := chunks[idx]
		if !retainChunk(idx, f, g) {
			s.skipped = append(s.skipped, idx) //crasvet:allow hotalloc -- append into s.skipped[:0]; capacity retained across cycles
			s.nextChunk++
			continue
		}
		lo := c.Offset / ufs.BlockSize * ufs.BlockSize
		if lo < s.fetchedUpTo {
			lo = s.fetchedUpTo // shared block already covered by the previous read
		}
		hi := alignUp(c.Offset+c.Size, ufs.BlockSize)
		if hi > fileEnd {
			hi = fileEnd
		}
		s.jumpTo(lo)
		for s.fetchedUpTo < hi && s.extIdx < len(s.ext.Extents) {
			e := s.ext.Extents[s.extIdx]
			tlo := s.fetchedUpTo
			thi := e.FileOff + e.Bytes()
			if thi > hi {
				thi = hi
			}
			tags = append(tags, &readTag{ //crasvet:allow hotalloc -- one tag per issued read, alive across the disk round-trip; list handed to the batch scratch
				s: s, gen: s.gen,
				lo: tlo, hi: thi,
				lba:     e.LBA + (tlo-e.FileOff)/512,
				sectors: int((thi - tlo) / 512),
			})
			s.fetchedUpTo = thi
			if thi == e.FileOff+e.Bytes() {
				s.extIdx++
			}
			cycleBytes += thi - tlo
			s.stats.BytesScheduled += thi - tlo
			s.stats.ReadsIssued++
		}
		if hi > s.targetByte {
			s.targetByte = hi
		}
		s.nextChunk++
	}
	s.pending = append(s.pending, tags...) //crasvet:allow hotalloc -- pending completion list; capacity retained across cycles
	return tags
}

// absorbCompletions advances the contiguous completion watermark and stamps
// every fully arrived chunk into the time-driven buffer. now is the real
// time of the stamping cycle. floor is the logical clock the late-skip
// decision measures against — the stream's own clock for a plain stream,
// the group's minimum clock for a multicast feed (its stamped chunks
// supply every member, and members trail it by their join gap, so a chunk
// late for the feed can still be due for a member).
func (s *stream) absorbCompletions(now, floor sim.Time) {
	watermark := s.fetchedUpTo
	// The watermark is the high byte of the completed prefix of pending
	// reads (reads were issued in file order). Failed reads still advance
	// it — their byte range is recorded so the affected chunks are dropped
	// instead of blocking the stream forever.
	for len(s.pending) > 0 && s.pending[0].done {
		head := s.pending[0]
		if head.failed {
			s.failedRanges = append(s.failedRanges, [2]int64{head.lo, head.hi}) //crasvet:allow hotalloc -- fault path; grows only on failed reads
		} else {
			s.stats.BytesCompleted += head.hi - head.lo
		}
		s.pending = s.pending[1:]
	}
	if len(s.pending) > 0 {
		watermark = s.pending[0].lo
	}
	chunks := s.info.Chunks
	logical := s.clock.At(now)
	if floor > logical {
		floor = logical
	}
	tdiscard := floor - s.buf.Jitter()
	for s.nextStamp < s.nextChunk && s.nextStamp < len(chunks) {
		// Skip-mode holes come first: a chunk the fetch side decided not to
		// read is popped before the watermark check, because no read will
		// ever cover its bytes. A zero-byte alias holds the previous frame
		// across the hole, so Get stays continuous at reduced delivered
		// rate — the viewer sees a repeated frame, not a dropout.
		if len(s.skipped) > 0 && s.skipped[0] == s.nextStamp {
			s.skipped = s.skipped[1:]
			c := chunks[s.nextStamp]
			if c.Timestamp+c.Duration > tdiscard {
				s.buf.Insert(BufferedChunk{
					Index: s.nextStamp, Timestamp: c.Timestamp, Duration: c.Duration,
					Size: 0, StampedAt: now,
				})
			}
			s.stats.ChunksSkipped++
			s.nextStamp++
			continue
		}
		c := chunks[s.nextStamp]
		if c.Offset+c.Size > watermark {
			break
		}
		if s.overlapsFailed(c.Offset, c.Offset+c.Size) {
			s.stats.ChunksFailed++
			s.nextStamp++
			continue
		}
		if c.Timestamp < logical && !s.record {
			s.stats.ChunksLate++
			// A chunk already behind the discard line would be removed the
			// moment it was inserted; inserting it anyway can transiently
			// overflow the buffer and push out chunks that are still
			// needed. Skip it outright.
			if c.Timestamp+c.Duration <= tdiscard {
				s.nextStamp++
				continue
			}
		}
		s.buf.Insert(BufferedChunk{
			Index: s.nextStamp, Timestamp: c.Timestamp, Duration: c.Duration,
			Size: c.Size, StampedAt: now,
		})
		s.stats.ChunksStamped++
		s.nextStamp++
	}
	// Prune failed ranges the stamp pointer has moved past.
	if s.nextStamp < len(chunks) {
		kept := s.failedRanges[:0]
		for _, fr := range s.failedRanges {
			if fr[1] > chunks[s.nextStamp].Offset {
				kept = append(kept, fr) //crasvet:allow hotalloc -- append into s.failedRanges[:0]; capacity retained by construction
			}
		}
		s.failedRanges = kept
	} else {
		s.failedRanges = nil
	}
}

func (s *stream) overlapsFailed(lo, hi int64) bool {
	for _, fr := range s.failedRanges {
		if lo < fr[1] && fr[0] < hi {
			return true
		}
	}
	return false
}

// sectorsPerBlockSanity guards the compile-time relationship the extent
// math relies on.
var _ = [1]struct{}{}[ufs.SectorsPerBlock*512-ufs.BlockSize]
