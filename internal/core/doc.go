// Package core implements CRAS, the paper's Constant Rate Access Server: a
// compact continuous-media storage server that retrieves streams from disk
// at a constant rate for playback applications.
//
// The server provides exactly one timing-critical function — constant-rate
// stream retrieval — and delegates everything else (naming, administration,
// non-real-time access) to the Unix file system, whose on-disk layout it
// shares. Its pieces map one-to-one onto the paper:
//
//   - Admission control (admission.go): formulas (1)-(2) with the disk
//     overhead model of Appendix C, computed from parameters measured off
//     the disk the way Table 4 was.
//   - Five threads (server.go), as in Figure 3: the request manager
//     accepts open/close/start/stop/seek calls; the request scheduler runs
//     once per interval time T, stamps the previous interval's data into
//     the shared buffers and issues the next interval's reads in cylinder
//     order on the disk's real-time queue; the I/O-done manager fields
//     completion interrupts; the deadline manager logs overruns of the
//     scheduler's per-interval deadline; the signal handler performs
//     shutdown.
//   - The time-driven shared memory buffer (tdbuf.go, clock.go): chunks
//     carry media timestamps; a per-stream logical clock advances at the
//     stream's recording rate; data whose timestamp falls more than the
//     jitter allowance J behind the clock is discarded automatically, so
//     the buffer never overflows and a client may sample it at any rate
//     (dynamic QoS) without telling the server.
//   - The client interface (client.go): Open/Close/Start/Stop/Seek
//     communicate with the request manager; Get reads the shared buffer
//     directly, with no server round trip, exactly as crs_get does.
//
// Extents (extent.go) are where the "same layout as UFS" decision pays
// off: at open time CRAS fetches the file's block map through the Unix
// server (a non-real-time operation), coalesces contiguous blocks into
// runs capped at 256 KB, and from then on reads raw sectors with no file
// system in the loop. If the file's layout is fragmented — the editing
// problem of Section 3.2 — the extents shrink and throughput degrades,
// exactly as the paper describes.
//
// Extension beyond the paper's implementation (its Conclusions section):
// Server.OpenRecord writes a stream at a constant rate into blocks
// preallocated through the Unix server, using the same periodic scheduler.
package core
