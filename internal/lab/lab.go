// Package lab assembles complete simulated machines — disk, file system,
// Unix server, kernel, CRAS — for the experiment harness, the examples and
// the integration tests. It encapsulates the boot sequence the paper's
// testbed implied: format the disk, lay out the movie files contiguously,
// start the Unix server, start CRAS with parameters measured from the
// disk, then hand control to the workload.
package lab

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Movie is a stream to store during setup.
type Movie struct {
	Path string
	Info *media.StreamInfo
}

// Setup configures a machine build.
type Setup struct {
	Seed int64

	// Engine, when non-nil, boots the machine on an existing engine instead
	// of creating one from Seed — several machines then share one virtual
	// timeline (the cluster configuration). The caller drives that engine
	// directly; Seed is ignored.
	Engine *sim.Engine

	// Name prefixes the machine's device names ("n0." makes disks
	// "n0.sd0"), keeping traces and per-device RNG streams distinct when
	// several machines share an engine.
	Name string

	// DiskCylinders shrinks the disk for fast tests; 0 keeps the full
	// ST32550N geometry.
	DiskCylinders int
	DiskHeads     int

	// Disks builds a striped volume over this many member disks (each with
	// the geometry above). 0 or 1 is the single-disk machine; Disks == 1
	// still routes through the volume layer (the identity mapping), which
	// the equivalence tests rely on.
	Disks int

	// StripeSectors is the stripe unit; 0 picks 64 sectors (32 KB) when
	// Disks > 1.
	StripeSectors int64

	// Parity builds the volume with a rotating parity unit per stripe row
	// (RAID-5 style; requires Disks >= 3), surviving one member's death.
	Parity bool

	FSOpts ufs.Options
	CRAS   core.Config

	// UnixPrio/UnixQuantum place the Unix server thread; defaults are the
	// timesharing band with no quantum.
	UnixPrio    int
	UnixQuantum sim.Time

	Movies []Movie

	// Containers are QuickTime-style multi-track movies to store during
	// setup; the rebased per-track chunk tables land in Machine.Tracks.
	Containers []*media.Container

	// NoCRAS skips starting the CRAS server (UFS-only baselines).
	NoCRAS bool
}

// Machine is a booted simulated machine.
type Machine struct {
	Eng    *sim.Engine
	Kernel *rtm.Kernel
	Disk   *disk.Disk   // member 0 (the whole disk on a single-disk machine)
	Vol    *disk.Volume // the volume everything is mounted on
	FS     *ufs.FileSystem
	Unix   *ufs.Server
	CRAS   *core.Server

	// Tracks holds the rebased chunk tables of stored containers, keyed by
	// container name (path).
	Tracks map[string][]*media.StreamInfo

	setupErr error
}

// Build constructs the machine. Setup (mkfs, movie layout, server start)
// happens in simulated time; once it completes, ready is invoked from
// engine context to spawn the workload. The caller then drives the engine
// (m.Run / m.Eng.RunUntil).
func Build(s Setup, ready func(m *Machine)) *Machine {
	e := s.Engine
	if e == nil {
		e = sim.NewEngine(s.Seed)
	}
	g, p := disk.ST32550N()
	if s.DiskCylinders > 0 {
		g.Cylinders = s.DiskCylinders
	}
	if s.DiskHeads > 0 {
		g.Heads = s.DiskHeads
	}
	var vol *disk.Volume
	if s.Disks >= 1 {
		members := make([]*disk.Disk, s.Disks)
		for i := range members {
			members[i] = disk.New(e, fmt.Sprintf("%ssd%d", s.Name, i), g, p)
		}
		stripe := s.StripeSectors
		if stripe == 0 {
			stripe = 64 // 32 KB, one UFS block span per unit at 512 B sectors
		}
		var v *disk.Volume
		var err error
		if s.Parity {
			v, err = disk.NewParityVolume(s.Name+"vol0", members, stripe)
		} else {
			v, err = disk.NewVolume(s.Name+"vol0", members, stripe)
		}
		if err != nil {
			return &Machine{Eng: e, setupErr: err}
		}
		vol = v
	} else {
		vol = disk.SingleVolume(disk.New(e, s.Name+"sd0", g, p))
	}
	m := &Machine{Eng: e, Disk: vol.Disk(0), Vol: vol}
	if _, err := ufs.Format(vol, s.FSOpts); err != nil {
		m.setupErr = err
		return m
	}
	e.Spawn(s.Name+"lab.setup", func(pr *sim.Proc) {
		fs, err := ufs.Mount(pr, vol, s.FSOpts)
		if err != nil {
			m.setupErr = fmt.Errorf("lab: mount: %w", err)
			return
		}
		m.FS = fs
		for _, mv := range s.Movies {
			if dir := parentDir(mv.Path); dir != "" {
				if err := fs.MkdirAll(pr, dir); err != nil {
					m.setupErr = fmt.Errorf("lab: mkdir %s: %w", dir, err)
					return
				}
			}
			if err := media.Store(pr, fs, mv.Path, mv.Info); err != nil {
				m.setupErr = fmt.Errorf("lab: store %s: %w", mv.Path, err)
				return
			}
		}
		m.Tracks = make(map[string][]*media.StreamInfo)
		for _, c := range s.Containers {
			if dir := parentDir(c.Name); dir != "" {
				if err := fs.MkdirAll(pr, dir); err != nil {
					m.setupErr = fmt.Errorf("lab: mkdir %s: %w", dir, err)
					return
				}
			}
			tracks, err := media.StoreContainer(pr, fs, c.Name, c)
			if err != nil {
				m.setupErr = fmt.Errorf("lab: store container %s: %w", c.Name, err)
				return
			}
			m.Tracks[c.Name] = tracks
		}
		fs.Sync(pr)

		m.Kernel = rtm.NewKernel(e)
		unixPrio := s.UnixPrio
		if unixPrio == 0 {
			unixPrio = rtm.PrioTS
		}
		m.Unix = ufs.NewServer(m.Kernel, fs, unixPrio, s.UnixQuantum)
		if !s.NoCRAS {
			cfg := s.CRAS
			if cfg.Params.D == 0 {
				cfg.Params = core.MeasureAdmissionParams(vol.Disk(0), 64<<10)
			}
			m.CRAS = core.NewVolumeServer(m.Kernel, vol, m.Unix, cfg)
		}
		ready(m)
	})
	return m
}

// Err returns the setup error, if any. Check after the engine has run far
// enough for setup to complete.
func (m *Machine) Err() error { return m.setupErr }

// Run advances the simulation by d.
func (m *Machine) Run(d sim.Time) {
	m.Eng.RunFor(d)
	if m.setupErr != nil {
		panic(m.setupErr)
	}
}

// parentDir returns the directory part of a path ("" for root-level files).
func parentDir(path string) string {
	idx := -1
	for i, c := range path {
		if c == '/' {
			idx = i
		}
	}
	if idx <= 0 {
		return ""
	}
	return path[:idx]
}

// App spawns an application thread at the default application priority.
func (m *Machine) App(name string, prio int, quantum sim.Time, body func(th *rtm.Thread)) *rtm.Thread {
	return m.Kernel.NewThread(name, prio, quantum, body)
}
