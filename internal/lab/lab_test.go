package lab

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

func TestBuildBootsCompleteMachine(t *testing.T) {
	movie := media.MPEG1().Generate("/dir/sub/clip", 2*time.Second)
	var sawReady bool
	m := Build(Setup{
		Seed:          3,
		DiskCylinders: 400,
		Movies:        []Movie{{Path: "/dir/sub/clip", Info: movie}},
	}, func(m *Machine) {
		sawReady = true
		if m.Kernel == nil || m.Unix == nil || m.CRAS == nil || m.FS == nil {
			t.Error("machine incomplete at ready time")
		}
	})
	m.Run(2 * time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawReady {
		t.Fatal("ready callback never ran")
	}
	// The movie and its control file landed, in nested directories.
	m.App("checker", rtm.PrioTS, 0, func(th *rtm.Thread) {
		c := ufs.NewClient(m.Unix, th)
		st, err := c.Stat("/dir/sub/clip")
		if err != nil || st.Size != movie.TotalSize() {
			t.Errorf("movie stat = %+v, %v", st, err)
		}
		if _, err := c.Stat("/dir/sub/clip.ctl"); err != nil {
			t.Errorf("control file missing: %v", err)
		}
	})
	m.Run(2 * time.Second)
}

func TestBuildNoCRAS(t *testing.T) {
	m := Build(Setup{Seed: 1, DiskCylinders: 400, NoCRAS: true}, func(m *Machine) {
		if m.CRAS != nil {
			t.Error("CRAS started despite NoCRAS")
		}
		if m.Unix == nil {
			t.Error("Unix server missing")
		}
	})
	m.Run(time.Second)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildReportsStoreErrors(t *testing.T) {
	// Movie bigger than the (tiny) disk: setup must fail, not wedge.
	movie := media.MPEG2().Generate("/huge", 200*time.Second)
	m := Build(Setup{
		Seed: 1, DiskCylinders: 30, DiskHeads: 2,
		Movies: []Movie{{Path: "/huge", Info: movie}},
	}, func(m *Machine) {
		t.Error("ready ran despite setup failure")
	})
	m.Eng.RunUntil(time.Minute)
	if m.Err() == nil {
		t.Fatal("no setup error reported")
	}
}

func TestParentDir(t *testing.T) {
	cases := map[string]string{
		"/a":      "",
		"/a/b":    "/a",
		"/a/b/c":  "/a/b",
		"noslash": "",
		"/":       "",
	}
	for in, want := range cases {
		if got := parentDir(in); got != want {
			t.Errorf("parentDir(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunPanicsOnSetupError(t *testing.T) {
	movie := media.MPEG2().Generate("/huge", 200*time.Second)
	m := Build(Setup{
		Seed: 1, DiskCylinders: 30, DiskHeads: 2,
		Movies: []Movie{{Path: "/huge", Info: movie}},
	}, func(m *Machine) {})
	defer func() {
		if recover() == nil {
			t.Error("Run did not surface the setup error")
		}
	}()
	m.Run(time.Minute)
}

func TestDeterministicBoot(t *testing.T) {
	boot := func() sim.Time {
		movie := media.MPEG1().Generate("/m", time.Second)
		m := Build(Setup{Seed: 9, DiskCylinders: 400,
			Movies: []Movie{{Path: "/m", Info: movie}}}, func(m *Machine) {})
		m.Run(5 * time.Second)
		return m.Eng.Now()
	}
	if boot() != boot() {
		t.Fatal("boots diverged")
	}
}
