package disk

import "repro/internal/sim"

// ReadSync submits a read and blocks the calling process until it
// completes, returning the sector contents. The realTime flag selects the
// driver queue. The synchronous helpers do not participate in fault
// injection; an injected error here panics, so tests targeting the FS path
// fail loudly rather than corrupting silently.
func (d *Disk) ReadSync(p *sim.Proc, lba int64, count int, realTime bool) []byte {
	var out []byte
	done := false
	d.Submit(&Request{
		LBA: lba, Count: count, RealTime: realTime,
		Done: func(r *Request, data []byte) {
			if r.Err != nil {
				panic("disk: unhandled injected fault on synchronous read")
			}
			out = data
			done = true
			p.Unblock()
		},
	})
	for !done {
		p.Block("disk:read")
	}
	return out
}

// WriteSync submits a write and blocks the calling process until it
// completes. A nil payload performs a sparse write (sectors read back as
// zeros).
func (d *Disk) WriteSync(p *sim.Proc, lba int64, count int, data []byte, realTime bool) {
	done := false
	d.Submit(&Request{
		LBA: lba, Count: count, Write: true, Data: data, RealTime: realTime,
		Done: func(r *Request, _ []byte) {
			done = true
			p.Unblock()
		},
	})
	for !done {
		p.Block("disk:write")
	}
}

// ProbeSeek reports the modeled arm-movement time between two cylinders.
// This stands in for the paper's seek-time microbenchmark (Figure 12), which
// isolated the seek component of service time with a dedicated timer board.
func (d *Disk) ProbeSeek(fromCyl, toCyl int) sim.Time {
	return d.par.SeekTime(abs(toCyl - fromCyl))
}
