package disk

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func testDisk(seed int64) (*sim.Engine, *Disk) {
	e := sim.NewEngine(seed)
	g, p := ST32550N()
	return e, New(e, "sd0", g, p)
}

func TestGeometryCapacity(t *testing.T) {
	g, p := ST32550N()
	cap := g.Capacity()
	if cap < 1_900_000_000 || cap > 2_200_000_000 {
		t.Fatalf("capacity = %d, want ~2GB", cap)
	}
	rate := MediaRate(g, p)
	if rate < 6.3e6 || rate > 6.7e6 {
		t.Fatalf("media rate = %.2f MB/s, want ~6.5", rate/1e6)
	}
}

func TestGeometryCylinderOf(t *testing.T) {
	g, _ := ST32550N()
	spc := int64(g.SectorsPerCylinder())
	if g.CylinderOf(0) != 0 {
		t.Fatal("lba 0 should be cylinder 0")
	}
	if g.CylinderOf(spc-1) != 0 || g.CylinderOf(spc) != 1 {
		t.Fatal("cylinder boundary wrong")
	}
	if g.CylinderOf(g.TotalSectors()-1) != g.Cylinders-1 {
		t.Fatal("last sector not in last cylinder")
	}
}

func TestGeometryValidate(t *testing.T) {
	if (Geometry{Cylinders: 1, Heads: 1, SectorsPerTrack: 1, SectorSize: 512}).Validate() != nil {
		t.Fatal("valid geometry rejected")
	}
	if (Geometry{}).Validate() == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestSeekTimeShape(t *testing.T) {
	_, p := ST32550N()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should cost nothing")
	}
	if p.SeekTime(1) <= 0 {
		t.Fatal("one-cylinder seek should cost something")
	}
	full := p.SeekTime(3510)
	if full < 16*time.Millisecond || full > 18*time.Millisecond {
		t.Fatalf("full-stroke seek = %v, want ~17ms", full)
	}
	// Continuity at the knee: the two branches should agree within 1%.
	below, above := p.SeekTime(p.SeekKnee-1), p.SeekTime(p.SeekKnee)
	if above < below || above-below > p.SeekTime(3510)/100 {
		t.Fatalf("seek curve discontinuous at knee: %v -> %v", below, above)
	}
}

func TestSeekTimeMonotonicProperty(t *testing.T) {
	_, p := ST32550N()
	f := func(a, b uint16) bool {
		x, y := int(a)%3511, int(b)%3511
		if x > y {
			x, y = y, x
		}
		return p.SeekTime(x) <= p.SeekTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	e, d := testDisk(1)
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	e.Spawn("io", func(p *sim.Proc) {
		d.WriteSync(p, 1000, 4, payload, false)
		got = d.ReadSync(p, 1000, 4, false)
	})
	e.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back differs from written data")
	}
}

func TestUnwrittenSectorsReadZero(t *testing.T) {
	e, d := testDisk(1)
	var got []byte
	e.Spawn("io", func(p *sim.Proc) { got = d.ReadSync(p, 5000, 2, false) })
	e.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten sector returned non-zero data")
		}
	}
}

func TestSparseWriteClearsPayload(t *testing.T) {
	e, d := testDisk(1)
	var got []byte
	e.Spawn("io", func(p *sim.Proc) {
		d.WriteSync(p, 42, 1, bytes.Repeat([]byte{0xAA}, 512), false)
		d.WriteSync(p, 42, 1, nil, false) // sparse overwrite
		got = d.ReadSync(p, 42, 1, false)
	})
	e.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("sparse write did not clear sector")
		}
	}
	if d.StoredSectors() != 0 {
		t.Fatalf("StoredSectors = %d after sparse overwrite, want 0", d.StoredSectors())
	}
}

func TestServiceTimeDecomposition(t *testing.T) {
	e, d := testDisk(1)
	var reqDone sim.Time
	d.Submit(&Request{LBA: 0, Count: 1, Done: func(r *Request, _ []byte) { reqDone = r.Completed }})
	e.Run()
	st := d.Stats()
	total := st.CmdTime + st.SeekTime + st.RotTime + st.TransferTime
	if total != st.BusyTime {
		t.Fatalf("components %v != busy %v", total, st.BusyTime)
	}
	if reqDone != st.BusyTime {
		t.Fatalf("completion at %v, busy time %v", reqDone, st.BusyTime)
	}
	if st.CmdTime != 2*time.Millisecond {
		t.Fatalf("cmd overhead = %v", st.CmdTime)
	}
	if st.SeekTime != 0 { // arm starts at cylinder 0, request on cylinder 0
		t.Fatalf("seek = %v, want 0", st.SeekTime)
	}
}

func TestRotationalWaitDeterministic(t *testing.T) {
	run := func() sim.Time {
		e, d := testDisk(9)
		var at sim.Time
		e.Spawn("io", func(p *sim.Proc) {
			p.Sleep(3 * time.Millisecond)
			d.ReadSync(p, 17, 1, false)
			at = e.Now()
		})
		e.Run()
		return at
	}
	if run() != run() {
		t.Fatal("identical runs produced different completion times")
	}
}

func TestRotationalWaitBounded(t *testing.T) {
	e, d := testDisk(2)
	e.Spawn("io", func(p *sim.Proc) {
		rng := e.RNG("lba")
		for i := 0; i < 50; i++ {
			d.ReadSync(p, rng.Int63n(d.Geometry().TotalSectors()-8), 1, false)
		}
	})
	e.Run()
	st := d.Stats()
	avgRot := st.RotTime / 50
	if avgRot < 0 || avgRot >= d.Params().RotTime {
		t.Fatalf("average rotational wait %v outside [0, Trot)", avgRot)
	}
}

func TestCSCANServesAscendingFromArm(t *testing.T) {
	e, d := testDisk(1)
	spc := int64(d.Geometry().SectorsPerCylinder())
	var order []int
	mkReq := func(cyl int) *Request {
		return &Request{LBA: int64(cyl) * spc, Count: 1,
			Done: func(r *Request, _ []byte) { order = append(order, cyl) }}
	}
	// First request parks the arm around cylinder 1000; the batch below is
	// queued while it is in service.
	d.Submit(mkReq(1000))
	for _, c := range []int{500, 2000, 1500, 100, 3000} {
		d.Submit(mkReq(c))
	}
	e.Run()
	want := []int{1000, 1500, 2000, 3000, 100, 500}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("C-SCAN order = %v, want %v", order, want)
		}
	}
}

func TestRealTimeQueueServedFirst(t *testing.T) {
	e, d := testDisk(1)
	spc := int64(d.Geometry().SectorsPerCylinder())
	var order []string
	mk := func(name string, cyl int, rt bool) {
		d.Submit(&Request{LBA: int64(cyl) * spc, Count: 1, RealTime: rt,
			Done: func(r *Request, _ []byte) { order = append(order, name) }})
	}
	mk("first", 0, false) // goes into service immediately
	mk("n1", 100, false)
	mk("n2", 200, false)
	mk("rt1", 3000, true)
	mk("rt2", 2500, true)
	e.Run()
	// Active request is never aborted; then both RT requests (C-SCAN order:
	// 2500 then 3000) precede the queued normal ones.
	want := []string{"first", "rt2", "rt1", "n1", "n2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestActiveRequestNotPreempted(t *testing.T) {
	e, d := testDisk(1)
	var normalDone, rtDone sim.Time
	// A long normal transfer...
	d.Submit(&Request{LBA: 0, Count: 512, Done: func(r *Request, _ []byte) { normalDone = r.Completed }})
	// ...with an RT request arriving right after service starts.
	e.At(time.Millisecond, func() {
		d.Submit(&Request{LBA: 0, Count: 1, RealTime: true, Done: func(r *Request, _ []byte) { rtDone = r.Completed }})
	})
	e.Run()
	if rtDone <= normalDone {
		t.Fatalf("RT request finished at %v before active normal request at %v", rtDone, normalDone)
	}
}

func TestSequentialThroughputNearMediaRate(t *testing.T) {
	e, d := testDisk(1)
	const chunks = 64
	const sectorsPer = 512 // 256KB
	var done sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < chunks; i++ {
			d.ReadSync(p, int64(i*sectorsPer), sectorsPer, false)
		}
		done = e.Now()
	})
	e.Run()
	bytesMoved := float64(chunks * sectorsPer * 512)
	rate := bytesMoved / done.Seconds()
	media := MediaRate(d.Geometry(), d.Params())
	if rate < 0.8*media || rate > media {
		t.Fatalf("sequential rate %.2f MB/s vs media %.2f MB/s", rate/1e6, media/1e6)
	}
}

func TestStatsQueueAccounting(t *testing.T) {
	e, d := testDisk(1)
	for i := 0; i < 5; i++ {
		d.Submit(&Request{LBA: int64(i * 1000), Count: 1})
	}
	d.Submit(&Request{LBA: 0, Count: 1, RealTime: true})
	e.Run()
	st := d.Stats()
	if st.Served[queueNormal] != 5 || st.Served[queueRT] != 1 {
		t.Fatalf("served = %v", st.Served)
	}
	if st.MaxQueueDepth[queueNormal] != 4 { // first went straight to service
		t.Fatalf("max normal depth = %d, want 4", st.MaxQueueDepth[queueNormal])
	}
	if st.BytesMoved[queueNormal] != 5*512 {
		t.Fatalf("bytes moved = %d", st.BytesMoved[queueNormal])
	}
	if st.TotalQueueWait <= 0 {
		t.Fatal("queued requests should accumulate wait time")
	}
}

func TestSubmitOutOfRangePanics(t *testing.T) {
	_, d := testDisk(1)
	for _, r := range []*Request{
		{LBA: -1, Count: 1},
		{LBA: 0, Count: 0},
		{LBA: d.Geometry().TotalSectors(), Count: 1},
		{LBA: d.Geometry().TotalSectors() - 1, Count: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("request %+v did not panic", r)
				}
			}()
			d.Submit(r)
		}()
	}
}

func TestWritePayloadSizeMismatchPanics(t *testing.T) {
	_, d := testDisk(1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched write payload did not panic")
		}
	}()
	d.Submit(&Request{LBA: 0, Count: 2, Write: true, Data: make([]byte, 512)})
}

func TestPeekPokeSector(t *testing.T) {
	_, d := testDisk(1)
	data := bytes.Repeat([]byte{0x5C}, 512)
	d.PokeSector(7, data)
	if !bytes.Equal(d.PeekSector(7), data) {
		t.Fatal("peek after poke differs")
	}
	if d.PeekSector(8)[0] != 0 {
		t.Fatal("peek of untouched sector should be zeros")
	}
}

func TestProbeSeekSymmetric(t *testing.T) {
	_, d := testDisk(1)
	if d.ProbeSeek(100, 900) != d.ProbeSeek(900, 100) {
		t.Fatal("seek time should depend only on distance")
	}
	if d.ProbeSeek(5, 5) != 0 {
		t.Fatal("zero-distance probe should be 0")
	}
}

// Property: under C-SCAN, among queued requests the controller never serves
// a request behind the arm while one at or ahead of the arm is waiting.
func TestPropertyCSCANNeverSkipsAhead(t *testing.T) {
	f := func(cylsRaw []uint16) bool {
		if len(cylsRaw) == 0 || len(cylsRaw) > 40 {
			return true
		}
		e, d := testDisk(3)
		spc := int64(d.Geometry().SectorsPerCylinder())
		type fin struct{ cyl, armBefore int }
		var fins []fin
		d.Submit(&Request{LBA: 1800 * spc, Count: 1}) // park arm mid-disk
		for _, c := range cylsRaw {
			cyl := int(c) % d.Geometry().Cylinders
			var armBefore int
			d.Submit(&Request{LBA: int64(cyl) * spc, Count: 1, Tag: &armBefore,
				Done: func(r *Request, _ []byte) {
					fins = append(fins, fin{cyl: d.Geometry().CylinderOf(r.LBA), armBefore: armBefore})
				}})
		}
		e.Run()
		// Completion cylinders must consist of ascending runs (wrapping at
		// most len(fins) times... actually exactly: ascending, then one wrap,
		// then ascending again, since all requests were queued up front).
		wraps := 0
		for i := 1; i < len(fins); i++ {
			if fins[i].cyl < fins[i-1].cyl {
				wraps++
			}
		}
		return wraps <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// C-SCAN vs FIFO on a deep queue of scattered requests: the sweep order
// pays far less seek time — the reason the paper's driver sorts each queue.
func TestCSCANBeatsFIFOSeekTime(t *testing.T) {
	run := func(fifo bool) sim.Time {
		e, d := testDisk(5)
		d.SetFIFO(fifo)
		spc := int64(d.Geometry().SectorsPerCylinder())
		rng := e.RNG("scatter")
		for i := 0; i < 100; i++ {
			d.Submit(&Request{LBA: rng.Int63n(int64(d.Geometry().Cylinders)) * spc, Count: 8})
		}
		e.Run()
		return d.Stats().SeekTime
	}
	cscan := run(false)
	fifo := run(true)
	if cscan >= fifo/3 {
		t.Fatalf("C-SCAN seek total %v vs FIFO %v: expected at least 3x savings", cscan, fifo)
	}
}
