package disk

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// Geometry describes the physical layout of a disk.
type Geometry struct {
	Cylinders       int
	Heads           int
	SectorsPerTrack int
	SectorSize      int
}

// SectorsPerCylinder returns Heads * SectorsPerTrack.
func (g Geometry) SectorsPerCylinder() int { return g.Heads * g.SectorsPerTrack }

// TotalSectors returns the number of addressable sectors.
func (g Geometry) TotalSectors() int64 {
	return int64(g.Cylinders) * int64(g.SectorsPerCylinder())
}

// Capacity returns the disk capacity in bytes.
func (g Geometry) Capacity() int64 { return g.TotalSectors() * int64(g.SectorSize) }

// CylinderOf returns the cylinder containing the given LBA.
func (g Geometry) CylinderOf(lba int64) int {
	return int(lba / int64(g.SectorsPerCylinder()))
}

// Validate reports a descriptive error for nonsensical geometry.
func (g Geometry) Validate() error {
	if g.Cylinders <= 0 || g.Heads <= 0 || g.SectorsPerTrack <= 0 || g.SectorSize <= 0 {
		return fmt.Errorf("disk: invalid geometry %+v", g)
	}
	return nil
}

// Params is the timing model of a disk mechanism.
type Params struct {
	// RotTime is the time of one platter revolution (8.33 ms at 7200 rpm).
	RotTime sim.Time
	// CmdOverhead is the fixed controller/command setup cost per request.
	CmdOverhead sim.Time

	// Seek curve: Tseek(x) = SeekBase + SeekSqrtCoeff*sqrt(x) for
	// x < SeekKnee cylinders, then linear with slope SeekSlope, continuous
	// at the knee. Tseek(0) = 0 (no seek needed).
	SeekBase      sim.Time
	SeekSqrtCoeff sim.Time // per sqrt(cylinder)
	SeekKnee      int
	SeekSlope     sim.Time // per cylinder beyond the knee
}

// SeekTime returns the time to move the arm across dist cylinders.
func (p Params) SeekTime(dist int) sim.Time {
	if dist <= 0 {
		return 0
	}
	if dist < p.SeekKnee {
		return p.SeekBase + sim.Time(float64(p.SeekSqrtCoeff)*math.Sqrt(float64(dist)))
	}
	atKnee := p.SeekBase + sim.Time(float64(p.SeekSqrtCoeff)*math.Sqrt(float64(p.SeekKnee)))
	return atKnee + sim.Time(dist-p.SeekKnee)*p.SeekSlope
}

// MediaRate returns the sustained transfer rate in bytes per second implied
// by the geometry and rotation speed (one track per revolution).
func MediaRate(g Geometry, p Params) float64 {
	trackBytes := float64(g.SectorsPerTrack * g.SectorSize)
	return trackBytes / p.RotTime.Seconds()
}

// ST32550N returns geometry and timing calibrated to the paper's disk
// (Table 4): media rate ~6.5 MB/s, rotational latency 8.33 ms (7200 rpm),
// 2 ms command overhead, and a seek curve whose linear approximation over
// the full stroke comes out near the paper's Tseek_min = 4 ms intercept and
// Tseek_max = 17 ms full-stroke values.
func ST32550N() (Geometry, Params) {
	g := Geometry{
		Cylinders:       3510,
		Heads:           11,
		SectorsPerTrack: 106,
		SectorSize:      512,
	}
	p := Params{
		RotTime:     8330 * time.Microsecond, // 7200 rpm
		CmdOverhead: 2 * time.Millisecond,

		// Short seeks rise as sqrt, reaching the linear region at 600
		// cylinders; the linear region runs from ~6.2 ms at the knee to
		// ~17 ms at full stroke. A least-squares linear fit of this curve
		// (the paper's Figure 12 procedure) yields approximately
		// Tseek(x) = 4 ms + x*(13 ms / Ncyl).
		SeekBase:      1 * time.Millisecond,
		SeekSqrtCoeff: sim.Time(212 * time.Microsecond),
		SeekKnee:      600,
		SeekSlope:     sim.Time(3704 * time.Nanosecond),
	}
	return g, p
}
