// Package disk models the SCSI disk used in the paper's evaluation (a
// Seagate ST32550N: 2 GB, 7200 rpm, ~6.5 MB/s media rate) at the level of
// detail the experiments depend on: cylinder geometry, a non-linear seek
// curve, deterministic rotational position, media-rate transfer, and a
// fixed per-command overhead.
//
// The service time of a request is
//
//	Tcmd + Tseek(|cyl - arm|) + Trot_wait + Ttransfer
//
// where Trot_wait is the deterministic rotational delay from the angular
// position of the platter when the seek completes to the first requested
// sector, and Ttransfer moves data at the media rate (one track per
// revolution). Track- and cylinder-switch penalties inside a transfer are
// not modeled; the sustained sequential rate therefore equals the media
// rate, which is what the paper's D parameter measures.
//
// The controller serves one request at a time from two queues, reproducing
// the paper's modification to the Real-Time Mach disk driver: a real-time
// queue and a normal queue, each ordered by C-SCAN, with the real-time
// queue always served first when non-empty. A request already in service is
// never aborted — this is exactly the "other activity" overhead O_other that
// the admission test charges for.
//
// Sector payloads are stored sparsely: written sectors keep their bytes,
// unwritten sectors read as zeros. Media files can therefore be laid out
// (allocating all metadata for real) without storing gigabytes of pixel
// data.
//
// The seek curve is deliberately non-linear (a square-root region for short
// seeks, linear beyond), after Ruemmler & Wilkes, so that the linear
// approximation used by the paper's admission test (Appendix C) is a genuine
// approximation of a measured curve, as it was for the authors.
package disk
