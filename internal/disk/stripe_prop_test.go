package disk

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/sim"
)

// propVolume builds a seeded random volume configuration: 1–8 members on a
// small identical geometry, a stripe unit between one sector and a few
// tracks.
func propVolume(t *testing.T, e *sim.Engine, rng *rand.Rand) *Volume {
	t.Helper()
	g := Geometry{
		Cylinders:       2 + rng.Intn(30),
		Heads:           1 + rng.Intn(4),
		SectorsPerTrack: 4 + rng.Intn(60),
		SectorSize:      512,
	}
	_, p := ST32550N()
	n := []int{1, 2, 3, 4, 8}[rng.Intn(5)]
	members := make([]*Disk, n)
	for i := range members {
		members[i] = New(e, fmt.Sprintf("sd%d", i), g, p)
	}
	maxStripe := g.TotalSectors()
	if maxStripe > 256 {
		maxStripe = 256
	}
	stripe := 1 + rng.Int63n(maxStripe)
	v, err := NewVolume("vol0", members, stripe)
	if err != nil {
		t.Fatalf("NewVolume(n=%d, stripe=%d, geo=%+v): %v", n, stripe, g, err)
	}
	return v
}

// TestStripeProperties is the seeded property suite for the stripe mapping.
// The default seed is fixed (reproducible forever); CI also rotates it per
// commit via STRIPE_PROP_SEED so the corpus grows with history. Invariants:
//
//  1. Locate is a bijection into per-member bounds: every logical sector
//     maps to exactly one (disk, LBA) inside its member, and no two logical
//     sectors collide.
//  2. Fragments partitions any logical range: at most one fragment per
//     member, fragment sector counts sum to the range, and the fragment
//     sectors are exactly the Locate images of the range — so the per-disk
//     op lists partition the single-disk op list.
//  3. The mapping is seed-stable: rebuilding the same configuration yields
//     an identical fragment digest.
//  4. Data round-trips: bytes written through the volume (offline pokes and
//     timed WriteSync) read back identical through the volume, and every
//     byte is physically resident on exactly the member Locate names.
func TestStripeProperties(t *testing.T) {
	seed := int64(20260805)
	if env := os.Getenv("STRIPE_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad STRIPE_PROP_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("stripe property seed %d (override with STRIPE_PROP_SEED)", seed)
	root := rand.New(rand.NewSource(seed))

	for cfg := 0; cfg < 30; cfg++ {
		rng := rand.New(rand.NewSource(root.Int63()))
		e := sim.NewEngine(rng.Int63())
		v := propVolume(t, e, rng)
		total := v.Geometry().TotalSectors()
		n := v.NumDisks()
		memberTotal := v.Disk(0).Geometry().TotalSectors()

		// (1) Locate bijection over the whole logical space (capacities here
		// are a few thousand sectors, so exhaustive is cheap).
		seen := make(map[[2]int64]int64, total)
		for lba := int64(0); lba < total; lba++ {
			d, dlba := v.Locate(lba)
			if d < 0 || d >= n {
				t.Fatalf("cfg %d: Locate(%d) → member %d of %d", cfg, lba, d, n)
			}
			if dlba < 0 || dlba >= memberTotal {
				t.Fatalf("cfg %d: Locate(%d) → member LBA %d outside [0,%d)", cfg, lba, dlba, memberTotal)
			}
			key := [2]int64{int64(d), dlba}
			if prev, dup := seen[key]; dup {
				t.Fatalf("cfg %d: logical %d and %d both map to member %d LBA %d", cfg, prev, lba, d, dlba)
			}
			seen[key] = lba
		}

		// (2) Fragments partitions random ranges, consistently with Locate.
		for trial := 0; trial < 50; trial++ {
			count := 1 + int(rng.Int63n(total))
			lba := rng.Int63n(total - int64(count) + 1)
			frags := v.Fragments(lba, count)
			perDisk := make(map[int]Frag)
			sum := 0
			for _, f := range frags {
				if _, dup := perDisk[f.Disk]; dup {
					t.Fatalf("cfg %d: range [%d,%d) produced two fragments on member %d",
						cfg, lba, lba+int64(count), f.Disk)
				}
				perDisk[f.Disk] = f
				sum += f.Count
			}
			if sum != count {
				t.Fatalf("cfg %d: range [%d,%d) fragments cover %d sectors, want %d",
					cfg, lba, lba+int64(count), sum, count)
			}
			// Every logical sector of the range falls inside its member's
			// fragment — and fragment sizes leave no room for anything else,
			// so the fragments are exactly the Locate image of the range.
			for s := lba; s < lba+int64(count); s++ {
				d, dlba := v.Locate(s)
				f, ok := perDisk[d]
				if !ok || dlba < f.LBA || dlba >= f.LBA+int64(f.Count) {
					t.Fatalf("cfg %d: logical %d locates to member %d LBA %d, outside its fragment %+v",
						cfg, s, d, dlba, f)
				}
			}
		}

		// (3) Seed-stability: the same member set and stripe unit rebuilds to
		// an identical mapping — Locate depends only on the configuration,
		// never on engine state or draw order.
		v2, err := NewVolume("vol0", v.Disks(), v.StripeSectors())
		if err != nil {
			t.Fatalf("cfg %d: rebuild failed: %v", cfg, err)
		}
		for lba := int64(0); lba < total; lba++ {
			d1, l1 := v.Locate(lba)
			d2, l2 := v2.Locate(lba)
			if d1 != d2 || l1 != l2 {
				t.Fatalf("cfg %d: mapping unstable at %d: (%d,%d) vs (%d,%d)", cfg, lba, d1, l1, d2, l2)
			}
		}

		// (4) Offline data round-trip: poke random sectors through the
		// volume, peek them back, and confirm physical placement matches
		// Locate on the member itself.
		for trial := 0; trial < 20; trial++ {
			lba := rng.Int63n(total)
			data := make([]byte, v.Geometry().SectorSize)
			rng.Read(data)
			v.PokeSector(lba, data)
			if got := v.PeekSector(lba); string(got) != string(data) {
				t.Fatalf("cfg %d: PokeSector/PeekSector mismatch at %d", cfg, lba)
			}
			d, dlba := v.Locate(lba)
			if got := v.Disk(d).PeekSector(dlba); string(got) != string(data) {
				t.Fatalf("cfg %d: sector %d not resident at member %d LBA %d", cfg, lba, d, dlba)
			}
		}
	}
}

// TestStripeTimedIO round-trips data through the volume's timed I/O path
// (Submit scatter/gather under the event loop), including ranges chosen to
// span several stripe units and wrap the member rotation.
func TestStripeTimedIO(t *testing.T) {
	seed := int64(20260805)
	if env := os.Getenv("STRIPE_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad STRIPE_PROP_SEED %q: %v", env, err)
		}
		seed = v
	}
	root := rand.New(rand.NewSource(seed))
	for cfg := 0; cfg < 8; cfg++ {
		rng := rand.New(rand.NewSource(root.Int63()))
		e := sim.NewEngine(rng.Int63())
		v := propVolume(t, e, rng)
		total := v.Geometry().TotalSectors()
		ss := v.Geometry().SectorSize

		type op struct {
			lba   int64
			count int
			data  []byte
		}
		var ops []op
		for i := 0; i < 6; i++ {
			count := 1 + int(rng.Int63n(min64(total, 4*v.StripeSectors()+3)))
			lba := rng.Int63n(total - int64(count) + 1)
			data := make([]byte, count*ss)
			rng.Read(data)
			ops = append(ops, op{lba, count, data})
		}
		e.Spawn("io", func(p *sim.Proc) {
			for _, o := range ops {
				v.WriteSync(p, o.lba, o.count, o.data, false)
			}
			for _, o := range ops[len(ops)-1:] { // last write wins where ops overlap
				got := v.ReadSync(p, o.lba, o.count, false)
				if string(got) != string(o.data) {
					t.Errorf("cfg %d: timed read-back mismatch at lba %d count %d", cfg, o.lba, o.count)
				}
			}
		})
		e.RunUntil(sim.Time(10 * time.Minute))
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestVolumeDegenerate covers the rejection paths: empty member sets,
// non-positive or oversized stripe units, and mismatched member hardware.
func TestVolumeDegenerate(t *testing.T) {
	e := sim.NewEngine(1)
	g, p := ST32550N()
	g.Cylinders = 4
	mk := func(name string) *Disk { return New(e, name, g, p) }

	if _, err := NewVolume("v", nil, 64); err == nil {
		t.Fatal("volume with no members accepted")
	}
	if _, err := NewVolume("v", []*Disk{mk("a")}, 0); err == nil {
		t.Fatal("zero stripe unit accepted")
	}
	if _, err := NewVolume("v", []*Disk{mk("a")}, -8); err == nil {
		t.Fatal("negative stripe unit accepted")
	}
	if _, err := NewVolume("v", []*Disk{mk("a"), mk("b")}, g.TotalSectors()+1); err == nil {
		t.Fatal("stripe unit beyond member capacity accepted")
	}
	g2 := g
	g2.Cylinders = 5
	if _, err := NewVolume("v", []*Disk{mk("a"), New(e, "b", g2, p)}, 64); err == nil {
		t.Fatal("mismatched member geometry accepted")
	}
	p2 := p
	p2.CmdOverhead *= 2
	if _, err := NewVolume("v", []*Disk{mk("a"), New(e, "b", g, p2)}, 64); err == nil {
		t.Fatal("mismatched member timing accepted")
	}

	// A one-member volume is the identity over the full member: no row
	// truncation even when the stripe unit does not divide the capacity.
	d := mk("solo")
	v, err := NewVolume("v", []*Disk{d}, 7)
	if err != nil {
		t.Fatalf("single-member volume: %v", err)
	}
	if v.Geometry() != d.Geometry() {
		t.Fatalf("single-member volume geometry %+v != member %+v", v.Geometry(), d.Geometry())
	}
	if di, dlba := v.Locate(12345 % g.TotalSectors()); di != 0 || dlba != 12345%g.TotalSectors() {
		t.Fatalf("single-member Locate not identity: (%d,%d)", di, dlba)
	}
	sv := SingleVolume(d)
	if sv.Geometry() != d.Geometry() || sv.NumDisks() != 1 {
		t.Fatal("SingleVolume not the identity wrapper")
	}

	// Multi-member capacity truncates to whole stripe rows.
	members := []*Disk{mk("a"), mk("b"), mk("c")}
	stripe := int64(96) // does not divide the member capacity evenly
	mv, err := NewVolume("v", members, stripe)
	if err != nil {
		t.Fatalf("3-member volume: %v", err)
	}
	rows := g.TotalSectors() / stripe
	if got, want := mv.Geometry().TotalSectors(), rows*3*stripe; got != want {
		t.Fatalf("striped capacity %d, want %d (whole rows)", got, want)
	}
	// Last logical sector still maps inside its member.
	d3, l3 := mv.Locate(mv.Geometry().TotalSectors() - 1)
	if d3 < 0 || d3 > 2 || l3 >= g.TotalSectors() {
		t.Fatalf("last sector maps outside members: (%d,%d)", d3, l3)
	}
}
