package disk

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Fault sentinels. The controller reports them through Request.Err; the
// server's recovery engine treats any error as a failed transfer and decides
// from its own policy (not from the error identity) whether a retry is worth
// the interval time, so new fault kinds can be added without touching core.
var (
	// ErrMedium is a transient medium error: a retry of the same sectors
	// usually succeeds (ECC got lucky on the next revolution).
	ErrMedium = errors.New("disk: medium error")

	// ErrBadRegion is a persistent medium error from a bad-block region:
	// every transfer touching the region fails, retries included.
	ErrBadRegion = errors.New("disk: unrecoverable medium error")

	// ErrAborted is the completion status of a request the host abandoned
	// with Cancel after its completion interrupt never arrived.
	ErrAborted = errors.New("disk: request aborted by host")
)

// BadRegion is a contiguous LBA range that persistently fails.
type BadRegion struct {
	LBA     int64
	Sectors int64
}

func (b BadRegion) overlaps(r *Request) bool {
	return r.LBA < b.LBA+b.Sectors && b.LBA < r.LBA+int64(r.Count)
}

// FaultConfig composes the failure modes a FaultModel injects. The zero
// value injects nothing; each mode arms independently.
type FaultConfig struct {
	// TransientProb is the per-request probability of a one-shot medium
	// error (ErrMedium). The full service time is still consumed — the
	// mechanism did the work, the data was bad.
	TransientProb float64

	// LatencyProb inflates a request's service time by a uniform draw from
	// [LatencyMin, LatencyMax) with the given per-request probability —
	// thermal recalibration, retried servo settles, cache misses in the
	// drive firmware.
	LatencyProb            float64
	LatencyMin, LatencyMax sim.Time

	// StallProb is the per-request probability that the completion
	// interrupt never fires: the request enters service and the mechanism
	// wedges until the host cancels it. MaxStalls caps the number injected
	// (0 = unlimited).
	StallProb float64
	MaxStalls int

	// BadRegions persistently fail every overlapping transfer.
	BadRegions []BadRegion

	// RTOnly restricts injection to real-time queue requests, leaving file
	// system metadata and other background traffic clean. Chaos campaigns
	// use it to target stream I/O without corrupting setup.
	RTOnly bool
}

// FaultStats counts injected faults by kind.
type FaultStats struct {
	Transient int // one-shot medium errors
	BadBlock  int // requests failed by a bad region
	Latency   int // inflated requests
	Stalls    int // completions withheld
}

// Total returns all injected faults.
func (s FaultStats) Total() int { return s.Transient + s.BadBlock + s.Latency + s.Stalls }

// FaultModel is a composable, seed-deterministic fault injector. All
// randomness comes from one named sim RNG stream, so a campaign scenario
// replays bit-for-bit from its engine seed: the same requests draw the same
// faults in the same order. Decisions are made once per request at
// start-of-service (a fixed draw order per request keeps the stream aligned
// regardless of outcomes).
type FaultModel struct {
	rng   *sim.RNG
	cfg   FaultConfig
	stats FaultStats
}

// NewFaultModel builds a model over the given RNG stream. Conventionally
// the stream is named for the disk, e.g. eng.RNG("faults:sd0").
func NewFaultModel(rng *sim.RNG, cfg FaultConfig) *FaultModel {
	if cfg.LatencyMax < cfg.LatencyMin {
		panic(fmt.Sprintf("disk: fault latency range inverted: [%v, %v)", cfg.LatencyMin, cfg.LatencyMax))
	}
	return &FaultModel{rng: rng, cfg: cfg}
}

// Config returns the model's configuration.
func (m *FaultModel) Config() FaultConfig { return m.cfg }

// Stats returns a copy of the injection counters.
func (m *FaultModel) Stats() FaultStats { return m.stats }

// faultDecision is what the controller applies to one request.
type faultDecision struct {
	err   error    // completion error (transient or bad region)
	extra sim.Time // added service time
	stall bool     // withhold the completion interrupt
}

// decide draws this request's fate. Called by the controller at
// start-of-service, in service order, which is deterministic under the sim
// engine.
func (m *FaultModel) decide(r *Request) faultDecision {
	if m.cfg.RTOnly && !r.RealTime {
		return faultDecision{}
	}
	var d faultDecision
	for _, b := range m.cfg.BadRegions {
		if b.overlaps(r) {
			d.err = ErrBadRegion
			m.stats.BadBlock++
			break
		}
	}
	if m.cfg.TransientProb > 0 && m.rng.Float64() < m.cfg.TransientProb {
		if d.err == nil {
			d.err = ErrMedium
			m.stats.Transient++
		}
	}
	if m.cfg.LatencyProb > 0 && m.rng.Float64() < m.cfg.LatencyProb {
		d.extra = m.rng.DurationRange(m.cfg.LatencyMin, m.cfg.LatencyMax)
		m.stats.Latency++
	}
	if m.cfg.StallProb > 0 && m.rng.Float64() < m.cfg.StallProb {
		if m.cfg.MaxStalls == 0 || m.stats.Stalls < m.cfg.MaxStalls {
			d.stall = true
			m.stats.Stalls++
		}
	}
	return d
}

// SetFaultModel installs (or clears, with nil) the structured fault model.
// It composes with SetFaultInjector: the model decides at start-of-service,
// the injector hook is still consulted at completion time.
func (d *Disk) SetFaultModel(m *FaultModel) { d.faults = m }
