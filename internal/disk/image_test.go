package disk

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestImageRoundtrip(t *testing.T) {
	e, d := testDisk(1)
	payload := bytes.Repeat([]byte{0x3C}, 512)
	d.PokeSector(100, payload)
	d.PokeSector(99999, bytes.Repeat([]byte{0x11}, 512))
	_ = e

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}

	e2 := sim.NewEngine(2)
	d2, err := LoadImage(e2, "sd1", &buf)
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	if d2.Geometry() != d.Geometry() {
		t.Fatalf("geometry differs: %+v vs %+v", d2.Geometry(), d.Geometry())
	}
	if d2.Params() != d.Params() {
		t.Fatalf("params differ")
	}
	if !bytes.Equal(d2.PeekSector(100), payload) {
		t.Fatal("sector 100 contents lost")
	}
	if d2.PeekSector(99999)[0] != 0x11 {
		t.Fatal("sector 99999 contents lost")
	}
	if d2.StoredSectors() != 2 {
		t.Fatalf("StoredSectors = %d, want 2", d2.StoredSectors())
	}
	if d2.PeekSector(5)[0] != 0 {
		t.Fatal("unwritten sector not zero after load")
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := LoadImage(e, "x", bytes.NewReader([]byte("not an image at all............................................................................"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadImage(e, "x", bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadImageTruncated(t *testing.T) {
	_, d := testDisk(1)
	d.PokeSector(7, make([]byte, 512))
	var buf bytes.Buffer
	d.SaveImage(&buf)
	raw := buf.Bytes()
	e := sim.NewEngine(1)
	if _, err := LoadImage(e, "x", bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Fatal("truncated image accepted")
	}
}
