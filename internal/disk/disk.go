package disk

import (
	"fmt"

	"repro/internal/sim"
)

// Request is one disk operation. Exactly one of read or write semantics
// applies: for writes, Data supplies Count*SectorSize bytes (nil writes
// zeros, i.e. a sparse write that allocates no payload); for reads, the
// completion callback receives the sector contents.
type Request struct {
	LBA      int64
	Count    int // sectors
	Write    bool
	Data     []byte // write payload; nil = sparse (sectors read back as zeros)
	RealTime bool   // true: real-time queue; false: normal queue

	// Done is invoked in interrupt context (a sim event) when the request
	// completes. For reads, data holds the sector contents. If a fault was
	// injected, Err is set and data is nil.
	Done func(r *Request, data []byte)

	// Err carries an injected media error to the completion handler.
	Err error

	// Tag is free for the submitter's bookkeeping.
	Tag any

	// Timing, filled in by the controller.
	Submitted sim.Time
	Started   sim.Time
	Completed sim.Time

	cyl  int
	fdec faultDecision // drawn at start-of-service when a fault model is set
}

// Stats aggregates controller activity.
type Stats struct {
	Served         [2]int   // [normal, realtime]
	BytesMoved     [2]int64 // payload bytes by queue
	BusyTime       sim.Time // time the mechanism was active
	SeekTime       sim.Time // cumulative seek component
	RotTime        sim.Time // cumulative rotational wait component
	TransferTime   sim.Time // cumulative transfer component
	CmdTime        sim.Time // cumulative command overhead
	MaxQueueDepth  [2]int   // per queue
	TotalQueueWait sim.Time // submit-to-start, summed over requests
	FaultLatency   sim.Time // injected service-time inflation (in BusyTime too)
	Canceled       int      // requests abandoned by Cancel
}

// Disk is a simulated disk with a two-queue (real-time / normal) C-SCAN
// controller, as in the paper's modified Real-Time Mach driver.
type Disk struct {
	eng  *sim.Engine
	geo  Geometry
	par  Params
	name string

	sectors map[int64][]byte

	// faultInjector, when set, is consulted at completion time; a non-nil
	// return fails the request with that error. A testing and
	// fault-tolerance facility — the paper's hardware had no error model,
	// but a server that wedges on the first medium error is not one a
	// downstream user can adopt. The structured, seed-deterministic way to
	// inject failures is the FaultModel (faults.go); this hook remains as
	// an escape hatch for hand-crafted scenarios.
	faultInjector func(r *Request) error

	// faults, when set, draws a fault decision for every request at
	// start-of-service (see FaultModel).
	faults *FaultModel

	// fifo disables C-SCAN ordering (requests served in arrival order) —
	// an ablation switch for measuring what the paper's seek-minimizing
	// queue discipline buys.
	fifo bool

	queues        [2][]*Request // index by queueRT / queueNormal
	active        *Request
	activeEnd     sim.Time // completion time of the active request
	activeStalled bool     // active request's completion was withheld (fault)
	arm           int      // current cylinder

	stats Stats
}

const (
	queueNormal = 0
	queueRT     = 1
)

// New creates a disk on the given engine. All sectors initially read as
// zeros.
func New(eng *sim.Engine, name string, g Geometry, p Params) *Disk {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &Disk{eng: eng, geo: g, par: p, name: name, sectors: make(map[int64][]byte)}
}

// Geometry returns the disk geometry.
func (d *Disk) Geometry() Geometry { return d.geo }

// Params returns the timing model.
func (d *Disk) Params() Params { return d.par }

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the accumulated statistics.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// Arm returns the cylinder the arm is currently positioned over.
func (d *Disk) Arm() int { return d.arm }

// QueueDepth returns the number of requests waiting (not in service) in the
// real-time and normal queues.
func (d *Disk) QueueDepth() (rt, normal int) {
	return len(d.queues[queueRT]), len(d.queues[queueNormal])
}

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.active != nil }

// ActiveNonRTRemaining returns how much service time remains on an active
// normal-queue request, or zero if the disk is idle or serving a real-time
// request. This is the O_other delay the admission test charges: a
// real-time batch submitted now waits exactly this long before the
// mechanism is free.
func (d *Disk) ActiveNonRTRemaining() sim.Time {
	if d.active == nil || d.active.RealTime {
		return 0
	}
	if rem := d.activeEnd - d.eng.Now(); rem > 0 {
		return rem
	}
	// A stalled request has no completion time; its nominal service may
	// already lie in the past.
	return 0
}

// Submit enqueues a request. If the mechanism is idle it starts service
// immediately. Submit may be called from any engine context.
func (d *Disk) Submit(r *Request) {
	if r.LBA < 0 || r.Count <= 0 || r.LBA+int64(r.Count) > d.geo.TotalSectors() {
		panic(fmt.Sprintf("disk %s: request out of range: lba=%d count=%d", d.name, r.LBA, r.Count))
	}
	if r.Write && r.Data != nil && len(r.Data) != r.Count*d.geo.SectorSize {
		panic(fmt.Sprintf("disk %s: write payload %d bytes for %d sectors", d.name, len(r.Data), r.Count))
	}
	r.Submitted = d.eng.Now()
	r.cyl = d.geo.CylinderOf(r.LBA)
	q := queueNormal
	if r.RealTime {
		q = queueRT
	}
	d.queues[q] = append(d.queues[q], r)
	if len(d.queues[q]) > d.stats.MaxQueueDepth[q] {
		d.stats.MaxQueueDepth[q] = len(d.queues[q])
	}
	if d.active == nil {
		d.startNext()
	}
}

// SetFIFO switches the queues to arrival-order service (ablation; the
// normal discipline is C-SCAN).
func (d *Disk) SetFIFO(fifo bool) { d.fifo = fifo }

// pickCSCAN removes and returns the next request from queue q under C-SCAN:
// the nearest request at or ahead of the arm (increasing cylinders); if none
// is ahead, sweep restarts from the lowest cylinder. Ties go to the earliest
// submission.
func (d *Disk) pickCSCAN(q int) *Request {
	queue := d.queues[q]
	if len(queue) == 0 {
		return nil
	}
	if d.fifo {
		r := queue[0]
		d.queues[q] = queue[1:]
		return r
	}
	bestIdx := -1
	bestAhead := false
	for i, r := range queue {
		ahead := r.cyl >= d.arm
		if bestIdx < 0 {
			bestIdx, bestAhead = i, ahead
			continue
		}
		best := queue[bestIdx]
		switch {
		case ahead && !bestAhead:
			bestIdx, bestAhead = i, true
		case ahead == bestAhead && r.cyl < best.cyl:
			bestIdx, bestAhead = i, ahead
		}
	}
	r := queue[bestIdx]
	d.queues[q] = append(queue[:bestIdx], queue[bestIdx+1:]...)
	return r
}

func (d *Disk) startNext() {
	r := d.pickCSCAN(queueRT)
	q := queueRT
	if r == nil {
		r = d.pickCSCAN(queueNormal)
		q = queueNormal
	}
	if r == nil {
		return
	}
	d.active = r
	r.Started = d.eng.Now()
	d.stats.TotalQueueWait += r.Started - r.Submitted

	seek := d.par.SeekTime(abs(r.cyl - d.arm))
	// Angular position when the seek (plus command overhead) completes.
	readyAt := d.eng.Now() + d.par.CmdOverhead + seek
	rotWait := d.rotationalWait(readyAt, r.LBA)
	transfer := d.transferTime(r.Count)
	service := d.par.CmdOverhead + seek + rotWait + transfer

	if d.faults != nil {
		r.fdec = d.faults.decide(r)
		if r.fdec.extra > 0 {
			service += r.fdec.extra
			d.stats.FaultLatency += r.fdec.extra
		}
	}

	d.stats.CmdTime += d.par.CmdOverhead
	d.stats.SeekTime += seek
	d.stats.RotTime += rotWait
	d.stats.TransferTime += transfer
	d.stats.BusyTime += service
	d.stats.Served[q]++
	d.stats.BytesMoved[q] += int64(r.Count * d.geo.SectorSize)

	d.arm = d.geo.CylinderOf(r.LBA + int64(r.Count) - 1)
	d.activeEnd = d.eng.Now() + service
	kind, qn := "read", "normal"
	if r.Write {
		kind = "write"
	}
	if r.RealTime {
		qn = "rt"
	}
	d.eng.Tracef("disk %s: %s %s lba=%d sectors=%d cyl=%d seek=%v rot=%v service=%v",
		d.name, qn, kind, r.LBA, r.Count, r.cyl, seek, rotWait, service)
	if r.fdec.stall {
		// The completion interrupt never fires: the mechanism wedges with
		// this request in service until the host abandons it with Cancel.
		d.activeStalled = true
		d.eng.Tracef("disk %s: request lba=%d stalled (completion withheld)", d.name, r.LBA)
		return
	}
	d.eng.After(service, func() { d.complete(r) })
}

// rotationalWait returns the deterministic delay from the platter's angular
// position at time t to the start of the sector at lba.
func (d *Disk) rotationalWait(t sim.Time, lba int64) sim.Time {
	spt := int64(d.geo.SectorsPerTrack)
	sectorPhase := float64(lba%spt) / float64(spt)
	diskPhase := float64(t%d.par.RotTime) / float64(d.par.RotTime)
	delta := sectorPhase - diskPhase
	if delta < 0 {
		delta++
	}
	return sim.Time(delta * float64(d.par.RotTime))
}

// transferTime returns the media-rate time to move count sectors.
func (d *Disk) transferTime(count int) sim.Time {
	return sim.Time(float64(count) / float64(d.geo.SectorsPerTrack) * float64(d.par.RotTime))
}

// SetFaultInjector installs (or clears, with nil) the fault hook.
func (d *Disk) SetFaultInjector(fn func(r *Request) error) { d.faultInjector = fn }

// Cancel abandons the active request if its completion interrupt was
// withheld (a stalled fault): the mechanism is freed, the request completes
// immediately with ErrAborted, and queued requests resume service. It
// reports whether the request was canceled; a request that is queued, is
// not in service, or whose completion is still coming on its own is left
// alone (false). Cancel is how the server's I/O watchdog keeps a wedged
// drive from wedging the request scheduler.
func (d *Disk) Cancel(r *Request) bool {
	if d.active != r || !d.activeStalled {
		return false
	}
	d.activeStalled = false
	d.active = nil
	r.Err = ErrAborted
	r.Completed = d.eng.Now()
	d.stats.Canceled++
	d.eng.Tracef("disk %s: request lba=%d aborted by host", d.name, r.LBA)
	if r.Done != nil {
		r.Done(r, nil)
	}
	if d.active == nil {
		d.startNext()
	}
	return true
}

// Stalled reports whether the active request's completion was withheld by
// an injected stall fault.
func (d *Disk) Stalled() bool { return d.activeStalled }

func (d *Disk) complete(r *Request) {
	r.Completed = d.eng.Now()
	var data []byte
	if r.fdec.err != nil {
		r.Err = r.fdec.err
	}
	if d.faultInjector != nil {
		if err := d.faultInjector(r); err != nil {
			r.Err = err
		}
	}
	switch {
	case r.Err != nil:
		// Failed request: no data moves.
	case r.Write:
		d.store(r)
	default:
		data = d.load(r)
	}
	d.active = nil
	// Deliver the interrupt before selecting the next request, as a driver
	// would: the completion handler may enqueue more work that should be
	// eligible immediately.
	if r.Done != nil {
		r.Done(r, data)
	}
	if d.active == nil {
		d.startNext()
	}
}

func (d *Disk) store(r *Request) {
	if r.Data == nil {
		// Sparse write: drop any previous payload so sectors read as zeros.
		for i := 0; i < r.Count; i++ {
			delete(d.sectors, r.LBA+int64(i))
		}
		return
	}
	ss := d.geo.SectorSize
	for i := 0; i < r.Count; i++ {
		src := r.Data[i*ss : (i+1)*ss]
		if allZero(src) {
			// Unwritten sectors read as zeros; storing zero payloads would
			// only bloat memory and images.
			delete(d.sectors, r.LBA+int64(i))
			continue
		}
		buf := make([]byte, ss)
		copy(buf, src)
		d.sectors[r.LBA+int64(i)] = buf
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func (d *Disk) load(r *Request) []byte {
	ss := d.geo.SectorSize
	out := make([]byte, r.Count*ss)
	for i := 0; i < r.Count; i++ {
		if sec, ok := d.sectors[r.LBA+int64(i)]; ok {
			copy(out[i*ss:], sec)
		}
	}
	return out
}

// PeekSector returns a copy of a sector's contents without disk timing —
// the equivalent of inspecting the image offline. Intended for tools and
// tests.
func (d *Disk) PeekSector(lba int64) []byte {
	//crasvet:allow hotalloc -- offline helper, hot-reachable only through the parity write model; mirrors the baselined load allocation
	out := make([]byte, d.geo.SectorSize)
	if sec, ok := d.sectors[lba]; ok {
		copy(out, sec)
	}
	return out
}

// PokeSector writes a sector without disk timing (offline image edit).
func (d *Disk) PokeSector(lba int64, data []byte) {
	if len(data) != d.geo.SectorSize {
		panic("disk: PokeSector payload size mismatch")
	}
	if allZero(data) {
		delete(d.sectors, lba)
		return
	}
	//crasvet:allow hotalloc -- offline helper, hot-reachable only through the parity rebuild; the store owns the copy
	buf := make([]byte, len(data))
	copy(buf, data)
	d.sectors[lba] = buf
}

// StoredSectors returns how many sectors hold explicit payloads.
func (d *Disk) StoredSectors() int { return len(d.sectors) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
