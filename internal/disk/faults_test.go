package disk

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// faultBed builds a small disk with a fault model installed.
func faultBed(seed int64, cfg FaultConfig) (*sim.Engine, *Disk, *FaultModel) {
	e := sim.NewEngine(seed)
	g, p := ST32550N()
	g.Cylinders = 200
	d := New(e, "sd0", g, p)
	m := NewFaultModel(e.RNG("faults:sd0"), cfg)
	d.SetFaultModel(m)
	return e, d, m
}

// outcome records one request's completion for comparison across runs.
type outcome struct {
	lba  int64
	err  string
	done sim.Time
}

func runFaultSequence(seed int64, cfg FaultConfig, requests int) ([]outcome, FaultStats) {
	e, d, m := faultBed(seed, cfg)
	var got []outcome
	for i := 0; i < requests; i++ {
		r := &Request{LBA: int64(i * 1000), Count: 64, RealTime: true}
		r.Done = func(r *Request, _ []byte) {
			errs := ""
			if r.Err != nil {
				errs = r.Err.Error()
			}
			got = append(got, outcome{lba: r.LBA, err: errs, done: r.Completed})
		}
		d.Submit(r)
	}
	e.RunUntil(time.Minute)
	return got, m.Stats()
}

func TestFaultModelDeterministicReplay(t *testing.T) {
	cfg := FaultConfig{
		TransientProb: 0.3,
		LatencyProb:   0.4, LatencyMin: time.Millisecond, LatencyMax: 20 * time.Millisecond,
		BadRegions: []BadRegion{{LBA: 5000, Sectors: 500}},
	}
	a, sa := runFaultSequence(42, cfg, 40)
	b, sb := runFaultSequence(42, cfg, 40)
	if sa != sb {
		t.Fatalf("fault stats diverged across identical runs: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("completion counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must draw a different fault pattern (with these
	// probabilities 40 requests almost surely differ somewhere).
	c, sc := runFaultSequence(43, cfg, 40)
	same := sa == sc && len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestFaultModelBadRegionPersistent(t *testing.T) {
	e, d, m := faultBed(1, FaultConfig{BadRegions: []BadRegion{{LBA: 1000, Sectors: 100}}})
	fails, oks := 0, 0
	submit := func(lba int64) {
		d.Submit(&Request{LBA: lba, Count: 64, RealTime: true, Done: func(r *Request, _ []byte) {
			if errors.Is(r.Err, ErrBadRegion) {
				fails++
			} else if r.Err == nil {
				oks++
			}
		}})
	}
	// Three attempts on the region (a retry loop) and three off it.
	for i := 0; i < 3; i++ {
		submit(1050)
		submit(5000)
	}
	e.RunUntil(time.Minute)
	if fails != 3 || oks != 3 {
		t.Fatalf("bad region: %d fails, %d oks, want 3 and 3 (stats %+v)", fails, oks, m.Stats())
	}
	// Boundary: a request ending exactly at the region start is clean.
	submit(1000 - 64)
	e.RunUntil(2 * time.Minute)
	if oks != 4 {
		t.Fatalf("request adjacent to bad region failed")
	}
}

func TestFaultModelStallWedgesUntilCancel(t *testing.T) {
	e, d, _ := faultBed(1, FaultConfig{StallProb: 1, MaxStalls: 1})
	var stalledReq *Request
	completions := 0
	first := &Request{LBA: 0, Count: 64, RealTime: true, Done: func(r *Request, _ []byte) {
		completions++
	}}
	stalledReq = first
	d.Submit(first)
	second := &Request{LBA: 2000, Count: 64, RealTime: true, Done: func(r *Request, _ []byte) {
		completions++
		if r.Err != nil {
			t.Errorf("queued request behind the stall failed: %v", r.Err)
		}
	}}
	d.Submit(second)

	e.RunUntil(10 * time.Second)
	if completions != 0 {
		t.Fatalf("stalled disk delivered %d completions", completions)
	}
	if !d.Busy() || !d.Stalled() {
		t.Fatal("disk not wedged on the stalled request")
	}
	// Canceling a queued (not stalled) request is refused.
	e.Spawn("cancel", func(p *sim.Proc) {
		if d.Cancel(second) {
			t.Error("Cancel succeeded on a queued request")
		}
		if !d.Cancel(stalledReq) {
			t.Error("Cancel refused the stalled request")
		}
		if d.Cancel(stalledReq) {
			t.Error("double Cancel succeeded")
		}
	})
	e.RunUntil(20 * time.Second)
	if completions != 2 {
		t.Fatalf("after cancel: %d completions, want 2 (abort + queued request)", completions)
	}
	if !errors.Is(first.Err, ErrAborted) {
		t.Fatalf("canceled request error = %v, want ErrAborted", first.Err)
	}
	if d.Stats().Canceled != 1 {
		t.Fatalf("stats.Canceled = %d, want 1", d.Stats().Canceled)
	}
}

func TestFaultModelLatencyInflation(t *testing.T) {
	serve := func(cfg FaultConfig) sim.Time {
		e, d, _ := faultBed(1, cfg)
		var done sim.Time
		d.Submit(&Request{LBA: 0, Count: 64, RealTime: true, Done: func(r *Request, _ []byte) {
			done = r.Completed
		}})
		e.RunUntil(time.Minute)
		return done
	}
	base := serve(FaultConfig{})
	slow := serve(FaultConfig{LatencyProb: 1, LatencyMin: 50 * time.Millisecond, LatencyMax: 60 * time.Millisecond})
	if slow < base+50*time.Millisecond {
		t.Fatalf("latency fault did not inflate service: base %v, slow %v", base, slow)
	}
}

func TestFaultModelRTOnlySparesNormalQueue(t *testing.T) {
	e, d, m := faultBed(1, FaultConfig{TransientProb: 1, RTOnly: true})
	var rtErr, normErr error
	d.Submit(&Request{LBA: 0, Count: 64, RealTime: true, Done: func(r *Request, _ []byte) { rtErr = r.Err }})
	d.Submit(&Request{LBA: 4000, Count: 64, Done: func(r *Request, _ []byte) { normErr = r.Err }})
	e.RunUntil(time.Minute)
	if !errors.Is(rtErr, ErrMedium) {
		t.Fatalf("real-time request error = %v, want ErrMedium", rtErr)
	}
	if normErr != nil {
		t.Fatalf("normal-queue request was faulted despite RTOnly: %v", normErr)
	}
	if s := m.Stats(); s.Transient != 1 {
		t.Fatalf("stats.Transient = %d, want 1", s.Transient)
	}
}

// The escape hatch composes with the model: the injector still sees every
// completion and may fail requests the model left clean.
func TestFaultInjectorEscapeHatchComposes(t *testing.T) {
	e, d, _ := faultBed(1, FaultConfig{})
	errBoom := errors.New("boom")
	d.SetFaultInjector(func(r *Request) error {
		if r.LBA == 3000 {
			return errBoom
		}
		return nil
	})
	var got [2]error
	d.Submit(&Request{LBA: 3000, Count: 8, RealTime: true, Done: func(r *Request, _ []byte) { got[0] = r.Err }})
	d.Submit(&Request{LBA: 6000, Count: 8, RealTime: true, Done: func(r *Request, _ []byte) { got[1] = r.Err }})
	e.RunUntil(time.Minute)
	if !errors.Is(got[0], errBoom) || got[1] != nil {
		t.Fatalf("injector escape hatch broken: %v, %v", got[0], got[1])
	}
}
