package disk

import (
	"fmt"

	"repro/internal/sim"
)

// Volume is a striped (RAID-0) array of simulated disks presenting one
// logical LBA space. Logical sectors are laid out in stripe units of
// StripeSectors, rotating round-robin across the members: unit u lives on
// member u mod N, at member row u div N. The paper's server drove a single
// ST32550N; a volume is the "big server" scaling direction its evaluation
// leaves open — aggregate bandwidth grows with spindle count while every
// member keeps its own geometry, timing model, fault model and C-SCAN
// controller.
//
// Two properties the server relies on fall out of the mapping:
//
//   - the mapping is a bijection from logical sectors onto the used member
//     sectors, so an image striped across N disks is exactly the image;
//   - a contiguous logical range projects to at most ONE contiguous run per
//     member (consecutive same-member units land on consecutive member
//     rows), so each stream read costs each member at most one operation.
//
// A single-member volume is the identity: the math degenerates to
// diskLBA = lba, and the full member capacity is exposed, so a one-disk
// volume is bit-for-bit the bare disk.
type Volume struct {
	name   string
	disks  []*Disk
	stripe int64    // sectors per stripe unit
	geo    Geometry // logical geometry (the member geometry for one disk)
	parity bool     // rotating-parity mode (parity.go); false = pure RAID-0
	dead   []bool   // per-member dead flags; only parity volumes may set one
}

// Frag is one member disk's share of a logical sector range: the unit the
// server's per-disk queues, watchdog and retry budget operate on.
type Frag struct {
	Disk  int   // member index
	LBA   int64 // member LBA
	Count int   // sectors
}

// NewVolume builds a striped volume over identical member disks. For a
// single member the volume is the identity mapping over the full disk; for
// more, the logical capacity is the members' capacity rounded down to whole
// stripe rows (N*StripeSectors sectors per row). Degenerate configurations
// — no members, a non-positive stripe unit, mismatched member geometry, or
// a stripe unit larger than a member — are rejected.
func NewVolume(name string, members []*Disk, stripeSectors int64) (*Volume, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("disk: volume %s has no member disks", name)
	}
	if stripeSectors <= 0 {
		return nil, fmt.Errorf("disk: volume %s: stripe unit %d sectors must be positive", name, stripeSectors)
	}
	g0 := members[0].Geometry()
	p0 := members[0].Params()
	for i, d := range members[1:] {
		if d.Geometry() != g0 {
			return nil, fmt.Errorf("disk: volume %s: member %d geometry %+v != member 0 geometry %+v",
				name, i+1, d.Geometry(), g0)
		}
		if d.Params() != p0 {
			return nil, fmt.Errorf("disk: volume %s: member %d timing model differs from member 0", name, i+1)
		}
	}
	v := &Volume{name: name, disks: append([]*Disk(nil), members...), stripe: stripeSectors}
	if len(members) == 1 {
		// Identity: full member capacity, no row truncation. (The striped
		// mapping already degenerates to lba for n=1; keeping the member
		// geometry keeps capacity — member capacity is rarely divisible by
		// the stripe unit.)
		v.geo = g0
		return v, nil
	}
	rows := g0.TotalSectors() / stripeSectors
	if rows == 0 {
		return nil, fmt.Errorf("disk: volume %s: stripe unit %d sectors exceeds member capacity %d",
			name, stripeSectors, g0.TotalSectors())
	}
	if rows > int64(int(^uint(0)>>1)) { // cannot happen with real geometries; guards the int cast
		return nil, fmt.Errorf("disk: volume %s: too many stripe rows", name)
	}
	// The logical geometry is synthesized so TotalSectors() is exactly the
	// usable capacity: one "cylinder" per stripe row, one "head" per member.
	// Only the capacity arithmetic is meaningful — member service timing
	// comes from each member's own real geometry.
	v.geo = Geometry{
		Cylinders:       int(rows),
		Heads:           len(members),
		SectorsPerTrack: int(stripeSectors),
		SectorSize:      g0.SectorSize,
	}
	return v, nil
}

// SingleVolume wraps one disk as an identity volume — the compatibility
// path that lets every single-disk configuration run unchanged through the
// volume-aware server.
func SingleVolume(d *Disk) *Volume {
	return &Volume{name: d.name, disks: []*Disk{d}, stripe: d.geo.TotalSectors(), geo: d.geo}
}

// Name returns the volume name.
func (v *Volume) Name() string { return v.name }

// Geometry returns the logical geometry; TotalSectors() is the usable
// striped capacity.
func (v *Volume) Geometry() Geometry { return v.geo }

// NumDisks returns the member count.
func (v *Volume) NumDisks() int { return len(v.disks) }

// Disk returns member i.
func (v *Volume) Disk(i int) *Disk { return v.disks[i] }

// Disks returns the member slice (shared, not a copy — callers must not
// mutate it).
func (v *Volume) Disks() []*Disk { return v.disks }

// StripeSectors returns the stripe unit in sectors.
func (v *Volume) StripeSectors() int64 { return v.stripe }

// StripeBytes returns the stripe unit in bytes.
func (v *Volume) StripeBytes() int64 { return v.stripe * int64(v.geo.SectorSize) }

// locateUnit maps a logical stripe unit to its member disk and member row.
// RAID-0: unit u → member u mod N, row u div N. Parity: the left-symmetric
// rotation (parity.go) — row r = u div (N-1) holds its parity on member
// p = (N-1 - r mod N) mod N and data unit k = u mod (N-1) on (p+1+k) mod N.
func (v *Volume) locateUnit(unit int64) (diskIdx int, row int64) {
	n := int64(len(v.disks))
	if !v.parity {
		return int(unit % n), unit / n
	}
	nd := n - 1
	r := unit / nd
	p := (n - 1 - r%n) % n
	return int((p + 1 + unit%nd) % n), r
}

// Locate maps one logical sector to its member disk and member LBA.
func (v *Volume) Locate(lba int64) (diskIdx int, diskLBA int64) {
	d, row := v.locateUnit(lba / v.stripe)
	return d, row*v.stripe + lba%v.stripe
}

// forEachUnit walks the stripe-unit slices of a logical range in logical
// order, reporting each slice's member placement and its sector offset
// from the start of the range.
func (v *Volume) forEachUnit(lba int64, count int, fn func(diskIdx int, diskLBA int64, sectors int, off int64)) {
	end := lba + int64(count)
	for cur := lba; cur < end; {
		unit := cur / v.stripe
		uend := (unit + 1) * v.stripe
		if uend > end {
			uend = end
		}
		d, row := v.locateUnit(unit)
		fn(d, row*v.stripe+cur%v.stripe, int(uend-cur), cur-lba)
		cur = uend
	}
}

// Fragments splits a logical sector range into per-member fragments,
// ordered by member index. A contiguous logical range yields at most one
// fragment per member: within the range only its first unit can miss a
// prefix and only its last can miss a suffix, and consecutive same-member
// units are member-LBA-contiguous.
func (v *Volume) Fragments(lba int64, count int) []Frag {
	if len(v.disks) == 1 {
		return []Frag{{Disk: 0, LBA: lba, Count: count}}
	}
	if v.parity {
		return v.parityFragments(lba, count)
	}
	type span struct {
		lo, hi int64
		set    bool
	}
	spans := make([]span, len(v.disks))
	v.forEachUnit(lba, count, func(d int, dlba int64, sectors int, _ int64) {
		if !spans[d].set {
			spans[d] = span{lo: dlba, hi: dlba + int64(sectors), set: true}
			return
		}
		if spans[d].hi != dlba {
			panic(fmt.Sprintf("disk: volume %s: non-contiguous fragment on member %d", v.name, d))
		}
		spans[d].hi += int64(sectors)
	})
	frags := make([]Frag, 0, len(v.disks))
	for d, sp := range spans {
		if sp.set {
			frags = append(frags, Frag{Disk: d, LBA: sp.lo, Count: int(sp.hi - sp.lo)})
		}
	}
	return frags
}

// Submit enqueues a logical request, scattering it across the members and
// gathering the completions: the caller's Done fires once, after the last
// fragment completes, with the de-interleaved data (reads) and the
// worst-case member completion time. Err carries the first fragment
// failure. A single-member volume passes the request through untouched.
func (v *Volume) Submit(r *Request) {
	if len(v.disks) == 1 {
		v.disks[0].Submit(r)
		return
	}
	if r.LBA < 0 || r.Count <= 0 || r.LBA+int64(r.Count) > v.geo.TotalSectors() {
		panic(fmt.Sprintf("disk: volume %s: request out of range: lba=%d count=%d", v.name, r.LBA, r.Count))
	}
	ss := v.geo.SectorSize
	if r.Write && r.Data != nil && len(r.Data) != r.Count*ss {
		panic(fmt.Sprintf("disk: volume %s: write payload %d bytes for %d sectors", v.name, len(r.Data), r.Count))
	}
	if v.parity {
		if r.Write {
			v.submitParityWrite(r)
		} else {
			v.submitParityRead(r)
		}
		return
	}
	frags := v.Fragments(r.LBA, r.Count)
	r.Submitted = v.disks[0].eng.Now()
	var assembled []byte
	if !r.Write {
		assembled = make([]byte, r.Count*ss)
	}
	remaining := len(frags)
	for i := range frags {
		f := frags[i]
		child := &Request{
			LBA: f.LBA, Count: f.Count, Write: r.Write,
			Data:     v.scatterPayload(r, f),
			RealTime: r.RealTime,
			Done: func(cr *Request, data []byte) {
				if cr.Err != nil && r.Err == nil {
					r.Err = cr.Err
				}
				if r.Started == 0 || cr.Started < r.Started {
					r.Started = cr.Started
				}
				if cr.Completed > r.Completed {
					r.Completed = cr.Completed
				}
				if data != nil {
					v.gather(r, f, data, assembled)
				}
				remaining--
				if remaining > 0 {
					return
				}
				if r.Done != nil {
					var out []byte
					if r.Err == nil && !r.Write {
						out = assembled
					}
					r.Done(r, out)
				}
			},
		}
		v.disks[f.Disk].Submit(child)
	}
}

// scatterPayload builds one fragment's write payload from the logical
// payload, unit by unit (a fragment's member run interleaves with other
// members' units in logical order). A nil logical payload stays nil — a
// sparse write scatters as sparse writes.
func (v *Volume) scatterPayload(r *Request, f Frag) []byte {
	if !r.Write || r.Data == nil {
		return nil
	}
	ss := v.geo.SectorSize
	out := make([]byte, f.Count*ss)
	v.forEachUnit(r.LBA, r.Count, func(d int, dlba int64, sectors int, off int64) {
		// A parity-mode member can carry several fragments of one range;
		// only the units inside THIS fragment belong to its payload.
		if d != f.Disk || dlba < f.LBA || dlba >= f.LBA+int64(f.Count) {
			return
		}
		copy(out[(dlba-f.LBA)*int64(ss):], r.Data[off*int64(ss):(off+int64(sectors))*int64(ss)])
	})
	return out
}

// gather de-interleaves one fragment's read data into the logical buffer.
func (v *Volume) gather(r *Request, f Frag, data, assembled []byte) {
	ss := v.geo.SectorSize
	v.forEachUnit(r.LBA, r.Count, func(d int, dlba int64, sectors int, off int64) {
		if d != f.Disk {
			return
		}
		copy(assembled[off*int64(ss):], data[(dlba-f.LBA)*int64(ss):(dlba-f.LBA+int64(sectors))*int64(ss)])
	})
}

// ReadSync submits a logical read and blocks the calling process until it
// completes. Mirrors Disk.ReadSync, including the loud failure on injected
// faults — the synchronous path is file-system traffic that must not
// corrupt silently.
func (v *Volume) ReadSync(p *sim.Proc, lba int64, count int, realTime bool) []byte {
	if len(v.disks) == 1 {
		return v.disks[0].ReadSync(p, lba, count, realTime)
	}
	var out []byte
	done := false
	v.Submit(&Request{
		LBA: lba, Count: count, RealTime: realTime,
		Done: func(r *Request, data []byte) {
			if r.Err != nil {
				panic("disk: unhandled injected fault on synchronous volume read")
			}
			out = data
			done = true
			p.Unblock()
		},
	})
	for !done {
		p.Block("disk:read")
	}
	return out
}

// WriteSync submits a logical write and blocks the calling process until
// every fragment completes.
func (v *Volume) WriteSync(p *sim.Proc, lba int64, count int, data []byte, realTime bool) {
	if len(v.disks) == 1 {
		v.disks[0].WriteSync(p, lba, count, data, realTime)
		return
	}
	done := false
	v.Submit(&Request{
		LBA: lba, Count: count, Write: true, Data: data, RealTime: realTime,
		Done: func(r *Request, _ []byte) {
			done = true
			p.Unblock()
		},
	})
	for !done {
		p.Block("disk:write")
	}
}

// PeekSector returns a copy of a logical sector without disk timing.
func (v *Volume) PeekSector(lba int64) []byte {
	d, dlba := v.Locate(lba)
	return v.disks[d].PeekSector(dlba)
}

// PokeSector writes a logical sector without disk timing (offline image
// edit — mkfs and the movie layout run through this). On a parity volume
// the row's parity sector is updated in the same step: parity_new =
// parity_old XOR data_old XOR data_new, so offline edits keep every row
// XORing to zero.
func (v *Volume) PokeSector(lba int64, data []byte) {
	d, dlba := v.Locate(lba)
	if v.parity {
		p := v.ParityDisk(dlba / v.stripe)
		old := v.disks[d].PeekSector(dlba)
		psec := v.disks[p].PeekSector(dlba)
		for i := range psec {
			psec[i] ^= old[i] ^ data[i]
		}
		v.disks[p].PokeSector(dlba, psec)
	}
	v.disks[d].PokeSector(dlba, data)
}

// Stats returns the members' controller statistics summed; MaxQueueDepth is
// the worst member. The sum hides which member is sick — per-member
// breakdowns come from MemberStats(), which chaos assertions and the parity
// sweep use to name the dead member.
func (v *Volume) Stats() Stats {
	var out Stats
	for _, d := range v.disks {
		s := d.Stats()
		for q := 0; q < 2; q++ {
			out.Served[q] += s.Served[q]
			out.BytesMoved[q] += s.BytesMoved[q]
			if s.MaxQueueDepth[q] > out.MaxQueueDepth[q] {
				out.MaxQueueDepth[q] = s.MaxQueueDepth[q]
			}
		}
		out.BusyTime += s.BusyTime
		out.SeekTime += s.SeekTime
		out.RotTime += s.RotTime
		out.TransferTime += s.TransferTime
		out.CmdTime += s.CmdTime
		out.TotalQueueWait += s.TotalQueueWait
		out.FaultLatency += s.FaultLatency
		out.Canceled += s.Canceled
	}
	return out
}

// Stalled reports whether any member is wedged on a stalled request.
func (v *Volume) Stalled() bool {
	for _, d := range v.disks {
		if d.Stalled() {
			return true
		}
	}
	return false
}

// SetFIFO switches every member's queues to arrival-order service (the
// C-SCAN ablation switch, broadcast).
func (v *Volume) SetFIFO(fifo bool) {
	for _, d := range v.disks {
		d.SetFIFO(fifo)
	}
}
