package disk

import (
	"fmt"
	"sort"
)

// Rotating-parity (RAID-5 style) volume mode.
//
// In parity mode each stripe row of N member units holds N-1 data units and
// one parity unit that XORs the row to zero. The parity unit rotates
// left-symmetric: row r's parity lives on member p = (N-1 - r mod N) mod N,
// and the row's data units k = 0..N-2 follow on members (p+1+k) mod N. Two
// consequences the server relies on:
//
//   - consecutive logical units assigned to the same member land on strictly
//     increasing member rows, so a contiguous logical range still projects
//     to at most one contiguous READ per member once the read is allowed to
//     span the member's interleaved parity units (read-and-discard);
//   - any N-1 members determine the Nth: a row's missing unit is the XOR of
//     the surviving N-1 units, so reads touching a dead member are served
//     degraded from the survivors and a replacement member is rebuilt row by
//     row.
//
// Logical capacity is rows × (N-1) × StripeSectors. N=1 and N=2 have no
// useful parity rotation (N=2 is mirroring, a different mode) and are
// rejected — they stay pure RAID-0.

// NewParityVolume builds a rotating-parity volume over N >= 3 identical
// member disks. Degenerate configurations are rejected exactly as for
// NewVolume; fewer than three members additionally so, because one parity
// unit per row needs at least two data units to be distinct from mirroring.
func NewParityVolume(name string, members []*Disk, stripeSectors int64) (*Volume, error) {
	if len(members) < 3 {
		return nil, fmt.Errorf("disk: parity volume %s: need at least 3 members, got %d (N<3 volumes stay pure RAID-0)",
			name, len(members))
	}
	v, err := NewVolume(name, members, stripeSectors)
	if err != nil {
		return nil, err
	}
	v.parity = true
	v.dead = make([]bool, len(members))
	// One "cylinder" per stripe row, one "head" per DATA unit: TotalSectors()
	// is exactly the usable (post-parity) capacity.
	v.geo.Heads = len(members) - 1
	return v, nil
}

// Parity reports whether the volume runs in rotating-parity mode.
func (v *Volume) Parity() bool { return v.parity }

// Rows returns the number of stripe rows (parity and multi-member RAID-0
// volumes; a single-member volume has no row structure).
func (v *Volume) Rows() int64 {
	if len(v.disks) == 1 {
		return 0
	}
	return int64(v.geo.Cylinders)
}

// ParityDisk returns the member holding row r's parity unit.
func (v *Volume) ParityDisk(row int64) int {
	n := int64(len(v.disks))
	return int((n - 1 - row%n) % n)
}

// SetDead marks member i dead (true) or alive (false). Dead members receive
// no traffic: reads touching them are served degraded from the survivors.
// Only parity volumes can survive a dead member, and single parity can
// survive only one — both misuses panic loudly rather than corrupt reads.
func (v *Volume) SetDead(i int, dead bool) {
	if !v.parity {
		//crasvet:allow hotalloc -- panic path
		panic(fmt.Sprintf("disk: volume %s: SetDead on a non-parity volume has no redundancy to fall back on", v.name))
	}
	if dead && !v.dead[i] && v.NumDead() > 0 {
		//crasvet:allow hotalloc -- panic path
		panic(fmt.Sprintf("disk: volume %s: member %d cannot die with member %d already dead (single parity)",
			v.name, i, v.DeadMember()))
	}
	v.dead[i] = dead
}

// Dead reports whether member i is marked dead.
func (v *Volume) Dead(i int) bool { return v.parity && v.dead[i] }

// NumDead returns the number of dead members.
func (v *Volume) NumDead() int {
	n := 0
	for _, d := range v.dead {
		if d {
			n++
		}
	}
	return n
}

// DeadMember returns the dead member's index, or -1 if all are alive.
func (v *Volume) DeadMember() int {
	for i, d := range v.dead {
		if d {
			return i
		}
	}
	return -1
}

// MemberStats returns each member's controller statistics, indexed by
// member. The aggregate view is Stats().
func (v *Volume) MemberStats() []Stats {
	out := make([]Stats, len(v.disks))
	for i, d := range v.disks {
		out[i] = d.Stats()
	}
	return out
}

// parityFragments computes exact data fragments for a parity volume: the
// stripe-unit slices of the range merged per member where member-contiguous.
// Unlike the RAID-0 mapping, the rotation interleaves parity units into each
// member's LBA space, so a member can carry several fragments. Safe for
// writes — parity units in the holes are never touched.
func (v *Volume) parityFragments(lba int64, count int) []Frag {
	//crasvet:allow hotalloc -- mapping scratch bounded by member count; mirrors the baselined RAID-0 Fragments allocation
	last := make([]int, len(v.disks))
	for i := range last {
		last[i] = -1
	}
	//crasvet:allow hotalloc -- same bounded mapping scratch
	frags := make([]Frag, 0, len(v.disks))
	//crasvet:allow hotalloc -- closure is the unit walk itself; one per mapping call, not per admitted stream cycle
	v.forEachUnit(lba, count, func(d int, dlba int64, sectors int, _ int64) {
		if j := last[d]; j >= 0 && frags[j].LBA+int64(frags[j].Count) == dlba {
			frags[j].Count += sectors
			return
		}
		last[d] = len(frags)
		frags = append(frags, Frag{Disk: d, LBA: dlba, Count: sectors}) //crasvet:allow hotalloc -- capacity len(disks) preallocated; a parity member carries few fragments
	})
	//crasvet:allow hotalloc -- sort.Slice closure, one per mapping call
	sort.Slice(frags, func(i, j int) bool {
		if frags[i].Disk != frags[j].Disk {
			return frags[i].Disk < frags[j].Disk
		}
		return frags[i].LBA < frags[j].LBA
	})
	return frags
}

// ReadFragments computes the member READS serving a logical range under the
// volume's current dead set, and the number of stripe units that must be
// XOR-reconstructed because they live on a dead member. For a healthy
// parity volume each member gets at most ONE contiguous fragment spanning
// its interleaved parity units (cheaper to read past a 1-unit hole than to
// pay a second operation); reconstruction widens each survivor's fragment
// to cover the affected rows in full, since rebuilding a dead unit needs
// every survivor's whole unit for those rows. Non-parity volumes delegate
// to Fragments. Results are read-only: writing these fragments would
// clobber parity units.
func (v *Volume) ReadFragments(lba int64, count int) ([]Frag, int) {
	if !v.parity {
		return v.Fragments(lba, count), 0
	}
	type span struct {
		lo, hi int64
		set    bool
	}
	//crasvet:allow hotalloc -- mapping scratch bounded by member count; mirrors the baselined RAID-0 Fragments allocation
	spans := make([]span, len(v.disks))
	//crasvet:allow hotalloc -- one closure per mapping call, not per admitted stream cycle
	extend := func(d int, lo, hi int64) {
		if !spans[d].set {
			spans[d] = span{lo: lo, hi: hi, set: true}
			return
		}
		if lo < spans[d].lo {
			spans[d].lo = lo
		}
		if hi > spans[d].hi {
			spans[d].hi = hi
		}
	}
	recon := 0
	//crasvet:allow hotalloc -- one closure per mapping call, not per admitted stream cycle
	v.forEachUnit(lba, count, func(d int, dlba int64, sectors int, _ int64) {
		if !v.dead[d] {
			extend(d, dlba, dlba+int64(sectors))
			return
		}
		recon++
		row := dlba / v.stripe
		for m := range v.disks {
			if m == d || v.dead[m] {
				continue
			}
			extend(m, row*v.stripe, (row+1)*v.stripe)
		}
	})
	//crasvet:allow hotalloc -- result bounded by member count; mirrors the baselined RAID-0 Fragments allocation
	frags := make([]Frag, 0, len(v.disks))
	for d, sp := range spans {
		if sp.set {
			frags = append(frags, Frag{Disk: d, LBA: sp.lo, Count: int(sp.hi - sp.lo)}) //crasvet:allow hotalloc -- capacity len(disks) preallocated; one span per member
		}
	}
	return frags, recon
}

// ReconstructFrags returns the survivor reads that reconstruct member m's
// units in rows [r0, r1]: every other live member's full units for those
// rows. The server uses this to swap a failed fragment for its XOR
// reconstruction inside the same read barrier. Nil when reconstruction is
// impossible — a non-parity volume, or a second member already missing.
func (v *Volume) ReconstructFrags(m int, r0, r1 int64) []Frag {
	if !v.parity || (v.NumDead() > 0 && !v.dead[m]) {
		return nil
	}
	//crasvet:allow hotalloc -- fault path: runs only when a member read hard-fails; bounded by member count
	frags := make([]Frag, 0, len(v.disks)-1)
	for d := range v.disks {
		if d == m || v.dead[d] {
			continue
		}
		frags = append(frags, Frag{Disk: d, LBA: r0 * v.stripe, Count: int((r1 - r0 + 1) * v.stripe)}) //crasvet:allow hotalloc -- capacity len(disks)-1 preallocated
	}
	return frags
}

// peekRun returns member d's stored bytes for [lba, lba+count) sectors,
// without disk timing.
func (v *Volume) peekRun(d int, lba int64, count int) []byte {
	ss := v.geo.SectorSize
	//crasvet:allow hotalloc -- offline/parity-write arithmetic buffer; mirrors the baselined Disk.load allocation
	out := make([]byte, count*ss)
	for i := 0; i < count; i++ {
		copy(out[i*ss:], v.disks[d].PeekSector(lba+int64(i)))
	}
	return out
}

// xorInto XORs src into dst (dst must be at least as long as src).
func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// reconstructUnitOffline rebuilds the unit member m holds in the given row
// by XORing every other member's stored unit — no disk timing. This is the
// arithmetic core of degraded reads and rebuild; the timed paths read the
// same bytes through the members' controllers first.
func (v *Volume) reconstructUnitOffline(row int64, m int) []byte {
	//crasvet:allow hotalloc -- XOR accumulator for degraded/rebuild arithmetic; mirrors the baselined Disk.load allocation
	out := make([]byte, int(v.stripe)*v.geo.SectorSize)
	for d := range v.disks {
		if d == m {
			continue
		}
		xorInto(out, v.peekRun(d, row*v.stripe, int(v.stripe)))
	}
	return out
}

// RebuildMember reconstructs member m's entire contents from the survivors,
// offline (no disk timing): the property-test and fsck analogue of the
// server's paced online rebuild. The member's stale sectors are overwritten
// row by row.
func (v *Volume) RebuildMember(m int) {
	if !v.parity {
		//crasvet:allow hotalloc -- panic path
		panic(fmt.Sprintf("disk: volume %s: RebuildMember on a non-parity volume", v.name))
	}
	ss := v.geo.SectorSize
	for row := int64(0); row < v.Rows(); row++ {
		unit := v.reconstructUnitOffline(row, m)
		for i := int64(0); i < v.stripe; i++ {
			v.disks[m].PokeSector(row*v.stripe+i, unit[int(i)*ss:int(i+1)*ss])
		}
	}
}

// VerifyParity checks that every stripe row XORs to zero, returning the
// first inconsistent row, or -1 when the volume is consistent. Offline —
// this is the cmfsck -parity pass.
func (v *Volume) VerifyParity() int64 {
	if !v.parity {
		return -1
	}
	for row := int64(0); row < v.Rows(); row++ {
		acc := make([]byte, int(v.stripe)*v.geo.SectorSize)
		for d := range v.disks {
			xorInto(acc, v.peekRun(d, row*v.stripe, int(v.stripe)))
		}
		if !allZero(acc) {
			return row
		}
	}
	return -1
}

// submitParityRead scatters a logical read over the survivors and gathers
// the completions, XOR-reconstructing any units held by a dead member. The
// caller's Done fires once, after the last fragment, exactly as for RAID-0.
func (v *Volume) submitParityRead(r *Request) {
	frags, _ := v.ReadFragments(r.LBA, r.Count)
	r.Submitted = v.disks[0].eng.Now()
	ss := v.geo.SectorSize
	assembled := make([]byte, r.Count*ss)
	memberFrag := make([]Frag, len(v.disks))
	memberBuf := make([][]byte, len(v.disks))
	remaining := len(frags)
	for i := range frags {
		f := frags[i]
		memberFrag[f.Disk] = f
		child := &Request{
			LBA: f.LBA, Count: f.Count, RealTime: r.RealTime,
			Done: func(cr *Request, data []byte) {
				if cr.Err != nil && r.Err == nil {
					r.Err = cr.Err
				}
				if r.Started == 0 || cr.Started < r.Started {
					r.Started = cr.Started
				}
				if cr.Completed > r.Completed {
					r.Completed = cr.Completed
				}
				memberBuf[f.Disk] = data
				remaining--
				if remaining > 0 {
					return
				}
				if r.Err == nil {
					v.gatherParity(r, memberFrag, memberBuf, assembled)
				}
				if r.Done != nil {
					var out []byte
					if r.Err == nil {
						out = assembled
					}
					r.Done(r, out)
				}
			},
		}
		v.disks[f.Disk].Submit(child)
	}
}

// gatherParity de-interleaves the member reads into the logical buffer,
// XORing the survivors' row units together wherever the unit's home member
// is dead.
func (v *Volume) gatherParity(r *Request, memberFrag []Frag, memberBuf [][]byte, assembled []byte) {
	ss := int64(v.geo.SectorSize)
	v.forEachUnit(r.LBA, r.Count, func(d int, dlba int64, sectors int, off int64) {
		dst := assembled[off*ss : (off+int64(sectors))*ss]
		if !v.dead[d] {
			src := memberBuf[d]
			lo := (dlba - memberFrag[d].LBA) * ss
			copy(dst, src[lo:lo+int64(sectors)*ss])
			return
		}
		for m := range v.disks {
			if m == d || v.dead[m] {
				continue
			}
			lo := (dlba - memberFrag[m].LBA) * ss
			xorInto(dst, memberBuf[m][lo:lo+int64(sectors)*ss])
		}
	})
}

// overlayWrite applies the slice of a logical write covering stripe unit u
// onto the unit's current content. A nil payload overlays zeros (sparse
// writes store zeros).
func (v *Volume) overlayWrite(cur []byte, u int64, r *Request) {
	ss := int64(v.geo.SectorSize)
	lo, hi := u*v.stripe, (u+1)*v.stripe
	if s := r.LBA; s > lo {
		lo = s
	}
	if e := r.LBA + int64(r.Count); e < hi {
		hi = e
	}
	if lo >= hi {
		return
	}
	dst := cur[(lo-u*v.stripe)*ss : (hi-u*v.stripe)*ss]
	if r.Data == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, r.Data[(lo-r.LBA)*ss:(hi-r.LBA)*ss])
}

// parityRowAfterWrite computes row's parity unit content as it must be once
// the logical write lands: the XOR of every data unit's post-write bytes. A
// dead data member's current content is itself reconstructed from the
// survivors first, so a degraded write is carried entirely by the parity
// update. The reads here are offline (Peek) — the model charges the
// read-modify-write as the parity unit write riding the same row access.
func (v *Volume) parityRowAfterWrite(row int64, r *Request) []byte {
	nd := int64(len(v.disks) - 1)
	parity := make([]byte, int(v.stripe)*v.geo.SectorSize)
	for k := int64(0); k < nd; k++ {
		u := row*nd + k
		m, _ := v.locateUnit(u)
		var cur []byte
		if v.dead[m] {
			cur = v.reconstructUnitOffline(row, m)
		} else {
			cur = v.peekRun(m, row*v.stripe, int(v.stripe))
		}
		v.overlayWrite(cur, u, r)
		xorInto(parity, cur)
	}
	return parity
}

// submitParityWrite scatters a logical write into exact per-member data
// fragments (never touching parity holes) plus one full parity-unit write
// per affected row. Fragments on a dead member are dropped — the parity
// update alone carries their bytes until rebuild restores the member.
func (v *Volume) submitParityWrite(r *Request) {
	r.Submitted = v.disks[0].eng.Now()
	nd := int64(len(v.disks) - 1)
	type child struct {
		disk int
		req  *Request
	}
	var children []child
	for _, f := range v.Fragments(r.LBA, r.Count) {
		if v.dead[f.Disk] {
			continue
		}
		children = append(children, child{f.Disk, &Request{
			LBA: f.LBA, Count: f.Count, Write: true,
			Data:     v.scatterPayload(r, f),
			RealTime: r.RealTime,
		}})
	}
	firstRow := (r.LBA / v.stripe) / nd
	lastRow := ((r.LBA + int64(r.Count) - 1) / v.stripe) / nd
	for row := firstRow; row <= lastRow; row++ {
		p := v.ParityDisk(row)
		if v.dead[p] {
			continue
		}
		payload := v.parityRowAfterWrite(row, r)
		if allZero(payload) {
			payload = nil // sparse parity write: store stays sparse
		}
		children = append(children, child{p, &Request{
			LBA: row * v.stripe, Count: int(v.stripe), Write: true,
			Data:     payload,
			RealTime: r.RealTime,
		}})
	}
	remaining := len(children)
	done := func(cr *Request, _ []byte) {
		if cr.Err != nil && r.Err == nil {
			r.Err = cr.Err
		}
		if r.Started == 0 || cr.Started < r.Started {
			r.Started = cr.Started
		}
		if cr.Completed > r.Completed {
			r.Completed = cr.Completed
		}
		remaining--
		if remaining > 0 {
			return
		}
		if r.Done != nil {
			r.Done(r, nil)
		}
	}
	for _, c := range children {
		c.req.Done = done
		v.disks[c.disk].Submit(c.req)
	}
}
