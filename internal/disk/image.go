package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Image serialization lets tools hand a prepared volume to one another
// (mkcmfs writes an image, crasplay mounts it). Only explicitly written
// sectors are stored, so an image of a 2 GB volume holding sparse media
// files is a few hundred kilobytes of metadata.

const (
	imageMagic      = 0x434d494d // "CMIM"
	imageHeaderSize = 76
)

// SaveImage writes the disk's geometry, timing parameters and stored
// sectors to w.
func (d *Disk) SaveImage(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	hdr := make([]byte, 0, imageHeaderSize)
	hdr = le.AppendUint32(hdr, imageMagic)
	hdr = le.AppendUint32(hdr, 1) // version
	hdr = le.AppendUint32(hdr, uint32(d.geo.Cylinders))
	hdr = le.AppendUint32(hdr, uint32(d.geo.Heads))
	hdr = le.AppendUint32(hdr, uint32(d.geo.SectorsPerTrack))
	hdr = le.AppendUint32(hdr, uint32(d.geo.SectorSize))
	hdr = le.AppendUint64(hdr, uint64(d.par.RotTime))
	hdr = le.AppendUint64(hdr, uint64(d.par.CmdOverhead))
	hdr = le.AppendUint64(hdr, uint64(d.par.SeekBase))
	hdr = le.AppendUint64(hdr, uint64(d.par.SeekSqrtCoeff))
	hdr = le.AppendUint32(hdr, uint32(d.par.SeekKnee))
	hdr = le.AppendUint64(hdr, uint64(d.par.SeekSlope))
	hdr = le.AppendUint64(hdr, uint64(len(d.sectors)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	// Deterministic order.
	lbas := make([]int64, 0, len(d.sectors))
	for lba := range d.sectors {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	var rec [8]byte
	for _, lba := range lbas {
		le.PutUint64(rec[:], uint64(lba))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(d.sectors[lba]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadImage reconstructs a disk from an image on a fresh engine.
func LoadImage(eng *sim.Engine, name string, r io.Reader) (*Disk, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	hdr := make([]byte, imageHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("disk: short image header: %w", err)
	}
	if le.Uint32(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("disk: bad image magic")
	}
	if le.Uint32(hdr[4:]) != 1 {
		return nil, fmt.Errorf("disk: unsupported image version %d", le.Uint32(hdr[4:]))
	}
	g := Geometry{
		Cylinders:       int(le.Uint32(hdr[8:])),
		Heads:           int(le.Uint32(hdr[12:])),
		SectorsPerTrack: int(le.Uint32(hdr[16:])),
		SectorSize:      int(le.Uint32(hdr[20:])),
	}
	p := Params{
		RotTime:       sim.Time(le.Uint64(hdr[24:])),
		CmdOverhead:   sim.Time(le.Uint64(hdr[32:])),
		SeekBase:      sim.Time(le.Uint64(hdr[40:])),
		SeekSqrtCoeff: sim.Time(le.Uint64(hdr[48:])),
		SeekKnee:      int(le.Uint32(hdr[56:])),
		SeekSlope:     sim.Time(le.Uint64(hdr[60:])),
	}
	count := le.Uint64(hdr[68:])
	d := New(eng, name, g, p)
	buf := make([]byte, 8+g.SectorSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("disk: truncated image at sector %d: %w", i, err)
		}
		lba := int64(le.Uint64(buf))
		sec := make([]byte, g.SectorSize)
		copy(sec, buf[8:])
		d.sectors[lba] = sec
	}
	return d, nil
}
