package disk

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/sim"
)

func parityPropSeed(t *testing.T) int64 {
	seed := int64(20260807)
	if env := os.Getenv("PARITY_PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad PARITY_PROP_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("parity property seed %d (override with PARITY_PROP_SEED)", seed)
	return seed
}

// propParityVolume builds a seeded random rotating-parity configuration:
// 3–8 members on a small identical geometry.
func propParityVolume(t *testing.T, e *sim.Engine, rng *rand.Rand) *Volume {
	t.Helper()
	g := Geometry{
		Cylinders:       2 + rng.Intn(20),
		Heads:           1 + rng.Intn(4),
		SectorsPerTrack: 4 + rng.Intn(40),
		SectorSize:      512,
	}
	_, p := ST32550N()
	n := []int{3, 4, 5, 8}[rng.Intn(4)]
	members := make([]*Disk, n)
	for i := range members {
		members[i] = New(e, fmt.Sprintf("sd%d", i), g, p)
	}
	maxStripe := g.TotalSectors()
	if maxStripe > 96 {
		maxStripe = 96
	}
	stripe := 1 + rng.Int63n(maxStripe)
	v, err := NewParityVolume("pvol0", members, stripe)
	if err != nil {
		t.Fatalf("NewParityVolume(n=%d, stripe=%d, geo=%+v): %v", n, stripe, g, err)
	}
	return v
}

// TestParityProperties is the seeded property suite for the rotating-parity
// mapping. Fixed default seed; CI rotates it per commit via
// PARITY_PROP_SEED. Invariants:
//
//  1. Rotation bijection: Locate is injective into member bounds, each
//     stripe row places exactly one unit (data or parity) on every member,
//     and over any N consecutive rows each member holds parity exactly once.
//  2. Fragments partitions any logical range into per-member data fragments
//     that never touch a parity unit; ReadFragments covers the range with at
//     most one fragment per member.
//  3. Offline parity maintenance: after arbitrary PokeSector traffic every
//     row XORs to zero (VerifyParity == -1).
//  4. Any-(N-1)-of-N reconstruction: with any single member marked dead,
//     timed reads return bytes identical to the healthy content while the
//     dead member receives zero requests.
//  5. Rebuild: wiping a member and rebuilding it from the survivors
//     reproduces the member bit-for-bit.
//  6. Corrupting one unit behind the volume's back is caught by VerifyParity
//     naming that row.
func TestParityProperties(t *testing.T) {
	root := rand.New(rand.NewSource(parityPropSeed(t)))

	for cfg := 0; cfg < 12; cfg++ {
		rng := rand.New(rand.NewSource(root.Int63()))
		e := sim.NewEngine(rng.Int63())
		v := propParityVolume(t, e, rng)
		total := v.Geometry().TotalSectors()
		ss := v.Geometry().SectorSize
		n := v.NumDisks()
		rows := v.Rows()
		stripe := v.StripeSectors()
		memberTotal := v.Disk(0).Geometry().TotalSectors()

		if want := rows * int64(n-1) * stripe; total != want {
			t.Fatalf("cfg %d: capacity %d, want rows(%d) × (N-1)(%d) × stripe(%d) = %d",
				cfg, total, rows, n-1, stripe, want)
		}

		// (1) Rotation bijection + per-row coverage + parity fairness.
		seen := make(map[[2]int64]int64, total)
		for lba := int64(0); lba < total; lba++ {
			d, dlba := v.Locate(lba)
			if d < 0 || d >= n || dlba < 0 || dlba >= memberTotal {
				t.Fatalf("cfg %d: Locate(%d) → (%d,%d) out of bounds", cfg, lba, d, dlba)
			}
			if p := v.ParityDisk(dlba / stripe); p == d {
				t.Fatalf("cfg %d: logical %d lands on member %d, the parity member of row %d",
					cfg, lba, d, dlba/stripe)
			}
			key := [2]int64{int64(d), dlba}
			if prev, dup := seen[key]; dup {
				t.Fatalf("cfg %d: logical %d and %d both map to member %d LBA %d", cfg, prev, lba, d, dlba)
			}
			seen[key] = lba
		}
		for row := int64(0); row < rows; row++ {
			used := make([]bool, n)
			used[v.ParityDisk(row)] = true
			for k := int64(0); k < int64(n-1); k++ {
				d, r := v.locateUnit(row*int64(n-1) + k)
				if r != row {
					t.Fatalf("cfg %d: unit %d of row %d locates to row %d", cfg, k, row, r)
				}
				if used[d] {
					t.Fatalf("cfg %d: row %d places two units on member %d", cfg, row, d)
				}
				used[d] = true
			}
		}
		if rows >= int64(n) {
			counts := make([]int, n)
			for row := int64(0); row < int64(n); row++ {
				counts[v.ParityDisk(row)]++
			}
			for d, c := range counts {
				if c != 1 {
					t.Fatalf("cfg %d: member %d holds parity for %d of %d consecutive rows", cfg, d, c, n)
				}
			}
		}

		// (2) Fragments / ReadFragments shape over random ranges.
		for trial := 0; trial < 40; trial++ {
			count := 1 + int(rng.Int63n(total))
			lba := rng.Int63n(total - int64(count) + 1)
			frags := v.Fragments(lba, count)
			sum := 0
			for _, f := range frags {
				sum += f.Count
				for s := f.LBA; s < f.LBA+int64(f.Count); s++ {
					if v.ParityDisk(s/stripe) == f.Disk {
						t.Fatalf("cfg %d: data fragment %+v covers parity sector %d of member %d",
							cfg, f, s, f.Disk)
					}
				}
			}
			if sum != count {
				t.Fatalf("cfg %d: range [%d,%d) fragments cover %d sectors, want %d",
					cfg, lba, lba+int64(count), sum, count)
			}
			rfrags, recon := v.ReadFragments(lba, count)
			if recon != 0 {
				t.Fatalf("cfg %d: healthy ReadFragments reports %d reconstructions", cfg, recon)
			}
			perDisk := make(map[int]Frag)
			for _, f := range rfrags {
				if _, dup := perDisk[f.Disk]; dup {
					t.Fatalf("cfg %d: ReadFragments produced two fragments on member %d", cfg, f.Disk)
				}
				perDisk[f.Disk] = f
			}
			for s := lba; s < lba+int64(count); s++ {
				d, dlba := v.Locate(s)
				f, ok := perDisk[d]
				if !ok || dlba < f.LBA || dlba >= f.LBA+int64(f.Count) {
					t.Fatalf("cfg %d: logical %d (member %d LBA %d) outside its read fragment %+v",
						cfg, s, d, dlba, f)
				}
			}
		}

		// (3) Fill with offline pokes; parity must hold everywhere.
		shadow := make([]byte, total*int64(ss))
		for trial := 0; trial < 200; trial++ {
			lba := rng.Int63n(total)
			data := make([]byte, ss)
			rng.Read(data)
			v.PokeSector(lba, data)
			copy(shadow[lba*int64(ss):], data)
		}
		if row := v.VerifyParity(); row != -1 {
			t.Fatalf("cfg %d: parity broken at row %d after offline pokes", cfg, row)
		}

		// (4) Any single member dead: timed degraded reads are byte-identical
		// and the dead member sees no traffic.
		for m := 0; m < n; m++ {
			v.SetDead(m, true)
			before := v.Disk(m).Stats()
			type rd struct {
				lba   int64
				count int
			}
			var reads []rd
			for trial := 0; trial < 6; trial++ {
				count := 1 + int(rng.Int63n(min64(total, 4*stripe+3)))
				reads = append(reads, rd{rng.Int63n(total - int64(count) + 1), count})
			}
			e.Spawn(fmt.Sprintf("degraded-%d", m), func(p *sim.Proc) {
				for _, o := range reads {
					got := v.ReadSync(p, o.lba, o.count, false)
					want := shadow[o.lba*int64(ss) : (o.lba+int64(o.count))*int64(ss)]
					if !bytes.Equal(got, want) {
						t.Errorf("cfg %d: degraded read (dead member %d) mismatch at lba %d count %d",
							cfg, m, o.lba, o.count)
					}
				}
			})
			e.Run()
			after := v.Disk(m).Stats()
			if after.Served != before.Served {
				t.Fatalf("cfg %d: dead member %d served requests: %v → %v", cfg, m, before.Served, after.Served)
			}
			v.SetDead(m, false)
		}

		// (5) Rebuild reproduces a wiped member bit-for-bit.
		m := rng.Intn(n)
		want := v.peekRun(m, 0, int(rows*stripe))
		garbage := make([]byte, ss)
		for s := int64(0); s < rows*stripe; s++ {
			rng.Read(garbage)
			v.Disk(m).PokeSector(s, garbage)
		}
		v.SetDead(m, true)
		v.RebuildMember(m)
		v.SetDead(m, false)
		if got := v.peekRun(m, 0, int(rows*stripe)); !bytes.Equal(got, want) {
			t.Fatalf("cfg %d: rebuild of member %d not bit-identical", cfg, m)
		}
		if row := v.VerifyParity(); row != -1 {
			t.Fatalf("cfg %d: parity broken at row %d after rebuild", cfg, row)
		}

		// (6) A corrupted unit is caught, naming the row.
		badRow := rng.Int63n(rows)
		badDisk := rng.Intn(n)
		badLBA := badRow*stripe + rng.Int63n(stripe)
		orig := v.Disk(badDisk).PeekSector(badLBA)
		flip := append([]byte(nil), orig...)
		flip[rng.Intn(ss)] ^= 0x5a
		v.Disk(badDisk).PokeSector(badLBA, flip)
		if row := v.VerifyParity(); row != badRow {
			t.Fatalf("cfg %d: VerifyParity found row %d, want corrupted row %d", cfg, row, badRow)
		}
		v.Disk(badDisk).PokeSector(badLBA, orig)
		if row := v.VerifyParity(); row != -1 {
			t.Fatalf("cfg %d: parity still broken at row %d after repair", cfg, row)
		}
	}
}

// TestParityTimedIO round-trips data through the timed scatter/gather path:
// healthy writes, degraded reads, degraded writes (carried by the parity
// update alone), and a rebuild that makes the degraded writes durable on
// the replaced member.
func TestParityTimedIO(t *testing.T) {
	root := rand.New(rand.NewSource(parityPropSeed(t)))
	for cfg := 0; cfg < 6; cfg++ {
		rng := rand.New(rand.NewSource(root.Int63()))
		e := sim.NewEngine(rng.Int63())
		v := propParityVolume(t, e, rng)
		total := v.Geometry().TotalSectors()
		ss := v.Geometry().SectorSize
		m := rng.Intn(v.NumDisks())

		type op struct {
			lba   int64
			count int
			data  []byte
		}
		mkops := func(k int) []op {
			var ops []op
			for i := 0; i < k; i++ {
				count := 1 + int(rng.Int63n(min64(total, 4*v.StripeSectors()+3)))
				lba := rng.Int63n(total - int64(count) + 1)
				data := make([]byte, count*ss)
				rng.Read(data)
				ops = append(ops, op{lba, count, data})
			}
			return ops
		}
		healthy := mkops(5)
		degraded := mkops(3)

		e.Spawn("io", func(p *sim.Proc) {
			for _, o := range healthy {
				v.WriteSync(p, o.lba, o.count, o.data, false)
			}
			check := func(o op, phase string) {
				if got := v.ReadSync(p, o.lba, o.count, false); !bytes.Equal(got, o.data) {
					t.Errorf("cfg %d: %s read-back mismatch at lba %d count %d", cfg, phase, o.lba, o.count)
				}
			}
			check(healthy[len(healthy)-1], "healthy")

			v.SetDead(m, true)
			check(healthy[len(healthy)-1], "degraded")
			for _, o := range degraded {
				v.WriteSync(p, o.lba, o.count, o.data, false)
			}
			check(degraded[len(degraded)-1], "degraded-after-write")

			v.RebuildMember(m)
			v.SetDead(m, false)
			check(degraded[len(degraded)-1], "rebuilt")
			if row := v.VerifyParity(); row != -1 {
				t.Errorf("cfg %d: parity broken at row %d after timed traffic + rebuild", cfg, row)
			}
		})
		e.RunUntil(sim.Time(10 * time.Minute))
	}
}

// TestParityDegenerate covers rejections and mode gating: fewer than three
// members stay pure RAID-0 (a clear error, not silent fallback), SetDead is
// refused off-parity and for a second member, and VerifyParity/Rows answer
// benignly for non-parity volumes.
func TestParityDegenerate(t *testing.T) {
	e := sim.NewEngine(1)
	g, p := ST32550N()
	g.Cylinders = 4
	mk := func(name string) *Disk { return New(e, name, g, p) }

	if _, err := NewParityVolume("v", []*Disk{mk("a")}, 64); err == nil {
		t.Fatal("1-member parity volume accepted")
	}
	if _, err := NewParityVolume("v", []*Disk{mk("a"), mk("b")}, 64); err == nil {
		t.Fatal("2-member parity volume accepted")
	}
	if _, err := NewParityVolume("v", []*Disk{mk("a"), mk("b"), mk("c")}, g.TotalSectors()+1); err == nil {
		t.Fatal("oversized stripe unit accepted")
	}

	rv, err := NewVolume("v", []*Disk{mk("a"), mk("b"), mk("c")}, 64)
	if err != nil {
		t.Fatalf("RAID-0 volume: %v", err)
	}
	if rv.Parity() {
		t.Fatal("NewVolume produced a parity volume")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetDead on a RAID-0 volume did not panic")
			}
		}()
		rv.SetDead(0, true)
	}()

	pv, err := NewParityVolume("pv", []*Disk{mk("x"), mk("y"), mk("z")}, 64)
	if err != nil {
		t.Fatalf("parity volume: %v", err)
	}
	if !pv.Parity() || pv.NumDead() != 0 || pv.DeadMember() != -1 {
		t.Fatal("fresh parity volume not healthy")
	}
	pv.SetDead(1, true)
	if !pv.Dead(1) || pv.NumDead() != 1 || pv.DeadMember() != 1 {
		t.Fatal("SetDead(1) not reflected")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second dead member did not panic")
			}
		}()
		pv.SetDead(2, true)
	}()
	pv.SetDead(1, false)
	if pv.NumDead() != 0 {
		t.Fatal("revived member still counted dead")
	}
	if ms := pv.MemberStats(); len(ms) != 3 {
		t.Fatalf("MemberStats returned %d entries, want 3", len(ms))
	}
}
