package sim

// Waiter is a FIFO list of blocked processes. It is the building block for
// higher-level synchronization (queues, ports, mutexes).
type Waiter struct {
	name  string
	procs []*Proc
}

// NewWaiter returns an empty wait list; name appears in block reasons.
func NewWaiter(name string) *Waiter { return &Waiter{name: name} }

// Wait parks the calling process on the list until a Wake delivers to it.
func (w *Waiter) Wait(p *Proc) {
	w.procs = append(w.procs, p)
	p.Block("wait:" + w.name)
}

// WakeOne unblocks the longest-waiting process, if any, and reports whether
// one was woken.
func (w *Waiter) WakeOne() bool {
	if len(w.procs) == 0 {
		return false
	}
	p := w.procs[0]
	copy(w.procs, w.procs[1:])
	w.procs = w.procs[:len(w.procs)-1]
	p.Unblock()
	return true
}

// WakeAll unblocks every waiting process in FIFO order and returns how many
// were woken.
func (w *Waiter) WakeAll() int {
	n := len(w.procs)
	for _, p := range w.procs {
		p.Unblock()
	}
	w.procs = w.procs[:0]
	return n
}

// Len returns the number of waiting processes.
func (w *Waiter) Len() int { return len(w.procs) }

// Remove drops a process from the wait list without waking it (used for
// timeouts). It reports whether the process was on the list.
func (w *Waiter) Remove(p *Proc) bool {
	for i, q := range w.procs {
		if q == p {
			w.procs = append(w.procs[:i], w.procs[i+1:]...)
			return true
		}
	}
	return false
}

// Queue is an unbounded FIFO message queue with blocking receive. Put never
// blocks; Get blocks the calling process until an item is available.
type Queue[T any] struct {
	name    string
	items   []T
	waiters *Waiter
}

// NewQueue returns an empty queue; name appears in block reasons.
func NewQueue[T any](name string) *Queue[T] {
	return &Queue[T]{name: name, waiters: NewWaiter(name)}
}

// Put appends an item and wakes one waiting receiver if present. It may be
// called from any engine context (event callback or process).
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.waiters.WakeOne()
}

// Get removes and returns the oldest item, blocking the calling process
// while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters.Wait(p)
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the oldest item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	out := q.items
	q.items = nil
	return out
}
