package sim

import "fmt"

// Proc is a simulated sequential process: a goroutine whose execution is
// interleaved deterministically with the engine's events. At most one
// process (or event callback) runs at a time; a process gives up control
// only at explicit blocking points (Sleep, Block, Queue.Get, ...).
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool

	// blocked is non-nil while the process is parked in Block, and is the
	// timer used to wake it (nil timer means waiting for Unblock).
	blockedReason string
	wakePending   bool

	// wakeFn is the hoisted wakeup continuation shared by every Sleep,
	// SleepUntil and Unblock: allocated once per process so resuming a
	// process never captures a fresh closure on the scheduler's hot path.
	wakeFn func()
}

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Dead reports whether the process body has returned.
func (p *Proc) Dead() bool { return p.dead }

// Spawn starts a new process whose body begins executing at the current
// virtual time (after already-scheduled events for this instant).
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	p.wakeFn = func() {
		if !p.dead {
			p.run()
		}
	}
	e.live++
	e.At(e.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					e.procPanic = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				}
				p.dead = true
				e.live--
				e.park <- struct{}{} // hand control back for good
			}()
			<-p.resume // wait for first dispatch
			body(p)
		}()
		p.run()
	})
	return p
}

// run transfers control from the engine (or whichever context is executing)
// to the process goroutine and waits for it to yield.
func (p *Proc) run() {
	p.resume <- struct{}{}
	<-p.eng.park
}

// yield transfers control from the process goroutine back to the engine and
// waits to be resumed.
func (p *Proc) yield() {
	p.eng.park <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	p.eng.After(d, p.wakeFn)
	p.yield()
}

// SleepUntil suspends the process until absolute virtual time t. If t is in
// the past it panics, except that t == now is a simple yield to other work
// scheduled for this instant.
func (p *Proc) SleepUntil(t Time) {
	p.eng.At(t, p.wakeFn)
	p.yield()
}

// Block parks the process until another event calls Unblock. The reason is
// reported by BlockedReason for debugging. If Unblock was already called
// since the last Block (a "wake pending" token), Block consumes the token
// and returns immediately; this closes the lost-wakeup race between a
// process deciding to block and the event that would wake it.
func (p *Proc) Block(reason string) {
	if p.wakePending {
		p.wakePending = false
		return
	}
	p.blockedReason = reason
	p.yield()
	p.blockedReason = ""
}

// Unblock makes a process blocked in Block runnable at the current virtual
// time. If the process is not currently blocked, a single wakeup token is
// recorded and consumed by its next Block. Unblock must be called from
// engine context (an event callback or another process), never from the
// blocked process itself.
func (p *Proc) Unblock() {
	if p.dead {
		return
	}
	if p.blockedReason == "" {
		p.wakePending = true
		return
	}
	p.blockedReason = ""
	p.eng.At(p.eng.now, p.wakeFn)
}

// BlockedReason returns the reason string passed to Block if the process is
// currently parked there, and "" otherwise.
func (p *Proc) BlockedReason() string { return p.blockedReason }
