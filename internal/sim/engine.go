package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, expressed as an offset from the start of
// the simulation. The zero value is the simulation epoch.
type Time = time.Duration

// Infinity is a virtual time later than any time an experiment will reach.
const Infinity Time = math.MaxInt64

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires.
type Timer struct {
	ev *event
}

// Cancel prevents the event from firing. It reports whether the event was
// still pending (true) or had already fired or been cancelled (false).
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// When returns the virtual time at which the event is (or was) scheduled.
func (t *Timer) When() Time { return t.ev.at }

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) Peek() *event { return h[0] }

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use from multiple goroutines except through the process
// primitives, which serialize themselves.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	seed    int64
	stopped bool

	// park is the handshake channel between the engine goroutine and the
	// currently running process goroutine: whichever side is about to give
	// up control sends on it and the other side receives.
	park chan struct{}

	// procPanic carries a panic out of a process goroutine so the engine
	// can re-raise it where the test harness will see it.
	procPanic any
	live      int // live (spawned, not yet finished) processes
	tracer    func(t Time, format string, args ...any)
}

// NewEngine returns an engine positioned at virtual time zero. The seed
// determines every named RNG stream drawn from the engine.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, park: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs a trace sink used by Tracef. A nil tracer disables
// tracing.
func (e *Engine) SetTracer(fn func(t Time, format string, args ...any)) { e.tracer = fn }

// Tracef emits a trace line if a tracer is installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracer != nil {
		e.tracer(e.now, format, args...)
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: the simulation's causality would be violated. Scheduling at the
// current time is allowed; the event runs after all events already scheduled
// for that time.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now)) //crasvet:allow hotalloc -- formats only on the way to a causality panic; a clean cycle never evaluates it
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn} //crasvet:allow hotalloc -- one event record per scheduled callback is the engine's unit of work; pooling would tie reuse to Timer lifetimes and break Stop-after-fire
	heap.Push(&e.events, ev)
	return &Timer{ev: ev} //crasvet:allow hotalloc -- the Timer handle escapes to the caller by contract
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d)) //crasvet:allow hotalloc -- formats only on the way to a misuse panic; a clean cycle never evaluates it
	}
	return e.At(e.now+d, fn)
}

// Stop makes the current Run call return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, advancing virtual time to it. It
// reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		ev.fn()
		if e.procPanic != nil {
			p := e.procPanic
			e.procPanic = nil
			panic(p)
		}
		return true
	}
	return false
}

// Run fires events until the calendar is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Skip over cancelled heads without advancing time.
		if e.events.Peek().cancelled {
			heap.Pop(&e.events)
			continue
		}
		if e.events.Peek().at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// PendingEvents returns the number of scheduled, non-cancelled events.
func (e *Engine) PendingEvents() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}
