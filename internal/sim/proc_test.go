package sim

import (
	"testing"
	"time"
)

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(ms(25))
		wake = e.Now()
	})
	e.Run()
	if wake != ms(25) {
		t.Fatalf("woke at %v, want 25ms", wake)
	}
}

func TestProcSequentialSemantics(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Sleep(ms(10))
		trace = append(trace, "a2")
		p.Sleep(ms(10))
		trace = append(trace, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
		p.Sleep(ms(15))
		trace = append(trace, "b2")
	})
	e.Run()
	want := []string{"a1", "b1", "a2", "b2", "a3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcBlockUnblock(t *testing.T) {
	e := NewEngine(1)
	var resumedAt Time
	p := e.Spawn("worker", func(p *Proc) {
		p.Block("waiting for signal")
		resumedAt = e.Now()
	})
	e.At(ms(40), func() { p.Unblock() })
	e.Run()
	if resumedAt != ms(40) {
		t.Fatalf("resumed at %v, want 40ms", resumedAt)
	}
}

func TestProcUnblockBeforeBlockIsNotLost(t *testing.T) {
	e := NewEngine(1)
	done := false
	var p *Proc
	p = e.Spawn("late-blocker", func(pp *Proc) {
		pp.Sleep(ms(10)) // the wakeup arrives while we sleep
		pp.Block("should consume pending token")
		done = true
	})
	e.At(ms(5), func() { p.Unblock() })
	e.RunUntil(ms(100))
	if !done {
		t.Fatal("pending wakeup token was lost; process still blocked")
	}
}

func TestProcBlockedReason(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("w", func(p *Proc) { p.Block("io") })
	e.At(ms(1), func() {
		if got := p.BlockedReason(); got != "io" {
			t.Errorf("BlockedReason = %q, want io", got)
		}
	})
	e.RunUntil(ms(2))
}

func TestProcDeadAfterReturn(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("short", func(p *Proc) {})
	e.Run()
	if !p.Dead() {
		t.Fatal("process should be dead after body returns")
	}
	p.Unblock() // must be a no-op, not a hang or panic
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bomb", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestSleepUntil(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Spawn("s", func(p *Proc) {
		p.SleepUntil(ms(30))
		at = e.Now()
	})
	e.Run()
	if at != ms(30) {
		t.Fatalf("woke at %v, want 30ms", at)
	}
}

func TestWaiterFIFO(t *testing.T) {
	e := NewEngine(1)
	w := NewWaiter("q")
	var order []string
	mk := func(name string) {
		e.Spawn(name, func(p *Proc) {
			w.Wait(p)
			order = append(order, name)
		})
	}
	mk("first")
	mk("second")
	mk("third")
	e.At(ms(10), func() { w.WakeOne() })
	e.At(ms(20), func() { w.WakeAll() })
	e.Run()
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestWaiterWakeOneOnEmpty(t *testing.T) {
	w := NewWaiter("empty")
	if w.WakeOne() {
		t.Fatal("WakeOne on empty waiter reported true")
	}
	if n := w.WakeAll(); n != 0 {
		t.Fatalf("WakeAll on empty waiter = %d", n)
	}
}

func TestWaiterRemove(t *testing.T) {
	e := NewEngine(1)
	w := NewWaiter("q")
	woken := false
	p := e.Spawn("victim", func(p *Proc) {
		w.Wait(p)
		woken = true
	})
	e.At(ms(5), func() {
		if !w.Remove(p) {
			t.Error("Remove did not find the waiting process")
		}
		if w.Remove(p) {
			t.Error("second Remove should report false")
		}
		w.WakeAll()
	})
	e.RunUntil(ms(50))
	if woken {
		t.Fatal("removed process was woken by WakeAll")
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int]("ints")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.At(ms(10), func() { q.Put(1) })
	e.At(ms(20), func() { q.Put(2); q.Put(3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueGetBeforePut(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string]("s")
	var at Time
	e.Spawn("c", func(p *Proc) {
		if v := q.Get(p); v != "hello" {
			t.Errorf("Get = %q", v)
		}
		at = e.Now()
	})
	e.At(ms(33), func() { q.Put("hello") })
	e.Run()
	if at != ms(33) {
		t.Fatalf("consumer resumed at %v, want 33ms", at)
	}
}

func TestQueueTryGetAndDrain(t *testing.T) {
	q := NewQueue[int]("t")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue reported ok")
	}
	q.Put(1)
	q.Put(2)
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
	q.Put(3)
	got := q.Drain()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Drain = %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after Drain")
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int]("fair")
	var winners []string
	consumer := func(name string) {
		e.Spawn(name, func(p *Proc) {
			q.Get(p)
			winners = append(winners, name)
		})
	}
	consumer("c1")
	consumer("c2")
	e.At(ms(10), func() { q.Put(100) })
	e.At(ms(20), func() { q.Put(200) })
	e.Run()
	if len(winners) != 2 || winners[0] != "c1" || winners[1] != "c2" {
		t.Fatalf("winners = %v, want [c1 c2]", winners)
	}
}

func TestManyProcsNoGoroutineDeadlock(t *testing.T) {
	e := NewEngine(1)
	total := 0
	for i := 0; i < 200; i++ {
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(time.Millisecond)
			}
			total++
		})
	}
	e.Run()
	if total != 200 {
		t.Fatalf("completed %d procs, want 200", total)
	}
}
