package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a named, deterministic random stream derived from the engine seed.
// Distinct names yield independent streams; the same (seed, name) pair
// always yields the same sequence, so stochastic workloads replay exactly.
type RNG struct {
	*rand.Rand
	name string
}

// RNG returns the random stream for the given name.
func (e *Engine) RNG(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := int64(h.Sum64()) ^ e.seed
	return &RNG{Rand: rand.New(rand.NewSource(seed)), name: name}
}

// Name returns the stream name.
func (r *RNG) Name() string { return r.name }

// DurationRange returns a duration uniformly distributed in [lo, hi).
func (r *RNG) DurationRange(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, clamped to [min, max].
func (r *RNG) Normal(mean, stddev, min, max float64) float64 {
	v := r.NormFloat64()*stddev + mean
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}
