// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the substrates in this repository — the Real-Time Mach scheduling
// model (internal/rtm), the disk model (internal/disk), the file system
// (internal/ufs) and the CRAS server itself (internal/core) — run on top of
// this engine in virtual time. Virtual time has nanosecond resolution and
// advances only when the event at the head of the calendar fires, so a run
// is bit-reproducible regardless of wall-clock scheduling, GC pauses, or
// host load. That property is what lets a Go program make meaningful
// statements about rate guarantees: the paper's Real-Time Mach kernel
// provided predictable scheduling in real time; we provide it in virtual
// time.
//
// Two programming models are offered:
//
//   - Plain events: Engine.At / Engine.After schedule a callback at an
//     absolute or relative virtual time. Callbacks run on the engine
//     goroutine, one at a time.
//
//   - Processes: Engine.Spawn starts a goroutine with sequential blocking
//     semantics (Sleep, Block/Unblock, Queue.Get). Exactly one process or
//     event callback executes at any moment; control transfer is an explicit
//     handshake, so processes interleave deterministically in (time, seq)
//     order just like events.
//
// Randomness is only available through named RNG streams (Engine.RNG) whose
// seeds derive from the engine seed and the stream name, keeping stochastic
// workloads reproducible.
package sim
