package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) Time { return Time(n) * time.Millisecond }

func TestEventOrderByTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(ms(30), func() { order = append(order, 3) })
	e.At(ms(10), func() { order = append(order, 1) })
	e.At(ms(20), func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != ms(30) {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestEventTieBreakBySequence(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(ms(5), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(ms(10), func() {
		e.After(ms(5), func() { at = e.Now() })
	})
	e.Run()
	if at != ms(15) {
		t.Fatalf("After fired at %v, want 15ms", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(ms(10), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(ms(5), func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	e.After(-ms(1), func() {})
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(ms(10), func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(ms(10), func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(ms(100))
	if e.Now() != ms(100) {
		t.Fatalf("Now = %v, want 100ms", e.Now())
	}
}

func TestRunUntilDoesNotFireLaterEvents(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(ms(50), func() { fired = true })
	e.RunUntil(ms(20))
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != ms(20) {
		t.Fatalf("Now = %v, want 20ms", e.Now())
	}
	e.RunUntil(ms(60))
	if !fired {
		t.Fatal("event within extended horizon did not fire")
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(ms(20), func() { fired = true })
	e.RunUntil(ms(20))
	if !fired {
		t.Fatal("event exactly at horizon should fire")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 5; i++ {
		e.At(ms(i*10), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("ran %d events after Stop, want 2", count)
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(ms(10))
	e.RunFor(ms(10))
	if e.Now() != ms(20) {
		t.Fatalf("Now = %v, want 20ms", e.Now())
	}
}

func TestPendingEventsExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	e.At(ms(1), func() {})
	tm := e.At(ms(2), func() {})
	tm.Cancel()
	if got := e.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1", got)
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(ms(5), func() { t.Error("cancelled event fired") })
	fired := false
	e.At(ms(50), func() { fired = true })
	tm.Cancel()
	// The cancelled event sits at the heap head beyond the horizon check;
	// RunUntil must skip it without advancing time to it.
	e.RunUntil(ms(10))
	if e.Now() != ms(10) {
		t.Fatalf("Now = %v, want 10ms", e.Now())
	}
	e.RunUntil(ms(60))
	if !fired {
		t.Fatal("later event did not fire")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine(seed)
		var order []int
		rng := e.RNG("jitter")
		for i := 0; i < 100; i++ {
			i := i
			e.At(Time(rng.Int63n(int64(ms(100)))), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with the same seed diverged at %d", i)
		}
	}
}

func TestRNGStreamsIndependentAndStable(t *testing.T) {
	e1 := NewEngine(7)
	e2 := NewEngine(7)
	a := e1.RNG("disk")
	b := e2.RNG("disk")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,name) produced different streams")
		}
	}
	c := NewEngine(7).RNG("media")
	d := NewEngine(7).RNG("disk")
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different names produced identical streams")
	}
}

func TestRNGDurationRange(t *testing.T) {
	r := NewEngine(3).RNG("x")
	for i := 0; i < 1000; i++ {
		v := r.DurationRange(ms(5), ms(10))
		if v < ms(5) || v >= ms(10) {
			t.Fatalf("DurationRange out of bounds: %v", v)
		}
	}
	if r.DurationRange(ms(5), ms(5)) != ms(5) {
		t.Fatal("empty range should return lo")
	}
}

func TestRNGNormalClamped(t *testing.T) {
	r := NewEngine(3).RNG("n")
	for i := 0; i < 1000; i++ {
		v := r.Normal(10, 100, 0, 20)
		if v < 0 || v > 20 {
			t.Fatalf("Normal out of clamp range: %v", v)
		}
	}
}

// Property: for any batch of (delay, id) pairs, events fire sorted by
// (time, insertion order).
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(1)
		type fire struct {
			at  Time
			idx int
		}
		var fires []fire
		for i, d := range delays {
			i, at := i, Time(d)*time.Microsecond
			e.At(at, func() { fires = append(fires, fire{e.Now(), i}) })
		}
		e.Run()
		if len(fires) != len(delays) {
			return false
		}
		for k := 1; k < len(fires); k++ {
			if fires[k].at < fires[k-1].at {
				return false
			}
			if fires[k].at == fires[k-1].at && fires[k].idx < fires[k-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTracef(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.SetTracer(func(at Time, format string, args ...any) { got = append(got, format) })
	e.At(ms(1), func() { e.Tracef("hello %d", 1) })
	e.Run()
	if len(got) != 1 || got[0] != "hello %d" {
		t.Fatalf("tracer not invoked as expected: %v", got)
	}
	e.SetTracer(nil)
	e.Tracef("ignored") // must not panic
}
