package media

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/rtm"
	"repro/internal/sim"
	"repro/internal/ufs"
)

func testContainer(dur sim.Time) *Container {
	return &Container{
		Name: "/movie",
		Tracks: []Track{
			{Kind: "video", Info: MPEG1().Generate("v", dur)},
			{Kind: "audio", Info: CBRProfile{FrameRate: 30, Rate: 176400}.Generate("a", dur)},
		},
	}
}

func TestContainerLayout(t *testing.T) {
	c := testContainer(5 * time.Second)
	tracks, total, err := c.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	// Regions are block-aligned, ordered, and non-overlapping.
	if tracks[0].Chunks[0].Offset%ufs.BlockSize != 0 {
		t.Fatalf("video region base %d not block-aligned", tracks[0].Chunks[0].Offset)
	}
	videoEnd := tracks[0].TotalSize()
	audioBase := tracks[1].Chunks[0].Offset
	if audioBase < videoEnd {
		t.Fatalf("audio region %d overlaps video end %d", audioBase, videoEnd)
	}
	if audioBase%ufs.BlockSize != 0 {
		t.Fatalf("audio region base %d not block-aligned", audioBase)
	}
	if total < tracks[1].TotalSize() {
		t.Fatalf("total %d does not cover the last region end %d", total, tracks[1].TotalSize())
	}
	// Rebased tables keep per-track contiguity (offset validation would
	// fail only on the zero-base rule, which rebasing intentionally breaks;
	// check chunk-to-chunk contiguity by hand).
	for _, tr := range tracks {
		for i := 1; i < len(tr.Chunks); i++ {
			if tr.Chunks[i].Offset != tr.Chunks[i-1].Offset+tr.Chunks[i-1].Size {
				t.Fatalf("track %s not contiguous at chunk %d", tr.Name, i)
			}
		}
	}
}

func TestContainerIndexRoundtrip(t *testing.T) {
	c := testContainer(3 * time.Second)
	enc := c.encodeIndex()
	if int64(len(enc)) != c.indexSize() || len(enc)%ufs.BlockSize != 0 {
		t.Fatalf("index atom %d bytes, want aligned %d", len(enc), c.indexSize())
	}
	tracks, err := DecodeContainerIndex("/movie", enc)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := c.Layout()
	if len(tracks) != 2 || tracks[0].Kind != "video" || tracks[1].Kind != "audio" {
		t.Fatalf("decoded tracks = %+v", tracks)
	}
	for i := range tracks {
		if len(tracks[i].Info.Chunks) != len(want[i].Chunks) {
			t.Fatalf("track %d chunk count", i)
		}
		for j := range want[i].Chunks {
			if tracks[i].Info.Chunks[j] != want[i].Chunks[j] {
				t.Fatalf("track %d chunk %d: %+v vs %+v", i, j, tracks[i].Info.Chunks[j], want[i].Chunks[j])
			}
		}
	}
}

func TestDecodeContainerIndexErrors(t *testing.T) {
	if _, err := DecodeContainerIndex("x", []byte{1, 2}); err == nil {
		t.Fatal("short data accepted")
	}
	enc := testContainer(time.Second).encodeIndex()
	enc[0] ^= 0xFF
	if _, err := DecodeContainerIndex("x", enc); err == nil {
		t.Fatal("bad magic accepted")
	}
	enc[0] ^= 0xFF
	if _, err := DecodeContainerIndex("x", enc[:40]); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestStoreAndLoadContainer(t *testing.T) {
	e := sim.NewEngine(1)
	g, pr := disk.ST32550N()
	g.Cylinders = 400
	g.Heads = 4
	d := disk.New(e, "sd0", g, pr)
	if _, err := ufs.Format(d, ufs.Options{}); err != nil {
		t.Fatal(err)
	}
	c := testContainer(4 * time.Second)
	e.Spawn("setup", func(p *sim.Proc) {
		fs, err := ufs.Mount(p, d, ufs.Options{})
		if err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		stored, err := StoreContainer(p, fs, "/movie", c)
		if err != nil {
			t.Errorf("StoreContainer: %v", err)
			return
		}
		st, err := fs.Stat(p, "/movie")
		if err != nil || st.Size < stored[1].TotalSize() {
			t.Errorf("container file stat = %+v, %v", st, err)
			return
		}

		// Load back through the Unix server path.
		k := rtm.NewKernel(e)
		srv := ufs.NewServer(k, fs, rtm.PrioTS, 0)
		k.NewThread("player", rtm.PrioTS, 0, func(th *rtm.Thread) {
			tracks, err := LoadContainer(ufs.NewClient(srv, th), "/movie")
			if err != nil {
				t.Errorf("LoadContainer: %v", err)
				return
			}
			if len(tracks) != 2 {
				t.Errorf("tracks = %d", len(tracks))
				return
			}
			for i, tr := range tracks {
				if tr.Info.TotalSize() != stored[i].TotalSize() {
					t.Errorf("track %d size mismatch", i)
				}
				if tr.Info.Chunks[0].Offset != stored[i].Chunks[0].Offset {
					t.Errorf("track %d base mismatch", i)
				}
			}
		})
	})
	e.Run()
}
