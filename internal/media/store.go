package media

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/ufs"
)

// ControlPath returns the conventional control-file name for a media file.
func ControlPath(moviePath string) string { return moviePath + ".ctl" }

// Store lays a movie out on the file system: the media file is
// preallocated (its blocks placed, payloads sparse — the experiments do not
// need pixel bytes) and the chunk table is written to the control file.
// Must run in a simulation process; carries real disk-time cost.
func Store(p *sim.Proc, fs *ufs.FileSystem, path string, s *StreamInfo) error {
	if err := s.Validate(); err != nil {
		return err
	}
	mf, err := fs.Create(p, path)
	if err != nil {
		return fmt.Errorf("media: create %s: %w", path, err)
	}
	if err := mf.Preallocate(p, s.TotalSize()); err != nil {
		return fmt.Errorf("media: preallocate %s: %w", path, err)
	}
	cf, err := fs.Create(p, ControlPath(path))
	if err != nil {
		return fmt.Errorf("media: create control: %w", err)
	}
	if _, err := cf.WriteAt(p, EncodeControl(s), 0); err != nil {
		return fmt.Errorf("media: write control: %w", err)
	}
	return nil
}

// Load reads a movie's chunk table back through the Unix server client —
// the path an application takes before handing the table to CRAS. The
// movie name is the media path.
func Load(c *ufs.Client, path string) (*StreamInfo, error) {
	st, err := c.Stat(ControlPath(path))
	if err != nil {
		return nil, err
	}
	fd, err := c.Open(ControlPath(path))
	if err != nil {
		return nil, err
	}
	defer c.Close(fd) //crasvet:allow ioerrcheck -- read-only fd; close cannot lose data
	data, err := c.Read(fd, 0, int(st.Size))
	if err != nil {
		return nil, err
	}
	return DecodeControl(path, data)
}

// LoadFS reads a chunk table directly from the file system (tooling path).
func LoadFS(p *sim.Proc, fs *ufs.FileSystem, path string) (*StreamInfo, error) {
	f, err := fs.Open(p, ControlPath(path))
	if err != nil {
		return nil, err
	}
	buf := make([]byte, f.Size(p))
	if _, err := f.ReadAt(p, buf, 0); err != nil {
		return nil, err
	}
	return DecodeControl(path, buf)
}
