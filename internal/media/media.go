// Package media models continuous-media files the way CRAS sees them: a
// large data file holding the frames, plus a chunk table (timestamp,
// duration, size, offset per chunk) that the paper keeps "in a control file
// separate from the continuous media data file". The chunk table is what an
// application hands to CRAS at crs_open time so the server can schedule
// pre-fetches and discard obsolete data.
//
// Profiles generate CBR streams matching the evaluation's workloads (an
// MPEG1-like 1.5 Mb/s stream and an MPEG2-like 6 Mb/s stream) and VBR
// streams with an I/P/B group-of-pictures size pattern, which exercise the
// buffer-waste problem the paper discusses in Section 3.2.
package media

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Chunk is one schedulable unit of a stream — for video, one frame.
type Chunk struct {
	Timestamp sim.Time // media time at which the chunk becomes current
	Duration  sim.Time
	Size      int64 // bytes in the media file
	Offset    int64 // byte offset in the media file
}

// StreamInfo is a stream's complete chunk table.
type StreamInfo struct {
	Name   string
	Chunks []Chunk
}

// TotalSize returns the media file size in bytes.
func (s *StreamInfo) TotalSize() int64 {
	if len(s.Chunks) == 0 {
		return 0
	}
	last := s.Chunks[len(s.Chunks)-1]
	return last.Offset + last.Size
}

// TotalDuration returns the media duration.
func (s *StreamInfo) TotalDuration() sim.Time {
	if len(s.Chunks) == 0 {
		return 0
	}
	last := s.Chunks[len(s.Chunks)-1]
	return last.Timestamp + last.Duration
}

// AvgRate returns the average data rate in bytes per second.
func (s *StreamInfo) AvgRate() float64 {
	d := s.TotalDuration().Seconds()
	if d == 0 {
		return 0
	}
	return float64(s.TotalSize()) / d
}

// WorstCaseRate returns the highest data rate over any window of the given
// interval, in bytes per second. CRAS sizes buffers from this value, which
// for VBR streams is what wastes buffer memory relative to the average rate
// (the paper's first Section 3.2 problem).
func (s *StreamInfo) WorstCaseRate(interval sim.Time) float64 {
	if len(s.Chunks) == 0 || interval <= 0 {
		return 0
	}
	maxBytes := int64(0)
	j := 0
	var sum int64
	for i := range s.Chunks {
		sum += s.Chunks[i].Size
		for s.Chunks[i].Timestamp+s.Chunks[i].Duration-s.Chunks[j].Timestamp > interval {
			sum -= s.Chunks[j].Size
			j++
		}
		if sum > maxBytes {
			maxBytes = sum
		}
	}
	return float64(maxBytes) / interval.Seconds()
}

// ChunkAt returns the index of the chunk current at the given media time,
// or -1 if the time is outside the stream.
func (s *StreamInfo) ChunkAt(t sim.Time) int {
	if len(s.Chunks) == 0 || t < 0 || t >= s.TotalDuration() {
		return -1
	}
	lo, hi := 0, len(s.Chunks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.Chunks[mid].Timestamp <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Validate checks the chunk-table invariants: contiguous offsets (from the
// first chunk's offset — container tracks are rebased into a shared file),
// monotonically increasing timestamps with no gaps, positive durations.
func (s *StreamInfo) Validate() error {
	var off int64
	if len(s.Chunks) > 0 {
		off = s.Chunks[0].Offset
		if off < 0 {
			return fmt.Errorf("media: negative base offset %d", off)
		}
	}
	var ts sim.Time
	for i, c := range s.Chunks {
		if c.Offset != off {
			return fmt.Errorf("media: chunk %d offset %d, want %d", i, c.Offset, off)
		}
		if c.Timestamp != ts {
			return fmt.Errorf("media: chunk %d timestamp %v, want %v", i, c.Timestamp, ts)
		}
		if c.Duration <= 0 || c.Size < 0 {
			return fmt.Errorf("media: chunk %d has duration %v size %d", i, c.Duration, c.Size)
		}
		off += c.Size
		ts += c.Duration
	}
	return nil
}

// CBRProfile describes a constant-bit-rate stream.
type CBRProfile struct {
	FrameRate int     // frames per second
	Rate      float64 // bytes per second
}

// MPEG1 is the paper's 1.5 Mb/s benchmark stream.
func MPEG1() CBRProfile { return CBRProfile{FrameRate: 30, Rate: 1.5e6 / 8} }

// MPEG2 is the paper's 6 Mb/s benchmark stream.
func MPEG2() CBRProfile { return CBRProfile{FrameRate: 30, Rate: 6e6 / 8} }

// CBR generates a constant-rate stream of the given duration.
func (p CBRProfile) Generate(name string, duration sim.Time) *StreamInfo {
	frameDur := sim.Time(float64(time.Second) / float64(p.FrameRate))
	frameSize := int64(p.Rate / float64(p.FrameRate))
	n := int(duration / frameDur)
	s := &StreamInfo{Name: name, Chunks: make([]Chunk, n)}
	var off int64
	var ts sim.Time
	for i := 0; i < n; i++ {
		s.Chunks[i] = Chunk{Timestamp: ts, Duration: frameDur, Size: frameSize, Offset: off}
		off += frameSize
		ts += frameDur
	}
	return s
}

// VBRProfile describes a variable-bit-rate stream with an I/P/B
// group-of-pictures structure: I frames are large, B frames small, with
// multiplicative noise on top.
type VBRProfile struct {
	FrameRate int
	MeanRate  float64 // bytes per second, long-run average
	GOP       string  // e.g. "IBBPBBPBB"; empty = "IBBPBBPBB"
	Jitter    float64 // stddev of the per-frame size multiplier (e.g. 0.2)
}

// frameWeights returns per-type size multipliers normalized so the GOP
// averages to 1.
func (p VBRProfile) frameWeights() map[byte]float64 {
	w := map[byte]float64{'I': 2.5, 'P': 1.2, 'B': 0.5}
	gop := p.GOP
	if gop == "" {
		gop = "IBBPBBPBB"
	}
	var sum float64
	for i := 0; i < len(gop); i++ {
		sum += w[gop[i]]
	}
	scale := float64(len(gop)) / sum
	for k := range w {
		w[k] *= scale
	}
	return w
}

// Generate builds a VBR stream; rng supplies the deterministic noise.
func (p VBRProfile) Generate(name string, duration sim.Time, rng *sim.RNG) *StreamInfo {
	gop := p.GOP
	if gop == "" {
		gop = "IBBPBBPBB"
	}
	weights := p.frameWeights()
	frameDur := sim.Time(float64(time.Second) / float64(p.FrameRate))
	meanFrame := p.MeanRate / float64(p.FrameRate)
	n := int(duration / frameDur)
	s := &StreamInfo{Name: name, Chunks: make([]Chunk, n)}
	var off int64
	var ts sim.Time
	for i := 0; i < n; i++ {
		w := weights[gop[i%len(gop)]]
		noise := 1.0
		if p.Jitter > 0 {
			noise = rng.Normal(1, p.Jitter, 0.3, 3)
		}
		size := int64(meanFrame * w * noise)
		if size < 64 {
			size = 64
		}
		s.Chunks[i] = Chunk{Timestamp: ts, Duration: frameDur, Size: size, Offset: off}
		off += size
		ts += frameDur
	}
	return s
}

// ---- control file encoding ----

const ctlMagic = 0x43544c31 // "CTL1"

// EncodeControl serializes a chunk table into the control-file format.
func EncodeControl(s *StreamInfo) []byte {
	out := make([]byte, 8+32*len(s.Chunks))
	le := binary.LittleEndian
	le.PutUint32(out[0:], ctlMagic)
	le.PutUint32(out[4:], uint32(len(s.Chunks)))
	for i, c := range s.Chunks {
		base := 8 + 32*i
		le.PutUint64(out[base:], uint64(c.Timestamp))
		le.PutUint64(out[base+8:], uint64(c.Duration))
		le.PutUint64(out[base+16:], uint64(c.Size))
		le.PutUint64(out[base+24:], uint64(c.Offset))
	}
	return out
}

// DecodeControl parses a control file.
func DecodeControl(name string, data []byte) (*StreamInfo, error) {
	le := binary.LittleEndian
	if len(data) < 8 || le.Uint32(data[0:]) != ctlMagic {
		return nil, fmt.Errorf("media: bad control file")
	}
	n := int(le.Uint32(data[4:]))
	if len(data) < 8+32*n {
		return nil, fmt.Errorf("media: truncated control file: %d chunks, %d bytes", n, len(data))
	}
	s := &StreamInfo{Name: name, Chunks: make([]Chunk, n)}
	for i := 0; i < n; i++ {
		base := 8 + 32*i
		s.Chunks[i] = Chunk{
			Timestamp: sim.Time(le.Uint64(data[base:])),
			Duration:  sim.Time(le.Uint64(data[base+8:])),
			Size:      int64(le.Uint64(data[base+16:])),
			Offset:    int64(le.Uint64(data[base+24:])),
		}
	}
	return s, nil
}
