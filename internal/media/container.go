package media

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
	"repro/internal/ufs"
)

// Container is a QuickTime-style movie: one media file holding several
// tracks (video, audio, ...) plus an index the player reads first — the
// shape of the files the paper's QtPlay application plays. Each track
// occupies a contiguous region of the file, so every track individually
// satisfies CRAS's sequential-retrieval model; its chunk table simply
// starts at the region's base offset.
//
// Layout on disk:
//
//	<movie>       index atom, then each track's data region in order
//	              (the index is small and read through the Unix server
//	              at open time, like a control file)
type Container struct {
	Name   string
	Tracks []Track
}

// Track is one stream inside a container.
type Track struct {
	Kind string // "video", "audio", ...
	Info *StreamInfo
}

const containerMagic = 0x434d4d56 // "CMMV"

// indexSize returns the on-disk size of the index atom, rounded to a block
// so every track region starts block-aligned (CRAS reads raw blocks).
func (c *Container) indexSize() int64 {
	raw := int64(12) // magic, version, track count
	for _, tr := range c.Tracks {
		raw += 16 + 8 + int64(len(tr.Kind)) + 8 + 32*int64(len(tr.Info.Chunks))
	}
	return (raw + ufs.BlockSize - 1) / ufs.BlockSize * ufs.BlockSize
}

// Layout computes each track's base offset and returns per-track
// StreamInfos rebased to their region — the chunk tables a player hands to
// CRAS. The total size covers the index atom plus every region.
func (c *Container) Layout() (tracks []*StreamInfo, total int64, err error) {
	off := c.indexSize()
	for i, tr := range c.Tracks {
		if err := tr.Info.Validate(); err != nil {
			return nil, 0, fmt.Errorf("media: track %d: %w", i, err)
		}
		rebased := &StreamInfo{
			Name:   fmt.Sprintf("%s#%s", c.Name, tr.Kind),
			Chunks: make([]Chunk, len(tr.Info.Chunks)),
		}
		for j, ch := range tr.Info.Chunks {
			ch.Offset += off
			rebased.Chunks[j] = ch
		}
		tracks = append(tracks, rebased)
		regionEnd := off + tr.Info.TotalSize()
		// Block-align the next region.
		off = (regionEnd + ufs.BlockSize - 1) / ufs.BlockSize * ufs.BlockSize
	}
	return tracks, off, nil
}

// encodeIndex serializes the index atom (padded to the aligned size).
func (c *Container) encodeIndex() []byte {
	out := make([]byte, c.indexSize())
	le := binary.LittleEndian
	le.PutUint32(out[0:], containerMagic)
	le.PutUint32(out[4:], 1)
	le.PutUint32(out[8:], uint32(len(c.Tracks)))
	pos := 12
	tracks, _, _ := c.Layout()
	for i, tr := range c.Tracks {
		le.PutUint64(out[pos:], uint64(tracks[i].Chunks[0].Offset)) // region base
		le.PutUint64(out[pos+8:], uint64(tr.Info.TotalSize()))
		pos += 16
		le.PutUint64(out[pos:], uint64(len(tr.Kind)))
		pos += 8
		copy(out[pos:], tr.Kind)
		pos += len(tr.Kind)
		le.PutUint64(out[pos:], uint64(len(tr.Info.Chunks)))
		pos += 8
		for _, ch := range tr.Info.Chunks {
			le.PutUint64(out[pos:], uint64(ch.Timestamp))
			le.PutUint64(out[pos+8:], uint64(ch.Duration))
			le.PutUint64(out[pos+16:], uint64(ch.Size))
			le.PutUint64(out[pos+24:], uint64(ch.Offset)) // track-relative
			pos += 32
		}
	}
	return out
}

// DecodeContainerIndex parses an index atom back into rebased per-track
// chunk tables ready for crs_open.
func DecodeContainerIndex(name string, data []byte) ([]Track, error) {
	le := binary.LittleEndian
	if len(data) < 12 || le.Uint32(data[0:]) != containerMagic {
		return nil, fmt.Errorf("media: not a container index")
	}
	if le.Uint32(data[4:]) != 1 {
		return nil, fmt.Errorf("media: unsupported container version")
	}
	n := int(le.Uint32(data[8:]))
	pos := 12
	var tracks []Track
	for i := 0; i < n; i++ {
		if pos+32 > len(data) {
			return nil, fmt.Errorf("media: truncated container index")
		}
		base := int64(le.Uint64(data[pos:]))
		pos += 16 // base + region size
		kindLen := int(le.Uint64(data[pos:]))
		pos += 8
		if pos+kindLen+8 > len(data) {
			return nil, fmt.Errorf("media: truncated track header")
		}
		kind := string(data[pos : pos+kindLen])
		pos += kindLen
		chunks := int(le.Uint64(data[pos:]))
		pos += 8
		if pos+32*chunks > len(data) {
			return nil, fmt.Errorf("media: truncated chunk table for track %d", i)
		}
		info := &StreamInfo{Name: fmt.Sprintf("%s#%s", name, kind), Chunks: make([]Chunk, chunks)}
		for j := 0; j < chunks; j++ {
			info.Chunks[j] = Chunk{
				Timestamp: sim.Time(le.Uint64(data[pos:])),
				Duration:  sim.Time(le.Uint64(data[pos+8:])),
				Size:      int64(le.Uint64(data[pos+16:])),
				Offset:    int64(le.Uint64(data[pos+24:])) + base,
			}
			pos += 32
		}
		tracks = append(tracks, Track{Kind: kind, Info: info})
	}
	return tracks, nil
}

// StoreContainer lays a container out on the file system: one preallocated
// media file whose first blocks hold the index atom. It returns the
// rebased per-track chunk tables.
func StoreContainer(p *sim.Proc, fs *ufs.FileSystem, path string, c *Container) ([]*StreamInfo, error) {
	tracks, total, err := c.Layout()
	if err != nil {
		return nil, err
	}
	f, err := fs.Create(p, path)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt(p, c.encodeIndex(), 0); err != nil {
		return nil, err
	}
	if err := f.Preallocate(p, total); err != nil {
		return nil, err
	}
	return tracks, nil
}

// LoadContainer reads a container's index through the Unix server and
// returns its tracks, rebased and ready to open on CRAS.
func LoadContainer(c *ufs.Client, path string) ([]Track, error) {
	fd, err := c.Open(path)
	if err != nil {
		return nil, err
	}
	defer c.Close(fd) //crasvet:allow ioerrcheck -- read-only fd; close cannot lose data
	// The index atom size is block-aligned; read the first block to learn
	// the track count, then enough blocks to cover the whole atom.
	head, err := c.Read(fd, 0, ufs.BlockSize)
	if err != nil {
		return nil, err
	}
	if tracks, err := DecodeContainerIndex(path, head); err == nil {
		return tracks, nil
	}
	// Index larger than one block: read generously (chunk tables are 32
	// bytes per chunk; 1 MB covers half an hour of 30 fps tracks).
	data, err := c.Read(fd, 0, 1<<20)
	if err != nil {
		return nil, err
	}
	return DecodeContainerIndex(path, data)
}
