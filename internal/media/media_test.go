package media

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/ufs"
)

func sec(n int) sim.Time { return sim.Time(n) * time.Second }

func TestCBRGenerate(t *testing.T) {
	s := MPEG1().Generate("m", sec(10))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Chunks) != 300 {
		t.Fatalf("chunks = %d, want 300 (30fps * 10s)", len(s.Chunks))
	}
	rate := s.AvgRate()
	if rate < 0.98*1.5e6/8 || rate > 1.02*1.5e6/8 {
		t.Fatalf("avg rate = %.0f B/s, want ~187500", rate)
	}
	if d := s.TotalDuration(); d < sec(9) || d > sec(10)+time.Millisecond {
		t.Fatalf("duration = %v", d)
	}
}

func TestMPEG2Rate(t *testing.T) {
	s := MPEG2().Generate("m", sec(5))
	rate := s.AvgRate()
	if rate < 0.98*6e6/8 || rate > 1.02*6e6/8 {
		t.Fatalf("avg rate = %.0f B/s, want ~750000", rate)
	}
}

func TestCBRWorstCaseEqualsAvg(t *testing.T) {
	s := MPEG1().Generate("m", sec(10))
	worst := s.WorstCaseRate(500 * time.Millisecond)
	avg := s.AvgRate()
	if worst < avg*0.95 || worst > avg*1.1 {
		t.Fatalf("CBR worst-case %.0f should be close to avg %.0f", worst, avg)
	}
}

func TestVBRGenerate(t *testing.T) {
	rng := sim.NewEngine(5).RNG("vbr")
	p := VBRProfile{FrameRate: 30, MeanRate: 187500, Jitter: 0.2}
	s := p.Generate("v", sec(30), rng)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := s.AvgRate()
	if avg < 0.7*187500 || avg > 1.3*187500 {
		t.Fatalf("VBR avg rate = %.0f, want near 187500", avg)
	}
	// The GOP structure must make the worst-case window rate exceed the
	// average appreciably — that is the buffer-waste effect from §3.2.
	worst := s.WorstCaseRate(200 * time.Millisecond)
	if worst < 1.2*avg {
		t.Fatalf("VBR worst %.0f vs avg %.0f: expected bursty structure", worst, avg)
	}
}

func TestVBRDeterministicWithSeed(t *testing.T) {
	gen := func() int64 {
		rng := sim.NewEngine(9).RNG("vbr")
		return VBRProfile{FrameRate: 30, MeanRate: 1e5, Jitter: 0.3}.Generate("v", sec(5), rng).TotalSize()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different VBR streams")
	}
}

func TestChunkAt(t *testing.T) {
	s := MPEG1().Generate("m", sec(2))
	frameDur := s.Chunks[0].Duration
	if s.ChunkAt(0) != 0 {
		t.Fatal("time 0 should map to chunk 0")
	}
	if got := s.ChunkAt(frameDur); got != 1 {
		t.Fatalf("ChunkAt(frameDur) = %d, want 1", got)
	}
	if got := s.ChunkAt(frameDur - 1); got != 0 {
		t.Fatalf("ChunkAt(frameDur-1) = %d, want 0", got)
	}
	if s.ChunkAt(-1) != -1 || s.ChunkAt(s.TotalDuration()) != -1 {
		t.Fatal("out-of-range times should map to -1")
	}
	last := len(s.Chunks) - 1
	if got := s.ChunkAt(s.TotalDuration() - 1); got != last {
		t.Fatalf("ChunkAt(end-1) = %d, want %d", got, last)
	}
}

func TestPropertyChunkAtConsistent(t *testing.T) {
	s := MPEG1().Generate("m", sec(5))
	f := func(tRaw uint32) bool {
		tm := sim.Time(tRaw) % s.TotalDuration()
		i := s.ChunkAt(tm)
		if i < 0 {
			return false
		}
		c := s.Chunks[i]
		return c.Timestamp <= tm && tm < c.Timestamp+c.Duration
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControlRoundtrip(t *testing.T) {
	rng := sim.NewEngine(2).RNG("vbr")
	s := VBRProfile{FrameRate: 30, MeanRate: 2e5, Jitter: 0.25}.Generate("v", sec(7), rng)
	enc := EncodeControl(s)
	dec, err := DecodeControl("v", enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Chunks) != len(s.Chunks) {
		t.Fatalf("chunk count: %d vs %d", len(dec.Chunks), len(s.Chunks))
	}
	for i := range s.Chunks {
		if dec.Chunks[i] != s.Chunks[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, dec.Chunks[i], s.Chunks[i])
		}
	}
}

func TestDecodeControlErrors(t *testing.T) {
	if _, err := DecodeControl("x", []byte{1, 2, 3}); err == nil {
		t.Fatal("short data accepted")
	}
	enc := EncodeControl(MPEG1().Generate("m", sec(1)))
	if _, err := DecodeControl("x", enc[:len(enc)-4]); err == nil {
		t.Fatal("truncated data accepted")
	}
	enc[0] = 0xFF
	if _, err := DecodeControl("x", enc); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestValidateCatchesCorruptTables(t *testing.T) {
	s := MPEG1().Generate("m", sec(1))
	s.Chunks[3].Offset += 7
	if s.Validate() == nil {
		t.Fatal("offset gap not caught")
	}
	s = MPEG1().Generate("m", sec(1))
	s.Chunks[5].Timestamp += 1
	if s.Validate() == nil {
		t.Fatal("timestamp gap not caught")
	}
	s = MPEG1().Generate("m", sec(1))
	s.Chunks[0].Duration = 0
	if s.Validate() == nil {
		t.Fatal("zero duration not caught")
	}
}

func TestStoreAndLoadFS(t *testing.T) {
	e := sim.NewEngine(1)
	g, pr := disk.ST32550N()
	g.Cylinders = 300
	g.Heads = 4
	d := disk.New(e, "sd0", g, pr)
	if _, err := ufs.Format(d, ufs.Options{}); err != nil {
		t.Fatal(err)
	}
	s := MPEG1().Generate("/movies/clip", sec(5))
	e.Spawn("setup", func(p *sim.Proc) {
		fs, err := ufs.Mount(p, d, ufs.Options{})
		if err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		if err := fs.Mkdir(p, "/movies"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := Store(p, fs, "/movies/clip", s); err != nil {
			t.Errorf("Store: %v", err)
			return
		}
		st, err := fs.Stat(p, "/movies/clip")
		if err != nil || st.Size != s.TotalSize() {
			t.Errorf("media file stat = %+v, %v", st, err)
		}
		got, err := LoadFS(p, fs, "/movies/clip")
		if err != nil {
			t.Errorf("LoadFS: %v", err)
			return
		}
		if len(got.Chunks) != len(s.Chunks) || got.TotalSize() != s.TotalSize() {
			t.Error("loaded chunk table differs")
		}
	})
	e.Run()
}

func TestEmptyStreamEdgeCases(t *testing.T) {
	s := &StreamInfo{Name: "empty"}
	if s.TotalSize() != 0 || s.TotalDuration() != 0 || s.AvgRate() != 0 {
		t.Fatal("empty stream should have zero aggregates")
	}
	if s.ChunkAt(0) != -1 {
		t.Fatal("empty stream ChunkAt should be -1")
	}
	if s.WorstCaseRate(time.Second) != 0 {
		t.Fatal("empty stream worst-case rate should be 0")
	}
	if err := s.Validate(); err != nil {
		t.Fatal("empty stream should validate")
	}
}
