package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrCmp guards sentinel-error matching. The module wraps errors — with
// fmt.Errorf("...%w", err) and with typed errors carrying an Unwrap method
// (core.OverloadError wraps ErrOverloaded) — so a sentinel compared with
// == or != silently stops matching the moment any path between producer
// and consumer adds a wrap. The analyzer taints, in its Gather phase:
//
//   - any package-level error variable used directly as a %w operand or
//     returned by an Unwrap method (WrappedFact on the variable), and
//   - any package whose returned errors are re-wrapped somewhere in the
//     module — detected by tracing a %w operand's local assignments to
//     the packages of the calls that produced it (WrapsPkgFact on the
//     producing package; its sentinels may then arrive wrapped anywhere).
//
// Run then flags every ==/!= whose operand is a tainted sentinel,
// demanding errors.Is. Comparisons against untainted sentinels (never
// wrapped anywhere in the module) stay legal: they are exact by
// construction, and ufs-internal code hot enough to care keeps them.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc: "forbid ==/!= against a sentinel error that is wrapped (via %w or an " +
		"Unwrap method) anywhere in the module; match wrapped sentinels with errors.Is",
	FactTypes: []Fact{(*WrappedFact)(nil), (*WrapsPkgFact)(nil)},
	Gather:    gatherWraps,
	Run:       runErrCmp,
}

// WrappedFact marks a package-level sentinel error variable as wrapped
// somewhere in the module.
type WrappedFact struct{}

func (*WrappedFact) AFact() {}

// WrapsPkgFact marks a package as one whose returned errors get re-wrapped
// somewhere in the module, so its sentinels can arrive wrapped.
type WrapsPkgFact struct{}

func (*WrapsPkgFact) AFact() {}

func gatherWraps(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// An Unwrap method returning a package-level error var wraps it.
			if fd.Name.Name == "Unwrap" && fd.Recv != nil {
				markUnwrapReturns(pass, fd)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
					return true
				}
				markErrorfWraps(pass, fd, call)
				return true
			})
		}
	}
	return nil
}

// markUnwrapReturns exports WrappedFact for every package-level error var
// an Unwrap method can return.
func markUnwrapReturns(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if obj := sentinelVar(pass.TypesInfo, res); obj != nil {
				pass.ExportObjectFact(obj, &WrappedFact{})
			}
		}
		return true
	})
}

// markErrorfWraps handles one fmt.Errorf call: for each %w verb operand,
// taint the sentinel it names directly, or the packages whose calls could
// have produced the local error value it carries.
func markErrorfWraps(pass *Pass, encl *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) < 2 || countWrapVerbs(pass.TypesInfo, call.Args[0]) == 0 {
		return
	}
	for _, arg := range call.Args[1:] {
		arg := ast.Unparen(arg)
		if !isErrorType(pass.TypesInfo.Types[arg].Type) {
			continue
		}
		if obj := sentinelVar(pass.TypesInfo, arg); obj != nil {
			pass.ExportObjectFact(obj, &WrappedFact{})
			continue
		}
		if id, ok := arg.(*ast.Ident); ok {
			for _, pkg := range originPackages(pass.TypesInfo, encl, id) {
				pass.ExportPackageFact(pkg, &WrapsPkgFact{})
			}
		}
	}
}

// countWrapVerbs counts %w verbs in a constant format string.
func countWrapVerbs(info *types.Info, format ast.Expr) int {
	tv, ok := info.Types[format]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return 0
	}
	return strings.Count(constant.StringVal(tv.Value), "%w")
}

// sentinelVar resolves an expression to a package-level variable of type
// error (a sentinel), or nil.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	v, ok := usedVar(info, ast.Unparen(e))
	if !ok || v.Pkg() == nil || !isErrorType(v.Type()) {
		return nil
	}
	if v.Pkg().Scope().Lookup(v.Name()) != v {
		return nil
	}
	return v
}

func usedVar(info *types.Info, e ast.Expr) (*types.Var, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		return v, ok
	case *ast.SelectorExpr:
		v, ok := info.Uses[e.Sel].(*types.Var)
		return v, ok
	}
	return nil, false
}

// originPackages scans the enclosing function for assignments to the local
// variable and returns the import paths of the called functions that could
// have produced its value.
func originPackages(info *types.Info, encl *ast.FuncDecl, id *ast.Ident) []string {
	target := info.Uses[id]
	if target == nil {
		return nil
	}
	seen := map[string]bool{}
	var pkgs []string
	note := func(rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || seen[fn.Pkg().Path()] {
			return
		}
		seen[fn.Pkg().Path()] = true
		pkgs = append(pkgs, fn.Pkg().Path())
	}
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || (info.Uses[lid] != target && info.Defs[lid] != target) {
				continue
			}
			if len(as.Rhs) == 1 {
				note(as.Rhs[0]) // multi-value call: x, err := f()
			} else if i < len(as.Rhs) {
				note(as.Rhs[i])
			}
		}
		return true
	})
	return pkgs
}

func runErrCmp(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				obj := sentinelVar(info, side)
				if obj == nil {
					continue
				}
				other := be.Y
				if side == be.Y {
					other = be.X
				}
				if !isErrorType(info.Types[ast.Unparen(other)].Type) {
					continue
				}
				if !sentinelWrapped(pass, obj) {
					continue
				}
				verb := "errors.Is(err, " + obj.Name() + ")"
				if be.Op == token.NEQ {
					verb = "!" + verb
				}
				pass.Reportf(be.Pos(),
					"%s %s %s: the sentinel is wrapped elsewhere in the module, so == misses wrapped values; use %s",
					renderOperand(other), be.Op, obj.Name(), verb)
				return true
			}
			return true
		})
	}
	return nil
}

// sentinelWrapped reports whether the sentinel itself, or its defining
// package's returned errors, are wrapped anywhere in the module.
func sentinelWrapped(pass *Pass, obj *types.Var) bool {
	var wf WrappedFact
	if pass.ImportObjectFact(obj, &wf) {
		return true
	}
	var pf WrapsPkgFact
	return pass.ImportPackageFact(obj.Pkg().Path(), &pf)
}

// renderOperand names the non-sentinel side of the comparison for the
// message, defaulting to "err".
func renderOperand(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "err"
}
