package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags heap allocations on the per-cycle path: functions
// annotated //crasvet:hotpath plus everything the call graph reaches from
// the scheduler event loop (the callback handed to
// rtm.Kernel.NewPeriodicThread). Every interval the scheduler stamps,
// discards and issues for every admitted stream; an allocation there is
// multiplied by stream count × cycle rate, and scaling the engine to
// 10k+ streams requires this path to be allocation-free. Flagged forms:
//
//   - escaping composite literals (&T{...}) and new(T)
//   - make of slices, maps and channels
//   - fmt.* calls (Sprintf and friends format into fresh strings)
//   - arguments boxed into a variadic ...any parameter
//   - function literals that capture enclosing variables (closure headers)
//   - append (may grow the backing array mid-cycle)
//
// Pre-existing findings are burned down through the crasvet -baseline
// file rather than annotated away; //crasvet:allow hotalloc remains for
// sites that are allocation-free by construction (e.g. an append into a
// slice reset under the same cycle with capacity retained).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocations (escaping composites, make, fmt, variadic " +
		"boxing, capturing closures, append) in //crasvet:hotpath functions and " +
		"code reachable from the scheduler's per-cycle loop",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	g := pass.Graph()
	info := pass.TypesInfo
	for _, f := range pass.Files {
		walkWithFunc(g, info, f, func(encl string, n ast.Node) {
			if encl == "" || !g.HotPath(encl) {
				return
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						pass.Reportf(n.Pos(), "composite literal escapes to the heap on the hot path; reuse a pooled or preallocated value")
					}
				}
			case *ast.FuncLit:
				if capt := captured(info, n); capt != "" {
					pass.Reportf(n.Pos(), "closure captures %s on the hot path; each capture allocates — hoist the closure or pass state explicitly", capt)
				}
			case *ast.CallExpr:
				checkHotCall(pass, n)
			}
		})
	}
	return nil
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				pass.Reportf(call.Pos(), "new allocates on the hot path; reuse a preallocated value")
			case "make":
				pass.Reportf(call.Pos(), "make allocates on the hot path; preallocate outside the loop and reuse")
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array on the hot path; preallocate to the admitted bound")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path; format off-cycle or use a preallocated buffer", fn.Name())
		return
	}
	// Passing arguments through a variadic ...any parameter boxes each one.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return
	}
	if len(call.Args) >= sig.Params().Len() { // at least one boxed argument
		pass.Reportf(call.Pos(), "arguments to %s box into a variadic ...any slice on the hot path", qualifiedName(fn))
	}
}

// captured returns the name of a variable the literal captures from an
// enclosing function, or "".
func captured(info *types.Info, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Pkg() == nil {
			return true
		}
		// A local whose declaration lies outside the literal is a capture.
		if obj.Parent() != obj.Pkg().Scope() && !withinNode(lit, obj.Pos()) {
			name = obj.Name()
		}
		return true
	})
	return name
}

func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
