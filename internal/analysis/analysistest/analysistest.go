// Package analysistest runs a crasvet analyzer over a fixture directory and
// checks its diagnostics against // want comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest but built on the standard
// library only.
//
// A fixture directory holds one package of .go files. Each line that should
// produce a diagnostic carries a comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// with one quoted regular expression per expected diagnostic on that line.
// Lines without a want comment must stay clean. Subdirectories are compiled
// first as helper packages importable as "<fixture>/<subdir>".
//
// Fixtures type-check against real export data (go list -export), so they
// may import the standard library and repro packages such as
// repro/internal/sim.
package analysistest

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run checks the analyzer against the fixture directory, type-checked under
// the import path filepath.Base(dir).
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunAs(t, dir, filepath.Base(dir), a)
}

// RunAs is Run with an explicit import path for the fixture package, for
// analyzers whose behavior depends on where the code lives (for example
// rngsource's internal/sim/rng.go exemption).
func RunAs(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	helpers, main := loadFixture(t, dir, pkgPath)
	_ = helpers // helper packages only provide types; the analyzer sees main
	diags, err := main.Run(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	compare(t, main.Fset, main.Files, diags)
}

// RunSuite checks the analyzer against the fixture directory as a full
// Suite: the helper packages in subdirectories are analyzed too (in
// dependency order, with facts flowing to the main package), want comments
// are honored in every file, and the analyzer runs with the suite-wide
// call graph — the entry point for the interprocedural analyzers
// (goroconfine, hotalloc, errcmp) and for cross-package fact fixtures.
func RunSuite(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunSuiteAs(t, dir, filepath.Base(dir), a)
}

// RunSuiteAs is RunSuite with an explicit import path for the main fixture
// package.
func RunSuiteAs(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	helpers, main := loadFixture(t, dir, pkgPath)
	suite := analysis.NewSuite(append(helpers, main))
	diags, err := suite.RunUnscoped(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var files []*ast.File
	for _, p := range suite.Pkgs {
		files = append(files, p.Files...)
	}
	compare(t, main.Fset, files, diags)
}

// loadFixture parses and type-checks a fixture directory: subdirectory
// helper packages first (importable as "<fixture>/<subdir>"), then the
// main package under the given import path. All packages share one
// FileSet.
func loadFixture(t *testing.T, dir, pkgPath string) (helpers []*analysis.Package, main *analysis.Package) {
	t.Helper()

	fset := token.NewFileSet()
	base := filepath.Base(dir)

	// Helper packages in subdirectories compile first.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var mainFiles []*ast.File
	for _, e := range entries {
		if e.IsDir() {
			sub := filepath.Join(dir, e.Name())
			helpers = append(helpers, &analysis.Package{
				Path:  base + "/" + e.Name(),
				Dir:   sub,
				Fset:  fset,
				Files: parseDir(t, fset, sub),
			})
		}
	}
	mainFiles = parseDir(t, fset, dir)
	if len(mainFiles) == 0 {
		t.Fatalf("no .go files in fixture %s", dir)
	}

	// Resolve external imports through the build cache.
	external := map[string]bool{}
	collect := func(files []*ast.File) {
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "unsafe" || strings.HasPrefix(p, base+"/") {
					continue
				}
				external[p] = true
			}
		}
	}
	for _, h := range helpers {
		collect(h.Files)
	}
	collect(mainFiles)
	imp := &fixtureImporter{
		local:    map[string]*types.Package{},
		delegate: analysis.ExportImporter(fset, exportData(t, external)),
	}

	check := func(path string, files []*ast.File) (*types.Package, *types.Info) {
		info := analysis.NewInfo()
		var terrs []error
		conf := types.Config{Importer: imp, Error: func(err error) { terrs = append(terrs, err) }}
		pkg, _ := conf.Check(path, fset, files, info)
		for _, e := range terrs {
			t.Errorf("fixture %s: type error: %v", dir, e)
		}
		if len(terrs) > 0 {
			t.FailNow()
		}
		return pkg, info
	}
	for _, h := range helpers {
		h.Types, h.Info = check(h.Path, h.Files)
		imp.local[h.Path] = h.Types
	}
	tpkg, info := check(pkgPath, mainFiles)

	main = &analysis.Package{
		Path:  pkgPath,
		Dir:   dir,
		Fset:  fset,
		Files: mainFiles,
		Types: tpkg,
		Info:  info,
	}
	return helpers, main
}

// parseDir parses the .go files directly inside dir (no recursion).
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	return files
}

// exportData resolves the given import paths (plus transitive dependencies)
// to gc export data files via the go tool.
func exportData(t *testing.T, paths map[string]bool) map[string]string {
	t.Helper()
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports
	}
	args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}
	for p := range paths {
		args = append(args, p)
	}
	sort.Strings(args[5:])
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF { //crasvet:allow errcmp -- Decode returns bare io.EOF at a clean stream end; == is the documented idiom
			break
		} else if err != nil {
			t.Fatalf("go list -export: decoding: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports
}

// fixtureImporter resolves fixture helper packages locally and everything
// else through export data.
type fixtureImporter struct {
	local    map[string]*types.Package
	delegate types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.local[path]; ok {
		return pkg, nil
	}
	return fi.delegate.Import(path)
}

// expectation is one // want regexp, keyed to its file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// splitQuoted extracts the double-quoted strings from a want comment tail.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q (expected quoted regexp)", pos, s)
		}
		// Find the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", pos, s[:end+1], err)
		}
		out = append(out, q)
		s = s[end+1:]
	}
}
