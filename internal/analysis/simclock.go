package analysis

import (
	"go/ast"
	"go/types"
)

// simClockBanned lists the package time functions that read or wait on the
// wall clock. Constants (time.Second) and types (time.Duration — the
// definition of sim.Time) remain allowed: they carry no nondeterminism.
var simClockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// SimClock forbids wall-clock access in simulation packages. Every figure in
// internal/expt replays from a seed; one time.Now() makes the replay depend
// on the host scheduler and silently invalidates the admission-accuracy
// comparisons (Figures 8–9). Simulation code must consume sim.Time from the
// engine (Engine.Now, Proc.Sleep, Engine.At/After).
var SimClock = &Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Sleep/Since/Until/After/AfterFunc/Tick/NewTimer/NewTicker " +
		"in simulation packages; use the sim engine's virtual clock instead",
	Scope: suffixScope(
		"internal/core", "internal/disk", "internal/ufs", "internal/media",
		"internal/expt", "internal/workload", "internal/rtm", "internal/nps",
	),
	Run: runSimClock,
}

func runSimClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if simClockBanned[fn.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s reads the wall clock; simulation code must use the sim engine's virtual time (Engine.Now, Proc.Sleep, Engine.At/After)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
