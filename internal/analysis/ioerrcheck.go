package analysis

import (
	"go/ast"
	"go/types"
)

// IOErrCheck flags discarded error returns from the internal/disk and
// internal/ufs read/write paths. A swallowed I/O error leaves the
// cylinder-sorted batch accounting out of sync with what the disk actually
// did, which quietly skews the very measurements (Figures 8–9) the admission
// formulas are validated against.
var IOErrCheck = NewIOErrCheck("internal/disk", "internal/ufs")

// NewIOErrCheck builds an ioerrcheck analyzer that guards calls into
// packages whose import path equals or ends with one of the given suffixes.
// The default instance guards internal/disk and internal/ufs; tests build
// instances pointed at fixture packages.
func NewIOErrCheck(pkgSuffixes ...string) *Analyzer {
	match := suffixScope(pkgSuffixes...)
	a := &Analyzer{
		Name: "ioerrcheck",
		Doc: "forbid discarding error returns from internal/disk and internal/ufs calls; " +
			"a swallowed I/O error corrupts the batch accounting admission control depends on",
		Scope: nil, // callers live in many packages; the callee check scopes it
	}
	a.Run = func(pass *Pass) error { return runIOErrCheck(pass, match) }
	return a
}

func runIOErrCheck(pass *Pass, guarded func(string) bool) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, guarded, n.X, "discarded")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, guarded, n.Call, "discarded by defer")
			case *ast.GoStmt:
				checkDiscardedCall(pass, guarded, n.Call, "discarded by go")
			case *ast.AssignStmt:
				checkBlankAssign(pass, guarded, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a guarded call used as a bare statement when it
// returns an error.
func checkDiscardedCall(pass *Pass, guarded func(string) bool, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !guarded(fn.Pkg().Path()) {
		return
	}
	if pos := errorResultIndex(fn); pos >= 0 {
		pass.Reportf(call.Pos(),
			"error result of %s.%s %s; I/O errors must be handled or the batch accounting drifts",
			fn.Pkg().Name(), qualifiedName(fn), how)
	}
}

// checkBlankAssign reports guarded calls whose error result is assigned to
// the blank identifier, covering both `_ = f.Close()` and `n, _ := r.Read()`.
func checkBlankAssign(pass *Pass, guarded func(string) bool, as *ast.AssignStmt) {
	// Single call on the RHS: LHS positions correspond to result positions.
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !guarded(fn.Pkg().Path()) {
				return
			}
			idx := errorResultIndex(fn)
			if idx < 0 {
				return
			}
			// A single-result call assigned to one LHS; or a multi-result
			// call destructured across the LHS.
			if len(as.Lhs) > idx && isBlank(as.Lhs[idx]) {
				pass.Reportf(as.Lhs[idx].Pos(),
					"error result of %s.%s assigned to _; I/O errors must be handled or the batch accounting drifts",
					fn.Pkg().Name(), qualifiedName(fn))
			}
			return
		}
	}
	// Parallel assignment: match each RHS call to its LHS.
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBlank(as.Lhs[i]) {
				continue
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !guarded(fn.Pkg().Path()) {
				continue
			}
			if errorResultIndex(fn) == 0 {
				pass.Reportf(as.Lhs[i].Pos(),
					"error result of %s.%s assigned to _; I/O errors must be handled or the batch accounting drifts",
					fn.Pkg().Name(), qualifiedName(fn))
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errorResultIndex returns the index of the function's error result, or -1.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
