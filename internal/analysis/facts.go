package analysis

import (
	"go/types"
	"reflect"
)

// The facts layer, modeled on golang.org/x/tools/go/analysis facts but
// in-memory: an analyzer running on one package can attach typed facts to
// objects (package-level declarations, methods, struct fields) or to whole
// packages, and analyzers running later — on the same package or on any
// other package of the suite — can look them up. The suite driver runs each
// analyzer's Gather phase over every package in dependency order before any
// Run phase executes, so facts gathered anywhere in the module are visible
// to every Run (a deliberate extension of the x/tools model, where facts
// only flow along import edges: invariants like "this sentinel is wrapped
// somewhere in the module" need the module-wide view).
//
// Cross-package object identity: a package sees its dependencies through
// compiler export data, so the types.Object for ufs.ErrExists inside
// internal/media is not the same Go value as the one produced by
// type-checking internal/ufs from source. Facts are therefore keyed by a
// stable path — package path plus declaration name (plus owner type for
// methods and struct fields) — computed identically from either view.

// A Fact is a typed datum attached to an object or package. Implementations
// must be pointer types; AFact is a marker.
type Fact interface{ AFact() }

// factKey identifies one fact slot: which analyzer wrote it, the stable
// object (or package) key, and the concrete fact type.
type factKey struct {
	analyzer string
	object   string
	typ      reflect.Type
}

type factStore map[factKey]Fact

// objectKey returns a stable cross-view key for obj: "pkg.Name" for
// package-level declarations, "pkg.Type.Name" for methods and struct
// fields of package-level named types. Objects without a stable path
// (locals, fields of anonymous types) report ok=false.
func objectKey(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if pkg.Scope().Lookup(obj.Name()) == obj {
		return pkg.Path() + "." + obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if named := namedOf(sig.Recv().Type()); named != nil {
				return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name(), true
			}
		}
		return "", false
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return pkg.Path() + "." + name + "." + v.Name(), true
				}
			}
		}
	}
	return "", false
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func (s factStore) set(analyzer, object string, f Fact) {
	s[factKey{analyzer, object, reflect.TypeOf(f)}] = f
}

// get copies a stored fact of ptr's type into ptr and reports whether one
// existed.
func (s factStore) get(analyzer, object string, ptr Fact) bool {
	f, ok := s[factKey{analyzer, object, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// pkgFactKey is the object-key namespace for package-level facts.
func pkgFactKey(pkgPath string) string { return "pkg:" + pkgPath }

// ExportObjectFact attaches fact to obj for later ImportObjectFact calls by
// the same analyzer, from this or any other package of the suite. Unlike
// x/tools, the object need not belong to the package under analysis: the
// suite's store is module-global, which is what lets a wrap site in one
// package taint a sentinel declared in another. Objects without a stable
// key (locals) are silently skipped.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	key, ok := objectKey(obj)
	if !ok {
		return
	}
	p.suite.facts.set(p.Analyzer.Name, key, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type attached to obj
// into ptr, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	return p.suite.facts.get(p.Analyzer.Name, key, ptr)
}

// ExportPackageFact attaches fact to the package with the given import
// path (not necessarily the package under analysis; see ExportObjectFact).
func (p *Pass) ExportPackageFact(pkgPath string, fact Fact) {
	p.suite.facts.set(p.Analyzer.Name, pkgFactKey(pkgPath), fact)
}

// ImportPackageFact copies the fact of ptr's concrete type attached to the
// package with the given import path into ptr.
func (p *Pass) ImportPackageFact(pkgPath string, ptr Fact) bool {
	return p.suite.facts.get(p.Analyzer.Name, pkgFactKey(pkgPath), ptr)
}
