package analysis

import (
	"fmt"
	"sort"
)

// A Suite is the interprocedural driver: the full set of packages under
// analysis, topologically sorted by import dependency, with one shared
// call graph and one module-global fact store. Per-package analyzers run
// unchanged under a suite; interprocedural analyzers additionally get a
// Gather phase, which the driver runs over every package (in dependency
// order) before any Run phase executes, so exported facts are visible
// module-wide by the time diagnostics are produced.
type Suite struct {
	Pkgs  []*Package // dependency order: every package after its imports
	Graph *CallGraph

	facts factStore
}

// NewSuite builds a suite over the packages: sorts them so every package
// follows its in-suite imports, and constructs the shared call graph. All
// packages must share one token.FileSet (as Load guarantees).
func NewSuite(pkgs []*Package) *Suite {
	s := &Suite{Pkgs: depOrder(pkgs), facts: factStore{}}
	if len(pkgs) > 0 {
		s.Graph = buildCallGraph(pkgs[0].Fset, s.Pkgs)
	} else {
		s.Graph = buildCallGraph(nil, nil)
	}
	return s
}

// depOrder sorts packages in dependency order, ties broken by import path.
func depOrder(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	order := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return // cycle (impossible in valid Go) or done
		}
		state[p.Path] = 1
		if p.Types != nil {
			imports := p.Types.Imports()
			paths := make([]string, 0, len(imports))
			for _, imp := range imports {
				paths = append(paths, imp.Path())
			}
			sort.Strings(paths)
			for _, path := range paths {
				if dep, ok := byPath[path]; ok {
					visit(dep)
				}
			}
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		visit(p)
	}
	return order
}

// pass builds one analyzer's view of one package under this suite.
func (s *Suite) pass(a *Analyzer, pkg *Package, diags *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		suite:     s,
		diags:     diags,
	}
}

// Run applies the analyzers to every in-scope package: first every Gather
// (fact export) in dependency order, then every Run. Findings have
// //crasvet:allow directives applied and come back sorted by position.
func (s *Suite) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	return s.run(analyzers, false)
}

// RunUnscoped is Run with every analyzer's Scope ignored — the test entry
// point, where fixtures live under paths no Scope would match.
func (s *Suite) RunUnscoped(analyzers ...*Analyzer) ([]Diagnostic, error) {
	return s.run(analyzers, true)
}

func (s *Suite) run(analyzers []*Analyzer, ignoreScope bool) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if a.Gather == nil {
			continue
		}
		for _, pkg := range s.Pkgs {
			if !ignoreScope && a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			if err := a.Gather(s.pass(a, pkg, nil)); err != nil {
				return nil, fmt.Errorf("%s: %s (gather): %w", pkg.Path, a.Name, err)
			}
		}
	}
	var all []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range s.Pkgs {
			if !ignoreScope && a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			var diags []Diagnostic
			if err := a.Run(s.pass(a, pkg, &diags)); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
			all = append(all, applyDirectives(pkg, diags)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Analyzer != all[j].Analyzer && all[i].Pos == all[j].Pos {
			return all[i].Analyzer < all[j].Analyzer
		}
		return lessPosition(all[i].Pos, all[j].Pos)
	})
	return all, nil
}

// applyDirectives drops diagnostics sanctioned by //crasvet:allow comments
// in the package's source.
func applyDirectives(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return nil
	}
	allow := pkg.directives()
	kept := diags[:0]
	for _, d := range diags {
		if allow.allows(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
