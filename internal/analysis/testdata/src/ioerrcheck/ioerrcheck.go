package ioerrcheck

import "ioerrcheck/fakedisk"

func discards(f *fakedisk.File) {
	fakedisk.Sync()               // want "error result of fakedisk.Sync discarded"
	f.Close()                     // want "error result of fakedisk.File.Close discarded"
	defer f.Close()               // want "error result of fakedisk.File.Close discarded by defer"
	_ = fakedisk.Sync()           // want "error result of fakedisk.Sync assigned to _"
	n, _ := f.WriteAt(nil, 0)     // want "error result of fakedisk.File.WriteAt assigned to _"
	_, _ = fakedisk.ReadSector(0) // want "error result of fakedisk.ReadSector assigned to _"
	_ = n
}

func handled(f *fakedisk.File) error {
	if err := fakedisk.Sync(); err != nil {
		return err
	}
	if _, err := f.WriteAt(nil, 0); err != nil {
		return err
	}
	// Error-free results are no business of the analyzer's.
	_ = fakedisk.SectorCount()
	return f.Close()
}

func sanctioned(f *fakedisk.File) {
	defer f.Close() //crasvet:allow ioerrcheck -- fixture: read-only close
}
