// Package fakedisk stands in for internal/disk and internal/ufs in the
// ioerrcheck fixtures.
package fakedisk

type File struct{}

func (f *File) Close() error                             { return nil }
func (f *File) WriteAt(b []byte, off int64) (int, error) { return len(b), nil }

func Sync() error                          { return nil }
func ReadSector(lba int64) ([]byte, error) { return nil, nil }
func SectorCount() int                     { return 0 }
