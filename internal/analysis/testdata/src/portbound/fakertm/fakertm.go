// Package fakertm stands in for internal/rtm in the portbound fixtures.
package fakertm

type Thread struct{}

// BoundedPort mirrors the real API: Send reports refusal with a bool, Call
// with an error, ReceiveCall with an ok flag.
type BoundedPort struct{}

func (b *BoundedPort) Send(msg any) bool                            { return true }
func (b *BoundedPort) Call(t *Thread, req any) (any, error)         { return nil, nil }
func (b *BoundedPort) ReceiveCall(t *Thread) (any, func(any), bool) { return nil, nil, false }
func (b *BoundedPort) Rejected() int64                              { return 0 }

// Port is the unbounded kind: its sends cannot be refused, so discarding
// nothing is at stake and the analyzer must leave it alone.
type Port struct{}

func (p *Port) Send(msg any) {}
