package portbound

import "portbound/fakertm"

func drops(b *fakertm.BoundedPort, t *fakertm.Thread) {
	b.Send(nil)                     // want "rejection result of fakertm.BoundedPort.Send discarded"
	go b.Send(nil)                  // want "rejection result of fakertm.BoundedPort.Send discarded by go"
	_ = b.Send(nil)                 // want "rejection result of fakertm.BoundedPort.Send assigned to _"
	b.Call(t, nil)                  // want "rejection result of fakertm.BoundedPort.Call discarded"
	defer b.Call(t, nil)            // want "rejection result of fakertm.BoundedPort.Call discarded by defer"
	r, _ := b.Call(t, nil)          // want "rejection result of fakertm.BoundedPort.Call assigned to _"
	_, _ = b.Send(nil), b.Send(nil) // want "rejection result of fakertm.BoundedPort.Send assigned to _" "rejection result of fakertm.BoundedPort.Send assigned to _"
	_ = r
}

func handled(b *fakertm.BoundedPort, t *fakertm.Thread) error {
	if !b.Send(nil) {
		return nil
	}
	ok := b.Send(nil)
	_ = ok
	if _, err := b.Call(t, nil); err != nil {
		return err
	}
	req, reply, ok2 := b.ReceiveCall(t)
	_, _, _ = req, reply, ok2
	// Result-free reads and the unbounded port are no business of the
	// analyzer's.
	b.Rejected()
	var p fakertm.Port
	p.Send(nil)
	return nil
}

func sanctioned(b *fakertm.BoundedPort) {
	b.Send(nil) //crasvet:allow portbound -- fixture: best-effort notification
}
