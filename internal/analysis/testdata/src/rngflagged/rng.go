// Package rngflagged mirrors the rngexempt fixture outside internal/sim:
// naming a file rng.go does not sanction the import on its own.
package rngflagged

import "math/rand" // want "import of .math/rand. outside internal/sim/rng.go"

// New mirrors rngexempt.New.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
