package eventloop

import (
	"sync"

	"repro/internal/sim"
)

func drain(ch chan int) {
	for range ch {
	}
}

var done bool

// Event callbacks run interleaved with the engine: no goroutines, channel
// traffic, locks, or loops that never hand control back.
func badCallback(e *sim.Engine, mu *sync.Mutex, ch chan int) {
	e.After(5, func() {
		go drain(ch)   // want "goroutine spawn inside sim callback"
		ch <- 1        // want "channel send inside sim callback"
		<-ch           // want "channel receive inside sim callback"
		mu.Lock()      // want "sync.Mutex.Lock inside sim callback"
		for range ch { // want "range over channel inside sim callback"
		}
		select { // want "select inside sim callback"
		default:
		}
		for { // want "unbounded for loop inside sim callback"
			done = !done
		}
	})
}

// A loop with a reachable exit is fine.
func boundedCallback(e *sim.Engine) {
	e.At(0, func() {
		for {
			if done {
				break
			}
			done = true
		}
	})
}

// Process bodies may loop forever as long as each iteration yields through
// the scheduler handle.
func pump(e *sim.Engine) {
	e.Spawn("pump", func(p *sim.Proc) {
		for {
			p.Sleep(1)
		}
	})
}

// A process loop that never touches its scheduler handle spins the engine.
func spin(e *sim.Engine) {
	e.Spawn("spin", func(p *sim.Proc) {
		n := 0
		for { // want "unbounded for loop inside sim callback"
			n++
		}
	})
}

type manager struct {
	e  *sim.Engine
	ch chan int
}

// Callbacks passed as method values are resolved to their declarations.
func (m *manager) tick() {
	m.ch <- 1 // want "channel send inside sim callback tick"
}

func (m *manager) start() {
	m.e.After(1, m.tick)
}

// Functions taking a scheduler handle are process bodies even when they are
// not passed to the engine directly.
func helperBody(p *sim.Proc, ch chan int) {
	<-ch // want "channel receive inside process body helperBody"
}

func sanctioned(e *sim.Engine, ch chan int) {
	e.After(1, func() {
		//crasvet:allow eventloop -- fixture: sanctioned bridge to the host
		go drain(ch)
	})
}
