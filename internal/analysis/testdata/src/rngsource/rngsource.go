package rngsource

import (
	_ "crypto/rand" // want "import of .crypto/rand. outside internal/sim/rng.go"
	_ "math/rand"   // want "import of .math/rand. outside internal/sim/rng.go"

	//crasvet:allow rngsource -- fixture: sanctioned exception
	_ "math/rand/v2"
)
