// Fixture for the errcmp analyzer: ==/!= against a sentinel error is only
// safe while nothing in the module wraps it. Three wrap routes are covered:
// a direct %w operand, an Unwrap method, and re-wrapping another package's
// returned errors (which taints that whole package).
package errcmp

import (
	"errors"
	"fmt"

	"errcmp/store"
)

// ErrDirect is wrapped with %w as a direct operand below.
var ErrDirect = errors.New("direct")

// ErrViaUnwrap is surfaced by box.Unwrap, so errors.Is can reach it
// through a chain — and == cannot.
var ErrViaUnwrap = errors.New("via unwrap")

// ErrBare is never wrapped anywhere in the module: == stays fine.
var ErrBare = errors.New("bare")

// box is a wrapper error type.
type box struct{ msg string }

func (b box) Error() string { return b.msg }
func (b box) Unwrap() error { return ErrViaUnwrap }

// Seal wraps ErrDirect explicitly.
func Seal() error {
	return fmt.Errorf("sealed: %w", ErrDirect)
}

// Load re-wraps whatever store.Find returned, tainting package
// errcmp/store.
func Load(name string) error {
	if err := store.Find(name); err != nil {
		return fmt.Errorf("load %s: %w", name, err)
	}
	return nil
}

// Check holds the comparisons under test.
func Check(err error) int {
	if err == ErrDirect { // want "errors.Is"
		return 1
	}
	if err != ErrViaUnwrap { // want "errors.Is"
		return 2
	}
	if err == store.ErrMissing { // want "errors.Is"
		return 3
	}
	if store.ErrLocal == err { // want "errors.Is"
		return 4
	}
	if err == ErrBare { // unwrapped sentinel: == is exact, no diagnostic
		return 5
	}
	return 0
}

// Allowed regression-tests the escape hatch on the new analyzer.
func Allowed(err error) bool {
	return err == ErrDirect //crasvet:allow errcmp -- fixture: directive must still suppress
}
