// Package store declares sentinel errors. Nothing in this package wraps
// them — the taint arrives from the main fixture package, which wraps
// store's returned errors with %w. The comparison below must still be
// flagged: facts are module-wide, not import-order-wide.
package store

import "errors"

// ErrMissing is returned for unknown names.
var ErrMissing = errors.New("missing")

// ErrLocal is never wrapped directly, but lives in a package whose errors
// are re-wrapped by a caller, so comparisons against it are flagged too
// (the documented package-level over-approximation).
var ErrLocal = errors.New("local")

// Find reports whether the name exists.
func Find(name string) error {
	if name == "" {
		return ErrMissing
	}
	return nil
}

// Probe compares inside the defining package; the wrap happens in the main
// fixture package, so this only trips if facts flow module-wide.
func Probe(name string) bool {
	return Find(name) == ErrMissing // want "errors.Is"
}
