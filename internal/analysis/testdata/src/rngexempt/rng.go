// Package sim stands in for repro/internal/sim: a file named rng.go inside
// a package whose import path ends in internal/sim is the one sanctioned
// home for math/rand.
package sim

import "math/rand"

// New is the kind of seeded constructor rng.go is allowed to build.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
