// Package rtm is a minimal stand-in for repro/internal/rtm: the call-graph
// root detection matches callbacks handed to NewThread/NewPeriodicThread on
// any package whose import path ends in "/rtm".
package rtm

// Thread is a fake scheduler handle.
type Thread struct{}

// Kernel is a fake cooperative kernel.
type Kernel struct{}

// PeriodicConfig mirrors the real periodic-thread configuration.
type PeriodicConfig struct{ Name string }

// NewThread registers a thread body.
func (k *Kernel) NewThread(name string, prio int, body func(t *Thread)) *Thread {
	return &Thread{}
}

// NewPeriodicThread registers a periodic event-loop body.
func (k *Kernel) NewPeriodicThread(cfg PeriodicConfig, body func(t *Thread, cycle int) bool) *Thread {
	return &Thread{}
}
