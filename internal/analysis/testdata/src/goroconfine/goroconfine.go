// Fixture for the goroconfine analyzer: fields annotated //crasvet:confined
// may only be touched from thread-entry-reachable functions, snapshot
// accessors, or pre-concurrency construction.
package goroconfine

import "goroconfine/rtm"

// Stats is per-cycle bookkeeping owned by the scheduler.
type Stats struct{ Cycles int }

// Server models the CRAS server shape: some fields are event-loop
// confined, some are freely shared.
type Server struct {
	k     *rtm.Kernel
	stats Stats //crasvet:confined
	cycle int   //crasvet:confined
	open  bool  // unannotated: accessible anywhere
}

// New is the pre-concurrency construction path.
//
//crasvet:init
func New(k *rtm.Kernel) *Server {
	s := &Server{k: k, stats: Stats{}, cycle: 0} // sanctioned by //crasvet:init
	k.NewPeriodicThread(rtm.PeriodicConfig{Name: "sched"}, s.scheduleCycle)
	k.NewThread("mgr", 1, func(t *rtm.Thread) {
		s.manage()
	})
	return s
}

// scheduleCycle is the event loop itself (a NewPeriodicThread root).
func (s *Server) scheduleCycle(t *rtm.Thread, cycle int) bool {
	s.cycle = cycle
	s.stats.Cycles++
	s.helper()
	return true
}

// helper is reachable from the loop, so its accesses are sanctioned.
func (s *Server) helper() {
	s.stats.Cycles++
	s.open = true
}

// manage is reachable from the NewThread body above.
func (s *Server) manage() {
	s.cycle++
}

// Snapshot is the documented cross-thread read path.
//
//crasvet:snapshot
func (s *Server) Snapshot() Stats { return s.stats }

// Peek is an undocumented accessor: not reachable from any thread entry.
func (s *Server) Peek() int {
	return s.cycle // want "confined field cycle"
}

// Race is the class of bug the analyzer exists for: a Stats write from a
// goroutine that is not one of the server's threads.
func (s *Server) Race() {
	go func() {
		s.stats.Cycles++ // want "confined field stats"
	}()
	s.open = false // unannotated fields stay free
}

// Allowed regression-tests the escape hatch on the new analyzer.
func (s *Server) Allowed() int {
	return s.cycle //crasvet:allow goroconfine -- fixture: directive must still suppress
}
