// Fixture for cross-package fact import: srv.Server.Stats is annotated
// //crasvet:confined in the helper package; the fact must flow here and
// flag the access even though the annotation is not visible in this file.
package confinedx

import "confinedx/srv"

// Poke runs on no server thread, so the confined field is off limits.
func Poke(s *srv.Server) {
	s.Stats++ // want "confined field Stats"
	s.Other++ // unannotated sibling stays free
}
