// Package srv declares a confined field consumed across a package
// boundary: the ConfinedFact exported while gathering this package must be
// visible when the main fixture package (which imports it) is analyzed.
package srv

// Server exposes a scheduler-owned counter.
type Server struct {
	Stats int //crasvet:confined
	Other int
}
