// Fixture for the hotalloc analyzer: allocation-prone constructs are
// flagged inside //crasvet:hotpath functions and inside anything reachable
// from a periodic event-loop callback; cold code stays unflagged.
package hotalloc

import (
	"fmt"

	"hotalloc/rtm"
)

// Server carries buffers the hot path is expected to reuse.
type Server struct {
	names []string
	buf   []byte
}

// Start wires the event loop; it runs once, so its own literals are cold.
func Start(k *rtm.Kernel, s *Server) {
	k.NewPeriodicThread(rtm.PeriodicConfig{Name: "sched"}, s.cycle)
}

// cycle is hot by reachability: it is the NewPeriodicThread callback.
func (s *Server) cycle(t *rtm.Thread, n int) bool {
	s.names = append(s.names, "x") // want "append"
	s.stamp(n)
	return true
}

// stamp is hot transitively (called from cycle).
func (s *Server) stamp(n int) {
	_ = fmt.Sprintf("cycle %d", n) // want "fmt.Sprintf"
}

// Deliver is hot by annotation, independent of the call graph.
//
//crasvet:hotpath
func (s *Server) Deliver(n int) {
	p := &Server{} // want "composite literal"
	_ = p
	m := make([]byte, n) // want "make"
	_ = m
	f := func() int { return n } // want "closure"
	_ = f()
	logf("frag %d", n) // want "variadic"
}

// logf is a printf-shaped helper: calling it boxes arguments into ...any.
func logf(format string, args ...any) {}

// Cold is not reachable from the loop and not annotated: allocations here
// are fine.
func Cold(n int) string {
	return fmt.Sprintf("%d", n)
}

// Allowed regression-tests the escape hatch on the new analyzer.
//
//crasvet:hotpath
func Allowed() {
	_ = make([]int, 4) //crasvet:allow hotalloc -- fixture: directive must still suppress
}
