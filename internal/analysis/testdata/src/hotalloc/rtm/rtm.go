// Package rtm is a minimal stand-in for repro/internal/rtm so the fixture
// can exercise periodic-thread root detection.
package rtm

// Thread is a fake scheduler handle.
type Thread struct{}

// Kernel is a fake cooperative kernel.
type Kernel struct{}

// PeriodicConfig mirrors the real periodic-thread configuration.
type PeriodicConfig struct{ Name string }

// NewPeriodicThread registers a periodic event-loop body.
func (k *Kernel) NewPeriodicThread(cfg PeriodicConfig, body func(t *Thread, cycle int) bool) *Thread {
	return &Thread{}
}
