package simclock

import "time"

// Constants and types from package time stay legal: sim.Time is defined as
// time.Duration and carries no nondeterminism.
const tick = 10 * time.Millisecond

func durations(d time.Duration) time.Duration { return d + tick }

func wallClock() time.Duration {
	t0 := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(tick)          // want "time.Sleep reads the wall clock"
	_ = time.Until(t0)        // want "time.Until reads the wall clock"
	<-time.After(tick)        // want "time.After reads the wall clock"
	_ = time.Tick(tick)       // want "time.Tick reads the wall clock"
	_ = time.NewTimer(tick)   // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(tick)  // want "time.NewTicker reads the wall clock"
	time.AfterFunc(tick, nil) // want "time.AfterFunc reads the wall clock"
	return time.Since(t0)     // want "time.Since reads the wall clock"
}

func indirect() {
	// References (not just calls) are nondeterminism leaks too.
	clock := time.Now // want "time.Now reads the wall clock"
	_ = clock
}

func sanctioned() {
	_ = time.Now() //crasvet:allow simclock -- fixture: sanctioned exception
}
