package simclock

import wall "time"

// An aliased import does not hide the wall clock from the type checker.
func aliased() wall.Time {
	return wall.Now() // want "time.Now reads the wall clock"
}
