package analysis

import (
	"go/ast"
	"go/types"
)

// GoroConfine enforces goroutine confinement of scheduler state. A struct
// field annotated //crasvet:confined (on its declaration line or doc
// comment) belongs to the server's event-loop threads: it may only be read
// or written from a function reachable from a thread entry point (a body
// handed to rtm.Kernel.NewThread / NewPeriodicThread, or annotated
// //crasvet:thread / //crasvet:hotpath), from a documented snapshot
// accessor (//crasvet:snapshot), or from pre-concurrency construction
// (//crasvet:init). Any other access is the race `go test -race` only
// catches when a test happens to interleave the two sides — here it is
// caught on every build.
//
// The ConfinedFact is exported in the Gather phase by the field's defining
// package and consumed module-wide, so an escape in any package that can
// see the field is caught even though the checker there type-checked the
// owner from export data.
var GoroConfine = &Analyzer{
	Name: "goroconfine",
	Doc: "restrict //crasvet:confined struct fields to event-loop-reachable " +
		"functions, //crasvet:snapshot accessors, and //crasvet:init construction",
	FactTypes: []Fact{(*ConfinedFact)(nil)},
	Gather:    gatherConfined,
	Run:       runGoroConfine,
}

// ConfinedFact marks a struct field as confined to the event-loop threads.
type ConfinedFact struct{}

func (*ConfinedFact) AFact() {}

// gatherConfined exports a ConfinedFact for every //crasvet:confined field
// declared in the package.
func gatherConfined(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !commentHasDirective(field.Doc, dirConfined) && !commentHasDirective(field.Comment, dirConfined) {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						pass.ExportObjectFact(obj, &ConfinedFact{})
					}
				}
			}
			return true
		})
	}
	return nil
}

func runGoroConfine(pass *Pass) error {
	g := pass.Graph()
	for _, f := range pass.Files {
		walkWithFunc(g, pass.TypesInfo, f, func(encl string, n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || !obj.IsField() {
				return
			}
			var fact ConfinedFact
			if !pass.ImportObjectFact(obj, &fact) {
				return
			}
			if encl != "" && (g.ThreadReachable(encl) ||
				g.Annotated(dirSnapshot, encl) || g.Annotated(dirInit, encl)) {
				return
			}
			pass.Reportf(id.Pos(),
				"confined field %s accessed outside the event loop: only thread-entry-reachable "+
					"functions, //crasvet:snapshot accessors, or //crasvet:init construction may touch it",
				obj.Name())
		})
	}
	return nil
}

// walkWithFunc walks a file calling fn with each node and the call-graph
// key of its innermost enclosing function body ("" at file scope, e.g.
// package-level variable initializers).
func walkWithFunc(g *CallGraph, info *types.Info, f *ast.File, fn func(encl string, n ast.Node)) {
	var walk func(n ast.Node, encl string)
	walk = func(n ast.Node, encl string) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return
			}
			key := g.DeclKey(info, n)
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if inner == nil || inner == n.Body {
					return true
				}
				walk(inner, key)
				return false
			})
			return
		case *ast.FuncLit:
			// The literal itself is a value created in the enclosing body;
			// its body's contents run under the literal's own node.
			key := g.LitKey(n)
			fn(encl, n)
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if inner == nil || inner == n.Body {
					return true
				}
				walk(inner, key)
				return false
			})
			return
		}
		fn(encl, n)
		ast.Inspect(n, func(inner ast.Node) bool {
			if inner == nil || inner == n {
				return true
			}
			walk(inner, encl)
			return false
		})
	}
	for _, decl := range f.Decls {
		walk(decl, "")
	}
}
