package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives and output
	Doc  string // one-paragraph description of the invariant

	// Scope reports whether the analyzer applies to the package with the
	// given import path. A nil Scope means every package. The driver
	// consults Scope; tests may run an analyzer on any package directly.
	Scope func(pkgPath string) bool

	// Gather, if non-nil, is the analyzer's fact-export phase. The suite
	// driver runs Gather over every in-scope package, in dependency order,
	// before any Run executes; Gather must only export facts (via
	// Pass.ExportObjectFact / ExportPackageFact), never report diagnostics.
	Gather func(*Pass) error

	// FactTypes documents the fact types the analyzer exports; purely
	// informational (the in-memory store needs no registration).
	FactTypes []Fact

	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package, plus access to the
// suite-level facilities (facts, call graph) when run under a Suite.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suite *Suite
	diags *[]Diagnostic
}

// Graph returns the suite-wide call graph.
func (p *Pass) Graph() *CallGraph { return p.suite.Graph }

// Reportf records a diagnostic at pos. Calls from a Gather phase are
// ignored: gathering exports facts, reporting belongs to Run.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.diags == nil {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds errors from type checking. Analyzers still run on a
	// package with type errors (the AST is intact), but drivers should
	// surface the errors: missing type information weakens every check.
	TypeErrors []error
}

// Run applies the analyzer to the package alone — a one-package Suite, so
// interprocedural analyzers see an intra-package call graph and facts —
// and returns its findings, with //crasvet:allow directives already
// applied and the result sorted by position.
func (pkg *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	return NewSuite([]*Package{pkg}).RunUnscoped(a)
}

func lessPosition(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// directiveSet maps file → line → analyzer names sanctioned on that line.
// An empty name list means "all analyzers".
type directiveSet map[string]map[int][]string

const directivePrefix = "//crasvet:allow"

// directives scans every comment in the package for //crasvet:allow lines.
func (pkg *Package) directives() directiveSet {
	set := directiveSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //crasvet:allowance — not ours
				}
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i] // trailing "-- reason" is free text
				}
				var names []string
				for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == '\t' || r == ','
				}) {
					names = append(names, field)
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				if len(names) == 0 {
					// Bare directive: mark with a sentinel meaning "all".
					byLine[pos.Line] = append(byLine[pos.Line], "*")
				}
			}
		}
	}
	return set
}

// allows reports whether a directive on the diagnostic's line (or the line
// directly above it) sanctions the finding.
func (s directiveSet) allows(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == "*" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// All returns the crasvet analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{SimClock, RNGSource, EventLoop, IOErrCheck, PortBound, GoroConfine, HotAlloc, ErrCmp}
}

// suffixScope returns a Scope matching packages whose import path equals or
// ends with "/"+suffix for any of the given suffixes.
func suffixScope(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}
