package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
)

// rngBannedImports are the randomness sources that bypass the engine's
// seeded, named streams.
var rngBannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// RNGSource forbids importing math/rand or crypto/rand anywhere but
// internal/sim/rng.go, the single sanctioned wrapper. Every stochastic
// workload draws from Engine.RNG(name), so a run is reproduced exactly by
// its seed; a second rand.Source breaks that replay.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc: "forbid importing math/rand and crypto/rand outside internal/sim/rng.go; " +
		"draw randomness from Engine.RNG so runs stay seed-reproducible",
	Scope: nil, // every package
	Run:   runRNGSource,
}

func runRNGSource(pass *Pass) error {
	simRNGFile := strings.HasSuffix(pass.Pkg.Path(), "internal/sim") || pass.Pkg.Path() == "internal/sim"
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		sanctioned := simRNGFile && filepath.Base(file) == "rng.go"
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !rngBannedImports[path] {
				continue
			}
			if sanctioned {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %q outside internal/sim/rng.go; use Engine.RNG(name) so every draw comes from the run's seed",
				path)
		}
	}
	return nil
}
